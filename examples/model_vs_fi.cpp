// model_vs_fi: compare TRIDENT's predictions (and the fs / fs+fc
// ablations) against fault injection on one workload, both for the
// overall SDC probability and for the most SDC-prone instructions.
//
// Usage: ./build/examples/example_model_vs_fi [workload] [trials]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/trident.h"
#include "fi/campaign.h"
#include "profiler/profiler.h"
#include "workloads/workloads.h"

using namespace trident;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "pathfinder";
  const uint64_t trials = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3000;

  const auto& workload = workloads::find_workload(name);
  const ir::Module m = workload.build();
  const prof::Profile profile = prof::collect_profile(m);

  std::printf("workload: %s (%s, %s)\n", workload.name.c_str(),
              workload.suite.c_str(), workload.area.c_str());
  std::printf("static insts: %zu, dynamic insts: %llu\n\n", m.num_insts(),
              static_cast<unsigned long long>(profile.total_dynamic));

  const core::Trident full(m, profile, core::ModelConfig::full());
  const core::Trident fs_fc(m, profile, core::ModelConfig::fs_fc());
  const core::Trident fs(m, profile, core::ModelConfig::fs_only());

  fi::CampaignOptions options;
  options.trials = trials;
  const auto campaign = fi::run_overall_campaign(m, profile, options);

  std::printf("overall SDC probability:\n");
  std::printf("  FI       %6.2f%% (±%.2f%%)\n", campaign.sdc_prob() * 100,
              campaign.sdc_ci95() * 100);
  std::printf("  TRIDENT  %6.2f%%\n", full.overall_sdc_exact() * 100);
  std::printf("  fs+fc    %6.2f%%\n", fs_fc.overall_sdc_exact() * 100);
  std::printf("  fs       %6.2f%%\n", fs.overall_sdc_exact() * 100);

  // Per-instruction check on the ten most executed instructions.
  auto insts = full.injectable_instructions();
  std::sort(insts.begin(), insts.end(),
            [&](const ir::InstRef& a, const ir::InstRef& b) {
              return profile.exec(a) > profile.exec(b);
            });
  insts.resize(std::min<size_t>(insts.size(), 10));

  std::printf("\nper-instruction SDC, hottest 10 instructions "
              "(FI: 100 injections each):\n");
  std::printf("  %-12s %10s %10s %10s\n", "inst", "FI", "TRIDENT", "fs");
  for (const auto& ref : insts) {
    fi::CampaignOptions per_inst;
    per_inst.trials = 100;
    per_inst.seed = 99 + ref.inst;
    const auto fi_res = fi::run_instruction_campaign(m, profile, ref,
                                                     per_inst);
    std::printf("  f%u:%%%-8u %9.1f%% %9.1f%% %9.1f%%\n", ref.func, ref.inst,
                fi_res.sdc_prob() * 100, full.predict(ref).sdc * 100,
                fs.predict(ref).sdc * 100);
  }
  return 0;
}
