// resilience_report: a pure-model survey of every bundled workload — no
// fault injection at all, demonstrating TRIDENT's scalability story:
// profile once, then query SDC/crash probabilities cheaply.
#include <cstdio>

#include "baselines/epvf.h"
#include "core/trident.h"
#include "profiler/profiler.h"
#include "workloads/workloads.h"

using namespace trident;

int main() {
  std::printf("%-14s %8s %10s %8s %8s %8s %8s %8s\n", "workload", "static",
              "dynamic", "TRIDENT", "fs+fc", "fs", "ePVF", "pruned");
  for (const auto& w : workloads::all_workloads()) {
    const ir::Module m = w.build();
    const prof::Profile profile = prof::collect_profile(m);
    const core::Trident full(m, profile, core::ModelConfig::full());
    const core::Trident fs_fc(m, profile, core::ModelConfig::fs_fc());
    const core::Trident fs(m, profile, core::ModelConfig::fs_only());
    const baselines::EpvfModel epvf(m, profile);
    std::printf("%-14s %8zu %10llu %7.2f%% %7.2f%% %7.2f%% %7.2f%% %7.1f%%\n",
                w.name.c_str(), m.num_insts(),
                static_cast<unsigned long long>(profile.total_dynamic),
                full.overall_sdc_exact() * 100,
                fs_fc.overall_sdc_exact() * 100,
                fs.overall_sdc_exact() * 100, epvf.overall() * 100,
                profile.pruning_ratio() * 100);
  }
  return 0;
}
