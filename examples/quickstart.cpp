// Quickstart: author a small program with the IR builder, profile it,
// and ask TRIDENT for SDC probabilities — then cross-check the overall
// number against a real fault-injection campaign.
//
// Build & run:  ./build/examples/example_quickstart
#include <cstdio>

#include "core/trident.h"
#include "fi/campaign.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "profiler/profiler.h"
#include "workloads/common.h"

using namespace trident;

namespace {

// sum-of-squares with a threshold counter: a loop, a data-dependent
// branch, memory traffic and an integer output.
ir::Module build_demo() {
  ir::Module m;
  m.name = "quickstart";
  const uint32_t g_data = m.add_global({"data", 64 * 4, {}});

  ir::IRBuilder b(m);
  b.begin_function("main", {}, ir::Type::void_());
  b.set_block(b.block("entry"));
  const ir::Value data = b.global(g_data);
  workloads::lcg_fill_i32(b, data, 64, 2024, 100);

  const ir::Value sum = b.alloca_(4, "sum");
  const ir::Value big = b.alloca_(4, "big");
  b.store(b.i32(0), sum);
  b.store(b.i32(0), big);
  workloads::counted_loop(b, 0, 64, 1, [&](ir::Value i) {
    const ir::Value v = b.load(ir::Type::i32(), b.gep(data, i, 4));
    const ir::Value sq = b.mul(v, v);
    b.store(b.add(b.load(ir::Type::i32(), sum), sq), sum);
    workloads::if_then(b, b.icmp(ir::CmpPred::SGt, sq, b.i32(5000)), [&] {
      b.store(b.add(b.load(ir::Type::i32(), big), b.i32(1)), big);
    });
  });
  b.print_int(b.load(ir::Type::i32(), sum));
  b.print_int(b.load(ir::Type::i32(), big));
  b.ret();
  b.end_function();
  return m;
}

}  // namespace

int main() {
  const ir::Module m = build_demo();

  // Always verify authored IR before analysis.
  if (const auto errs = ir::verify_to_string(m); !errs.empty()) {
    std::fprintf(stderr, "IR verification failed:\n%s", errs.c_str());
    return 1;
  }
  std::printf("== program ==\n%s\n", ir::print_module(m).c_str());

  // Phase 1: one profiling run.
  const prof::Profile profile = prof::collect_profile(m);
  std::printf("dynamic instructions: %llu\n",
              static_cast<unsigned long long>(profile.total_dynamic));
  std::printf("golden output:\n%s\n", profile.golden_output.c_str());

  // Phase 2: inference, no fault injection.
  const core::Trident model(m, profile);
  std::printf("TRIDENT overall SDC probability: %.2f%%\n",
              model.overall_sdc_exact() * 100);

  std::printf("\nper-instruction SDC probabilities (main):\n");
  for (const auto& ref : model.injectable_instructions()) {
    const auto pred = model.predict(ref);
    if (pred.sdc > 0.30) {
      std::printf("  %%%-3u sdc=%5.1f%%  crash=%5.1f%%\n", ref.inst,
                  pred.sdc * 100, pred.crash * 100);
    }
  }

  // Ground truth: a real FI campaign.
  fi::CampaignOptions options;
  options.trials = 2000;
  const auto campaign = fi::run_overall_campaign(m, profile, options);
  std::printf("\nFI (%llu trials): SDC=%.2f%% ±%.2f  crash=%.2f%%\n",
              static_cast<unsigned long long>(campaign.total()),
              campaign.sdc_prob() * 100, campaign.sdc_ci95() * 100,
              campaign.crash_prob() * 100);
  return 0;
}
