// input_sensitivity: the paper's §IX future-work question — how stable
// are SDC probabilities across program inputs? (Di Leo et al. found that
// they can shift; the paper evaluates one input per benchmark, as do we
// in the main harnesses.) This example profiles several inputs of three
// workloads and compares TRIDENT's per-input predictions against FI.
//
// Usage: ./build/examples/example_input_sensitivity [trials]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

#include "core/trident.h"
#include "fi/campaign.h"
#include "profiler/profiler.h"
#include "workloads/workloads.h"

using namespace trident;

namespace {

struct Variant {
  const char* family;
  std::function<ir::Module(int32_t)> build;
};

}  // namespace

int main(int argc, char** argv) {
  const uint64_t trials =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000;
  const std::vector<Variant> families{
      {"pathfinder", workloads::build_pathfinder_seeded},
      {"hotspot", workloads::build_hotspot_seeded},
      {"bfs_parboil", workloads::build_bfs_parboil_seeded},
  };
  const std::vector<int32_t> seeds{1000, 31337, 271828, 987654, 55501};

  for (const auto& family : families) {
    std::printf("%s:\n", family.family);
    std::printf("  %-10s %10s %10s %10s\n", "input", "FI", "TRIDENT",
                "dynamic");
    double fi_min = 1, fi_max = 0;
    for (const auto seed : seeds) {
      const auto m = family.build(seed);
      const auto profile = prof::collect_profile(m);
      const core::Trident model(m, profile);
      fi::CampaignOptions options;
      options.trials = trials;
      const auto campaign =
          fi::run_overall_campaign(m, profile, options);
      std::printf("  seed %-6d %9.2f%% %9.2f%% %10llu\n", seed,
                  campaign.sdc_prob() * 100,
                  model.overall_sdc_exact() * 100,
                  static_cast<unsigned long long>(profile.total_dynamic));
      fi_min = std::min(fi_min, campaign.sdc_prob());
      fi_max = std::max(fi_max, campaign.sdc_prob());
    }
    std::printf("  FI spread across inputs: %.2f percentage points\n\n",
                (fi_max - fi_min) * 100);
  }
  std::printf("The per-input profile (and hence the model) tracks each\n"
              "input; single-input studies inherit whatever spread the\n"
              "program exhibits, as Di Leo et al. observed.\n");
  return 0;
}
