// selective_protection: the paper's §VI use case end to end — use
// TRIDENT (no FI) to pick the instructions to duplicate under an
// overhead budget, apply the duplication pass, and verify with FI that
// the protected binary's SDC probability dropped.
//
// Usage: ./build/examples/example_selective_protection [workload] [fraction]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/trident.h"
#include "fi/campaign.h"
#include "ir/verifier.h"
#include "profiler/profiler.h"
#include "protect/duplication.h"
#include "protect/selector.h"
#include "workloads/workloads.h"

using namespace trident;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "hotspot";
  const double fraction = argc > 2 ? std::strtod(argv[2], nullptr) : 1.0 / 3;

  const ir::Module m = workloads::find_workload(name).build();
  const prof::Profile profile = prof::collect_profile(m);
  const core::Trident model(m, profile);

  // Select under the budget: `fraction` of the full-duplication cost.
  const auto plan = protect::select_for_duplication(
      m, profile, [&](ir::InstRef ref) { return model.predict(ref).sdc; },
      fraction);
  std::printf("budget: %.0f%% of full duplication -> %zu instructions, "
              "dynamic cost %llu/%llu\n",
              fraction * 100, plan.selected.size(),
              static_cast<unsigned long long>(plan.cost),
              static_cast<unsigned long long>(plan.capacity));

  auto protected_result = protect::duplicate_instructions(m, plan.selected);
  if (const auto errs = ir::verify_to_string(protected_result.module);
      !errs.empty()) {
    std::fprintf(stderr, "protected module invalid:\n%s", errs.c_str());
    return 1;
  }

  // Measure the real overhead (dynamic instructions are the wall-clock
  // proxy on the interpreter substrate).
  const prof::Profile prot_profile =
      prof::collect_profile(protected_result.module);
  std::printf("overhead: %.2f%% dynamic instructions\n",
              100.0 * (static_cast<double>(prot_profile.total_dynamic) /
                           static_cast<double>(profile.total_dynamic) -
                       1.0));

  // FI on both binaries.
  fi::CampaignOptions options;
  options.trials = 2000;
  const auto before = fi::run_overall_campaign(m, profile, options);
  const auto after = fi::run_overall_campaign(protected_result.module,
                                              prot_profile, options);
  std::printf("SDC before: %.2f%%   after: %.2f%%   detected: %.2f%%\n",
              before.sdc_prob() * 100, after.sdc_prob() * 100,
              after.detected_prob() * 100);
  std::printf("SDC reduction: %.1f%%\n",
              before.sdc_prob() > 0
                  ? 100.0 * (1.0 - after.sdc_prob() / before.sdc_prob())
                  : 0.0);
  return 0;
}
