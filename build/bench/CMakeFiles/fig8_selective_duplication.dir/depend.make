# Empty dependencies file for fig8_selective_duplication.
# This may be replaced when dependencies are built.
