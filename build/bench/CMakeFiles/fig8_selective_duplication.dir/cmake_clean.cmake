file(REMOVE_RECURSE
  "CMakeFiles/fig8_selective_duplication.dir/fig8_selective_duplication.cpp.o"
  "CMakeFiles/fig8_selective_duplication.dir/fig8_selective_duplication.cpp.o.d"
  "fig8_selective_duplication"
  "fig8_selective_duplication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_selective_duplication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
