file(REMOVE_RECURSE
  "CMakeFiles/epvf_ddg.dir/epvf_ddg.cpp.o"
  "CMakeFiles/epvf_ddg.dir/epvf_ddg.cpp.o.d"
  "epvf_ddg"
  "epvf_ddg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epvf_ddg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
