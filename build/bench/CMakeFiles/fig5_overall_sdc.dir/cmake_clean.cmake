file(REMOVE_RECURSE
  "CMakeFiles/fig5_overall_sdc.dir/fig5_overall_sdc.cpp.o"
  "CMakeFiles/fig5_overall_sdc.dir/fig5_overall_sdc.cpp.o.d"
  "fig5_overall_sdc"
  "fig5_overall_sdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_overall_sdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
