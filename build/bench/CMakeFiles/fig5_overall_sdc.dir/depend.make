# Empty dependencies file for fig5_overall_sdc.
# This may be replaced when dependencies are built.
