file(REMOVE_RECURSE
  "CMakeFiles/table2_per_instruction.dir/table2_per_instruction.cpp.o"
  "CMakeFiles/table2_per_instruction.dir/table2_per_instruction.cpp.o.d"
  "table2_per_instruction"
  "table2_per_instruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_per_instruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
