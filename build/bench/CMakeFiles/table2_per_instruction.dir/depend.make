# Empty dependencies file for table2_per_instruction.
# This may be replaced when dependencies are built.
