file(REMOVE_RECURSE
  "CMakeFiles/fig9_pvf_epvf.dir/fig9_pvf_epvf.cpp.o"
  "CMakeFiles/fig9_pvf_epvf.dir/fig9_pvf_epvf.cpp.o.d"
  "fig9_pvf_epvf"
  "fig9_pvf_epvf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_pvf_epvf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
