# Empty compiler generated dependencies file for fig9_pvf_epvf.
# This may be replaced when dependencies are built.
