# Empty dependencies file for fi_acceleration.
# This may be replaced when dependencies are built.
