file(REMOVE_RECURSE
  "CMakeFiles/fi_acceleration.dir/fi_acceleration.cpp.o"
  "CMakeFiles/fi_acceleration.dir/fi_acceleration.cpp.o.d"
  "fi_acceleration"
  "fi_acceleration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fi_acceleration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
