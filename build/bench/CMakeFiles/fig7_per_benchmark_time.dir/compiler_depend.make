# Empty compiler generated dependencies file for fig7_per_benchmark_time.
# This may be replaced when dependencies are built.
