# Empty dependencies file for multibit_faults.
# This may be replaced when dependencies are built.
