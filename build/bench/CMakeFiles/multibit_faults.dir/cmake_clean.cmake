file(REMOVE_RECURSE
  "CMakeFiles/multibit_faults.dir/multibit_faults.cpp.o"
  "CMakeFiles/multibit_faults.dir/multibit_faults.cpp.o.d"
  "multibit_faults"
  "multibit_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multibit_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
