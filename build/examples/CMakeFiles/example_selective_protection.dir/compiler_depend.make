# Empty compiler generated dependencies file for example_selective_protection.
# This may be replaced when dependencies are built.
