file(REMOVE_RECURSE
  "CMakeFiles/example_selective_protection.dir/selective_protection.cpp.o"
  "CMakeFiles/example_selective_protection.dir/selective_protection.cpp.o.d"
  "example_selective_protection"
  "example_selective_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_selective_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
