file(REMOVE_RECURSE
  "CMakeFiles/example_input_sensitivity.dir/input_sensitivity.cpp.o"
  "CMakeFiles/example_input_sensitivity.dir/input_sensitivity.cpp.o.d"
  "example_input_sensitivity"
  "example_input_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_input_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
