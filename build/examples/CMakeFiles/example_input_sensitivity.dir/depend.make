# Empty dependencies file for example_input_sensitivity.
# This may be replaced when dependencies are built.
