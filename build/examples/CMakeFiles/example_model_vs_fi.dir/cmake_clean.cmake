file(REMOVE_RECURSE
  "CMakeFiles/example_model_vs_fi.dir/model_vs_fi.cpp.o"
  "CMakeFiles/example_model_vs_fi.dir/model_vs_fi.cpp.o.d"
  "example_model_vs_fi"
  "example_model_vs_fi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_model_vs_fi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
