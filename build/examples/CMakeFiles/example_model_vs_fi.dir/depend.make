# Empty dependencies file for example_model_vs_fi.
# This may be replaced when dependencies are built.
