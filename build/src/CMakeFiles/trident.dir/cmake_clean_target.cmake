file(REMOVE_RECURSE
  "libtrident.a"
)
