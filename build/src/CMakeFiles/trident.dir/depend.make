# Empty dependencies file for trident.
# This may be replaced when dependencies are built.
