
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cfg.cpp" "src/CMakeFiles/trident.dir/analysis/cfg.cpp.o" "gcc" "src/CMakeFiles/trident.dir/analysis/cfg.cpp.o.d"
  "/root/repo/src/analysis/control_dependence.cpp" "src/CMakeFiles/trident.dir/analysis/control_dependence.cpp.o" "gcc" "src/CMakeFiles/trident.dir/analysis/control_dependence.cpp.o.d"
  "/root/repo/src/analysis/def_use.cpp" "src/CMakeFiles/trident.dir/analysis/def_use.cpp.o" "gcc" "src/CMakeFiles/trident.dir/analysis/def_use.cpp.o.d"
  "/root/repo/src/analysis/dominators.cpp" "src/CMakeFiles/trident.dir/analysis/dominators.cpp.o" "gcc" "src/CMakeFiles/trident.dir/analysis/dominators.cpp.o.d"
  "/root/repo/src/analysis/loops.cpp" "src/CMakeFiles/trident.dir/analysis/loops.cpp.o" "gcc" "src/CMakeFiles/trident.dir/analysis/loops.cpp.o.d"
  "/root/repo/src/baselines/epvf.cpp" "src/CMakeFiles/trident.dir/baselines/epvf.cpp.o" "gcc" "src/CMakeFiles/trident.dir/baselines/epvf.cpp.o.d"
  "/root/repo/src/baselines/pvf.cpp" "src/CMakeFiles/trident.dir/baselines/pvf.cpp.o" "gcc" "src/CMakeFiles/trident.dir/baselines/pvf.cpp.o.d"
  "/root/repo/src/core/fc_model.cpp" "src/CMakeFiles/trident.dir/core/fc_model.cpp.o" "gcc" "src/CMakeFiles/trident.dir/core/fc_model.cpp.o.d"
  "/root/repo/src/core/fm_model.cpp" "src/CMakeFiles/trident.dir/core/fm_model.cpp.o" "gcc" "src/CMakeFiles/trident.dir/core/fm_model.cpp.o.d"
  "/root/repo/src/core/sequence.cpp" "src/CMakeFiles/trident.dir/core/sequence.cpp.o" "gcc" "src/CMakeFiles/trident.dir/core/sequence.cpp.o.d"
  "/root/repo/src/core/trident.cpp" "src/CMakeFiles/trident.dir/core/trident.cpp.o" "gcc" "src/CMakeFiles/trident.dir/core/trident.cpp.o.d"
  "/root/repo/src/core/tuples.cpp" "src/CMakeFiles/trident.dir/core/tuples.cpp.o" "gcc" "src/CMakeFiles/trident.dir/core/tuples.cpp.o.d"
  "/root/repo/src/ddg/ddg.cpp" "src/CMakeFiles/trident.dir/ddg/ddg.cpp.o" "gcc" "src/CMakeFiles/trident.dir/ddg/ddg.cpp.o.d"
  "/root/repo/src/fi/accelerated.cpp" "src/CMakeFiles/trident.dir/fi/accelerated.cpp.o" "gcc" "src/CMakeFiles/trident.dir/fi/accelerated.cpp.o.d"
  "/root/repo/src/fi/campaign.cpp" "src/CMakeFiles/trident.dir/fi/campaign.cpp.o" "gcc" "src/CMakeFiles/trident.dir/fi/campaign.cpp.o.d"
  "/root/repo/src/fi/injector.cpp" "src/CMakeFiles/trident.dir/fi/injector.cpp.o" "gcc" "src/CMakeFiles/trident.dir/fi/injector.cpp.o.d"
  "/root/repo/src/interp/interpreter.cpp" "src/CMakeFiles/trident.dir/interp/interpreter.cpp.o" "gcc" "src/CMakeFiles/trident.dir/interp/interpreter.cpp.o.d"
  "/root/repo/src/interp/memory.cpp" "src/CMakeFiles/trident.dir/interp/memory.cpp.o" "gcc" "src/CMakeFiles/trident.dir/interp/memory.cpp.o.d"
  "/root/repo/src/ir/builder.cpp" "src/CMakeFiles/trident.dir/ir/builder.cpp.o" "gcc" "src/CMakeFiles/trident.dir/ir/builder.cpp.o.d"
  "/root/repo/src/ir/function.cpp" "src/CMakeFiles/trident.dir/ir/function.cpp.o" "gcc" "src/CMakeFiles/trident.dir/ir/function.cpp.o.d"
  "/root/repo/src/ir/instruction.cpp" "src/CMakeFiles/trident.dir/ir/instruction.cpp.o" "gcc" "src/CMakeFiles/trident.dir/ir/instruction.cpp.o.d"
  "/root/repo/src/ir/module.cpp" "src/CMakeFiles/trident.dir/ir/module.cpp.o" "gcc" "src/CMakeFiles/trident.dir/ir/module.cpp.o.d"
  "/root/repo/src/ir/parser.cpp" "src/CMakeFiles/trident.dir/ir/parser.cpp.o" "gcc" "src/CMakeFiles/trident.dir/ir/parser.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/CMakeFiles/trident.dir/ir/printer.cpp.o" "gcc" "src/CMakeFiles/trident.dir/ir/printer.cpp.o.d"
  "/root/repo/src/ir/type.cpp" "src/CMakeFiles/trident.dir/ir/type.cpp.o" "gcc" "src/CMakeFiles/trident.dir/ir/type.cpp.o.d"
  "/root/repo/src/ir/verifier.cpp" "src/CMakeFiles/trident.dir/ir/verifier.cpp.o" "gcc" "src/CMakeFiles/trident.dir/ir/verifier.cpp.o.d"
  "/root/repo/src/profiler/profile.cpp" "src/CMakeFiles/trident.dir/profiler/profile.cpp.o" "gcc" "src/CMakeFiles/trident.dir/profiler/profile.cpp.o.d"
  "/root/repo/src/profiler/profiler.cpp" "src/CMakeFiles/trident.dir/profiler/profiler.cpp.o" "gcc" "src/CMakeFiles/trident.dir/profiler/profiler.cpp.o.d"
  "/root/repo/src/protect/duplication.cpp" "src/CMakeFiles/trident.dir/protect/duplication.cpp.o" "gcc" "src/CMakeFiles/trident.dir/protect/duplication.cpp.o.d"
  "/root/repo/src/protect/knapsack.cpp" "src/CMakeFiles/trident.dir/protect/knapsack.cpp.o" "gcc" "src/CMakeFiles/trident.dir/protect/knapsack.cpp.o.d"
  "/root/repo/src/protect/selector.cpp" "src/CMakeFiles/trident.dir/protect/selector.cpp.o" "gcc" "src/CMakeFiles/trident.dir/protect/selector.cpp.o.d"
  "/root/repo/src/stats/stats.cpp" "src/CMakeFiles/trident.dir/stats/stats.cpp.o" "gcc" "src/CMakeFiles/trident.dir/stats/stats.cpp.o.d"
  "/root/repo/src/stats/ttest.cpp" "src/CMakeFiles/trident.dir/stats/ttest.cpp.o" "gcc" "src/CMakeFiles/trident.dir/stats/ttest.cpp.o.d"
  "/root/repo/src/support/bits.cpp" "src/CMakeFiles/trident.dir/support/bits.cpp.o" "gcc" "src/CMakeFiles/trident.dir/support/bits.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/trident.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/trident.dir/support/rng.cpp.o.d"
  "/root/repo/src/support/str.cpp" "src/CMakeFiles/trident.dir/support/str.cpp.o" "gcc" "src/CMakeFiles/trident.dir/support/str.cpp.o.d"
  "/root/repo/src/workloads/bfs_parboil.cpp" "src/CMakeFiles/trident.dir/workloads/bfs_parboil.cpp.o" "gcc" "src/CMakeFiles/trident.dir/workloads/bfs_parboil.cpp.o.d"
  "/root/repo/src/workloads/bfs_rodinia.cpp" "src/CMakeFiles/trident.dir/workloads/bfs_rodinia.cpp.o" "gcc" "src/CMakeFiles/trident.dir/workloads/bfs_rodinia.cpp.o.d"
  "/root/repo/src/workloads/blackscholes.cpp" "src/CMakeFiles/trident.dir/workloads/blackscholes.cpp.o" "gcc" "src/CMakeFiles/trident.dir/workloads/blackscholes.cpp.o.d"
  "/root/repo/src/workloads/hercules.cpp" "src/CMakeFiles/trident.dir/workloads/hercules.cpp.o" "gcc" "src/CMakeFiles/trident.dir/workloads/hercules.cpp.o.d"
  "/root/repo/src/workloads/hotspot.cpp" "src/CMakeFiles/trident.dir/workloads/hotspot.cpp.o" "gcc" "src/CMakeFiles/trident.dir/workloads/hotspot.cpp.o.d"
  "/root/repo/src/workloads/libquantum.cpp" "src/CMakeFiles/trident.dir/workloads/libquantum.cpp.o" "gcc" "src/CMakeFiles/trident.dir/workloads/libquantum.cpp.o.d"
  "/root/repo/src/workloads/lulesh.cpp" "src/CMakeFiles/trident.dir/workloads/lulesh.cpp.o" "gcc" "src/CMakeFiles/trident.dir/workloads/lulesh.cpp.o.d"
  "/root/repo/src/workloads/nw.cpp" "src/CMakeFiles/trident.dir/workloads/nw.cpp.o" "gcc" "src/CMakeFiles/trident.dir/workloads/nw.cpp.o.d"
  "/root/repo/src/workloads/pathfinder.cpp" "src/CMakeFiles/trident.dir/workloads/pathfinder.cpp.o" "gcc" "src/CMakeFiles/trident.dir/workloads/pathfinder.cpp.o.d"
  "/root/repo/src/workloads/puremd.cpp" "src/CMakeFiles/trident.dir/workloads/puremd.cpp.o" "gcc" "src/CMakeFiles/trident.dir/workloads/puremd.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/CMakeFiles/trident.dir/workloads/registry.cpp.o" "gcc" "src/CMakeFiles/trident.dir/workloads/registry.cpp.o.d"
  "/root/repo/src/workloads/sad.cpp" "src/CMakeFiles/trident.dir/workloads/sad.cpp.o" "gcc" "src/CMakeFiles/trident.dir/workloads/sad.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
