# Empty dependencies file for trident_cli.
# This may be replaced when dependencies are built.
