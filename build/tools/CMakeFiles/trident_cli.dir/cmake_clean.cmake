file(REMOVE_RECURSE
  "CMakeFiles/trident_cli.dir/trident_cli.cpp.o"
  "CMakeFiles/trident_cli.dir/trident_cli.cpp.o.d"
  "trident"
  "trident.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trident_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
