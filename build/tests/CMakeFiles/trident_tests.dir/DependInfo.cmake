
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cpp" "tests/CMakeFiles/trident_tests.dir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/trident_tests.dir/analysis_test.cpp.o.d"
  "/root/repo/tests/attenuation_test.cpp" "tests/CMakeFiles/trident_tests.dir/attenuation_test.cpp.o" "gcc" "tests/CMakeFiles/trident_tests.dir/attenuation_test.cpp.o.d"
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/trident_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/trident_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/ddg_test.cpp" "tests/CMakeFiles/trident_tests.dir/ddg_test.cpp.o" "gcc" "tests/CMakeFiles/trident_tests.dir/ddg_test.cpp.o.d"
  "/root/repo/tests/duplication_test.cpp" "tests/CMakeFiles/trident_tests.dir/duplication_test.cpp.o" "gcc" "tests/CMakeFiles/trident_tests.dir/duplication_test.cpp.o.d"
  "/root/repo/tests/fc_model_test.cpp" "tests/CMakeFiles/trident_tests.dir/fc_model_test.cpp.o" "gcc" "tests/CMakeFiles/trident_tests.dir/fc_model_test.cpp.o.d"
  "/root/repo/tests/fi_test.cpp" "tests/CMakeFiles/trident_tests.dir/fi_test.cpp.o" "gcc" "tests/CMakeFiles/trident_tests.dir/fi_test.cpp.o.d"
  "/root/repo/tests/fm_model_test.cpp" "tests/CMakeFiles/trident_tests.dir/fm_model_test.cpp.o" "gcc" "tests/CMakeFiles/trident_tests.dir/fm_model_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/trident_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/trident_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/interp_test.cpp" "tests/CMakeFiles/trident_tests.dir/interp_test.cpp.o" "gcc" "tests/CMakeFiles/trident_tests.dir/interp_test.cpp.o.d"
  "/root/repo/tests/ir_test.cpp" "tests/CMakeFiles/trident_tests.dir/ir_test.cpp.o" "gcc" "tests/CMakeFiles/trident_tests.dir/ir_test.cpp.o.d"
  "/root/repo/tests/knapsack_test.cpp" "tests/CMakeFiles/trident_tests.dir/knapsack_test.cpp.o" "gcc" "tests/CMakeFiles/trident_tests.dir/knapsack_test.cpp.o.d"
  "/root/repo/tests/memcpy_test.cpp" "tests/CMakeFiles/trident_tests.dir/memcpy_test.cpp.o" "gcc" "tests/CMakeFiles/trident_tests.dir/memcpy_test.cpp.o.d"
  "/root/repo/tests/parser_test.cpp" "tests/CMakeFiles/trident_tests.dir/parser_test.cpp.o" "gcc" "tests/CMakeFiles/trident_tests.dir/parser_test.cpp.o.d"
  "/root/repo/tests/profiler_test.cpp" "tests/CMakeFiles/trident_tests.dir/profiler_test.cpp.o" "gcc" "tests/CMakeFiles/trident_tests.dir/profiler_test.cpp.o.d"
  "/root/repo/tests/sequence_test.cpp" "tests/CMakeFiles/trident_tests.dir/sequence_test.cpp.o" "gcc" "tests/CMakeFiles/trident_tests.dir/sequence_test.cpp.o.d"
  "/root/repo/tests/stats_test.cpp" "tests/CMakeFiles/trident_tests.dir/stats_test.cpp.o" "gcc" "tests/CMakeFiles/trident_tests.dir/stats_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/trident_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/trident_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/trident_model_test.cpp" "tests/CMakeFiles/trident_tests.dir/trident_model_test.cpp.o" "gcc" "tests/CMakeFiles/trident_tests.dir/trident_model_test.cpp.o.d"
  "/root/repo/tests/tuples_test.cpp" "tests/CMakeFiles/trident_tests.dir/tuples_test.cpp.o" "gcc" "tests/CMakeFiles/trident_tests.dir/tuples_test.cpp.o.d"
  "/root/repo/tests/verifier_test.cpp" "tests/CMakeFiles/trident_tests.dir/verifier_test.cpp.o" "gcc" "tests/CMakeFiles/trident_tests.dir/verifier_test.cpp.o.d"
  "/root/repo/tests/workloads_test.cpp" "tests/CMakeFiles/trident_tests.dir/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/trident_tests.dir/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/trident.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
