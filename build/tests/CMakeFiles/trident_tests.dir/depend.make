# Empty dependencies file for trident_tests.
# This may be replaced when dependencies are built.
