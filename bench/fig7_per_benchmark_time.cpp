// Figure 7: time to derive the SDC probabilities of individual
// instructions in each benchmark — TRIDENT (measured: profiling +
// predicting every injectable instruction) vs FI-100 (projected from the
// measured single-trial cost, as in the paper). Also prints the §V-C
// dependence-pruning statistics (paper average: 61.87% of dynamic
// dependencies pruned).
#include <cstdio>

#include "core/trident.h"
#include "harness.h"
#include "profiler/profiler.h"

int main() {
  using namespace trident;
  const uint32_t threads = bench::fi_threads();
  std::printf("Figure 7: per-benchmark time to derive individual "
              "instruction SDC probabilities\n(model sweep on %u worker "
              "threads; set TRIDENT_THREADS to change)\n\n",
              threads);
  std::printf("%-14s %8s %14s %14s %10s %10s\n", "benchmark", "#insts",
              "TRIDENT (s)", "FI-100 (s)", "speedup", "pruned");

  double total_pruning = 0;
  int count = 0;
  for (const auto& p : bench::prepare_all()) {
    const double fi_trial_s = bench::measure_fi_trial_seconds(p);

    size_t n_insts = 0;
    const double trident_s = bench::time_seconds([&] {
      const auto profile = prof::collect_profile(p.module);
      const core::Trident model(p.module, profile);
      const auto insts = model.injectable_instructions();
      n_insts = insts.size();
      model.predict_all(insts, threads);
    });
    const double fi_s = fi_trial_s * 100 * static_cast<double>(n_insts);

    std::printf("%-14s %8zu %14.4f %14.2f %9.0fx %9.2f%%\n",
                p.workload.name.c_str(), n_insts, trident_s, fi_s,
                fi_s / trident_s, p.profile.pruning_ratio() * 100);
    total_pruning += p.profile.pruning_ratio();
    ++count;
  }
  std::printf("\naverage dependence pruning: %.2f%% (paper: 61.87%%)\n",
              total_pruning / count * 100);
  return 0;
}
