// Component micro-benchmarks (google-benchmark): interpreter throughput,
// profiling overhead, fs tracing, fm solving, fc queries, knapsack and
// the statistics kernels. These are the cost centres behind Figures 6/7.
#include <benchmark/benchmark.h>

#include "core/trident.h"
#include "ddg/ddg.h"
#include "fi/accelerated.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "protect/duplication.h"
#include "fi/campaign.h"
#include "profiler/profiler.h"
#include "protect/knapsack.h"
#include "stats/ttest.h"
#include "support/rng.h"
#include "workloads/workloads.h"

namespace {

using namespace trident;

const ir::Module& pathfinder_module() {
  static const ir::Module m = workloads::find_workload("pathfinder").build();
  return m;
}

const prof::Profile& pathfinder_profile() {
  static const prof::Profile p = prof::collect_profile(pathfinder_module());
  return p;
}

void BM_InterpreterRun(benchmark::State& state) {
  const auto& m = pathfinder_module();
  interp::Interpreter interp(m);
  uint64_t dynamic = 0;
  for (auto _ : state) {
    const auto res = interp.run_main({});
    dynamic = res.dynamic_insts;
    benchmark::DoNotOptimize(res.ret_raw);
  }
  state.SetItemsProcessed(static_cast<int64_t>(dynamic) * state.iterations());
}
BENCHMARK(BM_InterpreterRun);

void BM_ProfiledRun(benchmark::State& state) {
  const auto& m = pathfinder_module();
  for (auto _ : state) {
    const auto profile = prof::collect_profile(m);
    benchmark::DoNotOptimize(profile.total_dynamic);
  }
}
BENCHMARK(BM_ProfiledRun);

void BM_SingleInjectionTrial(benchmark::State& state) {
  const auto& m = pathfinder_module();
  const auto& profile = pathfinder_profile();
  support::Rng rng(5);
  for (auto _ : state) {
    fi::InjectionSite site;
    site.dyn_index = rng.next_below(profile.total_results);
    site.bit_entropy = rng.next_u64();
    const auto trial = fi::run_one_trial(m, profile, site,
                                         profile.total_dynamic * 50,
                                         ir::kNoFunc);
    benchmark::DoNotOptimize(trial.outcome);
  }
}
BENCHMARK(BM_SingleInjectionTrial);

void BM_ModelConstruction(benchmark::State& state) {
  const auto& m = pathfinder_module();
  const auto& profile = pathfinder_profile();
  for (auto _ : state) {
    const core::Trident model(m, profile);
    benchmark::DoNotOptimize(&model);
  }
}
BENCHMARK(BM_ModelConstruction);

void BM_PredictAllInstructions(benchmark::State& state) {
  const auto& m = pathfinder_module();
  const auto& profile = pathfinder_profile();
  for (auto _ : state) {
    const core::Trident model(m, profile);
    double sum = 0;
    for (const auto& ref : model.injectable_instructions()) {
      sum += model.predict(ref).sdc;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_PredictAllInstructions);

void BM_OverallSdcSampled(benchmark::State& state) {
  const auto& m = pathfinder_module();
  const auto& profile = pathfinder_profile();
  const core::Trident model(m, profile);
  model.overall_sdc(1, 1);  // warm the memo so this measures sampling
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.overall_sdc(static_cast<uint64_t>(state.range(0)), 7));
  }
}
BENCHMARK(BM_OverallSdcSampled)->Arg(500)->Arg(3000)->Arg(7000);

void BM_Knapsack(benchmark::State& state) {
  support::Rng rng(17);
  std::vector<protect::KnapsackItem> items;
  for (int64_t i = 0; i < state.range(0); ++i) {
    items.push_back({rng.next_double(), 1 + rng.next_below(10000)});
  }
  uint64_t total = 0;
  for (const auto& item : items) total += item.weight;
  for (auto _ : state) {
    benchmark::DoNotOptimize(protect::knapsack_select(items, total / 3));
  }
}
BENCHMARK(BM_Knapsack)->Arg(100)->Arg(1000);

void BM_DdgCapture(benchmark::State& state) {
  const auto& m = pathfinder_module();
  for (auto _ : state) {
    const auto graph = ddg::Ddg::capture(m);
    benchmark::DoNotOptimize(graph.nodes().size());
  }
}
BENCHMARK(BM_DdgCapture);

void BM_StratifiedCampaign(benchmark::State& state) {
  const auto& m = pathfinder_module();
  const auto& profile = pathfinder_profile();
  fi::StratifiedOptions options;
  options.trials_per_site = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fi::run_stratified_campaign(m, profile, options).sdc_prob());
  }
}
BENCHMARK(BM_StratifiedCampaign);

void BM_DuplicationPass(benchmark::State& state) {
  const auto& m = pathfinder_module();
  for (auto _ : state) {
    const auto result = protect::duplicate_all(m);
    benchmark::DoNotOptimize(result.added_insts);
  }
}
BENCHMARK(BM_DuplicationPass);

void BM_ParsePrintRoundTrip(benchmark::State& state) {
  const auto text = ir::print_module(pathfinder_module());
  for (auto _ : state) {
    const auto m = ir::parse_module(text);
    benchmark::DoNotOptimize(m->num_insts());
  }
}
BENCHMARK(BM_ParsePrintRoundTrip);

void BM_PairedTTest(benchmark::State& state) {
  support::Rng rng(23);
  std::vector<double> a, b;
  for (int i = 0; i < 1000; ++i) {
    a.push_back(rng.next_double());
    b.push_back(a.back() + 0.01 * rng.next_double());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::paired_ttest(a, b).p);
  }
}
BENCHMARK(BM_PairedTTest);

}  // namespace

BENCHMARK_MAIN();
