// Table II: p-values of paired t-tests comparing per-instruction SDC
// probabilities predicted by each model against per-instruction FI
// measurements (100 injections per instruction, as in §V-B2), plus the
// rejection counts the paper reports (TRIDENT 3/11, fs+fc 9/11, fs 7/11).
//
// TRIDENT_TRIALS overrides the per-instruction injection count.
// TRIDENT_INSTS overrides the number of sampled static instructions per
// benchmark (default 40; the paper uses all of them, which is slower).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/trident.h"
#include "fi/campaign.h"
#include "harness.h"
#include "stats/ttest.h"

namespace {

uint64_t insts_from_env() {
  const char* env = std::getenv("TRIDENT_INSTS");
  if (env == nullptr) return 40;
  const auto v = std::strtoull(env, nullptr, 10);
  return v == 0 ? 40 : v;
}

}  // namespace

int main() {
  using namespace trident;
  const uint64_t trials = bench::trials_from_env(100);
  const uint64_t max_insts = insts_from_env();

  std::printf("Table II: paired t-test p-values, per-instruction SDC "
              "probabilities vs FI\n(%llu injections per instruction, up "
              "to %llu sampled instructions per benchmark;\n p > 0.05 => "
              "prediction statistically indistinguishable from FI)\n\n",
              static_cast<unsigned long long>(trials),
              static_cast<unsigned long long>(max_insts));
  std::printf("%-14s %9s %9s %9s\n", "benchmark", "TRIDENT", "fs+fc", "fs");

  int rejected_trident = 0, rejected_fsfc = 0, rejected_fs = 0, total = 0;
  for (const auto& p : bench::prepare_all()) {
    const core::Trident full(p.module, p.profile, core::ModelConfig::full());
    const core::Trident fsfc(p.module, p.profile, core::ModelConfig::fs_fc());
    const core::Trident fs(p.module, p.profile, core::ModelConfig::fs_only());

    // Sample the most-executed instructions (they dominate both the FI
    // site distribution and the protection decisions).
    auto insts = full.injectable_instructions();
    std::sort(insts.begin(), insts.end(),
              [&](const ir::InstRef& a, const ir::InstRef& b) {
                return p.profile.exec(a) > p.profile.exec(b);
              });
    if (insts.size() > max_insts) insts.resize(max_insts);

    std::vector<double> fi_vals, t_vals, c_vals, s_vals;
    for (const auto& ref : insts) {
      fi::CampaignOptions options;
      options.threads = bench::fi_threads();
      options.trials = trials;
      options.seed = 9000 + ref.inst;
      fi_vals.push_back(
          fi::run_instruction_campaign(p.module, p.profile, ref, options)
              .sdc_prob());
      t_vals.push_back(full.predict(ref).sdc);
      c_vals.push_back(fsfc.predict(ref).sdc);
      s_vals.push_back(fs.predict(ref).sdc);
    }

    const auto pt = stats::paired_ttest(t_vals, fi_vals);
    const auto pc = stats::paired_ttest(c_vals, fi_vals);
    const auto ps = stats::paired_ttest(s_vals, fi_vals);
    std::printf("%-14s %9.3f %9.3f %9.3f\n", p.workload.name.c_str(), pt.p,
                pc.p, ps.p);
    rejected_trident += pt.p <= 0.05;
    rejected_fsfc += pc.p <= 0.05;
    rejected_fs += ps.p <= 0.05;
    ++total;
  }
  std::printf("\nNo. of rejections: TRIDENT %d/%d, fs+fc %d/%d, fs %d/%d\n",
              rejected_trident, total, rejected_fsfc, total, rejected_fs,
              total);
  std::printf("(paper: TRIDENT 3/11, fs+fc 9/11, fs 7/11)\n");
  return 0;
}
