// Figure 8: SDC probability reduction with selective instruction
// duplication at the paper's two overhead bounds (1/3 and 2/3 of the
// full-duplication overhead), with instruction selection guided by
// TRIDENT, fs+fc and fs. FI evaluates the protected binaries (FI is used
// only for evaluation, not selection — §VI).
//
// TRIDENT_TRIALS overrides the per-campaign FI trial count (default
// 1,000 to keep the 7 campaigns per benchmark tractable).
#include <cstdio>
#include <vector>

#include "core/trident.h"
#include "fi/campaign.h"
#include "harness.h"
#include "profiler/profiler.h"
#include "protect/duplication.h"
#include "protect/selector.h"
#include "stats/stats.h"

namespace {

using namespace trident;

double protected_sdc(const bench::Prepared& p, const core::Trident& model,
                     double fraction, uint64_t trials, double* overhead) {
  const auto plan = protect::select_for_duplication(
      p.module, p.profile,
      [&](ir::InstRef ref) { return model.predict(ref).sdc; }, fraction);
  const auto result = protect::duplicate_instructions(p.module, plan.selected);
  const auto profile = prof::collect_profile(result.module);
  if (overhead != nullptr) {
    *overhead = static_cast<double>(profile.total_dynamic) /
                    static_cast<double>(p.profile.total_dynamic) -
                1.0;
  }
  fi::CampaignOptions options;
  options.threads = bench::fi_threads();
  options.trials = trials;
  return fi::run_overall_campaign(result.module, profile, options)
      .sdc_prob();
}

}  // namespace

int main() {
  const uint64_t trials = bench::trials_from_env(1000);
  const auto prepared = bench::prepare_all();

  // The paper's overhead bounds are fractions of the measured
  // full-duplication overhead (36.18% wall-clock there; dynamic
  // instructions here).
  double full_overhead = 0;
  for (const auto& p : prepared) {
    const auto full = protect::duplicate_all(p.module);
    const auto profile = prof::collect_profile(full.module);
    full_overhead += static_cast<double>(profile.total_dynamic) /
                         static_cast<double>(p.profile.total_dynamic) -
                     1.0;
  }
  full_overhead /= prepared.size();
  std::printf("Figure 8: SDC reduction with selective duplication\n");
  std::printf("full-duplication overhead (dynamic instructions): %.2f%% "
              "(paper wall-clock: 36.18%%)\n",
              full_overhead * 100);
  std::printf("budget levels: 1/3 and 2/3 of full duplication; FI trials "
              "per campaign: %llu\n\n",
              static_cast<unsigned long long>(trials));

  std::printf("%-14s %9s | %9s %9s %9s | %9s %9s %9s\n", "benchmark",
              "baseline", "TRI 1/3", "fsfc 1/3", "fs 1/3", "TRI 2/3",
              "fsfc 2/3", "fs 2/3");

  std::vector<double> base, t13, c13, s13, t23, c23, s23;
  for (const auto& p : prepared) {
    fi::CampaignOptions options;
    options.threads = bench::fi_threads();
    options.trials = trials;
    const double baseline =
        fi::run_overall_campaign(p.module, p.profile, options).sdc_prob();

    const core::Trident full(p.module, p.profile, core::ModelConfig::full());
    const core::Trident fsfc(p.module, p.profile, core::ModelConfig::fs_fc());
    const core::Trident fs(p.module, p.profile, core::ModelConfig::fs_only());

    const double vt13 = protected_sdc(p, full, 1.0 / 3, trials, nullptr);
    const double vc13 = protected_sdc(p, fsfc, 1.0 / 3, trials, nullptr);
    const double vs13 = protected_sdc(p, fs, 1.0 / 3, trials, nullptr);
    const double vt23 = protected_sdc(p, full, 2.0 / 3, trials, nullptr);
    const double vc23 = protected_sdc(p, fsfc, 2.0 / 3, trials, nullptr);
    const double vs23 = protected_sdc(p, fs, 2.0 / 3, trials, nullptr);

    std::printf("%-14s %8.2f%% | %8.2f%% %8.2f%% %8.2f%% | %8.2f%% %8.2f%% "
                "%8.2f%%\n",
                p.workload.name.c_str(), baseline * 100, vt13 * 100,
                vc13 * 100, vs13 * 100, vt23 * 100, vc23 * 100, vs23 * 100);
    base.push_back(baseline);
    t13.push_back(vt13);
    c13.push_back(vc13);
    s13.push_back(vs13);
    t23.push_back(vt23);
    c23.push_back(vc23);
    s23.push_back(vs23);
  }

  const double base_avg = stats::mean(base);
  const auto reduction = [&](const std::vector<double>& v) {
    return (1.0 - stats::mean(v) / base_avg) * 100;
  };
  std::printf("\naverage SDC: baseline %.2f%%\n", base_avg * 100);
  std::printf("SDC reduction at 1/3 budget: TRIDENT %.0f%%, fs+fc %.0f%%, "
              "fs %.0f%%  (paper: 64%%, 64%%, 40%%)\n",
              reduction(t13), reduction(c13), reduction(s13));
  std::printf("SDC reduction at 2/3 budget: TRIDENT %.0f%%, fs+fc %.0f%%, "
              "fs %.0f%%  (paper: 90%%, 87%%, 74%%)\n",
              reduction(t23), reduction(c23), reduction(s23));
  return 0;
}
