// Figure 5: overall SDC probabilities measured by FI and predicted by
// TRIDENT and the two simpler models (fs+fc, fs), with the paper's §V-B
// summary statistics: per-model averages, mean absolute errors and the
// paired t-test of TRIDENT vs FI.
//
// Set TRIDENT_TRIALS to override the default 3,000 FI trials per
// benchmark (the paper's sample size).
#include <cstdio>
#include <vector>

#include "core/trident.h"
#include "fi/campaign.h"
#include "harness.h"
#include "stats/stats.h"
#include "stats/ttest.h"

int main() {
  using namespace trident;
  const uint64_t trials = bench::trials_from_env(3000);

  std::printf("Figure 5: Overall SDC probabilities (FI trials per "
              "benchmark: %llu)\n\n",
              static_cast<unsigned long long>(trials));
  std::printf("%-14s %10s %8s %9s %8s %8s\n", "benchmark", "FI", "±95%%",
              "TRIDENT", "fs+fc", "fs");

  std::vector<double> fi_vals, trident_vals, fsfc_vals, fs_vals;
  for (const auto& p : bench::prepare_all()) {
    fi::CampaignOptions options;
    options.threads = bench::fi_threads();
    options.trials = trials;
    options.metrics = &bench::metrics();
    const auto campaign =
        fi::run_overall_campaign(p.module, p.profile, options);

    const core::Trident full(p.module, p.profile, core::ModelConfig::full());
    const core::Trident fsfc(p.module, p.profile, core::ModelConfig::fs_fc());
    const core::Trident fs(p.module, p.profile, core::ModelConfig::fs_only());
    // The paper samples the same number of dynamic instructions in the
    // model as it injects in FI, for a fair comparison (§V-B1).
    const double t_v = full.overall_sdc(trials, 11);
    const double c_v = fsfc.overall_sdc(trials, 11);
    const double s_v = fs.overall_sdc(trials, 11);
    full.export_metrics(bench::metrics());

    std::printf("%-14s %9.2f%% %7.2f%% %8.2f%% %7.2f%% %7.2f%%\n",
                p.workload.name.c_str(), campaign.sdc_prob() * 100,
                campaign.sdc_ci95() * 100, t_v * 100, c_v * 100, s_v * 100);
    fi_vals.push_back(campaign.sdc_prob());
    trident_vals.push_back(t_v);
    fsfc_vals.push_back(c_v);
    fs_vals.push_back(s_v);
  }

  const auto avg = [](const std::vector<double>& v) {
    return stats::mean(v) * 100;
  };
  std::printf("\n%-14s %9.2f%% %8s %8.2f%% %7.2f%% %7.2f%%\n", "average",
              avg(fi_vals), "", avg(trident_vals), avg(fsfc_vals),
              avg(fs_vals));
  std::printf("\nmean absolute error vs FI (percentage points):\n");
  std::printf("  TRIDENT %6.2f   fs+fc %6.2f   fs %6.2f\n",
              stats::mean_absolute_error(trident_vals, fi_vals) * 100,
              stats::mean_absolute_error(fsfc_vals, fi_vals) * 100,
              stats::mean_absolute_error(fs_vals, fi_vals) * 100);

  std::printf("\npaired t-test vs FI (p > 0.05 => statistically "
              "indistinguishable):\n");
  for (const auto& [name, vals] :
       std::vector<std::pair<const char*, const std::vector<double>*>>{
           {"TRIDENT", &trident_vals},
           {"fs+fc", &fsfc_vals},
           {"fs", &fs_vals}}) {
    const auto t = stats::paired_ttest(*vals, fi_vals);
    std::printf("  %-8s p = %.3f%s\n", name, t.p,
                t.p > 0.05 ? "  (fail to reject H0)" : "  (rejected)");
  }
  bench::write_metrics_manifest("fig5_overall_sdc");
  return 0;
}
