// Shared plumbing for the per-table/figure harness binaries.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ir/module.h"
#include "obs/metrics.h"
#include "profiler/profile.h"
#include "workloads/workloads.h"

namespace trident::bench {

struct Prepared {
  workloads::Workload workload;
  ir::Module module;
  prof::Profile profile;
};

/// Builds and profiles every workload (the fixed cost of TRIDENT's
/// profiling phase is included in each harness's reported numbers).
std::vector<Prepared> prepare_all();

/// Reads TRIDENT_TRIALS from the environment (campaign size knob for
/// quick runs); returns `dflt` when unset.
uint64_t trials_from_env(uint64_t dflt);

/// Worker threads for the harnesses' parallel stages (FI campaigns and
/// the per-instruction model sweep): TRIDENT_THREADS env var, default
/// min(8, hardware_concurrency). All parallel stages are bit-identical
/// regardless of this value — only wall-clock changes.
uint32_t fi_threads();

/// Wall-clock seconds of a callable.
double time_seconds(const std::function<void()>& fn);

/// Measures the average seconds of one FI trial on this workload (the
/// paper projects campaign costs from single-trial measurements, §V-C:
/// "projected based on the measurement of one FI trial").
double measure_fi_trial_seconds(const Prepared& p, uint32_t trials = 30);

/// Process-wide run-metrics registry for the harness binaries. Campaign
/// helpers and benches register their counters here; point
/// fi::CampaignOptions::metrics at it to capture campaign tallies.
obs::Registry& metrics();

/// Writes the harness's run manifest (trident-run-metrics/1) to the
/// path named by TRIDENT_METRICS_OUT; no-op when the variable is unset.
/// `command` tags the manifest with the producing bench.
void write_metrics_manifest(const std::string& command);

}  // namespace trident::bench
