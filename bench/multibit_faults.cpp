// Multi-bit upset study (the single-vs-multi-bit question the paper
// leans on for its fault model, citing Sangchoolie et al.'s "One bit is
// (not) enough", DSN 2017): re-runs the FI campaigns with 1-, 2- and
// 4-bit adjacent-burst flips to check the paper's premise that single-bit
// SDC probabilities are representative.
#include <cstdio>
#include <vector>

#include "fi/campaign.h"
#include "harness.h"
#include "stats/stats.h"

int main() {
  using namespace trident;
  const uint64_t trials = bench::trials_from_env(1500);
  std::printf("Multi-bit upsets: SDC probability by burst width "
              "(%llu trials/benchmark)\n\n",
              static_cast<unsigned long long>(trials));
  std::printf("%-14s %9s %9s %9s | %9s %9s %9s\n", "benchmark", "1-bit",
              "2-bit", "4-bit", "crash 1b", "crash 2b", "crash 4b");

  std::vector<double> sdc1, sdc2, sdc4;
  for (const auto& p : bench::prepare_all()) {
    double s[3], c[3];
    const uint32_t widths[3] = {1, 2, 4};
    for (int i = 0; i < 3; ++i) {
      fi::CampaignOptions options;
      options.threads = bench::fi_threads();
      options.trials = trials;
      options.num_bits = widths[i];
      options.metrics = &bench::metrics();
      const auto result =
          fi::run_overall_campaign(p.module, p.profile, options);
      s[i] = result.sdc_prob();
      c[i] = result.crash_prob();
    }
    std::printf("%-14s %8.2f%% %8.2f%% %8.2f%% | %8.2f%% %8.2f%% %8.2f%%\n",
                p.workload.name.c_str(), s[0] * 100, s[1] * 100, s[2] * 100,
                c[0] * 100, c[1] * 100, c[2] * 100);
    sdc1.push_back(s[0]);
    sdc2.push_back(s[1]);
    sdc4.push_back(s[2]);
  }
  std::printf("\naverages: 1-bit %.2f%%, 2-bit %.2f%%, 4-bit %.2f%%\n",
              stats::mean(sdc1) * 100, stats::mean(sdc2) * 100,
              stats::mean(sdc4) * 100);
  std::printf("Sangchoolie et al.'s finding (and the paper's premise): "
              "single-bit campaigns\ntrack multi-bit SDC probabilities "
              "closely; divergence here would undermine the\nfault "
              "model, not the propagation model.\n");
  bench::write_metrics_manifest("multibit_faults");
  return 0;
}
