// FI-acceleration comparison (paper §VIII related work): plain uniform
// Monte-Carlo injection vs Relyzer-style stratified injection vs TRIDENT
// (no injection at all) — error against a high-trial reference campaign,
// per budget. Positions the model on the cost/accuracy spectrum the
// paper argues about.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/trident.h"
#include "fi/accelerated.h"
#include "fi/campaign.h"
#include "harness.h"
#include "stats/stats.h"

int main() {
  using namespace trident;
  const uint64_t reference_trials = bench::trials_from_env(8000);

  std::printf("FI acceleration: error vs a %llu-trial reference campaign\n\n",
              static_cast<unsigned long long>(reference_trials));
  std::printf("%-14s %9s | %19s | %19s | %9s\n", "benchmark", "reference",
              "plain FI (trials)", "stratified (trials)", "TRIDENT");

  std::vector<double> err_plain, err_strat, err_model;
  for (const auto& p : bench::prepare_all()) {
    fi::CampaignOptions ref_options;
    ref_options.threads = bench::fi_threads();
    ref_options.trials = reference_trials;
    ref_options.seed = 999;
    const double reference =
        fi::run_overall_campaign(p.module, p.profile, ref_options)
            .sdc_prob();

    // Stratified: 4 injections per executed static site.
    fi::StratifiedOptions strat_options;
    strat_options.trials_per_site = 4;
    const auto strat =
        fi::run_stratified_campaign(p.module, p.profile, strat_options);

    // Plain: the same total trial budget as the stratified run.
    fi::CampaignOptions plain_options;
    plain_options.threads = bench::fi_threads();
    plain_options.trials = strat.total_trials;
    const auto plain =
        fi::run_overall_campaign(p.module, p.profile, plain_options);

    const core::Trident model(p.module, p.profile);
    const double model_sdc = model.overall_sdc_exact();

    std::printf("%-14s %8.2f%% | %8.2f%% (%6llu) | %8.2f%% (%6llu) | "
                "%8.2f%%\n",
                p.workload.name.c_str(), reference * 100,
                plain.sdc_prob() * 100,
                static_cast<unsigned long long>(plain.total()),
                strat.sdc_prob() * 100,
                static_cast<unsigned long long>(strat.total_trials),
                model_sdc * 100);
    err_plain.push_back(std::abs(plain.sdc_prob() - reference));
    err_strat.push_back(std::abs(strat.sdc_prob() - reference));
    err_model.push_back(std::abs(model_sdc - reference));
  }

  std::printf("\nmean |error| vs reference: plain %.2f pp, stratified "
              "%.2f pp (same trial budget),\nTRIDENT %.2f pp (zero "
              "injections).\n",
              stats::mean(err_plain) * 100, stats::mean(err_strat) * 100,
              stats::mean(err_model) * 100);
  std::printf("Stratified FI (Relyzer-style) squeezes more accuracy per "
              "trial; TRIDENT removes\nthe trials entirely at the cost "
              "of model error — the paper's §VIII positioning.\n");
  return 0;
}
