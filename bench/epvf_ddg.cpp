// The real ePVF, DDG and all (§VII-C): the paper replaced ePVF's
// crash-propagation model with FI-measured crash rates because the full
// dynamic DDG it needs "is extremely time-consuming and resource hungry
// ... a maximum of a million dynamic instructions in practice". This
// harness runs the real thing on our (small) workloads, compares its
// prediction against the paper's conservative FI-substituted variant and
// TRIDENT, and extrapolates the DDG footprint to the paper's benchmark
// sizes (average 109M dynamic instructions) to show why the substitution
// was necessary.
#include <cstdio>
#include <vector>

#include "baselines/epvf.h"
#include "core/trident.h"
#include "ddg/ddg.h"
#include "fi/campaign.h"
#include "harness.h"
#include "stats/stats.h"

int main() {
  using namespace trident;
  const uint64_t trials = bench::trials_from_env(2000);
  std::printf("Real ePVF with DDG crash model (§VII-C)\n\n");
  std::printf("%-14s %10s %10s %9s %10s | %8s %9s %9s %8s\n", "benchmark",
              "DDG nodes", "DDG edges", "DDG MB", "capture s", "FI",
              "eP(DDG)", "eP(FI-cr)", "TRIDENT");

  double bytes_per_dyn = 0;
  int count = 0;
  for (const auto& p : bench::prepare_all()) {
    double capture_s = 0;
    ddg::Ddg graph;
    capture_s = bench::time_seconds(
        [&] { graph = ddg::Ddg::capture(p.module); });
    graph.users();  // include the adjacency in the footprint

    fi::CampaignOptions options;
    options.threads = bench::fi_threads();
    options.trials = trials;
    const auto campaign =
        fi::run_overall_campaign(p.module, p.profile, options);

    const baselines::EpvfModel epvf(p.module, p.profile);
    const core::Trident trident(p.module, p.profile);
    const double ddg_variant = epvf.overall_with_ddg_crashes(graph);
    const double fi_variant =
        epvf.overall_with_measured_crashes(campaign.crash_prob());

    std::printf("%-14s %10zu %10zu %9.2f %10.4f | %7.2f%% %8.2f%% %8.2f%% "
                "%7.2f%%\n",
                p.workload.name.c_str(), graph.nodes().size(),
                graph.num_edges(), graph.memory_bytes() / 1e6, capture_s,
                campaign.sdc_prob() * 100, ddg_variant * 100,
                fi_variant * 100, trident.overall_sdc_exact() * 100);
    bytes_per_dyn += static_cast<double>(graph.memory_bytes()) /
                     static_cast<double>(graph.nodes().size());
    ++count;
  }
  bytes_per_dyn /= count;

  std::printf("\nDDG footprint: %.1f bytes per dynamic instruction.\n",
              bytes_per_dyn);
  std::printf("Extrapolated to the paper's average benchmark (109M dynamic "
              "instructions):\n  ~%.1f GB of DDG per program — the reason "
              "the paper capped ePVF at 1M dynamic\n  instructions and "
              "substituted FI-measured crash rates. TRIDENT's profile for "
              "the\n  same program is a few MB (exec counts, branch "
              "probabilities, pruned edges).\n",
              bytes_per_dyn * 109e6 / 1e9);
  return 0;
}
