// Figure 6: computation spent to predict SDC probabilities.
//  (a) overall SDC probability: wall-clock vs number of samples
//      (500..7000), FI vs TRIDENT;
//  (b) per-instruction SDC: wall-clock vs number of static instructions
//      (50..7000), FI-100/500/1000 vs TRIDENT.
//
// As in the paper (§V-C), FI campaign times are projected from measured
// single-trial times ("projected based on the measurement of one FI
// trial, averaged over 30 FI runs"); TRIDENT times are measured directly
// and include the fixed profiling cost.
//
// Section (c) is a strong-scaling study of this reproduction's parallel
// stages: the same FI campaign and per-instruction sweep at 1..N worker
// threads (N = fi_threads(), i.e. TRIDENT_THREADS or min(8, hardware)).
// Both stages are bit-identical at every thread count, so the speedup
// column is pure wall-clock. TRIDENT_TRIALS shrinks the campaign.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/trident.h"
#include "fi/campaign.h"
#include "harness.h"
#include "profiler/profiler.h"

int main() {
  using namespace trident;
  const auto prepared = bench::prepare_all();

  // Mean per-trial FI cost and mean profiling cost across workloads.
  double fi_trial_s = 0;
  double profile_s = 0;
  for (const auto& p : prepared) {
    fi_trial_s += bench::measure_fi_trial_seconds(p);
    profile_s += bench::time_seconds(
        [&] { prof::collect_profile(p.module); });
  }
  fi_trial_s /= prepared.size();
  profile_s /= prepared.size();

  std::printf("Figure 6a: overall SDC probability — time vs #samples\n");
  std::printf("(mean across the 11 benchmarks; FI projected from one-trial "
              "cost %.3f ms; TRIDENT profiling cost %.3f ms)\n\n",
              fi_trial_s * 1e3, profile_s * 1e3);
  std::printf("%8s %14s %14s %10s\n", "samples", "FI (s)", "TRIDENT (s)",
              "speedup");
  for (const uint64_t samples : {500, 1000, 2000, 3000, 5000, 7000}) {
    const double fi_s = fi_trial_s * static_cast<double>(samples);
    // TRIDENT: profiling once + sampled inference, measured.
    double trident_s = profile_s;
    trident_s += bench::time_seconds([&] {
                   for (const auto& p : prepared) {
                     const core::Trident model(p.module, p.profile);
                     model.overall_sdc(samples, 3);
                   }
                 }) /
                 prepared.size();
    std::printf("%8llu %14.4f %14.4f %9.2fx\n",
                static_cast<unsigned long long>(samples), fi_s, trident_s,
                fi_s / trident_s);
  }

  std::printf("\nFigure 6b: per-instruction SDC — time vs #static "
              "instructions\n");
  std::printf("(FI-N = N injections per instruction, projected)\n\n");
  std::printf("%8s %12s %12s %12s %14s\n", "#insts", "FI-100 (s)",
              "FI-500 (s)", "FI-1000 (s)", "TRIDENT (s)");
  for (const uint64_t n : {50, 100, 500, 1000, 3000, 7000}) {
    const double fi100 = fi_trial_s * 100 * static_cast<double>(n);
    const double fi500 = fi_trial_s * 500 * static_cast<double>(n);
    const double fi1000 = fi_trial_s * 1000 * static_cast<double>(n);
    // TRIDENT: profile once, then predict n instructions (cycling over
    // the population when n exceeds it — the marginal cost per extra
    // instruction is what matters).
    double trident_s = profile_s;
    trident_s += bench::time_seconds([&] {
                   for (const auto& p : prepared) {
                     const core::Trident model(p.module, p.profile);
                     const auto insts = model.injectable_instructions();
                     for (uint64_t k = 0; k < n; ++k) {
                       model.predict(insts[k % insts.size()]);
                     }
                   }
                 }) /
                 prepared.size();
    std::printf("%8llu %12.2f %12.2f %12.2f %14.4f\n",
                static_cast<unsigned long long>(n), fi100, fi500, fi1000,
                trident_s);
  }
  std::printf("\nShape check: FI grows linearly with samples/instructions; "
              "TRIDENT stays nearly flat\nafter its fixed profiling cost "
              "(paper: 2.37x at 1,000 samples, 6.7x at 3,000,\n15.13x at "
              "7,000; exact factors depend on the substrate).\n");

  // (c) Strong scaling of this reproduction's parallel stages. Measured,
  // not projected: the campaign really runs at each thread count, and the
  // aggregate counts are asserted identical across counts.
  const uint32_t max_threads = bench::fi_threads();
  const uint64_t scaling_trials = bench::trials_from_env(400);
  std::printf("\nFigure 6c: strong scaling — measured wall-clock at 1..%u "
              "worker threads\n(aggregated across the %zu benchmarks; FI "
              "campaign: %llu trials each;\nsweep: every injectable "
              "instruction, fresh model per run)\n\n",
              max_threads, prepared.size(),
              static_cast<unsigned long long>(scaling_trials));
  std::printf("%8s %16s %10s %16s %10s\n", "threads", "FI camp (s)",
              "speedup", "sweep (s)", "speedup");
  std::vector<uint32_t> counts{1};
  for (uint32_t t = 2; t < max_threads; t *= 2) counts.push_back(t);
  if (max_threads > 1) counts.push_back(max_threads);
  double fi_base = 0, sweep_base = 0;
  uint64_t reference_sdc = 0;
  for (const uint32_t threads : counts) {
    uint64_t total_sdc = 0;
    const double fi_s = bench::time_seconds([&] {
      for (const auto& p : prepared) {
        fi::CampaignOptions options;
        options.trials = scaling_trials;
        options.seed = 7;
        options.threads = threads;
        total_sdc += fi::run_overall_campaign(p.module, p.profile, options).sdc;
      }
    });
    const double sweep_s = bench::time_seconds([&] {
      for (const auto& p : prepared) {
        const core::Trident model(p.module, p.profile);
        model.predict_all(threads);
      }
    });
    if (threads == 1) {
      fi_base = fi_s;
      sweep_base = sweep_s;
      reference_sdc = total_sdc;
    } else if (total_sdc != reference_sdc) {
      std::printf("DETERMINISM VIOLATION at %u threads: SDC count %llu != "
                  "%llu\n",
                  threads, static_cast<unsigned long long>(total_sdc),
                  static_cast<unsigned long long>(reference_sdc));
      return 1;
    }
    std::printf("%8u %16.3f %9.2fx %16.4f %9.2fx\n", threads, fi_s,
                fi_base / fi_s, sweep_s, sweep_base / sweep_s);
  }
  std::printf("\n(identical campaign outcomes at every thread count: "
              "verified)\n");
  return 0;
}
