// Trial-throughput tracker for the FI campaign engine.
//
// Runs the same overall campaign per workload twice — snapshots off and
// snapshots on — on one worker thread, verifies the two CampaignResults
// are bit-identical (same trials vector, same tallies), and emits
// BENCH_trial_throughput.json so the perf trajectory of the trial engine
// is machine-tracked across PRs (acceptance bar: >= 2x median speedup).
//
// Knobs: TRIDENT_TRIALS (campaign size; default 500),
// TRIDENT_BENCH_OUT (output path; default BENCH_trial_throughput.json).
// Timing includes the instrumented golden run that builds the snapshot
// set — the speedup reported is the end-to-end campaign speedup, not a
// per-trial number with setup costs hidden.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "fi/campaign.h"
#include "harness.h"

namespace {

using namespace trident;

bool same_result(const fi::CampaignResult& a, const fi::CampaignResult& b) {
  if (a.trials.size() != b.trials.size()) return false;
  for (size_t i = 0; i < a.trials.size(); ++i) {
    const auto& x = a.trials[i];
    const auto& y = b.trials[i];
    if (x.outcome != y.outcome || x.target != y.target || x.bit != y.bit ||
        x.fuel_exhausted != y.fuel_exhausted) {
      return false;
    }
  }
  return a.sdc == b.sdc && a.benign == b.benign && a.crash == b.crash &&
         a.hang == b.hang && a.detected == b.detected &&
         a.fuel_exhausted == b.fuel_exhausted;
}

struct Row {
  std::string name;
  double off_trials_per_sec = 0;
  double on_trials_per_sec = 0;
  double speedup = 0;
  bool identical = false;
  uint64_t snapshot_count = 0;
  uint64_t snapshot_bytes = 0;
  uint64_t skipped_insts = 0;
};

}  // namespace

int main() {
  const auto prepared = bench::prepare_all();
  const uint64_t trials = bench::trials_from_env(500);

  std::printf("Trial throughput: overall campaign, %llu trials per "
              "workload, 1 worker thread\n\n",
              static_cast<unsigned long long>(trials));
  std::printf("%-14s %14s %14s %9s %6s %10s\n", "workload", "off (tr/s)",
              "on (tr/s)", "speedup", "snaps", "snap MiB");

  std::vector<Row> rows;
  bool all_identical = true;
  for (const auto& p : prepared) {
    fi::CampaignOptions options;
    options.trials = trials;
    options.seed = 99;
    options.threads = 1;

    options.max_snapshots = 0;
    fi::CampaignResult off_result;
    const double off_s = bench::time_seconds([&] {
      off_result = fi::run_overall_campaign(p.module, p.profile, options);
    });

    obs::Registry on_metrics;
    options.max_snapshots = 64;
    options.metrics = &on_metrics;
    fi::CampaignResult on_result;
    const double on_s = bench::time_seconds([&] {
      on_result = fi::run_overall_campaign(p.module, p.profile, options);
    });

    Row row;
    row.name = p.workload.name;
    row.off_trials_per_sec = off_s > 0 ? trials / off_s : 0;
    row.on_trials_per_sec = on_s > 0 ? trials / on_s : 0;
    row.speedup = on_s > 0 ? off_s / on_s : 0;
    row.identical = same_result(off_result, on_result);
    row.snapshot_count = on_metrics.counter("fi.snapshot_count");
    row.snapshot_bytes = on_metrics.counter("fi.snapshot_bytes");
    row.skipped_insts = on_metrics.counter("fi.snapshot_skipped_insts");
    all_identical = all_identical && row.identical;

    std::printf("%-14s %14.1f %14.1f %8.2fx %6llu %10.2f%s\n",
                row.name.c_str(), row.off_trials_per_sec,
                row.on_trials_per_sec, row.speedup,
                static_cast<unsigned long long>(row.snapshot_count),
                static_cast<double>(row.snapshot_bytes) / (1 << 20),
                row.identical ? "" : "  RESULT MISMATCH");
    rows.push_back(std::move(row));
  }

  std::vector<double> speedups;
  for (const auto& row : rows) speedups.push_back(row.speedup);
  std::sort(speedups.begin(), speedups.end());
  const double median =
      speedups.empty()
          ? 0
          : (speedups.size() % 2 != 0
                 ? speedups[speedups.size() / 2]
                 : (speedups[speedups.size() / 2 - 1] +
                    speedups[speedups.size() / 2]) / 2);
  std::printf("\nmedian speedup: %.2fx; results bit-identical on vs off: "
              "%s\n",
              median, all_identical ? "yes" : "NO");

  const char* out_env = std::getenv("TRIDENT_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr && *out_env != '\0' ? out_env
                                             : "BENCH_trial_throughput.json";
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"schema\": \"trident-trial-throughput/1\",\n"
      << "  \"trials\": " << trials << ",\n  \"threads\": 1,\n"
      << "  \"median_speedup\": " << median << ",\n"
      << "  \"identical\": " << (all_identical ? "true" : "false") << ",\n"
      << "  \"workloads\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    out << "    {\"name\": \"" << row.name << "\", "
        << "\"trials_per_sec_off\": " << row.off_trials_per_sec << ", "
        << "\"trials_per_sec_on\": " << row.on_trials_per_sec << ", "
        << "\"speedup\": " << row.speedup << ", "
        << "\"identical\": " << (row.identical ? "true" : "false") << ", "
        << "\"snapshot_count\": " << row.snapshot_count << ", "
        << "\"snapshot_bytes\": " << row.snapshot_bytes << ", "
        << "\"snapshot_skipped_insts\": " << row.skipped_insts << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());

  bench::write_metrics_manifest("trial_throughput");
  return all_identical ? 0 : 1;
}
