// Trial-throughput tracker for the FI campaign engine.
//
// Runs the same overall campaign per workload four times — interpreter
// with snapshots off, interpreter with snapshots on, the
// direct-threaded engine with snapshots on, and the native-code engine
// with snapshots on — on one worker thread, verifies the four
// CampaignResults are bit-identical (same trials vector, same tallies),
// and emits BENCH_trial_throughput.json so the perf trajectory of the
// trial engine is machine-tracked across PRs (acceptance bars: >= 2x
// median snapshot speedup, >= 1.5x median threaded-vs-interp speedup,
// >= 2x median native-vs-threaded speedup, snapshots enabled on all).
//
// Knobs: TRIDENT_TRIALS (campaign size; default 500),
// TRIDENT_BENCH_OUT (output path; default BENCH_trial_throughput.json).
// Timing includes the instrumented golden run that builds the snapshot
// set and the one-time lowering — the speedups reported are end-to-end
// campaign speedups, not per-trial numbers with setup costs hidden. The
// one exception is the native host compile: it is hoisted out of the
// timed region (the process-wide compile cache is warmed first) and
// reported separately per workload as compile_ms, because production
// campaigns amortize that per-module cost over thousands of trials
// while the timed campaign here is deliberately short (see
// docs/EXPERIMENTS.md for the amortization math). On hosts without
// runtime compilation the native config falls back to the threaded
// engine; native_speedup then hovers near 1x and compile_ms stays 0.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "fi/campaign.h"
#include "harness.h"
#include "interp/native.h"

namespace {

using namespace trident;

bool same_result(const fi::CampaignResult& a, const fi::CampaignResult& b) {
  if (a.trials.size() != b.trials.size()) return false;
  for (size_t i = 0; i < a.trials.size(); ++i) {
    const auto& x = a.trials[i];
    const auto& y = b.trials[i];
    if (x.outcome != y.outcome || x.target != y.target || x.bit != y.bit ||
        x.fuel_exhausted != y.fuel_exhausted) {
      return false;
    }
  }
  return a.sdc == b.sdc && a.benign == b.benign && a.crash == b.crash &&
         a.hang == b.hang && a.detected == b.detected &&
         a.fuel_exhausted == b.fuel_exhausted;
}

struct Row {
  std::string name;
  double off_trials_per_sec = 0;
  double on_trials_per_sec = 0;
  double threaded_trials_per_sec = 0;
  double native_trials_per_sec = 0;
  double speedup = 0;         // interp on vs interp off (snapshot win)
  double engine_speedup = 0;  // threaded on vs interp on (backend win)
  double native_speedup = 0;  // native on vs threaded on (codegen win)
  bool identical = false;
  uint64_t snapshot_count = 0;
  uint64_t snapshot_bytes = 0;
  uint64_t skipped_insts = 0;
  uint64_t superinstructions = 0;
  uint64_t compile_ms = 0;          // native host-compile latency
  uint64_t native_fallbacks = 0;    // runs served by the fallback engine
};

}  // namespace

int main() {
  const auto prepared = bench::prepare_all();
  const uint64_t trials = bench::trials_from_env(500);

  std::printf("Trial throughput: overall campaign, %llu trials per "
              "workload, 1 worker thread\n\n",
              static_cast<unsigned long long>(trials));
  std::printf("%-14s %12s %12s %12s %12s %8s %8s %8s %8s\n", "workload",
              "off (tr/s)", "on (tr/s)", "thr (tr/s)", "nat (tr/s)",
              "snap-up", "eng-up", "nat-up", "cc (ms)");

  std::vector<Row> rows;
  bool all_identical = true;
  for (const auto& p : prepared) {
    fi::CampaignOptions options;
    options.trials = trials;
    options.seed = 99;
    options.threads = 1;

    options.max_snapshots = 0;
    fi::CampaignResult off_result;
    const double off_s = bench::time_seconds([&] {
      off_result = fi::run_overall_campaign(p.module, p.profile, options);
    });

    obs::Registry on_metrics;
    options.max_snapshots = 64;
    options.metrics = &on_metrics;
    fi::CampaignResult on_result;
    const double on_s = bench::time_seconds([&] {
      on_result = fi::run_overall_campaign(p.module, p.profile, options);
    });

    obs::Registry thr_metrics;
    options.engine = interp::EngineKind::Threaded;
    options.metrics = &thr_metrics;
    fi::CampaignResult thr_result;
    const double thr_s = bench::time_seconds([&] {
      thr_result = fi::run_overall_campaign(p.module, p.profile, options);
    });

    obs::Registry nat_metrics;
    options.engine = interp::EngineKind::Native;
    options.metrics = &nat_metrics;
    // Warm the process-wide compile cache outside the timed region: the
    // host compile is a one-time per-module cost — reported separately
    // below as compile_ms — and ground-truth campaigns amortize it over
    // thousands of trials, so folding it into a short timed campaign
    // would measure the compiler, not the trial engine. The handle keeps
    // the cache entry pinned for the timed run.
    const auto native_program = interp::NativeProgram::build(p.module);
    fi::CampaignResult nat_result;
    const double nat_s = bench::time_seconds([&] {
      nat_result = fi::run_overall_campaign(p.module, p.profile, options);
    });
    options.engine = interp::EngineKind::Interp;
    options.metrics = nullptr;

    Row row;
    row.name = p.workload.name;
    row.off_trials_per_sec = off_s > 0 ? trials / off_s : 0;
    row.on_trials_per_sec = on_s > 0 ? trials / on_s : 0;
    row.threaded_trials_per_sec = thr_s > 0 ? trials / thr_s : 0;
    row.native_trials_per_sec = nat_s > 0 ? trials / nat_s : 0;
    row.speedup = on_s > 0 ? off_s / on_s : 0;
    row.engine_speedup = thr_s > 0 ? on_s / thr_s : 0;
    row.native_speedup = nat_s > 0 ? thr_s / nat_s : 0;
    row.identical = same_result(off_result, on_result) &&
                    same_result(on_result, thr_result) &&
                    same_result(thr_result, nat_result);
    row.snapshot_count = on_metrics.counter("fi.snapshot_count");
    row.snapshot_bytes = on_metrics.counter("fi.snapshot_bytes");
    row.skipped_insts = on_metrics.counter("fi.snapshot_skipped_insts");
    row.superinstructions = thr_metrics.counter("engine.superinstructions");
    row.compile_ms = nat_metrics.counter("engine.native.compile_ms");
    row.native_fallbacks = nat_metrics.counter("engine.native.fallbacks");
    all_identical = all_identical && row.identical;

    std::printf(
        "%-14s %12.1f %12.1f %12.1f %12.1f %7.2fx %7.2fx %7.2fx %8llu%s\n",
        row.name.c_str(), row.off_trials_per_sec, row.on_trials_per_sec,
        row.threaded_trials_per_sec, row.native_trials_per_sec, row.speedup,
        row.engine_speedup, row.native_speedup,
        static_cast<unsigned long long>(row.compile_ms),
        row.identical ? "" : "  RESULT MISMATCH");
    rows.push_back(std::move(row));
  }

  const auto median_of = [](std::vector<double> v) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    return v.size() % 2 != 0 ? v[v.size() / 2]
                             : (v[v.size() / 2 - 1] + v[v.size() / 2]) / 2;
  };
  std::vector<double> speedups, engine_speedups, native_speedups;
  for (const auto& row : rows) {
    speedups.push_back(row.speedup);
    engine_speedups.push_back(row.engine_speedup);
    native_speedups.push_back(row.native_speedup);
  }
  const double median = median_of(speedups);
  const double median_engine = median_of(engine_speedups);
  const double median_native = median_of(native_speedups);
  std::printf("\nmedian snapshot speedup: %.2fx; median engine speedup "
              "(threaded vs interp, snapshots on): %.2fx; median native "
              "speedup (native vs threaded, snapshots on): %.2fx; results "
              "bit-identical across configs: %s\n",
              median, median_engine, median_native,
              all_identical ? "yes" : "NO");

  const char* out_env = std::getenv("TRIDENT_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr && *out_env != '\0' ? out_env
                                             : "BENCH_trial_throughput.json";
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"schema\": \"trident-trial-throughput/3\",\n"
      << "  \"trials\": " << trials << ",\n  \"threads\": 1,\n"
      << "  \"median_speedup\": " << median << ",\n"
      << "  \"median_engine_speedup\": " << median_engine << ",\n"
      << "  \"median_native_speedup\": " << median_native << ",\n"
      << "  \"identical\": " << (all_identical ? "true" : "false") << ",\n"
      << "  \"workloads\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    out << "    {\"name\": \"" << row.name << "\", "
        << "\"trials_per_sec_off\": " << row.off_trials_per_sec << ", "
        << "\"trials_per_sec_on\": " << row.on_trials_per_sec << ", "
        << "\"trials_per_sec_threaded\": " << row.threaded_trials_per_sec
        << ", "
        << "\"trials_per_sec_native\": " << row.native_trials_per_sec << ", "
        << "\"speedup\": " << row.speedup << ", "
        << "\"engine_speedup\": " << row.engine_speedup << ", "
        << "\"native_speedup\": " << row.native_speedup << ", "
        << "\"identical\": " << (row.identical ? "true" : "false") << ", "
        << "\"snapshot_count\": " << row.snapshot_count << ", "
        << "\"snapshot_bytes\": " << row.snapshot_bytes << ", "
        << "\"snapshot_skipped_insts\": " << row.skipped_insts << ", "
        << "\"superinstructions\": " << row.superinstructions << ", "
        << "\"compile_ms\": " << row.compile_ms << ", "
        << "\"native_fallbacks\": " << row.native_fallbacks << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());

  bench::write_metrics_manifest("trial_throughput");
  return all_identical ? 0 : 1;
}
