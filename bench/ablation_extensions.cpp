// Ablation of this repository's documented extensions over the paper's
// model (DESIGN.md §4/§6): per-configuration mean absolute error of the
// overall SDC prediction against FI across all workloads.
//
//   paper      — TRIDENT exactly as described in the paper
//   +addr      — + in-bounds store-address corruption tracking
//   +guard     — + guard (induction-variable) damping
//   +atten     — + relative-magnitude attenuation (full model, default)
#include <cstdio>
#include <vector>

#include "core/trident.h"
#include "fi/campaign.h"
#include "harness.h"
#include "stats/stats.h"

int main() {
  using namespace trident;
  const uint64_t trials = bench::trials_from_env(2000);

  struct Config {
    const char* name;
    bool addr, guard, atten, lucky;
  };
  const std::vector<Config> configs{
      {"paper", false, false, false, false},
      {"+addr", true, false, false, false},
      {"+guard", true, true, false, false},
      {"+atten", true, true, true, false},
      {"+lucky (full)", true, true, true, true},
  };

  const auto prepared = bench::prepare_all();
  std::vector<double> fi_vals;
  for (const auto& p : prepared) {
    fi::CampaignOptions options;
    options.threads = bench::fi_threads();
    options.trials = trials;
    fi_vals.push_back(
        fi::run_overall_campaign(p.module, p.profile, options).sdc_prob());
  }

  std::printf("Extension ablation: overall-SDC error vs FI "
              "(%llu trials/benchmark)\n\n",
              static_cast<unsigned long long>(trials));
  std::printf("%-16s %12s %12s\n", "configuration", "avg SDC", "MAE vs FI");
  std::printf("%-16s %11.2f%% %12s\n", "FI (truth)",
              stats::mean(fi_vals) * 100, "-");
  for (const auto& config : configs) {
    std::vector<double> predictions;
    for (const auto& p : prepared) {
      core::ModelConfig mc;
      mc.trace.track_store_addr = config.addr;
      mc.trace.guard_damping = config.guard;
      mc.trace.track_attenuation = config.atten;
      mc.lucky_stores = config.lucky;
      const core::Trident model(p.module, p.profile, mc);
      predictions.push_back(model.overall_sdc_exact());
    }
    std::printf("%-16s %11.2f%% %11.2f\n", config.name,
                stats::mean(predictions) * 100,
                stats::mean_absolute_error(predictions, fi_vals) * 100);
  }
  return 0;
}
