// Table I: characteristics of the benchmarks (suite, area, input), plus
// the substrate-specific columns that matter here (static/dynamic
// instruction counts on our IR).
#include <cstdio>

#include "harness.h"

int main() {
  using namespace trident;
  std::printf("Table I: Characteristics of Benchmarks\n");
  std::printf("%-14s %-10s %-28s %-26s %8s %10s\n", "benchmark", "suite",
              "area", "input (scaled)", "static", "dynamic");
  for (const auto& p : bench::prepare_all()) {
    std::printf("%-14s %-10s %-28s %-26s %8zu %10llu\n",
                p.workload.name.c_str(), p.workload.suite.c_str(),
                p.workload.area.c_str(), p.workload.input.c_str(),
                p.module.num_insts(),
                static_cast<unsigned long long>(p.profile.total_dynamic));
  }
  return 0;
}
