#include "harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "fi/campaign.h"
#include "profiler/profiler.h"
#include "support/thread_pool.h"

namespace trident::bench {

std::vector<Prepared> prepare_all() {
  obs::ScopedTimer timer(metrics(), "phase.prepare.seconds");
  std::vector<Prepared> out;
  for (const auto& w : workloads::all_workloads()) {
    Prepared p{w, w.build(), {}};
    p.profile = prof::collect_profile(p.module);
    out.push_back(std::move(p));
  }
  return out;
}

uint64_t trials_from_env(uint64_t dflt) {
  const char* env = std::getenv("TRIDENT_TRIALS");
  if (env == nullptr) return dflt;
  const auto v = std::strtoull(env, nullptr, 10);
  return v == 0 ? dflt : v;
}

uint32_t fi_threads() {
  // An explicit TRIDENT_THREADS wins (it also sizes the shared pool via
  // ThreadPool::default_threads); otherwise cap the harnesses at 8 so
  // reported numbers are comparable across machines.
  const char* env = std::getenv("TRIDENT_THREADS");
  if (env != nullptr) {
    const auto v = std::strtoul(env, nullptr, 10);
    if (v > 0) return static_cast<uint32_t>(v);
  }
  return std::min(8u, support::ThreadPool::default_threads());
}

double time_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

double measure_fi_trial_seconds(const Prepared& p, uint32_t trials) {
  fi::CampaignOptions options;
  options.trials = trials;
  options.seed = 42;
  options.threads = 1;  // per-trial cost must be measured serially
  double seconds = time_seconds(
      [&] { fi::run_overall_campaign(p.module, p.profile, options); });
  return seconds / trials;
}

obs::Registry& metrics() {
  static obs::Registry registry;
  return registry;
}

void write_metrics_manifest(const std::string& command) {
  const char* path = std::getenv("TRIDENT_METRICS_OUT");
  if (path == nullptr || *path == '\0') return;
  auto& registry = metrics();
  registry.set_counter("pool.tasks_run",
                       support::ThreadPool::global().tasks_run());
  registry.set_counter("pool.tasks_stolen",
                       support::ThreadPool::global().tasks_stolen());
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write metrics to '%s'\n", path);
    return;
  }
  out << obs::manifest_json(registry, {{"command", command}});
}

}  // namespace trident::bench
