// Figure 9: overall SDC probabilities measured by FI and predicted by
// TRIDENT, ePVF and PVF (§VII-C). As in the paper, ePVF is given the
// FI-measured crash rates ("we assume ePVF identifies 100% of the
// crashes accurately"), which is conservative in its favour; the
// model-only ePVF variant is also reported.
#include <cstdio>
#include <vector>

#include "baselines/epvf.h"
#include "core/trident.h"
#include "fi/campaign.h"
#include "harness.h"
#include "stats/stats.h"

int main() {
  using namespace trident;
  const uint64_t trials = bench::trials_from_env(3000);
  std::printf("Figure 9: overall SDC — FI vs TRIDENT vs ePVF vs PVF "
              "(FI trials: %llu)\n\n",
              static_cast<unsigned long long>(trials));
  std::printf("%-14s %9s %9s %9s %11s %9s\n", "benchmark", "FI", "TRIDENT",
              "ePVF", "ePVF(model)", "PVF");

  std::vector<double> fi_vals, trident_vals, epvf_vals, pvf_vals;
  for (const auto& p : bench::prepare_all()) {
    fi::CampaignOptions options;
    options.threads = bench::fi_threads();
    options.trials = trials;
    const auto campaign =
        fi::run_overall_campaign(p.module, p.profile, options);

    const core::Trident trident(p.module, p.profile);
    const baselines::EpvfModel epvf(p.module, p.profile);
    const double pvf_v = epvf.pvf().overall();
    const double epvf_v =
        epvf.overall_with_measured_crashes(campaign.crash_prob());

    std::printf("%-14s %8.2f%% %8.2f%% %8.2f%% %10.2f%% %8.2f%%\n",
                p.workload.name.c_str(), campaign.sdc_prob() * 100,
                trident.overall_sdc_exact() * 100, epvf_v * 100,
                epvf.overall() * 100, pvf_v * 100);
    fi_vals.push_back(campaign.sdc_prob());
    trident_vals.push_back(trident.overall_sdc_exact());
    epvf_vals.push_back(epvf_v);
    pvf_vals.push_back(pvf_v);
  }

  std::printf("\naverages: FI %.2f%%, TRIDENT %.2f%%, ePVF %.2f%%, PVF "
              "%.2f%%\n(paper: FI 13.59%%, TRIDENT 14.83%%, ePVF 52.55%%, "
              "PVF 90.62%%)\n",
              stats::mean(fi_vals) * 100, stats::mean(trident_vals) * 100,
              stats::mean(epvf_vals) * 100, stats::mean(pvf_vals) * 100);
  std::printf("\nmean absolute error vs FI: TRIDENT %.2f, ePVF %.2f, PVF "
              "%.2f percentage points\n(paper: 4.75, 36.78, 75.19)\n",
              stats::mean_absolute_error(trident_vals, fi_vals) * 100,
              stats::mean_absolute_error(epvf_vals, fi_vals) * 100,
              stats::mean_absolute_error(pvf_vals, fi_vals) * 100);
  return 0;
}
