// trident — command-line front end to the library.
//
//   trident list
//   trident dump    <target> [-o out.tir]
//   trident run     <target>
//   trident profile <target>
//   trident predict <target> [--model full|fs_fc|fs|paper|trident_bits]
//                   [--per-inst] [--samples N]
//   trident analyze <target> [--json] [-o out.json]
//   trident inject  <target> [--trials N] [--seed S] [--checkpoint f.jsonl]
//   trident protect <target> [--budget F] [-o out.tir] [--evaluate]
//
// `--threads N` caps the worker threads of every parallel stage (FI
// campaigns, the per-instruction sweep); 0 or unset = TRIDENT_THREADS
// env var, else hardware_concurrency. Results are bit-identical for any
// thread count.
//
// `--engine interp|threaded|native` selects the execution backend for
// run, inject, protect and eval (default interp). Outputs, fault
// outcomes, checkpoints and manifest fi.* counters are bit-identical
// across backends; only speed and the engine.* metrics differ
// (docs/ENGINE.md). The native backend compiles trials to host machine
// code; runs that need dense hooks (tracing, profiling, snapshot
// recording) fall back to the threaded engine with one stderr notice
// and an engine.native.fallbacks manifest count, and hosts without
// runtime compilation fall back entirely.
//
// `--checkpoint f.jsonl` makes campaigns crash-safe: completed trials
// are appended to the log as they finish, and re-running the same
// command resumes from it, producing a result bit-identical to an
// uninterrupted run. `--metrics-out f.json` writes a run manifest
// (schema "trident-run-metrics/1": outcome tallies, trials/sec, solver
// iterations, memo hit rates, per-phase wall time). A progress line is
// shown on interactive stderr during campaigns (--no-progress disables).
//
// <target> is a bundled workload name (see `trident list`) or a path to a
// textual IR file (the format of `trident dump`, parseable by ir/parser).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "baselines/epvf.h"
#include "core/trident.h"
#include "eval/report.h"
#include "eval/runner.h"
#include "eval/spec.h"
#include "fi/campaign.h"
#include "fuzz/generator.h"
#include "fuzz/oracles.h"
#include "fuzz/shrink.h"
#include "interp/engine.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "obs/interrupt.h"
#include "obs/metrics.h"
#include "profiler/profiler.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/session.h"
#include "protect/duplication.h"
#include "protect/selector.h"
#include "stats/stats.h"
#include "support/thread_pool.h"
#include "workloads/workloads.h"

using namespace trident;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: trident <command> [args]\n"
               "  list                         list bundled workloads\n"
               "  dump <target> [-o f.tir]     print the target's IR\n"
               "  run <target>                 execute and show output\n"
               "  profile <target>             profiling-phase summary\n"
               "  predict <target> [--model full|fs_fc|fs|paper|\n"
               "          trident_bits] [--per-inst] [--samples N]\n"
               "                               SDC prediction, no FI\n"
               "  analyze <target> [--json] [-o f.json]\n"
               "                               static lint: unreachable\n"
               "                               blocks, dead stores, dead\n"
               "                               bit ranges, undef uses,\n"
               "                               masked-bit counts (--json =\n"
               "                               trident-analyze/1 schema;\n"
               "                               exit 1 on error-severity\n"
               "                               diagnostics)\n"
               "  inject <target> [--trials N] [--seed S]\n"
               "                               fault-injection campaign\n"
               "  protect <target> [--budget F] [-o f.tir] [--evaluate]\n"
               "                               selective duplication\n"
               "  fuzz [target.tir] [--seed S] [--count N]\n"
               "       [--trials N] [--tolerance F] [--emit D]\n"
               "                               differential fuzzer: generate\n"
               "                               N seeded programs (or check\n"
               "                               one .tir file) and cross-check\n"
               "                               engines, bit analyses, the\n"
               "                               parser round-trip and the\n"
               "                               models against FI; divergences\n"
               "                               are shrunk into D/seed_S.tir\n"
               "                               (docs/FUZZING.md; exit 1 on\n"
               "                               any divergence)\n"
               "  serve [--socket P] [--store D] [--shards N]\n"
               "        [--upstream D] [--slots N]\n"
               "                               evaluation daemon: serve\n"
               "                               eval/predict/analyze\n"
               "                               requests from concurrent\n"
               "                               clients over a Unix socket,\n"
               "                               de-duplicating identical\n"
               "                               in-flight cells over a\n"
               "                               sharded result store\n"
               "                               (docs/SERVE.md)\n"
               "  client <op> [...] [--socket P]\n"
               "        eval <spec.json> [--out-dir D] [--force]\n"
               "        predict <workload> [--model M]\n"
               "        analyze <workload>\n"
               "        ping | stats | shutdown\n"
               "                               submit one request to a\n"
               "                               running daemon; eval writes\n"
               "                               the same report artifacts,\n"
               "                               byte-identical, as offline\n"
               "                               `trident eval`\n"
               "  eval <spec.json> [--out-dir D] [--force]\n"
               "                               paper-scale evaluation: run\n"
               "                               the spec's workload x model x\n"
               "                               seed grid over the content-\n"
               "                               addressed store in D/store,\n"
               "                               write report.{md,csv,json} +\n"
               "                               per_instruction.csv to D\n"
               "                               (--force recomputes cached\n"
               "                               cells; see docs/EVAL.md)\n"
               "common: --threads N            worker threads (0 = auto;\n"
               "                               results identical for any N)\n"
               "        --engine interp|threaded|native\n"
               "                               execution backend for run /\n"
               "                               inject / protect / eval\n"
               "                               (default interp; results are\n"
               "                               bit-identical on every\n"
               "                               backend; native falls back to\n"
               "                               threaded for dense-hook runs\n"
               "                               and uncompilable hosts, see\n"
               "                               docs/ENGINE.md)\n"
               "        --checkpoint f.jsonl   crash-safe campaigns: append\n"
               "                               finished trials, resume on\n"
               "                               re-run (bit-identical result)\n"
               "        --max-snapshots N      snapshot-and-resume trial\n"
               "                               engine: trials resume from\n"
               "                               <= N golden-run snapshots\n"
               "                               (default 64; 0 disables;\n"
               "                               results identical either way)\n"
               "        --no-snapshots         same as --max-snapshots 0\n"
               "        --snapshot-budget-mib M  memory cap for the snapshot\n"
               "                               set (default 256)\n"
               "        --metrics-out f.json   write the run manifest\n"
               "                               (trident-run-metrics/1)\n"
               "        --no-progress          suppress the progress line\n");
  return 2;
}

std::optional<ir::Module> load_target(const std::string& target) {
  for (const auto& w : workloads::all_workloads()) {
    if (w.name == target) return w.build();
  }
  // Classify the path before opening it: on Linux an ifstream happily
  // opens a directory and reads zero bytes, which used to surface as a
  // baffling parse error on an "empty" module.
  std::error_code ec;
  const auto status = std::filesystem::status(target, ec);
  if (ec || !std::filesystem::exists(status)) {
    std::fprintf(stderr,
                 "error: no workload or file named '%s'\n"
                 "registered workloads: %s\n",
                 target.c_str(), workloads::workload_names().c_str());
    return std::nullopt;
  }
  if (std::filesystem::is_directory(status)) {
    std::fprintf(stderr,
                 "error: '%s' is a directory, not an IR file\n",
                 target.c_str());
    return std::nullopt;
  }
  std::ifstream in(target);
  if (!in) {
    std::fprintf(stderr, "error: '%s' exists but is unreadable\n",
                 target.c_str());
    return std::nullopt;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  if (buf.str().empty()) {
    std::fprintf(stderr,
                 "error: '%s' is empty (expected textual IR, the format "
                 "of `trident dump`)\n",
                 target.c_str());
    return std::nullopt;
  }
  ir::ParseError error;
  auto m = ir::parse_module(buf.str(), &error);
  if (!m) {
    std::fprintf(stderr, "%s:%u: parse error: %s\n", target.c_str(),
                 error.line, error.message.c_str());
    return std::nullopt;
  }
  if (const auto errs = ir::verify_to_string(*m); !errs.empty()) {
    std::fprintf(stderr, "%s: invalid IR:\n%s", target.c_str(),
                 errs.c_str());
    return std::nullopt;
  }
  return m;
}

struct Args {
  std::string target;
  std::string target2;  // client: the operand after the op name
  std::string out;
  std::string socket = "/tmp/trident-serve.sock";
  std::string store;     // serve: store dir ("" = <out-dir>/store)
  std::string upstream;  // serve: read-only upstream store
  uint32_t shards = 16;     // serve: store shard fan-out
  bool shards_set = false;  // eval defaults flat, serve defaults 16
  uint32_t slots = 0;       // serve: concurrent-cell cap (0 = auto)
  std::string model = "full";
  std::string checkpoint;   // campaign checkpoint log ("" = off)
  std::string metrics_out;  // run-manifest path ("" = off)
  std::string out_dir;      // eval artifact directory ("" = derived)
  bool per_inst = false;
  bool json = false;  // analyze: machine-readable output
  bool evaluate = false;
  bool force = false;  // eval: recompute cached cells
  bool no_progress = false;
  uint64_t trials = 3000;
  bool trials_set = false;    // fuzz defaults lower unless --trials given
  uint64_t count = 100;       // fuzz: number of generated programs
  double tolerance = 0.45;    // fuzz: model-vs-FI divergence threshold
  std::string emit = "fuzz-repro";  // fuzz: repro output directory
  uint64_t samples = 0;  // 0 = exact
  uint64_t seed = 1234;
  double budget = 1.0 / 3;
  uint32_t threads = 0;  // 0 = TRIDENT_THREADS env or hardware
  uint64_t max_snapshots = 64;  // snapshot-and-resume engine; 0 = off
  uint64_t snapshot_budget_mib = 256;
  interp::EngineKind engine = interp::EngineKind::Interp;
};

// One registry per process run; commands add their counters/timers and
// main() persists the manifest when --metrics-out is given.
obs::Registry& metrics() {
  static obs::Registry registry;
  return registry;
}

fi::CampaignOptions campaign_options(const Args& args) {
  fi::CampaignOptions options;
  options.trials = args.trials;
  options.seed = args.seed;
  options.threads = args.threads;
  options.checkpoint_path = args.checkpoint;
  options.max_snapshots = args.max_snapshots;
  options.snapshot_bytes_budget = args.snapshot_budget_mib << 20;
  options.engine = args.engine;
  options.metrics = &metrics();
  options.progress = !args.no_progress && obs::stderr_is_tty();
  return options;
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "-o") {
      const char* v = next();
      if (!v) return false;
      args.out = v;
    } else if (a == "--model") {
      const char* v = next();
      if (!v) return false;
      // Enum-ish flags fail fast and list the valid choices (the
      // find_workload pattern), instead of surfacing the bad name
      // only after profiling.
      if (!core::model_config_from_name(v)) {
        std::fprintf(stderr, "error: unknown model '%s'\nvalid models: %s\n",
                     v, core::model_config_names().c_str());
        return false;
      }
      args.model = v;
    } else if (a == "--engine") {
      const char* v = next();
      if (!v) return false;
      const auto kind = interp::engine_kind_from_name(v);
      if (!kind) {
        std::fprintf(stderr, "error: unknown engine '%s'\nvalid engines: %s\n",
                     v, interp::engine_kind_names().c_str());
        return false;
      }
      args.engine = *kind;
    } else if (a == "--per-inst") {
      args.per_inst = true;
    } else if (a == "--json") {
      args.json = true;
    } else if (a == "--evaluate") {
      args.evaluate = true;
    } else if (a == "--force") {
      args.force = true;
    } else if (a == "--out-dir") {
      const char* v = next();
      if (!v) return false;
      args.out_dir = v;
    } else if (a == "--trials") {
      const char* v = next();
      if (!v) return false;
      args.trials = std::strtoull(v, nullptr, 10);
      args.trials_set = true;
    } else if (a == "--count") {
      const char* v = next();
      if (!v) return false;
      args.count = std::strtoull(v, nullptr, 10);
    } else if (a == "--tolerance") {
      const char* v = next();
      if (!v) return false;
      args.tolerance = std::strtod(v, nullptr);
    } else if (a == "--emit") {
      const char* v = next();
      if (!v) return false;
      args.emit = v;
    } else if (a == "--samples") {
      const char* v = next();
      if (!v) return false;
      args.samples = std::strtoull(v, nullptr, 10);
    } else if (a == "--seed") {
      const char* v = next();
      if (!v) return false;
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--budget") {
      const char* v = next();
      if (!v) return false;
      args.budget = std::strtod(v, nullptr);
    } else if (a == "--threads") {
      const char* v = next();
      if (!v) return false;
      args.threads = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (a == "--max-snapshots") {
      const char* v = next();
      if (!v) return false;
      args.max_snapshots = std::strtoull(v, nullptr, 10);
    } else if (a == "--no-snapshots") {
      args.max_snapshots = 0;
    } else if (a == "--snapshot-budget-mib") {
      const char* v = next();
      if (!v) return false;
      args.snapshot_budget_mib = std::strtoull(v, nullptr, 10);
    } else if (a == "--checkpoint") {
      const char* v = next();
      if (!v) return false;
      args.checkpoint = v;
    } else if (a == "--metrics-out") {
      const char* v = next();
      if (!v) return false;
      args.metrics_out = v;
    } else if (a == "--no-progress") {
      args.no_progress = true;
    } else if (a == "--socket") {
      const char* v = next();
      if (!v) return false;
      args.socket = v;
    } else if (a == "--store") {
      const char* v = next();
      if (!v) return false;
      args.store = v;
    } else if (a == "--upstream") {
      const char* v = next();
      if (!v) return false;
      args.upstream = v;
    } else if (a == "--shards") {
      const char* v = next();
      if (!v) return false;
      args.shards = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
      args.shards_set = true;
    } else if (a == "--slots") {
      const char* v = next();
      if (!v) return false;
      args.slots = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (args.target.empty() && a[0] != '-') {
      args.target = a;
    } else if (args.target2.empty() && a[0] != '-') {
      args.target2 = a;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", a.c_str());
      return false;
    }
  }
  return true;
}

std::optional<core::ModelConfig> model_config(const std::string& name) {
  const auto config = core::model_config_from_name(name);
  if (!config) {
    std::fprintf(stderr, "error: unknown model '%s'\nvalid models: %s\n",
                 name.c_str(), core::model_config_names().c_str());
  }
  return config;
}

int cmd_list() {
  std::printf("%-14s %-10s %-28s %s\n", "name", "suite", "area", "input");
  for (const auto& w : workloads::all_workloads()) {
    std::printf("%-14s %-10s %-28s %s\n", w.name.c_str(), w.suite.c_str(),
                w.area.c_str(), w.input.c_str());
  }
  return 0;
}

int cmd_dump(const Args& args, const ir::Module& m) {
  const auto text = ir::print_module(m);
  if (args.out.empty()) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  std::ofstream out(args.out);
  out << text;
  std::printf("wrote %s (%zu bytes)\n", args.out.c_str(), text.size());
  return 0;
}

int cmd_run(const Args& args, const ir::Module& m) {
  const auto res = interp::make_engine(args.engine, m)->run_main({});
  std::printf("outcome: %s\n", interp::outcome_name(res.outcome));
  if (!res.crash_reason.empty()) {
    std::printf("crash: %s\n", res.crash_reason.c_str());
  }
  std::printf("dynamic instructions: %llu\n",
              static_cast<unsigned long long>(res.dynamic_insts));
  std::printf("--- output ---\n%s", res.output.c_str());
  if (!res.debug_output.empty()) {
    std::printf("--- debug output ---\n%s", res.debug_output.c_str());
  }
  return res.outcome == interp::Outcome::Ok ? 0 : 1;
}

int cmd_profile(const ir::Module& m) {
  const auto profile = prof::collect_profile(m);
  std::printf("static instructions:   %zu\n", m.num_insts());
  std::printf("dynamic instructions:  %llu\n",
              static_cast<unsigned long long>(profile.total_dynamic));
  std::printf("fault-injection sites: %llu\n",
              static_cast<unsigned long long>(profile.total_results));
  std::printf("memory dep edges:      %zu static (%llu dynamic, %.2f%% "
              "pruned)\n",
              profile.mem_edges.size(),
              static_cast<unsigned long long>(profile.dynamic_mem_deps),
              profile.pruning_ratio() * 100);
  std::printf("memory segments:       %zu\n", profile.segments.size());
  std::printf("golden output:\n%s", profile.golden_output.c_str());
  return 0;
}

int cmd_predict(const Args& args, const ir::Module& m) {
  const auto config = model_config(args.model);
  if (!config) return 2;
  prof::Profile profile;
  {
    obs::ScopedTimer t(metrics(), "phase.profile.seconds");
    profile = prof::collect_profile(m);
  }
  const core::Trident model(m, profile, *config);
  obs::ScopedTimer timer(metrics(), "phase.predict.seconds");
  const double overall =
      args.samples > 0
          ? model.overall_sdc(args.samples, args.seed, args.threads)
          : model.overall_sdc_exact();
  std::printf("model: %s\n", args.model.c_str());
  std::printf("overall SDC probability: %.2f%%\n", overall * 100);
  if (args.per_inst) {
    const auto insts = model.injectable_instructions();
    const auto preds = model.predict_all(insts, args.threads);
    std::printf("\n%-8s %10s %8s %8s\n", "inst", "exec", "SDC", "crash");
    for (size_t i = 0; i < insts.size(); ++i) {
      const auto& ref = insts[i];
      std::printf("f%u:%%%-5u %10llu %7.2f%% %7.2f%%\n", ref.func, ref.inst,
                  static_cast<unsigned long long>(profile.exec(ref)),
                  preds[i].sdc * 100, preds[i].crash * 100);
    }
  }
  model.export_metrics(metrics());
  return 0;
}

int cmd_inject(const Args& args, const ir::Module& m) {
  prof::Profile profile;
  {
    obs::ScopedTimer t(metrics(), "phase.profile.seconds");
    profile = prof::collect_profile(m);
  }
  const auto options = campaign_options(args);
  fi::CampaignResult result;
  {
    obs::ScopedTimer t(metrics(), "phase.campaign.seconds");
    result = fi::run_overall_campaign(m, profile, options);
  }
  std::printf("trials:   %llu\n",
              static_cast<unsigned long long>(result.total()));
  if (result.resumed > 0) {
    std::printf("resumed:  %llu from %s\n",
                static_cast<unsigned long long>(result.resumed),
                args.checkpoint.c_str());
  }
  if (result.interrupted) {
    std::fprintf(stderr,
                 "interrupted: campaign stopped after %llu trials; finished "
                 "work is checkpointed%s\n",
                 static_cast<unsigned long long>(result.total()),
                 args.checkpoint.empty()
                     ? ""
                     : ", re-run with the same --checkpoint to resume");
    return 130;
  }
  std::printf("SDC:      %6.2f%% (±%.2f%% at 95%%)\n",
              result.sdc_prob() * 100, result.sdc_ci95() * 100);
  std::printf("crash:    %6.2f%% (±%.2f%% at 95%%)\n",
              result.crash_prob() * 100, result.crash_ci95() * 100);
  std::printf("detected: %6.2f%%\n", result.detected_prob() * 100);
  std::printf("benign:   %6.2f%%\n",
              100.0 * result.benign / result.total());
  std::printf("hang:     %6.2f%%\n",
              100.0 * result.hang / result.total());
  if (result.fuel_exhausted > 0) {
    std::printf("fuel-exhausted (slow but terminating): %llu\n",
                static_cast<unsigned long long>(result.fuel_exhausted));
  }
  return 0;
}

int cmd_protect(const Args& args, const ir::Module& m) {
  prof::Profile profile;
  {
    obs::ScopedTimer t(metrics(), "phase.profile.seconds");
    profile = prof::collect_profile(m);
  }
  const core::Trident model(m, profile);
  const auto plan = protect::select_for_duplication(
      m, profile, [&](ir::InstRef ref) { return model.predict(ref).sdc; },
      args.budget);
  auto result = protect::duplicate_instructions(m, plan.selected);
  if (const auto errs = ir::verify_to_string(result.module); !errs.empty()) {
    std::fprintf(stderr, "internal error: protected module invalid:\n%s",
                 errs.c_str());
    return 1;
  }
  const auto prot_profile = prof::collect_profile(result.module);
  std::printf("budget: %.1f%% of full duplication\n", args.budget * 100);
  std::printf("protected %zu instructions (+%llu static)\n",
              plan.selected.size(),
              static_cast<unsigned long long>(result.added_insts));
  std::printf("dynamic overhead: %.2f%%\n",
              100.0 * (static_cast<double>(prot_profile.total_dynamic) /
                           profile.total_dynamic -
                       1.0));
  if (args.evaluate) {
    obs::ScopedTimer t(metrics(), "phase.campaign.seconds");
    auto options = campaign_options(args);
    // The two campaigns sample different populations; one checkpoint
    // log cannot cover both.
    options.checkpoint_path.clear();
    const auto before = fi::run_overall_campaign(m, profile, options);
    const auto after =
        fi::run_overall_campaign(result.module, prot_profile, options);
    std::printf("FI SDC before: %.2f%%  after: %.2f%%  (detected %.2f%%)\n",
                before.sdc_prob() * 100, after.sdc_prob() * 100,
                after.detected_prob() * 100);
  }
  if (!args.out.empty()) {
    std::ofstream out(args.out);
    out << ir::print_module(result.module);
    std::printf("wrote protected module to %s\n", args.out.c_str());
  }
  model.export_metrics(metrics());
  return 0;
}

int cmd_analyze(const Args& args, const ir::Module& m) {
  analysis::LintResult result;
  {
    obs::ScopedTimer t(metrics(), "phase.analyze.seconds");
    result = analysis::lint_module(m, args.threads);
  }
  metrics().add("analysis.blocks_visited", result.stats.blocks_visited);
  metrics().add("analysis.fixpoint_iterations",
                result.stats.fixpoint_iterations);
  metrics().add("analysis.masked_bits_total",
                result.stats.masked_bits_total);

  if (args.json) {
    const std::string text =
        analysis::lint_to_json(result, args.target).write_pretty() + "\n";
    if (args.out.empty()) {
      std::fputs(text.c_str(), stdout);
    } else {
      std::ofstream out(args.out);
      if (!out) {
        std::fprintf(stderr, "error: cannot write '%s'\n", args.out.c_str());
        return 1;
      }
      out << text;
      std::fprintf(stderr, "wrote %s (%zu bytes)\n", args.out.c_str(),
                   text.size());
    }
  } else {
    for (const auto& fl : result.functions) {
      std::printf("%s: %llu blocks (%llu reachable), %llu insts, "
                  "%llu statically masked bits\n",
                  fl.name.c_str(),
                  static_cast<unsigned long long>(fl.blocks),
                  static_cast<unsigned long long>(fl.reachable_blocks),
                  static_cast<unsigned long long>(fl.insts),
                  static_cast<unsigned long long>(fl.masked_bits));
      for (const auto& d : fl.diagnostics) {
        std::printf("  %-7s %-18s", analysis::severity_name(d.severity),
                    d.kind.c_str());
        if (d.inst != ~0u) {
          std::printf(" %%%-4u", d.inst);
        } else if (d.block != ~0u) {
          std::printf(" b%-4u", d.block);
        } else {
          std::printf("      ");
        }
        std::printf(" %s\n", d.message.c_str());
      }
    }
    std::printf("totals: %llu errors, %llu warnings, %llu infos; "
                "%llu masked bits, %llu fixpoint iterations\n",
                static_cast<unsigned long long>(result.errors),
                static_cast<unsigned long long>(result.warnings),
                static_cast<unsigned long long>(result.infos),
                static_cast<unsigned long long>(result.stats.masked_bits_total),
                static_cast<unsigned long long>(
                    result.stats.fixpoint_iterations));
  }
  return result.errors > 0 ? 1 : 0;
}

// One deterministic report line per checked program. The format is part
// of the CI contract: tools/ci.sh diffs the full report across thread
// counts, so nothing here may depend on timing or concurrency.
void print_fuzz_line(const std::string& label,
                     const fuzz::CheckResult& res) {
  if (res.ok()) {
    std::printf("%s: ok dyn=%llu fi_sdc=%.4f full=%.4f bits=%.4f "
                "fs=%.4f kb=%llu probes=%llu\n",
                label.c_str(),
                static_cast<unsigned long long>(res.golden_dynamic_insts),
                res.fi_sdc, res.sdc_full, res.sdc_bits, res.sdc_fs,
                static_cast<unsigned long long>(res.known_bits_checked),
                static_cast<unsigned long long>(res.demanded_probes_run));
    return;
  }
  std::printf("%s: DIVERGENT\n", label.c_str());
  for (const auto& d : res.divergences) {
    std::printf("  [%s] %s\n", d.oracle.c_str(), d.detail.c_str());
  }
}

// Shrinks a divergent module (preserving at least one of the oracle
// categories that originally fired) and writes seed_<S>.tir plus a
// .txt note with the seed and divergence details to args.emit.
void emit_fuzz_repro(const Args& args, const ir::Module& module,
                     uint64_t seed, const fuzz::CheckResult& res,
                     const fuzz::OracleOptions& oracle_options) {
  std::vector<std::string> failing;
  for (const auto& d : res.divergences) failing.push_back(d.oracle);
  const auto still_fails = [&](const ir::Module& candidate) {
    const auto check = fuzz::check_module(candidate, seed, oracle_options);
    for (const auto& d : check.divergences) {
      for (const auto& oracle : failing) {
        if (d.oracle == oracle) return true;
      }
    }
    return false;
  };
  const ir::Module reduced = fuzz::shrink_module(module, still_fails);

  std::error_code ec;
  std::filesystem::create_directories(args.emit, ec);
  const std::string stem =
      args.emit + "/seed_" + std::to_string(seed);
  {
    std::ofstream out(stem + ".tir");
    out << ir::print_module(reduced);
  }
  std::ofstream note(stem + ".txt");
  note << "seed: " << seed << "\n";
  note << "reproduce: trident fuzz --seed " << seed << " --count 1";
  if (args.trials_set) note << " --trials " << args.trials;
  note << "\n";
  note << "insts: " << module.num_insts() << " -> " << reduced.num_insts()
       << " after shrinking\n";
  for (const auto& d : res.divergences) {
    note << "[" << d.oracle << "] " << d.detail << "\n";
  }
  std::printf("  wrote %s.tir (insts %zu -> %zu) and %s.txt\n",
              stem.c_str(), module.num_insts(), reduced.num_insts(),
              stem.c_str());
}

int cmd_fuzz(const Args& args) {
  fuzz::OracleOptions oracle_options;
  oracle_options.fi_trials = args.trials_set ? args.trials : 150;
  oracle_options.threads = args.threads;
  oracle_options.model_tolerance = args.tolerance;

  // With an explicit target, re-check that one module (the workflow for
  // corpus files and shrunken repros); otherwise generate count modules.
  if (!args.target.empty()) {
    const auto m = load_target(args.target);
    if (!m) return 1;
    const auto res = fuzz::check_module(*m, args.seed, oracle_options);
    print_fuzz_line(args.target, res);
    return res.ok() ? 0 : 1;
  }

  std::printf("fuzz: seeds [%llu, %llu), %llu FI trials/program, "
              "tolerance %.2f\n",
              static_cast<unsigned long long>(args.seed),
              static_cast<unsigned long long>(args.seed + args.count),
              static_cast<unsigned long long>(oracle_options.fi_trials),
              oracle_options.model_tolerance);
  uint64_t divergent = 0;
  for (uint64_t i = 0; i < args.count; ++i) {
    const uint64_t seed = args.seed + i;
    const ir::Module module = fuzz::generate_program(seed);
    const auto res = fuzz::check_module(module, seed, oracle_options);
    print_fuzz_line("seed " + std::to_string(seed), res);
    if (!res.ok()) {
      ++divergent;
      emit_fuzz_repro(args, module, seed, res, oracle_options);
    }
  }
  std::printf("checked %llu programs: %llu ok, %llu divergent\n",
              static_cast<unsigned long long>(args.count),
              static_cast<unsigned long long>(args.count - divergent),
              static_cast<unsigned long long>(divergent));
  return divergent > 0 ? 1 : 0;
}

// Point the native backend's persistent object cache into the store
// directory, so a daemon restart (or a fresh CLI run over the same
// store) reuses compiled shared objects instead of re-running the host
// compiler. Env-var based so it composes with TRIDENT_NATIVE_CACHE set
// explicitly by the user (which wins).
void enable_native_cache(const Args& args, const std::string& store_dir) {
#if defined(__unix__) || defined(__APPLE__)
  if (args.engine == interp::EngineKind::Native) {
    setenv("TRIDENT_NATIVE_CACHE", (store_dir + "/native-cache").c_str(),
           /*overwrite=*/0);
  }
#else
  (void)args;
  (void)store_dir;
#endif
}

int cmd_eval(const Args& args) {
  eval::ExperimentSpec spec;
  std::string error;
  if (!eval::load_spec_file(args.target, &spec, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  eval::RunOptions options;
  options.out_dir =
      args.out_dir.empty() ? "eval-out/" + spec.name : args.out_dir;
  options.threads = args.threads;
  options.engine = args.engine;
  options.force = args.force;
  options.progress = !args.no_progress && obs::stderr_is_tty();
  options.metrics = &metrics();
  options.store_dir = args.store;
  // Offline eval keeps the flat layout unless --shards is given, so old
  // store directories stay readable and writable in place.
  options.store_shards = args.shards_set ? args.shards : 0;
  options.store_upstream = args.upstream;
  enable_native_cache(args, options.store_dir.empty()
                                ? options.out_dir + "/store"
                                : options.store_dir);

  const auto results = eval::run_spec(spec, options);
  const auto paths = eval::write_reports(results, options.out_dir);

  std::printf("spec:     %s (%zu workloads, %zu models, %zu seeds)\n",
              spec.name.c_str(), results.workloads.size(),
              spec.models.size(), spec.seeds.size());
  std::printf("cells:    %llu total, %llu computed, %llu cached\n",
              static_cast<unsigned long long>(results.cells_total),
              static_cast<unsigned long long>(results.cells_computed),
              static_cast<unsigned long long>(results.cells_cached));
  std::printf("FI trials executed this run: %llu\n",
              static_cast<unsigned long long>(results.fi_trials_run));
  std::printf("\n%-14s %9s %9s", "workload", "FI SDC", "±95%");
  for (const auto& m : spec.models) std::printf(" %9s", m.c_str());
  std::printf("\n");
  for (const auto& we : results.workloads) {
    std::printf("%-14s %8.2f%% %8.2f%%", we.name.c_str(),
                we.fi.sdc_prob() * 100,
                stats::proportion_ci95(we.fi.sdc_prob(), we.fi.trials) * 100);
    for (const double sdc : we.model_sdc) std::printf(" %8.2f%%", sdc * 100);
    std::printf("\n");
  }
  std::printf("\nwrote %s\n      %s\n      %s\n      %s\n",
              paths.report_md.c_str(), paths.report_csv.c_str(),
              paths.per_instruction_csv.c_str(), paths.report_json.c_str());
  return 0;
}

int cmd_serve(const Args& args) {
  if (!serve::serve_supported()) {
    std::fprintf(stderr,
                 "error: trident serve requires Unix-domain sockets, which "
                 "this platform does not provide\n");
    return 1;
  }
  serve::DaemonOptions options;
  options.socket_path = args.socket;
  options.store_dir = args.store.empty()
                          ? (args.out_dir.empty() ? "serve-out" : args.out_dir)
                                + "/store"
                          : args.store;
  options.store_shards = args.shards;
  options.upstream_dir = args.upstream;
  options.threads = args.threads;
  options.slots = args.slots;
  options.engine = args.engine;
  options.metrics = &metrics();
  enable_native_cache(args, options.store_dir);
  serve::Daemon daemon(std::move(options));
  daemon.serve();
  // SIGINT/SIGTERM wound the daemon down cleanly; still report the
  // conventional interrupted exit code (the manifest is written anyway).
  return obs::interrupt_requested() ? 130 : 0;
}

int cmd_client(const Args& args) {
  const std::string& op = args.target;
  serve::Client client(args.socket);

  if (op == "ping") {
    if (!client.ping()) {
      std::fprintf(stderr, "error: daemon did not pong\n");
      return 1;
    }
    std::printf("pong (session %llu)\n",
                static_cast<unsigned long long>(client.session_id()));
    return 0;
  }
  if (op == "stats") {
    std::fputs((client.stats().write_pretty() + "\n").c_str(), stdout);
    return 0;
  }
  if (op == "shutdown") {
    client.shutdown_server();
    std::printf("daemon stopping\n");
    return 0;
  }
  if (op == "predict") {
    if (args.target2.empty()) {
      std::fprintf(stderr, "error: client predict needs a workload name\n");
      return 2;
    }
    const auto d = client.predict(args.target2, args.model);
    std::printf("model: %s\n", d.get_string("model", "?").c_str());
    std::printf("overall SDC probability: %.2f%%\n",
                d.get_double("sdc", 0) * 100);
    return 0;
  }
  if (op == "analyze") {
    if (args.target2.empty()) {
      std::fprintf(stderr, "error: client analyze needs a workload name\n");
      return 2;
    }
    std::fputs((client.analyze(args.target2).write_pretty() + "\n").c_str(),
               stdout);
    return 0;
  }
  if (op != "eval") {
    std::fprintf(stderr,
                 "error: unknown client op '%s' (expected eval, predict, "
                 "analyze, ping, stats or shutdown)\n",
                 op.c_str());
    return 2;
  }

  if (args.target2.empty()) {
    std::fprintf(stderr, "error: client eval needs a spec file\n");
    return 2;
  }
  std::ifstream in(args.target2);
  if (!in) {
    std::fprintf(stderr, "error: cannot read spec '%s'\n",
                 args.target2.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  const bool show_progress = !args.no_progress && obs::stderr_is_tty();
  obs::ProgressLine progress(show_progress, "serve eval");
  const auto outcome =
      client.eval(buf.str(), args.force, [&](uint64_t done, uint64_t total) {
        progress.update(done, total);
      });
  progress.finish(outcome.cells_total, outcome.cells_total);

  // Same artifact set, names and bytes as offline `trident eval` — the
  // determinism contract is checked by cmp in tools/ci.sh.
  const std::string out_dir = args.out_dir.empty()
                                  ? "eval-out/" + outcome.spec_name
                                  : args.out_dir;
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "error: cannot create '%s': %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  const auto write = [&](const std::string& name, const std::string& text) {
    std::ofstream out(out_dir + "/" + name,
                      std::ios::binary | std::ios::trunc);
    out << text;
    if (!out) {
      throw std::runtime_error("cannot write '" + out_dir + "/" + name +
                               "'");
    }
  };
  write("report.csv", outcome.report_csv);
  write("per_instruction.csv", outcome.per_instruction_csv);
  write("report.json", outcome.report_json);
  write("report.md", outcome.report_md);

  std::printf("spec:     %s (daemon session %llu)\n",
              outcome.spec_name.c_str(),
              static_cast<unsigned long long>(client.session_id()));
  std::printf("cells:    %llu total, %llu computed, %llu cached, "
              "%llu deduped\n",
              static_cast<unsigned long long>(outcome.cells_total),
              static_cast<unsigned long long>(outcome.cells_computed),
              static_cast<unsigned long long>(outcome.cells_cached),
              static_cast<unsigned long long>(outcome.cells_deduped));
  std::printf("FI trials executed for this request: %llu\n",
              static_cast<unsigned long long>(outcome.fi_trials_run));
  std::printf("wrote %s/{report.md,report.csv,per_instruction.csv,"
              "report.json}\n",
              out_dir.c_str());
  return 0;
}

}  // namespace

// Persists the run manifest (counters/gauges registered by the command
// plus process-wide pool instrumentation) to --metrics-out.
int write_manifest(const Args& args, const std::string& cmd) {
  if (args.metrics_out.empty()) return 0;
  auto& registry = metrics();
  registry.set_counter("pool.tasks_run",
                       support::ThreadPool::global().tasks_run());
  registry.set_counter("pool.tasks_stolen",
                       support::ThreadPool::global().tasks_stolen());
  const std::string json = obs::manifest_json(
      registry, {{"command", cmd}, {"target", args.target}});
  std::ofstream out(args.metrics_out);
  if (!out) {
    std::fprintf(stderr, "error: cannot write metrics to '%s'\n",
                 args.metrics_out.c_str());
    return 1;
  }
  out << json;
  std::printf("wrote run metrics to %s\n", args.metrics_out.c_str());
  return 0;
}

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "list") return cmd_list();

  Args args;
  if (!parse_args(argc - 2, argv + 2, args)) return usage();
  // Every command except fuzz (which generates its own programs when no
  // corpus file is given) and serve (which only needs a socket)
  // requires a target.
  if (cmd != "fuzz" && cmd != "serve" && args.target.empty()) return usage();

  // First SIGINT/SIGTERM stops cleanly (checkpoint + manifest flushed,
  // exit 130); a second one exits immediately.
  obs::install_interrupt_handlers();

  int rc;
  try {
    if (cmd == "eval") {
      // The target is a spec file, not a workload/IR module.
      rc = cmd_eval(args);
    } else if (cmd == "serve") {
      rc = cmd_serve(args);
    } else if (cmd == "client") {
      // The target is the daemon op (eval, predict, ping, ...).
      rc = cmd_client(args);
    } else if (cmd == "fuzz") {
      rc = cmd_fuzz(args);
    } else {
      const auto m = load_target(args.target);
      if (!m) return 1;
      if (cmd == "dump") rc = cmd_dump(args, *m);
      else if (cmd == "run") rc = cmd_run(args, *m);
      else if (cmd == "profile") rc = cmd_profile(*m);
      else if (cmd == "predict") rc = cmd_predict(args, *m);
      else if (cmd == "analyze") rc = cmd_analyze(args, *m);
      else if (cmd == "inject") rc = cmd_inject(args, *m);
      else if (cmd == "protect") rc = cmd_protect(args, *m);
      else return usage();
    }
  } catch (const obs::Interrupted& e) {
    // SIGINT/SIGTERM mid-run: completed work is already on disk
    // (checkpoint log, store cells); flush the manifest too so the
    // partial run stays inspectable, then use the conventional code.
    std::fprintf(stderr, "%s\n", e.what());
    write_manifest(args, cmd);
    return 130;
  } catch (const std::exception& e) {
    // Checkpoint mismatches and similar setup failures surface here
    // with an actionable message instead of a stack-unwound abort.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const int manifest_rc = write_manifest(args, cmd);
  return rc != 0 ? rc : manifest_rc;
}
