#!/usr/bin/env python3
"""CI validator for trident JSON artifacts.

Modes:
  check_manifest.py run INJECT.json RESUME.json PREDICT.json
      Validate run manifests (schema trident-run-metrics/1): INJECT is a
      fresh checkpointed `trident inject` run, RESUME re-runs the same
      command over the finished log, PREDICT is a `trident predict` run.
      Checks schema tags, metric families, internal consistency, and
      that the resume restored every trial without re-running any.

  check_manifest.py eval REPORT.json [STORE_DIR]
      Validate an evaluation report (schema trident-eval/1, kind
      "report"): spec echo, cell accounting, per-workload FI tallies,
      Wilson CIs, model accuracy columns, per-instruction rows. With
      STORE_DIR, additionally validate every result-store cell file.

  check_manifest.py analyze REPORT.json
      Validate a `trident analyze --json` document (schema
      trident-analyze/1): per-function stats, diagnostic severities,
      masked-bit accounting, and the totals roll-up.

  check_manifest.py engines A.json B.json
      Engine-parity check for two campaign manifests produced by the
      same `trident inject` command under different --engine backends
      (or thread counts): every fi.* counter must match exactly.
      Timing gauges, memory-cache and pool counters (which legitimately
      differ across backends) and the engine.* family itself are
      ignored.

  check_manifest.py serve MANIFEST.json
      Validate a `trident serve` run manifest: the serve.* family
      (sessions, requests, inflight dedup accounting, store shard
      count) plus the eval.* cell accounting the daemon aggregates
      across its sessions.

  check_manifest.py selftest
      Validate the committed fixtures (tools/fixtures/
      eval_report_tiny.json and analyze_tiny.json) and verify that
      representative corruptions of each are rejected.

Legacy: three positional manifests (no mode word) mean `run`.
"""
import copy
import json
import os
import sys

OUTCOMES = ["sdc", "benign", "crash", "hang", "detected"]


def bail(msg):
    raise SystemExit(msg)


# ---------------------------------------------------------------------------
# trident-run-metrics/1
# ---------------------------------------------------------------------------

def load(path):
    with open(path) as f:
        manifest = json.load(f)
    if manifest.get("schema") != "trident-run-metrics/1":
        bail(f"{path}: bad schema tag {manifest.get('schema')!r}")
    for section in ("counters", "gauges"):
        if not isinstance(manifest.get(section), dict):
            bail(f"{path}: missing {section!r} object")
    return manifest


def require(path, manifest, counters=(), gauges=()):
    for key in counters:
        if key not in manifest["counters"]:
            bail(f"{path}: missing counter {key!r}")
    for key in gauges:
        if key not in manifest["gauges"]:
            bail(f"{path}: missing gauge {key!r}")


def check_campaign(path, manifest):
    require(
        path,
        manifest,
        counters=["fi.trials.total", "fi.trials.run", "fi.trials.resumed",
                  "fi.fuel_exhausted", "fi.snapshot_count",
                  "fi.snapshot_bytes", "fi.snapshot_skipped_insts",
                  "fi.snapshot_resumed_trials", "interp.memcache.hits",
                  "interp.memcache.lookups", "engine.threaded",
                  "engine.native", "engine.native.functions",
                  "engine.native.code_bytes", "engine.native.compile_ms",
                  "engine.native.fallbacks", "engine.native.cache_hits",
                  "engine.lowered_functions", "engine.lowered_insts",
                  "engine.superinstructions"]
        + [f"fi.outcome.{o}" for o in OUTCOMES],
        gauges=["fi.trials_per_sec", "fi.campaign.seconds",
                "phase.campaign.seconds"],
    )
    c = manifest["counters"]
    total = c["fi.trials.total"]
    if total <= 0:
        bail(f"{path}: campaign ran no trials")
    if sum(c[f"fi.outcome.{o}"] for o in OUTCOMES) != total:
        bail(f"{path}: outcome tallies do not sum to the total")
    # Snapshot-engine consistency: only run trials can resume from a
    # snapshot, and a campaign without snapshots cannot skip any work.
    if c["fi.snapshot_resumed_trials"] > c["fi.trials.run"]:
        bail(f"{path}: more snapshot-resumed trials than trials run")
    if c["fi.snapshot_count"] == 0 and (
            c["fi.snapshot_skipped_insts"] != 0
            or c["fi.snapshot_resumed_trials"] != 0):
        bail(f"{path}: snapshot work reported without any snapshots")
    if c["interp.memcache.hits"] > c["interp.memcache.lookups"]:
        bail(f"{path}: memory-cache hits exceed lookups")
    # Execution-backend consistency: the interpreter lowers nothing;
    # threaded and native campaigns share the lowering (the native
    # backend needs it for its resume mapping and fallback engine), so
    # exactly the non-interp campaigns report lowering work.
    for flag in ("engine.threaded", "engine.native"):
        if c[flag] not in (0, 1):
            bail(f"{path}: {flag} must be 0 or 1")
    if c["engine.threaded"] == 1 and c["engine.native"] == 1:
        bail(f"{path}: campaign claims two backends at once")
    if c["engine.threaded"] == 0 and c["engine.native"] == 0:
        for key in ("engine.lowered_functions", "engine.lowered_insts",
                    "engine.superinstructions"):
            if c[key] != 0:
                bail(f"{path}: interp campaign reports nonzero {key}")
    else:
        if c["engine.lowered_insts"] == 0 or \
                c["engine.lowered_functions"] == 0:
            bail(f"{path}: non-interp campaign lowered nothing")
    # Native compile accounting: a non-native campaign compiles nothing;
    # a native campaign either compiled every function (code_bytes
    # accompany them) or fell back entirely on a host without runtime
    # compilation (zero functions, zero code bytes, nonzero fallbacks —
    # the attempt latency may still land in compile_ms).
    if c["engine.native"] == 0:
        for key in ("engine.native.functions", "engine.native.code_bytes",
                    "engine.native.compile_ms", "engine.native.fallbacks",
                    "engine.native.cache_hits"):
            if c[key] != 0:
                bail(f"{path}: non-native campaign reports nonzero {key}")
    else:
        if (c["engine.native.functions"] > 0) != \
                (c["engine.native.code_bytes"] > 0):
            bail(f"{path}: engine.native.functions and "
                 f"engine.native.code_bytes disagree about whether code "
                 f"was generated")
        if c["engine.native.functions"] == 0 and \
                c["engine.native.fallbacks"] == 0:
            bail(f"{path}: native campaign compiled nothing yet reports "
                 f"no fallback runs")
        # A cache hit serves compiled code; a campaign that compiled no
        # functions cannot have been served from the persistent cache.
        if c["engine.native.functions"] == 0 and \
                c["engine.native.cache_hits"] != 0:
            bail(f"{path}: cache hits reported without compiled functions")
    return c


def mode_run(argv):
    if len(argv) != 3:
        bail(__doc__)
    inject, resume, predict = (load(p) for p in argv)

    fresh = check_campaign(argv[0], inject)
    if fresh["fi.trials.resumed"] != 0:
        bail(f"{argv[0]}: fresh run claims resumed trials")

    resumed = check_campaign(argv[1], resume)
    if resumed["fi.trials.run"] != 0:
        bail(f"{argv[1]}: resume over a finished log re-ran trials")
    if resumed["fi.trials.resumed"] != fresh["fi.trials.total"]:
        bail(f"{argv[1]}: resume did not restore every trial")
    for o in OUTCOMES:
        key = f"fi.outcome.{o}"
        if resumed[key] != fresh[key]:
            bail(f"{argv[1]}: resumed tally {key} = {resumed[key]} differs "
                 f"from the fresh run's {fresh[key]}")

    require(
        argv[2],
        predict,
        counters=["fm.solver_iterations", "fs.memo.hits", "fs.memo.lookups",
                  "fc.memo.hits", "fc.memo.lookups", "trident.memo.hits",
                  "trident.memo.lookups"],
        gauges=["fs.memo.hit_rate", "fc.memo.hit_rate",
                "trident.memo.hit_rate", "phase.profile.seconds",
                "phase.predict.seconds"],
    )
    print(f"manifests OK: {fresh['fi.trials.total']} trials fresh, "
          f"{resumed['fi.trials.resumed']} resumed, predict instrumented")


# Counter families that may legitimately differ between two backends
# running the same campaign: timing-derived values live in gauges (all
# ignored), the threaded engine skips memory-cache traffic the
# interpreter performs, pool scheduling is nondeterministic, and the
# engine.* family describes the backend itself.
ENGINE_IGNORED_PREFIXES = ("interp.memcache.", "engine.", "pool.")


def mode_engines(argv):
    if len(argv) != 2:
        bail(__doc__)
    a, b = (load(p) for p in argv)
    ca = check_campaign(argv[0], a)
    cb = check_campaign(argv[1], b)
    keys = set(ca) | set(cb)
    mismatches = []
    for key in sorted(keys):
        if key.startswith(ENGINE_IGNORED_PREFIXES):
            continue
        if ca.get(key) != cb.get(key):
            mismatches.append(
                f"  {key}: {ca.get(key)!r} != {cb.get(key)!r}")
    if mismatches:
        bail(f"{argv[0]} vs {argv[1]}: campaign counters differ across "
             f"engines:\n" + "\n".join(mismatches))
    compared = sum(1 for k in keys
                   if not k.startswith(ENGINE_IGNORED_PREFIXES))
    print(f"engine parity OK: {compared} counters identical "
          f"({ca['fi.trials.total']} trials)")


# ---------------------------------------------------------------------------
# trident-eval/1
# ---------------------------------------------------------------------------

def _prob(path, what, value):
    if not isinstance(value, (int, float)) or not 0.0 <= value <= 1.0:
        bail(f"{path}: {what} = {value!r} is not a probability")


def check_eval_report(path, report):
    if report.get("schema") != "trident-eval/1":
        bail(f"{path}: bad schema tag {report.get('schema')!r}")
    if report.get("kind") != "report":
        bail(f"{path}: kind {report.get('kind')!r}, expected 'report'")

    spec = report.get("spec")
    if not isinstance(spec, dict) or \
            spec.get("schema") != "trident-eval-spec/1":
        bail(f"{path}: missing or untagged spec echo")
    models = spec.get("models")
    if not isinstance(models, list) or not models:
        bail(f"{path}: spec echo has no models")
    top_n = spec.get("per_instruction", {}).get("top_n", 0)

    # The report deliberately carries only the spec-determined cell
    # count; computed/cached accounting lives in the run manifest so the
    # report stays byte-stable across re-runs.
    cells = report.get("cells")
    if not isinstance(cells, dict) or \
            not isinstance(cells.get("total"), int) or cells["total"] <= 0:
        bail(f"{path}: cells.total missing or non-positive")

    workloads = report.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        bail(f"{path}: missing workloads array")
    for w in workloads:
        name = w.get("name", "<unnamed>")
        fi = w.get("fi")
        if not isinstance(fi, dict):
            bail(f"{path}: workload {name}: missing fi object")
        trials = fi.get("trials", 0)
        if trials <= 0:
            bail(f"{path}: workload {name}: no FI trials")
        if sum(fi.get(o, 0) for o in OUTCOMES) != trials:
            bail(f"{path}: workload {name}: FI tallies do not sum to trials")
        _prob(path, f"workload {name} fi.sdc_prob", fi.get("sdc_prob"))
        if abs(fi["sdc_prob"] - fi["sdc"] / trials) > 1e-9:
            bail(f"{path}: workload {name}: sdc_prob inconsistent with "
                 f"tallies")
        if not 0.0 < fi.get("sdc_ci95", -1) <= 1.0:
            # Wilson CIs have nonzero width even at p = 0 or 1.
            bail(f"{path}: workload {name}: sdc_ci95 out of range")

        wmodels = w.get("models")
        if not isinstance(wmodels, list) or \
                [m.get("name") for m in wmodels] != models:
            bail(f"{path}: workload {name}: model rows do not match the "
                 f"spec's models")
        for m in wmodels:
            _prob(path, f"{name}/{m['name']} overall_sdc",
                  m.get("overall_sdc"))
            expected = abs(m["overall_sdc"] - fi["sdc_prob"])
            if abs(m.get("abs_err", -1) - expected) > 1e-9:
                bail(f"{path}: workload {name}: {m['name']} abs_err "
                     f"inconsistent")
            if not -1.0 <= m.get("spearman", -2) <= 1.0:
                bail(f"{path}: workload {name}: {m['name']} spearman out "
                     f"of [-1, 1]")

        insts = w.get("insts", [])
        if len(insts) > top_n:
            bail(f"{path}: workload {name}: more per-instruction rows than "
                 f"per_instruction.top_n")
        for row in insts:
            _prob(path, f"workload {name} inst fi_sdc", row.get("fi_sdc"))
            row_models = row.get("models", {})
            if sorted(row_models) != sorted(models):
                bail(f"{path}: workload {name}: per-inst row model set "
                     f"mismatch")
            for mname, sdc in row_models.items():
                _prob(path, f"{name} inst {mname} sdc", sdc)

    summary = report.get("summary", {}).get("models")
    if not isinstance(summary, list) or \
            [m.get("name") for m in summary] != models:
        bail(f"{path}: summary.models does not match the spec's models")
    for mi, m in enumerate(summary):
        mean = sum(w["models"][mi]["abs_err"] for w in workloads) \
            / len(workloads)
        if abs(m.get("mean_abs_err", -1) - mean) > 1e-9:
            bail(f"{path}: summary mean_abs_err for {m['name']} "
                 f"inconsistent")
    return len(workloads)


def check_eval_store(store_dir, expected_cells):
    # Walk recursively: sharded stores fan cells out into hash-prefix
    # subdirectories (flat stores just have no subdirectories). Skip the
    # native-cache directory the CLI may colocate with the store.
    paths = []
    for dirpath, dirnames, filenames in os.walk(store_dir):
        dirnames[:] = [d for d in dirnames if d != "native-cache"]
        paths.extend(os.path.join(dirpath, n) for n in filenames
                     if n.endswith(".json"))
    paths.sort()
    for path in paths:
        name = os.path.basename(path)
        with open(path) as f:
            cell = json.load(f)
        if cell.get("schema") != "trident-eval/1":
            bail(f"{path}: bad schema tag {cell.get('schema')!r}")
        if cell.get("kind") != "cell":
            bail(f"{path}: kind {cell.get('kind')!r}, expected 'cell'")
        if not cell.get("key"):
            bail(f"{path}: missing canonical key echo")
        data = cell.get("data")
        if not isinstance(data, dict):
            bail(f"{path}: missing data payload")
        if name.startswith(("fi-", "fii-")):
            trials = data.get("trials", 0)
            if trials <= 0:
                bail(f"{path}: FI cell with no trials")
            if sum(data.get(o, 0) for o in OUTCOMES) != trials:
                bail(f"{path}: FI cell tallies do not sum to trials")
        elif name.startswith("model-"):
            if "overall_sdc" not in data or "insts" not in data:
                bail(f"{path}: model cell missing overall_sdc/insts")
    if len(paths) < expected_cells:
        bail(f"{store_dir}: {len(paths)} cells on disk but the report "
             f"accounts for {expected_cells}")
    return len(paths)


def mode_eval(argv):
    if len(argv) not in (1, 2):
        bail(__doc__)
    with open(argv[0]) as f:
        report = json.load(f)
    nworkloads = check_eval_report(argv[0], report)
    msg = f"eval report OK: {nworkloads} workloads"
    if len(argv) == 2:
        ncells = check_eval_store(argv[1], report["cells"]["total"])
        msg += f", {ncells} store cells OK"
    print(msg)


# ---------------------------------------------------------------------------
# trident-analyze/1
# ---------------------------------------------------------------------------

SEVERITIES = ["error", "warning", "info"]


def check_analyze_report(path, report):
    if report.get("schema") != "trident-analyze/1":
        bail(f"{path}: bad schema tag {report.get('schema')!r}")
    if not report.get("target"):
        bail(f"{path}: missing target name")

    functions = report.get("functions")
    if not isinstance(functions, list):
        bail(f"{path}: missing functions array")
    tally = {s: 0 for s in SEVERITIES}
    sums = {"masked_bits_total": 0, "blocks_visited": 0,
            "fixpoint_iterations": 0}
    for pos, fn in enumerate(functions):
        name = fn.get("name", "<unnamed>")
        if fn.get("index") != pos:
            bail(f"{path}: function {name}: index {fn.get('index')!r} does "
                 f"not match position {pos}")
        stats = fn.get("stats")
        if not isinstance(stats, dict):
            bail(f"{path}: function {name}: missing stats object")
        for key in ("blocks", "reachable_blocks", "insts", "masked_bits",
                    "blocks_visited", "fixpoint_iterations"):
            if not isinstance(stats.get(key), int) or stats[key] < 0:
                bail(f"{path}: function {name}: stats.{key} missing or "
                     f"negative")
        if stats["reachable_blocks"] > stats["blocks"]:
            bail(f"{path}: function {name}: more reachable blocks than "
                 f"blocks")

        for d in fn.get("diagnostics", []):
            if d.get("severity") not in SEVERITIES:
                bail(f"{path}: function {name}: bad severity "
                     f"{d.get('severity')!r}")
            if not d.get("kind") or not d.get("message"):
                bail(f"{path}: function {name}: diagnostic without "
                     f"kind/message")
            tally[d["severity"]] += 1

        per_inst = fn.get("masked_bits_per_inst", [])
        masked = 0
        for entry in per_inst:
            if not (isinstance(entry, list) and len(entry) == 2 and
                    all(isinstance(x, int) for x in entry)):
                bail(f"{path}: function {name}: malformed masked-bits entry")
            inst, bits = entry
            if not 0 <= inst < stats["insts"] or bits <= 0:
                bail(f"{path}: function {name}: masked-bits entry "
                     f"[{inst}, {bits}] out of range")
            masked += bits
        if masked != stats["masked_bits"]:
            bail(f"{path}: function {name}: per-inst masked bits sum to "
                 f"{masked}, stats say {stats['masked_bits']}")
        sums["masked_bits_total"] += stats["masked_bits"]
        sums["blocks_visited"] += stats["blocks_visited"]
        sums["fixpoint_iterations"] += stats["fixpoint_iterations"]

    totals = report.get("totals")
    if not isinstance(totals, dict):
        bail(f"{path}: missing totals object")
    if totals.get("functions") != len(functions):
        bail(f"{path}: totals.functions does not match the functions array")
    for sev, plural in (("error", "errors"), ("warning", "warnings"),
                        ("info", "infos")):
        if totals.get(plural) != tally[sev]:
            bail(f"{path}: totals.{plural} = {totals.get(plural)!r} but "
                 f"{tally[sev]} {sev}-severity diagnostics are present")
    for key, value in sums.items():
        if totals.get(key) != value:
            bail(f"{path}: totals.{key} = {totals.get(key)!r}, per-function "
                 f"sum is {value}")
    return totals


def mode_analyze(argv):
    if len(argv) != 1:
        bail(__doc__)
    with open(argv[0]) as f:
        report = json.load(f)
    totals = check_analyze_report(argv[0], report)
    print(f"analyze report OK: {totals['functions']} functions, "
          f"{totals['errors']} errors, {totals['warnings']} warnings, "
          f"{totals['masked_bits_total']} masked bits")


# ---------------------------------------------------------------------------
# trident serve manifests
# ---------------------------------------------------------------------------

def mode_serve(argv):
    if len(argv) != 1:
        bail(__doc__)
    path = argv[0]
    manifest = load(path)
    require(path, manifest,
            counters=["serve.sessions", "serve.requests",
                      "serve.inflight_dedup_hits", "serve.store_shards"])
    c = manifest["counters"]
    if c["serve.sessions"] <= 0:
        bail(f"{path}: daemon served no sessions")
    if c["serve.requests"] <= 0:
        bail(f"{path}: daemon served no requests")
    # Every accepted request is tallied once globally and once per op.
    per_op = sum(v for k, v in c.items() if k.startswith("serve.requests."))
    if per_op != c["serve.requests"]:
        bail(f"{path}: per-op request tallies sum to {per_op}, "
             f"serve.requests is {c['serve.requests']}")
    if c["serve.inflight_dedup_hits"] < 0:
        bail(f"{path}: negative serve.inflight_dedup_hits")
    if c["serve.store_shards"] not in (1, 16, 256):
        bail(f"{path}: serve.store_shards = {c['serve.store_shards']!r}, "
             f"expected one of 1/16/256")
    # A daemon that evaluated cells aggregates the same eval.* accounting
    # the offline runner emits; dedup hits require eval traffic.
    if c["serve.inflight_dedup_hits"] > 0 and \
            c.get("serve.requests.eval", 0) == 0:
        bail(f"{path}: dedup hits reported without any eval requests")
    print(f"serve manifest OK: {c['serve.sessions']} sessions, "
          f"{c['serve.requests']} requests, "
          f"{c['serve.inflight_dedup_hits']} dedup hits, "
          f"{c['serve.store_shards']} store shards")


def mode_selftest(argv):
    if argv:
        bail(__doc__)
    fixture = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "fixtures", "eval_report_tiny.json")
    with open(fixture) as f:
        good = json.load(f)
    check_eval_report(fixture, good)

    # Representative corruptions must be rejected.
    corruptions = [
        ("schema tag", lambda r: r.update(schema="bogus/9")),
        ("cell accounting", lambda r: r["cells"].update(total=0)),
        ("FI tallies",
         lambda r: r["workloads"][0]["fi"].update(
             sdc=r["workloads"][0]["fi"]["sdc"] + 1)),
        ("abs_err consistency",
         lambda r: r["workloads"][0]["models"][0].update(abs_err=0.5)),
        ("spearman range",
         lambda r: r["workloads"][0]["models"][0].update(spearman=1.5)),
        ("zero-width CI",
         lambda r: r["workloads"][0]["fi"].update(sdc_ci95=0.0)),
    ]
    for label, corrupt in corruptions:
        bad = copy.deepcopy(good)
        corrupt(bad)
        try:
            check_eval_report(f"<{label}>", bad)
        except SystemExit:
            continue
        bail(f"selftest: corruption {label!r} was not detected")

    analyze_fixture = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "fixtures",
        "analyze_tiny.json")
    with open(analyze_fixture) as f:
        analyze_good = json.load(f)
    check_analyze_report(analyze_fixture, analyze_good)
    analyze_corruptions = [
        ("analyze schema tag", lambda r: r.update(schema="bogus/9")),
        ("severity tally",
         lambda r: r["totals"].update(infos=r["totals"]["infos"] + 1)),
        ("masked-bits roll-up",
         lambda r: r["totals"].update(masked_bits_total=0)),
        ("per-inst masked sum",
         lambda r: r["functions"][0]["masked_bits_per_inst"].append([0, 1])),
        ("diagnostic severity",
         lambda r: r["functions"][0]["diagnostics"][0].update(
             severity="fatal")),
        ("reachability bound",
         lambda r: r["functions"][0]["stats"].update(reachable_blocks=999)),
    ]
    for label, corrupt in analyze_corruptions:
        bad = copy.deepcopy(analyze_good)
        corrupt(bad)
        try:
            check_analyze_report(f"<{label}>", bad)
        except SystemExit:
            continue
        bail(f"selftest: corruption {label!r} was not detected")
    print(f"selftest OK: fixtures valid, "
          f"{len(corruptions) + len(analyze_corruptions)} corruptions "
          f"detected")


def main(argv):
    if len(argv) >= 2 and argv[1] in ("run", "eval", "analyze", "engines",
                                      "serve", "selftest"):
        mode, rest = argv[1], argv[2:]
    elif len(argv) == 4:
        mode, rest = "run", argv[1:]  # legacy positional form
    else:
        bail(__doc__)
    {"run": mode_run, "eval": mode_eval, "analyze": mode_analyze,
     "engines": mode_engines, "serve": mode_serve,
     "selftest": mode_selftest}[mode](rest)


if __name__ == "__main__":
    main(sys.argv)
