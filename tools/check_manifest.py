#!/usr/bin/env python3
"""CI validator for trident run manifests (schema trident-run-metrics/1).

Usage: check_manifest.py INJECT.json RESUME.json PREDICT.json

INJECT is the manifest of a fresh checkpointed `trident inject` run,
RESUME the manifest of re-running the same command over the finished
checkpoint log, and PREDICT the manifest of a `trident predict` run.
Checks that each parses, carries the schema tag and the expected metric
families, that the outcome tallies are internally consistent, and that
the resumed campaign reproduced the fresh run's tallies without
re-running any trial.
"""
import json
import sys

OUTCOMES = ["sdc", "benign", "crash", "hang", "detected"]


def load(path):
    with open(path) as f:
        manifest = json.load(f)
    if manifest.get("schema") != "trident-run-metrics/1":
        raise SystemExit(f"{path}: bad schema tag {manifest.get('schema')!r}")
    for section in ("counters", "gauges"):
        if not isinstance(manifest.get(section), dict):
            raise SystemExit(f"{path}: missing {section!r} object")
    return manifest


def require(path, manifest, counters=(), gauges=()):
    for key in counters:
        if key not in manifest["counters"]:
            raise SystemExit(f"{path}: missing counter {key!r}")
    for key in gauges:
        if key not in manifest["gauges"]:
            raise SystemExit(f"{path}: missing gauge {key!r}")


def check_campaign(path, manifest):
    require(
        path,
        manifest,
        counters=["fi.trials.total", "fi.trials.run", "fi.trials.resumed",
                  "fi.fuel_exhausted", "fi.snapshot_count",
                  "fi.snapshot_bytes", "fi.snapshot_skipped_insts",
                  "fi.snapshot_resumed_trials", "interp.memcache.hits",
                  "interp.memcache.lookups"]
        + [f"fi.outcome.{o}" for o in OUTCOMES],
        gauges=["fi.trials_per_sec", "fi.campaign.seconds",
                "phase.campaign.seconds"],
    )
    c = manifest["counters"]
    total = c["fi.trials.total"]
    if total <= 0:
        raise SystemExit(f"{path}: campaign ran no trials")
    if sum(c[f"fi.outcome.{o}"] for o in OUTCOMES) != total:
        raise SystemExit(f"{path}: outcome tallies do not sum to the total")
    # Snapshot-engine consistency: only run trials can resume from a
    # snapshot, and a campaign without snapshots cannot skip any work.
    if c["fi.snapshot_resumed_trials"] > c["fi.trials.run"]:
        raise SystemExit(
            f"{path}: more snapshot-resumed trials than trials run")
    if c["fi.snapshot_count"] == 0 and (
            c["fi.snapshot_skipped_insts"] != 0
            or c["fi.snapshot_resumed_trials"] != 0):
        raise SystemExit(
            f"{path}: snapshot work reported without any snapshots")
    if c["interp.memcache.hits"] > c["interp.memcache.lookups"]:
        raise SystemExit(f"{path}: memory-cache hits exceed lookups")
    return c


def main(argv):
    if len(argv) != 4:
        raise SystemExit(__doc__)
    inject, resume, predict = (load(p) for p in argv[1:4])

    fresh = check_campaign(argv[1], inject)
    if fresh["fi.trials.resumed"] != 0:
        raise SystemExit(f"{argv[1]}: fresh run claims resumed trials")

    resumed = check_campaign(argv[2], resume)
    if resumed["fi.trials.run"] != 0:
        raise SystemExit(f"{argv[2]}: resume over a finished log re-ran trials")
    if resumed["fi.trials.resumed"] != fresh["fi.trials.total"]:
        raise SystemExit(f"{argv[2]}: resume did not restore every trial")
    for o in OUTCOMES:
        key = f"fi.outcome.{o}"
        if resumed[key] != fresh[key]:
            raise SystemExit(
                f"{argv[2]}: resumed tally {key} = {resumed[key]} differs "
                f"from the fresh run's {fresh[key]}")

    require(
        argv[3],
        predict,
        counters=["fm.solver_iterations", "fs.memo.hits", "fs.memo.lookups",
                  "fc.memo.hits", "fc.memo.lookups", "trident.memo.hits",
                  "trident.memo.lookups"],
        gauges=["fs.memo.hit_rate", "fc.memo.hit_rate",
                "trident.memo.hit_rate", "phase.profile.seconds",
                "phase.predict.seconds"],
    )
    print(f"manifests OK: {fresh['fi.trials.total']} trials fresh, "
          f"{resumed['fi.trials.resumed']} resumed, predict instrumented")


if __name__ == "__main__":
    main(sys.argv)
