#!/usr/bin/env sh
# Tier-1 verification: configure + build + test, exactly what CI runs.
#
#   tools/ci.sh            # release preset (build/)
#   tools/ci.sh asan       # address+UB sanitizer preset (build-asan/)
#
# Extra knobs: TRIDENT_THREADS caps worker threads of parallel stages;
# TRIDENT_TRIALS shrinks FI campaigns in the benches. Neither changes
# test results (campaigns are bit-identical at any thread count).
set -eu

preset="${1:-release}"
cd "$(dirname "$0")/.."

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
ctest --preset "$preset"
