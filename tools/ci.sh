#!/usr/bin/env sh
# Tier-1 verification: configure + build + test, exactly what CI runs.
#
#   tools/ci.sh            # release preset (build/)
#   tools/ci.sh asan       # address+UB sanitizer preset (build-asan/)
#
# Extra knobs: TRIDENT_THREADS caps worker threads of parallel stages;
# TRIDENT_TRIALS shrinks FI campaigns in the benches. Neither changes
# test results (campaigns are bit-identical at any thread count).
set -eu

preset="${1:-release}"
cd "$(dirname "$0")/.."

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
ctest --preset "$preset"

bindir=build
if [ "$preset" = "asan" ]; then
  bindir=build-asan
  # The checkpoint/resume crash-safety suite exercises concurrent file
  # appends and torn-log recovery; give it an explicit pass under the
  # sanitizers on top of the full ctest run above.
  ctest --preset asan -R 'Checkpoint'
fi

# CLI smoke: a fresh checkpointed campaign, a resume over its finished
# log, and a model prediction must all emit parseable run manifests with
# the expected metric families, and the resume must reproduce the fresh
# tallies without re-running a single trial.
smokedir="$(mktemp -d)"
trap 'rm -rf "$smokedir"' EXIT
"$bindir/tools/trident" inject pathfinder --trials 60 --threads 4 \
  --checkpoint "$smokedir/ckpt.jsonl" \
  --metrics-out "$smokedir/inject.json" --no-progress
"$bindir/tools/trident" inject pathfinder --trials 60 --threads 4 \
  --checkpoint "$smokedir/ckpt.jsonl" \
  --metrics-out "$smokedir/resume.json" --no-progress
"$bindir/tools/trident" predict pathfinder --samples 60 \
  --metrics-out "$smokedir/predict.json"
python3 tools/check_manifest.py \
  "$smokedir/inject.json" "$smokedir/resume.json" "$smokedir/predict.json"

# Static-analysis smoke: `trident analyze` over every registered
# workload. The CLI exits nonzero on any error-severity diagnostic
# (bundled workloads must lint clean), and every JSON document must
# validate against the trident-analyze/1 schema. Run twice at different
# thread counts and require byte-identical output.
for w in $("$bindir/tools/trident" list | awk 'NR > 1 {print $1}'); do
  "$bindir/tools/trident" analyze "$w" --json --threads 1 \
    -o "$smokedir/analyze-$w.json"
  "$bindir/tools/trident" analyze "$w" --json --threads 8 \
    -o "$smokedir/analyze-$w-mt.json"
  cmp "$smokedir/analyze-$w.json" "$smokedir/analyze-$w-mt.json" \
    || { echo "analyze $w: thread-count-dependent output" >&2; exit 1; }
  python3 tools/check_manifest.py analyze "$smokedir/analyze-$w.json"
done

# Evaluation-subsystem smoke: run the tiny committed spec end to end
# (~240 FI trials), validate the report and every result-store cell,
# then re-run against the same store and require a 100% cache hit —
# zero FI trials executed the second time.
python3 tools/check_manifest.py selftest
"$bindir/tools/trident" eval examples/specs/ci_smoke.json \
  --out-dir "$smokedir/eval" --threads 4 --no-progress
python3 tools/check_manifest.py eval \
  "$smokedir/eval/report.json" "$smokedir/eval/store"
"$bindir/tools/trident" eval examples/specs/ci_smoke.json \
  --out-dir "$smokedir/eval" --threads 4 --no-progress \
  | grep -q ' 0 computed' \
  || { echo "eval re-run was not a full cache hit" >&2; exit 1; }

# Engine-parity smoke: the same checkpointed campaign under both
# execution backends must write byte-identical checkpoint logs and
# manifests whose fi.* counters match exactly (docs/ENGINE.md). A
# third run on the threaded backend at 8 threads must agree with the
# single-threaded logs after sorting (workers append in completion
# order; the set of records is what is deterministic).
"$bindir/tools/trident" inject pathfinder --trials 60 --threads 1 \
  --engine interp --checkpoint "$smokedir/eng-i.jsonl" \
  --metrics-out "$smokedir/eng-i.json" --no-progress
"$bindir/tools/trident" inject pathfinder --trials 60 --threads 1 \
  --engine threaded --checkpoint "$smokedir/eng-t.jsonl" \
  --metrics-out "$smokedir/eng-t.json" --no-progress
cmp "$smokedir/eng-i.jsonl" "$smokedir/eng-t.jsonl" \
  || { echo "engine parity: checkpoint logs differ" >&2; exit 1; }
python3 tools/check_manifest.py engines \
  "$smokedir/eng-i.json" "$smokedir/eng-t.json"
"$bindir/tools/trident" inject pathfinder --trials 60 --threads 8 \
  --engine threaded --checkpoint "$smokedir/eng-t8.jsonl" \
  --metrics-out "$smokedir/eng-t8.json" --no-progress
sort "$smokedir/eng-i.jsonl" > "$smokedir/eng-i.sorted"
sort "$smokedir/eng-t8.jsonl" > "$smokedir/eng-t8.sorted"
cmp "$smokedir/eng-i.sorted" "$smokedir/eng-t8.sorted" \
  || { echo "engine parity: 8-thread threaded log differs" >&2; exit 1; }
python3 tools/check_manifest.py engines \
  "$smokedir/eng-i.json" "$smokedir/eng-t8.json"

# Native-engine parity smoke: same shape as above but with --engine
# native, which compiles trials to host machine code (docs/ENGINE.md,
# "Native backend"). The probe run detects hosts that cannot
# runtime-compile (no usable host compiler, unsupported platform); the
# campaign still runs there via the transparent threaded fallback, so
# parity would pass vacuously — skip it with a visible notice instead
# so a silently-broken compile pipeline can't hide in a green CI run.
"$bindir/tools/trident" inject pathfinder --trials 4 --threads 1 \
  --engine native --metrics-out "$smokedir/eng-n-probe.json" --no-progress
native_functions="$(python3 -c '
import json, sys
print(json.load(open(sys.argv[1]))["counters"]["engine.native.functions"])
' "$smokedir/eng-n-probe.json")"
if [ "$native_functions" -gt 0 ]; then
  "$bindir/tools/trident" inject pathfinder --trials 60 --threads 1 \
    --engine native --checkpoint "$smokedir/eng-n.jsonl" \
    --metrics-out "$smokedir/eng-n.json" --no-progress
  cmp "$smokedir/eng-i.jsonl" "$smokedir/eng-n.jsonl" \
    || { echo "engine parity: native checkpoint log differs" >&2; exit 1; }
  python3 tools/check_manifest.py engines \
    "$smokedir/eng-i.json" "$smokedir/eng-n.json"
  "$bindir/tools/trident" inject pathfinder --trials 60 --threads 8 \
    --engine native --checkpoint "$smokedir/eng-n8.jsonl" \
    --metrics-out "$smokedir/eng-n8.json" --no-progress
  sort "$smokedir/eng-n8.jsonl" > "$smokedir/eng-n8.sorted"
  cmp "$smokedir/eng-i.sorted" "$smokedir/eng-n8.sorted" \
    || { echo "engine parity: 8-thread native log differs" >&2; exit 1; }
  python3 tools/check_manifest.py engines \
    "$smokedir/eng-i.json" "$smokedir/eng-n8.json"
else
  echo "NOTICE: host cannot runtime-compile (engine.native.functions=0);" \
       "skipping native-engine parity smoke (threaded fallback still" \
       "validated the campaign above)" >&2
fi

# Trial-engine throughput smoke: a quick snapshots-off vs snapshots-on
# vs threaded-engine vs native-engine campaign per workload. The binary
# exits nonzero if the four results are not bit-identical, so this
# doubles as an end-to-end equivalence check.
TRIDENT_TRIALS=60 TRIDENT_BENCH_OUT="$smokedir/BENCH_trial_throughput.json" \
  "$bindir/bench/trial_throughput"

# Differential-fuzzer smoke (docs/FUZZING.md): a fixed seed range
# through every oracle — engine parity, known/demanded-bits soundness,
# print/parse round-trip, model-vs-FI sanity. `trident fuzz` exits
# nonzero on any divergence, and the report must be byte-identical
# across FI thread counts (the per-program report lines are part of the
# determinism contract). TRIDENT_FUZZ_BUDGET shrinks the range for
# quick local runs.
fuzz_count="${TRIDENT_FUZZ_BUDGET:-200}"
"$bindir/tools/trident" fuzz --seed 0 --count "$fuzz_count" --threads 1 \
  --emit "$smokedir/fuzz-repro" > "$smokedir/fuzz-t1.txt"
"$bindir/tools/trident" fuzz --seed 0 --count "$fuzz_count" --threads 8 \
  --emit "$smokedir/fuzz-repro" > "$smokedir/fuzz-t8.txt"
cmp "$smokedir/fuzz-t1.txt" "$smokedir/fuzz-t8.txt" \
  || { echo "fuzz: thread-count-dependent report" >&2; exit 1; }

# Serve-daemon smoke (docs/SERVE.md): a long-lived daemon on a private
# socket, two clients racing the same spec, and the offline runner must
# all agree byte-for-byte. Client A owns every cell; client B arrives
# while they are in flight, so the in-flight dedup table must hand it
# the same results without executing a single trial. A third client on
# the warm store is a pure cache hit, and the daemon manifest must
# account for the sessions, requests, dedup hits and shard layout.
servedir="$smokedir/serve"
mkdir -p "$servedir"
"$bindir/tools/trident" serve --socket "$servedir/daemon.sock" \
  --store "$servedir/store" --shards 16 \
  --metrics-out "$servedir/daemon.json" 2> "$servedir/daemon.log" &
daemon_pid=$!
trap 'kill "$daemon_pid" 2>/dev/null; rm -rf "$smokedir"' EXIT
i=0
while [ ! -S "$servedir/daemon.sock" ]; do
  i=$((i + 1))
  [ "$i" -le 100 ] || { echo "serve: daemon never bound its socket" >&2
                        cat "$servedir/daemon.log" >&2; exit 1; }
  sleep 0.1
done
"$bindir/tools/trident" client eval examples/specs/serve_smoke.json \
  --socket "$servedir/daemon.sock" --out-dir "$servedir/client-a" \
  --no-progress > "$servedir/client-a.txt" &
client_a_pid=$!
sleep 0.3  # let A claim every cell so B dedups against its in-flight work
"$bindir/tools/trident" client eval examples/specs/serve_smoke.json \
  --socket "$servedir/daemon.sock" --out-dir "$servedir/client-b" \
  --no-progress > "$servedir/client-b.txt"
wait "$client_a_pid"
grep -q '8 total, 8 computed, 0 cached, 0 deduped' "$servedir/client-a.txt" \
  || { echo "serve: client A did not compute every cell" >&2
       cat "$servedir/client-a.txt" >&2; exit 1; }
grep -q '8 total, 0 computed, 0 cached, 8 deduped' "$servedir/client-b.txt" \
  || { echo "serve: client B was not deduplicated against A" >&2
       cat "$servedir/client-b.txt" >&2; exit 1; }
grep -q 'FI trials executed for this request: 0' "$servedir/client-b.txt" \
  || { echo "serve: deduplicated client B still ran trials" >&2; exit 1; }
"$bindir/tools/trident" eval examples/specs/serve_smoke.json \
  --out-dir "$servedir/offline" --threads 4 --no-progress > /dev/null
for f in report.md report.csv per_instruction.csv report.json; do
  cmp "$servedir/offline/$f" "$servedir/client-a/$f" \
    || { echo "serve: client A $f differs from offline eval" >&2; exit 1; }
  cmp "$servedir/offline/$f" "$servedir/client-b/$f" \
    || { echo "serve: client B $f differs from offline eval" >&2; exit 1; }
done
"$bindir/tools/trident" client eval examples/specs/serve_smoke.json \
  --socket "$servedir/daemon.sock" --out-dir "$servedir/client-c" \
  --no-progress \
  | grep -q '8 total, 0 computed, 8 cached, 0 deduped' \
  || { echo "serve: warm re-eval was not a full cache hit" >&2; exit 1; }
"$bindir/tools/trident" client ping --socket "$servedir/daemon.sock" \
  | grep -q pong || { echo "serve: ping failed" >&2; exit 1; }
"$bindir/tools/trident" client shutdown --socket "$servedir/daemon.sock" \
  > /dev/null
wait "$daemon_pid"
trap 'rm -rf "$smokedir"' EXIT
python3 tools/check_manifest.py serve "$servedir/daemon.json"
dedup_hits="$(python3 -c '
import json, sys
print(json.load(open(sys.argv[1]))["counters"]["serve.inflight_dedup_hits"])
' "$servedir/daemon.json")"
[ "$dedup_hits" -eq 8 ] \
  || { echo "serve: expected 8 dedup hits, manifest says $dedup_hits" >&2
       exit 1; }
python3 tools/check_manifest.py eval \
  "$servedir/client-a/report.json" "$servedir/store"
