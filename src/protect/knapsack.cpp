#include "protect/knapsack.h"

#include <algorithm>

namespace trident::protect {

std::vector<uint32_t> knapsack_select(std::span<const KnapsackItem> items,
                                      uint64_t capacity,
                                      uint32_t max_buckets) {
  const auto n = static_cast<uint32_t>(items.size());
  if (n == 0 || capacity == 0) return {};

  // Scale weights so the DP axis has at most max_buckets cells. Ceil
  // scaling keeps every selection feasible at the original weights.
  const uint64_t scale =
      std::max<uint64_t>(1, (capacity + max_buckets - 1) / max_buckets);
  const auto buckets = static_cast<uint32_t>(capacity / scale);

  std::vector<uint32_t> w(n);
  for (uint32_t i = 0; i < n; ++i) {
    w[i] = static_cast<uint32_t>((items[i].weight + scale - 1) / scale);
  }

  std::vector<double> dp(buckets + 1, 0.0);
  // take[i] records, per capacity cell, whether item i was taken.
  std::vector<std::vector<bool>> take(n);
  for (uint32_t i = 0; i < n; ++i) {
    take[i].assign(buckets + 1, false);
    if (items[i].profit <= 0) continue;
    if (w[i] > buckets) continue;
    for (uint32_t b = buckets; b + 1 > w[i]; --b) {
      const double candidate = dp[b - w[i]] + items[i].profit;
      if (candidate > dp[b]) {
        dp[b] = candidate;
        take[i][b] = true;
      }
    }
  }

  // Backtrack from the full capacity.
  std::vector<uint32_t> selected;
  uint32_t b = buckets;
  for (uint32_t i = n; i-- > 0;) {
    if (take[i][b]) {
      selected.push_back(i);
      b -= w[i];
    }
  }
  std::reverse(selected.begin(), selected.end());
  return selected;
}

}  // namespace trident::protect
