#include "protect/duplication.h"

#include <algorithm>

#include "analysis/def_use.h"
#include "profiler/profile.h"

namespace trident::protect {

bool is_duplicable(const ir::Instruction& inst) {
  switch (inst.op) {
    case ir::Opcode::Store:
    case ir::Opcode::Memcpy:
    case ir::Opcode::Br:
    case ir::Opcode::CondBr:
    case ir::Opcode::Ret:
    case ir::Opcode::Call:     // side effects; duplicating re-executes them
    case ir::Opcode::Alloca:   // the clone would define a different address
    case ir::Opcode::Print:
    case ir::Opcode::Detect:
      return false;
    default:
      return inst.has_result();
  }
}

namespace {

enum class Kind : uint8_t { Orig, Dup, CastA, CastB, Cmp, Det };

struct Entry {
  Kind kind;
  uint32_t old_id;
};

// Transforms one function. `prot` flags the protected (and duplicable)
// instructions of this function.
void transform_function(const ir::Function& src, uint32_t func_id,
                        const std::vector<bool>& prot,
                        DuplicationResult& result) {
  const analysis::DefUse def_use(src);

  // A protected instruction ends its protected chain when no user
  // continues the chain; that is where the comparison goes.
  const auto chain_end = [&](uint32_t id) {
    for (const auto& use : def_use.users_of_inst(id)) {
      if (prot[use.user]) return false;
    }
    return true;
  };

  // Pass 1: lay out the new instruction order and assign ids.
  std::vector<std::vector<Entry>> layout(src.blocks.size());
  for (uint32_t bb = 0; bb < src.blocks.size(); ++bb) {
    auto& entries = layout[bb];
    const auto& insts = src.blocks[bb].insts;
    size_t n_phis = 0;
    while (n_phis < insts.size() &&
           src.insts[insts[n_phis]].op == ir::Opcode::Phi) {
      ++n_phis;
    }
    const auto emit_detection = [&](uint32_t id) {
      if (src.insts[id].type.is_float()) {
        entries.push_back({Kind::CastA, id});
        entries.push_back({Kind::CastB, id});
      }
      entries.push_back({Kind::Cmp, id});
      entries.push_back({Kind::Det, id});
    };
    // Keep the phi group contiguous: originals, then duplicated phis,
    // then any detections for chain-ending phis.
    for (size_t i = 0; i < n_phis; ++i) entries.push_back({Kind::Orig, insts[i]});
    for (size_t i = 0; i < n_phis; ++i) {
      if (prot[insts[i]]) entries.push_back({Kind::Dup, insts[i]});
    }
    for (size_t i = 0; i < n_phis; ++i) {
      if (prot[insts[i]] && chain_end(insts[i])) emit_detection(insts[i]);
    }
    for (size_t i = n_phis; i < insts.size(); ++i) {
      const uint32_t id = insts[i];
      entries.push_back({Kind::Orig, id});
      if (prot[id]) {
        entries.push_back({Kind::Dup, id});
        if (chain_end(id)) emit_detection(id);
      }
    }
  }

  constexpr uint32_t kNone = ~0u;
  std::vector<uint32_t> orig_new(src.insts.size(), kNone);
  std::vector<uint32_t> dup_new(src.insts.size(), kNone);
  std::vector<uint32_t> cast_a(src.insts.size(), kNone);
  std::vector<uint32_t> cast_b(src.insts.size(), kNone);
  std::vector<uint32_t> cmp_new(src.insts.size(), kNone);
  uint32_t next_id = 0;
  for (const auto& entries : layout) {
    for (const auto& e : entries) {
      switch (e.kind) {
        case Kind::Orig: orig_new[e.old_id] = next_id; break;
        case Kind::Dup: dup_new[e.old_id] = next_id; break;
        case Kind::CastA: cast_a[e.old_id] = next_id; break;
        case Kind::CastB: cast_b[e.old_id] = next_id; break;
        case Kind::Cmp: cmp_new[e.old_id] = next_id; break;
        case Kind::Det: break;
      }
      ++next_id;
    }
  }

  const auto remap = [&](const ir::Value& v, bool prefer_dup) {
    if (!v.is_inst()) return v;
    if (prefer_dup && dup_new[v.index] != kNone) {
      return ir::Value::inst(dup_new[v.index]);
    }
    return ir::Value::inst(orig_new[v.index]);
  };

  // Pass 2: materialize.
  ir::Function out;
  out.name = src.name;
  out.params = src.params;
  out.ret = src.ret;
  out.constants = src.constants;
  out.insts.reserve(next_id);
  for (uint32_t bb = 0; bb < src.blocks.size(); ++bb) {
    out.add_block(src.blocks[bb].name);
    for (const auto& e : layout[bb]) {
      ir::Instruction inst;
      const auto& old = src.insts[e.old_id];
      switch (e.kind) {
        case Kind::Orig:
        case Kind::Dup: {
          inst = old;
          const bool dup = e.kind == Kind::Dup;
          for (auto& v : inst.operands) v = remap(v, dup);
          if (dup) inst.name = old.name.empty() ? "dup" : old.name + ".dup";
          break;
        }
        case Kind::CastA:
        case Kind::CastB: {
          inst.op = ir::Opcode::Bitcast;
          inst.type = ir::Type::i(old.type.width());
          inst.operands = {ir::Value::inst(e.kind == Kind::CastA
                                               ? orig_new[e.old_id]
                                               : dup_new[e.old_id])};
          break;
        }
        case Kind::Cmp: {
          inst.op = ir::Opcode::ICmp;
          inst.type = ir::Type::i1();
          inst.pred = ir::CmpPred::Ne;
          if (old.type.is_float()) {
            inst.operands = {ir::Value::inst(cast_a[e.old_id]),
                             ir::Value::inst(cast_b[e.old_id])};
          } else {
            inst.operands = {ir::Value::inst(orig_new[e.old_id]),
                             ir::Value::inst(dup_new[e.old_id])};
          }
          inst.name = "chk";
          break;
        }
        case Kind::Det: {
          inst.op = ir::Opcode::Detect;
          inst.type = ir::Type::void_();
          inst.operands = {ir::Value::inst(cmp_new[e.old_id])};
          break;
        }
      }
      const uint32_t new_id = out.append(bb, std::move(inst));
      if (e.kind == Kind::Orig) {
        result.inst_map[prof::pack({func_id, e.old_id})] =
            prof::pack({func_id, new_id});
      }
    }
  }

  result.added_insts += out.insts.size() - src.insts.size();
  for (uint32_t id = 0; id < src.insts.size(); ++id) {
    if (prot[id]) ++result.duplicated;
  }
  result.module.functions.push_back(std::move(out));
}

}  // namespace

DuplicationResult duplicate_instructions(
    const ir::Module& module, const std::vector<ir::InstRef>& selection) {
  DuplicationResult result;
  result.module.name = module.name + ".protected";
  result.module.globals = module.globals;

  std::vector<std::vector<bool>> prot(module.functions.size());
  for (uint32_t f = 0; f < module.functions.size(); ++f) {
    prot[f].assign(module.functions[f].insts.size(), false);
  }
  for (const auto& ref : selection) {
    const auto& inst = module.functions[ref.func].insts[ref.inst];
    if (is_duplicable(inst)) prot[ref.func][ref.inst] = true;
  }
  for (uint32_t f = 0; f < module.functions.size(); ++f) {
    transform_function(module.functions[f], f, prot[f], result);
  }
  return result;
}

DuplicationResult duplicate_all(const ir::Module& module) {
  std::vector<ir::InstRef> all;
  for (uint32_t f = 0; f < module.functions.size(); ++f) {
    const auto& func = module.functions[f];
    for (uint32_t i = 0; i < func.insts.size(); ++i) {
      if (is_duplicable(func.insts[i])) all.push_back({f, i});
    }
  }
  return duplicate_instructions(module, all);
}

}  // namespace trident::protect
