// Selection policy (paper §VI): given per-instruction SDC estimates from
// any model, choose the instructions to duplicate under a dynamic-
// instruction overhead budget via the 0-1 knapsack formulation.
#pragma once

#include <functional>
#include <vector>

#include "ir/module.h"
#include "profiler/profile.h"

namespace trident::protect {

struct ProtectionPlan {
  std::vector<ir::InstRef> selected;
  uint64_t cost = 0;        // sum of selected dynamic execution counts
  uint64_t capacity = 0;    // the budget the knapsack ran with
  double expected_covered = 0;  // sum of selected profits
};

/// `sdc_of` maps an instruction to its estimated SDC probability.
/// `overhead_fraction` is relative to the cost of duplicating every
/// duplicable instruction (the paper's full-duplication baseline), e.g.
/// 1.0/3 and 2.0/3 for the paper's two protection levels.
ProtectionPlan select_for_duplication(
    const ir::Module& module, const prof::Profile& profile,
    const std::function<double(ir::InstRef)>& sdc_of,
    double overhead_fraction);

/// Total dynamic cost of full duplication (the knapsack baseline).
uint64_t full_duplication_cost(const ir::Module& module,
                               const prof::Profile& profile);

}  // namespace trident::protect
