// Selective instruction duplication (paper §VI): clones the selected
// instructions, redirects cloned operands to cloned producers within a
// protected chain, and inserts one comparison + detector at each chain
// end ("if protected instructions are data dependent ... we only place
// one comparison instruction at the latter protected instruction").
// A detected mismatch halts the run with outcome Detected.
#pragma once

#include <unordered_map>
#include <vector>

#include "ir/module.h"

namespace trident::protect {

/// Whether the pass can duplicate this instruction. Side-effecting or
/// address-defining instructions (stores, calls, allocas, terminators,
/// prints) are not duplicable.
bool is_duplicable(const ir::Instruction& inst);

struct DuplicationResult {
  ir::Module module;
  /// Packed original InstRef -> packed InstRef in the new module.
  std::unordered_map<uint64_t, uint64_t> inst_map;
  /// Static instructions added (duplicates + comparisons + detectors).
  uint64_t added_insts = 0;
  /// Instructions actually duplicated (non-duplicable ones are skipped).
  uint64_t duplicated = 0;
};

/// Returns a transformed copy of `module` with `selection` duplicated.
DuplicationResult duplicate_instructions(
    const ir::Module& module, const std::vector<ir::InstRef>& selection);

/// Convenience: protects every duplicable instruction (the paper's
/// full-duplication overhead baseline).
DuplicationResult duplicate_all(const ir::Module& module);

}  // namespace trident::protect
