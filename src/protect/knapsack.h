// 0-1 knapsack (paper §VI): objects are instructions, profits are
// estimated SDC contributions, costs are dynamic execution counts, and
// the capacity is the allowed performance overhead. Solved with the
// classical dynamic program over a scaled weight axis.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace trident::protect {

struct KnapsackItem {
  double profit = 0;
  uint64_t weight = 0;
};

/// Returns the indices of the selected items. Weights are scaled down to
/// at most `max_buckets` DP cells (ceil-scaling, so the capacity is never
/// exceeded); with small totals the DP is exact.
std::vector<uint32_t> knapsack_select(std::span<const KnapsackItem> items,
                                      uint64_t capacity,
                                      uint32_t max_buckets = 20000);

}  // namespace trident::protect
