#include "protect/selector.h"

#include <cmath>

#include "protect/duplication.h"
#include "protect/knapsack.h"

namespace trident::protect {

namespace {

std::vector<ir::InstRef> duplicable_executed(const ir::Module& module,
                                             const prof::Profile& profile) {
  std::vector<ir::InstRef> out;
  for (uint32_t f = 0; f < module.functions.size(); ++f) {
    const auto& func = module.functions[f];
    for (uint32_t i = 0; i < func.insts.size(); ++i) {
      if (is_duplicable(func.insts[i]) && profile.exec({f, i}) > 0) {
        out.push_back({f, i});
      }
    }
  }
  return out;
}

}  // namespace

uint64_t full_duplication_cost(const ir::Module& module,
                               const prof::Profile& profile) {
  uint64_t total = 0;
  for (const auto& ref : duplicable_executed(module, profile)) {
    total += profile.exec(ref);
  }
  return total;
}

ProtectionPlan select_for_duplication(
    const ir::Module& module, const prof::Profile& profile,
    const std::function<double(ir::InstRef)>& sdc_of,
    double overhead_fraction) {
  const auto candidates = duplicable_executed(module, profile);

  std::vector<KnapsackItem> items;
  items.reserve(candidates.size());
  for (const auto& ref : candidates) {
    const auto exec = static_cast<double>(profile.exec(ref));
    // Profit: the instruction's expected contribution to the program's
    // SDC probability (its SDC probability weighted by how often faults
    // land on it). Cost: its dynamic execution count, the proxy for the
    // duplication overhead.
    items.push_back({sdc_of(ref) * exec, profile.exec(ref)});
  }

  ProtectionPlan plan;
  plan.capacity = static_cast<uint64_t>(
      std::llround(overhead_fraction *
                   static_cast<double>(full_duplication_cost(module, profile))));
  for (const auto idx : knapsack_select(items, plan.capacity)) {
    plan.selected.push_back(candidates[idx]);
    plan.cost += items[idx].weight;
    plan.expected_covered += items[idx].profit;
  }
  return plan;
}

}  // namespace trident::protect
