#include "ddg/ddg.h"

#include <cassert>
#include <unordered_map>

namespace trident::ddg {

namespace {
constexpr uint64_t kNoNode = ~0ull;
}  // namespace

// Shadow machine: replays the interpreter's hook stream, mirroring the
// call stack and register files at "which dynamic node produced this
// value" granularity.
class DdgBuilder final : public interp::ExecHooks {
 public:
  explicit DdgBuilder(const ir::Module& module) : module_(module) {
    push_frame(*module.find_function("main"), {});
  }

  void on_exec(ir::InstRef ref,
               std::span<const uint64_t> /*operands*/) override {
    const auto& func = module_.functions[ref.func];
    const auto& inst = func.insts[ref.inst];
    Frame& fr = frames_.back();

    Node node;
    node.inst = ref;
    node.first_producer = static_cast<uint32_t>(out_.producer_pool_.size());
    const auto add_producer = [&](uint64_t n) {
      if (n == kNoNode) return;
      out_.producer_pool_.push_back(n);
      ++node.num_producers;
    };
    const auto producer_of = [&](const ir::Value& v) -> uint64_t {
      switch (v.kind) {
        case ir::Value::Kind::Inst:
          return fr.reg_node[v.index];
        case ir::Value::Kind::Arg:
          return fr.arg_node[v.index];
        default:
          return kNoNode;
      }
    };

    if (inst.op == ir::Opcode::Phi) {
      // The staged value came from the incoming edge matching the block
      // we arrived from.
      for (uint32_t k = 0; k < inst.incoming.size(); ++k) {
        if (inst.incoming[k] == fr.prev_block) {
          add_producer(producer_of(inst.operands[k]));
          break;
        }
      }
    } else {
      for (const auto& v : inst.operands) add_producer(producer_of(v));
    }
    current_node_ = out_.nodes_.size();
    out_.nodes_.push_back(node);

    // Control-flow mirroring.
    switch (inst.op) {
      case ir::Opcode::Br:
        fr.prev_block = inst.block;
        break;
      case ir::Opcode::CondBr:
        fr.prev_block = inst.block;  // direction applied in on_branch
        break;
      case ir::Opcode::Call: {
        std::vector<uint64_t> args;
        args.reserve(inst.operands.size());
        for (const auto& v : inst.operands) args.push_back(producer_of(v));
        push_frame(inst.callee, std::move(args));
        break;
      }
      case ir::Opcode::Ret:
        last_ret_node_ = current_node_;
        frames_.pop_back();
        break;
      default:
        break;
    }
  }

  void on_result(ir::InstRef ref, uint64_t /*dyn*/,
                 uint64_t& /*bits*/) override {
    // Commits happen in the frame that owns the destination register: the
    // current frame, except for call results, which commit in the caller
    // right after the callee's frame was popped (and whose producer chain
    // runs through the ret node).
    Frame& fr = frames_.back();
    const auto& inst = module_.functions[ref.func].insts[ref.inst];
    fr.reg_node[ref.inst] =
        inst.op == ir::Opcode::Call ? last_ret_node_ : current_node_;
  }

  void on_branch(ir::InstRef /*ref*/, bool /*taken*/) override {}

  void on_load(ir::InstRef /*ref*/, uint64_t addr, unsigned bytes) override {
    // Append memory producers to the node created by this load's on_exec.
    Node& node = out_.nodes_[current_node_];
    // Producers must stay contiguous per node: loads are the last
    // producer-adding event for their node, so appending is safe.
    assert(node.first_producer + node.num_producers ==
           out_.producer_pool_.size());
    uint64_t last = kNoNode;
    for (unsigned i = 0; i < bytes; ++i) {
      const auto it = mem_writer_.find(addr + i);
      if (it == mem_writer_.end() || it->second == last) continue;
      last = it->second;
      out_.producer_pool_.push_back(last);
      ++node.num_producers;
    }
  }

  void on_store(ir::InstRef /*ref*/, uint64_t addr, unsigned bytes,
                bool /*silent*/) override {
    for (unsigned i = 0; i < bytes; ++i) mem_writer_[addr + i] = current_node_;
  }

  void on_memcpy(ir::InstRef /*ref*/, uint64_t dst, uint64_t src,
                 uint64_t bytes) override {
    for (uint64_t i = 0; i < bytes; ++i) {
      const auto it = mem_writer_.find(src + i);
      if (it != mem_writer_.end()) {
        mem_writer_[dst + i] = it->second;
      } else {
        mem_writer_.erase(dst + i);
      }
    }
  }

  Ddg take() { return std::move(out_); }

 private:
  struct Frame {
    std::vector<uint64_t> reg_node;
    std::vector<uint64_t> arg_node;
    uint32_t prev_block = ir::kNoBlock;
  };

  void push_frame(uint32_t func, std::vector<uint64_t> args) {
    Frame fr;
    fr.reg_node.assign(module_.functions[func].insts.size(), kNoNode);
    fr.arg_node = std::move(args);
    frames_.push_back(std::move(fr));
  }

  const ir::Module& module_;
  Ddg out_;
  std::vector<Frame> frames_;
  std::unordered_map<uint64_t, uint64_t> mem_writer_;
  uint64_t current_node_ = kNoNode;
  uint64_t last_ret_node_ = kNoNode;
};

Ddg Ddg::capture(const ir::Module& module, uint64_t fuel) {
  interp::Interpreter interp(module);
  DdgBuilder builder(module);
  interp::RunOptions options;
  options.fuel = fuel;
  options.hooks = &builder;
  const auto res = interp.run_main(options);
  assert(res.outcome == interp::Outcome::Ok && "golden run must succeed");
  (void)res;
  return builder.take();
}

std::vector<uint64_t> Ddg::producers(uint64_t n) const {
  const Node& node = nodes_[n];
  return {producer_pool_.begin() + node.first_producer,
          producer_pool_.begin() + node.first_producer + node.num_producers};
}

const std::vector<std::vector<uint64_t>>& Ddg::users() const {
  if (!users_built_) {
    users_.assign(nodes_.size(), {});
    for (uint64_t n = 0; n < nodes_.size(); ++n) {
      const Node& node = nodes_[n];
      for (uint32_t k = 0; k < node.num_producers; ++k) {
        users_[producer_pool_[node.first_producer + k]].push_back(n);
      }
    }
    users_built_ = true;
  }
  return users_;
}

size_t Ddg::memory_bytes() const {
  size_t bytes = nodes_.size() * sizeof(Node) +
                 producer_pool_.size() * sizeof(uint64_t);
  if (users_built_) {
    bytes += users_.size() * sizeof(std::vector<uint64_t>) +
             producer_pool_.size() * sizeof(uint64_t);
  }
  return bytes;
}

std::vector<uint64_t> Ddg::nodes_of(ir::InstRef ref) const {
  std::vector<uint64_t> out;
  for (uint64_t n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].inst == ref) out.push_back(n);
  }
  return out;
}

}  // namespace trident::ddg
