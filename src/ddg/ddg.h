// Dynamic data-dependency graph (DDG) capture.
//
// ePVF's crash-propagation model "requires a detailed DDG of the entire
// program's execution, which is extremely time-consuming and resource
// hungry ... ePVF can only be executed on programs with a maximum of a
// million dynamic instructions in practice" (paper §VII-C). This module
// builds that DDG, both to implement the real ePVF crash model
// (baselines/epvf.h) and to let bench/epvf_ddg quantify exactly the cost
// the paper contrasts TRIDENT against.
//
// The graph has one node per executed instruction (result-producing or
// not), with edges to the dynamic producers of its operands. Register
// producers are tracked through a shadow call stack replayed from the
// interpreter's hook stream; memory producers through a byte-granular
// writer map (propagated through memcpy, as in the profiler).
#pragma once

#include <cstdint>
#include <vector>

#include "interp/interpreter.h"
#include "ir/module.h"

namespace trident::ddg {

struct Node {
  ir::InstRef inst;
  uint32_t first_producer = 0;  // index into the producer pool
  uint32_t num_producers = 0;
};

class Ddg {
 public:
  /// Captures the full-execution DDG of `module`'s main function.
  /// Asserts the golden run completes cleanly.
  static Ddg capture(const ir::Module& module,
                     uint64_t fuel = 500'000'000);

  const std::vector<Node>& nodes() const { return nodes_; }
  /// Producers of node `n` (dynamic node ids).
  std::vector<uint64_t> producers(uint64_t n) const;
  size_t num_edges() const { return producer_pool_.size(); }

  /// Forward adjacency (consumer lists), built on first use.
  const std::vector<std::vector<uint64_t>>& users() const;

  /// Total bytes this DDG occupies (nodes + edges + adjacency), the
  /// §VII-C scalability metric.
  size_t memory_bytes() const;

  /// All dynamic node ids of one static instruction.
  std::vector<uint64_t> nodes_of(ir::InstRef ref) const;

 private:
  friend class DdgBuilder;
  std::vector<Node> nodes_;
  std::vector<uint64_t> producer_pool_;
  mutable std::vector<std::vector<uint64_t>> users_;
  mutable bool users_built_ = false;
};

}  // namespace trident::ddg
