// Accelerated FI estimation, after Relyzer (Hari et al., ASPLOS 2012 —
// the paper's §VIII comparison point): exploit fault equivalence by
// stratifying the dynamic-instruction population by static instruction.
// A few injections per static site, combined with execution-count
// weights, estimate the overall SDC probability with far lower variance
// per trial than uniform Monte-Carlo sampling when vulnerability is
// instruction-dependent (it always is). Unlike TRIDENT this still
// requires injections — it sits between plain FI and the model on the
// cost/accuracy spectrum, which bench/fi_acceleration quantifies.
#pragma once

#include <cstdint>
#include <vector>

#include "fi/campaign.h"

namespace trident::fi {

struct StratifiedOptions {
  uint64_t seed = 1234;
  /// Injections per static instruction (stratum).
  uint64_t trials_per_site = 4;
  uint64_t fuel_multiplier = 50;
  /// Concurrency cap; 0 = TRIDENT_THREADS env or hardware_concurrency.
  /// Trials use counter-based streams, so results are thread-invariant.
  uint32_t threads = 0;
};

struct SiteEstimate {
  ir::InstRef site;
  uint64_t exec = 0;    // stratum weight (dynamic occurrences)
  uint64_t trials = 0;
  uint64_t sdc = 0;
  uint64_t crash = 0;
};

struct StratifiedResult {
  std::vector<SiteEstimate> sites;
  uint64_t total_trials = 0;

  /// Execution-weighted overall estimates.
  double sdc_prob() const;
  double crash_prob() const;
  /// Half-width of the ~95% CI from the stratified variance formula
  /// (sum of squared weights times per-stratum binomial variances).
  double sdc_ci95() const;
};

/// Runs trials_per_site injections into every executed result-producing
/// static instruction and combines the strata.
StratifiedResult run_stratified_campaign(const ir::Module& module,
                                         const prof::Profile& profile,
                                         const StratifiedOptions& options);

}  // namespace trident::fi
