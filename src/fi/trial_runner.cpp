#include "fi/trial_runner.h"

#include <algorithm>
#include <cassert>

#include "fi/injector.h"

namespace trident::fi {

namespace {

// Records the dynamic-result index of every occurrence of one static
// instruction during the golden run (the occurrence -> index map that
// lets per-instruction campaigns resume from snapshots).
class OccurrenceIndexRecorder final : public interp::ExecHooks {
 public:
  explicit OccurrenceIndexRecorder(ir::InstRef target) : target_(target) {}

  void on_result(ir::InstRef ref, uint64_t dyn_index,
                 uint64_t& bits) override {
    (void)bits;
    if (ref == target_) indices_.push_back(dyn_index);
  }

  std::vector<uint64_t> take() { return std::move(indices_); }

 private:
  ir::InstRef target_;
  std::vector<uint64_t> indices_;
};

}  // namespace

std::unique_ptr<interp::ExecutionEngine> EngineContext::make(
    const ir::Module& module) const {
  if (kind == interp::EngineKind::Threaded) {
    // Share the campaign's one lowered program; lower privately when the
    // context was built without one (ad-hoc runners).
    return program != nullptr
               ? std::make_unique<interp::ThreadedEngine>(module, program)
               : std::make_unique<interp::ThreadedEngine>(module);
  }
  if (kind == interp::EngineKind::Native) {
    // Share the campaign's one compiled program (the process-wide build
    // cache makes the ad-hoc path a lookup, not a recompile).
    return native != nullptr
               ? std::make_unique<interp::NativeEngine>(module, native)
               : std::make_unique<interp::NativeEngine>(module);
  }
  return std::make_unique<interp::Interpreter>(module);
}

EngineContext make_engine_context(const ir::Module& module,
                                  interp::EngineKind kind) {
  EngineContext ctx;
  ctx.kind = kind;
  if (kind == interp::EngineKind::Threaded) {
    ctx.program = interp::LoweredProgram::lower(module);
  } else if (kind == interp::EngineKind::Native) {
    // Compile once per campaign; workers share the immutable program,
    // and the fallback engine inside each worker reuses its lowering.
    ctx.native = interp::NativeProgram::build(module);
    ctx.program = ctx.native->lowered();
  }
  return ctx;
}

const interp::Snapshot* SnapshotPlan::latest_at_or_before(
    uint64_t dyn_index) const {
  // First snapshot strictly past the index, then step back one.
  const auto it = std::upper_bound(
      snapshots.begin(), snapshots.end(), dyn_index,
      [](uint64_t v, const interp::Snapshot& s) { return v < s.dyn_results; });
  if (it == snapshots.begin()) return nullptr;
  return &*std::prev(it);
}

SnapshotPlan build_snapshot_plan(const ir::Module& module,
                                 uint64_t total_results, uint64_t fuel,
                                 uint32_t entry, uint64_t max_snapshots,
                                 uint64_t bytes_budget,
                                 ir::InstRef occ_target,
                                 const EngineContext& engine) {
  SnapshotPlan plan;
  if (max_snapshots == 0 || total_results == 0) return plan;
  plan.interval = total_results / (max_snapshots + 1) + 1;
  plan.occ_target = occ_target;

  // The recording golden run executes on the campaign's backend too;
  // snapshots are engine-agnostic value types, so the captured set (and
  // the occurrence map) is bit-identical on every backend — the parity
  // suite in tests/engine_test.cpp holds this to account.
  const auto exec = engine.make(module);
  OccurrenceIndexRecorder recorder(occ_target);
  interp::RunOptions options;
  options.fuel = fuel;
  options.snapshot_interval = plan.interval;
  options.snapshots = &plan.snapshots;
  if (occ_target.valid()) options.hooks = &recorder;
  if (entry == ir::kNoFunc) {
    exec->run_main(options);
  } else {
    exec->run(entry, {}, options);
  }
  if (occ_target.valid()) plan.occurrence_dyn_index = recorder.take();
  if (const auto* ne = dynamic_cast<interp::NativeEngine*>(exec.get())) {
    plan.fallback_runs = ne->fallback_runs();
  }

  for (const auto& s : plan.snapshots) plan.bytes += s.bytes();
  // Thin to the byte budget: dropping every other snapshot keeps the
  // grid uniform, merely coarser. Never silently blow the budget — if
  // even one snapshot is too big, run without snapshots.
  while (plan.bytes > bytes_budget && !plan.snapshots.empty()) {
    std::vector<interp::Snapshot> kept;
    kept.reserve(plan.snapshots.size() / 2 + 1);
    for (size_t i = 1; i < plan.snapshots.size(); i += 2) {
      kept.push_back(std::move(plan.snapshots[i]));
    }
    plan.snapshots = std::move(kept);
    plan.interval *= 2;
    plan.bytes = 0;
    for (const auto& s : plan.snapshots) plan.bytes += s.bytes();
  }
  return plan;
}

TrialRunner::TrialRunner(const ir::Module& module,
                         const prof::Profile& profile, uint32_t entry,
                         const SnapshotPlan* snapshots, EngineContext engine)
    : module_(module),
      profile_(profile),
      entry_(entry),
      snapshots_(snapshots),
      engine_(engine.make(module)) {}

Trial TrialRunner::run(const InjectionSite& site, uint64_t fuel) {
  Injector injector(module_, site);
  interp::RunOptions options;
  options.fuel = fuel;
  options.hooks = &injector;

  const interp::Snapshot* snap = nullptr;
  if (snapshots_ != nullptr && site.mode == InjectionSite::Mode::DynIndex) {
    snap = snapshots_->latest_at_or_before(site.dyn_index);
  }
  interp::RunResult res;
  if (snap != nullptr) {
    skipped_insts_ += snap->dyn_insts;
    ++resumed_trials_;
    res = engine_->resume(*snap, options);
  } else if (entry_ == ir::kNoFunc) {
    res = engine_->run_main(options);
  } else {
    res = engine_->run(entry_, {}, options);
  }

  Trial trial;
  trial.target = injector.target();
  trial.bit = injector.bit();
  switch (res.outcome) {
    case interp::Outcome::Ok:
      trial.outcome = res.output == profile_.golden_output
                          ? FIOutcome::Benign
                          : FIOutcome::SDC;
      break;
    case interp::Outcome::Crash:
      trial.outcome = FIOutcome::Crash;
      break;
    case interp::Outcome::Hang:
      trial.outcome = FIOutcome::Hang;
      break;
    case interp::Outcome::Detected:
      trial.outcome = FIOutcome::Detected;
      break;
  }
  return trial;
}

}  // namespace trident::fi
