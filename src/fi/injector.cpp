#include "fi/injector.h"

#include "support/bits.h"

namespace trident::fi {

void Injector::on_result(ir::InstRef ref, uint64_t dyn_index,
                         uint64_t& bits) {
  if (fired_) return;
  if (site_.mode == InjectionSite::Mode::DynIndex) {
    if (dyn_index != site_.dyn_index) return;
  } else {
    if (!(ref == site_.inst)) return;
    if (occurrence_seen_++ != site_.occurrence) return;
  }
  const auto& inst = module_.functions[ref.func].insts[ref.inst];
  unsigned width = inst.type.width();
  if (width == 0) width = 64;
  // Map the 64 bits of entropy to a uniform bit position in [0, width).
  bit_ = static_cast<unsigned>(
      (static_cast<__uint128_t>(site_.bit_entropy) * width) >> 64);
  original_ = bits;
  // Burst model: flip num_bits adjacent bits (wrapping within the
  // register) starting at the chosen position.
  for (uint32_t k = 0; k < site_.num_bits; ++k) {
    bits = support::flip_bit(bits, (bit_ + k) % width, width);
  }
  target_ = ref;
  fired_ = true;
}

}  // namespace trident::fi
