#include "fi/injector.h"

#include <algorithm>

#include "support/bits.h"

namespace trident::fi {

void Injector::on_result(ir::InstRef ref, uint64_t dyn_index,
                         uint64_t& bits) {
  if (fired_) return;
  if (site_.mode == InjectionSite::Mode::DynIndex) {
    if (dyn_index != site_.dyn_index) return;
  } else {
    if (!(ref == site_.inst)) return;
    if (occurrence_seen_++ != site_.occurrence) return;
  }
  const auto& inst = module_.functions[ref.func].insts[ref.inst];
  unsigned width = inst.type.width();
  // Results whose type carries no width (an untyped 64-bit payload, e.g.
  // a pointer-producing op parsed without a type) occupy the full
  // register; the fallback is deliberate and covered by tests, not an
  // accident of flip_bit's masking.
  if (width == 0) width = 64;
  // Map the 64 bits of entropy to a uniform bit position in [0, width).
  bit_ = static_cast<unsigned>(
      (static_cast<__uint128_t>(site_.bit_entropy) * width) >> 64);
  original_ = bits;
  // Burst model: flip num_bits adjacent bits (wrapping within the
  // register) starting at the chosen position. The burst is clamped to
  // the register width: with the unclamped wrap, two flips landing on
  // the same position cancel, making e.g. a 2-bit burst into an i1
  // result a silent no-op that undercounts corruption on narrow values.
  flipped_ = std::min<uint32_t>(site_.num_bits, width);
  for (uint32_t k = 0; k < flipped_; ++k) {
    bits = support::flip_bit(bits, (bit_ + k) % width, width);
  }
  target_ = ref;
  fired_ = true;
}

}  // namespace trident::fi
