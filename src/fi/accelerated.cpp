#include "fi/accelerated.h"

#include <cassert>
#include <cmath>

#include "support/thread_pool.h"

namespace trident::fi {

double StratifiedResult::sdc_prob() const {
  double weighted = 0, total = 0;
  for (const auto& s : sites) {
    if (s.trials == 0) continue;
    weighted += static_cast<double>(s.exec) * s.sdc / s.trials;
    total += static_cast<double>(s.exec);
  }
  return total == 0 ? 0.0 : weighted / total;
}

double StratifiedResult::crash_prob() const {
  double weighted = 0, total = 0;
  for (const auto& s : sites) {
    if (s.trials == 0) continue;
    weighted += static_cast<double>(s.exec) * s.crash / s.trials;
    total += static_cast<double>(s.exec);
  }
  return total == 0 ? 0.0 : weighted / total;
}

double StratifiedResult::sdc_ci95() const {
  double total = 0;
  for (const auto& s : sites) total += static_cast<double>(s.exec);
  if (total == 0) return 0.0;
  double variance = 0;
  for (const auto& s : sites) {
    if (s.trials == 0) continue;
    const double w = static_cast<double>(s.exec) / total;
    const double p = static_cast<double>(s.sdc) / s.trials;
    // Laplace-smoothed binomial variance keeps 0/0-hit strata honest.
    const double p_hat =
        (s.sdc + 1.0) / (s.trials + 2.0);
    (void)p;
    variance += w * w * p_hat * (1.0 - p_hat) / s.trials;
  }
  return 1.96 * std::sqrt(variance);
}

StratifiedResult run_stratified_campaign(const ir::Module& module,
                                         const prof::Profile& profile,
                                         const StratifiedOptions& options) {
  assert(options.trials_per_site > 0);
  const uint64_t fuel =
      profile.total_dynamic * options.fuel_multiplier + 10000;

  // Plan every (stratum, trial) pair up front. Trial t of a site draws
  // from the counter-based stream (seed, pack(site) * K + t), so the
  // plan — and hence the whole estimate — is independent of execution
  // order and thread count.
  StratifiedResult result;
  std::vector<InjectionSite> plan;
  for (uint32_t f = 0; f < module.functions.size(); ++f) {
    const auto& func = module.functions[f];
    for (uint32_t i = 0; i < func.insts.size(); ++i) {
      if (!func.insts[i].has_result()) continue;
      const ir::InstRef ref{f, i};
      const uint64_t exec = profile.exec(ref);
      if (exec == 0) continue;
      result.sites.push_back({ref, exec, 0, 0, 0});
      for (uint64_t t = 0; t < options.trials_per_site; ++t) {
        auto rng = support::Rng::stream(
            options.seed, prof::pack(ref) * options.trials_per_site + t);
        InjectionSite inj;
        inj.mode = InjectionSite::Mode::Occurrence;
        inj.inst = ref;
        inj.occurrence = rng.next_below(exec);
        inj.bit_entropy = rng.next_u64();
        plan.push_back(inj);
      }
    }
  }

  std::vector<Trial> trials(plan.size());
  const uint32_t workers = options.threads == 0
                               ? support::ThreadPool::default_threads()
                               : options.threads;
  support::ThreadPool::global().parallel_for(
      plan.size(),
      [&](uint64_t i) {
        trials[i] = run_one_trial(module, profile, plan[i], fuel, ir::kNoFunc);
      },
      workers);

  for (size_t s = 0; s < result.sites.size(); ++s) {
    auto& site = result.sites[s];
    for (uint64_t t = 0; t < options.trials_per_site; ++t) {
      const auto& trial = trials[s * options.trials_per_site + t];
      ++site.trials;
      site.sdc += trial.outcome == FIOutcome::SDC;
      site.crash += trial.outcome == FIOutcome::Crash;
    }
    result.total_trials += site.trials;
  }
  return result;
}

}  // namespace trident::fi
