#include "fi/campaign.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "support/thread_pool.h"

namespace trident::fi {

const char* fi_outcome_name(FIOutcome o) {
  switch (o) {
    case FIOutcome::Benign: return "benign";
    case FIOutcome::SDC: return "sdc";
    case FIOutcome::Crash: return "crash";
    case FIOutcome::Hang: return "hang";
    case FIOutcome::Detected: return "detected";
  }
  return "?";
}

double CampaignResult::sdc_prob() const {
  return trials.empty() ? 0.0
                        : static_cast<double>(sdc) / trials.size();
}

double CampaignResult::crash_prob() const {
  return trials.empty() ? 0.0
                        : static_cast<double>(crash) / trials.size();
}

double CampaignResult::detected_prob() const {
  return trials.empty() ? 0.0
                        : static_cast<double>(detected) / trials.size();
}

double CampaignResult::sdc_ci95() const {
  if (trials.empty()) return 0.0;
  const double p = sdc_prob();
  return 1.96 * std::sqrt(p * (1.0 - p) / static_cast<double>(trials.size()));
}

Trial run_one_trial(const ir::Module& module, const prof::Profile& profile,
                    const InjectionSite& site, uint64_t fuel,
                    uint32_t entry_func) {
  interp::Interpreter interp(module);
  Injector injector(module, site);
  interp::RunOptions run_options;
  run_options.fuel = fuel;
  run_options.hooks = &injector;
  const auto res = entry_func == ir::kNoFunc
                       ? interp.run_main(run_options)
                       : interp.run(entry_func, {}, run_options);

  Trial trial;
  trial.target = injector.target();
  trial.bit = injector.bit();
  switch (res.outcome) {
    case interp::Outcome::Ok:
      trial.outcome = res.output == profile.golden_output ? FIOutcome::Benign
                                                          : FIOutcome::SDC;
      break;
    case interp::Outcome::Crash:
      trial.outcome = FIOutcome::Crash;
      break;
    case interp::Outcome::Hang:
      trial.outcome = FIOutcome::Hang;
      break;
    case interp::Outcome::Detected:
      trial.outcome = FIOutcome::Detected;
      break;
  }
  return trial;
}

namespace {

void tally(CampaignResult& result, Trial trial) {
  switch (trial.outcome) {
    case FIOutcome::Benign: ++result.benign; break;
    case FIOutcome::SDC: ++result.sdc; break;
    case FIOutcome::Crash: ++result.crash; break;
    case FIOutcome::Hang: ++result.hang; break;
    case FIOutcome::Detected: ++result.detected; break;
  }
  result.trials.push_back(trial);
}

// Runs the pre-planned sites on the shared work-stealing pool. Each
// trial is independent and its result lands at its plan index, so the
// outcome is identical for any thread count or schedule.
CampaignResult run_planned(const ir::Module& module,
                           const prof::Profile& profile,
                           const std::vector<InjectionSite>& plan,
                           const CampaignOptions& options) {
  const uint64_t fuel =
      profile.total_dynamic * options.fuel_multiplier + 10000;
  std::vector<Trial> trials(plan.size());
  const uint32_t workers = options.threads == 0
                               ? support::ThreadPool::default_threads()
                               : options.threads;
  if (workers <= 1) {
    for (size_t i = 0; i < plan.size(); ++i) {
      trials[i] = run_one_trial(module, profile, plan[i], fuel, options.entry);
    }
  } else {
    support::ThreadPool::global().parallel_for(
        plan.size(),
        [&](uint64_t i) {
          trials[i] =
              run_one_trial(module, profile, plan[i], fuel, options.entry);
        },
        workers);
  }
  CampaignResult result;
  result.trials.reserve(trials.size());
  for (const auto& trial : trials) tally(result, trial);
  return result;
}

}  // namespace

CampaignResult run_overall_campaign(const ir::Module& module,
                                    const prof::Profile& profile,
                                    const CampaignOptions& options) {
  assert(profile.total_results > 0);
  // Counter-based planning: trial i's site is a pure function of
  // (seed, i), independent of every other trial.
  std::vector<InjectionSite> plan(options.trials);
  for (uint64_t i = 0; i < plan.size(); ++i) {
    auto rng = support::Rng::stream(options.seed, i);
    auto& site = plan[i];
    site.mode = InjectionSite::Mode::DynIndex;
    site.dyn_index = rng.next_below(profile.total_results);
    site.bit_entropy = rng.next_u64();
    site.num_bits = options.num_bits;
  }
  return run_planned(module, profile, plan, options);
}

CampaignResult run_instruction_campaign(const ir::Module& module,
                                        const prof::Profile& profile,
                                        ir::InstRef target,
                                        const CampaignOptions& options) {
  const uint64_t occurrences = profile.exec(target);
  assert(occurrences > 0 && "target never executes");
  std::vector<InjectionSite> plan(options.trials);
  for (uint64_t i = 0; i < plan.size(); ++i) {
    auto rng = support::Rng::stream(options.seed, i);
    auto& site = plan[i];
    site.mode = InjectionSite::Mode::Occurrence;
    site.inst = target;
    site.occurrence = rng.next_below(occurrences);
    site.bit_entropy = rng.next_u64();
    site.num_bits = options.num_bits;
  }
  return run_planned(module, profile, plan, options);
}

}  // namespace trident::fi
