#include "fi/campaign.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "fi/trial_runner.h"
#include "obs/checkpoint.h"
#include "obs/interrupt.h"
#include "stats/stats.h"
#include "support/thread_pool.h"

namespace trident::fi {

const char* fi_outcome_name(FIOutcome o) {
  switch (o) {
    case FIOutcome::Benign: return "benign";
    case FIOutcome::SDC: return "sdc";
    case FIOutcome::Crash: return "crash";
    case FIOutcome::Hang: return "hang";
    case FIOutcome::Detected: return "detected";
  }
  return "?";
}

double CampaignResult::sdc_prob() const {
  return trials.empty() ? 0.0
                        : static_cast<double>(sdc) / trials.size();
}

double CampaignResult::crash_prob() const {
  return trials.empty() ? 0.0
                        : static_cast<double>(crash) / trials.size();
}

double CampaignResult::detected_prob() const {
  return trials.empty() ? 0.0
                        : static_cast<double>(detected) / trials.size();
}

double CampaignResult::sdc_ci95() const {
  return stats::proportion_ci95(sdc_prob(), trials.size());
}

double CampaignResult::crash_ci95() const {
  return stats::proportion_ci95(crash_prob(), trials.size());
}

uint64_t campaign_fuel(const prof::Profile& profile,
                       uint64_t fuel_multiplier) {
  uint64_t fuel;
  if (fuel_multiplier != 0 &&
      profile.total_dynamic > UINT64_MAX / fuel_multiplier) {
    return UINT64_MAX;  // saturate: a wrapped product would truncate the
                        // budget and misclassify long runs as hangs
  }
  fuel = profile.total_dynamic * fuel_multiplier;
  return fuel > UINT64_MAX - 10000 ? UINT64_MAX : fuel + 10000;
}

Trial run_one_trial(const ir::Module& module, const prof::Profile& profile,
                    const InjectionSite& site, uint64_t fuel,
                    uint32_t entry_func) {
  TrialRunner runner(module, profile, entry_func, nullptr);
  return runner.run(site, fuel);
}

namespace {

// One planned trial, with the hang-escalation retry: a budget overrun at
// the base fuel re-runs once at hang_escalation x fuel to separate
// slow-but-terminating runs (fuel exhaustion) from genuine infinite
// loops. Pure function of (plan slot, fuel policy) — identical on every
// schedule, which resume depends on.
Trial run_classified_trial(TrialRunner& runner, const InjectionSite& site,
                           uint64_t fuel, const CampaignOptions& options) {
  Trial trial = runner.run(site, fuel);
  if (trial.outcome != FIOutcome::Hang || options.hang_escalation == 0 ||
      fuel == UINT64_MAX) {
    return trial;
  }
  const uint64_t escalated = fuel > UINT64_MAX / options.hang_escalation
                                 ? UINT64_MAX
                                 : fuel * options.hang_escalation;
  Trial retry = runner.run(site, escalated);
  if (retry.outcome == FIOutcome::Hang) return trial;  // genuine hang
  retry.fuel_exhausted = true;
  return retry;
}

void tally(CampaignResult& result, Trial trial) {
  switch (trial.outcome) {
    case FIOutcome::Benign: ++result.benign; break;
    case FIOutcome::SDC: ++result.sdc; break;
    case FIOutcome::Crash: ++result.crash; break;
    case FIOutcome::Hang: ++result.hang; break;
    case FIOutcome::Detected: ++result.detected; break;
  }
  if (trial.fuel_exhausted) ++result.fuel_exhausted;
  result.trials.push_back(trial);
}

obs::TrialRecord to_record(uint64_t slot, const Trial& trial) {
  obs::TrialRecord record;
  record.index = slot;
  record.outcome = static_cast<uint32_t>(trial.outcome);
  record.target_func = trial.target.func;
  record.target_inst = trial.target.inst;
  record.bit = trial.bit;
  record.fuel_exhausted = trial.fuel_exhausted;
  return record;
}

Trial from_record(const obs::TrialRecord& record) {
  Trial trial;
  trial.outcome = static_cast<FIOutcome>(record.outcome);
  trial.target = {record.target_func, record.target_inst};
  trial.bit = record.bit;
  trial.fuel_exhausted = record.fuel_exhausted;
  return trial;
}

// Trial-engine observability, aggregated over the campaign's workers.
struct EngineStats {
  uint64_t snapshot_count = 0;
  uint64_t snapshot_bytes = 0;
  uint64_t skipped_insts = 0;
  uint64_t resumed_trials = 0;
  uint64_t memcache_hits = 0;
  uint64_t memcache_lookups = 0;
  uint64_t native_fallbacks = 0;
};

void export_metrics(obs::Registry& registry, const CampaignResult& result,
                    uint64_t ran, double seconds, const EngineStats& engine,
                    const EngineContext& backend) {
  registry.add("fi.trials.total", result.total());
  registry.add("fi.trials.run", ran);
  registry.add("fi.trials.resumed", result.resumed);
  registry.add("fi.outcome.sdc", result.sdc);
  registry.add("fi.outcome.benign", result.benign);
  registry.add("fi.outcome.crash", result.crash);
  registry.add("fi.outcome.hang", result.hang);
  registry.add("fi.outcome.detected", result.detected);
  registry.add("fi.fuel_exhausted", result.fuel_exhausted);
  registry.add("fi.snapshot_count", engine.snapshot_count);
  registry.add("fi.snapshot_bytes", engine.snapshot_bytes);
  registry.add("fi.snapshot_skipped_insts", engine.skipped_insts);
  registry.add("fi.snapshot_resumed_trials", engine.resumed_trials);
  registry.add("interp.memcache.hits", engine.memcache_hits);
  registry.add("interp.memcache.lookups", engine.memcache_lookups);
  // Backend counters come from the campaign's single shared lowering
  // and compilation, not per worker, so they are invariant under the
  // thread count. The native backend shares the threaded lowering (its
  // fallback engine and resume mapping run on it), so lowered_* report
  // it for both.
  const bool threaded = backend.kind == interp::EngineKind::Threaded;
  const bool native = backend.kind == interp::EngineKind::Native;
  registry.add("engine.threaded", threaded ? 1 : 0);
  registry.add("engine.lowered_functions",
               backend.program != nullptr ? backend.program->funcs.size() : 0);
  registry.add("engine.lowered_insts",
               backend.program != nullptr ? backend.program->lowered_insts : 0);
  registry.add("engine.superinstructions",
               backend.program != nullptr ? backend.program->superinstructions
                                          : 0);
  registry.add("engine.native", native ? 1 : 0);
  const interp::NativeStats native_stats =
      native ? backend.native->stats() : interp::NativeStats{};
  registry.add("engine.native.functions", native_stats.functions);
  registry.add("engine.native.code_bytes", native_stats.code_bytes);
  registry.add("engine.native.compile_ms",
               static_cast<uint64_t>(std::llround(native_stats.compile_ms)));
  registry.add("engine.native.fallbacks",
               native ? engine.native_fallbacks : 0);
  registry.add("engine.native.cache_hits", native_stats.cache_hits);
  const uint64_t lookups = registry.counter("interp.memcache.lookups");
  if (lookups > 0) {
    registry.set("interp.memcache.hit_rate",
                 static_cast<double>(registry.counter("interp.memcache.hits")) /
                     static_cast<double>(lookups));
  }
  registry.set("fi.campaign.seconds",
               registry.gauge("fi.campaign.seconds") + seconds);
  if (seconds > 0) {
    registry.set("fi.trials_per_sec",
                 static_cast<double>(ran) / seconds);
  }
}

// Runs the pre-planned sites on the shared work-stealing pool, resuming
// from `header`'s checkpoint log when one is configured. Each trial is
// independent and its result lands at its plan index, so the outcome is
// identical for any thread count, schedule, or interruption point.
CampaignResult run_planned(const ir::Module& module,
                           const prof::Profile& profile,
                           const std::vector<InjectionSite>& plan,
                           const CampaignOptions& options,
                           const obs::CheckpointHeader& header) {
  const double started = obs::now_seconds();
  const uint64_t fuel = campaign_fuel(profile, options.fuel_multiplier);
  // One lowering per campaign, shared (immutable) by every worker's
  // engine — lowering cost and the engine.* metrics are independent of
  // the thread count.
  const EngineContext backend = make_engine_context(module, options.engine);
  std::vector<Trial> trials(plan.size());
  std::vector<char> have(plan.size(), 0);

  std::unique_ptr<obs::CheckpointLog> log;
  uint64_t resumed = 0;
  if (!options.checkpoint_path.empty()) {
    std::string error;
    log = obs::CheckpointLog::open(options.checkpoint_path, header, &error);
    if (log == nullptr) throw std::runtime_error(error);
    for (const auto& [slot, record] : log->resumed()) {
      trials[slot] = from_record(record);
      have[slot] = 1;
      ++resumed;
    }
  }

  std::vector<uint64_t> todo;
  todo.reserve(plan.size() - resumed);
  for (uint64_t i = 0; i < plan.size(); ++i) {
    if (!have[i]) todo.push_back(i);
  }

  // Snapshot-and-resume engine: one instrumented golden run captures the
  // shared snapshot set. Skipped when snapshots are disabled or the
  // checkpoint log already covers every slot.
  EngineStats engine;
  SnapshotPlan snap_plan;
  if (options.max_snapshots > 0 && !todo.empty()) {
    const ir::InstRef occ_target =
        header.kind == "instruction"
            ? ir::InstRef{header.target_func, header.target_inst}
            : ir::InstRef{};
    snap_plan = build_snapshot_plan(module, profile.total_results, fuel,
                                    options.entry, options.max_snapshots,
                                    options.snapshot_bytes_budget, occ_target,
                                    backend);
    engine.snapshot_count = snap_plan.snapshots.size();
    engine.snapshot_bytes = snap_plan.bytes;
  }

  // Rewrite occurrence sites to their equivalent dynamic-result index
  // (same instruction hit, same flipped bit) so per-instruction trials
  // can resume from snapshots too. Out-of-range occurrences (profile
  // disagreeing with the golden run) stay in occurrence mode and simply
  // run from scratch.
  const std::vector<InjectionSite>* sites = &plan;
  std::vector<InjectionSite> converted;
  if (!snap_plan.snapshots.empty() && snap_plan.occ_target.valid()) {
    converted = plan;
    for (auto& site : converted) {
      if (site.mode == InjectionSite::Mode::Occurrence &&
          site.inst == snap_plan.occ_target &&
          site.occurrence < snap_plan.occurrence_dyn_index.size()) {
        site.mode = InjectionSite::Mode::DynIndex;
        site.dyn_index = snap_plan.occurrence_dyn_index[site.occurrence];
      }
    }
    sites = &converted;
  }

  // Per-worker interpreter reuse: runners are checked out per trial and
  // returned, so each worker amortizes interpreter construction (global
  // materialization) and keeps its memory-cache state warm across
  // trials. The pool mutex is negligible next to a trial's run time.
  const SnapshotPlan* shared_plan =
      snap_plan.snapshots.empty() ? nullptr : &snap_plan;
  std::mutex runners_mutex;
  std::vector<std::unique_ptr<TrialRunner>> runners;
  std::vector<TrialRunner*> idle_runners;
  const auto acquire_runner = [&]() -> TrialRunner* {
    std::lock_guard<std::mutex> lock(runners_mutex);
    if (!idle_runners.empty()) {
      TrialRunner* runner = idle_runners.back();
      idle_runners.pop_back();
      return runner;
    }
    runners.push_back(std::make_unique<TrialRunner>(module, profile,
                                                    options.entry,
                                                    shared_plan, backend));
    return runners.back().get();
  };
  const auto release_runner = [&](TrialRunner* runner) {
    std::lock_guard<std::mutex> lock(runners_mutex);
    idle_runners.push_back(runner);
  };

  obs::ProgressLine progress(options.progress, "fi");
  std::atomic<uint64_t> done{resumed};
  std::atomic<uint64_t> ran{0};
  std::atomic<bool> interrupted{false};
  progress.update(resumed, plan.size());
  const auto run_slot = [&](uint64_t slot) {
    // Cooperative interrupt: skip remaining slots instead of starting
    // new trials. Everything already finished is in the checkpoint log,
    // so a re-run resumes exactly here.
    if (obs::interrupt_requested()) {
      interrupted.store(true, std::memory_order_relaxed);
      return;
    }
    TrialRunner* runner = acquire_runner();
    const Trial trial =
        run_classified_trial(*runner, (*sites)[slot], fuel, options);
    release_runner(runner);
    trials[slot] = trial;
    have[slot] = 1;
    if (log) log->append(to_record(slot, trial));
    ran.fetch_add(1, std::memory_order_relaxed);
    progress.update(done.fetch_add(1, std::memory_order_relaxed) + 1,
                    plan.size());
  };

  const uint32_t workers = options.threads == 0
                               ? support::ThreadPool::default_threads()
                               : options.threads;
  if (workers <= 1) {
    for (const uint64_t slot : todo) run_slot(slot);
  } else {
    support::ThreadPool::global().parallel_for(
        todo.size(), [&](uint64_t i) { run_slot(todo[i]); }, workers);
  }
  progress.finish(done.load(), plan.size());

  for (const auto& runner : runners) {
    engine.skipped_insts += runner->skipped_insts();
    engine.resumed_trials += runner->resumed_trials();
    engine.memcache_hits += runner->engine().memory().cache_hits();
    engine.memcache_lookups += runner->engine().memory().cache_lookups();
    if (const auto* ne =
            dynamic_cast<const interp::NativeEngine*>(&runner->engine())) {
      engine.native_fallbacks += ne->fallback_runs();
    }
  }
  engine.native_fallbacks += snap_plan.fallback_runs;

  CampaignResult result;
  result.resumed = resumed;
  result.interrupted = interrupted.load();
  result.trials.reserve(trials.size());
  // Tally completed slots only, in slot order: on an interrupted run the
  // skipped slots hold default-constructed trials that must not pollute
  // the probabilities (and slot order keeps the trial list identical to
  // an uninterrupted run's prefix restricted to completed slots).
  for (uint64_t i = 0; i < trials.size(); ++i) {
    if (have[i]) tally(result, trials[i]);
  }
  if (options.metrics != nullptr) {
    export_metrics(*options.metrics, result, ran.load(),
                   obs::now_seconds() - started, engine, backend);
  }
  return result;
}

obs::CheckpointHeader make_header(const CampaignOptions& options,
                                  const char* kind, uint64_t population,
                                  ir::InstRef target = {}) {
  obs::CheckpointHeader header;
  header.kind = kind;
  header.seed = options.seed;
  header.trials = options.trials;
  header.fuel_multiplier = options.fuel_multiplier;
  header.hang_escalation = options.hang_escalation;
  header.population = population;
  header.num_bits = options.num_bits;
  header.entry = options.entry;
  header.target_func = target.func;
  header.target_inst = target.inst;
  return header;
}

}  // namespace

CampaignResult run_overall_campaign(const ir::Module& module,
                                    const prof::Profile& profile,
                                    const CampaignOptions& options) {
  assert(profile.total_results > 0);
  // Counter-based planning: trial i's site is a pure function of
  // (seed, i), independent of every other trial.
  std::vector<InjectionSite> plan(options.trials);
  for (uint64_t i = 0; i < plan.size(); ++i) {
    auto rng = support::Rng::stream(options.seed, i);
    auto& site = plan[i];
    site.mode = InjectionSite::Mode::DynIndex;
    site.dyn_index = rng.next_below(profile.total_results);
    site.bit_entropy = rng.next_u64();
    site.num_bits = options.num_bits;
  }
  return run_planned(module, profile, plan, options,
                     make_header(options, "overall", profile.total_results));
}

CampaignResult run_instruction_campaign(const ir::Module& module,
                                        const prof::Profile& profile,
                                        ir::InstRef target,
                                        const CampaignOptions& options) {
  const uint64_t occurrences = profile.exec(target);
  assert(occurrences > 0 && "target never executes");
  std::vector<InjectionSite> plan(options.trials);
  for (uint64_t i = 0; i < plan.size(); ++i) {
    auto rng = support::Rng::stream(options.seed, i);
    auto& site = plan[i];
    site.mode = InjectionSite::Mode::Occurrence;
    site.inst = target;
    site.occurrence = rng.next_below(occurrences);
    site.bit_entropy = rng.next_u64();
    site.num_bits = options.num_bits;
  }
  return run_planned(module, profile, plan, options,
                     make_header(options, "instruction", occurrences, target));
}

}  // namespace trident::fi
