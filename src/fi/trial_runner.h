// Snapshot-and-resume trial execution engine for FI campaigns.
//
// A campaign's trials share one immutable SnapshotPlan: before the trial
// loop, one instrumented golden run captures interpreter snapshots every
// `interval` dynamic results (interval sized from the campaign's
// snapshot budget). Each trial then restores the latest snapshot at or
// before its injection's dynamic-result index and interprets only the
// suffix, instead of re-running the fault-free prefix from instruction
// zero — by construction everything before the injection site is
// identical to the golden run, so the trial outcome is bit-identical
// with snapshots on or off (fi/§V ground-truth campaigns run thousands
// of such trials; this is the single biggest CPU sink in the repo).
//
// TrialRunner is the per-worker execution context: it owns a reusable
// ExecutionEngine (construction materializes all globals —
// reconstructing per trial paid that twice per trial) of the campaign's
// selected backend (CampaignOptions::engine) and tallies how much
// executed work the snapshots skipped, for the run-metrics manifest.
// Trials are bit-identical on every backend; see docs/ENGINE.md.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fi/campaign.h"
#include "interp/engine.h"
#include "interp/interpreter.h"
#include "interp/native.h"
#include "interp/threaded.h"

namespace trident::fi {

/// Which ExecutionEngine a campaign's runners execute trials on, plus
/// the module's pre-lowered program when the threaded backend is
/// selected and the compiled program when the native backend is. The
/// campaign lowers/compiles once and shares the immutable program across
/// all workers, so lowering and host-compile cost (and the engine.*
/// metrics derived from them) are independent of the thread count.
struct EngineContext {
  interp::EngineKind kind = interp::EngineKind::Interp;
  std::shared_ptr<const interp::LoweredProgram> program;
  std::shared_ptr<const interp::NativeProgram> native;

  /// Fresh engine over `module` (which must be the module the context
  /// was made for).
  std::unique_ptr<interp::ExecutionEngine> make(
      const ir::Module& module) const;
};

/// Lowers the module when `kind` needs it; Interp contexts carry no
/// program.
EngineContext make_engine_context(const ir::Module& module,
                                  interp::EngineKind kind);

/// The campaign-wide snapshot set: golden-run snapshots ascending by
/// dyn_results, plus the occurrence -> dynamic-result-index map that
/// lets per-instruction campaigns use them too. Immutable once built;
/// shared read-only across worker threads.
struct SnapshotPlan {
  std::vector<interp::Snapshot> snapshots;
  uint64_t interval = 0;  // dynamic results between captures
  uint64_t bytes = 0;     // retained footprint (sum of Snapshot::bytes)
  // Native-engine fallback runs taken while recording (snapshot capture
  // always needs the threaded fallback); folded into the campaign's
  // engine.native.fallbacks counter.
  uint64_t fallback_runs = 0;

  /// Occurrence campaigns inject into the k-th dynamic occurrence of one
  /// static instruction; the injector counts occurrences from run start,
  /// which a resumed run would miss. The golden run therefore records
  /// the dynamic-result index of every occurrence of `occ_target`, and
  /// the campaign rewrites Occurrence sites to equivalent DynIndex sites
  /// (same instruction, same flipped bit) before the trial loop.
  ir::InstRef occ_target;
  std::vector<uint64_t> occurrence_dyn_index;

  /// Latest snapshot with dyn_results <= dyn_index; nullptr when none
  /// (the trial runs from scratch).
  const interp::Snapshot* latest_at_or_before(uint64_t dyn_index) const;
};

/// Builds the snapshot plan with one instrumented golden run of `entry`
/// (kNoFunc = main). The capture interval targets at most max_snapshots
/// snapshots over `total_results` injection sites, and the captured set
/// is thinned (every other snapshot dropped, keeping the grid uniform)
/// until it fits bytes_budget. max_snapshots == 0 disables snapshots
/// entirely (empty plan).
SnapshotPlan build_snapshot_plan(const ir::Module& module,
                                 uint64_t total_results, uint64_t fuel,
                                 uint32_t entry, uint64_t max_snapshots,
                                 uint64_t bytes_budget,
                                 ir::InstRef occ_target = {},
                                 const EngineContext& engine = {});

/// Per-worker trial execution context. Not thread-safe; create one per
/// worker and reuse it across that worker's trials.
class TrialRunner {
 public:
  /// `snapshots` may be nullptr (every trial runs from scratch) and must
  /// outlive the runner. `engine` selects the execution backend; trials
  /// are bit-identical on every backend (docs/ENGINE.md).
  TrialRunner(const ir::Module& module, const prof::Profile& profile,
              uint32_t entry, const SnapshotPlan* snapshots,
              EngineContext engine = {});

  /// Runs one injection trial under `fuel` and classifies it against the
  /// golden output. DynIndex sites resume from the snapshot plan;
  /// Occurrence sites always run from scratch (campaigns rewrite them to
  /// DynIndex sites when a plan is available).
  Trial run(const InjectionSite& site, uint64_t fuel);

  /// Golden-run dynamic instructions skipped via snapshot resume,
  /// accumulated across this runner's trials.
  uint64_t skipped_insts() const { return skipped_insts_; }
  /// Trials that resumed from a snapshot (vs. ran from scratch).
  uint64_t resumed_trials() const { return resumed_trials_; }

  const interp::ExecutionEngine& engine() const { return *engine_; }

 private:
  const ir::Module& module_;
  const prof::Profile& profile_;
  uint32_t entry_;
  const SnapshotPlan* snapshots_;
  std::unique_ptr<interp::ExecutionEngine> engine_;
  uint64_t skipped_insts_ = 0;
  uint64_t resumed_trials_ = 0;
};

}  // namespace trident::fi
