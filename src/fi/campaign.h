// Statistical fault-injection campaigns (the paper's ground truth).
//
// A campaign runs N single-fault trials, classifies each run against the
// golden output (SDC / Benign / Crash / Hang / Detected), and reports
// probabilities with 95% confidence intervals. SDC probability is defined
// conditional on fault activation (§II-B), which the injection mechanism
// enforces by flipping destination registers of executed instructions.
//
// Long campaigns are crash-safe: with CampaignOptions::checkpoint_path
// set, completed trial slots are appended to a versioned JSONL log as
// workers finish, and a restarted campaign re-derives its plan from the
// (seed, i) counter-based RNG streams and runs only the missing slots.
// The resumed CampaignResult is bit-identical to an uninterrupted run at
// any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fi/injector.h"
#include "obs/metrics.h"
#include "profiler/profile.h"
#include "support/rng.h"

namespace trident::fi {

enum class FIOutcome : uint8_t { Benign, SDC, Crash, Hang, Detected };

const char* fi_outcome_name(FIOutcome o);

struct Trial {
  FIOutcome outcome = FIOutcome::Benign;
  ir::InstRef target;  // static instruction the fault landed on
  unsigned bit = 0;
  // The run exceeded the base fuel budget but completed within the
  // escalated one: a slow-but-terminating run the budget alone would
  // have misclassified as Hang. `outcome` holds the completed
  // classification; this flag keeps the budget's effect observable.
  bool fuel_exhausted = false;
};

struct CampaignResult {
  std::vector<Trial> trials;
  uint64_t sdc = 0, benign = 0, crash = 0, hang = 0, detected = 0;
  /// Trials with Trial::fuel_exhausted set (counted in their completed
  /// outcome above, so the five outcome tallies still sum to total()).
  uint64_t fuel_exhausted = 0;
  /// Trials restored from the checkpoint log instead of being re-run.
  uint64_t resumed = 0;
  /// True when obs::interrupt_requested() preempted the campaign: the
  /// remaining slots were skipped (every finished trial is already in
  /// the checkpoint log) and `trials` holds only the completed ones, so
  /// the probabilities below are still over completed trials only. A
  /// re-run with the same checkpoint path resumes where this left off.
  bool interrupted = false;

  uint64_t total() const { return trials.size(); }
  double sdc_prob() const;
  double crash_prob() const;
  double detected_prob() const;
  /// Half-widths of the 95% Wilson score intervals (nonzero even when a
  /// campaign observes zero events — see stats::proportion_wilson_ci95).
  double sdc_ci95() const;
  double crash_ci95() const;
};

struct CampaignOptions {
  uint64_t seed = 1234;
  uint64_t trials = 3000;
  /// Hang budget, as a multiple of the golden dynamic instruction count.
  /// The product saturates instead of wrapping, so absurd multipliers
  /// degrade to "effectively unlimited", never to a tiny budget.
  uint64_t fuel_multiplier = 50;
  /// A trial that hangs at the base budget is re-run once at
  /// hang_escalation x the budget: if it then completes it is recorded
  /// with its true outcome and Trial::fuel_exhausted set; only runs that
  /// exhaust the escalated budget too are classified Hang. 0 disables
  /// the retry (every budget overrun is a Hang, the old behaviour).
  uint64_t hang_escalation = 8;
  /// Bits flipped per injection (1 = the paper's model; >1 = adjacent
  /// burst, for the multi-bit comparison of Sangchoolie et al.).
  uint32_t num_bits = 1;
  /// Concurrency cap for the trial loop; 0 = TRIDENT_THREADS env var or
  /// hardware_concurrency. Trial i draws its injection site from the
  /// counter-based stream Rng::stream(seed, i) and writes its outcome to
  /// slot i, so campaigns are bit-identical for any thread count (the
  /// paper notes both FI and TRIDENT parallelize; this keeps campaigns
  /// wall-clock friendly without changing the statistics).
  uint32_t threads = 0;
  /// Entry function; kNoFunc means "main".
  uint32_t entry = ir::kNoFunc;
  /// Checkpoint log path; empty = no checkpointing. A mismatched or
  /// corrupt log makes the campaign throw std::runtime_error with a
  /// clear message rather than silently mixing incompatible trials.
  std::string checkpoint_path;
  /// Snapshot-and-resume trial execution (docs/MODEL.md, "Trial
  /// execution engine"): before the trial loop the campaign replays one
  /// golden run that captures interpreter snapshots, and every trial
  /// resumes from the latest snapshot at or before its injection site
  /// instead of re-interpreting the fault-free prefix. Results are
  /// bit-identical with snapshots on or off, at any thread count, and
  /// compose with checkpoint resume. At most this many snapshots are
  /// kept (the capture interval is sized accordingly); 0 disables.
  uint64_t max_snapshots = 64;
  /// Memory budget for the retained snapshot set: the set is thinned
  /// (every other snapshot dropped, doubling the interval) until it
  /// fits. The retained footprint is reported as fi.snapshot_bytes.
  uint64_t snapshot_bytes_budget = 256ull << 20;
  /// Execution backend the trials (and the snapshot-recording golden
  /// run) execute on: the reference interpreter or the pre-lowered
  /// direct-threaded engine (docs/ENGINE.md). Campaign results —
  /// golden comparison, fault outcomes, checkpoints, snapshot plans —
  /// are bit-identical across backends, so the engine is a pure
  /// performance knob and is deliberately NOT recorded in checkpoint
  /// headers: a campaign may be checkpointed under one backend and
  /// resumed under the other.
  interp::EngineKind engine = interp::EngineKind::Interp;
  /// Optional run-metrics sink: outcome tallies, trials/sec, resumed
  /// and fuel-exhausted counts land under "fi.*" when set, plus the
  /// trial-engine counters (fi.snapshot_count, fi.snapshot_bytes,
  /// fi.snapshot_skipped_insts, fi.snapshot_resumed_trials), the
  /// interpreter memory-cache hit rate (interp.memcache.*), and the
  /// execution-backend family (engine.*: engine.threaded,
  /// engine.lowered_functions, engine.lowered_insts,
  /// engine.superinstructions).
  obs::Registry* metrics = nullptr;
  /// Live progress line on stderr (interactive runs).
  bool progress = false;
};

/// Overall campaign: each trial flips one bit in one uniformly-sampled
/// dynamic (result-producing) instruction. `profile` supplies the golden
/// output and the dynamic-instruction population size.
CampaignResult run_overall_campaign(const ir::Module& module,
                                    const prof::Profile& profile,
                                    const CampaignOptions& options);

/// Per-instruction campaign: every trial targets a uniformly-sampled
/// dynamic occurrence of `target`. Requires exec(target) > 0.
CampaignResult run_instruction_campaign(const ir::Module& module,
                                        const prof::Profile& profile,
                                        ir::InstRef target,
                                        const CampaignOptions& options);

/// Runs a single injection trial and classifies it.
Trial run_one_trial(const ir::Module& module, const prof::Profile& profile,
                    const InjectionSite& site, uint64_t fuel,
                    uint32_t entry_func);

/// Base fuel budget of a campaign over `profile`:
/// total_dynamic * fuel_multiplier + 10000, saturating at UINT64_MAX.
uint64_t campaign_fuel(const prof::Profile& profile,
                       uint64_t fuel_multiplier);

}  // namespace trident::fi
