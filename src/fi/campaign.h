// Statistical fault-injection campaigns (the paper's ground truth).
//
// A campaign runs N single-fault trials, classifies each run against the
// golden output (SDC / Benign / Crash / Hang / Detected), and reports
// probabilities with 95% confidence intervals. SDC probability is defined
// conditional on fault activation (§II-B), which the injection mechanism
// enforces by flipping destination registers of executed instructions.
#pragma once

#include <cstdint>
#include <vector>

#include "fi/injector.h"
#include "profiler/profile.h"
#include "support/rng.h"

namespace trident::fi {

enum class FIOutcome : uint8_t { Benign, SDC, Crash, Hang, Detected };

const char* fi_outcome_name(FIOutcome o);

struct Trial {
  FIOutcome outcome = FIOutcome::Benign;
  ir::InstRef target;  // static instruction the fault landed on
  unsigned bit = 0;
};

struct CampaignResult {
  std::vector<Trial> trials;
  uint64_t sdc = 0, benign = 0, crash = 0, hang = 0, detected = 0;

  uint64_t total() const { return trials.size(); }
  double sdc_prob() const;
  double crash_prob() const;
  double detected_prob() const;
  /// Half-width of the 95% confidence interval on sdc_prob().
  double sdc_ci95() const;
};

struct CampaignOptions {
  uint64_t seed = 1234;
  uint64_t trials = 3000;
  /// Hang budget, as a multiple of the golden dynamic instruction count.
  uint64_t fuel_multiplier = 50;
  /// Bits flipped per injection (1 = the paper's model; >1 = adjacent
  /// burst, for the multi-bit comparison of Sangchoolie et al.).
  uint32_t num_bits = 1;
  /// Concurrency cap for the trial loop; 0 = TRIDENT_THREADS env var or
  /// hardware_concurrency. Trial i draws its injection site from the
  /// counter-based stream Rng::stream(seed, i) and writes its outcome to
  /// slot i, so campaigns are bit-identical for any thread count (the
  /// paper notes both FI and TRIDENT parallelize; this keeps campaigns
  /// wall-clock friendly without changing the statistics).
  uint32_t threads = 0;
  /// Entry function; kNoFunc means "main".
  uint32_t entry = ir::kNoFunc;
};

/// Overall campaign: each trial flips one bit in one uniformly-sampled
/// dynamic (result-producing) instruction. `profile` supplies the golden
/// output and the dynamic-instruction population size.
CampaignResult run_overall_campaign(const ir::Module& module,
                                    const prof::Profile& profile,
                                    const CampaignOptions& options);

/// Per-instruction campaign: every trial targets a uniformly-sampled
/// dynamic occurrence of `target`. Requires exec(target) > 0.
CampaignResult run_instruction_campaign(const ir::Module& module,
                                        const prof::Profile& profile,
                                        ir::InstRef target,
                                        const CampaignOptions& options);

/// Runs a single injection trial and classifies it.
Trial run_one_trial(const ir::Module& module, const prof::Profile& profile,
                    const InjectionSite& site, uint64_t fuel,
                    uint32_t entry_func);

}  // namespace trident::fi
