// Single-bit-flip fault injector (the paper's FI baseline, an LLFI
// analogue): flips one uniformly-chosen bit in the destination register
// of one dynamic instruction per run, per the fault model of §II-A.
#pragma once

#include <cstdint>

#include "interp/interpreter.h"

namespace trident::fi {

/// Where to inject: either the k-th result-producing dynamic instruction
/// of the whole run (overall campaigns), or the k-th dynamic occurrence
/// of one specific static instruction (per-instruction campaigns).
struct InjectionSite {
  enum class Mode : uint8_t { DynIndex, Occurrence };
  Mode mode = Mode::DynIndex;
  uint64_t dyn_index = 0;     // Mode::DynIndex
  ir::InstRef inst;           // Mode::Occurrence
  uint64_t occurrence = 0;    // Mode::Occurrence (0-based)
  uint64_t bit_entropy = 0;   // uniform bit choice resolved against width
  // Number of bits to flip (default 1, the de-facto soft-error model the
  // paper uses; >1 supports the multi-bit studies it cites, flipping
  // `num_bits` adjacent bits starting at the chosen position, the common
  // burst model).
  uint32_t num_bits = 1;
};

class Injector final : public interp::ExecHooks {
 public:
  explicit Injector(const ir::Module& module, InjectionSite site)
      : module_(module), site_(site) {}

  void on_result(ir::InstRef ref, uint64_t dyn_index,
                 uint64_t& bits) override;

  /// The injector only perturbs destination registers; advertising that
  /// lets the threaded engine skip materializing the other callbacks'
  /// arguments during trials (see ExecHooks::interest).
  uint32_t interest() const override { return kResult; }

  /// Sparse-result promise for the native backend: a DynIndex site
  /// touches exactly one dynamic-result index, so compiled trials arm a
  /// single check. Occurrence sites count occurrences from run start and
  /// promise nothing (the native engine falls back; campaigns rewrite
  /// them to DynIndex sites before the trial loop when a snapshot plan
  /// exists).
  int64_t result_watch() const override {
    return site_.mode == InjectionSite::Mode::DynIndex
               ? static_cast<int64_t>(site_.dyn_index)
               : -1;
  }

  bool fired() const { return fired_; }
  ir::InstRef target() const { return target_; }
  unsigned bit() const { return bit_; }
  /// Bits actually flipped: num_bits clamped to the register width (a
  /// burst wider than the register flips each of its bits once).
  uint32_t bits_flipped() const { return flipped_; }
  uint64_t original_bits() const { return original_; }

 private:
  const ir::Module& module_;
  InjectionSite site_;
  uint64_t occurrence_seen_ = 0;
  bool fired_ = false;
  ir::InstRef target_;
  unsigned bit_ = 0;
  uint32_t flipped_ = 0;
  uint64_t original_ = 0;
};

}  // namespace trident::fi
