#include "profiler/profiler.h"

#include <algorithm>
#include <cassert>

namespace trident::prof {

Profiler::Profiler(const ir::Module& module, uint64_t seed,
                   uint32_t max_samples)
    : module_(module), rng_(seed), max_samples_(max_samples) {
  profile_.funcs.resize(module.functions.size());
  sample_seen_.resize(module.functions.size());
  for (uint32_t f = 0; f < module.functions.size(); ++f) {
    const auto n = module.functions[f].insts.size();
    profile_.funcs[f].exec.assign(n, 0);
    profile_.funcs[f].silent.assign(n, 0);
    profile_.funcs[f].branch.assign(n, {0, 0});
    profile_.funcs[f].operand_samples.resize(n);
    sample_seen_[f].assign(n, 0);
  }
}

bool Profiler::samples_operands(ir::Opcode op) {
  using ir::Opcode;
  switch (op) {
    // Opcodes whose fs tuple depends on profiled operand values
    // (comparisons, logic ops, shifts: masking; loads/stores: address
    // crash model; divisions: crash model).
    case Opcode::ICmp:
    case Opcode::FCmp:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr:
    case Opcode::Load:
    case Opcode::Store:
    case Opcode::Memcpy:
    case Opcode::SDiv:
    case Opcode::UDiv:
    case Opcode::SRem:
    case Opcode::URem:
    case Opcode::Select:
    // Float arithmetic absorbs upsets below the result's ulp (a small
    // operand added into a large accumulator), which the tuple model
    // evaluates exactly from sampled operands.
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv:
      return true;
    default:
      return false;
  }
}

void Profiler::on_result(ir::InstRef, uint64_t, uint64_t&) {}

void Profiler::on_exec(ir::InstRef ref, std::span<const uint64_t> operands) {
  auto& fp = profile_.funcs[ref.func];
  ++fp.exec[ref.inst];
  const auto& inst = module_.functions[ref.func].insts[ref.inst];
  if (!samples_operands(inst.op)) return;

  // Reservoir sampling of operand vectors: keeps an unbiased sample of
  // the instruction's runtime operand values across the whole run.
  auto& seen = sample_seen_[ref.func][ref.inst];
  auto& samples = fp.operand_samples[ref.inst];
  ++seen;
  if (samples.size() < max_samples_) {
    samples.emplace_back(operands.begin(), operands.end());
  } else {
    const uint64_t slot = rng_.next_below(seen);
    if (slot < max_samples_) {
      samples[slot].assign(operands.begin(), operands.end());
    }
  }
}

void Profiler::on_branch(ir::InstRef ref, bool taken) {
  ++profile_.funcs[ref.func].branch[ref.inst][taken ? 0 : 1];
}

void Profiler::on_store(ir::InstRef ref, uint64_t addr, unsigned bytes,
                        bool silent) {
  if (silent) ++profile_.funcs[ref.func].silent[ref.inst];
  const uint64_t packed = pack(ref);
  for (unsigned i = 0; i < bytes; ++i) last_writer_[addr + i] = packed;
}

void Profiler::on_load(ir::InstRef ref, uint64_t addr, unsigned bytes) {
  // Record one dependence per distinct writing store among the loaded
  // bytes (usually exactly one).
  uint64_t seen_writers[8];
  unsigned n_writers = 0;
  for (unsigned i = 0; i < bytes; ++i) {
    const auto it = last_writer_.find(addr + i);
    if (it == last_writer_.end()) continue;  // reading initial data
    const uint64_t w = it->second;
    bool dup = false;
    for (unsigned k = 0; k < n_writers; ++k) dup |= (seen_writers[k] == w);
    if (!dup) seen_writers[n_writers++] = w;
  }
  const uint64_t packed_load = pack(ref);
  for (unsigned k = 0; k < n_writers; ++k) {
    ++edges_[{seen_writers[k], packed_load}];
    ++profile_.dynamic_mem_deps;
  }
}

void Profiler::on_alloc(uint64_t base, uint64_t size) {
  alloc_segments_.emplace_back(base, size);
}

void Profiler::on_memcpy(ir::InstRef, uint64_t dst, uint64_t src,
                         uint64_t bytes) {
  // Bulk copies are transparent to the dependence graph: the ORIGINAL
  // writer of each source byte becomes the writer of the destination
  // byte, so a later load of the copy still depends on the store that
  // produced the data (fixing the paper's §VII-A memcpy blind spot).
  for (uint64_t i = 0; i < bytes; ++i) {
    const auto it = last_writer_.find(src + i);
    if (it != last_writer_.end()) {
      last_writer_[dst + i] = it->second;
    } else {
      last_writer_.erase(dst + i);
    }
  }
}

Profile Profiler::take(const interp::Interpreter& interp,
                       const interp::RunResult& golden) {
  Profile out = std::move(profile_);
  for (const auto& [key, count] : edges_) {
    out.mem_edges.push_back({unpack(key.first), unpack(key.second), count});
  }
  // Segment map: globals (still live) plus every alloca ever observed.
  out.segments = interp.memory().segments();
  out.segments.insert(out.segments.end(), alloc_segments_.begin(),
                      alloc_segments_.end());
  std::sort(out.segments.begin(), out.segments.end());
  out.segments.erase(
      std::unique(out.segments.begin(), out.segments.end()),
      out.segments.end());
  out.total_dynamic = golden.dynamic_insts;
  out.total_results = golden.dynamic_results;
  out.golden_output = golden.output;
  return out;
}

Profile collect_profile(const ir::Module& module,
                        const ProfileOptions& options) {
  interp::Interpreter interp(module);
  Profiler profiler(module, options.seed, options.max_value_samples);
  interp::RunOptions run_options;
  run_options.fuel = options.fuel;
  run_options.hooks = &profiler;
  const auto golden = interp.run_main(run_options);
  assert(golden.outcome == interp::Outcome::Ok &&
         "golden run must complete cleanly");
  return profiler.take(interp, golden);
}

}  // namespace trident::prof
