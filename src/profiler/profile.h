// Profile: everything TRIDENT's inferencing phase needs from the single
// profiling run (paper §IV-A): execution counts, branch probabilities,
// operand-value samples for the fs tuples, the aggregated (pruned) memory
// dependence graph for fm, and the memory segment map for the crash model.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/module.h"

namespace trident::prof {

/// Packs an InstRef into a map key.
inline uint64_t pack(ir::InstRef ref) {
  return (static_cast<uint64_t>(ref.func) << 32) | ref.inst;
}
inline ir::InstRef unpack(uint64_t key) {
  return {static_cast<uint32_t>(key >> 32), static_cast<uint32_t>(key)};
}

struct FuncProfile {
  std::vector<uint64_t> exec;  // per-instruction execution count
  // Per-instruction count of silent stores (value written == value
  // already present): the §VII-A "coincidentally correct" statistic.
  std::vector<uint64_t> silent;
  // Per-instruction conditional-branch outcome counts: [taken, fallthru].
  std::vector<std::array<uint64_t, 2>> branch;
  // Per-instruction reservoir of operand-value vectors (raw payloads),
  // only kept for opcodes whose fs tuple depends on runtime values.
  std::vector<std::vector<std::vector<uint64_t>>> operand_samples;
};

/// Aggregated static store→load dependence edge with observed dynamic
/// count. Aggregating by static (store, load) pair is the paper's
/// symmetric-loop pruning: all dynamic iterations collapse to one edge.
struct MemDepEdge {
  ir::InstRef store;
  ir::InstRef load;
  uint64_t count = 0;
};

struct Profile {
  std::vector<FuncProfile> funcs;

  /// Pruned memory dependence graph.
  std::vector<MemDepEdge> mem_edges;
  /// Number of dynamic store→load dependencies observed before pruning.
  uint64_t dynamic_mem_deps = 0;

  /// Union of all memory segments live at any point of the run, as
  /// (base, size), ascending and disjoint. Backs the crash model.
  std::vector<std::pair<uint64_t, uint64_t>> segments;

  uint64_t total_dynamic = 0;   // all executed instructions
  uint64_t total_results = 0;   // executed result-producing instructions
  std::string golden_output;    // fault-free program output

  // ---- Convenience accessors -------------------------------------------
  uint64_t exec(ir::InstRef ref) const {
    return funcs[ref.func].exec[ref.inst];
  }
  /// Probability the conditional branch `ref` takes its true successor.
  /// Returns 0.5 when the branch never executed.
  double branch_prob_taken(ir::InstRef ref) const;

  /// Fraction of the store's executions that were silent (wrote the value
  /// already present). 0 when it never executed.
  double silent_store_rate(ir::InstRef ref) const;

  /// Edges out of a given static store.
  std::vector<const MemDepEdge*> edges_from_store(ir::InstRef store) const;

  /// Fraction of dynamic dependencies removed by static aggregation
  /// (the paper reports 61.87% on average, §V-C).
  double pruning_ratio() const;

  /// Whether [addr, addr+bytes) lies within a profiled segment.
  bool address_valid(uint64_t addr, unsigned bytes) const;
};

}  // namespace trident::prof
