#include "profiler/profile.h"

#include <algorithm>

namespace trident::prof {

double Profile::branch_prob_taken(ir::InstRef ref) const {
  const auto& b = funcs[ref.func].branch[ref.inst];
  const uint64_t total = b[0] + b[1];
  if (total == 0) return 0.5;
  return static_cast<double>(b[0]) / static_cast<double>(total);
}

double Profile::silent_store_rate(ir::InstRef ref) const {
  const auto execs = funcs[ref.func].exec[ref.inst];
  if (execs == 0) return 0.0;
  return static_cast<double>(funcs[ref.func].silent[ref.inst]) / execs;
}

std::vector<const MemDepEdge*> Profile::edges_from_store(
    ir::InstRef store) const {
  std::vector<const MemDepEdge*> out;
  for (const auto& e : mem_edges) {
    if (e.store == store) out.push_back(&e);
  }
  return out;
}

double Profile::pruning_ratio() const {
  if (dynamic_mem_deps == 0) return 0.0;
  return 1.0 - static_cast<double>(mem_edges.size()) /
                   static_cast<double>(dynamic_mem_deps);
}

bool Profile::address_valid(uint64_t addr, unsigned bytes) const {
  // segments is sorted by base; find the last segment with base <= addr.
  auto it = std::upper_bound(
      segments.begin(), segments.end(), addr,
      [](uint64_t a, const std::pair<uint64_t, uint64_t>& s) {
        return a < s.first;
      });
  if (it == segments.begin()) return false;
  --it;
  return addr - it->first + bytes <= it->second;
}

}  // namespace trident::prof
