// The profiling phase of TRIDENT (paper §IV-A): one instrumented run of
// the program collects everything the inferencing phase needs.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>

#include "interp/interpreter.h"
#include "profiler/profile.h"
#include "support/rng.h"

namespace trident::prof {

struct ProfileOptions {
  uint64_t seed = 7;               // reservoir-sampling stream
  uint32_t max_value_samples = 32; // operand reservoir size per instruction
  uint64_t fuel = 500'000'000;
};

/// Runs `main` of `module` once under instrumentation and returns the
/// profile. Asserts the golden run completes with outcome Ok.
Profile collect_profile(const ir::Module& module,
                        const ProfileOptions& options = {});

/// The hook implementation, exposed for tests and custom drivers.
class Profiler final : public interp::ExecHooks {
 public:
  Profiler(const ir::Module& module, uint64_t seed, uint32_t max_samples);

  void on_result(ir::InstRef ref, uint64_t dyn_index,
                 uint64_t& bits) override;
  void on_exec(ir::InstRef ref, std::span<const uint64_t> operands) override;
  void on_branch(ir::InstRef ref, bool taken) override;
  void on_load(ir::InstRef ref, uint64_t addr, unsigned bytes) override;
  void on_store(ir::InstRef ref, uint64_t addr, unsigned bytes,
                bool silent) override;
  void on_alloc(uint64_t base, uint64_t size) override;
  void on_memcpy(ir::InstRef ref, uint64_t dst, uint64_t src,
                 uint64_t bytes) override;

  /// Finalizes and returns the profile. `interp` supplies the global
  /// segment map; `golden` the fault-free run result.
  Profile take(const interp::Interpreter& interp,
               const interp::RunResult& golden);

 private:
  static bool samples_operands(ir::Opcode op);

  const ir::Module& module_;
  Profile profile_;
  support::Rng rng_;
  uint32_t max_samples_;
  // Per-instruction number of operand-sample candidates seen (reservoir).
  std::vector<std::vector<uint64_t>> sample_seen_;
  // Byte address -> packed InstRef of the last store writing it.
  std::unordered_map<uint64_t, uint64_t> last_writer_;
  // (packed store, packed load) -> dynamic dependence count.
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> edges_;
  std::vector<std::pair<uint64_t, uint64_t>> alloc_segments_;
};

}  // namespace trident::prof
