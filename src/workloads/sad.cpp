// sad (Parboil): sum-of-absolute-differences block matching, the inner
// kernel of video encoding. An 8x8 current block is matched against all
// 8x8 positions of a 16x16 reference window; abs() is the branch-free
// select form and the running-minimum tracking is a data-dependent branch
// (both common shapes in the original kernel).
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace trident::workloads {

ir::Module build_sad() {
  constexpr int32_t kBlock = 8;
  constexpr int32_t kRef = 16;
  constexpr int32_t kSearch = kRef - kBlock;  // 12x12 candidate offsets

  ir::Module m;
  m.name = "sad";
  const uint32_t g_cur = m.add_global({"cur", kBlock * kBlock * 4, {}});
  const uint32_t g_ref = m.add_global({"ref", kRef * kRef * 4, {}});

  ir::IRBuilder b(m);
  b.begin_function("main", {}, ir::Type::void_());
  b.set_block(b.block("entry"));
  const ir::Value cur = b.global(g_cur);
  const ir::Value ref = b.global(g_ref);
  lcg_fill_i32(b, cur, kBlock * kBlock, 4242, 256);
  lcg_fill_i32(b, ref, kRef * kRef, 2424, 256);

  const ir::Value best_sad = b.alloca_(4, "best_sad");
  const ir::Value best_pos = b.alloca_(4, "best_pos");
  const ir::Value acc = b.alloca_(4, "acc");
  b.store(b.i32(0x7fffffff), best_sad);
  b.store(b.i32(-1), best_pos);

  counted_loop(b, 0, kSearch, 1, [&](ir::Value dy) {
    counted_loop(b, 0, kSearch, 1, [&](ir::Value dx) {
      b.store(b.i32(0), acc);
      counted_loop(b, 0, kBlock, 1, [&](ir::Value y) {
        counted_loop(b, 0, kBlock, 1, [&](ir::Value x) {
          const ir::Value c = b.load(
              ir::Type::i32(),
              b.gep(cur, b.add(b.mul(y, b.i32(kBlock)), x), 4), "c");
          const ir::Value ry = b.add(y, dy);
          const ir::Value rx = b.add(x, dx);
          const ir::Value r = b.load(
              ir::Type::i32(),
              b.gep(ref, b.add(b.mul(ry, b.i32(kRef)), rx), 4), "r");
          const ir::Value diff = b.sub(c, r, "diff");
          const ir::Value neg =
              b.icmp(ir::CmpPred::SLt, diff, b.i32(0), "neg");
          const ir::Value ad =
              b.select(neg, b.sub(b.i32(0), diff), diff, "ad");
          b.store(b.add(b.load(ir::Type::i32(), acc), ad), acc);
        });
      });
      const ir::Value sad = b.load(ir::Type::i32(), acc, "sad");
      const ir::Value best = b.load(ir::Type::i32(), best_sad);
      const ir::Value improves =
          b.icmp(ir::CmpPred::SLt, sad, best, "improves");
      if_then(b, improves, [&] {
        b.store(sad, best_sad);
        b.store(b.add(b.mul(dy, b.i32(kSearch)), dx), best_pos);
      });
    });
  });

  b.print_int(b.load(ir::Type::i32(), best_sad));
  b.print_int(b.load(ir::Type::i32(), best_pos));
  b.ret();
  b.end_function();
  return m;
}

}  // namespace trident::workloads
