// bfs (Rodinia): the mask-based BFS variant — per-level sweeps over
// frontier/updating/visited bit arrays with a do-while outer loop whose
// termination is data-dependent through memory ("stop" flag), the shape
// Rodinia uses to mimic its GPU kernels on CPUs.
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace trident::workloads {

ir::Module build_bfs_rodinia() {
  constexpr int32_t kNodes = 160;
  constexpr int32_t kDegree = 3;
  constexpr int32_t kMaxLevels = 64;

  ir::Module m;
  m.name = "bfs_rodinia";
  const uint32_t g_col = m.add_global({"col", kNodes * kDegree * 4, {}});
  const uint32_t g_mask = m.add_global({"mask", kNodes * 4, {}});
  const uint32_t g_updating = m.add_global({"updating", kNodes * 4, {}});
  const uint32_t g_visited = m.add_global({"visited", kNodes * 4, {}});
  const uint32_t g_cost = m.add_global({"cost", kNodes * 4, {}});

  ir::IRBuilder b(m);
  b.begin_function("main", {}, ir::Type::void_());
  b.set_block(b.block("entry"));
  const ir::Value col = b.global(g_col);
  const ir::Value mask = b.global(g_mask);
  const ir::Value updating = b.global(g_updating);
  const ir::Value visited = b.global(g_visited);
  const ir::Value cost = b.global(g_cost);

  lcg_fill_i32(b, col, kNodes * kDegree, 16161, kNodes);
  counted_loop(b, 0, kNodes, 1, [&](ir::Value u) {
    // Ring edge for connectivity, as in graph4096.txt's giant component.
    b.store(b.urem(b.add(u, b.i32(1)), b.i32(kNodes)),
            b.gep(col, b.mul(u, b.i32(kDegree)), 4));
    b.store(b.i32(0), b.gep(mask, u, 4));
    b.store(b.i32(0), b.gep(updating, u, 4));
    b.store(b.i32(0), b.gep(visited, u, 4));
    b.store(b.i32(-1), b.gep(cost, u, 4));
  });
  b.store(b.i32(1), b.gep(mask, b.i32(0), 4));
  b.store(b.i32(1), b.gep(visited, b.i32(0), 4));
  b.store(b.i32(0), b.gep(cost, b.i32(0), 4));

  const ir::Value stop = b.alloca_(4, "stop");
  const ir::Value keep_going = b.alloca_(4, "keep_going");
  const ir::Value levels = b.alloca_(4, "levels");
  b.store(b.i32(0), levels);
  b.store(b.i32(1), keep_going);

  // do { sweep } while (frontier changed && level cap not hit) — the
  // data-dependent loop-terminating branch Rodinia's BFS is known for.
  const uint32_t header = b.block("sweep.header");
  const uint32_t body = b.block("sweep.body");
  const uint32_t done = b.block("sweep.done");
  b.br(header);
  b.set_block(header);
  {
    const ir::Value more = b.icmp(
        ir::CmpPred::Ne, b.load(ir::Type::i32(), keep_going), b.i32(0));
    const ir::Value under_cap =
        b.icmp(ir::CmpPred::SLt, b.load(ir::Type::i32(), levels),
               b.i32(kMaxLevels));
    b.cond_br(b.and_(more, under_cap), body, done);
  }
  b.set_block(body);
  {
    b.store(b.i32(1), stop);
    // Kernel 1: expand the frontier into `updating`.
    counted_loop(b, 0, kNodes, 1, [&](ir::Value u) {
      const ir::Value in_frontier = b.icmp(
          ir::CmpPred::Ne,
          b.load(ir::Type::i32(), b.gep(mask, u, 4)), b.i32(0));
      if_then(b, in_frontier, [&] {
        b.store(b.i32(0), b.gep(mask, u, 4));
        const ir::Value cu = b.load(ir::Type::i32(), b.gep(cost, u, 4));
        counted_loop(b, 0, kDegree, 1, [&](ir::Value e) {
          const ir::Value v = b.load(
              ir::Type::i32(),
              b.gep(col, b.add(b.mul(u, b.i32(kDegree)), e), 4), "v");
          const ir::Value fresh = b.icmp(
              ir::CmpPred::Eq,
              b.load(ir::Type::i32(), b.gep(visited, v, 4)), b.i32(0));
          if_then(b, fresh, [&] {
            b.store(b.add(cu, b.i32(1)), b.gep(cost, v, 4));
            b.store(b.i32(1), b.gep(updating, v, 4));
          });
        });
      });
    });
    // Kernel 2: commit `updating` into the next frontier.
    counted_loop(b, 0, kNodes, 1, [&](ir::Value u) {
      const ir::Value pending = b.icmp(
          ir::CmpPred::Ne,
          b.load(ir::Type::i32(), b.gep(updating, u, 4)), b.i32(0));
      if_then(b, pending, [&] {
        b.store(b.i32(1), b.gep(mask, u, 4));
        b.store(b.i32(1), b.gep(visited, u, 4));
        b.store(b.i32(0), b.gep(updating, u, 4));
        b.store(b.i32(0), stop);
      });
    });
    const ir::Value go_on = b.icmp(
        ir::CmpPred::Eq, b.load(ir::Type::i32(), stop), b.i32(0));
    b.store(b.zext(go_on, ir::Type::i32()), keep_going);
    b.store(b.add(b.load(ir::Type::i32(), levels), b.i32(1)), levels);
    b.br(header);
  }
  b.set_block(done);

  // Output: cost checksum, number of BFS levels, visited count.
  const ir::Value sum = b.alloca_(4, "sum");
  const ir::Value seen = b.alloca_(4, "seen");
  b.store(b.i32(0), sum);
  b.store(b.i32(0), seen);
  counted_loop(b, 0, kNodes, 1, [&](ir::Value u) {
    const ir::Value c = b.load(ir::Type::i32(), b.gep(cost, u, 4));
    b.store(b.add(b.load(ir::Type::i32(), sum), c), sum);
    const ir::Value vis = b.load(ir::Type::i32(), b.gep(visited, u, 4));
    b.store(b.add(b.load(ir::Type::i32(), seen), vis), seen);
  });
  b.print_int(b.load(ir::Type::i32(), sum));
  b.print_int(b.load(ir::Type::i32(), levels));
  b.print_int(b.load(ir::Type::i32(), seen));
  b.ret();
  b.end_function();
  return m;
}

}  // namespace trident::workloads
