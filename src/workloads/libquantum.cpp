// libquantum (SPEC): quantum-register simulation skeleton. A register of
// amplitude counters is repeatedly transformed by conditional "gate"
// updates keyed off state-index bits (the same bit-test/branch/update
// structure as libquantum's toffoli/sigma gates), then "measured" by an
// argmax + checksum scan.
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace trident::workloads {

ir::Module build_libquantum() {
  constexpr int32_t kStates = 64;
  constexpr int32_t kSteps = 48;

  ir::Module m;
  m.name = "libquantum";
  const uint32_t g_amp = m.add_global({"amp", kStates * 4, {}});

  ir::IRBuilder b(m);
  b.begin_function("main", {}, ir::Type::void_());
  b.set_block(b.block("entry"));

  const ir::Value amp = b.global(g_amp);
  lcg_fill_i32(b, amp, kStates, 12345, 1024);

  // Gate sweep: per step, a bit-controlled amplitude rotation.
  counted_loop(b, 0, kSteps, 1, [&](ir::Value step) {
    const ir::Value bit = b.urem(step, b.i32(6));
    counted_loop(b, 0, kStates, 1, [&](ir::Value s) {
      const ir::Value p = b.gep(amp, s, 4);
      const ir::Value a = b.load(ir::Type::i32(), p, "a");
      const ir::Value ctrl =
          b.and_(b.lshr(s, bit), b.i32(1), "ctrl");
      const ir::Value is_set = b.icmp(ir::CmpPred::Ne, ctrl, b.i32(0));
      // "Controlled" branch: data-dependent, non-loop-terminating.
      if_then_else(
          b, is_set,
          [&] {
            const ir::Value rot = b.sub(a, b.ashr(a, b.i32(2)));
            b.store(b.add(rot, step), p);
          },
          [&] {
            const ir::Value damp = b.add(a, b.ashr(a, b.i32(3)));
            b.store(b.xor_(damp, b.i32(5)), p);
          });
    });
  });

  // Measurement: argmax amplitude plus a rolling checksum.
  const ir::Value best = b.alloca_(4, "best");
  const ir::Value best_idx = b.alloca_(4, "best_idx");
  const ir::Value checksum = b.alloca_(4, "checksum");
  b.store(b.i32(-0x7fffffff), best);
  b.store(b.i32(0), best_idx);
  b.store(b.i32(0), checksum);
  counted_loop(b, 0, kStates, 1, [&](ir::Value s) {
    const ir::Value a = b.load(ir::Type::i32(), b.gep(amp, s, 4));
    const ir::Value c = b.load(ir::Type::i32(), checksum);
    b.store(b.xor_(b.mul(c, b.i32(31)), b.add(a, s)), checksum);
    const ir::Value cur_best = b.load(ir::Type::i32(), best);
    const ir::Value better = b.icmp(ir::CmpPred::SGt, a, cur_best);
    if_then(b, better, [&] {
      b.store(a, best);
      b.store(s, best_idx);
    });
  });

  b.print_int(b.load(ir::Type::i32(), checksum));
  b.print_int(b.load(ir::Type::i32(), best_idx));
  b.print_int(b.load(ir::Type::i32(), best));
  b.ret();
  b.end_function();
  return m;
}

}  // namespace trident::workloads
