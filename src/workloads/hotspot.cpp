// hotspot (Rodinia): thermal simulation — a 2D five-point stencil over
// temperature with a power source term, f32 state, and low-precision %g
// formatted output (the paper's motivating case for the floating-point
// format-masking rule, §IV-E).
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace trident::workloads {

ir::Module build_hotspot_seeded(int32_t input_seed) {
  constexpr int32_t kDim = 12;
  constexpr int32_t kSteps = 20;

  ir::Module m;
  m.name = "hotspot";
  const uint32_t g_temp = m.add_global({"temp", kDim * kDim * 4, {}});
  const uint32_t g_power = m.add_global({"power", kDim * kDim * 4, {}});
  const uint32_t g_next = m.add_global({"temp_next", kDim * kDim * 4, {}});

  ir::IRBuilder b(m);
  b.begin_function("main", {}, ir::Type::void_());
  b.set_block(b.block("entry"));
  const ir::Value temp = b.global(g_temp);
  const ir::Value power = b.global(g_power);
  const ir::Value next = b.global(g_next);

  // temp_64 / power_64 inputs: ambient + LCG-distributed power density.
  const ir::Value state = b.alloca_(4, "rng");
  b.store(b.i32(input_seed), state);
  counted_loop(b, 0, kDim * kDim, 1, [&](ir::Value i) {
    const ir::Value x0 = b.load(ir::Type::i32(), state);
    const ir::Value x1 = lcg_next(b, x0);
    b.store(x1, state);
    const ir::Value r = b.urem(b.lshr(x1, b.i32(8)), b.i32(100));
    b.store(b.f32(45.0f), b.gep(temp, i, 4));
    b.store(b.fmul(b.sitofp(r, ir::Type::f32()), b.f32(0.003f)),
            b.gep(power, i, 4));
  });

  const ir::Value k_diff = b.f32(0.18f);
  counted_loop(b, 0, kSteps, 1, [&](ir::Value) {
    counted_loop(b, 0, kDim, 1, [&](ir::Value y) {
      counted_loop(b, 0, kDim, 1, [&](ir::Value x) {
        // Clamped neighbour coordinates (adiabatic boundaries).
        const auto clamp_lo = [&](ir::Value v) {
          return b.select(b.icmp(ir::CmpPred::SGt, v, b.i32(0)),
                          b.sub(v, b.i32(1)), v);
        };
        const auto clamp_hi = [&](ir::Value v) {
          return b.select(b.icmp(ir::CmpPred::SLt, v, b.i32(kDim - 1)),
                          b.add(v, b.i32(1)), v);
        };
        const auto at = [&](ir::Value yy, ir::Value xx) {
          return b.load(ir::Type::f32(),
                        b.gep(temp, b.add(b.mul(yy, b.i32(kDim)), xx), 4));
        };
        const ir::Value idx = b.add(b.mul(y, b.i32(kDim)), x);
        const ir::Value c = at(y, x);
        const ir::Value sum = b.fadd(
            b.fadd(at(clamp_lo(y), x), at(clamp_hi(y), x)),
            b.fadd(at(y, clamp_lo(x)), at(y, clamp_hi(x))));
        const ir::Value lap =
            b.fsub(sum, b.fmul(c, b.f32(4.0f)), "lap");
        const ir::Value p = b.load(ir::Type::f32(), b.gep(power, idx, 4));
        const ir::Value t_new =
            b.fadd(c, b.fadd(b.fmul(k_diff, lap), p), "t_new");
        b.store(t_new, b.gep(next, idx, 4));
      });
    });
    counted_loop(b, 0, kDim * kDim, 1, [&](ir::Value i) {
      b.store(b.load(ir::Type::f32(), b.gep(next, i, 4)),
              b.gep(temp, i, 4));
    });
  });

  // Output: hotspot temperature map summary at 2 significant digits (the
  // "%g" low-precision output) plus a full-precision average.
  const ir::Value total = b.alloca_(4, "total");
  b.store(b.f32(0.0f), total);
  counted_loop(b, 0, kDim * kDim, 1, [&](ir::Value i) {
    b.store(b.fadd(b.load(ir::Type::f32(), total),
                   b.load(ir::Type::f32(), b.gep(temp, i, 4))),
            total);
  });
  const auto corner = [&](int32_t idx) {
    b.print_float(b.load(ir::Type::f32(), b.gep(temp, b.i32(idx), 4)),
                  /*precision=*/2);
  };
  corner(0);
  corner(kDim - 1);
  corner(kDim * kDim - kDim);
  corner(kDim * kDim - 1);
  corner(kDim * kDim / 2);
  b.print_float(
      b.fdiv(b.load(ir::Type::f32(), total), b.f32(float(kDim * kDim))),
      /*precision=*/6);
  b.ret();
  b.end_function();
  return m;
}

ir::Module build_hotspot() { return build_hotspot_seeded(64641); }

}  // namespace trident::workloads
