// lulesh (LLNL): hydrodynamics mini-app skeleton — per-zone equation of
// state with volume clamping and artificial-viscosity branches, energy
// accumulation in f64, and a periodic debug print that is excluded from
// the SDC output set (exercising the paper's "instructions considered as
// program output" input).
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace trident::workloads {

ir::Module build_lulesh() {
  constexpr int32_t kZones = 64;
  constexpr int32_t kSteps = 40;

  ir::Module m;
  m.name = "lulesh";
  const uint32_t g_vol = m.add_global({"vol", kZones * 8, {}});
  const uint32_t g_energy = m.add_global({"energy", kZones * 8, {}});
  const uint32_t g_pressure = m.add_global({"pressure", kZones * 8, {}});

  ir::IRBuilder b(m);
  b.begin_function("main", {}, ir::Type::void_());
  b.set_block(b.block("entry"));
  const ir::Value vol = b.global(g_vol);
  const ir::Value energy = b.global(g_energy);
  const ir::Value pressure = b.global(g_pressure);

  const ir::Value state = b.alloca_(4, "rng");
  b.store(b.i32(90210), state);
  counted_loop(b, 0, kZones, 1, [&](ir::Value i) {
    const ir::Value x0 = b.load(ir::Type::i32(), state);
    const ir::Value x1 = lcg_next(b, x0);
    b.store(x1, state);
    const ir::Value r = b.urem(b.lshr(x1, b.i32(8)), b.i32(100));
    const ir::Value v = b.fadd(
        b.fmul(b.sitofp(r, ir::Type::f64()), b.f64(0.005)), b.f64(0.75));
    b.store(v, b.gep(vol, i, 8));
    b.store(b.f64(1.0), b.gep(energy, i, 8));
    b.store(b.f64(0.0), b.gep(pressure, i, 8));
  });

  const ir::Value gamma1 = b.f64(0.4);  // gamma - 1
  const ir::Value dt = b.f64(0.01);
  const ir::Value vmin = b.f64(0.1);

  counted_loop(b, 0, kSteps, 1, [&](ir::Value step) {
    counted_loop(b, 1, kZones - 1, 1, [&](ir::Value i) {
      const ir::Value vl = b.load(ir::Type::f64(),
                                  b.gep(vol, b.sub(i, b.i32(1)), 8), "vl");
      const ir::Value vr = b.load(ir::Type::f64(),
                                  b.gep(vol, b.add(i, b.i32(1)), 8), "vr");
      const ir::Value vc = b.load(ir::Type::f64(), b.gep(vol, i, 8), "vc");
      const ir::Value e = b.load(ir::Type::f64(), b.gep(energy, i, 8), "e");

      // EOS: p = (gamma - 1) * e / v, with a compression floor.
      const ir::Value grad = b.fsub(vr, vl, "grad");
      ir::Value vnew = b.fadd(vc, b.fmul(dt, grad), "vnew");
      const ir::Value too_small =
          b.fcmp(ir::CmpPred::SLt, vnew, vmin, "too_small");
      vnew = b.select(too_small, vmin, vnew);
      const ir::Value p = b.fdiv(b.fmul(gamma1, e), vnew, "p");

      // Artificial viscosity only on compression: NLT divergence.
      const ir::Value compressing =
          b.fcmp(ir::CmpPred::SLt, grad, b.f64(0.0), "compressing");
      if_then_else(
          b, compressing,
          [&] {
            const ir::Value q = b.fmul(b.fmul(grad, grad), b.f64(2.0));
            const ir::Value work =
                b.fmul(b.fadd(p, q), b.fmul(dt, grad));
            b.store(b.fsub(e, work), b.gep(energy, i, 8));
          },
          [&] {
            const ir::Value work = b.fmul(p, b.fmul(dt, grad));
            b.store(b.fsub(e, work), b.gep(energy, i, 8));
          });
      b.store(p, b.gep(pressure, i, 8));
      b.store(vnew, b.gep(vol, i, 8));
    });
    // Courant-style diagnostic every 10 steps: debug print, excluded
    // from the SDC-defining output set.
    const ir::Value diag = b.icmp(
        ir::CmpPred::Eq, b.urem(step, b.i32(10)), b.i32(0));
    if_then(b, diag, [&] {
      b.print_float(b.load(ir::Type::f64(), b.gep(energy, b.i32(1), 8)),
                    /*precision=*/6, /*is_output=*/false);
    });
  });

  // Final outputs: total energy and peak pressure.
  const ir::Value etot = b.alloca_(8, "etot");
  const ir::Value pmax = b.alloca_(8, "pmax");
  b.store(b.f64(0.0), etot);
  b.store(b.f64(0.0), pmax);
  counted_loop(b, 0, kZones, 1, [&](ir::Value i) {
    const ir::Value e = b.load(ir::Type::f64(), b.gep(energy, i, 8));
    b.store(b.fadd(b.load(ir::Type::f64(), etot), e), etot);
    const ir::Value p = b.load(ir::Type::f64(), b.gep(pressure, i, 8));
    const ir::Value bigger =
        b.fcmp(ir::CmpPred::SGt, p, b.load(ir::Type::f64(), pmax));
    if_then(b, bigger, [&] { b.store(p, pmax); });
  });
  b.print_float(b.load(ir::Type::f64(), etot), /*precision=*/8);
  b.print_float(b.load(ir::Type::f64(), pmax), /*precision=*/4);
  b.ret();
  b.end_function();
  return m;
}

}  // namespace trident::workloads
