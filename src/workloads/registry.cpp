#include "workloads/workloads.h"

#include <stdexcept>

namespace trident::workloads {

const std::vector<Workload>& all_workloads() {
  static const std::vector<Workload> kWorkloads = {
      {"libquantum", "SPEC", "Quantum computing", "64 states, 48 gate steps",
       build_libquantum},
      {"blackscholes", "Parsec", "Finance", "192 options",
       build_blackscholes},
      {"sad", "Parboil", "Video encoding", "8x8 block, 16x16 window",
       build_sad},
      {"bfs_parboil", "Parboil", "Graph traversal", "192 nodes, deg 4",
       build_bfs_parboil},
      {"hercules", "CMU", "Earthquake simulation", "80 points, 40 steps",
       build_hercules},
      {"lulesh", "LLNL", "Hydrodynamics", "64 zones, 40 steps",
       build_lulesh},
      {"puremd", "Purdue", "Molecular dynamics", "16 atoms, 20 steps",
       build_puremd},
      {"nw", "Rodinia", "DNA sequence alignment", "48x48 grid",
       build_nw},
      {"pathfinder", "Rodinia", "Dynamic programming", "96 cols, 12 rows",
       build_pathfinder},
      {"hotspot", "Rodinia", "Thermal simulation", "12x12 grid, 20 steps",
       build_hotspot},
      {"bfs_rodinia", "Rodinia", "Graph traversal", "160 nodes, masks",
       build_bfs_rodinia},
  };
  return kWorkloads;
}

const Workload* lookup_workload(const std::string& name) {
  for (const auto& w : all_workloads()) {
    if (w.name == name) return &w;
  }
  return nullptr;
}

std::string workload_names() {
  std::string out;
  for (const auto& w : all_workloads()) {
    if (!out.empty()) out += ", ";
    out += w.name;
  }
  return out;
}

const Workload& find_workload(const std::string& name) {
  if (const Workload* w = lookup_workload(name); w != nullptr) return *w;
  throw std::runtime_error("unknown workload '" + name +
                           "'; registered workloads: " + workload_names());
}

}  // namespace trident::workloads
