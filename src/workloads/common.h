// Shared IR-authoring helpers for the benchmark workloads: counted loops
// (which produce exactly the loop-terminating branch shape fc models),
// if-then regions (non-loop-terminating, data-dependent branches), and a
// deterministic in-IR LCG for input-data generation — the programs
// generate their own inputs, mirroring the paper's fixed benchmark inputs.
#pragma once

#include <cstdint>
#include <functional>

#include "ir/builder.h"

namespace trident::workloads {

/// Emits `for (i32 i = begin; i < end; i += step) body(i)`.
/// The callback runs with the builder positioned in the loop body and may
/// create additional blocks, as long as control falls out of the block
/// the builder ends in. After return, the builder is in the exit block.
inline void counted_loop(ir::IRBuilder& b, ir::Value begin, ir::Value end,
                         int32_t step,
                         const std::function<void(ir::Value)>& body) {
  const uint32_t pre = b.current_block();
  const uint32_t header = b.block("loop.header");
  const uint32_t body_bb = b.block("loop.body");
  const uint32_t exit_bb = b.block("loop.exit");
  b.br(header);

  b.set_block(header);
  const ir::Value iv = b.phi(ir::Type::i32(), "iv");
  b.add_phi_incoming(iv, begin, pre);
  const ir::Value cond = b.icmp(ir::CmpPred::SLt, iv, end);
  b.cond_br(cond, body_bb, exit_bb);

  b.set_block(body_bb);
  body(iv);
  const ir::Value next = b.add(iv, b.i32(step));
  const uint32_t latch = b.current_block();
  b.br(header);
  b.add_phi_incoming(iv, next, latch);

  b.set_block(exit_bb);
}

inline void counted_loop(ir::IRBuilder& b, int32_t begin, int32_t end,
                         int32_t step,
                         const std::function<void(ir::Value)>& body) {
  counted_loop(b, b.i32(begin), b.i32(end), step, body);
}

/// Emits `if (cond) then()`; values escaping the region must go through
/// memory or Select. Leaves the builder in the continuation block.
inline void if_then(ir::IRBuilder& b, ir::Value cond,
                    const std::function<void()>& then) {
  const uint32_t then_bb = b.block("if.then");
  const uint32_t cont_bb = b.block("if.cont");
  b.cond_br(cond, then_bb, cont_bb);
  b.set_block(then_bb);
  then();
  b.br(cont_bb);
  b.set_block(cont_bb);
}

/// Emits `if (cond) then(); else otherwise();`.
inline void if_then_else(ir::IRBuilder& b, ir::Value cond,
                         const std::function<void()>& then,
                         const std::function<void()>& otherwise) {
  const uint32_t then_bb = b.block("if.then");
  const uint32_t else_bb = b.block("if.else");
  const uint32_t cont_bb = b.block("if.cont");
  b.cond_br(cond, then_bb, else_bb);
  b.set_block(then_bb);
  then();
  b.br(cont_bb);
  b.set_block(else_bb);
  otherwise();
  b.br(cont_bb);
  b.set_block(cont_bb);
}

/// One step of a 32-bit LCG (Numerical Recipes constants), in IR.
inline ir::Value lcg_next(ir::IRBuilder& b, ir::Value x) {
  return b.add(b.mul(x, b.i32(1664525)), b.i32(1013904223), "lcg");
}

/// Fills `count` i32 elements at `base` with LCG values reduced to
/// [0, modulo) (or raw if modulo == 0), starting from `seed`.
inline void lcg_fill_i32(ir::IRBuilder& b, ir::Value base, int32_t count,
                         int32_t seed, int32_t modulo) {
  const ir::Value cell = b.alloca_(4, "lcg.state");
  b.store(b.i32(seed), cell);
  counted_loop(b, 0, count, 1, [&](ir::Value i) {
    const ir::Value x0 = b.load(ir::Type::i32(), cell);
    const ir::Value x1 = lcg_next(b, x0);
    b.store(x1, cell);
    ir::Value v = x1;
    if (modulo != 0) {
      v = b.urem(b.lshr(x1, b.i32(8)), b.i32(modulo));
    }
    b.store(v, b.gep(base, i, 4));
  });
}

}  // namespace trident::workloads
