// The 11 evaluation workloads (paper Table I), rebuilt as scaled-down
// kernels with the same algorithmic skeletons, authored directly in the
// TRIDENT IR. See DESIGN.md §2 for the substitution rationale.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/module.h"

namespace trident::workloads {

struct Workload {
  std::string name;
  std::string suite;
  std::string area;
  std::string input;  // scaled-down input parameters baked into the kernel
  std::function<ir::Module()> build;
};

/// All workloads, in the paper's Table I order.
const std::vector<Workload>& all_workloads();

/// Lookup by name; nullptr when no workload is registered under it.
const Workload* lookup_workload(const std::string& name);

/// Comma-separated registered names, in registry order — the standard
/// suffix of every unknown-workload diagnostic.
std::string workload_names();

/// Lookup by name; throws std::runtime_error naming the unknown
/// workload and listing every registered name. Use lookup_workload for
/// a non-throwing probe.
const Workload& find_workload(const std::string& name);

// Input-parameterized builders (the paper's §IX future work: SDC
// probabilities vary with program input [Di Leo et al.]; these expose the
// input-data seed so that sensitivity can be studied).
ir::Module build_pathfinder_seeded(int32_t input_seed);
ir::Module build_hotspot_seeded(int32_t input_seed);
ir::Module build_bfs_parboil_seeded(int32_t input_seed);

// Individual builders (one translation unit each).
ir::Module build_libquantum();
ir::Module build_blackscholes();
ir::Module build_sad();
ir::Module build_bfs_parboil();
ir::Module build_hercules();
ir::Module build_lulesh();
ir::Module build_puremd();
ir::Module build_nw();
ir::Module build_pathfinder();
ir::Module build_hotspot();
ir::Module build_bfs_rodinia();

}  // namespace trident::workloads
