// nw (Rodinia): Needleman-Wunsch global sequence alignment — the
// dynamic-programming recurrence with two max comparisons per cell and a
// data-dependent match/mismatch branch, over a 48x48 score grid.
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace trident::workloads {

ir::Module build_nw() {
  constexpr int32_t kLen = 48;
  constexpr int32_t kDim = kLen + 1;
  constexpr int32_t kGap = 2;

  ir::Module m;
  m.name = "nw";
  const uint32_t g_a = m.add_global({"seq_a", kLen * 4, {}});
  const uint32_t g_b = m.add_global({"seq_b", kLen * 4, {}});
  const uint32_t g_dp = m.add_global({"dp", kDim * kDim * 4, {}});

  ir::IRBuilder b(m);
  b.begin_function("main", {}, ir::Type::void_());
  b.set_block(b.block("entry"));
  const ir::Value seq_a = b.global(g_a);
  const ir::Value seq_b = b.global(g_b);
  const ir::Value dp = b.global(g_dp);
  lcg_fill_i32(b, seq_a, kLen, 111, 4);  // 4-letter alphabet
  lcg_fill_i32(b, seq_b, kLen, 222, 4);

  // DP boundary: dp[i][0] = -gap*i, dp[0][j] = -gap*j.
  counted_loop(b, 0, kDim, 1, [&](ir::Value i) {
    const ir::Value pen = b.mul(i, b.i32(-kGap));
    b.store(pen, b.gep(dp, b.mul(i, b.i32(kDim)), 4));
    b.store(pen, b.gep(dp, i, 4));
  });

  counted_loop(b, 1, kDim, 1, [&](ir::Value i) {
    counted_loop(b, 1, kDim, 1, [&](ir::Value j) {
      const ir::Value ca = b.load(
          ir::Type::i32(), b.gep(seq_a, b.sub(i, b.i32(1)), 4), "ca");
      const ir::Value cb = b.load(
          ir::Type::i32(), b.gep(seq_b, b.sub(j, b.i32(1)), 4), "cb");
      const ir::Value match = b.icmp(ir::CmpPred::Eq, ca, cb, "match");
      const ir::Value sim = b.select(match, b.i32(3), b.i32(-1), "sim");

      const ir::Value row = b.mul(i, b.i32(kDim));
      const ir::Value prow = b.mul(b.sub(i, b.i32(1)), b.i32(kDim));
      const ir::Value diag = b.load(
          ir::Type::i32(), b.gep(dp, b.add(prow, b.sub(j, b.i32(1))), 4));
      const ir::Value up =
          b.load(ir::Type::i32(), b.gep(dp, b.add(prow, j), 4));
      const ir::Value left = b.load(
          ir::Type::i32(), b.gep(dp, b.add(row, b.sub(j, b.i32(1))), 4));

      const ir::Value s_diag = b.add(diag, sim);
      const ir::Value s_up = b.sub(up, b.i32(kGap));
      const ir::Value s_left = b.sub(left, b.i32(kGap));
      const ir::Value m1 = b.select(
          b.icmp(ir::CmpPred::SGt, s_diag, s_up), s_diag, s_up, "m1");
      const ir::Value m2 = b.select(
          b.icmp(ir::CmpPred::SGt, m1, s_left), m1, s_left, "m2");
      b.store(m2, b.gep(dp, b.add(row, j), 4));
    });
  });

  // Outputs: the alignment score and an anti-diagonal checksum.
  b.print_int(b.load(
      ir::Type::i32(), b.gep(dp, b.i32(kDim * kDim - 1), 4)));
  const ir::Value chk = b.alloca_(4, "chk");
  b.store(b.i32(0), chk);
  counted_loop(b, 0, kDim, 1, [&](ir::Value i) {
    const ir::Value cell = b.load(
        ir::Type::i32(),
        b.gep(dp, b.add(b.mul(i, b.i32(kDim)), b.sub(b.i32(kDim - 1), i)),
              4));
    b.store(b.add(b.mul(b.load(ir::Type::i32(), chk), b.i32(7)), cell),
            chk);
  });
  b.print_int(b.load(ir::Type::i32(), chk));
  b.ret();
  b.end_function();
  return m;
}

}  // namespace trident::workloads
