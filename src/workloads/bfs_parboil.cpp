// bfs (Parboil): queue-based breadth-first search over a fixed-degree
// CSR graph. The worklist loop is a memory-driven while loop (head/tail
// cursors), the visited check is the classic data-dependent branch, and
// levels propagate through memory — the structure that makes BFS a
// control-flow-divergence stress test in the paper.
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace trident::workloads {

ir::Module build_bfs_parboil_seeded(int32_t input_seed) {
  constexpr int32_t kNodes = 192;
  constexpr int32_t kDegree = 4;

  ir::Module m;
  m.name = "bfs_parboil";
  const uint32_t g_col = m.add_global({"col", kNodes * kDegree * 4, {}});
  const uint32_t g_level = m.add_global({"level", kNodes * 4, {}});
  const uint32_t g_queue = m.add_global({"queue", kNodes * 4, {}});

  ir::IRBuilder b(m);
  b.begin_function("main", {}, ir::Type::void_());
  b.set_block(b.block("entry"));
  const ir::Value col = b.global(g_col);
  const ir::Value level = b.global(g_level);
  const ir::Value queue = b.global(g_queue);

  // Edges: one ring edge for connectivity plus random chords.
  lcg_fill_i32(b, col, kNodes * kDegree, input_seed, kNodes);
  counted_loop(b, 0, kNodes, 1, [&](ir::Value u) {
    const ir::Value succ = b.urem(b.add(u, b.i32(1)), b.i32(kNodes));
    b.store(succ, b.gep(col, b.mul(u, b.i32(kDegree)), 4));
    b.store(b.i32(-1), b.gep(level, u, 4));
  });

  const ir::Value head = b.alloca_(4, "head");
  const ir::Value tail = b.alloca_(4, "tail");
  b.store(b.i32(0), head);
  b.store(b.i32(1), tail);
  b.store(b.i32(0), b.gep(level, b.i32(0), 4));  // level[0] = 0
  b.store(b.i32(0), b.gep(queue, b.i32(0), 4));  // queue[0] = node 0

  // Worklist loop: while (head < tail).
  const uint32_t header = b.block("bfs.header");
  const uint32_t body = b.block("bfs.body");
  const uint32_t done = b.block("bfs.done");
  b.br(header);
  b.set_block(header);
  {
    const ir::Value h = b.load(ir::Type::i32(), head, "h");
    const ir::Value t = b.load(ir::Type::i32(), tail, "t");
    b.cond_br(b.icmp(ir::CmpPred::SLt, h, t), body, done);
  }
  b.set_block(body);
  {
    const ir::Value h = b.load(ir::Type::i32(), head);
    const ir::Value u = b.load(ir::Type::i32(), b.gep(queue, h, 4), "u");
    b.store(b.add(h, b.i32(1)), head);
    const ir::Value lu =
        b.load(ir::Type::i32(), b.gep(level, u, 4), "lu");
    counted_loop(b, 0, kDegree, 1, [&](ir::Value e) {
      const ir::Value slot = b.add(b.mul(u, b.i32(kDegree)), e);
      const ir::Value v = b.load(ir::Type::i32(), b.gep(col, slot, 4), "v");
      const ir::Value lv = b.load(ir::Type::i32(), b.gep(level, v, 4));
      const ir::Value unvisited =
          b.icmp(ir::CmpPred::SLt, lv, b.i32(0), "unvisited");
      if_then(b, unvisited, [&] {
        b.store(b.add(lu, b.i32(1)), b.gep(level, v, 4));
        const ir::Value t = b.load(ir::Type::i32(), tail);
        b.store(v, b.gep(queue, t, 4));
        b.store(b.add(t, b.i32(1)), tail);
      });
    });
    b.br(header);
  }
  b.set_block(done);

  // Output: level checksum, deepest level, visited count.
  const ir::Value sum = b.alloca_(4, "sum");
  const ir::Value deepest = b.alloca_(4, "deepest");
  b.store(b.i32(0), sum);
  b.store(b.i32(0), deepest);
  counted_loop(b, 0, kNodes, 1, [&](ir::Value u) {
    const ir::Value l = b.load(ir::Type::i32(), b.gep(level, u, 4));
    b.store(b.add(b.load(ir::Type::i32(), sum), l), sum);
    const ir::Value deeper =
        b.icmp(ir::CmpPred::SGt, l, b.load(ir::Type::i32(), deepest));
    if_then(b, deeper,
            [&] { b.store(l, deepest); });
  });
  b.print_int(b.load(ir::Type::i32(), sum));
  b.print_int(b.load(ir::Type::i32(), deepest));
  b.print_int(b.load(ir::Type::i32(), tail));
  b.ret();
  b.end_function();
  return m;
}

ir::Module build_bfs_parboil() { return build_bfs_parboil_seeded(31415); }

}  // namespace trident::workloads
