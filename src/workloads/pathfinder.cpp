// pathfinder (Rodinia): row-by-row shortest-path dynamic programming —
// the paper's own running example (Fig. 2). Each row update reads the
// previous row (min of three neighbours via data-dependent branches) and
// the row copy-back creates the symmetric store/load loop pair of Fig. 4.
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace trident::workloads {

ir::Module build_pathfinder_seeded(int32_t input_seed) {
  constexpr int32_t kCols = 96;
  constexpr int32_t kRows = 12;

  ir::Module m;
  m.name = "pathfinder";
  const uint32_t g_cost = m.add_global({"cost", kCols * kRows * 4, {}});
  const uint32_t g_src = m.add_global({"src", kCols * 4, {}});
  const uint32_t g_dst = m.add_global({"dst", kCols * 4, {}});

  ir::IRBuilder b(m);
  b.begin_function("main", {}, ir::Type::void_());
  b.set_block(b.block("entry"));
  const ir::Value cost = b.global(g_cost);
  const ir::Value src = b.global(g_src);
  const ir::Value dst = b.global(g_dst);
  lcg_fill_i32(b, cost, kCols * kRows, input_seed, 10);

  // First DP row is the first cost row.
  counted_loop(b, 0, kCols, 1, [&](ir::Value j) {
    b.store(b.load(ir::Type::i32(), b.gep(cost, j, 4)), b.gep(src, j, 4));
  });

  counted_loop(b, 1, kRows, 1, [&](ir::Value i) {
    counted_loop(b, 0, kCols, 1, [&](ir::Value j) {
      // Clamped neighbour indices (boundary selects).
      const ir::Value jl = b.select(
          b.icmp(ir::CmpPred::SGt, j, b.i32(0)), b.sub(j, b.i32(1)), j);
      const ir::Value jr =
          b.select(b.icmp(ir::CmpPred::SLt, j, b.i32(kCols - 1)),
                   b.add(j, b.i32(1)), j);
      const ir::Value left = b.load(ir::Type::i32(), b.gep(src, jl, 4));
      const ir::Value mid = b.load(ir::Type::i32(), b.gep(src, j, 4));
      const ir::Value right = b.load(ir::Type::i32(), b.gep(src, jr, 4));
      const ir::Value m1 = b.select(
          b.icmp(ir::CmpPred::SLt, left, mid), left, mid, "m1");
      const ir::Value m2 = b.select(
          b.icmp(ir::CmpPred::SLt, m1, right), m1, right, "m2");
      const ir::Value c = b.load(
          ir::Type::i32(), b.gep(cost, b.add(b.mul(i, b.i32(kCols)), j), 4));
      b.store(b.add(m2, c), b.gep(dst, j, 4));
    });
    // Copy dst back to src: the symmetric update/reload loop pair.
    counted_loop(b, 0, kCols, 1, [&](ir::Value j) {
      b.store(b.load(ir::Type::i32(), b.gep(dst, j, 4)),
              b.gep(src, j, 4));
    });
  });

  // Output: minimum path cost and its column.
  const ir::Value best = b.alloca_(4, "best");
  const ir::Value best_col = b.alloca_(4, "best_col");
  b.store(b.i32(0x7fffffff), best);
  b.store(b.i32(-1), best_col);
  counted_loop(b, 0, kCols, 1, [&](ir::Value j) {
    const ir::Value v = b.load(ir::Type::i32(), b.gep(src, j, 4));
    const ir::Value better =
        b.icmp(ir::CmpPred::SLt, v, b.load(ir::Type::i32(), best));
    if_then(b, better, [&] {
      b.store(v, best);
      b.store(j, best_col);
    });
  });
  b.print_int(b.load(ir::Type::i32(), best));
  b.print_int(b.load(ir::Type::i32(), best_col));
  b.ret();
  b.end_function();
  return m;
}

ir::Module build_pathfinder() { return build_pathfinder_seeded(1000); }

}  // namespace trident::workloads
