// hercules (CMU): earthquake ground-motion simulation skeleton — an
// explicit second-order wave-equation stencil over a 1D domain with
// absorbing clamps, rotating three state arrays per timestep. The
// rotation copy loops create exactly the symmetric store/load loop pairs
// that fm's dependence pruning targets (paper Fig. 2/4).
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace trident::workloads {

ir::Module build_hercules() {
  constexpr int32_t kN = 80;
  constexpr int32_t kSteps = 40;

  ir::Module m;
  m.name = "hercules";
  const uint32_t g_prev = m.add_global({"u_prev", kN * 4, {}});
  const uint32_t g_cur = m.add_global({"u_cur", kN * 4, {}});
  const uint32_t g_next = m.add_global({"u_next", kN * 4, {}});

  ir::IRBuilder b(m);
  b.begin_function("main", {}, ir::Type::void_());
  b.set_block(b.block("entry"));
  const ir::Value up = b.global(g_prev);
  const ir::Value uc = b.global(g_cur);
  const ir::Value un = b.global(g_next);

  // Initial displacement: a rough pulse from LCG noise, same in prev/cur.
  const ir::Value state = b.alloca_(4, "rng");
  b.store(b.i32(5150), state);
  counted_loop(b, 0, kN, 1, [&](ir::Value i) {
    const ir::Value x0 = b.load(ir::Type::i32(), state);
    const ir::Value x1 = lcg_next(b, x0);
    b.store(x1, state);
    const ir::Value noise = b.urem(b.lshr(x1, b.i32(8)), b.i32(100));
    const ir::Value v = b.fmul(b.sitofp(noise, ir::Type::f32()),
                               b.f32(0.001f));
    // Pulse near the middle third of the domain.
    const ir::Value mid = b.and_(
        b.icmp(ir::CmpPred::SGt, i, b.i32(kN / 3)),
        b.icmp(ir::CmpPred::SLt, i, b.i32(2 * kN / 3)));
    const ir::Value amp = b.select(mid, b.fadd(v, b.f32(1.0f)), v);
    b.store(amp, b.gep(uc, i, 4));
    b.store(amp, b.gep(up, i, 4));
    b.store(b.f32(0.0f), b.gep(un, i, 4));
  });

  const ir::Value courant2 = b.f32(0.25f);
  counted_loop(b, 0, kSteps, 1, [&](ir::Value) {
    counted_loop(b, 1, kN - 1, 1, [&](ir::Value i) {
      const ir::Value c = b.load(ir::Type::f32(), b.gep(uc, i, 4), "c");
      const ir::Value l = b.load(ir::Type::f32(),
                                 b.gep(uc, b.sub(i, b.i32(1)), 4), "l");
      const ir::Value r = b.load(ir::Type::f32(),
                                 b.gep(uc, b.add(i, b.i32(1)), 4), "r");
      const ir::Value p = b.load(ir::Type::f32(), b.gep(up, i, 4), "p");
      const ir::Value lap =
          b.fadd(b.fsub(l, b.fmul(c, b.f32(2.0f))), r, "lap");
      ir::Value nv = b.fsub(b.fmul(c, b.f32(2.0f)), p);
      nv = b.fadd(nv, b.fmul(courant2, lap), "nv");
      // Absorbing clamp: data-dependent divergence.
      const ir::Value hot =
          b.fcmp(ir::CmpPred::SGt, nv, b.f32(4.0f), "hot");
      const ir::Value clamped = b.select(hot, b.f32(4.0f), nv);
      b.store(clamped, b.gep(un, i, 4));
    });
    // Rotate state arrays: prev <- cur, cur <- next (symmetric loops).
    counted_loop(b, 0, kN, 1, [&](ir::Value i) {
      b.store(b.load(ir::Type::f32(), b.gep(uc, i, 4)), b.gep(up, i, 4));
    });
    counted_loop(b, 1, kN - 1, 1, [&](ir::Value i) {
      b.store(b.load(ir::Type::f32(), b.gep(un, i, 4)), b.gep(uc, i, 4));
    });
  });

  // Output: total "seismic energy" and the center-point displacement.
  const ir::Value energy = b.alloca_(4, "energy");
  b.store(b.f32(0.0f), energy);
  counted_loop(b, 0, kN, 1, [&](ir::Value i) {
    const ir::Value v = b.load(ir::Type::f32(), b.gep(uc, i, 4));
    b.store(b.fadd(b.load(ir::Type::f32(), energy), b.fmul(v, v)), energy);
  });
  b.print_float(b.load(ir::Type::f32(), energy), /*precision=*/5);
  b.print_float(b.load(ir::Type::f32(), b.gep(uc, b.i32(kN / 2), 4)),
                /*precision=*/3);
  b.ret();
  b.end_function();
  return m;
}

}  // namespace trident::workloads
