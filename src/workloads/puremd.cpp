// puremd (Purdue): reactive molecular dynamics skeleton — pairwise
// short-range force computation with a cutoff branch (the archetypal
// data-dependent divergence in MD codes), followed by velocity-Verlet
// style integration. f64 throughout, as in the original.
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace trident::workloads {

ir::Module build_puremd() {
  constexpr int32_t kAtoms = 16;
  constexpr int32_t kSteps = 20;

  ir::Module m;
  m.name = "puremd";
  const uint32_t g_px = m.add_global({"px", kAtoms * 8, {}});
  const uint32_t g_py = m.add_global({"py", kAtoms * 8, {}});
  const uint32_t g_vx = m.add_global({"vx", kAtoms * 8, {}});
  const uint32_t g_vy = m.add_global({"vy", kAtoms * 8, {}});
  const uint32_t g_fx = m.add_global({"fx", kAtoms * 8, {}});
  const uint32_t g_fy = m.add_global({"fy", kAtoms * 8, {}});

  ir::IRBuilder b(m);
  b.begin_function("main", {}, ir::Type::void_());
  b.set_block(b.block("entry"));
  const ir::Value px = b.global(g_px);
  const ir::Value py = b.global(g_py);
  const ir::Value vx = b.global(g_vx);
  const ir::Value vy = b.global(g_vy);
  const ir::Value fx = b.global(g_fx);
  const ir::Value fy = b.global(g_fy);

  // Positions from the "geo" input: LCG lattice jitter.
  const ir::Value state = b.alloca_(4, "rng");
  b.store(b.i32(60601), state);
  counted_loop(b, 0, kAtoms, 1, [&](ir::Value i) {
    const ir::Value x0 = b.load(ir::Type::i32(), state);
    const ir::Value x1 = lcg_next(b, x0);
    b.store(x1, state);
    const ir::Value jitter = b.urem(b.lshr(x1, b.i32(8)), b.i32(50));
    const ir::Value grid_x = b.urem(i, b.i32(4));
    const ir::Value grid_y = b.sdiv(i, b.i32(4));
    const ir::Value jx = b.fmul(b.sitofp(jitter, ir::Type::f64()),
                                b.f64(0.004));
    b.store(b.fadd(b.fmul(b.sitofp(grid_x, ir::Type::f64()), b.f64(1.2)),
                   jx),
            b.gep(px, i, 8));
    b.store(b.fadd(b.fmul(b.sitofp(grid_y, ir::Type::f64()), b.f64(1.2)),
                   b.fmul(jx, b.f64(0.5))),
            b.gep(py, i, 8));
    b.store(b.f64(0.0), b.gep(vx, i, 8));
    b.store(b.f64(0.0), b.gep(vy, i, 8));
  });

  const ir::Value dt = b.f64(0.005);
  const ir::Value cutoff2 = b.f64(2.25);  // (1.5 Angstrom)^2

  counted_loop(b, 0, kSteps, 1, [&](ir::Value) {
    counted_loop(b, 0, kAtoms, 1, [&](ir::Value i) {
      b.store(b.f64(0.0), b.gep(fx, i, 8));
      b.store(b.f64(0.0), b.gep(fy, i, 8));
    });
    counted_loop(b, 0, kAtoms, 1, [&](ir::Value i) {
      counted_loop(b, b.add(i, b.i32(1)), b.i32(kAtoms), 1, [&](ir::Value j) {
        const ir::Value dx = b.fsub(
            b.load(ir::Type::f64(), b.gep(px, i, 8)),
            b.load(ir::Type::f64(), b.gep(px, j, 8)), "dx");
        const ir::Value dy = b.fsub(
            b.load(ir::Type::f64(), b.gep(py, i, 8)),
            b.load(ir::Type::f64(), b.gep(py, j, 8)), "dy");
        const ir::Value r2 =
            b.fadd(b.fmul(dx, dx), b.fmul(dy, dy), "r2");
        const ir::Value near =
            b.fcmp(ir::CmpPred::SLt, r2, cutoff2, "near");
        if_then(b, near, [&] {
          // Lennard-Jones-ish short-range term on r^-2.
          const ir::Value inv = b.fdiv(b.f64(1.0),
                                       b.fadd(r2, b.f64(0.01)), "inv");
          const ir::Value inv2 = b.fmul(inv, inv);
          const ir::Value mag =
              b.fsub(inv2, b.fmul(inv, b.f64(0.5)), "mag");
          const auto bump = [&](ir::Value arr, ir::Value idx,
                                ir::Value delta, bool subtract) {
            const ir::Value p = b.gep(arr, idx, 8);
            const ir::Value old = b.load(ir::Type::f64(), p);
            b.store(subtract ? b.fsub(old, delta) : b.fadd(old, delta), p);
          };
          const ir::Value dfx = b.fmul(mag, dx);
          const ir::Value dfy = b.fmul(mag, dy);
          bump(fx, i, dfx, false);
          bump(fy, i, dfy, false);
          bump(fx, j, dfx, true);
          bump(fy, j, dfy, true);
        });
      });
    });
    // Integrate.
    counted_loop(b, 0, kAtoms, 1, [&](ir::Value i) {
      const auto axis = [&](ir::Value f, ir::Value v, ir::Value p) {
        const ir::Value vn = b.fadd(
            b.load(ir::Type::f64(), b.gep(v, i, 8)),
            b.fmul(b.load(ir::Type::f64(), b.gep(f, i, 8)), dt));
        b.store(vn, b.gep(v, i, 8));
        b.store(b.fadd(b.load(ir::Type::f64(), b.gep(p, i, 8)),
                       b.fmul(vn, dt)),
                b.gep(p, i, 8));
      };
      axis(fx, vx, px);
      axis(fy, vy, py);
    });
  });

  // Outputs: kinetic energy and a position checksum.
  const ir::Value ke = b.alloca_(8, "ke");
  const ir::Value chk = b.alloca_(8, "chk");
  b.store(b.f64(0.0), ke);
  b.store(b.f64(0.0), chk);
  counted_loop(b, 0, kAtoms, 1, [&](ir::Value i) {
    const ir::Value vxi = b.load(ir::Type::f64(), b.gep(vx, i, 8));
    const ir::Value vyi = b.load(ir::Type::f64(), b.gep(vy, i, 8));
    b.store(b.fadd(b.load(ir::Type::f64(), ke),
                   b.fadd(b.fmul(vxi, vxi), b.fmul(vyi, vyi))),
            ke);
    b.store(b.fadd(b.load(ir::Type::f64(), chk),
                   b.fadd(b.load(ir::Type::f64(), b.gep(px, i, 8)),
                          b.load(ir::Type::f64(), b.gep(py, i, 8)))),
            chk);
  });
  b.print_float(b.load(ir::Type::f64(), ke), /*precision=*/6);
  b.print_float(b.load(ir::Type::f64(), chk), /*precision=*/8);
  b.ret();
  b.end_function();
  return m;
}

}  // namespace trident::workloads
