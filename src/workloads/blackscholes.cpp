// blackscholes (Parsec): Black-Scholes option pricing with the classic
// CNDF polynomial structure. Transcendentals are replaced by short
// rational/Newton approximations implemented as separate IR functions
// (exercising interprocedural propagation through calls and returns);
// the control and data-flow skeleton — per-option straight-line float
// chains feeding a threshold branch, formatted float output — matches
// the original.
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace trident::workloads {

namespace {

// float sqrt_approx(float a): 6 Newton iterations from a/2 + 0.5.
uint32_t emit_sqrt(ir::IRBuilder& b) {
  const auto f = b.begin_function("sqrt_approx", {ir::Type::f32()},
                                  ir::Type::f32());
  b.set_block(b.block("entry"));
  const ir::Value a = b.arg(0);
  const ir::Value x0 =
      b.fadd(b.fmul(a, b.f32(0.5f)), b.f32(0.5f), "x0");
  ir::Value x = x0;
  for (int i = 0; i < 6; ++i) {
    // x = 0.5 * (x + a / x)
    x = b.fmul(b.f32(0.5f), b.fadd(x, b.fdiv(a, x)));
  }
  b.ret(x);
  b.end_function();
  return f;
}

// float exp_neg(float y): e^-y ~= 1 / (1 + y + y^2/2 + y^3/6 + y^4/24),
// adequate for the y >= 0 range this kernel produces.
uint32_t emit_exp_neg(ir::IRBuilder& b) {
  const auto f =
      b.begin_function("exp_neg", {ir::Type::f32()}, ir::Type::f32());
  b.set_block(b.block("entry"));
  const ir::Value y = b.arg(0);
  const ir::Value y2 = b.fmul(y, y);
  const ir::Value y3 = b.fmul(y2, y);
  const ir::Value y4 = b.fmul(y2, y2);
  ir::Value denom = b.fadd(b.f32(1.0f), y);
  denom = b.fadd(denom, b.fmul(y2, b.f32(0.5f)));
  denom = b.fadd(denom, b.fmul(y3, b.f32(1.0f / 6.0f)));
  denom = b.fadd(denom, b.fmul(y4, b.f32(1.0f / 24.0f)));
  b.ret(b.fdiv(b.f32(1.0f), denom));
  b.end_function();
  return f;
}

// float ln_approx(float z): 2*(w + w^3/3 + w^5/5), w = (z-1)/(z+1).
uint32_t emit_ln(ir::IRBuilder& b) {
  const auto f =
      b.begin_function("ln_approx", {ir::Type::f32()}, ir::Type::f32());
  b.set_block(b.block("entry"));
  const ir::Value z = b.arg(0);
  const ir::Value w =
      b.fdiv(b.fsub(z, b.f32(1.0f)), b.fadd(z, b.f32(1.0f)), "w");
  const ir::Value w2 = b.fmul(w, w);
  const ir::Value w3 = b.fmul(w2, w);
  const ir::Value w5 = b.fmul(w3, w2);
  ir::Value s = w;
  s = b.fadd(s, b.fmul(w3, b.f32(1.0f / 3.0f)));
  s = b.fadd(s, b.fmul(w5, b.f32(0.2f)));
  b.ret(b.fmul(s, b.f32(2.0f)));
  b.end_function();
  return f;
}

// float cndf(float x): Abramowitz-Stegun cumulative normal with the
// |x| fold and the 1-y complement branch, as in Parsec's CNDF.
uint32_t emit_cndf(ir::IRBuilder& b, uint32_t exp_neg) {
  const auto f =
      b.begin_function("cndf", {ir::Type::f32()}, ir::Type::f32());
  b.set_block(b.block("entry"));
  const ir::Value x = b.arg(0);
  const ir::Value neg = b.fcmp(ir::CmpPred::SLt, x, b.f32(0.0f), "neg");
  const ir::Value ax = b.select(neg, b.fsub(b.f32(0.0f), x), x, "ax");
  const ir::Value k = b.fdiv(
      b.f32(1.0f),
      b.fadd(b.f32(1.0f), b.fmul(b.f32(0.2316419f), ax)), "k");
  // Horner evaluation of the 5-term polynomial.
  ir::Value poly = b.f32(1.330274429f);
  poly = b.fadd(b.fmul(poly, k), b.f32(-1.821255978f));
  poly = b.fadd(b.fmul(poly, k), b.f32(1.781477937f));
  poly = b.fadd(b.fmul(poly, k), b.f32(-0.356563782f));
  poly = b.fadd(b.fmul(poly, k), b.f32(0.319381530f));
  poly = b.fmul(poly, k);
  const ir::Value half_x2 = b.fmul(b.fmul(x, x), b.f32(0.5f));
  const ir::Value gauss =
      b.fmul(b.f32(0.39894228f), b.call(exp_neg, {half_x2}, "e"));
  const ir::Value y = b.fsub(b.f32(1.0f), b.fmul(gauss, poly), "y");
  b.ret(b.select(neg, b.fsub(b.f32(1.0f), y), y));
  b.end_function();
  return f;
}

}  // namespace

ir::Module build_blackscholes() {
  constexpr int32_t kOptions = 192;

  ir::Module m;
  m.name = "blackscholes";
  const uint32_t g_spot = m.add_global({"spot", kOptions * 4, {}});
  const uint32_t g_strike = m.add_global({"strike", kOptions * 4, {}});
  const uint32_t g_time = m.add_global({"time", kOptions * 4, {}});

  ir::IRBuilder b(m);
  const uint32_t f_sqrt = emit_sqrt(b);
  const uint32_t f_exp = emit_exp_neg(b);
  const uint32_t f_ln = emit_ln(b);
  const uint32_t f_cndf = emit_cndf(b, f_exp);

  b.begin_function("main", {}, ir::Type::void_());
  b.set_block(b.block("entry"));
  const ir::Value spot = b.global(g_spot);
  const ir::Value strike = b.global(g_strike);
  const ir::Value time = b.global(g_time);
  lcg_fill_i32(b, spot, kOptions, 777, 100);    // 0..99 -> $50..$149
  lcg_fill_i32(b, strike, kOptions, 888, 100);  // 0..99 -> $60..$159
  lcg_fill_i32(b, time, kOptions, 999, 20);     // 0..19 -> 0.25..5 years

  const ir::Value sum = b.alloca_(4, "sum");
  const ir::Value in_money = b.alloca_(4, "in_money");
  b.store(b.f32(0.0f), sum);
  b.store(b.i32(0), in_money);

  const ir::Value rate = b.f32(0.02f);
  const ir::Value vol = b.f32(0.30f);

  counted_loop(b, 0, kOptions, 1, [&](ir::Value i) {
    const auto loadf = [&](ir::Value base, float offset, float scale) {
      const ir::Value raw = b.load(ir::Type::i32(), b.gep(base, i, 4));
      return b.fadd(b.fmul(b.sitofp(raw, ir::Type::f32()), b.f32(scale)),
                    b.f32(offset));
    };
    const ir::Value s = loadf(spot, 50.0f, 1.0f);
    const ir::Value k = loadf(strike, 60.0f, 1.0f);
    const ir::Value t = loadf(time, 0.25f, 0.25f);

    const ir::Value sqrt_t = b.call(f_sqrt, {t}, "sqrt_t");
    const ir::Value log_sk = b.call(f_ln, {b.fdiv(s, k)}, "log_sk");
    const ir::Value vol_sqrt_t = b.fmul(vol, sqrt_t);
    const ir::Value drift =
        b.fadd(rate, b.fmul(b.fmul(vol, vol), b.f32(0.5f)));
    const ir::Value d1 =
        b.fdiv(b.fadd(log_sk, b.fmul(drift, t)), vol_sqrt_t, "d1");
    const ir::Value d2 = b.fsub(d1, vol_sqrt_t, "d2");

    const ir::Value n_d1 = b.call(f_cndf, {d1}, "n_d1");
    const ir::Value n_d2 = b.call(f_cndf, {d2}, "n_d2");
    const ir::Value disc = b.call(f_exp, {b.fmul(rate, t)}, "disc");
    const ir::Value price = b.fsub(b.fmul(s, n_d1),
                                   b.fmul(b.fmul(k, disc), n_d2), "price");

    b.store(b.fadd(b.load(ir::Type::f32(), sum), price), sum);
    // Threshold branch: data-dependent NLT divergence point.
    const ir::Value deep =
        b.fcmp(ir::CmpPred::SGt, price, b.f32(25.0f), "deep");
    if_then(b, deep, [&] {
      b.store(b.add(b.load(ir::Type::i32(), in_money), b.i32(1)), in_money);
    });
    // Every 32nd price goes to output at 2 significant digits — the
    // paper's floating-point format-masking scenario (§IV-E).
    const ir::Value sampled = b.icmp(
        ir::CmpPred::Eq, b.and_(i, b.i32(31)), b.i32(0));
    if_then(b, sampled,
            [&] { b.print_float(price, /*precision=*/2); });
  });

  b.print_float(b.load(ir::Type::f32(), sum), /*precision=*/6);
  b.print_int(b.load(ir::Type::i32(), in_money));
  b.ret();
  b.end_function();
  return m;
}

}  // namespace trident::workloads
