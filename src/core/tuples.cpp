#include "core/tuples.h"

#include <algorithm>
#include <cmath>

#include "ir/eval.h"
#include "support/bits.h"

namespace trident::core {

using support::low_mask;

namespace {

// Probability that flipping a uniformly-chosen bit of operand
// `operand_index` changes the comparison outcome, averaged over the
// profiled operand samples. The paper's `cmp sgt $1, 0` example (only the
// sign bit matters -> 1/32) falls out of this computation.
double cmp_flip_prob(const ir::Instruction& inst, unsigned width,
                     const std::vector<std::vector<uint64_t>>& samples,
                     uint32_t operand_index, bool is_fcmp) {
  if (samples.empty() || width == 0) return 1.0;
  double total = 0;
  for (const auto& ops : samples) {
    if (ops.size() < 2) continue;
    const uint64_t a = ops[0], b = ops[1];
    const bool base = is_fcmp ? ir::eval_fcmp(inst.pred, width, a, b)
                              : ir::eval_icmp(inst.pred, width, a, b);
    unsigned changed = 0;
    for (unsigned bit = 0; bit < width; ++bit) {
      uint64_t fa = a, fb = b;
      if (operand_index == 0) {
        fa = support::flip_bit(a, bit, width);
      } else {
        fb = support::flip_bit(b, bit, width);
      }
      const bool flipped = is_fcmp ? ir::eval_fcmp(inst.pred, width, fa, fb)
                                   : ir::eval_icmp(inst.pred, width, fa, fb);
      if (flipped != base) ++changed;
    }
    total += static_cast<double>(changed) / width;
  }
  return total / static_cast<double>(samples.size());
}

// Probability a bit flip in one operand of a bitwise and/or survives to
// the result: for AND, a flipped bit of `a` matters iff the matching bit
// of `b` is 1; for OR, iff it is 0.
double bitwise_prob(ir::Opcode op, unsigned width,
                    const std::vector<std::vector<uint64_t>>& samples,
                    uint32_t operand_index) {
  if (samples.empty() || width == 0) return 1.0;
  double total = 0;
  for (const auto& ops : samples) {
    if (ops.size() < 2) continue;
    const uint64_t other = ops[1 - operand_index];
    const unsigned live =
        op == ir::Opcode::And
            ? support::popcount_low(other, width)
            : width - support::popcount_low(other, width);
    total += static_cast<double>(live) / width;
  }
  return total / static_cast<double>(samples.size());
}

// Fraction of value bits surviving a shift by the profiled amounts.
double shift_value_prob(unsigned width,
                        const std::vector<std::vector<uint64_t>>& samples) {
  if (samples.empty() || width == 0) return 1.0;
  double total = 0;
  for (const auto& ops : samples) {
    if (ops.size() < 2) continue;
    const unsigned s = static_cast<unsigned>(ops[1] % width);
    total += static_cast<double>(width - s) / width;
  }
  return total / static_cast<double>(samples.size());
}

// Probability a bit flip turns the divisor into zero (a trap).
double div_zero_prob(unsigned width,
                     const std::vector<std::vector<uint64_t>>& samples) {
  if (samples.empty() || width == 0) return 0.0;
  double total = 0;
  for (const auto& ops : samples) {
    if (ops.size() < 2) continue;
    // Exactly one bit set: flipping that bit yields zero.
    if (support::popcount_low(ops[1], width) == 1) total += 1.0 / width;
  }
  return total / static_cast<double>(samples.size());
}

// Exact per-bit propagation through a float arithmetic op: a flipped
// operand bit propagates iff it changes the result's bit pattern. This
// captures absorption (deltas below the result's ulp vanish) and
// cancellation, which dominate masking in float-heavy kernels.
double float_op_prob(ir::Opcode op, unsigned width,
                     const std::vector<std::vector<uint64_t>>& samples,
                     uint32_t operand_index) {
  if (samples.empty() || width == 0) return 1.0;
  const auto eval = [&](uint64_t a, uint64_t b) -> uint64_t {
    if (width == 32) {
      const float x = support::bits_to_f32(a), y = support::bits_to_f32(b);
      float r = 0;
      switch (op) {
        case ir::Opcode::FAdd: r = x + y; break;
        case ir::Opcode::FSub: r = x - y; break;
        case ir::Opcode::FMul: r = x * y; break;
        default: r = x / y; break;
      }
      return support::f32_to_bits(r);
    }
    const double x = support::bits_to_f64(a), y = support::bits_to_f64(b);
    double r = 0;
    switch (op) {
      case ir::Opcode::FAdd: r = x + y; break;
      case ir::Opcode::FSub: r = x - y; break;
      case ir::Opcode::FMul: r = x * y; break;
      default: r = x / y; break;
    }
    return support::f64_to_bits(r);
  };
  double total = 0;
  for (const auto& ops : samples) {
    if (ops.size() < 2) continue;
    const uint64_t base = eval(ops[0], ops[1]);
    unsigned changed = 0;
    for (unsigned bit = 0; bit < width; ++bit) {
      uint64_t a = ops[0], b = ops[1];
      if (operand_index == 0) {
        a = support::flip_bit(a, bit, width);
      } else {
        b = support::flip_bit(b, bit, width);
      }
      if (eval(a, b) != base) ++changed;
    }
    total += static_cast<double>(changed) / width;
  }
  return total / static_cast<double>(samples.size());
}

}  // namespace

double TupleModel::static_logic_bound(ir::InstRef ref,
                                      uint32_t operand_index) const {
  const auto& func = module_.functions[ref.func];
  const auto& inst = func.insts[ref.inst];
  const unsigned w = inst.type.width();
  if (w == 0) return 1.0;
  const auto& other = inst.operands[1 - operand_index];
  // Bits of the other operand that provably force the result bit —
  // zeros for AND, ones for OR — mask a flip in this operand.
  uint64_t forced = 0;
  if (other.is_const()) {
    const uint64_t raw = func.constants[other.index].raw;
    forced = inst.op == ir::Opcode::And ? ~raw : raw;
  } else if (bits_ != nullptr && other.is_inst()) {
    const auto& kb = bits_->known({ref.func, other.index});
    forced = inst.op == ir::Opcode::And ? kb.zeros : kb.ones;
  } else {
    return 1.0;
  }
  const unsigned live = w - support::popcount_low(forced, w);
  return static_cast<double>(live) / w;
}

double TupleModel::address_crash_prob(ir::InstRef ref,
                                      uint32_t addr_operand) const {
  const auto& func = module_.functions[ref.func];
  const auto& samples = profile_.funcs[ref.func].operand_samples[ref.inst];
  if (samples.empty()) return 0.5;  // no profile data: split the odds
  const auto& inst = func.insts[ref.inst];
  const unsigned bytes =
      inst.op == ir::Opcode::Load ? inst.type.store_size()
      : inst.op == ir::Opcode::Memcpy
          ? 1  // byte-granular accesses
          : func.value_type(inst.operands[0]).store_size();

  // Faults reach the address through the register chain that computed
  // it. When that is `gep base, index` the perturbable address bits are
  // only index_width + log2(elem_size); flipping bits above that range
  // cannot happen, and counting them grossly over-states crashes.
  unsigned addr_bits = 64;
  const auto& addr_value = inst.operands[addr_operand];
  if (addr_value.is_inst()) {
    const auto& def = func.insts[addr_value.index];
    if (def.op == ir::Opcode::Gep) {
      unsigned scale_bits = 0;
      while ((1ULL << scale_bits) < def.imm) ++scale_bits;
      addr_bits = std::min<unsigned>(
          64, func.value_type(def.operands[1]).width() + scale_bits);
    }
  }

  double total = 0;
  unsigned counted = 0;
  for (const auto& ops : samples) {
    if (ops.size() <= addr_operand) continue;
    const uint64_t addr = ops[addr_operand];
    unsigned invalid = 0;
    for (unsigned bit = 0; bit < addr_bits; ++bit) {
      const uint64_t flipped = addr ^ (1ULL << bit);
      if (!profile_.address_valid(flipped, bytes)) ++invalid;
    }
    total += static_cast<double>(invalid) / addr_bits;
    ++counted;
  }
  return counted == 0 ? 0.5 : total / counted;
}

double TupleModel::fp_format_propagation(unsigned bits, unsigned precision) {
  // §IV-E: only mantissa-bit errors can hide in the digits the format
  // cuts off; exponent/sign errors change the magnitude and survive.
  const unsigned mantissa = bits == 32 ? 23 : 52;
  const unsigned digits = bits == 32 ? 7 : 16;  // type's decimal precision
  if (precision == 0 || precision >= digits) return 1.0;
  const double kept = static_cast<double>(precision) / digits;
  return ((bits - mantissa) + mantissa * kept) / static_cast<double>(bits);
}

double TupleModel::fp_format_propagation_attenuated(unsigned bits,
                                                    double digits,
                                                    double atten_bits) {
  if (bits != 32 && bits != 64) return 1.0;
  const unsigned mantissa = bits == 32 ? 23 : 52;
  const unsigned type_digits = bits == 32 ? 7 : 16;
  if (digits <= 0 || digits >= type_digits) {
    digits = type_digits;  // full precision printed: only atten masks
  }
  // A flip of mantissa bit k carries relative delta ~2^(k - mantissa);
  // after 2^-atten attenuation it reaches the printed digits iff
  // k > mantissa - digits * log2(10) + atten. Exponent and sign flips
  // change the magnitude by orders of magnitude and always survive.
  constexpr double kBitsPerDigit = 3.321928;
  const double visible = std::clamp(digits * kBitsPerDigit - atten_bits,
                                    0.0, static_cast<double>(mantissa));
  return ((bits - mantissa) + visible) / static_cast<double>(bits);
}

Tuple TupleModel::tuple(ir::InstRef ref, uint32_t operand_index) const {
  const auto& func = module_.functions[ref.func];
  const auto& inst = func.insts[ref.inst];
  const auto& samples = profile_.funcs[ref.func].operand_samples[ref.inst];

  Tuple t;
  switch (inst.op) {
    case ir::Opcode::ICmp:
    case ir::Opcode::FCmp: {
      const unsigned w = func.value_type(inst.operands[0]).width();
      t.propagate = cmp_flip_prob(inst, w, samples, operand_index,
                                  inst.op == ir::Opcode::FCmp);
      t.mask = 1.0 - t.propagate;
      break;
    }
    case ir::Opcode::And:
    case ir::Opcode::Or: {
      // Profiled estimate, capped by what the other operand's bits force
      // statically: a constant (or known-bits, under bit_refine) mask
      // applies on every execution, even with an empty profile.
      const double profiled =
          bitwise_prob(inst.op, inst.type.width(), samples, operand_index);
      const double bound = static_logic_bound(ref, operand_index);
      t.propagate = samples.empty() ? bound : std::min(profiled, bound);
      t.mask = 1.0 - t.propagate;
      break;
    }
    case ir::Opcode::Xor:
      break;  // xor moves every bit: (1, 0, 0)
    case ir::Opcode::FAdd:
    case ir::Opcode::FSub:
    case ir::Opcode::FMul:
    case ir::Opcode::FDiv:
      t.propagate = float_op_prob(inst.op, inst.type.width(), samples,
                                  operand_index);
      t.mask = 1.0 - t.propagate;
      // Relative-magnitude attenuation: only additive ops change the
      // relative size of a fault (mul/div preserve it).
      if (inst.op == ir::Opcode::FAdd || inst.op == ir::Opcode::FSub) {
        const unsigned w = inst.type.width();
        double total = 0;
        unsigned counted = 0;
        for (const auto& ops : samples) {
          if (ops.size() < 2) continue;
          const double in =
              w == 32 ? support::bits_to_f32(ops[operand_index])
                      : support::bits_to_f64(ops[operand_index]);
          const double a =
              w == 32 ? support::bits_to_f32(ops[0])
                      : support::bits_to_f64(ops[0]);
          const double b =
              w == 32 ? support::bits_to_f32(ops[1])
                      : support::bits_to_f64(ops[1]);
          const double out = inst.op == ir::Opcode::FAdd ? a + b : a - b;
          if (in == 0.0 || !std::isfinite(in) || !std::isfinite(out)) {
            continue;
          }
          const double ratio = std::abs(out) / std::abs(in);
          total += std::clamp(std::log2(std::max(ratio, 1e-30)), -16.0, 80.0);
          ++counted;
        }
        if (counted > 0) t.atten = total / counted;
      }
      break;
    case ir::Opcode::Shl:
    case ir::Opcode::LShr:
    case ir::Opcode::AShr:
      if (operand_index == 0) {
        t.propagate = shift_value_prob(inst.type.width(), samples);
        // A constant shift amount discards exactly s of the w value
        // bits on every execution, profile or not.
        if (inst.operands[1].is_const()) {
          const unsigned w = inst.type.width();
          const unsigned s = static_cast<unsigned>(
              func.constants[inst.operands[1].index].raw % w);
          t.propagate = static_cast<double>(w - s) / w;
        }
        t.mask = 1.0 - t.propagate;
      }
      // Errors in the shift amount always change the result: (1, 0, 0).
      break;
    case ir::Opcode::Trunc: {
      const unsigned from = func.value_type(inst.operands[0]).width();
      t.propagate = static_cast<double>(inst.type.width()) / from;
      t.mask = 1.0 - t.propagate;
      break;
    }
    case ir::Opcode::Load:
      // operand 0 is the address: a corrupted address is overwhelmingly a
      // trap; the non-trapping remainder reads a wrong-but-valid location
      // and propagates.
      t.crash = address_crash_prob(ref, 0);
      t.propagate = 1.0 - t.crash;
      break;
    case ir::Opcode::Memcpy: {
      // Either pointer corrupted: mostly a trap; a surviving flip copies
      // the wrong region (untracked arbitrary corruption, like the
      // store-address case).
      t.crash = address_crash_prob(ref, operand_index);
      t.propagate = 0.0;
      t.mask = 1.0 - t.crash;
      break;
    }
    case ir::Opcode::Store:
      if (operand_index == 1) {
        // Corrupted store address: trap with probability crash; the
        // survivors corrupt an arbitrary location, which the paper
        // explicitly does not track (§VII-A "Errors in Store Address") —
        // modeled as masked here, and called out in DESIGN.md.
        t.crash = address_crash_prob(ref, 1);
        t.propagate = 0.0;
        t.mask = 1.0 - t.crash;
      }
      // operand 0 (the value) propagates into memory: (1, 0, 0).
      break;
    case ir::Opcode::Select: {
      if (operand_index == 0) break;  // a flipped condition selects wrong
      if (samples.empty()) break;
      // Min/max idiom — select(cmp(a, b), a, b): the corrupted arm only
      // propagates if it is still (or newly) selected, which is exactly
      // computable per bit flip. This captures the magnitude masking that
      // min/max reductions apply to upsets.
      const auto& cond = inst.operands[0];
      if (cond.is_inst()) {
        const auto& cmp = func.insts[cond.index];
        if (cmp.is_cmp() && cmp.operands.size() == 2) {
          int map1 = -1, map2 = -1;  // select arm -> cmp operand position
          for (int c = 0; c < 2; ++c) {
            if (cmp.operands[c] == inst.operands[1]) map1 = c;
            if (cmp.operands[c] == inst.operands[2]) map2 = c;
          }
          if (map1 >= 0 && map2 >= 0 && map1 != map2) {
            const unsigned w = inst.type.width();
            const bool is_f = cmp.op == ir::Opcode::FCmp;
            double total = 0;
            for (const auto& ops : samples) {
              if (ops.size() < 3) continue;
              const uint64_t arm[2] = {ops[1], ops[2]};
              uint64_t cops[2];
              cops[map1] = arm[0];
              cops[map2] = arm[1];
              const bool c0 = is_f
                                  ? ir::eval_fcmp(cmp.pred, w, cops[0], cops[1])
                                  : ir::eval_icmp(cmp.pred, w, cops[0], cops[1]);
              const uint64_t base = c0 ? arm[0] : arm[1];
              unsigned changed = 0;
              for (unsigned bit = 0; bit < w; ++bit) {
                uint64_t a2[2] = {arm[0], arm[1]};
                a2[operand_index - 1] =
                    support::flip_bit(a2[operand_index - 1], bit, w);
                uint64_t c2[2];
                c2[map1] = a2[0];
                c2[map2] = a2[1];
                const bool cf = is_f
                                    ? ir::eval_fcmp(cmp.pred, w, c2[0], c2[1])
                                    : ir::eval_icmp(cmp.pred, w, c2[0], c2[1]);
                // The corruption propagates onward only if the min/max
                // retains the corrupted arm with a changed value; picking
                // the clean arm discards the upset (the reduction's
                // magnitude masking).
                const bool kept_corrupted = operand_index == 1 ? cf : !cf;
                const uint64_t out = cf ? a2[0] : a2[1];
                if (kept_corrupted && out != base) ++changed;
              }
              total += static_cast<double>(changed) / w;
            }
            t.propagate = total / static_cast<double>(samples.size());
            t.mask = 1.0 - t.propagate;
            break;
          }
        }
      }
      // Generic select: a corrupted arm propagates only when the
      // condition picks it; the pick rate comes from profiled values.
      double taken = 0;
      for (const auto& ops : samples) {
        if (!ops.empty() && (ops[0] & 1)) taken += 1;
      }
      taken /= static_cast<double>(samples.size());
      t.propagate = operand_index == 1 ? taken : 1.0 - taken;
      t.mask = 1.0 - t.propagate;
      break;
    }
    case ir::Opcode::SDiv:
    case ir::Opcode::UDiv:
    case ir::Opcode::SRem:
    case ir::Opcode::URem:
      if (operand_index == 1) {
        t.crash = div_zero_prob(inst.type.width(), samples);
        t.propagate = 1.0 - t.crash;
      }
      break;
    default:
      // The paper's simplifying heuristic (§IV-C): all other instructions
      // neither move nor discard corrupted bits -> (1, 0, 0).
      break;
  }
  return t;
}

}  // namespace trident::core
