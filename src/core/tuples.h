// fs tuples (paper §IV-C): for each instruction and operand position, the
// (propagate, mask, crash) probabilities given that this operand carries
// an erroneous value. Following the paper, only comparisons, logic
// operators, shifts and casts have non-trivial masking; loads, stores and
// divisions have crash entries derived from the profiled memory-segment
// map / operand values; every other opcode propagates with probability 1.
#pragma once

#include <cstdint>

#include "analysis/bit_facts.h"
#include "ir/module.h"
#include "profiler/profile.h"

namespace trident::core {

struct Tuple {
  double propagate = 1.0;
  double mask = 0.0;
  double crash = 0.0;
  // Extension over the paper (see DESIGN.md §4): expected attenuation, in
  // bits, of a float fault's RELATIVE magnitude across this instruction.
  // Nonzero only for fadd/fsub, where a small corrupted term entering a
  // larger sum shrinks relatively (atten = log2|out / in|, averaged over
  // profiled operands; negative = amplification by cancellation). The
  // generalized output-format rule consumes the path sum of these.
  double atten = 0.0;
};

class TupleModel {
 public:
  /// `bits` (optional, must outlive the model) supplies known-bits
  /// facts that sharpen logic-op and shift tuples beyond what the
  /// profile shows (the BitMaskRefinement of ModelConfig::bit_refine).
  /// Independently of `bits`, a logic op with an IR-*constant* operand
  /// is always masked by the constant's bits — even with an empty
  /// profile.
  TupleModel(const ir::Module& module, const prof::Profile& profile,
             const analysis::BitFacts* bits = nullptr)
      : module_(module), profile_(profile), bits_(bits) {}

  /// Tuple of instruction `ref` for an error arriving in operand
  /// `operand_index`. Deterministic; cheap enough to call repeatedly
  /// (address-crash estimates are memoized by the caller via the
  /// SequenceTracer's memoization).
  Tuple tuple(ir::InstRef ref, uint32_t operand_index) const;

  /// Probability a random single-bit flip of the address operand of a
  /// load/store leaves all profiled segments (i.e. traps). Derived from
  /// the profiled address samples and segment map (paper: "approximated
  /// by profiling memory size allocated for the program").
  double address_crash_prob(ir::InstRef ref, uint32_t addr_operand) const;

  /// The paper's floating-point output-format masking rule (§IV-E):
  /// probability that an error in a float value of width `bits` survives
  /// printing with `precision` significant decimal digits.
  static double fp_format_propagation(unsigned bits, unsigned precision);

  /// Generalization of the rule above with relative-magnitude attenuation
  /// `atten_bits` accumulated along the propagation path: a mantissa-bit
  /// fault survives formatting iff its relative delta, shrunk by
  /// 2^-atten, still reaches the printed digits. atten = 0 reproduces the
  /// paper's formula (digits map to mantissa bits at ~3.32 bits/digit).
  static double fp_format_propagation_attenuated(unsigned bits,
                                                 double digits,
                                                 double atten_bits);

 private:
  /// Fraction of value bits that can survive the and/or at `ref` given
  /// the other operand's statically known bits (1.0 if nothing known).
  double static_logic_bound(ir::InstRef ref, uint32_t operand_index) const;

  const ir::Module& module_;
  const prof::Profile& profile_;
  const analysis::BitFacts* bits_ = nullptr;
};

}  // namespace trident::core
