#include "core/sequence.h"

#include <algorithm>
#include <cmath>

namespace trident::core {

namespace {
// Caps survival so cancellation-driven amplification cannot blow up the
// linear-domain bookkeeping.
constexpr double kMaxSurv = 65536.0;  // 2^16 amplification
constexpr double kMinSurv = 1e-30;
}  // namespace

double surv_to_atten_bits(double surv) {
  return -std::log2(std::clamp(surv, kMinSurv, kMaxSurv));
}

double Terminals::output_mass() const {
  double total = 0;
  for (const auto& term : outputs) total += term.prob;
  return total;
}

void Terminals::add_output(const OutputTerm& term) {
  // Merge into an existing bucket with the same print shape. When
  // several paths reach the same terminal the SDC is visible if ANY
  // corrupted instance's delta is, so the merged survival takes the
  // best-surviving path (a weighted average would let heavily-attenuated
  // side paths dilute an un-attenuated main path — the stencil pattern,
  // where the identity term passes the value through unattenuated).
  for (auto& existing : outputs) {
    if (existing.print_width == term.print_width &&
        std::abs(existing.digits - term.digits) < 0.5) {
      existing.prob += term.prob;
      existing.surv = std::max(existing.surv, term.surv);
      return;
    }
  }
  outputs.push_back(term);
}

void Terminals::add_store(ir::InstRef ref, double p, double surv) {
  for (auto& term : stores) {
    if (term.ref == ref) {
      term.prob += p;
      term.surv = std::max(term.surv, surv);
      return;
    }
  }
  stores.push_back({ref, p, surv});
}

void Terminals::add_branch(ir::InstRef ref, double p) {
  for (auto& [r, prob] : branches) {
    if (r == ref) {
      prob += p;
      return;
    }
  }
  branches.emplace_back(ref, p);
}

void Terminals::accumulate(const Terminals& other, double scale,
                           double step_surv) {
  crash += other.crash * scale;
  for (const auto& term : other.outputs) {
    OutputTerm shifted = term;
    shifted.prob *= scale;
    shifted.surv = std::clamp(term.surv * step_surv, kMinSurv, kMaxSurv);
    add_output(shifted);
  }
  for (const auto& term : other.stores) {
    add_store(term.ref, term.prob * scale,
              std::clamp(term.surv * step_surv, kMinSurv, kMaxSurv));
  }
  for (const auto& [r, p] : other.branches) add_branch(r, p * scale);
}

SequenceTracer::SequenceTracer(const ir::Module& module,
                               const prof::Profile& profile,
                               TraceConfig config,
                               const analysis::BitFacts* bits)
    : module_(module),
      profile_(profile),
      tuples_(module, profile, bits),
      config_(config),
      call_graph_(module) {
  def_use_.reserve(module.functions.size());
  for (const auto& f : module.functions) def_use_.emplace_back(f);
  analyses_.resize(module.functions.size());
}

bool SequenceTracer::control_dependent(uint32_t func, uint32_t branch_block,
                                       uint32_t block) const {
  std::lock_guard lock(analyses_mutex_);
  auto& fa = analyses_[func];
  if (!fa) fa = std::make_unique<FuncAnalyses>(module_.functions[func]);
  auto [it, inserted] = fa->dep_cache.try_emplace(branch_block);
  if (inserted) it->second = fa->cd.dependent_on_branch(branch_block);
  const auto& deps = it->second;
  return std::binary_search(deps.begin(), deps.end(), block);
}

std::vector<SequenceTracer::Guard> SequenceTracer::find_guards(
    uint32_t func, const std::vector<analysis::DefUse::Use>& uses,
    double def_exec) const {
  std::vector<Guard> guards;
  const auto& f = module_.functions[func];
  for (uint32_t i = 0; i < uses.size(); ++i) {
    const auto& user = f.insts[uses[i].user];
    const double uexec =
        static_cast<double>(profile_.exec({func, uses[i].user}));
    if (uexec == 0) continue;
    const double ratio = std::min(1.0, uexec / def_exec);
    if (user.op == ir::Opcode::CondBr) {
      guards.push_back({user.block, ratio, i});
    } else if (user.is_cmp()) {
      // One comparison away: value -> cmp -> condbr.
      const double flip =
          ratio * tuples_.tuple({func, uses[i].user}, uses[i].operand)
                      .propagate;
      if (flip < config_.prob_cutoff) continue;
      for (const auto& cuse : def_use_[func].users_of_inst(uses[i].user)) {
        if (f.insts[cuse.user].op == ir::Opcode::CondBr &&
            profile_.exec({func, cuse.user}) > 0) {
          guards.push_back({f.insts[cuse.user].block, flip, i});
        }
      }
    }
  }
  return guards;
}

Terminals SequenceTracer::trace(ir::InstRef ref) const {
  TraceCtx ctx;
  return trace_node(ref.func, ref.inst, /*is_arg=*/false, ctx);
}

Terminals SequenceTracer::trace_arg(uint32_t func, uint32_t arg) const {
  TraceCtx ctx;
  return trace_node(func, arg, /*is_arg=*/true, ctx);
}

Terminals SequenceTracer::trace_node(uint32_t func, uint32_t index,
                                     bool is_arg, TraceCtx& ctx,
                                     uint32_t depth) const {
  const uint64_t k = key(func, index, is_arg);
  memo_lookups_.fetch_add(1, std::memory_order_relaxed);
  {
    std::shared_lock lock(memo_mutex_);
    if (const auto it = memo_.find(k); it != memo_.end()) {
      memo_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  if (ctx.stack.count(k) != 0 || depth > config_.max_depth) {
    // Cycle (e.g. loop-carried phi) or depth cap: cut here, and mark the
    // enclosing computations as stack-dependent / truncated so they are
    // not memoized.
    ++ctx.cuts;
    cycle_cuts_.fetch_add(1, std::memory_order_relaxed);
    return {};
  }
  ctx.stack.insert(k);
  const uint64_t cuts_before = ctx.cuts;
  Terminals result = compute(func, index, is_arg, ctx, depth);
  ctx.stack.erase(k);
  if (ctx.cuts == cuts_before) {
    // Clean results never depended on the stack, so every thread that
    // computes this node derives the same value: first insert wins and
    // any concurrent duplicates are identical.
    std::unique_lock lock(memo_mutex_);
    memo_.emplace(k, result);
  }
  return result;
}

Terminals SequenceTracer::compute(uint32_t func, uint32_t index, bool is_arg,
                                  TraceCtx& ctx, uint32_t depth) const {
  Terminals out;
  if (depth > config_.max_depth) return out;

  // Dynamic execution count of the definition, used to weight each use by
  // how often it actually consumes the (corrupted) value.
  double def_exec = 0;
  if (is_arg) {
    for (const auto& site : call_graph_.callers_of(func)) {
      def_exec += static_cast<double>(
          profile_.exec({site.caller, site.inst}));
    }
    if (def_exec == 0) def_exec = 1;  // entry function: executed once
  } else {
    def_exec = static_cast<double>(profile_.exec({func, index}));
    if (def_exec == 0) return out;  // dead at runtime: nothing propagates
  }

  const auto& uses = is_arg ? def_use_[func].users_of_arg(index)
                            : def_use_[func].users_of_inst(index);
  const auto guards = config_.guard_damping
                          ? find_guards(func, uses, def_exec)
                          : std::vector<Guard>{};
  for (uint32_t i = 0; i < uses.size(); ++i) {
    const auto& use = uses[i];
    const ir::InstRef uref{func, use.user};
    const double uexec = static_cast<double>(profile_.exec(uref));
    if (uexec == 0) continue;
    double ratio = std::min(1.0, uexec / def_exec);
    // Damp uses that only execute if a data-dependent guard branch is
    // NOT flipped by the same fault (see Guard above).
    for (const auto& g : guards) {
      if (g.source_use == i) continue;
      const uint32_t ublock = module_.functions[func].insts[use.user].block;
      if (control_dependent(func, g.branch_block, ublock)) {
        ratio *= 1.0 - std::min(1.0, g.flip);
      }
    }
    if (ratio < config_.prob_cutoff) continue;
    follow_use(func, use, ratio, ctx, depth, out);
  }
  // Each entry is a probability for this single fault, not an expected
  // count: a value consumed by several users can reach a terminal at
  // most once, so cap every accumulated mass at 1 (Algorithm 1's cap).
  const double mass = out.output_mass();
  if (mass > 1.0) {
    for (auto& term : out.outputs) term.prob /= mass;
  }
  out.crash = std::min(1.0, out.crash);
  for (auto& term : out.stores) term.prob = std::min(1.0, term.prob);
  for (auto& [ref, p] : out.branches) p = std::min(1.0, p);
  return out;
}

void SequenceTracer::follow_use(uint32_t func,
                                const analysis::DefUse::Use& use,
                                double ratio, TraceCtx& ctx, uint32_t depth,
                                Terminals& out) const {
  const auto& f = module_.functions[func];
  const auto& user = f.insts[use.user];
  const ir::InstRef uref{func, use.user};

  switch (user.op) {
    case ir::Opcode::Store:
      if (use.operand == 0) {
        // Corrupted value written to memory; no attenuation yet from
        // this node (upstream steps fold theirs in via accumulate).
        out.add_store(uref, ratio, 1.0);
      } else {
        const double crash = tuples_.tuple(uref, 1).crash;
        out.crash += ratio * crash;
        if (config_.track_store_addr) {
          // Wrong-but-valid target: the store's data structure is
          // corrupted (wrong cell written, right cell stale). A whole
          // cell is wrong, so no fractional attenuation applies.
          out.add_store(uref, ratio * (1.0 - crash), 1.0);
        }
      }
      return;
    case ir::Opcode::CondBr:
      out.add_branch(uref, ratio);
      return;
    case ir::Opcode::Print: {
      const auto spec = ir::PrintSpec::unpack(user.imm);
      if (!spec.is_output) return;  // debug prints do not define SDCs
      OutputTerm term;
      term.prob = ratio;
      const auto t = f.value_type(user.operands[0]);
      if (spec.kind == ir::PrintSpec::Kind::Float && t.is_float()) {
        term.digits = spec.precision;
        term.print_width = t.width();
      }
      out.add_output(term);
      return;
    }
    case ir::Opcode::Ret: {
      // The corrupted value returns to every call site, weighted by how
      // often each site performs the call.
      const auto& sites = call_graph_.callers_of(func);
      double total = 0;
      for (const auto& site : sites) {
        total += static_cast<double>(profile_.exec({site.caller, site.inst}));
      }
      if (total == 0) return;
      for (const auto& site : sites) {
        const double w =
            static_cast<double>(profile_.exec({site.caller, site.inst})) /
            total;
        if (w < config_.prob_cutoff) continue;
        const auto rec =
            trace_node(site.caller, site.inst, false, ctx, depth + 1);
        out.accumulate(rec, ratio * w, 1.0);
      }
      return;
    }
    case ir::Opcode::Call: {
      // The corrupted value enters the callee as argument `use.operand`.
      if (user.callee >= module_.functions.size()) return;
      const auto rec =
          trace_node(user.callee, use.operand, true, ctx, depth + 1);
      out.accumulate(rec, ratio, 1.0);
      return;
    }
    case ir::Opcode::Detect:
      return;  // detectors exist only in protected binaries
    default: {
      const Tuple t = tuples_.tuple(uref, use.operand);
      out.crash += ratio * t.crash;
      const double p = ratio * t.propagate;
      if (p < config_.prob_cutoff || !user.has_result()) return;
      const auto rec = trace_node(func, use.user, false, ctx, depth + 1);
      out.accumulate(
          rec, p,
          config_.track_attenuation ? std::exp2(-t.atten) : 1.0);
      return;
    }
  }
}

}  // namespace trident::core
