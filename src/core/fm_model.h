// fm: the memory sub-model (paper §IV-E). Tracks a corrupted store
// through the pruned memory-dependence graph (profiled static store→load
// edges) to the program output, re-entering fs (sequence tracing from
// each reloading load) and fc (when a reloaded value reaches a branch).
//
// Store-to-store dependences form cycles for accumulator patterns
// (store sum -> load sum -> add -> store sum), so the per-store output
// probabilities are the solution of the monotone fixed point
//     f(S) = min(1, b_S + sum_T A[S][T] * f(T))
// solved by value iteration — an equivalent closed-form treatment of the
// paper's memoized traversal that also converges on cyclic graphs.
//
// Alongside f the solver tracks, per store, a probability-weighted
// summary of HOW the fault reaches output: the fraction through exact
// (integer) prints, and for float prints the average accumulated
// magnitude attenuation, printed digits and float width. The top-level
// model combines these with the generalized output-format rule.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/fc_model.h"
#include "core/sequence.h"

namespace trident::core {

struct FmConfig {
  bool enable_fc = true;  // follow branch terminals through fc
  uint32_t max_iterations = 4096;
  double epsilon = 1e-7;
  double prob_cutoff = 1e-9;
};

/// How a corrupted store reaches program output.
struct StoreOutputProfile {
  double prob = 0;        // probability of reaching output at all
  double exact_frac = 1;  // fraction of that mass through exact prints
  double surv = 1;        // avg survival E[2^-atten] of the float fraction
  double digits = 0;      // avg printed digits of the float fraction
  unsigned print_width = 0;  // representative float width (32/64)
};

class FmModel {
 public:
  FmModel(const ir::Module& module, const prof::Profile& profile,
          const SequenceTracer& tracer, const FcModel& fc,
          FmConfig config = {});

  /// Probability that a corrupted dynamic execution of `store` propagates
  /// to the program output (raw, before output-format masking).
  double store_to_output(ir::InstRef store) const;

  /// Full output profile of a corrupted store (for the format rule).
  StoreOutputProfile store_output_profile(ir::InstRef store) const;

  /// Probability that a corrupted branch propagates to program output via
  /// the output/store instructions it corrupts (capped at 1). Control
  /// corruption replaces whole values, so no attenuation applies.
  double branch_to_output(ir::InstRef branch) const;

  /// Number of value-iteration sweeps the solver needed (0 before the
  /// first query). Exposed for the scalability bench.
  uint32_t solver_iterations() const { return iterations_; }

 private:
  struct Term {
    uint32_t idx = 0;       // successor store index
    double coeff = 0;       // probability coefficient
    double step_surv = 1;   // survival from the load to that store
  };
  struct Row {
    double b_exact = 0;   // direct exact-print output mass
    double b_float = 0;   // direct float-print output mass
    double b_surv = 0;    // sum of prob*surv over direct float terms
    double b_digits = 0;  // sum of prob*digits
    double b_width = 0;   // sum of prob*width
    std::vector<Term> terms;
  };
  struct State {
    double exact = 0, flt = 0, surv = 0, digits = 0, width = 0;
  };

  // The whole-graph fixed point is solved once, on first query, under
  // std::call_once (queries may come from any sweep thread); afterwards
  // index_/rows_/state_ are read-only, so queries need no lock.
  void solve() const;
  void solve_impl() const;
  uint32_t store_index(ir::InstRef store) const;

  const ir::Module& module_;
  const prof::Profile& profile_;
  const SequenceTracer& tracer_;
  const FcModel& fc_;
  FmConfig config_;

  mutable std::once_flag solve_once_;
  mutable std::unordered_map<uint64_t, uint32_t> index_;  // packed -> idx
  mutable std::vector<Row> rows_;
  mutable std::vector<State> state_;
  mutable uint32_t iterations_ = 0;
};

}  // namespace trident::core
