#include "core/fc_model.h"

#include <algorithm>
#include <cassert>
#include <mutex>

namespace trident::core {

FcModel::FcModel(const ir::Module& module, const prof::Profile& profile,
                 bool lucky_stores)
    : module_(module), profile_(profile), lucky_stores_(lucky_stores) {
  analyses_.reserve(module.functions.size());
  for (const auto& f : module.functions) {
    analyses_.push_back(std::make_unique<FuncAnalyses>(f));
  }
}

bool FcModel::is_loop_terminating(ir::InstRef branch) const {
  const auto& f = module_.functions[branch.func];
  const auto& inst = f.insts[branch.inst];
  assert(inst.op == ir::Opcode::CondBr);
  const auto& a = *analyses_[branch.func];
  const std::vector<uint32_t> succs{inst.succ[0], inst.succ[1]};
  return a.loops.exiting_loop(inst.block, succs) != ~0u;
}

const FcResult& FcModel::corrupted(ir::InstRef branch) const {
  const uint64_t k = prof::pack(branch);
  memo_lookups_.fetch_add(1, std::memory_order_relaxed);
  {
    std::shared_lock lock(memo_mutex_);
    if (const auto it = memo_.find(k); it != memo_.end()) {
      memo_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Compute outside the lock; concurrent duplicates are identical and
  // try_emplace keeps whichever landed first (unordered_map references
  // are node-stable, so the returned ref survives later inserts).
  FcResult result = compute(branch);
  std::unique_lock lock(memo_mutex_);
  return memo_.try_emplace(k, std::move(result)).first->second;
}

const std::vector<CorruptedStore>& FcModel::corrupted_stores(
    ir::InstRef branch) const {
  return corrupted(branch).stores;
}

namespace {

// Transitive control-dependence closure of one branch edge: the blocks
// directly dependent on the edge, plus everything dependent on branches
// inside that region (the paper's Fig. 3 stores live behind nested
// branches within the region).
std::vector<uint32_t> closure_of_edge(const analysis::ControlDependence& cd,
                                      const ir::Function& f, uint32_t bb,
                                      uint32_t succ) {
  std::vector<uint32_t> region = cd.dependent_on_edge(bb, succ);
  std::vector<uint32_t> work = region;
  const auto member = [&](uint32_t x) {
    return std::find(region.begin(), region.end(), x) != region.end();
  };
  while (!work.empty()) {
    const uint32_t block = work.back();
    work.pop_back();
    if (f.blocks[block].insts.empty()) continue;
    const auto& term = f.inst(f.terminator(block));
    if (term.op != ir::Opcode::CondBr || block == bb) continue;
    for (const auto next : cd.dependent_on_branch(block)) {
      if (!member(next)) {
        region.push_back(next);
        work.push_back(next);
      }
    }
  }
  std::sort(region.begin(), region.end());
  return region;
}

}  // namespace

FcResult FcModel::compute(ir::InstRef branch) const {
  const auto& f = module_.functions[branch.func];
  const auto& inst = f.insts[branch.inst];
  assert(inst.op == ir::Opcode::CondBr);
  const auto& a = *analyses_[branch.func];
  const uint32_t bb = inst.block;

  FcResult out;
  const double branch_exec = static_cast<double>(profile_.exec(branch));
  if (branch_exec == 0) return out;

  const bool lt = is_loop_terminating(branch);
  const double p_taken = profile_.branch_prob_taken(branch);

  // Control-dependence region per direction; an instruction is a
  // candidate if its block's execution is decided by this branch.
  const auto dep_taken = closure_of_edge(a.cd, f, bb, inst.succ[0]);
  const auto dep_fall = closure_of_edge(a.cd, f, bb, inst.succ[1]);
  const auto in = [](const std::vector<uint32_t>& v, uint32_t x) {
    return std::binary_search(v.begin(), v.end(), x);
  };

  for (uint32_t id = 0; id < f.insts.size(); ++id) {
    const auto& cand = f.insts[id];
    const bool is_store = cand.op == ir::Opcode::Store;
    const bool is_output =
        cand.op == ir::Opcode::Print &&
        ir::PrintSpec::unpack(cand.imm).is_output;
    if (!is_store && !is_output) continue;
    const bool on_taken = in(dep_taken, cand.block);
    const bool on_fall = in(dep_fall, cand.block);
    if (!on_taken && !on_fall) continue;

    const double cand_exec =
        static_cast<double>(profile_.exec({branch.func, id}));
    // Pe: the instruction's per-branch-execution probability. This equals
    // the path-probability product the paper computes from CFG edges.
    const double pe = std::min(1.0, cand_exec / branch_exec);
    double pc;
    if (lt) {
      // Eq. 2, with Pb*Pe collapsed to profiled per-iteration frequency
      // (Pb is already reflected in how often the instruction runs per
      // branch execution; see DESIGN.md §4).
      pc = pe;
    } else {
      // Eq. 1: Pc = Pe / Pd. Pd is the probability of the direction that
      // leads to the instruction.
      double pd;
      if (on_taken && on_fall) {
        pd = 1.0;  // reachable either way; no direction discount
      } else {
        pd = on_taken ? p_taken : 1.0 - p_taken;
      }
      pc = pd <= 0 ? 0.0 : std::min(1.0, pe / pd);
    }
    if (is_store && lucky_stores_) {
      // Lucky/coincidentally-correct stores: a skipped or spurious store
      // that writes the value already present corrupts nothing.
      pc *= 1.0 - profile_.silent_store_rate({branch.func, id});
    }
    if (pc > 0) {
      (is_store ? out.stores : out.outputs)
          .push_back({{branch.func, id}, pc});
    }
  }
  return out;
}

}  // namespace trident::core
