#include "core/fm_model.h"

#include <algorithm>
#include <cmath>

namespace trident::core {

FmModel::FmModel(const ir::Module& module, const prof::Profile& profile,
                 const SequenceTracer& tracer, const FcModel& fc,
                 FmConfig config)
    : module_(module),
      profile_(profile),
      tracer_(tracer),
      fc_(fc),
      config_(config) {}

uint32_t FmModel::store_index(ir::InstRef store) const {
  const auto it = index_.find(prof::pack(store));
  return it == index_.end() ? ~0u : it->second;
}

void FmModel::solve() const {
  std::call_once(solve_once_, [this] { solve_impl(); });
}

void FmModel::solve_impl() const {
  // Universe: every static store that is ever reloaded. Stores outside
  // it have no memory successors, so their output probability is 0.
  for (const auto& edge : profile_.mem_edges) {
    index_.try_emplace(prof::pack(edge.store),
                       static_cast<uint32_t>(index_.size()));
  }
  rows_.assign(index_.size(), {});
  state_.assign(index_.size(), {});

  const auto add_term = [&](Row& row, ir::InstRef store, double coeff,
                            double step_surv) {
    if (coeff < config_.prob_cutoff) return;
    const uint32_t idx = store_index(store);
    if (idx == ~0u) return;  // never reloaded: contributes 0
    for (auto& term : row.terms) {
      if (term.idx == idx &&
          std::abs(std::log2(std::max(term.step_surv, 1e-30)) -
                   std::log2(std::max(step_surv, 1e-30))) < 0.5) {
        term.coeff += coeff;
        return;
      }
    }
    row.terms.push_back({idx, coeff, step_surv});
  };

  const auto add_direct = [&](Row& row, const OutputTerm& term,
                              double scale) {
    const double p = term.prob * scale;
    if (p < config_.prob_cutoff) return;
    if (term.print_width == 0) {
      row.b_exact += p;
    } else {
      row.b_float += p;
      row.b_surv += p * term.surv;
      row.b_digits += p * term.digits;
      row.b_width += p * term.print_width;
    }
  };

  for (const auto& edge : profile_.mem_edges) {
    const uint32_t si = store_index(edge.store);
    Row& row = rows_[si];
    const double store_exec =
        static_cast<double>(profile_.exec(edge.store));
    if (store_exec == 0) continue;
    // Probability a given corrupted dynamic store is reloaded by this
    // static load. For the paper's symmetric update/reload loop pairs
    // count == exec(store) and the ratio is 1.
    const double reload =
        std::min(1.0, static_cast<double>(edge.count) / store_exec);
    if (reload < config_.prob_cutoff) continue;

    const Terminals t = tracer_.trace(edge.load);
    for (const auto& term : t.outputs) add_direct(row, term, reload);
    for (const auto& term : t.stores) {
      add_term(row, term.ref, reload * std::min(1.0, term.prob),
               term.surv);
    }
    if (config_.enable_fc) {
      for (const auto& [branch, p] : t.branches) {
        const double pb = reload * std::min(1.0, p);
        if (pb < config_.prob_cutoff) continue;
        const auto& fc_result = fc_.corrupted(branch);
        // Branch-decided prints: the whole line appears/disappears —
        // exact-visible regardless of format.
        for (const auto& co : fc_result.outputs) {
          row.b_exact += pb * co.prob;
        }
        // Branch-decided stores: whole values replaced, no attenuation.
        for (const auto& cs : fc_result.stores) {
          add_term(row, cs.store, pb * cs.prob, 1.0);
        }
      }
    }
  }

  // Joint value iteration: output probability split into exact/float
  // fractions plus the float fraction's attenuation/digits/width
  // numerators. Monotone from 0 and bounded (mass capped at 1 with
  // proportional scaling), so it converges; accumulator cycles with gain
  // ~1 approach the cap geometrically, hence the iteration budget.
  for (iterations_ = 0; iterations_ < config_.max_iterations;
       ++iterations_) {
    double max_delta = 0;
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      State next;
      next.exact = row.b_exact;
      next.flt = row.b_float;
      // Survival is a best-path ratio, not a mass: the SDC is visible if
      // ANY corrupted instance's delta reaches the printed digits, so
      // parallel routes take the max (matching Terminals' merge rule)
      // while each hop composes multiplicatively.
      next.surv = row.b_float > 0 ? row.b_surv / row.b_float : 0.0;
      next.digits = row.b_digits;
      next.width = row.b_width;
      for (const auto& term : row.terms) {
        const State& t = state_[term.idx];
        next.exact += term.coeff * t.exact;
        next.flt += term.coeff * t.flt;
        // Clamped so amplification cycles cannot diverge.
        next.surv = std::min(
            std::max(next.surv, t.surv * term.step_surv), 65536.0);
        next.digits += term.coeff * t.digits;
        next.width += term.coeff * t.width;
      }
      const double mass = next.exact + next.flt;
      if (mass > 1.0) {
        const double scale = 1.0 / mass;
        next.exact *= scale;
        next.flt *= scale;
        next.digits *= scale;
        next.width *= scale;
      }
      max_delta = std::max(max_delta,
                           std::abs(next.exact - state_[i].exact) +
                               std::abs(next.flt - state_[i].flt));
      state_[i] = next;
    }
    if (max_delta < config_.epsilon) break;
  }
}

double FmModel::store_to_output(ir::InstRef store) const {
  solve();
  const uint32_t idx = store_index(store);
  if (idx == ~0u) return 0.0;
  return std::min(1.0, state_[idx].exact + state_[idx].flt);
}

StoreOutputProfile FmModel::store_output_profile(ir::InstRef store) const {
  solve();
  StoreOutputProfile out;
  const uint32_t idx = store_index(store);
  if (idx == ~0u) return out;
  const State& s = state_[idx];
  out.prob = std::min(1.0, s.exact + s.flt);
  if (out.prob <= 0) return out;
  out.exact_frac = s.exact / (s.exact + s.flt);
  if (s.flt > 0) {
    out.surv = s.surv;  // already a best-path ratio
    out.digits = s.digits / s.flt;
    out.print_width = s.width / s.flt >= 48.0 ? 64 : 32;
  }
  return out;
}

double FmModel::branch_to_output(ir::InstRef branch) const {
  solve();
  const auto& fc_result = fc_.corrupted(branch);
  double total = 0;
  // Output instructions whose execution the branch decides are SDCs
  // directly; corrupted stores propagate through memory first. Control
  // corruption replaces whole values, so no format masking applies to
  // the stores' own deltas (their downstream profile still does).
  for (const auto& co : fc_result.outputs) total += co.prob;
  for (const auto& cs : fc_result.stores) {
    if (total >= 1.0) break;
    const auto profile = store_output_profile(cs.store);
    // Whole-value corruption survives float formatting: use raw prob.
    total += cs.prob * profile.prob;
  }
  return std::min(1.0, total);
}

}  // namespace trident::core
