// fs sequence tracing (paper §IV-C): given a fault activated in the
// result register of an instruction, walk the static data-dependent
// instruction sequence(s) forward, aggregating per-instruction tuples,
// until terminals are reached: a store (value operand), a conditional
// branch, or a program-output instruction. Calls and returns are
// followed interprocedurally, weighted by profiled call-site frequency.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/bit_facts.h"
#include "analysis/cfg.h"
#include "analysis/control_dependence.h"
#include "analysis/def_use.h"
#include "analysis/dominators.h"
#include "core/tuples.h"
#include "ir/module.h"
#include "profiler/profile.h"

namespace trident::core {

/// A program-output (print) terminal reached by the traced fault. The
/// fp-format masking is NOT pre-applied: the factor depends on the
/// magnitude attenuation accumulated along the whole path, which grows
/// as callers compose memoized traces, so it is resolved at prediction
/// time (TupleModel::fp_format_propagation_attenuated).
///
/// Attenuation is carried as `surv` = E[2^-atten_bits]: relative deltas
/// compose multiplicatively along a path and their expectation composes
/// linearly across path mixtures, so `surv` can be averaged safely where
/// per-path bit counts cannot (a zero-attenuation path through a mixture
/// keeps its full weight). The effective attenuation is -log2(surv).
struct OutputTerm {
  double prob = 0;
  double surv = 1.0;         // E[2^-attenuation_bits] along the path
  double digits = 0;         // printed significant digits (0 = exact print)
  unsigned print_width = 0;  // float width of the print operand; 0 = int
};

/// A store terminal: the corrupted value enters memory at `ref` with the
/// accumulated survival (the memory sub-model continues from there).
struct StoreTerm {
  ir::InstRef ref;
  double prob = 0;
  double surv = 1.0;
};

/// Effective attenuation in bits of a survival value (clamped to a sane
/// range; surv > 1 = net amplification reads as negative attenuation).
double surv_to_atten_bits(double surv);

/// Where the traced error can end up, with reach probabilities. Per-node
/// masses are capped at 1 (Algorithm 1's cap).
struct Terminals {
  double crash = 0;  // probability of trapping along the way
  std::vector<OutputTerm> outputs;
  std::vector<StoreTerm> stores;
  std::vector<std::pair<ir::InstRef, double>> branches;  // CondBr reached

  /// Raw probability mass of reaching any output (factors unapplied).
  double output_mass() const;

  void add_output(const OutputTerm& term);
  void add_store(ir::InstRef ref, double p, double surv);
  void add_branch(ir::InstRef ref, double p);
  /// Accumulate `other` scaled by `scale`, multiplying every output and
  /// store term's survival by `step_surv` (the 2^-attenuation of the
  /// step being crossed).
  void accumulate(const Terminals& other, double scale, double step_surv);
};

struct TraceConfig {
  uint32_t max_depth = 64;
  double prob_cutoff = 1e-6;
  // Extension over the paper: a corrupted store address that survives the
  // crash check writes a wrong-but-valid location, which we treat as a
  // corruption of the store's memory (the paper leaves this untracked and
  // lists it as its top inaccuracy source, §VII-A). Set false for the
  // paper-faithful behaviour; the ablation bench reports both.
  bool track_store_addr = true;
  // Extension over the paper: accumulate relative-magnitude attenuation
  // along float chains and feed it to the generalized output-format rule
  // (zero attenuation reproduces the paper's §IV-E formula exactly). Set
  // false for the paper-faithful behaviour.
  bool track_attenuation = true;
  // Extension over the paper: damp uses control-dependent on a guard
  // branch whose condition the same fault flips (the induction-variable
  // pattern: a corrupted `i` usually exits the loop before the guarded
  // body's store can crash). Set false for the paper-faithful behaviour.
  bool guard_damping = true;
};

class SequenceTracer {
 public:
  /// `bits` (optional, must outlive the tracer) enables the known-bits
  /// sharpening of logic-op tuples (ModelConfig::bit_refine).
  SequenceTracer(const ir::Module& module, const prof::Profile& profile,
                 TraceConfig config = {},
                 const analysis::BitFacts* bits = nullptr);

  /// Terminals reachable from a corrupted result of `ref`. Memoized,
  /// except for results computed while a def-use cycle was being cut:
  /// those depend on the traversal stack and are recomputed on a clean
  /// stack next time (avoids poisoning the cache with zeroed cycles).
  ///
  /// Thread-safe: the traversal stack is per-call, the memo table is a
  /// read-mostly shared_mutex cache, and only stack-independent (clean)
  /// results are inserted — so concurrent traces may duplicate work but
  /// always produce, and cache, identical values.
  Terminals trace(ir::InstRef ref) const;

  /// Terminals reachable from a corrupted argument `arg` of `func`
  /// (used when following a corrupted call argument into the callee).
  Terminals trace_arg(uint32_t func, uint32_t arg) const;

  const TupleModel& tuples() const { return tuples_; }

  /// Memo-cache statistics over trace_node entries (lookups counts every
  /// entry, hits the ones served from cache). Feed the obs run manifest.
  uint64_t memo_hits() const {
    return memo_hits_.load(std::memory_order_relaxed);
  }
  uint64_t memo_lookups() const {
    return memo_lookups_.load(std::memory_order_relaxed);
  }

 private:
  // Node key: function, index, is_arg flag.
  static uint64_t key(uint32_t func, uint32_t index, bool is_arg) {
    return (static_cast<uint64_t>(func) << 33) |
           (static_cast<uint64_t>(index) << 1) | (is_arg ? 1 : 0);
  }

  // Per-top-level-call traversal state: the recursion stack (for cycle
  // cutting) and the number of cuts taken below the current node (for
  // the "memoize only clean results" rule). Keeping it out of the
  // object makes concurrent trace() calls independent.
  struct TraceCtx {
    std::unordered_set<uint64_t> stack;
    uint64_t cuts = 0;
  };

  Terminals trace_node(uint32_t func, uint32_t index, bool is_arg,
                       TraceCtx& ctx, uint32_t depth = 0) const;
  Terminals compute(uint32_t func, uint32_t index, bool is_arg,
                    TraceCtx& ctx, uint32_t depth) const;
  void follow_use(uint32_t func, const analysis::DefUse::Use& use,
                  double exec_ratio, TraceCtx& ctx, uint32_t depth,
                  Terminals& out) const;

  // A "guard" is a conditional branch whose direction is data-dependent
  // on the traced value (directly or through one comparison). A fault
  // that flips the guard diverts control flow before the value's other
  // uses execute, so contributions from uses control-dependent on the
  // guard are damped by (1 - flip probability). This models the
  // induction-variable pattern (fault in `i` usually exits the loop
  // instead of reaching the guarded body's stores).
  struct Guard {
    uint32_t branch_block = 0;
    double flip = 0;
    uint32_t source_use = 0;  // index into the use list (self-exempt)
  };
  std::vector<Guard> find_guards(
      uint32_t func, const std::vector<analysis::DefUse::Use>& uses,
      double def_exec) const;
  bool control_dependent(uint32_t func, uint32_t branch_block,
                         uint32_t block) const;

  double exec_count(ir::InstRef ref) const { return profile_.exec(ref); }

  const ir::Module& module_;
  const prof::Profile& profile_;
  TupleModel tuples_;
  TraceConfig config_;
  std::vector<analysis::DefUse> def_use_;
  analysis::CallGraph call_graph_;
  struct FuncAnalyses {
    explicit FuncAnalyses(const ir::Function& f)
        : cfg(f),
          postdom(analysis::DomTree::post_dominators(cfg)),
          cd(cfg, postdom) {}
    analysis::CFG cfg;
    analysis::DomTree postdom;
    analysis::ControlDependence cd;
    // branch block -> blocks control-dependent on it (cached).
    std::unordered_map<uint32_t, std::vector<uint32_t>> dep_cache;
  };
  mutable std::mutex analyses_mutex_;  // guards analyses_ + dep_cache
  mutable std::vector<std::unique_ptr<FuncAnalyses>> analyses_;
  mutable std::shared_mutex memo_mutex_;
  mutable std::unordered_map<uint64_t, Terminals> memo_;
  mutable std::atomic<uint64_t> cycle_cuts_{0};
  mutable std::atomic<uint64_t> memo_hits_{0};
  mutable std::atomic<uint64_t> memo_lookups_{0};
};

}  // namespace trident::core
