// TRIDENT: the three-level error-propagation model (paper §IV).
//
// Composes the sub-models:
//   fs (SequenceTracer + TupleModel)  — static-instruction level
//   fc (FcModel)                      — control-flow level
//   fm (FmModel)                      — memory level
//
// ModelConfig reproduces the paper's ablations: disabling fm yields the
// "fs+fc" model (a corrupted store is assumed to be an SDC); disabling
// both fc and fm yields the "fs" model (reaching a store/output terminal
// is assumed to be an SDC, control-flow divergence untracked).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "core/fc_model.h"
#include "core/fm_model.h"
#include "core/sequence.h"
#include "ir/module.h"
#include "profiler/profile.h"
#include "support/rng.h"

namespace trident::core {

struct ModelConfig {
  bool enable_fc = true;
  bool enable_fm = true;
  // §VII-A refinement: discount control-corrupted stores by their silent
  // (coincidentally correct) rate. Off = paper-faithful conservatism.
  bool lucky_stores = true;
  TraceConfig trace;

  static ModelConfig full() { return {}; }
  static ModelConfig fs_fc() {
    ModelConfig config;
    config.enable_fm = false;
    return config;
  }
  static ModelConfig fs_only() {
    ModelConfig config;
    config.enable_fc = false;
    config.enable_fm = false;
    return config;
  }
};

/// Per-instruction prediction, conditional on fault activation at the
/// instruction's destination register.
struct InstPrediction {
  double sdc = 0;
  double crash = 0;
};

class Trident {
 public:
  Trident(const ir::Module& module, const prof::Profile& profile,
          ModelConfig config = {});

  /// SDC probability of a fault activated at `ref` (must produce a
  /// result; returns 0 for instructions that never execute).
  InstPrediction predict(ir::InstRef ref) const;

  /// Overall program SDC probability with `samples` sampled dynamic
  /// instructions (paper's methodology; sampling balances analysis time
  /// and accuracy).
  double overall_sdc(uint64_t samples, uint64_t seed) const;

  /// Exact execution-count-weighted overall SDC probability.
  double overall_sdc_exact() const;

  /// All result-producing instructions that executed at least once —
  /// the population both FI and the model draw from.
  std::vector<ir::InstRef> injectable_instructions() const;

  const prof::Profile& profile() const { return profile_; }
  const ir::Module& module() const { return module_; }
  const ModelConfig& config() const { return config_; }

 private:
  double store_weight(ir::InstRef store) const;
  double store_term_weight(const StoreTerm& term) const;
  double branch_weight(ir::InstRef branch) const;

  const ir::Module& module_;
  const prof::Profile& profile_;
  ModelConfig config_;
  SequenceTracer tracer_;
  FcModel fc_;
  FmModel fm_;
  mutable std::unordered_map<uint64_t, InstPrediction> memo_;
};

}  // namespace trident::core
