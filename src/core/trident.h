// TRIDENT: the three-level error-propagation model (paper §IV).
//
// Composes the sub-models:
//   fs (SequenceTracer + TupleModel)  — static-instruction level
//   fc (FcModel)                      — control-flow level
//   fm (FmModel)                      — memory level
//
// ModelConfig reproduces the paper's ablations: disabling fm yields the
// "fs+fc" model (a corrupted store is assumed to be an SDC); disabling
// both fc and fm yields the "fs" model (reaching a store/output terminal
// is assumed to be an SDC, control-flow divergence untracked).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/bit_facts.h"
#include "core/fc_model.h"
#include "core/fm_model.h"
#include "core/sequence.h"
#include "ir/module.h"
#include "obs/metrics.h"
#include "profiler/profile.h"
#include "support/rng.h"

namespace trident::core {

struct ModelConfig {
  bool enable_fc = true;
  bool enable_fm = true;
  // §VII-A refinement: discount control-corrupted stores by their silent
  // (coincidentally correct) rate. Off = paper-faithful conservatism.
  bool lucky_stores = true;
  // Bit-level static refinement (docs/ANALYSIS.md): cap per-instruction
  // SDC by the demanded-bits influence fraction and sharpen logic-op
  // tuples with known-bits masks. Profile-free and sound (caps, not
  // products), so it can only lower predictions.
  bool bit_refine = false;
  TraceConfig trace;

  static ModelConfig full() { return {}; }
  static ModelConfig fs_fc() {
    ModelConfig config;
    config.enable_fm = false;
    return config;
  }
  static ModelConfig fs_only() {
    ModelConfig config;
    config.enable_fc = false;
    config.enable_fm = false;
    return config;
  }
  /// Full model plus the bit-level static refinement ("trident_bits").
  static ModelConfig bits() {
    ModelConfig config;
    config.bit_refine = true;
    return config;
  }
  /// Paper-faithful full model: the §VII extensions (store-address
  /// tracking, attenuation, guard damping) disabled.
  static ModelConfig paper() {
    ModelConfig config;
    config.trace.track_store_addr = false;
    config.trace.track_attenuation = false;
    config.trace.guard_damping = false;
    return config;
  }
};

/// Named configurations as accepted by the CLI's --model flag and the
/// eval spec's "models" list: "full", "fs_fc", "fs", "paper",
/// "trident_bits". Unknown names yield nullopt.
std::optional<ModelConfig> model_config_from_name(const std::string& name);

/// The names model_config_from_name accepts, comma-separated — the
/// standard suffix of every unknown-model diagnostic.
std::string model_config_names();

/// Canonical one-line description of every semantically relevant
/// ModelConfig field, e.g.
///   "fc=1;fm=1;lucky=1;depth=64;cutoff=9.9999999999999995e-07;..."
/// Used as the model component of eval cache keys: any change that can
/// move a prediction changes this string and so invalidates exactly the
/// model cells.
std::string model_config_fingerprint(const ModelConfig& config);

/// Per-instruction prediction, conditional on fault activation at the
/// instruction's destination register.
struct InstPrediction {
  double sdc = 0;
  double crash = 0;
};

class Trident {
 public:
  Trident(const ir::Module& module, const prof::Profile& profile,
          ModelConfig config = {});

  /// SDC probability of a fault activated at `ref` (must produce a
  /// result; returns 0 for instructions that never execute). Thread-safe
  /// and deterministic: concurrent callers share the sub-model caches
  /// (each a read-mostly lock or one-shot solve), so the prediction for
  /// a given instruction is identical at any thread count.
  InstPrediction predict(ir::InstRef ref) const;

  /// Per-static-instruction sweep: predictions for refs[i] at result[i],
  /// evaluated on the shared thread pool. `threads` caps concurrency
  /// (0 = TRIDENT_THREADS env or hardware_concurrency). The returned
  /// vector is bit-identical for any thread count.
  std::vector<InstPrediction> predict_all(
      const std::vector<ir::InstRef>& refs, uint32_t threads = 0) const;

  /// Sweep over every injectable instruction (paper Fig. 6b/7 shape).
  std::vector<InstPrediction> predict_all(uint32_t threads = 0) const;

  /// Overall program SDC probability with `samples` sampled dynamic
  /// instructions (paper's methodology; sampling balances analysis time
  /// and accuracy). Samples are drawn sequentially from the seed and
  /// summed in sample order, so the value does not depend on `threads`.
  double overall_sdc(uint64_t samples, uint64_t seed,
                     uint32_t threads = 1) const;

  /// Exact execution-count-weighted overall SDC probability.
  double overall_sdc_exact() const;

  /// All result-producing instructions that executed at least once —
  /// the population both FI and the model draw from.
  std::vector<ir::InstRef> injectable_instructions() const;

  const prof::Profile& profile() const { return profile_; }
  const ir::Module& module() const { return module_; }
  const ModelConfig& config() const { return config_; }

  /// Snapshots the model's internal instrumentation into `registry`:
  /// fm solver iterations ("fm.solver_iterations"), fs/fc/prediction
  /// memo hits+lookups and hit rates ("fs.memo.*", "fc.memo.*",
  /// "trident.memo.*"). Additive with earlier snapshots (counters add).
  void export_metrics(obs::Registry& registry) const;

 private:
  double store_weight(ir::InstRef store) const;
  double store_term_weight(const StoreTerm& term) const;
  double branch_weight(ir::InstRef branch) const;

  const ir::Module& module_;
  const prof::Profile& profile_;
  ModelConfig config_;
  // Built only under config.bit_refine; must outlive tracer_ (the tuple
  // model keeps a pointer).
  std::unique_ptr<analysis::BitFacts> bits_;
  SequenceTracer tracer_;
  FcModel fc_;
  FmModel fm_;
  // Prediction memo, sharded by key hash so sweep threads rarely contend
  // on the same mutex. Values are deterministic, so racing threads that
  // compute the same key insert identical entries (first wins).
  struct MemoShard {
    mutable std::mutex mutex;
    mutable std::unordered_map<uint64_t, InstPrediction> map;
  };
  static constexpr size_t kMemoShards = 16;
  mutable std::array<MemoShard, kMemoShards> memo_;
  mutable std::atomic<uint64_t> memo_hits_{0};
  mutable std::atomic<uint64_t> memo_lookups_{0};
};

}  // namespace trident::core
