// fc: the control-flow sub-model (paper §IV-D). Given a corrupted
// conditional branch, computes which store instructions get corrupted and
// with what probability:
//
//   NLT (non-loop-terminating) branches:  Pc = Pe / Pd   (Eq. 1)
//   LT  (loop-terminating) branches:      Pc = Pb * Pe   (Eq. 2)
//
// where Pe is the store's execution probability per branch execution, Pd
// the profiled probability of the branch direction that leads to the
// store, and Pb the back-edge probability. Candidate stores are those
// control-dependent on the branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/control_dependence.h"
#include "analysis/dominators.h"
#include "analysis/loops.h"
#include "ir/module.h"
#include "profiler/profile.h"

namespace trident::core {

struct CorruptedStore {
  ir::InstRef store;
  double prob = 0;  // Pc
};

/// Effects of a corrupted conditional branch: the stores whose execution
/// is corrupted (fed to fm) and the program-output instructions whose
/// execution is corrupted (an SDC directly — e.g. a print guarded by the
/// branch runs, or fails to run).
struct FcResult {
  std::vector<CorruptedStore> stores;
  std::vector<CorruptedStore> outputs;
};

class FcModel {
 public:
  /// `lucky_stores` discounts the corruption probability of stores by
  /// their profiled silent-store rate — the §VII-A "coincidentally
  /// correct" refinement (skipping a store that would rewrite the value
  /// already in memory corrupts nothing). Off = the paper's conservative
  /// assumption.
  explicit FcModel(const ir::Module& module, const prof::Profile& profile,
                   bool lucky_stores = true);

  /// Effects of the conditional branch `branch` (a CondBr) taking the
  /// wrong direction. Candidate instructions are those in the transitive
  /// control-dependence closure of the branch (the paper's Fig. 3 stores
  /// sit behind nested branches inside the region).
  ///
  /// Thread-safe: the memo is a read-mostly shared_mutex cache; entries
  /// are node-stable, so returned references stay valid for the model's
  /// lifetime.
  const FcResult& corrupted(ir::InstRef branch) const;

  /// Convenience view of corrupted(branch).stores.
  const std::vector<CorruptedStore>& corrupted_stores(
      ir::InstRef branch) const;

  /// Whether the branch is classified Loop-Terminating (exposed for tests
  /// and the ablation benches).
  bool is_loop_terminating(ir::InstRef branch) const;

  /// Memo-cache statistics over corrupted() calls (for the obs manifest).
  uint64_t memo_hits() const {
    return memo_hits_.load(std::memory_order_relaxed);
  }
  uint64_t memo_lookups() const {
    return memo_lookups_.load(std::memory_order_relaxed);
  }

 private:
  struct FuncAnalyses {
    explicit FuncAnalyses(const ir::Function& f)
        : cfg(f),
          dom(analysis::DomTree::dominators(cfg)),
          postdom(analysis::DomTree::post_dominators(cfg)),
          loops(cfg, dom),
          cd(cfg, postdom) {}
    analysis::CFG cfg;
    analysis::DomTree dom;
    analysis::DomTree postdom;
    analysis::LoopInfo loops;
    analysis::ControlDependence cd;
  };

  FcResult compute(ir::InstRef branch) const;

  const ir::Module& module_;
  const prof::Profile& profile_;
  bool lucky_stores_;
  std::vector<std::unique_ptr<FuncAnalyses>> analyses_;
  mutable std::shared_mutex memo_mutex_;
  mutable std::unordered_map<uint64_t, FcResult> memo_;
  mutable std::atomic<uint64_t> memo_hits_{0};
  mutable std::atomic<uint64_t> memo_lookups_{0};
};

}  // namespace trident::core
