#include "core/trident.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "support/thread_pool.h"

namespace trident::core {

std::optional<ModelConfig> model_config_from_name(const std::string& name) {
  if (name == "full") return ModelConfig::full();
  if (name == "fs_fc") return ModelConfig::fs_fc();
  if (name == "fs") return ModelConfig::fs_only();
  if (name == "paper") return ModelConfig::paper();
  if (name == "trident_bits") return ModelConfig::bits();
  return std::nullopt;
}

std::string model_config_names() {
  // Keep in the order model_config_from_name recognizes them.
  return "full, fs_fc, fs, paper, trident_bits";
}

std::string model_config_fingerprint(const ModelConfig& config) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "fc=%d;fm=%d;lucky=%d;depth=%u;cutoff=%.17g;addr=%d;"
                "atten=%d;guard=%d;bits=%d",
                config.enable_fc ? 1 : 0, config.enable_fm ? 1 : 0,
                config.lucky_stores ? 1 : 0, config.trace.max_depth,
                config.trace.prob_cutoff,
                config.trace.track_store_addr ? 1 : 0,
                config.trace.track_attenuation ? 1 : 0,
                config.trace.guard_damping ? 1 : 0,
                config.bit_refine ? 1 : 0);
  return buf;
}

Trident::Trident(const ir::Module& module, const prof::Profile& profile,
                 ModelConfig config)
    : module_(module),
      profile_(profile),
      config_(config),
      bits_(config.bit_refine ? std::make_unique<analysis::BitFacts>(module)
                              : nullptr),
      tracer_(module, profile, config.trace, bits_.get()),
      fc_(module, profile, config.lucky_stores),
      fm_(module, profile, tracer_, fc_, FmConfig{.enable_fc = config.enable_fc}) {}

namespace {

// Output-format masking for a direct output term: the paper's §IV-E rule
// generalized with path attenuation (exact prints pass everything).
double term_factor(const OutputTerm& term) {
  if (term.print_width == 0) return 1.0;
  return TupleModel::fp_format_propagation_attenuated(
      term.print_width, term.digits, surv_to_atten_bits(term.surv));
}

}  // namespace

double Trident::store_weight(ir::InstRef store) const {
  // fs+fc / fs ablations: a corrupted store is assumed to reach the
  // output (the paper's description of the simpler models).
  return config_.enable_fm ? fm_.store_to_output(store) : 1.0;
}

// Weight of a store terminal reached with `atten` accumulated bits of
// relative attenuation: the memory profile supplies the rest of the path
// and the output formats.
double Trident::store_term_weight(const StoreTerm& term) const {
  if (!config_.enable_fm) return 1.0;
  const auto profile = fm_.store_output_profile(term.ref);
  if (profile.prob <= 0) return 0.0;
  const double float_factor = TupleModel::fp_format_propagation_attenuated(
      profile.print_width == 0 ? 64 : profile.print_width, profile.digits,
      surv_to_atten_bits(term.surv * profile.surv));
  return profile.prob *
         (profile.exact_frac + (1.0 - profile.exact_frac) * float_factor);
}

double Trident::branch_weight(ir::InstRef branch) const {
  if (config_.enable_fm) return fm_.branch_to_output(branch);
  const auto& fc_result = fc_.corrupted(branch);
  double total = 0;
  // Branch-decided output instructions are direct SDCs; without fm,
  // branch-decided stores are assumed to be SDCs (the fs+fc ablation).
  for (const auto& co : fc_result.outputs) total += co.prob;
  for (const auto& cs : fc_result.stores) total += cs.prob;
  return std::min(1.0, total);
}

InstPrediction Trident::predict(ir::InstRef ref) const {
  const uint64_t k = prof::pack(ref);
  // Mix the packed key before sharding: func/inst ids are small and
  // sequential, so low bits alone would pile onto a few shards.
  MemoShard& shard =
      memo_[(k ^ (k >> 7) ^ (k >> 29)) % kMemoShards];
  memo_lookups_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(shard.mutex);
    if (const auto it = shard.map.find(k); it != shard.map.end()) {
      memo_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }

  InstPrediction pred;
  const auto& inst = module_.functions[ref.func].insts[ref.inst];
  if (inst.has_result() && profile_.exec(ref) > 0) {
    // Algorithm 1: trace the static sequence from the activated fault,
    // then fold in the control-flow and memory levels per terminal.
    const Terminals t = tracer_.trace(ref);
    double sdc = 0;
    for (const auto& term : t.outputs) {
      sdc += term.prob * term_factor(term);
    }
    for (const auto& term : t.stores) {
      sdc += std::min(1.0, term.prob) * store_term_weight(term);
    }
    if (config_.enable_fc) {
      for (const auto& [branch, p] : t.branches) {
        sdc += std::min(1.0, p) * branch_weight(branch);
      }
    }
    pred.crash = std::min(1.0, t.crash);
    // A fault cannot both crash and silently corrupt: the outcomes are
    // mutually exclusive, so crash probability bounds the SDC estimate.
    pred.sdc = std::min(std::min(1.0, sdc), 1.0 - pred.crash);
    // Bit-level refinement: a uniform single-bit flip lands in a bit
    // that can influence any store/branch/output with at most the
    // demanded-bits influence fraction — a sound cap (min, not a
    // product) that cannot double-count the masking the traced tuple
    // chain already modeled.
    if (bits_ != nullptr) {
      pred.sdc = std::min(pred.sdc, bits_->influence_fraction(ref));
    }
  }
  {
    std::lock_guard lock(shard.mutex);
    shard.map.emplace(k, pred);
  }
  return pred;
}

std::vector<InstPrediction> Trident::predict_all(
    const std::vector<ir::InstRef>& refs, uint32_t threads) const {
  std::vector<InstPrediction> out(refs.size());
  const uint32_t workers =
      threads == 0 ? support::ThreadPool::default_threads() : threads;
  if (workers <= 1) {
    for (size_t i = 0; i < refs.size(); ++i) out[i] = predict(refs[i]);
  } else {
    support::ThreadPool::global().parallel_for(
        refs.size(), [&](uint64_t i) { out[i] = predict(refs[i]); },
        workers);
  }
  return out;
}

std::vector<InstPrediction> Trident::predict_all(uint32_t threads) const {
  return predict_all(injectable_instructions(), threads);
}

std::vector<ir::InstRef> Trident::injectable_instructions() const {
  std::vector<ir::InstRef> out;
  for (uint32_t f = 0; f < module_.functions.size(); ++f) {
    const auto& func = module_.functions[f];
    for (uint32_t i = 0; i < func.insts.size(); ++i) {
      if (func.insts[i].has_result() && profile_.exec({f, i}) > 0) {
        out.push_back({f, i});
      }
    }
  }
  return out;
}

double Trident::overall_sdc(uint64_t samples, uint64_t seed,
                            uint32_t threads) const {
  assert(samples > 0);
  // Sample dynamic instructions (each dynamic result-producing execution
  // equally likely), i.e. static instructions weighted by exec count.
  const auto insts = injectable_instructions();
  if (insts.empty()) return 0.0;
  std::vector<uint64_t> cumulative;
  cumulative.reserve(insts.size());
  uint64_t total = 0;
  for (const auto& ref : insts) {
    total += profile_.exec(ref);
    cumulative.push_back(total);
  }
  // Draw the sample refs sequentially from the seed, evaluate them in
  // parallel into per-sample slots, then sum in sample order — the same
  // floating-point reduction at every thread count.
  support::Rng rng(seed);
  std::vector<ir::InstRef> sampled(samples);
  for (uint64_t s = 0; s < samples; ++s) {
    const uint64_t r = rng.next_below(total);
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), r);
    sampled[s] = insts[static_cast<size_t>(it - cumulative.begin())];
  }
  const auto preds = predict_all(sampled, threads == 0 ? 0 : threads);
  double sum = 0;
  for (const auto& pred : preds) sum += pred.sdc;
  return sum / static_cast<double>(samples);
}

double Trident::overall_sdc_exact() const {
  const auto insts = injectable_instructions();
  double weighted = 0;
  double total = 0;
  for (const auto& ref : insts) {
    const auto w = static_cast<double>(profile_.exec(ref));
    weighted += w * predict(ref).sdc;
    total += w;
  }
  return total == 0 ? 0.0 : weighted / total;
}

void Trident::export_metrics(obs::Registry& registry) const {
  const auto rate = [](uint64_t hits, uint64_t lookups) {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  };
  registry.add("fm.solver_iterations", fm_.solver_iterations());
  const uint64_t fs_hits = tracer_.memo_hits();
  const uint64_t fs_lookups = tracer_.memo_lookups();
  registry.add("fs.memo.hits", fs_hits);
  registry.add("fs.memo.lookups", fs_lookups);
  registry.set("fs.memo.hit_rate", rate(fs_hits, fs_lookups));
  const uint64_t fc_hits = fc_.memo_hits();
  const uint64_t fc_lookups = fc_.memo_lookups();
  registry.add("fc.memo.hits", fc_hits);
  registry.add("fc.memo.lookups", fc_lookups);
  registry.set("fc.memo.hit_rate", rate(fc_hits, fc_lookups));
  const uint64_t hits = memo_hits_.load(std::memory_order_relaxed);
  const uint64_t lookups = memo_lookups_.load(std::memory_order_relaxed);
  registry.add("trident.memo.hits", hits);
  registry.add("trident.memo.lookups", lookups);
  registry.set("trident.memo.hit_rate", rate(hits, lookups));
  if (bits_ != nullptr) {
    const auto stats = bits_->stats();
    registry.add("analysis.blocks_visited", stats.blocks_visited);
    registry.add("analysis.fixpoint_iterations", stats.fixpoint_iterations);
    registry.add("analysis.masked_bits_total", stats.masked_bits_total);
  }
}

}  // namespace trident::core
