#include "analysis/def_use.h"

namespace trident::analysis {

DefUse::DefUse(const ir::Function& func) {
  inst_users_.resize(func.insts.size());
  arg_users_.resize(func.params.size());
  for (uint32_t id = 0; id < func.insts.size(); ++id) {
    const auto& inst = func.insts[id];
    for (uint32_t op = 0; op < inst.operands.size(); ++op) {
      const auto& v = inst.operands[op];
      if (v.is_inst()) {
        inst_users_[v.index].push_back({id, op});
      } else if (v.is_arg()) {
        arg_users_[v.index].push_back({id, op});
      }
    }
  }
}

CallGraph::CallGraph(const ir::Module& module) {
  callers_.resize(module.functions.size());
  for (uint32_t f = 0; f < module.functions.size(); ++f) {
    const auto& func = module.functions[f];
    for (uint32_t id = 0; id < func.insts.size(); ++id) {
      const auto& inst = func.insts[id];
      if (inst.op == ir::Opcode::Call && inst.callee < callers_.size()) {
        callers_[inst.callee].push_back({f, id});
      }
    }
  }
}

}  // namespace trident::analysis
