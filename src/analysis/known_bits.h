// Forward known-bits dataflow (sparse, per SSA value).
//
// For every instruction result the analysis computes two bit masks —
// bits provably zero and bits provably one on every execution — seeded
// by IR constants only (profile-free, in contrast to the fs tuple
// model's sampled operands). Phi joins are optimistic (SCCP-style): an
// input whose def has not been visited yet is skipped, and knowledge
// only ever shrinks afterwards, which guarantees a fixpoint in at most
// width+1 lattice steps per value even around loops.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/def_use.h"
#include "ir/function.h"

namespace trident::analysis {

/// Knowledge about the bits of one value. `width` is the register width
/// (1..64; 0 for void). `defined` distinguishes "nothing known" from
/// "not yet computed" (the optimistic bottom used while iterating).
struct KnownBits {
  uint64_t zeros = 0;  // bits provably 0
  uint64_t ones = 0;   // bits provably 1
  uint8_t width = 0;
  bool defined = false;

  static KnownBits unknown(unsigned w);
  static KnownBits constant(uint64_t value, unsigned w);

  uint64_t mask() const;                      // low `width` bits
  uint64_t known() const { return zeros | ones; }
  bool fully_known() const;
  uint64_t value() const { return ones; }     // valid iff fully_known()

  /// Unsigned / signed range bounds implied by the known bits.
  uint64_t umin() const { return ones; }
  uint64_t umax() const;
  int64_t smin() const;
  int64_t smax() const;

  bool operator==(const KnownBits&) const = default;
};

/// Transfer functions, exposed for direct unit testing. All inputs must
/// share the result width except where noted.
KnownBits kb_and(const KnownBits& a, const KnownBits& b);
KnownBits kb_or(const KnownBits& a, const KnownBits& b);
KnownBits kb_xor(const KnownBits& a, const KnownBits& b);
KnownBits kb_not(const KnownBits& a);
/// Add with an initial carry possibility ({0} normally, {1} for a-b via
/// a + ~b + 1): per-bit propagation of the possible-carry set.
KnownBits kb_add(const KnownBits& a, const KnownBits& b, bool carry_in);
KnownBits kb_sub(const KnownBits& a, const KnownBits& b);
KnownBits kb_mul(const KnownBits& a, const KnownBits& b);
KnownBits kb_shl(const KnownBits& a, const KnownBits& amount);
KnownBits kb_lshr(const KnownBits& a, const KnownBits& amount);
KnownBits kb_ashr(const KnownBits& a, const KnownBits& amount);
/// Unsigned division/remainder. Claims hold for every execution that
/// produces a result (division by zero traps instead, so b == 0 is
/// outside the concretization these are checked against).
KnownBits kb_udiv(const KnownBits& a, const KnownBits& b);
KnownBits kb_urem(const KnownBits& a, const KnownBits& b);
KnownBits kb_trunc(const KnownBits& a, unsigned to_width);
KnownBits kb_zext(const KnownBits& a, unsigned to_width);
KnownBits kb_sext(const KnownBits& a, unsigned to_width);
/// Join: keeps only the bits both sides agree on. An undefined side is
/// the identity (optimistic).
KnownBits kb_join(const KnownBits& a, const KnownBits& b);

/// Sparse forward solve over one function. Results for instructions in
/// unreachable blocks (and non-integer results) are defined-but-unknown.
class KnownBitsAnalysis {
 public:
  KnownBitsAnalysis(const ir::Function& func, const CFG& cfg,
                    const DefUse& def_use, DataflowStats* stats = nullptr);

  const KnownBits& of_inst(uint32_t id) const { return inst_[id]; }
  /// Resolves any operand: constants are exact, args/globals unknown.
  KnownBits of_value(const ir::Value& v) const;

 private:
  KnownBits transfer(uint32_t id) const;

  const ir::Function& func_;
  const CFG& cfg_;
  std::vector<KnownBits> inst_;
};

}  // namespace trident::analysis
