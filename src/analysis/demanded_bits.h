// Backward demanded-bits dataflow (sparse, per SSA value).
//
// A bit of a value is *demanded* when flipping it could influence a
// root: a store (value or address), a conditional branch, a program
// output, a call/return boundary, a detector, or a memory address. Bits
// never demanded anywhere downstream are statically masked — a fault in
// them provably cannot reach program output, which is the guarantee the
// `trident_bits` model refinement keys off (see docs/ANALYSIS.md).
//
// Demanded masks start empty and only grow (a join-semilattice on set
// union), so the worklist converges in at most `width` steps per value.
// Transfers consult the forward known-bits facts: e.g. `and x, y` does
// not demand bits of x where y is provably zero.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/def_use.h"
#include "analysis/known_bits.h"
#include "ir/function.h"

namespace trident::analysis {

/// Demanded bits of one user's operand, given `demanded` bits of the
/// user's own result. Exposed for unit tests.
uint64_t demanded_operand_bits(const ir::Function& func,
                               const ir::Instruction& user,
                               uint32_t operand_index, uint64_t demanded,
                               const KnownBitsAnalysis& known);

/// Sparse backward solve over one function.
class DemandedBitsAnalysis {
 public:
  DemandedBitsAnalysis(const ir::Function& func, const CFG& cfg,
                       const DefUse& def_use, const KnownBitsAnalysis& known,
                       DataflowStats* stats = nullptr);

  /// Bits of instruction `id`'s result that can influence any root.
  uint64_t of_inst(uint32_t id) const { return inst_[id]; }
  /// Bits of argument `index` that can influence any root.
  uint64_t of_arg(uint32_t index) const { return arg_[index]; }

 private:
  std::vector<uint64_t> inst_;
  std::vector<uint64_t> arg_;
};

}  // namespace trident::analysis
