#include "analysis/lint.h"

#include <algorithm>

#include "analysis/bit_facts.h"
#include "analysis/cfg.h"
#include "analysis/def_use.h"
#include "analysis/demanded_bits.h"
#include "analysis/known_bits.h"
#include "support/bits.h"
#include "support/str.h"
#include "support/thread_pool.h"

namespace trident::analysis {

using support::format;

const char* severity_name(Diagnostic::Severity severity) {
  switch (severity) {
    case Diagnostic::Severity::Error: return "error";
    case Diagnostic::Severity::Warning: return "warning";
    case Diagnostic::Severity::Info: return "info";
  }
  return "info";
}

namespace {

// ---- Dead-store detection: backward liveness over local allocas ------
//
// Tracked allocas are those whose address never escapes: every use of
// the alloca (or a Gep chain rooted at it) is a load, a store *to* it,
// or another Gep. Anything else (call argument, stored as a value,
// pointer arithmetic feeding a phi/select/compare, memcpy) marks the
// alloca escaping and it is never reported.
struct AllocaInfo {
  std::vector<uint32_t> tracked;        // alloca inst ids, ascending
  std::vector<uint32_t> slot_of_inst;   // inst id -> tracked slot or ~0u
  std::vector<uint32_t> root_of_value;  // inst id -> rooting alloca or ~0u
};

AllocaInfo collect_allocas(const ir::Function& func) {
  AllocaInfo info;
  info.slot_of_inst.assign(func.num_insts(), ~0u);
  info.root_of_value.assign(func.num_insts(), ~0u);
  std::vector<uint8_t> escaped(func.num_insts(), 0);

  for (uint32_t id = 0; id < func.num_insts(); ++id) {
    if (func.insts[id].op == ir::Opcode::Alloca) {
      info.root_of_value[id] = id;
    }
  }
  // Instruction ids are topological within a block and Gep bases must
  // dominate, so a forward sweep resolves Gep chains; repeat once to
  // cover cross-block orderings conservatively.
  for (int pass = 0; pass < 2; ++pass) {
    for (uint32_t id = 0; id < func.num_insts(); ++id) {
      const auto& inst = func.insts[id];
      if (inst.op == ir::Opcode::Gep && inst.operands[0].is_inst()) {
        info.root_of_value[id] =
            info.root_of_value[inst.operands[0].index];
      }
    }
  }
  const auto root = [&](const ir::Value& v) -> uint32_t {
    return v.is_inst() ? info.root_of_value[v.index] : ~0u;
  };
  for (uint32_t id = 0; id < func.num_insts(); ++id) {
    const auto& inst = func.insts[id];
    for (uint32_t p = 0; p < inst.operands.size(); ++p) {
      const uint32_t a = root(inst.operands[p]);
      if (a == ~0u) continue;
      const bool benign =
          (inst.op == ir::Opcode::Load && p == 0) ||
          (inst.op == ir::Opcode::Store && p == 1) ||
          (inst.op == ir::Opcode::Gep && p == 0);
      if (!benign) escaped[a] = 1;
    }
  }
  for (uint32_t id = 0; id < func.num_insts(); ++id) {
    if (info.root_of_value[id] == id && !escaped[id]) {
      info.slot_of_inst[id] = static_cast<uint32_t>(info.tracked.size());
      info.tracked.push_back(id);
    }
  }
  return info;
}

// Block-level liveness problem over the tracked allocas, solved on the
// generic engine. State bit = "some later read of this alloca may see
// the bytes currently in it".
struct AllocaLiveness {
  using State = std::vector<uint8_t>;
  static constexpr bool kForward = false;

  const ir::Function& func;
  const AllocaInfo& allocas;

  State top() const { return State(allocas.tracked.size(), 0); }
  State boundary() const { return top(); }  // locals die at function exit
  bool merge(State& dst, const State& src) const {
    bool changed = false;
    for (size_t i = 0; i < dst.size(); ++i) {
      if (src[i] && !dst[i]) {
        dst[i] = 1;
        changed = true;
      }
    }
    return changed;
  }

  // True when `inst` fully overwrites tracked slot `slot` (a direct
  // store of the alloca's whole byte size).
  bool kills(const ir::Instruction& inst, uint32_t& slot) const {
    if (inst.op != ir::Opcode::Store || !inst.operands[1].is_inst()) {
      return false;
    }
    const uint32_t target = inst.operands[1].index;
    slot = allocas.slot_of_inst[target];
    if (slot == ~0u) return false;
    const auto& alloca = func.insts[target];
    return func.value_type(inst.operands[0]).store_size() == alloca.imm;
  }
  // True when `inst` may read tracked slot `slot`.
  bool reads(const ir::Instruction& inst, uint32_t& slot) const {
    if (inst.op != ir::Opcode::Load || !inst.operands[0].is_inst()) {
      return false;
    }
    const uint32_t a = allocas.root_of_value[inst.operands[0].index];
    if (a == ~0u) return false;
    slot = allocas.slot_of_inst[a];
    return slot != ~0u;
  }

  State transfer(uint32_t bb, const State& out) const {
    State live = out;
    const auto& insts = func.blocks[bb].insts;
    for (auto it = insts.rbegin(); it != insts.rend(); ++it) {
      const auto& inst = func.insts[*it];
      uint32_t slot = ~0u;
      if (kills(inst, slot)) {
        live[slot] = 0;
      } else if (reads(inst, slot)) {
        live[slot] = 1;
      }
    }
    return live;
  }
};

void lint_function(const ir::Module& module, uint32_t f, FunctionLint& out) {
  const auto& func = module.functions[f];
  out.index = f;
  out.name = func.name;
  out.blocks = func.num_blocks();
  out.insts = func.num_insts();

  const CFG cfg(func);
  const DefUse def_use(func);
  for (uint32_t bb = 0; bb < func.num_blocks(); ++bb) {
    if (cfg.reachable(bb)) ++out.reachable_blocks;
  }

  // unreachable-block: by block id.
  for (uint32_t bb = 0; bb < func.num_blocks(); ++bb) {
    if (cfg.reachable(bb)) continue;
    out.diagnostics.push_back(
        {Diagnostic::Severity::Warning, "unreachable-block", bb, ~0u,
         format("block %u (%s) is unreachable from the entry", bb,
                func.blocks[bb].name.c_str())});
  }

  // undef-use: by instruction id (reachable code only; unreachable code
  // is already flagged wholesale above).
  for (uint32_t id = 0; id < func.num_insts(); ++id) {
    const auto& inst = func.insts[id];
    if (!cfg.reachable(inst.block)) continue;
    for (uint32_t p = 0; p < inst.operands.size(); ++p) {
      if (inst.operands[p].is_none()) {
        out.diagnostics.push_back(
            {Diagnostic::Severity::Error, "undef-use", inst.block, id,
             format("operand %u of %s has no value", p,
                    ir::opcode_name(inst.op))});
      }
    }
  }

  // Bit-level facts: dead values, dead bit ranges, masked-bit counts.
  KnownBitsAnalysis known(func, cfg, def_use, &out.stats);
  DemandedBitsAnalysis demanded(func, cfg, def_use, known, &out.stats);
  for (uint32_t id = 0; id < func.num_insts(); ++id) {
    const auto& inst = func.insts[id];
    if (!inst.has_result() || !cfg.reachable(inst.block)) continue;
    const unsigned w = inst.type.width();
    const uint64_t live = demanded.of_inst(id) & support::low_mask(w);
    const unsigned masked = w - support::popcount_low(live, w);
    if (masked == 0) continue;
    out.masked_bits += masked;
    out.masked_bits_per_inst.emplace_back(id, masked);
    if (live == 0) {
      out.diagnostics.push_back(
          {Diagnostic::Severity::Warning, "dead-value", inst.block, id,
           format("%s result is never demanded by any store, branch or "
                  "output",
                  ir::opcode_name(inst.op))});
    } else {
      // Describe the dead bits as closed ranges, e.g. "8-31".
      std::string ranges;
      for (unsigned bit = 0; bit < w;) {
        if ((live >> bit) & 1) {
          ++bit;
          continue;
        }
        unsigned end = bit;
        while (end + 1 < w && !((live >> (end + 1)) & 1)) ++end;
        if (!ranges.empty()) ranges += ",";
        ranges += bit == end ? format("%u", bit) : format("%u-%u", bit, end);
        bit = end + 1;
      }
      out.diagnostics.push_back(
          {Diagnostic::Severity::Info, "dead-bits", inst.block, id,
           format("%s result bits %s are never demanded",
                  ir::opcode_name(inst.op), ranges.c_str())});
    }
  }
  out.stats.masked_bits_total += out.masked_bits;

  // dead-store: block liveness over non-escaping allocas, then a
  // backward in-block scan from each block's live-out state.
  const AllocaInfo allocas = collect_allocas(func);
  if (!allocas.tracked.empty()) {
    const AllocaLiveness problem{func, allocas};
    const auto states = solve_block_dataflow(cfg, problem, &out.stats);
    for (const uint32_t bb : cfg.rpo()) {
      auto live = states.out[bb];
      const auto& insts = func.blocks[bb].insts;
      std::vector<Diagnostic> block_diags;
      for (auto it = insts.rbegin(); it != insts.rend(); ++it) {
        const auto& inst = func.insts[*it];
        uint32_t slot = ~0u;
        if (problem.kills(inst, slot)) {
          if (!live[slot]) {
            block_diags.push_back(
                {Diagnostic::Severity::Warning, "dead-store", bb, *it,
                 format("store to %%%u is overwritten or never read",
                        allocas.tracked[slot])});
          }
          live[slot] = 0;
        } else if (problem.reads(inst, slot)) {
          live[slot] = 1;
        }
      }
      // The scan ran backward; report in program order.
      out.diagnostics.insert(out.diagnostics.end(), block_diags.rbegin(),
                             block_diags.rend());
    }
  }
}

}  // namespace

LintResult lint_module(const ir::Module& module, uint32_t threads) {
  LintResult result;
  result.functions.resize(module.functions.size());
  const auto run_one = [&](uint64_t f) {
    lint_function(module, static_cast<uint32_t>(f), result.functions[f]);
  };
  const uint32_t workers =
      threads == 0 ? support::ThreadPool::default_threads() : threads;
  if (workers <= 1 || module.functions.size() <= 1) {
    for (uint64_t f = 0; f < module.functions.size(); ++f) run_one(f);
  } else {
    support::ThreadPool::global().parallel_for(module.functions.size(),
                                               run_one, workers);
  }
  for (const auto& fl : result.functions) {
    result.stats += fl.stats;
    for (const auto& d : fl.diagnostics) {
      switch (d.severity) {
        case Diagnostic::Severity::Error: ++result.errors; break;
        case Diagnostic::Severity::Warning: ++result.warnings; break;
        case Diagnostic::Severity::Info: ++result.infos; break;
      }
    }
  }
  return result;
}

support::json::Value lint_to_json(const LintResult& result,
                                  const std::string& target) {
  using support::json::Value;
  Value doc = Value::object();
  doc.set("schema", Value(std::string("trident-analyze/1")));
  doc.set("target", Value(target));
  Value functions = Value::array();
  for (const auto& fl : result.functions) {
    Value fn = Value::object();
    fn.set("index", Value(static_cast<uint64_t>(fl.index)));
    fn.set("name", Value(fl.name));
    Value stats = Value::object();
    stats.set("blocks", Value(fl.blocks));
    stats.set("reachable_blocks", Value(fl.reachable_blocks));
    stats.set("insts", Value(fl.insts));
    stats.set("masked_bits", Value(fl.masked_bits));
    stats.set("blocks_visited", Value(fl.stats.blocks_visited));
    stats.set("fixpoint_iterations", Value(fl.stats.fixpoint_iterations));
    fn.set("stats", stats);
    Value diags = Value::array();
    for (const auto& d : fl.diagnostics) {
      Value dv = Value::object();
      dv.set("severity", Value(std::string(severity_name(d.severity))));
      dv.set("kind", Value(d.kind));
      if (d.block != ~0u) dv.set("block", Value(static_cast<uint64_t>(d.block)));
      if (d.inst != ~0u) dv.set("inst", Value(static_cast<uint64_t>(d.inst)));
      dv.set("message", Value(d.message));
      diags.push_back(std::move(dv));
    }
    fn.set("diagnostics", std::move(diags));
    Value masked = Value::array();
    for (const auto& [id, bits] : fl.masked_bits_per_inst) {
      Value pair = Value::array();
      pair.push_back(Value(static_cast<uint64_t>(id)));
      pair.push_back(Value(static_cast<uint64_t>(bits)));
      masked.push_back(std::move(pair));
    }
    fn.set("masked_bits_per_inst", std::move(masked));
    functions.push_back(std::move(fn));
  }
  doc.set("functions", std::move(functions));
  Value totals = Value::object();
  totals.set("functions", Value(static_cast<uint64_t>(result.functions.size())));
  totals.set("errors", Value(result.errors));
  totals.set("warnings", Value(result.warnings));
  totals.set("infos", Value(result.infos));
  totals.set("masked_bits_total", Value(result.stats.masked_bits_total));
  totals.set("blocks_visited", Value(result.stats.blocks_visited));
  totals.set("fixpoint_iterations", Value(result.stats.fixpoint_iterations));
  doc.set("totals", totals);
  return doc;
}

}  // namespace trident::analysis
