// Def-use chains, intra- and inter-procedural.
//
// The fs sub-model walks forward from a fault site along uses; calls
// propagate into callee parameters and return values propagate back to
// the callers' call-site uses. This analysis precomputes those edges.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/module.h"

namespace trident::analysis {

/// Per-function def-use chains.
class DefUse {
 public:
  explicit DefUse(const ir::Function& func);

  /// Instructions that use the result of instruction `id`, along with the
  /// operand position they use it at.
  struct Use {
    uint32_t user = 0;     // instruction id within the function
    uint32_t operand = 0;  // operand index in the user
  };

  const std::vector<Use>& users_of_inst(uint32_t id) const {
    return inst_users_[id];
  }
  const std::vector<Use>& users_of_arg(uint32_t index) const {
    return arg_users_[index];
  }

 private:
  std::vector<std::vector<Use>> inst_users_;
  std::vector<std::vector<Use>> arg_users_;
};

/// Module-wide call graph: call sites per callee and per caller.
class CallGraph {
 public:
  explicit CallGraph(const ir::Module& module);

  struct CallSite {
    uint32_t caller = ir::kNoFunc;
    uint32_t inst = 0;  // the Call instruction id within the caller
  };

  /// All call sites that invoke `callee`.
  const std::vector<CallSite>& callers_of(uint32_t callee) const {
    return callers_[callee];
  }

 private:
  std::vector<std::vector<CallSite>> callers_;
};

}  // namespace trident::analysis
