#include "analysis/dominators.h"

#include <algorithm>

namespace trident::analysis {

namespace {

// Post-order DFS over an explicit successor list, returning RPO.
std::vector<uint32_t> reverse_post_order(
    uint32_t num_nodes, uint32_t root,
    const std::vector<std::vector<uint32_t>>& succs) {
  std::vector<uint8_t> state(num_nodes, 0);
  std::vector<std::pair<uint32_t, uint32_t>> stack;
  std::vector<uint32_t> post;
  stack.emplace_back(root, 0);
  state[root] = 1;
  while (!stack.empty()) {
    auto& [n, next] = stack.back();
    if (next < succs[n].size()) {
      const auto s = succs[n][next++];
      if (state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      post.push_back(n);
      stack.pop_back();
    }
  }
  return {post.rbegin(), post.rend()};
}

}  // namespace

DomTree DomTree::build(uint32_t num_nodes, uint32_t root,
                       const std::vector<std::vector<uint32_t>>& preds,
                       const std::vector<uint32_t>& rpo) {
  DomTree t;
  t.root_ = root;
  t.idom_.assign(num_nodes, ir::kNoBlock);
  t.depth_.assign(num_nodes, ~0u);

  std::vector<uint32_t> rpo_index(num_nodes, ~0u);
  for (uint32_t i = 0; i < rpo.size(); ++i) rpo_index[rpo[i]] = i;

  const auto intersect = [&](uint32_t a, uint32_t b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) a = t.idom_[a];
      while (rpo_index[b] > rpo_index[a]) b = t.idom_[b];
    }
    return a;
  };

  t.idom_[root] = root;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto bb : rpo) {
      if (bb == root) continue;
      uint32_t new_idom = ir::kNoBlock;
      for (const auto p : preds[bb]) {
        if (rpo_index[p] == ~0u || t.idom_[p] == ir::kNoBlock) continue;
        new_idom = (new_idom == ir::kNoBlock) ? p : intersect(p, new_idom);
      }
      if (new_idom != ir::kNoBlock && t.idom_[bb] != new_idom) {
        t.idom_[bb] = new_idom;
        changed = true;
      }
    }
  }

  // Depths for O(depth) dominance queries; root's idom becomes kNoBlock
  // so callers can walk to the top cleanly.
  t.depth_[root] = 0;
  for (const auto bb : rpo) {
    if (bb == root || t.idom_[bb] == ir::kNoBlock) continue;
    // rpo order guarantees idom visited first.
    t.depth_[bb] = t.depth_[t.idom_[bb]] + 1;
  }
  t.idom_[root] = ir::kNoBlock;
  return t;
}

DomTree DomTree::dominators(const CFG& cfg) {
  const auto n = static_cast<uint32_t>(cfg.num_blocks());
  std::vector<std::vector<uint32_t>> preds(n);
  for (uint32_t bb = 0; bb < n; ++bb) preds[bb] = cfg.preds(bb);
  return build(n, 0, preds, cfg.rpo());
}

DomTree DomTree::post_dominators(const CFG& cfg) {
  const auto n = static_cast<uint32_t>(cfg.num_blocks());
  const uint32_t vexit = n;
  // Reversed graph: successors become predecessors; the virtual exit
  // precedes (in the reversed graph) every Ret block.
  std::vector<std::vector<uint32_t>> rsuccs(n + 1), rpreds(n + 1);
  for (uint32_t bb = 0; bb < n; ++bb) {
    for (const auto s : cfg.succs(bb)) {
      rsuccs[s].push_back(bb);
      rpreds[bb].push_back(s);
    }
  }
  for (const auto e : cfg.exit_blocks()) {
    rsuccs[vexit].push_back(e);
    rpreds[e].push_back(vexit);
  }
  const auto rpo = reverse_post_order(n + 1, vexit, rsuccs);
  return build(n + 1, vexit, rpreds, rpo);
}

bool DomTree::dominates(uint32_t a, uint32_t b) const {
  if (a >= idom_.size() || b >= idom_.size()) return false;
  if (depth_[a] == ~0u || depth_[b] == ~0u) return false;
  while (depth_[b] > depth_[a]) b = idom_[b];
  return a == b;
}

}  // namespace trident::analysis
