// Static lint driver over the dataflow stack (`trident analyze`).
//
// Per function it reports:
//   error    undef-use           an operand slot holds no value
//   warning  unreachable-block   block not reachable from the entry
//   warning  dead-store          a full store to a local overwritten or
//                                never read (block liveness dataflow)
//   warning  dead-value          a result no store/branch/output demands
//   info     dead-bits           partially dead bit ranges of a result
// plus per-instruction statically-masked-bit counts and the dataflow
// cost counters. Output is deterministic: per-function results are
// independent (safe to solve in parallel) and serialized in function
// order, so the JSON (schema trident-analyze/1) is byte-identical at
// any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/dataflow.h"
#include "ir/module.h"
#include "support/json.h"

namespace trident::analysis {

struct Diagnostic {
  enum class Severity : uint8_t { Error, Warning, Info };
  Severity severity = Severity::Info;
  std::string kind;
  uint32_t block = ~0u;  // ~0u when not block-scoped
  uint32_t inst = ~0u;   // ~0u when not instruction-scoped
  std::string message;
};

const char* severity_name(Diagnostic::Severity severity);

struct FunctionLint {
  uint32_t index = 0;
  std::string name;
  std::vector<Diagnostic> diagnostics;
  uint64_t blocks = 0;
  uint64_t reachable_blocks = 0;
  uint64_t insts = 0;
  uint64_t masked_bits = 0;
  // (instruction id, statically masked result bits), masked > 0 only.
  std::vector<std::pair<uint32_t, uint32_t>> masked_bits_per_inst;
  DataflowStats stats;
};

struct LintResult {
  std::vector<FunctionLint> functions;
  uint64_t errors = 0;
  uint64_t warnings = 0;
  uint64_t infos = 0;
  DataflowStats stats;
};

/// Lints every function of `module`. `threads` caps concurrency (0 =
/// pool default); the result is identical for any value.
LintResult lint_module(const ir::Module& module, uint32_t threads = 0);

/// Serializes to the deterministic trident-analyze/1 JSON document.
support::json::Value lint_to_json(const LintResult& result,
                                  const std::string& target);

}  // namespace trident::analysis
