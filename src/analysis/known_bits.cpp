#include "analysis/known_bits.h"

#include <algorithm>
#include <bit>

#include "ir/eval.h"
#include "support/bits.h"

namespace trident::analysis {

using support::low_mask;

KnownBits KnownBits::unknown(unsigned w) {
  KnownBits kb;
  kb.width = static_cast<uint8_t>(w);
  kb.defined = true;
  return kb;
}

KnownBits KnownBits::constant(uint64_t value, unsigned w) {
  KnownBits kb;
  kb.width = static_cast<uint8_t>(w);
  kb.defined = true;
  kb.ones = value & low_mask(w);
  kb.zeros = ~value & low_mask(w);
  return kb;
}

uint64_t KnownBits::mask() const { return width == 0 ? 0 : low_mask(width); }

bool KnownBits::fully_known() const {
  return defined && width > 0 && known() == mask();
}

uint64_t KnownBits::umax() const { return ~zeros & mask(); }

int64_t KnownBits::smin() const {
  // Minimize: set an unknown sign bit, clear unknown magnitude bits.
  const uint64_t sign = width == 0 ? 0 : 1ULL << (width - 1);
  const uint64_t unknown_bits = ~known() & mask();
  return support::sign_extend(ones | (unknown_bits & sign), width);
}

int64_t KnownBits::smax() const {
  // Maximize: clear an unknown sign bit, set unknown magnitude bits.
  const uint64_t sign = width == 0 ? 0 : 1ULL << (width - 1);
  const uint64_t unknown_bits = ~known() & mask();
  return support::sign_extend(ones | (unknown_bits & ~sign), width);
}

KnownBits kb_and(const KnownBits& a, const KnownBits& b) {
  KnownBits r = KnownBits::unknown(a.width);
  r.ones = a.ones & b.ones;
  r.zeros = (a.zeros | b.zeros) & r.mask();
  return r;
}

KnownBits kb_or(const KnownBits& a, const KnownBits& b) {
  KnownBits r = KnownBits::unknown(a.width);
  r.ones = a.ones | b.ones;
  r.zeros = a.zeros & b.zeros;
  return r;
}

KnownBits kb_xor(const KnownBits& a, const KnownBits& b) {
  KnownBits r = KnownBits::unknown(a.width);
  const uint64_t both = a.known() & b.known();
  const uint64_t v = a.ones ^ b.ones;
  r.ones = v & both;
  r.zeros = ~v & both & r.mask();
  return r;
}

KnownBits kb_not(const KnownBits& a) {
  KnownBits r = a;
  std::swap(r.zeros, r.ones);
  return r;
}

KnownBits kb_add(const KnownBits& a, const KnownBits& b, bool carry_in) {
  KnownBits r = KnownBits::unknown(a.width);
  // Per bit, track the set of possible (a_bit + b_bit + carry) sums as a
  // 2-bit possibility mask over {0, 1} for each of a, b, carry.
  uint8_t carry = carry_in ? 0b10 : 0b01;  // bit0: carry 0 possible, bit1: 1
  for (unsigned i = 0; i < a.width; ++i) {
    const uint64_t bit = 1ULL << i;
    const uint8_t pa = a.ones & bit ? 0b10 : a.zeros & bit ? 0b01 : 0b11;
    const uint8_t pb = b.ones & bit ? 0b10 : b.zeros & bit ? 0b01 : 0b11;
    uint8_t sum_possible = 0;   // possibility mask over result bit {0,1}
    uint8_t carry_possible = 0; // possibility mask over carry-out {0,1}
    for (unsigned va = 0; va < 2; ++va) {
      if (!(pa & (1 << va))) continue;
      for (unsigned vb = 0; vb < 2; ++vb) {
        if (!(pb & (1 << vb))) continue;
        for (unsigned vc = 0; vc < 2; ++vc) {
          if (!(carry & (1 << vc))) continue;
          const unsigned s = va + vb + vc;
          sum_possible |= 1 << (s & 1);
          carry_possible |= 1 << (s >> 1);
        }
      }
    }
    if (sum_possible == 0b01) r.zeros |= bit;
    if (sum_possible == 0b10) r.ones |= bit;
    carry = carry_possible;
  }
  return r;
}

KnownBits kb_sub(const KnownBits& a, const KnownBits& b) {
  return kb_add(a, kb_not(b), /*carry_in=*/true);
}

KnownBits kb_mul(const KnownBits& a, const KnownBits& b) {
  KnownBits r = KnownBits::unknown(a.width);
  if (a.fully_known() && b.fully_known()) {
    return KnownBits::constant(a.value() * b.value(), a.width);
  }
  // Trailing zeros add: the product has at least tz(a) + tz(b) of them.
  const auto tz = [](const KnownBits& kb) {
    unsigned n = 0;
    while (n < kb.width && (kb.zeros >> n) & 1) ++n;
    return n;
  };
  const unsigned z = std::min<unsigned>(a.width, tz(a) + tz(b));
  if (z > 0) r.zeros = low_mask(z);
  return r;
}

// Shift amounts are taken modulo the width (IR semantics), so a fully
// known amount shifts the masks; an unknown amount leaves only what is
// invariant under every possible shift.
KnownBits kb_shl(const KnownBits& a, const KnownBits& amount) {
  KnownBits r = KnownBits::unknown(a.width);
  if (amount.fully_known()) {
    const unsigned s = static_cast<unsigned>(amount.value() % a.width);
    r.ones = (a.ones << s) & r.mask();
    r.zeros = ((a.zeros << s) | (s == 0 ? 0 : low_mask(s))) & r.mask();
    return r;
  }
  // Any shift preserves (and can only grow) the run of trailing zeros.
  unsigned tz = 0;
  while (tz < a.width && (a.zeros >> tz) & 1) ++tz;
  if (tz > 0) r.zeros = low_mask(tz);
  return r;
}

KnownBits kb_lshr(const KnownBits& a, const KnownBits& amount) {
  KnownBits r = KnownBits::unknown(a.width);
  if (amount.fully_known()) {
    const unsigned s = static_cast<unsigned>(amount.value() % a.width);
    r.ones = (a.ones & a.mask()) >> s;
    r.zeros = (((a.zeros & a.mask()) >> s) |
               (s == 0 ? 0 : low_mask(s) << (a.width - s))) &
              r.mask();
    return r;
  }
  // Any shift preserves the run of leading zeros.
  unsigned lz = 0;
  while (lz < a.width && (a.zeros >> (a.width - 1 - lz)) & 1) ++lz;
  if (lz > 0) r.zeros = low_mask(lz) << (a.width - lz);
  return r;
}

KnownBits kb_ashr(const KnownBits& a, const KnownBits& amount) {
  KnownBits r = KnownBits::unknown(a.width);
  if (!amount.fully_known()) {
    // The sign bit's knowledge survives every arithmetic shift.
    const uint64_t sign = 1ULL << (a.width - 1);
    if (a.zeros & sign) r.zeros = sign;
    if (a.ones & sign) r.ones = sign;
    return r;
  }
  const unsigned s = static_cast<unsigned>(amount.value() % a.width);
  const uint64_t sign = 1ULL << (a.width - 1);
  const uint64_t fill = s == 0 ? 0 : low_mask(s) << (a.width - s);
  r.ones = (a.ones & a.mask()) >> s;
  r.zeros = ((a.zeros & a.mask()) >> s) & r.mask();
  if (a.ones & sign) r.ones |= fill;
  if (a.zeros & sign) r.zeros |= fill;
  return r;
}

KnownBits kb_udiv(const KnownBits& a, const KnownBits& b) {
  const unsigned w = a.width;
  if (a.fully_known() && b.fully_known() && b.value() != 0) {
    return KnownBits::constant((a.value() & a.mask()) /
                                   (b.value() & b.mask()),
                               w);
  }
  // Quotient never exceeds the dividend: leading zeros carry over.
  KnownBits r = KnownBits::unknown(w);
  unsigned lz = 0;
  while (lz < w && (a.zeros >> (w - 1 - lz)) & 1) ++lz;
  // A divisor with umin >= 2 halves the quotient at least umin-fold:
  // floor(a / b) < 2^(w - lz) / 2^floor(log2(umin)) on every non-trap
  // execution, which adds floor(log2(umin)) more leading zeros.
  if (b.umin() >= 2) {
    lz = std::min<unsigned>(w, lz + (std::bit_width(b.umin()) - 1));
  }
  if (lz > 0) r.zeros = low_mask(lz) << (w - lz);
  return r;
}

KnownBits kb_urem(const KnownBits& a, const KnownBits& b) {
  const unsigned w = a.width;
  if (a.fully_known() && b.fully_known() && b.value() != 0) {
    return KnownBits::constant((a.value() & a.mask()) %
                                   (b.value() & b.mask()),
                               w);
  }
  KnownBits r = KnownBits::unknown(w);
  // The remainder is < b and <= a, so the leading zeros implied by
  // either bound carry over.
  uint64_t bound = a.umax();  // a mod b <= a
  if (b.umax() > 0) bound = std::min(bound, b.umax() - 1);  // a mod b < b
  const unsigned sig = std::bit_width(bound);
  if (sig < w) r.zeros = low_mask(w - sig) << sig;
  // A power-of-two divisor keeps exactly the low log2(b) bits, so the
  // dividend's knowledge of those bits survives.
  if (b.fully_known() && b.value() != 0 &&
      std::has_single_bit(b.value() & b.mask())) {
    const uint64_t keep = (b.value() & b.mask()) - 1;
    r.ones = a.ones & keep;
    r.zeros |= (a.zeros & keep) | (low_mask(w) & ~keep);
  }
  return r;
}

KnownBits kb_trunc(const KnownBits& a, unsigned to_width) {
  KnownBits r = KnownBits::unknown(to_width);
  r.ones = a.ones & r.mask();
  r.zeros = a.zeros & r.mask();
  return r;
}

KnownBits kb_zext(const KnownBits& a, unsigned to_width) {
  KnownBits r = KnownBits::unknown(to_width);
  r.ones = a.ones;
  r.zeros = (a.zeros & a.mask()) | (r.mask() & ~a.mask());
  return r;
}

KnownBits kb_sext(const KnownBits& a, unsigned to_width) {
  KnownBits r = KnownBits::unknown(to_width);
  const uint64_t sign = 1ULL << (a.width - 1);
  const uint64_t high = r.mask() & ~a.mask();
  r.ones = a.ones & a.mask();
  r.zeros = a.zeros & a.mask();
  if (a.ones & sign) r.ones |= high;
  if (a.zeros & sign) r.zeros |= high;
  return r;
}

KnownBits kb_join(const KnownBits& a, const KnownBits& b) {
  if (!a.defined) return b;
  if (!b.defined) return a;
  KnownBits r = KnownBits::unknown(a.width);
  r.ones = a.ones & b.ones;
  r.zeros = a.zeros & b.zeros;
  return r;
}

namespace {

// Attempts to decide an icmp from the operands' known bits; returns -1
// when undecidable, else 0/1.
int fold_icmp(ir::CmpPred pred, const KnownBits& a, const KnownBits& b) {
  if (a.fully_known() && b.fully_known()) {
    return ir::eval_icmp(pred, a.width, a.value(), b.value()) ? 1 : 0;
  }
  // Bit conflicts decide equality without full knowledge.
  const bool conflict = (a.ones & b.zeros) != 0 || (a.zeros & b.ones) != 0;
  switch (pred) {
    case ir::CmpPred::Eq:
      if (conflict) return 0;
      break;
    case ir::CmpPred::Ne:
      if (conflict) return 1;
      break;
    case ir::CmpPred::ULt:
      if (a.umax() < b.umin()) return 1;
      if (a.umin() >= b.umax()) return 0;
      break;
    case ir::CmpPred::ULe:
      if (a.umax() <= b.umin()) return 1;
      if (a.umin() > b.umax()) return 0;
      break;
    case ir::CmpPred::UGt:
      if (a.umin() > b.umax()) return 1;
      if (a.umax() <= b.umin()) return 0;
      break;
    case ir::CmpPred::UGe:
      if (a.umin() >= b.umax()) return 1;
      if (a.umax() < b.umin()) return 0;
      break;
    case ir::CmpPred::SLt:
      if (a.smax() < b.smin()) return 1;
      if (a.smin() >= b.smax()) return 0;
      break;
    case ir::CmpPred::SLe:
      if (a.smax() <= b.smin()) return 1;
      if (a.smin() > b.smax()) return 0;
      break;
    case ir::CmpPred::SGt:
      if (a.smin() > b.smax()) return 1;
      if (a.smax() <= b.smin()) return 0;
      break;
    case ir::CmpPred::SGe:
      if (a.smin() >= b.smax()) return 1;
      if (a.smax() < b.smin()) return 0;
      break;
    default:
      break;
  }
  return -1;
}

}  // namespace

KnownBits KnownBitsAnalysis::of_value(const ir::Value& v) const {
  const unsigned w = func_.value_type(v).width();
  switch (v.kind) {
    case ir::Value::Kind::Inst:
      return inst_[v.index];
    case ir::Value::Kind::Const: {
      const auto& c = func_.constants[v.index];
      return KnownBits::constant(c.raw, c.type.width());
    }
    case ir::Value::Kind::Arg:
    case ir::Value::Kind::Global:
    case ir::Value::Kind::None:
      return KnownBits::unknown(w == 0 ? 64 : w);
  }
  return KnownBits::unknown(w);
}

KnownBits KnownBitsAnalysis::transfer(uint32_t id) const {
  const auto& inst = func_.insts[id];
  const unsigned w = inst.type.width();
  const auto op = [&](uint32_t i) { return of_value(inst.operands[i]); };
  switch (inst.op) {
    case ir::Opcode::And: return kb_and(op(0), op(1));
    case ir::Opcode::Or: return kb_or(op(0), op(1));
    case ir::Opcode::Xor: return kb_xor(op(0), op(1));
    case ir::Opcode::Add: return kb_add(op(0), op(1), false);
    case ir::Opcode::Sub: return kb_sub(op(0), op(1));
    case ir::Opcode::Mul: return kb_mul(op(0), op(1));
    case ir::Opcode::Shl: return kb_shl(op(0), op(1));
    case ir::Opcode::LShr: return kb_lshr(op(0), op(1));
    case ir::Opcode::AShr: return kb_ashr(op(0), op(1));
    case ir::Opcode::Trunc: return kb_trunc(op(0), w);
    case ir::Opcode::ZExt: return kb_zext(op(0), w);
    case ir::Opcode::SExt: return kb_sext(op(0), w);
    case ir::Opcode::Bitcast: {
      // Same-width reinterpret: the raw bit pattern carries over.
      KnownBits a = op(0);
      a.width = static_cast<uint8_t>(w);
      return a;
    }
    case ir::Opcode::UDiv: return kb_udiv(op(0), op(1));
    case ir::Opcode::URem: return kb_urem(op(0), op(1));
    case ir::Opcode::ICmp: {
      const KnownBits a = op(0), b = op(1);
      if (!a.defined || !b.defined) {
        KnownBits r;
        r.width = 1;
        return r;  // optimistic: wait for the operands
      }
      const int folded = fold_icmp(inst.pred, a, b);
      if (folded >= 0) {
        return KnownBits::constant(static_cast<uint64_t>(folded), 1);
      }
      return KnownBits::unknown(1);
    }
    case ir::Opcode::Select: {
      const KnownBits c = op(0);
      if (c.fully_known()) return c.value() & 1 ? op(1) : op(2);
      return kb_join(op(1), op(2));
    }
    case ir::Opcode::Phi: {
      KnownBits r;  // undefined: identity of the optimistic join
      r.width = static_cast<uint8_t>(w);
      for (uint32_t i = 0; i < inst.operands.size(); ++i) {
        // Skip edges from unreachable predecessors entirely.
        if (inst.incoming[i] < func_.blocks.size() &&
            !cfg_.reachable(inst.incoming[i])) {
          continue;
        }
        r = kb_join(r, of_value(inst.operands[i]));
      }
      return r;
    }
    default:
      // Loads, calls, float ops, divisions with signs, pointers: nothing
      // is statically known about the bit pattern.
      return KnownBits::unknown(w == 0 ? 0 : w);
  }
}

KnownBitsAnalysis::KnownBitsAnalysis(const ir::Function& func, const CFG& cfg,
                                     const DefUse& def_use,
                                     DataflowStats* stats)
    : func_(func), cfg_(cfg) {
  inst_.resize(func.num_insts());
  for (uint32_t id = 0; id < func.num_insts(); ++id) {
    inst_[id].width = static_cast<uint8_t>(func.insts[id].type.width());
  }

  // Priority = program position in RPO block order, so defs are normally
  // computed before their uses and loop bodies iterate locally.
  std::vector<uint32_t> prio(func.num_insts(), ~0u);
  uint32_t next = 0;
  for (const uint32_t bb : cfg.rpo()) {
    for (const uint32_t id : func.blocks[bb].insts) prio[id] = next++;
  }
  Worklist wl(std::move(prio));
  for (const uint32_t bb : cfg.rpo()) {
    for (const uint32_t id : func.blocks[bb].insts) {
      if (func.insts[id].has_result()) wl.push(id);
    }
    if (stats != nullptr) ++stats->blocks_visited;
  }

  uint32_t id = 0;
  while (wl.pop(id)) {
    if (stats != nullptr) ++stats->fixpoint_iterations;
    const KnownBits computed = transfer(id);
    KnownBits& slot = inst_[id];
    KnownBits next_state = slot;
    if (!slot.defined) {
      next_state = computed;
    } else if (computed.defined) {
      // Monotone descent: keep only the knowledge both rounds agree on,
      // which bounds each value to width+1 lattice moves.
      next_state = kb_join(slot, computed);
    }
    if (next_state != slot) {
      slot = next_state;
      for (const auto& use : def_use.users_of_inst(id)) {
        if (func.insts[use.user].has_result()) wl.push(use.user);
      }
    }
  }

  // Anything still undefined (unreachable code, cyclic phis with no
  // defined input) degrades to defined-unknown for downstream clients.
  for (auto& kb : inst_) {
    if (!kb.defined) kb = KnownBits::unknown(kb.width);
  }
}

}  // namespace trident::analysis
