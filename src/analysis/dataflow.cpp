#include "analysis/dataflow.h"

namespace trident::analysis {

Worklist::Worklist(std::vector<uint32_t> priorities)
    : priorities_(std::move(priorities)),
      queued_(priorities_.size(), 0) {}

void Worklist::push(uint32_t item) {
  if (queued_[item]) return;
  queued_[item] = 1;
  queue_.emplace(priorities_[item], item);
}

bool Worklist::pop(uint32_t& item) {
  if (queue_.empty()) return false;
  const auto it = queue_.begin();
  item = it->second;
  queue_.erase(it);
  queued_[item] = 0;
  return true;
}

}  // namespace trident::analysis
