#include "analysis/cfg.h"

#include <algorithm>

namespace trident::analysis {

CFG::CFG(const ir::Function& func) {
  const auto n = static_cast<uint32_t>(func.blocks.size());
  succs_.resize(n);
  preds_.resize(n);
  rpo_index_.assign(n, ~0u);

  for (uint32_t bb = 0; bb < n; ++bb) {
    if (func.blocks[bb].insts.empty()) continue;
    const auto& term = func.inst(func.terminator(bb));
    switch (term.op) {
      case ir::Opcode::Br:
        succs_[bb].push_back(term.succ[0]);
        break;
      case ir::Opcode::CondBr:
        succs_[bb].push_back(term.succ[0]);
        if (term.succ[1] != term.succ[0]) succs_[bb].push_back(term.succ[1]);
        break;
      case ir::Opcode::Ret:
        exits_.push_back(bb);
        break;
      default:
        break;  // malformed; the verifier reports it
    }
    for (const auto s : succs_[bb]) {
      if (s < n) preds_[s].push_back(bb);
    }
  }

  // Iterative post-order DFS from the entry block.
  if (n == 0) return;
  std::vector<uint8_t> state(n, 0);  // 0 = unseen, 1 = open, 2 = done
  std::vector<std::pair<uint32_t, uint32_t>> stack;  // (block, next succ idx)
  std::vector<uint32_t> post;
  stack.emplace_back(0, 0);
  state[0] = 1;
  while (!stack.empty()) {
    auto& [bb, next] = stack.back();
    if (next < succs_[bb].size()) {
      const auto s = succs_[bb][next++];
      if (s < n && state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      post.push_back(bb);
      state[bb] = 2;
      stack.pop_back();
    }
  }
  rpo_.assign(post.rbegin(), post.rend());
  for (uint32_t i = 0; i < rpo_.size(); ++i) rpo_index_[rpo_[i]] = i;
}

}  // namespace trident::analysis
