#include "analysis/demanded_bits.h"

#include <bit>

#include "support/bits.h"

namespace trident::analysis {

using support::low_mask;

namespace {

uint64_t full_mask(unsigned width) { return low_mask(width == 0 ? 64 : width); }

// Demanded bits that can carry into any bit at or below the highest
// demanded result bit (add/sub/mul/gep-index: carries go upward only).
uint64_t upward_carry_demand(uint64_t demanded) {
  return demanded == 0 ? 0 : low_mask(std::bit_width(demanded));
}

// Bits of a shift amount that can change the effective (mod width)
// shift: log2(width) bits for power-of-two widths, everything otherwise.
uint64_t amount_demand(unsigned width, unsigned amount_width) {
  if (!std::has_single_bit(static_cast<uint64_t>(width))) {
    return full_mask(amount_width);
  }
  const unsigned bits = std::countr_zero(static_cast<uint64_t>(width));
  return bits == 0 ? 0 : low_mask(bits) & full_mask(amount_width);
}

}  // namespace

uint64_t demanded_operand_bits(const ir::Function& func,
                               const ir::Instruction& user,
                               uint32_t operand_index, uint64_t demanded,
                               const KnownBitsAnalysis& known) {
  const auto& v = user.operands[operand_index];
  const unsigned vw = func.value_type(v).width();
  const uint64_t full = full_mask(vw);
  const uint64_t d = demanded;
  switch (user.op) {
    // Roots: these demand their operands no matter what downstream does.
    case ir::Opcode::Store:
    case ir::Opcode::CondBr:
    case ir::Opcode::Ret:
    case ir::Opcode::Call:
    case ir::Opcode::Print:
    case ir::Opcode::Detect:
    case ir::Opcode::Memcpy:
    case ir::Opcode::Load:  // operand is the (trap-capable) address
      return full;
    // Divisions trap on bad operand values, which is observable even
    // when the quotient itself is dead.
    case ir::Opcode::SDiv:
    case ir::Opcode::UDiv:
    case ir::Opcode::SRem:
    case ir::Opcode::URem:
      return full;

    case ir::Opcode::And: {
      // "The other operand forces this bit" assumes the operands are
      // independent registers. For x & x (both operands the same value)
      // a flipped bit changes both sides at once, so the forced-bit
      // argument is invalid — found by the fuzzer's dont-care-flip
      // oracle (tests/fuzz_corpus/demanded_and_or_alias.tir).
      const ir::Value& other_v = user.operands[1 - operand_index];
      if (other_v == v) return d;
      return d & ~known.of_value(other_v).zeros;
    }
    case ir::Opcode::Or: {
      const ir::Value& other_v = user.operands[1 - operand_index];
      if (other_v == v) return d;
      return d & ~known.of_value(other_v).ones;
    }
    case ir::Opcode::Xor:
      return d;
    case ir::Opcode::Add:
    case ir::Opcode::Sub:
    case ir::Opcode::Mul:
      return upward_carry_demand(d);
    case ir::Opcode::Shl: {
      const unsigned w = user.type.width();
      if (operand_index == 1) return d == 0 ? 0 : amount_demand(w, vw);
      const KnownBits amount = known.of_value(user.operands[1]);
      if (amount.fully_known()) {
        return d >> (amount.value() % w);
      }
      return upward_carry_demand(d);
    }
    case ir::Opcode::LShr:
    case ir::Opcode::AShr: {
      const unsigned w = user.type.width();
      if (operand_index == 1) return d == 0 ? 0 : amount_demand(w, vw);
      const uint64_t sign = 1ULL << (w - 1);
      const KnownBits amount = known.of_value(user.operands[1]);
      if (amount.fully_known()) {
        const unsigned s = static_cast<unsigned>(amount.value() % w);
        uint64_t r = (d << s) & full;
        if (user.op == ir::Opcode::AShr && s > 0 &&
            (d & (low_mask(s) << (w - s))) != 0) {
          r |= sign;  // the shifted-in copies of the sign bit
        }
        return r;
      }
      // Unknown amount: a demanded bit could come from any position at
      // or above the lowest demanded bit (plus the ashr sign fill).
      if (d == 0) return 0;
      const unsigned lsb = static_cast<unsigned>(std::countr_zero(d));
      uint64_t r = full & ~(lsb == 0 ? 0 : low_mask(lsb));
      if (user.op == ir::Opcode::AShr) r |= sign;
      return r;
    }
    case ir::Opcode::Trunc:
      return d;  // high source bits are dropped, never demanded here
    case ir::Opcode::ZExt:
      return d & full;
    case ir::Opcode::SExt: {
      uint64_t r = d & full;
      if ((d & ~full) != 0) r |= 1ULL << (vw - 1);  // the replicated sign
      return r;
    }
    case ir::Opcode::Bitcast:
      return d;
    case ir::Opcode::ICmp:
    case ir::Opcode::FCmp:
      return d == 0 ? 0 : full;
    case ir::Opcode::Select:
      if (operand_index == 0) return d == 0 ? 0 : 1;
      return d;
    case ir::Opcode::Phi:
      return d;
    case ir::Opcode::Gep:
      // Address arithmetic: base + index * elem_size. Loads/stores demand
      // the whole address, so in practice this passes `full` through.
      if (operand_index == 0) return d == 0 ? 0 : full;
      return upward_carry_demand(d);
    default:
      // Float arithmetic and float<->int casts: any operand bit can move
      // the result (no bit-level structure worth modeling).
      return d == 0 ? 0 : full;
  }
}

DemandedBitsAnalysis::DemandedBitsAnalysis(const ir::Function& func,
                                           const CFG& cfg,
                                           const DefUse& def_use,
                                           const KnownBitsAnalysis& known,
                                           DataflowStats* stats)
    : inst_(func.num_insts(), 0), arg_(func.params.size(), 0) {
  (void)def_use;
  // Backward priority: later program positions (in RPO block order) pop
  // first, so demands flow def-ward with few revisits.
  std::vector<uint32_t> prio(func.num_insts(), ~0u);
  uint32_t pos = 0;
  std::vector<uint32_t> order;
  order.reserve(func.num_insts());
  for (const uint32_t bb : cfg.rpo()) {
    for (const uint32_t id : func.blocks[bb].insts) order.push_back(id);
    if (stats != nullptr) ++stats->blocks_visited;
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    prio[*it] = pos++;
  }
  Worklist wl(std::move(prio));

  const auto process = [&](uint32_t user) {
    const auto& inst = func.insts[user];
    const uint64_t d = inst_[user];
    for (uint32_t p = 0; p < inst.operands.size(); ++p) {
      const auto& v = inst.operands[p];
      if (!v.is_inst() && !v.is_arg()) continue;
      const uint64_t bits = demanded_operand_bits(func, inst, p, d, known);
      if (bits == 0) continue;
      if (v.is_arg()) {
        arg_[v.index] |= bits;
        continue;
      }
      const uint64_t merged = inst_[v.index] | bits;
      if (merged != inst_[v.index]) {
        inst_[v.index] = merged;
        wl.push(v.index);
      }
    }
  };

  // Seed pass: every reachable instruction contributes its root demands
  // (and nothing else yet, as all demanded masks start at zero).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (stats != nullptr) ++stats->fixpoint_iterations;
    process(*it);
  }
  uint32_t id = 0;
  while (wl.pop(id)) {
    if (stats != nullptr) ++stats->fixpoint_iterations;
    process(id);
  }
}

}  // namespace trident::analysis
