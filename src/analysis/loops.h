// Natural-loop detection via back edges (edge u->h where h dominates u).
// The fc sub-model uses this to classify branches as Loop-Terminating
// (LT) vs Non-Loop-Terminating (NLT), per paper §IV-D.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/dominators.h"

namespace trident::analysis {

struct Loop {
  uint32_t header = ir::kNoBlock;
  std::vector<uint32_t> latches;  // sources of back edges into header
  std::vector<uint32_t> blocks;   // natural loop body (includes header)
};

class LoopInfo {
 public:
  LoopInfo(const CFG& cfg, const DomTree& dom);

  const std::vector<Loop>& loops() const { return loops_; }

  /// Innermost loop containing `bb`, or ~0u.
  uint32_t innermost_loop(uint32_t bb) const { return innermost_[bb]; }

  /// All loops containing `bb` (innermost first).
  std::vector<uint32_t> loops_containing(uint32_t bb) const;

  bool in_loop(uint32_t loop_id, uint32_t bb) const;

  /// True iff edge (u, v) is a back edge of some natural loop.
  bool is_back_edge(uint32_t u, uint32_t v) const;

  /// A conditional branch in `bb` is loop-terminating iff `bb` lies in a
  /// loop and at least one successor leaves that loop (or the branch is
  /// the latch controlling re-entry to the header). Returns the id of the
  /// loop the branch can exit, or ~0u if the branch is NLT.
  uint32_t exiting_loop(uint32_t bb, const std::vector<uint32_t>& succs) const;

 private:
  const CFG& cfg_;
  std::vector<Loop> loops_;
  std::vector<uint32_t> innermost_;
  std::vector<std::vector<uint32_t>> membership_;  // bb -> loop ids
};

}  // namespace trident::analysis
