#include "analysis/bit_facts.h"

#include "analysis/cfg.h"
#include "analysis/def_use.h"
#include "analysis/demanded_bits.h"
#include "support/bits.h"
#include "support/thread_pool.h"

namespace trident::analysis {

BitFacts::BitFacts(const ir::Module& module, uint32_t threads)
    : module_(module), funcs_(module.functions.size()) {
  const auto solve_one = [&](uint64_t f) {
    const auto& func = module.functions[f];
    auto& facts = funcs_[f];
    const CFG cfg(func);
    const DefUse def_use(func);
    KnownBitsAnalysis known(func, cfg, def_use, &facts.stats);
    DemandedBitsAnalysis demanded(func, cfg, def_use, known, &facts.stats);
    facts.known.resize(func.num_insts());
    facts.demanded.resize(func.num_insts());
    for (uint32_t id = 0; id < func.num_insts(); ++id) {
      facts.known[id] = known.of_inst(id);
      facts.demanded[id] = demanded.of_inst(id);
    }
    facts.arg_demanded.resize(func.params.size());
    for (uint32_t a = 0; a < func.params.size(); ++a) {
      facts.arg_demanded[a] = demanded.of_arg(a);
    }
    for (uint32_t id = 0; id < func.num_insts(); ++id) {
      const auto& inst = func.insts[id];
      if (!inst.has_result() || !cfg.reachable(inst.block)) continue;
      const unsigned w = inst.type.width();
      facts.stats.masked_bits_total +=
          w - support::popcount_low(facts.demanded[id], w);
    }
  };

  const uint32_t workers =
      threads == 0 ? support::ThreadPool::default_threads() : threads;
  if (workers <= 1 || funcs_.size() <= 1) {
    for (uint64_t f = 0; f < funcs_.size(); ++f) solve_one(f);
  } else {
    support::ThreadPool::global().parallel_for(funcs_.size(), solve_one,
                                               workers);
  }
}

unsigned BitFacts::masked_bits(ir::InstRef ref) const {
  const auto& inst = module_.functions[ref.func].insts[ref.inst];
  if (!inst.has_result()) return 0;
  const unsigned w = inst.type.width();
  return w - support::popcount_low(demanded(ref), w);
}

double BitFacts::influence_fraction(ir::InstRef ref) const {
  const auto& inst = module_.functions[ref.func].insts[ref.inst];
  if (!inst.has_result()) return 1.0;
  const unsigned w = inst.type.width();
  if (w == 0) return 1.0;
  return static_cast<double>(support::popcount_low(demanded(ref), w)) / w;
}

DataflowStats BitFacts::stats() const {
  DataflowStats total;
  for (const auto& f : funcs_) total += f.stats;
  return total;
}

}  // namespace trident::analysis
