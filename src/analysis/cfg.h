// Control-flow graph view of a function: successor/predecessor lists,
// reachability, and reverse post-order. All other analyses build on this.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/function.h"

namespace trident::analysis {

class CFG {
 public:
  explicit CFG(const ir::Function& func);

  const std::vector<uint32_t>& succs(uint32_t bb) const { return succs_[bb]; }
  const std::vector<uint32_t>& preds(uint32_t bb) const { return preds_[bb]; }

  /// Reverse post-order over blocks reachable from the entry.
  const std::vector<uint32_t>& rpo() const { return rpo_; }
  /// Position of `bb` in rpo(); ~0u if unreachable.
  uint32_t rpo_index(uint32_t bb) const { return rpo_index_[bb]; }
  bool reachable(uint32_t bb) const { return rpo_index_[bb] != ~0u; }

  /// Blocks whose terminator is Ret.
  const std::vector<uint32_t>& exit_blocks() const { return exits_; }

  size_t num_blocks() const { return succs_.size(); }

 private:
  std::vector<std::vector<uint32_t>> succs_;
  std::vector<std::vector<uint32_t>> preds_;
  std::vector<uint32_t> rpo_;
  std::vector<uint32_t> rpo_index_;
  std::vector<uint32_t> exits_;
};

}  // namespace trident::analysis
