// Module-level bit-fact bundle: known bits + demanded bits for every
// function, solved independently per function (and therefore safely in
// parallel) with deterministic results at any thread count.
//
// This is the interface the model layer consumes: `influence_fraction`
// bounds the probability that a uniformly chosen bit flip in a result
// register can influence any store/branch/output, which the
// `trident_bits` ModelConfig uses as a sound cap on predicted SDC.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/dataflow.h"
#include "analysis/known_bits.h"
#include "ir/module.h"

namespace trident::analysis {

class BitFacts {
 public:
  struct FunctionFacts {
    std::vector<KnownBits> known;    // per instruction result
    std::vector<uint64_t> demanded;  // per instruction result
    std::vector<uint64_t> arg_demanded;
    DataflowStats stats;
  };

  /// Solves every function. `threads` caps concurrency (0 = pool
  /// default); results are identical for any value.
  explicit BitFacts(const ir::Module& module, uint32_t threads = 0);

  const FunctionFacts& func(uint32_t f) const { return funcs_[f]; }

  const KnownBits& known(ir::InstRef ref) const {
    return funcs_[ref.func].known[ref.inst];
  }
  uint64_t demanded(ir::InstRef ref) const {
    return funcs_[ref.func].demanded[ref.inst];
  }

  /// Number of result bits of `ref` that provably cannot influence any
  /// root (0 for instructions without a result).
  unsigned masked_bits(ir::InstRef ref) const;

  /// Fraction of result bits that CAN influence a root: an upper bound
  /// on the probability that a uniform single-bit flip of the result
  /// matters. 1.0 when nothing is known, 0.0 for fully dead values.
  double influence_fraction(ir::InstRef ref) const;

  /// Aggregate solver cost over all functions (masked_bits_total counts
  /// the statically masked result bits found module-wide).
  DataflowStats stats() const;

 private:
  const ir::Module& module_;
  std::vector<FunctionFacts> funcs_;
};

}  // namespace trident::analysis
