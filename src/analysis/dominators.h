// Dominator and post-dominator trees (Cooper-Harvey-Kennedy iterative
// algorithm). The post-dominator tree uses a virtual exit node joining all
// Ret blocks, identified by DomTree::virtual_exit().
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/cfg.h"

namespace trident::analysis {

class DomTree {
 public:
  /// Builds the dominator tree rooted at the entry block.
  static DomTree dominators(const CFG& cfg);
  /// Builds the post-dominator tree rooted at a virtual exit node
  /// (id == cfg.num_blocks()) that succeeds every Ret block.
  static DomTree post_dominators(const CFG& cfg);

  /// Immediate dominator of `bb`; kNoBlock for the root or unreachable
  /// blocks. For post-dominators the root is the virtual exit.
  uint32_t idom(uint32_t bb) const { return idom_[bb]; }

  /// Whether `a` (post-)dominates `b`. Reflexive. Nodes absent from the
  /// tree (unreachable) dominate nothing and are dominated by nothing.
  bool dominates(uint32_t a, uint32_t b) const;

  uint32_t root() const { return root_; }
  /// Valid only for trees built by post_dominators().
  uint32_t virtual_exit() const { return root_; }

  size_t num_nodes() const { return idom_.size(); }

 private:
  DomTree() = default;
  static DomTree build(uint32_t num_nodes, uint32_t root,
                       const std::vector<std::vector<uint32_t>>& preds,
                       const std::vector<uint32_t>& rpo);

  std::vector<uint32_t> idom_;
  std::vector<uint32_t> depth_;  // depth in the tree; ~0u if absent
  uint32_t root_ = 0;
};

}  // namespace trident::analysis
