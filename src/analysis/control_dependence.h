// Control dependence (Ferrante, Ottenstein & Warren): block B is control
// dependent on branch edge (A -> C) iff B post-dominates C but does not
// strictly post-dominate A. The fc sub-model uses this to find the store
// instructions whose execution is decided by a corrupted branch.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/dominators.h"

namespace trident::analysis {

class ControlDependence {
 public:
  ControlDependence(const CFG& cfg, const DomTree& postdom);

  /// Blocks control-dependent on the edge from `branch_bb` to its
  /// successor `succ` (the walk from succ up the post-dominator tree to,
  /// exclusively, ipostdom(branch_bb)).
  std::vector<uint32_t> dependent_on_edge(uint32_t branch_bb,
                                          uint32_t succ) const;

  /// Union of dependent_on_edge over all successors of `branch_bb`:
  /// every block whose execution is decided by the branch direction.
  std::vector<uint32_t> dependent_on_branch(uint32_t branch_bb) const;

 private:
  const CFG& cfg_;
  const DomTree& postdom_;
};

}  // namespace trident::analysis
