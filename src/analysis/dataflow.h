// Generic worklist dataflow engine.
//
// Two layers share one deterministic priority worklist:
//
//  * solve_block_dataflow: the classic per-block in/out fixpoint over a
//    `BlockProblem` (a C++20 concept below). Forward problems iterate in
//    reverse post-order, backward problems in post-order, so each SCC of
//    the CFG is visited contiguously and acyclic regions converge in one
//    pass.
//  * Worklist: the ordered worklist itself, reused by the sparse per-SSA-
//    value solvers (known bits, demanded bits) which key work items by
//    instruction id with an RPO-derived priority.
//
// All iteration orders are fully determined by (priority, item id), so a
// solve is bit-identical across runs and thread counts; parallelism comes
// from running independent per-function solves concurrently (bit_facts).
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <set>
#include <vector>

#include "analysis/cfg.h"

namespace trident::analysis {

/// Cost counters of one or more dataflow solves. Aggregated per function
/// and per module; exported as the obs `analysis.*` counters so eval
/// manifests record what static analysis cost.
struct DataflowStats {
  uint64_t blocks_visited = 0;      // block transfer evaluations
  uint64_t fixpoint_iterations = 0; // worklist pops (block + sparse)
  uint64_t masked_bits_total = 0;   // statically-masked result bits found

  DataflowStats& operator+=(const DataflowStats& o) {
    blocks_visited += o.blocks_visited;
    fixpoint_iterations += o.fixpoint_iterations;
    masked_bits_total += o.masked_bits_total;
    return *this;
  }
};

/// Deterministic priority worklist over dense uint32 items: pops the
/// pending item with the smallest (priority, item) pair; re-pushing a
/// queued item is a no-op. Iteration count is exactly the number of pops.
class Worklist {
 public:
  /// `priorities[i]` orders item i; items with equal priority pop in item
  /// order. Size fixes the item universe [0, priorities.size()).
  explicit Worklist(std::vector<uint32_t> priorities);

  void push(uint32_t item);
  /// Pops the smallest pending item into `item`; false when empty.
  bool pop(uint32_t& item);
  bool empty() const { return queue_.empty(); }

 private:
  std::vector<uint32_t> priorities_;
  std::vector<uint8_t> queued_;
  std::set<std::pair<uint32_t, uint32_t>> queue_;  // (priority, item)
};

/// A joinable dataflow value: merge returns true iff the destination
/// changed (i.e. the lattice point moved).
template <typename P, typename S>
concept LatticeOps = requires(const P& p, S& dst, const S& src) {
  { p.merge(dst, src) } -> std::same_as<bool>;
};

/// A block-level dataflow problem. `State` flows along CFG edges:
/// forward problems map in -> out per block, backward problems map
/// out -> in (the engine handles edge orientation).
template <typename P>
concept BlockProblem =
    requires(const P& p, uint32_t bb, const typename P::State& s) {
      typename P::State;
      { P::kForward } -> std::convertible_to<bool>;
      /// State at the boundary (entry block for forward, exit blocks for
      /// backward).
      { p.boundary() } -> std::same_as<typename P::State>;
      /// Identity of merge: the initial state of every block.
      { p.top() } -> std::same_as<typename P::State>;
      /// Transfer across block `bb`.
      { p.transfer(bb, s) } -> std::same_as<typename P::State>;
    } && LatticeOps<P, typename P::State>;

/// Per-block fixpoint solution: `in[bb]` is the state entering the block,
/// `out[bb]` the state leaving it (program order; for backward problems
/// `out` is what the transfer consumed and `in` what it produced).
template <typename State>
struct BlockStates {
  std::vector<State> in;
  std::vector<State> out;
};

/// Runs `problem` to a fixpoint over `cfg` and returns the per-block
/// states. Unreachable blocks keep top(). Deterministic for any problem
/// whose transfer/merge are pure functions of their inputs.
template <BlockProblem P>
BlockStates<typename P::State> solve_block_dataflow(const CFG& cfg,
                                                    const P& problem,
                                                    DataflowStats* stats) {
  using State = typename P::State;
  const auto n = static_cast<uint32_t>(cfg.num_blocks());
  BlockStates<State> bs;
  bs.in.assign(n, problem.top());
  bs.out.assign(n, problem.top());

  // Priority = position in the direction-appropriate order: RPO for
  // forward (defs before uses of the state), post-order for backward.
  std::vector<uint32_t> prio(n, ~0u);
  const auto& rpo = cfg.rpo();
  for (uint32_t i = 0; i < rpo.size(); ++i) {
    prio[rpo[i]] =
        P::kForward ? i : static_cast<uint32_t>(rpo.size()) - 1 - i;
  }
  Worklist wl(std::move(prio));
  for (const uint32_t bb : rpo) wl.push(bb);

  const auto edge_sources = [&](uint32_t bb) -> const std::vector<uint32_t>& {
    return P::kForward ? cfg.preds(bb) : cfg.succs(bb);
  };
  const auto edge_targets = [&](uint32_t bb) -> const std::vector<uint32_t>& {
    return P::kForward ? cfg.succs(bb) : cfg.preds(bb);
  };

  uint32_t bb = 0;
  while (wl.pop(bb)) {
    if (stats != nullptr) {
      ++stats->fixpoint_iterations;
      ++stats->blocks_visited;
    }
    // Confluence: join the flow-in state over incoming edges.
    State entry = problem.top();
    bool is_boundary = P::kForward ? bb == 0 : false;
    if (!P::kForward) {
      const auto& exits = cfg.exit_blocks();
      is_boundary = std::find(exits.begin(), exits.end(), bb) != exits.end();
    }
    if (is_boundary) problem.merge(entry, problem.boundary());
    for (const uint32_t src : edge_sources(bb)) {
      if (!cfg.reachable(src)) continue;
      problem.merge(entry, P::kForward ? bs.out[src] : bs.in[src]);
    }
    const State exit = problem.transfer(bb, entry);
    (P::kForward ? bs.in : bs.out)[bb] = std::move(entry);
    // Every reachable block is seeded in the worklist, so dependents only
    // need a re-visit when this block's flow-out state actually moved.
    State& slot = (P::kForward ? bs.out : bs.in)[bb];
    if (problem.merge(slot, exit)) {
      for (const uint32_t t : edge_targets(bb)) {
        if (cfg.reachable(t)) wl.push(t);
      }
    }
  }
  return bs;
}

}  // namespace trident::analysis
