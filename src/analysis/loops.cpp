#include "analysis/loops.h"

#include <algorithm>
#include <map>

namespace trident::analysis {

LoopInfo::LoopInfo(const CFG& cfg, const DomTree& dom) : cfg_(cfg) {
  const auto n = static_cast<uint32_t>(cfg.num_blocks());
  innermost_.assign(n, ~0u);
  membership_.resize(n);

  // Group back edges by header so a header with several latches forms a
  // single loop.
  std::map<uint32_t, std::vector<uint32_t>> latches_by_header;
  for (uint32_t u = 0; u < n; ++u) {
    if (!cfg.reachable(u)) continue;
    for (const auto v : cfg.succs(u)) {
      if (dom.dominates(v, u)) latches_by_header[v].push_back(u);
    }
  }

  for (auto& [header, latches] : latches_by_header) {
    Loop loop;
    loop.header = header;
    loop.latches = latches;
    // Natural loop body: header plus all blocks that reach a latch
    // without passing through the header (backward DFS from latches).
    std::vector<bool> in_body(n, false);
    in_body[header] = true;
    std::vector<uint32_t> work = latches;
    for (const auto l : latches) in_body[l] = true;
    while (!work.empty()) {
      const auto bb = work.back();
      work.pop_back();
      if (bb == header) continue;
      for (const auto p : cfg.preds(bb)) {
        if (!in_body[p] && cfg.reachable(p)) {
          in_body[p] = true;
          work.push_back(p);
        }
      }
    }
    for (uint32_t bb = 0; bb < n; ++bb) {
      if (in_body[bb]) loop.blocks.push_back(bb);
    }
    loops_.push_back(std::move(loop));
  }

  // Innermost = smallest containing loop (natural loops nest or are
  // disjoint, so block count orders containment).
  for (uint32_t id = 0; id < loops_.size(); ++id) {
    for (const auto bb : loops_[id].blocks) {
      membership_[bb].push_back(id);
      if (innermost_[bb] == ~0u ||
          loops_[id].blocks.size() < loops_[innermost_[bb]].blocks.size()) {
        innermost_[bb] = id;
      }
    }
  }
  for (auto& m : membership_) {
    std::sort(m.begin(), m.end(), [&](uint32_t a, uint32_t b) {
      return loops_[a].blocks.size() < loops_[b].blocks.size();
    });
  }
}

std::vector<uint32_t> LoopInfo::loops_containing(uint32_t bb) const {
  return membership_[bb];
}

bool LoopInfo::in_loop(uint32_t loop_id, uint32_t bb) const {
  const auto& blocks = loops_[loop_id].blocks;
  return std::binary_search(blocks.begin(), blocks.end(), bb);
}

bool LoopInfo::is_back_edge(uint32_t u, uint32_t v) const {
  for (const auto& loop : loops_) {
    if (loop.header == v &&
        std::find(loop.latches.begin(), loop.latches.end(), u) !=
            loop.latches.end()) {
      return true;
    }
  }
  return false;
}

uint32_t LoopInfo::exiting_loop(uint32_t bb,
                                const std::vector<uint32_t>& succs) const {
  for (const auto loop_id : membership_[bb]) {
    for (const auto s : succs) {
      if (!in_loop(loop_id, s)) return loop_id;
    }
  }
  return ~0u;
}

}  // namespace trident::analysis
