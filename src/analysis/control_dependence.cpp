#include "analysis/control_dependence.h"

#include <algorithm>

namespace trident::analysis {

ControlDependence::ControlDependence(const CFG& cfg, const DomTree& postdom)
    : cfg_(cfg), postdom_(postdom) {}

std::vector<uint32_t> ControlDependence::dependent_on_edge(
    uint32_t branch_bb, uint32_t succ) const {
  std::vector<uint32_t> out;
  const uint32_t stop = postdom_.idom(branch_bb);
  // Walk succ -> ipdom(succ) -> ... until reaching ipdom(branch_bb).
  // Every node on the walk post-dominates succ but not branch_bb.
  uint32_t node = succ;
  while (node != stop && node != ir::kNoBlock &&
         node != postdom_.virtual_exit()) {
    out.push_back(node);
    if (node == branch_bb) break;  // loop: the branch depends on itself
    node = postdom_.idom(node);
  }
  return out;
}

std::vector<uint32_t> ControlDependence::dependent_on_branch(
    uint32_t branch_bb) const {
  std::vector<uint32_t> out;
  for (const auto s : cfg_.succs(branch_bb)) {
    for (const auto bb : dependent_on_edge(branch_bb, s)) {
      if (std::find(out.begin(), out.end(), bb) == out.end()) {
        out.push_back(bb);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace trident::analysis
