#include "serve/client.h"

#include <stdexcept>

#include "serve/protocol.h"
#include "serve/session.h"

namespace trident::serve {

namespace json = support::json;

struct Client::Impl {
  std::unique_ptr<LineChannel> channel;
  uint64_t session_id = 0;
  uint64_t next_id = 0;
};

Client::Client(const std::string& socket_path) : impl_(new Impl) {
  std::string error;
  const int fd = connect_unix(socket_path, &error);
  if (fd < 0) throw std::runtime_error("trident client: " + error);
  impl_->channel = std::make_unique<LineChannel>(fd);

  std::string line;
  if (!impl_->channel->read_line(&line)) {
    throw std::runtime_error(
        "trident client: daemon closed the connection before hello");
  }
  Event hello;
  if (!parse_event(line, &hello, &error) ||
      hello.kind != Event::Kind::Hello) {
    throw std::runtime_error("trident client: bad hello: " + error);
  }
  impl_->session_id = hello.session;
}

Client::~Client() = default;

uint64_t Client::session_id() const { return impl_->session_id; }

json::Value Client::call(json::Value request, const ProgressFn& progress) {
  const uint64_t id = ++impl_->next_id;
  request.set("id", json::Value(id));
  if (!impl_->channel->send_line(request.write() + "\n")) {
    throw std::runtime_error("trident client: daemon connection lost");
  }
  std::string line;
  while (impl_->channel->read_line(&line)) {
    Event event;
    std::string error;
    if (!parse_event(line, &event, &error)) {
      throw std::runtime_error("trident client: " + error);
    }
    switch (event.kind) {
      case Event::Kind::Progress:
        if (event.id == id && progress) progress(event.done, event.total);
        break;
      case Event::Kind::Result:
        if (event.id == id) return std::move(event.data);
        break;  // a stray reply to an older id: ignore
      case Event::Kind::Error:
        if (event.id == id || event.id == 0) {
          throw std::runtime_error("trident client: server error: " +
                                   event.message);
        }
        break;
      case Event::Kind::Hello:
        break;  // unexpected mid-stream; harmless
    }
  }
  throw std::runtime_error(
      "trident client: daemon closed the connection mid-request");
}

EvalOutcome Client::eval(const std::string& spec_json, bool force,
                         const ProgressFn& progress) {
  json::ParseError perr;
  auto spec = json::parse(spec_json, &perr);
  if (!spec || !spec->is_object()) {
    throw std::runtime_error("trident client: spec is not a JSON object: " +
                             perr.message);
  }
  json::Value req = json::Value::object();
  req.set("op", json::Value(std::string("eval")));
  req.set("spec", std::move(*spec));
  if (force) req.set("force", json::Value(true));
  const json::Value d = call(std::move(req), progress);

  EvalOutcome out;
  out.spec_name = d.get_string("spec_name", "");
  out.cells_total = d.get_uint("cells_total", 0);
  out.cells_computed = d.get_uint("cells_computed", 0);
  out.cells_cached = d.get_uint("cells_cached", 0);
  out.cells_deduped = d.get_uint("cells_deduped", 0);
  out.fi_trials_run = d.get_uint("fi_trials_run", 0);
  out.report_json = d.get_string("report_json", "");
  out.report_csv = d.get_string("report_csv", "");
  out.per_instruction_csv = d.get_string("per_instruction_csv", "");
  out.report_md = d.get_string("report_md", "");
  return out;
}

json::Value Client::predict(const std::string& target,
                            const std::string& model) {
  json::Value req = json::Value::object();
  req.set("op", json::Value(std::string("predict")));
  req.set("target", json::Value(target));
  req.set("model", json::Value(model));
  return call(std::move(req), nullptr);
}

json::Value Client::analyze(const std::string& target) {
  json::Value req = json::Value::object();
  req.set("op", json::Value(std::string("analyze")));
  req.set("target", json::Value(target));
  return call(std::move(req), nullptr);
}

bool Client::ping() {
  json::Value req = json::Value::object();
  req.set("op", json::Value(std::string("ping")));
  return call(std::move(req), nullptr).get_bool("pong", false);
}

json::Value Client::stats() {
  json::Value req = json::Value::object();
  req.set("op", json::Value(std::string("stats")));
  return call(std::move(req), nullptr);
}

void Client::shutdown_server() {
  json::Value req = json::Value::object();
  req.set("op", json::Value(std::string("shutdown")));
  call(std::move(req), nullptr);
}

}  // namespace trident::serve
