// Wire protocol of the evaluation daemon (docs/SERVE.md).
//
// trident-serve/1 is line-delimited JSON over a Unix-domain stream
// socket: every message is one compact JSON object on one line. The
// daemon opens each connection with a `hello` event; after that the
// client sends requests `{"op": ..., "id": N, ...}` and the daemon
// answers each with zero or more `progress` events followed by exactly
// one `result` or `error` event echoing the request id. Requests on one
// connection are served in order; ids let a client correlate anyway
// (and keep the protocol honest about which reply answers what).
//
// Ops: eval (body: spec object + force flag), predict (target, model),
// analyze (target), ping, stats, shutdown.
//
// Framing relies on support::json::Value::write() emitting no raw
// newlines (it escapes them inside strings), so "one line" and "one
// message" coincide by construction.
#pragma once

#include <cstdint>
#include <string>

#include "support/json.h"

namespace trident::serve {

inline constexpr const char* kProtocol = "trident-serve/1";

/// One parsed client request.
struct Request {
  std::string op;
  uint64_t id = 0;
  support::json::Value body;  // the whole request object
};

/// Parses one request line. False (with *error set) on malformed JSON,
/// a non-object, or a missing/empty "op".
bool parse_request(const std::string& line, Request* out, std::string* error);

// ---- Server-side line builders (all end in '\n') -----------------------
std::string hello_line(uint64_t session_id);
std::string progress_line(uint64_t id, uint64_t done, uint64_t total);
std::string result_line(uint64_t id, support::json::Value data);
std::string error_line(uint64_t id, const std::string& message);

/// One parsed server event (client side).
struct Event {
  enum class Kind { Hello, Progress, Result, Error };
  Kind kind = Kind::Error;
  uint64_t id = 0;       // request id (Progress/Result/Error)
  uint64_t session = 0;  // Hello
  uint64_t done = 0, total = 0;  // Progress
  std::string message;           // Error
  support::json::Value data;     // Result payload
};

/// Parses one server event line. False (with *error set) on malformed
/// JSON, an unknown event kind, or a hello with the wrong protocol.
bool parse_event(const std::string& line, Event* out, std::string* error);

}  // namespace trident::serve
