#include "serve/scheduler.h"

#include <exception>

#include "support/thread_pool.h"

namespace trident::serve {

/// Completion state of one run_cells call, shared by its queued tasks
/// and the blocked caller. Kept alive by shared_ptr captures so a
/// still-running task outliving an exceptional caller is harmless.
struct FairScheduler::Batch {
  std::mutex mutex;
  std::condition_variable finished;
  uint64_t remaining = 0;
  std::exception_ptr first_error;
};

FairScheduler::FairScheduler(uint32_t slots, bool autostart)
    : slots_(slots != 0 ? slots : support::ThreadPool::default_threads()),
      started_(autostart) {}

FairScheduler::~FairScheduler() {
  std::unique_lock<std::mutex> lock(mutex_);
  // run_cells is synchronous, so by destruction time no caller can be
  // blocked and the queues are empty; only in-flight pumps remain.
  started_ = false;
  idle_.wait(lock, [&] { return active_ == 0; });
}

void FairScheduler::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  started_ = true;
  spawn_locked();
}

std::shared_ptr<FairScheduler::Session> FairScheduler::register_session() {
  auto session = std::make_shared<Session>();
  std::lock_guard<std::mutex> lock(mutex_);
  sessions_.push_back(session);
  return session;
}

std::function<void()> FairScheduler::dequeue_rr() {
  const size_t count = sessions_.size();
  for (size_t j = 0; j < count; ++j) {
    const size_t idx = (cursor_ + j) % count;
    if (auto session = sessions_[idx].lock();
        session != nullptr && !session->tasks_.empty()) {
      std::function<void()> task = std::move(session->tasks_.front());
      session->tasks_.pop_front();
      cursor_ = (idx + 1) % count;  // next scan starts past this session
      --pending_;
      return task;
    }
  }
  // Nothing queued anywhere: reap sessions whose owners disconnected.
  std::erase_if(sessions_,
                [](const std::weak_ptr<Session>& s) { return s.expired(); });
  cursor_ = 0;
  return {};
}

void FairScheduler::spawn_locked() {
  while (started_ && active_ < slots_ && active_ < pending_) {
    ++active_;
    support::ThreadPool::global().submit([this] { pump(); });
  }
}

void FairScheduler::pump() {
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      task = dequeue_rr();
      if (!task) {
        --active_;
        idle_.notify_all();
        return;
      }
    }
    task();
    std::lock_guard<std::mutex> lock(mutex_);
    ++tasks_run_;
  }
}

void FairScheduler::run_cells(const std::shared_ptr<Session>& session,
                              uint64_t n,
                              const std::function<void(uint64_t)>& body) {
  if (n == 0) return;
  auto batch = std::make_shared<Batch>();
  batch->remaining = n;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (uint64_t i = 0; i < n; ++i) {
      session->tasks_.push_back([batch, &body, i] {
        // `body` is safe to capture by reference: the caller blocks
        // below until remaining hits zero, which happens only after
        // every task's body call has returned.
        std::exception_ptr error;
        try {
          body(i);
        } catch (...) {
          error = std::current_exception();
        }
        std::lock_guard<std::mutex> batch_lock(batch->mutex);
        if (error && !batch->first_error) batch->first_error = error;
        if (--batch->remaining == 0) batch->finished.notify_all();
      });
    }
    pending_ += n;
    spawn_locked();
  }
  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->finished.wait(lock, [&] { return batch->remaining == 0; });
  if (batch->first_error) std::rethrow_exception(batch->first_error);
}

uint64_t FairScheduler::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

uint64_t FairScheduler::tasks_run() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_run_;
}

}  // namespace trident::serve
