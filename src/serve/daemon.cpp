#include "serve/daemon.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "analysis/lint.h"
#include "core/trident.h"
#include "eval/report.h"
#include "eval/spec.h"
#include "obs/interrupt.h"
#include "profiler/profiler.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/session.h"
#include "workloads/workloads.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace trident::serve {

namespace json = support::json;

namespace {

/// Resolves the request's "target" workload (throwing on an unknown
/// name, with the full registered list in the message).
const workloads::Workload& named_workload(const json::Value& body) {
  const std::string target = body.get_string("target", "");
  if (target.empty()) {
    throw std::runtime_error("request has no \"target\" workload name");
  }
  return workloads::find_workload(target);
}

json::Value handle_predict(const json::Value& body) {
  const auto& meta = named_workload(body);
  const std::string model = body.get_string("model", "full");
  const auto config = core::model_config_from_name(model);
  if (!config) {
    throw std::runtime_error("unknown model '" + model + "' (expected " +
                             core::model_config_names() + ")");
  }
  const ir::Module module = meta.build();
  const prof::Profile profile = prof::collect_profile(module);
  const core::Trident trident(module, profile, *config);
  json::Value d = json::Value::object();
  d.set("target", json::Value(meta.name));
  d.set("model", json::Value(model));
  d.set("sdc", json::Value(trident.overall_sdc_exact()));
  d.set("dynamic_insts", json::Value(profile.total_dynamic));
  d.set("population", json::Value(profile.total_results));
  return d;
}

json::Value handle_analyze(const json::Value& body, uint32_t threads) {
  const auto& meta = named_workload(body);
  const ir::Module module = meta.build();
  return analysis::lint_to_json(analysis::lint_module(module, threads),
                                meta.name);
}

}  // namespace

struct Daemon::Impl {
  const DaemonOptions* options = nullptr;
  std::atomic<bool> shutdown{false};
  std::atomic<uint64_t> next_session{0};
  FairScheduler scheduler;
  eval::InflightTable inflight;
  obs::Registry scratch;  // sink when the caller passes no registry
  obs::Registry* registry = nullptr;

  std::mutex sessions_mutex;
  std::vector<std::shared_ptr<LineChannel>> channels;
  std::vector<std::thread> threads;

  explicit Impl(uint32_t slots) : scheduler(slots) {}

  json::Value handle_eval(const Request& req, LineChannel& channel,
                          const std::shared_ptr<FairScheduler::Session>&
                              session);
  void run_session(std::shared_ptr<LineChannel> channel,
                   uint64_t session_id);
};

json::Value Daemon::Impl::handle_eval(
    const Request& req, LineChannel& channel,
    const std::shared_ptr<FairScheduler::Session>& session) {
  const json::Value* spec_obj = req.body.find("spec");
  if (spec_obj == nullptr || !spec_obj->is_object()) {
    throw std::runtime_error("eval request has no \"spec\" object");
  }
  eval::ExperimentSpec spec;
  std::string error;
  if (!eval::parse_spec(spec_obj->write(), &spec, &error)) {
    throw std::runtime_error(error);
  }

  eval::RunOptions run;
  run.store_dir = options->store_dir;
  run.store_shards = options->store_shards;
  run.store_upstream = options->upstream_dir;
  run.threads = options->threads;
  run.engine = options->engine;
  run.force = req.body.get_bool("force", false);
  run.metrics = options->metrics;
  SessionScheduler cell_scheduler(scheduler, session);
  run.scheduler = &cell_scheduler;
  run.inflight = &inflight;
  const uint64_t id = req.id;
  run.on_progress = [&channel, id](uint64_t cells_done,
                                   uint64_t cells_total) {
    channel.send_line(progress_line(id, cells_done, cells_total));
  };

  const eval::EvalResults results = eval::run_spec(spec, run);

  // The client writes these byte-for-byte; they are the exact strings
  // eval::write_reports puts on disk, which is the determinism
  // contract's observable surface.
  json::Value d = json::Value::object();
  d.set("spec_name", json::Value(spec.name));
  d.set("cells_total", json::Value(results.cells_total));
  d.set("cells_computed", json::Value(results.cells_computed));
  d.set("cells_cached", json::Value(results.cells_cached));
  d.set("cells_deduped", json::Value(results.cells_deduped));
  d.set("fi_trials_run", json::Value(results.fi_trials_run));
  d.set("report_json", json::Value(eval::report_json(results)));
  d.set("report_csv", json::Value(eval::overall_csv(results)));
  d.set("per_instruction_csv",
        json::Value(eval::per_instruction_csv(results)));
  d.set("report_md", json::Value(eval::report_markdown(results)));
  return d;
}

void Daemon::Impl::run_session(std::shared_ptr<LineChannel> channel_ptr,
                               uint64_t session_id) {
  obs::Registry& reg = *registry;
  LineChannel& channel = *channel_ptr;
  if (!channel.send_line(hello_line(session_id))) return;
  const auto session = scheduler.register_session();

  std::string line;
  while (channel.read_line(&line)) {
    if (line.empty()) continue;
    Request req;
    std::string error;
    if (!parse_request(line, &req, &error)) {
      reg.add("serve.errors");
      if (!channel.send_line(error_line(0, error))) break;
      continue;
    }
    reg.add("serve.requests");
    reg.add("serve.requests." + req.op);
    try {
      json::Value data = json::Value::object();
      if (req.op == "eval") {
        data = handle_eval(req, channel, session);
      } else if (req.op == "predict") {
        data = handle_predict(req.body);
      } else if (req.op == "analyze") {
        data = handle_analyze(req.body, options->threads);
      } else if (req.op == "ping") {
        data.set("pong", json::Value(true));
      } else if (req.op == "stats") {
        json::ParseError perr;
        if (auto stats = json::parse(reg.to_json(), &perr)) {
          data = std::move(*stats);
        }
      } else if (req.op == "shutdown") {
        data.set("stopping", json::Value(true));
        channel.send_line(result_line(req.id, std::move(data)));
        shutdown.store(true);
        break;
      } else {
        throw std::runtime_error("unknown op '" + req.op + "'");
      }
      if (!channel.send_line(result_line(req.id, std::move(data)))) break;
    } catch (const std::exception& e) {
      reg.add("serve.errors");
      if (!channel.send_line(error_line(req.id, e.what()))) break;
    }
  }
}

Daemon::Daemon(DaemonOptions options)
    : impl_(new Impl(options.slots)), options_(std::move(options)) {
  impl_->options = &options_;
  impl_->registry = options_.metrics != nullptr ? options_.metrics
                                                : &impl_->scratch;
}

Daemon::~Daemon() { delete impl_; }

void Daemon::request_shutdown() { impl_->shutdown.store(true); }

void Daemon::serve() {
#ifdef SIGPIPE
  // A client that disconnects mid-reply must cost us an EPIPE write
  // error on its own channel, never a process-killing signal.
  std::signal(SIGPIPE, SIG_IGN);
#endif
  std::string error;
  const int listen_fd = listen_unix(options_.socket_path, &error);
  if (listen_fd < 0) {
    throw std::runtime_error("trident serve: " + error);
  }
  obs::Registry& registry = *impl_->registry;
  if (!options_.quiet) {
    std::fprintf(stderr,
                 "trident serve: listening on %s (store %s, %u shards)\n",
                 options_.socket_path.c_str(), options_.store_dir.c_str(),
                 options_.store_shards);
  }

  while (!impl_->shutdown.load() && !obs::interrupt_requested()) {
    const int fd = accept_unix(listen_fd, /*timeout_ms=*/200, &error);
    if (fd == 0) continue;  // timeout or EINTR: re-check the flags
    if (fd < 0) {
      if (!options_.quiet) {
        std::fprintf(stderr, "trident serve: accept failed: %s\n",
                     error.c_str());
      }
      break;
    }
    auto channel = std::make_shared<LineChannel>(fd);
    const uint64_t session_id = impl_->next_session.fetch_add(1) + 1;
    registry.add("serve.sessions");
    std::lock_guard<std::mutex> lock(impl_->sessions_mutex);
    impl_->channels.push_back(channel);
    impl_->threads.emplace_back([this, channel, session_id] {
      impl_->run_session(channel, session_id);
    });
  }

#if defined(__unix__) || defined(__APPLE__)
  ::close(listen_fd);
  ::unlink(options_.socket_path.c_str());
#endif
  // Unblock every session reader, then join. A session mid-eval
  // finishes its request first (shutdown() only closes its socket, not
  // the computation), which keeps the store consistent.
  {
    std::lock_guard<std::mutex> lock(impl_->sessions_mutex);
    for (const auto& channel : impl_->channels) channel->shutdown();
  }
  for (auto& thread : impl_->threads) thread.join();

  registry.set_counter("serve.inflight_dedup_hits",
                       impl_->inflight.dedup_hits());
  registry.set_counter(
      "serve.store_shards",
      options_.store_shards == 0 ? 1 : options_.store_shards);
  if (!options_.quiet) {
    std::fprintf(stderr, "trident serve: shut down\n");
  }
}

}  // namespace trident::serve
