#include "serve/protocol.h"

namespace trident::serve {

namespace json = support::json;

bool parse_request(const std::string& line, Request* out,
                   std::string* error) {
  json::ParseError perr;
  auto doc = json::parse(line, &perr);
  if (!doc) {
    if (error != nullptr) *error = "malformed request: " + perr.message;
    return false;
  }
  if (!doc->is_object()) {
    if (error != nullptr) *error = "request is not a JSON object";
    return false;
  }
  out->op = doc->get_string("op", "");
  if (out->op.empty()) {
    if (error != nullptr) *error = "request has no \"op\"";
    return false;
  }
  out->id = doc->get_uint("id", 0);
  out->body = std::move(*doc);
  return true;
}

std::string hello_line(uint64_t session_id) {
  json::Value v = json::Value::object();
  v.set("event", json::Value(std::string("hello")));
  v.set("protocol", json::Value(std::string(kProtocol)));
  v.set("session", json::Value(session_id));
  return v.write() + "\n";
}

std::string progress_line(uint64_t id, uint64_t done, uint64_t total) {
  json::Value v = json::Value::object();
  v.set("event", json::Value(std::string("progress")));
  v.set("id", json::Value(id));
  v.set("done", json::Value(done));
  v.set("total", json::Value(total));
  return v.write() + "\n";
}

std::string result_line(uint64_t id, json::Value data) {
  json::Value v = json::Value::object();
  v.set("event", json::Value(std::string("result")));
  v.set("id", json::Value(id));
  v.set("data", std::move(data));
  return v.write() + "\n";
}

std::string error_line(uint64_t id, const std::string& message) {
  json::Value v = json::Value::object();
  v.set("event", json::Value(std::string("error")));
  v.set("id", json::Value(id));
  v.set("message", json::Value(message));
  return v.write() + "\n";
}

bool parse_event(const std::string& line, Event* out, std::string* error) {
  json::ParseError perr;
  auto doc = json::parse(line, &perr);
  if (!doc || !doc->is_object()) {
    if (error != nullptr) {
      *error = !doc ? "malformed event: " + perr.message
                    : "event is not a JSON object";
    }
    return false;
  }
  const std::string kind = doc->get_string("event", "");
  if (kind == "hello") {
    if (doc->get_string("protocol", "") != kProtocol) {
      if (error != nullptr) {
        *error = "protocol mismatch: server speaks '" +
                 doc->get_string("protocol", "") + "', client speaks '" +
                 kProtocol + "'";
      }
      return false;
    }
    out->kind = Event::Kind::Hello;
    out->session = doc->get_uint("session", 0);
    return true;
  }
  out->id = doc->get_uint("id", 0);
  if (kind == "progress") {
    out->kind = Event::Kind::Progress;
    out->done = doc->get_uint("done", 0);
    out->total = doc->get_uint("total", 0);
    return true;
  }
  if (kind == "result") {
    out->kind = Event::Kind::Result;
    if (const json::Value* data = doc->find("data")) out->data = *data;
    return true;
  }
  if (kind == "error") {
    out->kind = Event::Kind::Error;
    out->message = doc->get_string("message", "unknown server error");
    return true;
  }
  if (error != nullptr) *error = "unknown event kind '" + kind + "'";
  return false;
}

}  // namespace trident::serve
