// POSIX socket plumbing for the serve daemon: Unix-domain listeners,
// connections, and a mutex-guarded line channel.
//
// Everything here is gated on serve_supported(): on non-POSIX hosts the
// functions fail cleanly with an explanatory error and the CLI verbs
// report the feature unavailable instead of failing to compile — the
// same pattern the native backend uses for runtime compilation.
#pragma once

#include <string>

namespace trident::serve {

/// Whether this build has Unix-domain socket support at all.
bool serve_supported();

/// Creates, binds and listens on a Unix-domain stream socket. Removes a
/// stale socket file first (connect_unix distinguishes a live daemon
/// from a dead file). Returns the listening fd, or -1 with *error set
/// (also when `path` exceeds the sockaddr_un limit, ~107 bytes).
int listen_unix(const std::string& path, std::string* error);

/// Connects to a daemon's socket. Returns the fd, or -1 with *error.
int connect_unix(const std::string& path, std::string* error);

/// Accepts one connection, waiting at most `timeout_ms` (so the accept
/// loop can poll its shutdown flag). Returns the fd, 0 on timeout, or
/// -1 with *error.
int accept_unix(int listen_fd, int timeout_ms, std::string* error);

/// One connected socket, read and written in whole '\n'-terminated
/// lines. Sends are mutex-serialized so progress events emitted by
/// worker threads never interleave mid-line; reads are single-consumer
/// (each connection has one reader thread). The destructor closes the
/// fd.
class LineChannel {
 public:
  explicit LineChannel(int fd);
  ~LineChannel();
  LineChannel(const LineChannel&) = delete;
  LineChannel& operator=(const LineChannel&) = delete;

  /// Writes the full line (which must already end in '\n'). False once
  /// the peer is gone; SIGPIPE is suppressed.
  bool send_line(const std::string& line);

  /// Reads up to the next '\n' (stripped). False on EOF or error.
  bool read_line(std::string* line);

  /// Shuts the socket down both ways, unblocking a reader in another
  /// thread (the daemon's session teardown path).
  void shutdown();

  int fd() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace trident::serve
