// Client side of the trident-serve/1 protocol: connect, submit, stream.
//
// One Client is one connection (one daemon session). Calls are
// synchronous — each sends a request and blocks until the matching
// result or error event arrives, forwarding progress events to the
// caller's callback along the way. Server-reported errors surface as
// std::runtime_error carrying the daemon's message.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "support/json.h"

namespace trident::serve {

/// What an eval request returns: the finished report artifacts (byte-
/// identical to offline `trident eval` output) plus cell accounting.
struct EvalOutcome {
  std::string report_json;
  std::string report_csv;
  std::string per_instruction_csv;
  std::string report_md;
  uint64_t cells_total = 0;
  uint64_t cells_computed = 0;
  uint64_t cells_cached = 0;
  uint64_t cells_deduped = 0;
  uint64_t fi_trials_run = 0;
  std::string spec_name;
};

class Client {
 public:
  using ProgressFn = std::function<void(uint64_t done, uint64_t total)>;

  /// Connects and validates the daemon's hello. Throws
  /// std::runtime_error when the daemon is unreachable or speaks a
  /// different protocol version.
  explicit Client(const std::string& socket_path);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Submits an eval spec (the JSON text of a trident-eval-spec/1
  /// document) and blocks until the report comes back.
  EvalOutcome eval(const std::string& spec_json, bool force,
                   const ProgressFn& progress = nullptr);

  /// Overall SDC prediction for one registered workload.
  support::json::Value predict(const std::string& target,
                               const std::string& model);

  /// trident-analyze/1 lint document for one registered workload.
  support::json::Value analyze(const std::string& target);

  /// Round-trip liveness probe.
  bool ping();

  /// The daemon's current counter/gauge registry.
  support::json::Value stats();

  /// Asks the daemon to shut down (it finishes in-flight requests).
  void shutdown_server();

  /// Session id assigned by the daemon's hello.
  uint64_t session_id() const;

 private:
  /// Sends `request` and pumps events until result/error for it.
  support::json::Value call(support::json::Value request,
                            const ProgressFn& progress);

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace trident::serve
