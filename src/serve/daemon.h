// The trident evaluation daemon (docs/SERVE.md).
//
// One long-lived process owns a sharded eval::ResultStore and the
// shared thread pool; any number of `trident client` processes connect
// over a Unix-domain socket and submit eval specs, prediction queries
// and analysis requests. The daemon gives them three things an offline
// `trident eval` cannot:
//
//   warm state    workload modules, profiles and (with --engine native)
//                 compiled code persist across requests instead of
//                 being rebuilt per invocation;
//   dedup         identical in-flight cells are computed once — two
//                 clients submitting overlapping specs share one
//                 campaign (eval::InflightTable), and finished cells
//                 are served from the store as usual;
//   fairness      cells are scheduled round-robin across sessions
//                 (serve::FairScheduler), so a small request lands
//                 between a big request's cells instead of behind all
//                 of them.
//
// Determinism contract: a daemon-served spec produces byte-identical
// report artifacts to an offline `trident eval` of the same spec —
// sharding, dedup and fair scheduling change where and when cells
// compute, never what they compute.
#pragma once

#include <cstdint>
#include <string>

#include "eval/runner.h"
#include "interp/engine.h"
#include "obs/metrics.h"

namespace trident::serve {

struct DaemonOptions {
  /// Unix-domain socket path clients connect to.
  std::string socket_path = "/tmp/trident-serve.sock";
  /// Shared result store (sharded by default: many sessions write
  /// concurrently).
  std::string store_dir = "serve-out/store";
  uint32_t store_shards = 16;
  /// Optional read-only upstream store (eval::StoreOptions).
  std::string upstream_dir;
  /// Worker cap for cell internals (0 = pool default).
  uint32_t threads = 0;
  /// Concurrent-cell cap for the fair scheduler (0 = pool default).
  uint32_t slots = 0;
  /// Execution backend for FI cells.
  interp::EngineKind engine = interp::EngineKind::Interp;
  /// serve.* / eval.* / fi.* counter sink (required for the manifest).
  obs::Registry* metrics = nullptr;
  /// Suppress the startup/shutdown notices on stderr.
  bool quiet = false;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the socket and serves until a client sends `shutdown`, or
  /// SIGINT/SIGTERM arrives (obs::interrupt_requested). Throws
  /// std::runtime_error when the socket cannot be bound. On return all
  /// session threads are joined and the socket file is removed.
  void serve();

  /// Asks the accept loop to wind down (thread-safe; the `shutdown` op
  /// and tests use this).
  void request_shutdown();

  const DaemonOptions& options() const { return options_; }

 private:
  struct Impl;
  Impl* impl_;
  DaemonOptions options_;
};

}  // namespace trident::serve
