// Fair cross-session cell scheduling for the serve daemon.
//
// Every connected client session registers here; when a session's eval
// request reaches its compute phase it enqueues its owned cells and
// blocks until they finish. Cells are drained round-robin *across
// sessions* — one cell from session A, one from B, ... — so a client
// that submits a thousand-cell spec cannot starve the client that
// submitted three cells behind it; with k active sessions each gets
// ~1/k of the compute slots regardless of arrival order or spec size.
// Compare the offline path, which hands the whole cell list to
// ThreadPool::parallel_for at once (perfect for one tenant, FIFO-unfair
// for many).
//
// The scheduler owns no threads. It submits up to `slots` short-lived
// "pump" jobs to the shared ThreadPool; each pump repeatedly picks the
// next session's front task, runs it, and exits when every queue is
// empty. FI cells still parallelize their trial loops on the same pool
// underneath — fairness is applied at the cell boundary, where the
// determinism contract already guarantees order independence.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "eval/runner.h"

namespace trident::serve {

class FairScheduler {
 public:
  /// `slots` caps concurrently running cells (0 = the pool's default
  /// thread count). `autostart = false` queues without draining until
  /// start() — the scheduling tests use this to stage a deterministic
  /// backlog.
  explicit FairScheduler(uint32_t slots = 0, bool autostart = true);
  /// Blocks until every pump has exited (run_cells callers have all
  /// returned by then; nothing can be left queued).
  ~FairScheduler();

  /// Begins draining (idempotent).
  void start();

  /// One session's private task queue. Sessions are addressed by
  /// shared_ptr; a session that disconnects simply drops its pointer
  /// and the scheduler reaps the dead entry on its next scan.
  class Session {
   private:
    friend class FairScheduler;
    std::deque<std::function<void()>> tasks_;
  };

  std::shared_ptr<Session> register_session();

  /// Enqueues body(0..n-1) on `session`'s queue and blocks until all n
  /// have run. Tasks interleave round-robin with other sessions'.
  /// Rethrows the first body exception after the batch drains (the
  /// batch is never abandoned half-queued — eval's inflight accounting
  /// relies on every owned cell either running or failing explicitly).
  void run_cells(const std::shared_ptr<Session>& session, uint64_t n,
                 const std::function<void(uint64_t)>& body);

  /// Tasks enqueued but not yet started (all sessions).
  uint64_t pending() const;
  /// Tasks completed since construction.
  uint64_t tasks_run() const;

 private:
  struct Batch;

  /// Pops the next task round-robin across sessions; empty function
  /// when every queue is drained. Caller holds mutex_.
  std::function<void()> dequeue_rr();
  /// Tops up pump jobs on the shared pool. Caller holds mutex_.
  void spawn_locked();
  /// One pump job: drain tasks until the queues are empty.
  void pump();

  mutable std::mutex mutex_;
  std::condition_variable idle_;  // signalled when a pump exits
  std::vector<std::weak_ptr<Session>> sessions_;
  size_t cursor_ = 0;       // round-robin position in sessions_
  uint32_t slots_ = 0;      // max concurrent pumps
  uint32_t active_ = 0;     // pumps currently running
  bool started_ = false;
  uint64_t pending_ = 0;
  uint64_t tasks_run_ = 0;
};

/// eval::CellScheduler adapter binding one session to the shared
/// FairScheduler: the daemon passes this in RunOptions::scheduler so
/// run_spec's owned cells go through the fair queue instead of a
/// private parallel_for.
class SessionScheduler final : public eval::CellScheduler {
 public:
  SessionScheduler(FairScheduler& scheduler,
                   std::shared_ptr<FairScheduler::Session> session)
      : scheduler_(scheduler), session_(std::move(session)) {}

  void run_cells(uint64_t n,
                 const std::function<void(uint64_t)>& body) override {
    scheduler_.run_cells(session_, n, body);
  }

 private:
  FairScheduler& scheduler_;
  std::shared_ptr<FairScheduler::Session> session_;
};

}  // namespace trident::serve
