#include "serve/session.h"

#include <cerrno>
#include <cstring>
#include <mutex>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#define TRIDENT_SERVE_SUPPORTED 1
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define TRIDENT_SERVE_SUPPORTED 0
#endif

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0  // macOS: the daemon ignores SIGPIPE instead
#endif

namespace trident::serve {

bool serve_supported() { return TRIDENT_SERVE_SUPPORTED != 0; }

#if !TRIDENT_SERVE_SUPPORTED

namespace {
int unsupported(std::string* error) {
  if (error != nullptr) {
    *error = "trident serve requires Unix-domain sockets, which this "
             "platform does not provide";
  }
  return -1;
}
}  // namespace

int listen_unix(const std::string&, std::string* error) {
  return unsupported(error);
}
int connect_unix(const std::string&, std::string* error) {
  return unsupported(error);
}
int accept_unix(int, int, std::string* error) { return unsupported(error); }

struct LineChannel::Impl {};
LineChannel::LineChannel(int) : impl_(nullptr) {}
LineChannel::~LineChannel() = default;
bool LineChannel::send_line(const std::string&) { return false; }
bool LineChannel::read_line(std::string*) { return false; }
void LineChannel::shutdown() {}
int LineChannel::fd() const { return -1; }

#else  // TRIDENT_SERVE_SUPPORTED

namespace {

bool fill_addr(const std::string& path, sockaddr_un* addr,
               std::string* error) {
  if (path.size() >= sizeof(addr->sun_path)) {
    if (error != nullptr) {
      *error = "socket path too long (" + std::to_string(path.size()) +
               " bytes; the sockaddr_un limit is " +
               std::to_string(sizeof(addr->sun_path) - 1) + ")";
    }
    return false;
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

int listen_unix(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!fill_addr(path, &addr, error)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = errno_message("socket");
    return -1;
  }
  // A previous daemon that crashed leaves its socket file behind; bind
  // would fail with EADDRINUSE. Remove it — a *live* daemon is still
  // detectable by clients because connect succeeds only against a
  // listening socket, never a plain file.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) *error = errno_message("bind");
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 64) != 0) {
    if (error != nullptr) *error = errno_message("listen");
    ::close(fd);
    ::unlink(path.c_str());
    return -1;
  }
  return fd;
}

int connect_unix(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!fill_addr(path, &addr, error)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = errno_message("socket");
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "cannot connect to '" + path + "': " + std::strerror(errno) +
               " (is the daemon running? start one with `trident serve`)";
    }
    ::close(fd);
    return -1;
  }
  return fd;
}

int accept_unix(int listen_fd, int timeout_ms, std::string* error) {
  pollfd pfd{listen_fd, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready == 0) return 0;
  if (ready < 0) {
    if (errno == EINTR) return 0;  // signal: let the loop poll its flags
    if (error != nullptr) *error = errno_message("poll");
    return -1;
  }
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return 0;
    if (error != nullptr) *error = errno_message("accept");
    return -1;
  }
  return fd;
}

struct LineChannel::Impl {
  int fd = -1;
  std::mutex send_mutex;
  std::string read_buffer;  // single-consumer, no lock needed
};

LineChannel::LineChannel(int fd) : impl_(new Impl) { impl_->fd = fd; }

LineChannel::~LineChannel() {
  if (impl_->fd >= 0) ::close(impl_->fd);
  delete impl_;
}

bool LineChannel::send_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(impl_->send_mutex);
  size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::send(impl_->fd, line.data() + off, line.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool LineChannel::read_line(std::string* line) {
  std::string& buf = impl_->read_buffer;
  for (;;) {
    if (const size_t nl = buf.find('\n'); nl != std::string::npos) {
      line->assign(buf, 0, nl);
      buf.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(impl_->fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF; a partial trailing line is dropped
    buf.append(chunk, static_cast<size_t>(n));
  }
}

void LineChannel::shutdown() { ::shutdown(impl_->fd, SHUT_RDWR); }

int LineChannel::fd() const { return impl_->fd; }

#endif  // TRIDENT_SERVE_SUPPORTED

}  // namespace trident::serve
