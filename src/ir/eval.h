// Shared scalar evaluation of comparison predicates, used by both the
// interpreter and the fs tuple model (which re-evaluates comparisons
// under hypothetical bit flips).
#pragma once

#include <cstdint>

#include "ir/instruction.h"
#include "support/bits.h"

namespace trident::ir {

inline bool eval_icmp(CmpPred pred, unsigned width, uint64_t a, uint64_t b) {
  const int64_t sa = support::sign_extend(a, width);
  const int64_t sb = support::sign_extend(b, width);
  const uint64_t ua = a & support::low_mask(width);
  const uint64_t ub = b & support::low_mask(width);
  switch (pred) {
    case CmpPred::Eq: return ua == ub;
    case CmpPred::Ne: return ua != ub;
    case CmpPred::SLt: return sa < sb;
    case CmpPred::SLe: return sa <= sb;
    case CmpPred::SGt: return sa > sb;
    case CmpPred::SGe: return sa >= sb;
    case CmpPred::ULt: return ua < ub;
    case CmpPred::ULe: return ua <= ub;
    case CmpPred::UGt: return ua > ub;
    case CmpPred::UGe: return ua >= ub;
    case CmpPred::None: break;
  }
  return false;
}

/// Ordered float comparison: any NaN operand yields false.
inline bool eval_fcmp(CmpPred pred, unsigned width, uint64_t a, uint64_t b) {
  const double fa =
      width == 32 ? support::bits_to_f32(a) : support::bits_to_f64(a);
  const double fb =
      width == 32 ? support::bits_to_f32(b) : support::bits_to_f64(b);
  switch (pred) {
    case CmpPred::Eq: return fa == fb;
    case CmpPred::Ne: return fa < fb || fa > fb;
    case CmpPred::SLt: return fa < fb;
    case CmpPred::SLe: return fa <= fb;
    case CmpPred::SGt: return fa > fb;
    case CmpPred::SGe: return fa >= fb;
    default: break;
  }
  return false;
}

}  // namespace trident::ir
