#include "ir/printer.h"

#include "support/bits.h"
#include "support/str.h"

namespace trident::ir {

namespace {

using support::format;

std::string value_str(const Function& func, const Value& v) {
  switch (v.kind) {
    case Value::Kind::None:
      return "<none>";
    case Value::Kind::Inst:
      return format("%%%u", v.index);
    case Value::Kind::Arg:
      return format("%%arg%u", v.index);
    case Value::Kind::Const: {
      const auto& c = func.constants[v.index];
      if (c.type.is_float()) {
        // Hexfloat renders exactly, so printed modules re-parse to the
        // same bit patterns.
        const double d = c.type.width() == 32 ? support::bits_to_f32(c.raw)
                                              : support::bits_to_f64(c.raw);
        return format("%s %a", c.type.str().c_str(), d);
      }
      return format("%s %lld", c.type.str().c_str(),
                    static_cast<long long>(support::sign_extend(
                        c.raw, c.type.width() ? c.type.width() : 64)));
    }
    case Value::Kind::Global:
      return format("@g%u", v.index);
  }
  return "?";
}

}  // namespace

std::string print_inst(const Module& module, const Function& func,
                       uint32_t inst_id) {
  const auto& inst = func.inst(inst_id);
  std::string s;
  if (inst.has_result()) {
    s += format("%%%u = ", inst_id);
  }
  s += opcode_name(inst.op);
  if (inst.is_cmp()) s += format(" %s", pred_name(inst.pred));
  if (!inst.type.is_void()) s += " " + inst.type.str();
  std::vector<std::string> parts;
  for (const auto& v : inst.operands) parts.push_back(value_str(func, v));
  if (!parts.empty()) s += " " + support::join(parts, ", ");
  switch (inst.op) {
    case Opcode::Alloca:
      s += format(" size %llu", static_cast<unsigned long long>(inst.imm));
      break;
    case Opcode::Gep:
      s += format(" elem %llu", static_cast<unsigned long long>(inst.imm));
      break;
    case Opcode::Memcpy:
      s += format(" bytes %llu", static_cast<unsigned long long>(inst.imm));
      break;
    case Opcode::Br:
      s += format(" bb%u", inst.succ[0]);
      break;
    case Opcode::CondBr:
      s += format(", bb%u, bb%u", inst.succ[0], inst.succ[1]);
      break;
    case Opcode::Call:
      if (inst.callee < module.functions.size()) {
        s += format(" @%s", module.functions[inst.callee].name.c_str());
      }
      break;
    case Opcode::Phi:
      for (uint32_t i = 0; i < inst.incoming.size(); ++i) {
        s += format(" [bb%u]", inst.incoming[i]);
      }
      break;
    case Opcode::Print: {
      const auto spec = PrintSpec::unpack(inst.imm);
      const char* kind = spec.kind == PrintSpec::Kind::Int     ? "int"
                         : spec.kind == PrintSpec::Kind::Uint  ? "uint"
                         : spec.kind == PrintSpec::Kind::Float ? "float"
                                                               : "char";
      s += format(" fmt=%s prec=%u%s", kind,
                  static_cast<unsigned>(spec.precision),
                  spec.is_output ? "" : " (debug)");
      break;
    }
    default:
      break;
  }
  if (!inst.name.empty()) s += format("  ; %s", inst.name.c_str());
  return s;
}

std::string print_function(const Module& module, const Function& func) {
  std::string s = format("func @%s(", func.name.c_str());
  std::vector<std::string> params;
  for (uint32_t i = 0; i < func.params.size(); ++i) {
    params.push_back(format("%s %%arg%u", func.params[i].str().c_str(), i));
  }
  s += support::join(params, ", ");
  s += format(") -> %s {\n", func.ret.str().c_str());
  for (uint32_t bb = 0; bb < func.blocks.size(); ++bb) {
    s += format("bb%u:%s%s\n", bb, func.blocks[bb].name.empty() ? "" : "  ; ",
                func.blocks[bb].name.c_str());
    for (const auto id : func.blocks[bb].insts) {
      s += "  " + print_inst(module, func, id) + "\n";
    }
  }
  s += "}\n";
  return s;
}

std::string print_module(const Module& module) {
  std::string s;
  for (uint32_t g = 0; g < module.globals.size(); ++g) {
    s += format("@g%u = global \"%s\" size %llu\n", g,
                module.globals[g].name.c_str(),
                static_cast<unsigned long long>(module.globals[g].size));
  }
  if (!module.globals.empty()) s += "\n";
  for (const auto& func : module.functions) {
    s += print_function(module, func) + "\n";
  }
  return s;
}

}  // namespace trident::ir
