#include "ir/type.h"

#include <cassert>

#include "support/str.h"

namespace trident::ir {

Type Type::i(unsigned bits) {
  assert(bits >= 1 && bits <= 64 && "integer width out of range");
  return {TypeKind::Int, static_cast<uint8_t>(bits)};
}

unsigned Type::store_size() const {
  switch (kind) {
    case TypeKind::Void:
      return 0;
    case TypeKind::Int:
      return bits <= 8 ? 1 : bits <= 16 ? 2 : bits <= 32 ? 4 : 8;
    case TypeKind::Float:
      return bits / 8;
    case TypeKind::Ptr:
      return 8;
  }
  return 0;
}

std::string Type::str() const {
  switch (kind) {
    case TypeKind::Void:
      return "void";
    case TypeKind::Int:
      return support::format("i%u", static_cast<unsigned>(bits));
    case TypeKind::Float:
      return bits == 32 ? "f32" : "f64";
    case TypeKind::Ptr:
      return "ptr";
  }
  return "?";
}

}  // namespace trident::ir
