// Type system for the TRIDENT IR.
//
// The IR mirrors the fragment of LLVM IR that the TRIDENT model consumes:
// fixed-width integers (i1..i64), IEEE floats (f32/f64), an opaque 64-bit
// pointer type, and void for result-less instructions. Aggregates are not
// first-class; arrays live in memory and are addressed through Gep.
#pragma once

#include <cstdint>
#include <string>

namespace trident::ir {

enum class TypeKind : uint8_t { Void, Int, Float, Ptr };

struct Type {
  TypeKind kind = TypeKind::Void;
  uint8_t bits = 0;  // Int: 1..64, Float: 32|64, Ptr: 64, Void: 0

  static Type void_() { return {TypeKind::Void, 0}; }
  static Type i(unsigned bits);
  static Type i1() { return i(1); }
  static Type i8() { return i(8); }
  static Type i16() { return i(16); }
  static Type i32() { return i(32); }
  static Type i64() { return i(64); }
  static Type f32() { return {TypeKind::Float, 32}; }
  static Type f64() { return {TypeKind::Float, 64}; }
  static Type ptr() { return {TypeKind::Ptr, 64}; }

  bool is_void() const { return kind == TypeKind::Void; }
  bool is_int() const { return kind == TypeKind::Int; }
  bool is_float() const { return kind == TypeKind::Float; }
  bool is_ptr() const { return kind == TypeKind::Ptr; }

  /// Width in bits of a register of this type (0 for void).
  unsigned width() const { return bits; }
  /// Size in bytes when stored to memory (i1 stores as one byte).
  unsigned store_size() const;

  bool operator==(const Type&) const = default;

  std::string str() const;
};

}  // namespace trident::ir
