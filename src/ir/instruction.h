// Instruction set of the TRIDENT IR.
//
// One struct covers all opcodes; the rarely-used fields (succ, callee,
// incoming, imm) are meaningful only for the opcodes documented below.
// This keeps instructions value-typed and cheap to clone, which the
// selective-duplication pass relies on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/value.h"

namespace trident::ir {

inline constexpr uint32_t kNoBlock = ~0u;
inline constexpr uint32_t kNoFunc = ~0u;

enum class Opcode : uint8_t {
  // Integer arithmetic. Operands and result share an integer type.
  Add,
  Sub,
  Mul,
  SDiv,  // traps (Crash) on division by zero or INT_MIN / -1
  UDiv,  // traps on division by zero
  SRem,
  URem,
  // Bitwise / shifts. Shift amounts are taken modulo the width.
  And,
  Or,
  Xor,
  Shl,
  LShr,
  AShr,
  // Floating-point arithmetic.
  FAdd,
  FSub,
  FMul,
  FDiv,
  // Comparisons: result is i1; `pred` selects the predicate.
  ICmp,
  FCmp,
  // Casts.
  Trunc,    // int -> narrower int
  ZExt,     // int -> wider int, zero-extend
  SExt,     // int -> wider int, sign-extend
  FPTrunc,  // f64 -> f32
  FPExt,    // f32 -> f64
  FPToSI,   // float -> signed int
  SIToFP,   // signed int -> float
  Bitcast,  // same-width reinterpret (int<->float, int64<->ptr)
  // Memory. Alloca: imm = byte size, result ptr (fresh per execution).
  // Load: operand[0] = ptr, result = `type`. Store: operand[0] = value,
  // operand[1] = ptr, no result. Gep: operand[0] = base ptr,
  // operand[1] = integer index, imm = element byte size; result ptr.
  Alloca,
  Load,
  Store,
  Gep,
  // Control flow. Br: succ[0]. CondBr: operand[0] = i1, succ[0] = taken
  // (true), succ[1] = fallthrough (false). Ret: optional operand[0].
  // Call: operands = args, `callee` = function index, result = callee ret.
  // Phi: operands parallel to `incoming` predecessor block ids.
  // Select: operand[0] = i1 cond, operand[1] = true val, operand[2] = false.
  Br,
  CondBr,
  Ret,
  Call,
  Phi,
  Select,
  // Memcpy: bulk copy (the paper's §VII-A "Memory Copy" case):
  // operand[0] = dst ptr, operand[1] = src ptr, imm = byte count. The
  // profiler propagates byte writers through it, so memory-dependence
  // tracking sees THROUGH bulk copies.
  Memcpy,
  // Print: emits operand[0] to the program output stream; `imm` packs a
  // PrintSpec (format kind, precision, output marker). The output stream
  // is what SDC classification compares, mirroring the paper's
  // "instructions considered as program output".
  Print,
  // Detect: duplication-pass detector. If operand[0] (i1) is true the run
  // halts with outcome Detected (error caught before reaching output).
  Detect,
};

/// Comparison predicates shared by ICmp (integer, signed/unsigned) and
/// FCmp (ordered float comparisons; any NaN operand yields false).
enum class CmpPred : uint8_t {
  None,
  Eq,
  Ne,
  SLt,
  SLe,
  SGt,
  SGe,
  ULt,
  ULe,
  UGt,
  UGe,
};

/// Formatting of a Print instruction, packed into Instruction::imm.
struct PrintSpec {
  enum class Kind : uint8_t { Int, Uint, Float, Char };
  Kind kind = Kind::Int;
  // Number of significant decimal digits printed for Float (like %.*g).
  // The paper's floating-point masking rule (§IV-E) keys off this.
  uint8_t precision = 6;
  // Whether this print participates in SDC classification (paper: the
  // user may exclude e.g. debug/statistics prints).
  bool is_output = true;

  uint64_t pack() const;
  static PrintSpec unpack(uint64_t imm);
};

struct Instruction {
  Opcode op = Opcode::Ret;
  Type type;                 // result type; Void if no result
  CmpPred pred = CmpPred::None;
  uint32_t block = kNoBlock;  // owning basic block
  uint32_t succ[2] = {kNoBlock, kNoBlock};
  uint32_t callee = kNoFunc;
  uint64_t imm = 0;
  std::vector<Value> operands;
  std::vector<uint32_t> incoming;  // Phi predecessor blocks
  std::string name;                // optional debug name

  bool has_result() const { return !type.is_void(); }
  bool is_terminator() const {
    return op == Opcode::Br || op == Opcode::CondBr || op == Opcode::Ret;
  }
  bool is_cmp() const { return op == Opcode::ICmp || op == Opcode::FCmp; }
  bool is_cast() const {
    return op >= Opcode::Trunc && op <= Opcode::Bitcast;
  }
};

/// Human-readable opcode mnemonic ("add", "icmp", ...).
const char* opcode_name(Opcode op);
/// Predicate mnemonic ("eq", "slt", ...).
const char* pred_name(CmpPred pred);

}  // namespace trident::ir
