#include "ir/instruction.h"

namespace trident::ir {

uint64_t PrintSpec::pack() const {
  return static_cast<uint64_t>(kind) |
         (static_cast<uint64_t>(precision) << 8) |
         (static_cast<uint64_t>(is_output ? 1 : 0) << 16);
}

PrintSpec PrintSpec::unpack(uint64_t imm) {
  PrintSpec spec;
  spec.kind = static_cast<Kind>(imm & 0xff);
  spec.precision = static_cast<uint8_t>((imm >> 8) & 0xff);
  spec.is_output = ((imm >> 16) & 1) != 0;
  return spec;
}

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::Add: return "add";
    case Opcode::Sub: return "sub";
    case Opcode::Mul: return "mul";
    case Opcode::SDiv: return "sdiv";
    case Opcode::UDiv: return "udiv";
    case Opcode::SRem: return "srem";
    case Opcode::URem: return "urem";
    case Opcode::And: return "and";
    case Opcode::Or: return "or";
    case Opcode::Xor: return "xor";
    case Opcode::Shl: return "shl";
    case Opcode::LShr: return "lshr";
    case Opcode::AShr: return "ashr";
    case Opcode::FAdd: return "fadd";
    case Opcode::FSub: return "fsub";
    case Opcode::FMul: return "fmul";
    case Opcode::FDiv: return "fdiv";
    case Opcode::ICmp: return "icmp";
    case Opcode::FCmp: return "fcmp";
    case Opcode::Trunc: return "trunc";
    case Opcode::ZExt: return "zext";
    case Opcode::SExt: return "sext";
    case Opcode::FPTrunc: return "fptrunc";
    case Opcode::FPExt: return "fpext";
    case Opcode::FPToSI: return "fptosi";
    case Opcode::SIToFP: return "sitofp";
    case Opcode::Bitcast: return "bitcast";
    case Opcode::Alloca: return "alloca";
    case Opcode::Load: return "load";
    case Opcode::Store: return "store";
    case Opcode::Gep: return "gep";
    case Opcode::Br: return "br";
    case Opcode::CondBr: return "condbr";
    case Opcode::Ret: return "ret";
    case Opcode::Call: return "call";
    case Opcode::Phi: return "phi";
    case Opcode::Select: return "select";
    case Opcode::Memcpy: return "memcpy";
    case Opcode::Print: return "print";
    case Opcode::Detect: return "detect";
  }
  return "?";
}

const char* pred_name(CmpPred pred) {
  switch (pred) {
    case CmpPred::None: return "none";
    case CmpPred::Eq: return "eq";
    case CmpPred::Ne: return "ne";
    case CmpPred::SLt: return "slt";
    case CmpPred::SLe: return "sle";
    case CmpPred::SGt: return "sgt";
    case CmpPred::SGe: return "sge";
    case CmpPred::ULt: return "ult";
    case CmpPred::ULe: return "ule";
    case CmpPred::UGt: return "ugt";
    case CmpPred::UGe: return "uge";
  }
  return "?";
}

}  // namespace trident::ir
