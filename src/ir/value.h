// Operand references and constants.
//
// A Value is a lightweight tagged reference: it names an instruction
// result, a function argument, a per-function constant-pool entry, or a
// module global (whose value is its address). Values are resolved against
// the owning Function/Module; they carry no pointers, which keeps
// functions trivially copyable for the duplication pass.
#pragma once

#include <cstdint>

#include "ir/type.h"

namespace trident::ir {

struct Value {
  enum class Kind : uint8_t { None, Inst, Arg, Const, Global };

  Kind kind = Kind::None;
  uint32_t index = 0;

  static Value none() { return {}; }
  static Value inst(uint32_t id) { return {Kind::Inst, id}; }
  static Value arg(uint32_t id) { return {Kind::Arg, id}; }
  static Value constant(uint32_t id) { return {Kind::Const, id}; }
  static Value global(uint32_t id) { return {Kind::Global, id}; }

  bool is_none() const { return kind == Kind::None; }
  bool is_inst() const { return kind == Kind::Inst; }
  bool is_arg() const { return kind == Kind::Arg; }
  bool is_const() const { return kind == Kind::Const; }
  bool is_global() const { return kind == Kind::Global; }

  bool operator==(const Value&) const = default;
};

/// A typed constant stored in a function's constant pool. `raw` holds the
/// bit pattern: integers are zero-extended to 64 bits, floats are their
/// IEEE-754 encoding (f32 in the low 32 bits).
struct Constant {
  Type type;
  uint64_t raw = 0;

  bool operator==(const Constant&) const = default;
};

}  // namespace trident::ir
