// Textual dump of modules/functions, for debugging, test diagnostics and
// the examples. The format is LLVM-flavoured but not round-trippable.
#pragma once

#include <string>

#include "ir/module.h"

namespace trident::ir {

std::string print_function(const Module& module, const Function& func);
std::string print_module(const Module& module);

/// One-line rendering of a single instruction ("%3 = add i32 %1, %2").
std::string print_inst(const Module& module, const Function& func,
                       uint32_t inst_id);

}  // namespace trident::ir
