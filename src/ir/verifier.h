// Structural and type verification of modules.
//
// The verifier catches authoring mistakes in workloads/tests and defends
// the transformation passes (notably selective duplication): every pass in
// the repository verifies its output in tests.
#pragma once

#include <string>
#include <vector>

#include "ir/module.h"

namespace trident::ir {

struct VerifyError {
  uint32_t func = kNoFunc;
  uint32_t inst = kNoBlock;  // kNoBlock when the error is function-level
  std::string message;
};

/// Returns all verification errors (empty = valid). Checked properties:
///  - every block is non-empty and ends with exactly one terminator,
///    terminators appear only at block ends;
///  - branch successors are valid block ids;
///  - operand references are in range; instruction operands are defined
///    before use in a conservative ordering sense (defs must appear in a
///    block that can reach the use, approximated by id order within a
///    block and def-block != use-block otherwise), except phi inputs;
///  - phi nodes have one incoming value per predecessor and appear at the
///    start of their block;
///  - operand/result types obey the opcode's typing rules;
///  - calls match the callee signature; rets match the function type.
std::vector<VerifyError> verify(const Module& module);

/// Convenience: formats errors into one string (empty = valid).
std::string verify_to_string(const Module& module);

}  // namespace trident::ir
