#include "ir/parser.h"

#include <cstdlib>
#include <map>
#include <vector>

#include "support/bits.h"
#include "support/str.h"

namespace trident::ir {

namespace {

// A lightweight cursor over one line of text.
class Cursor {
 public:
  explicit Cursor(std::string_view s) : s_(s) {}

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t')) ++pos_;
  }

  bool done() {
    skip_ws();
    return pos_ >= s_.size();
  }

  bool consume(std::string_view token) {
    skip_ws();
    if (s_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  // Reads a word up to whitespace, ',', brackets or end.
  std::string_view word() {
    skip_ws();
    const size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] != ' ' && s_[pos_] != '\t' &&
           s_[pos_] != ',' && s_[pos_] != '[' && s_[pos_] != ']') {
      ++pos_;
    }
    return s_.substr(start, pos_ - start);
  }

  std::string_view rest() const { return s_.substr(pos_); }

  // First character after whitespace (0 at end of line).
  char peek() {
    skip_ws();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

 private:
  std::string_view s_;
  size_t pos_ = 0;
};

std::optional<Opcode> opcode_from_name(std::string_view name) {
  static const std::map<std::string_view, Opcode> kOps = {
      {"add", Opcode::Add},         {"sub", Opcode::Sub},
      {"mul", Opcode::Mul},         {"sdiv", Opcode::SDiv},
      {"udiv", Opcode::UDiv},       {"srem", Opcode::SRem},
      {"urem", Opcode::URem},       {"and", Opcode::And},
      {"or", Opcode::Or},           {"xor", Opcode::Xor},
      {"shl", Opcode::Shl},         {"lshr", Opcode::LShr},
      {"ashr", Opcode::AShr},       {"fadd", Opcode::FAdd},
      {"fsub", Opcode::FSub},       {"fmul", Opcode::FMul},
      {"fdiv", Opcode::FDiv},       {"icmp", Opcode::ICmp},
      {"fcmp", Opcode::FCmp},       {"trunc", Opcode::Trunc},
      {"zext", Opcode::ZExt},       {"sext", Opcode::SExt},
      {"fptrunc", Opcode::FPTrunc}, {"fpext", Opcode::FPExt},
      {"fptosi", Opcode::FPToSI},   {"sitofp", Opcode::SIToFP},
      {"bitcast", Opcode::Bitcast}, {"alloca", Opcode::Alloca},
      {"load", Opcode::Load},       {"store", Opcode::Store},
      {"gep", Opcode::Gep},         {"br", Opcode::Br},
      {"memcpy", Opcode::Memcpy},
      {"condbr", Opcode::CondBr},   {"ret", Opcode::Ret},
      {"call", Opcode::Call},       {"phi", Opcode::Phi},
      {"select", Opcode::Select},   {"print", Opcode::Print},
      {"detect", Opcode::Detect},
  };
  const auto it = kOps.find(name);
  if (it == kOps.end()) return std::nullopt;
  return it->second;
}

std::optional<CmpPred> pred_from_name(std::string_view name) {
  static const std::map<std::string_view, CmpPred> kPreds = {
      {"eq", CmpPred::Eq},   {"ne", CmpPred::Ne},   {"slt", CmpPred::SLt},
      {"sle", CmpPred::SLe}, {"sgt", CmpPred::SGt}, {"sge", CmpPred::SGe},
      {"ult", CmpPred::ULt}, {"ule", CmpPred::ULe}, {"ugt", CmpPred::UGt},
      {"uge", CmpPred::UGe},
  };
  const auto it = kPreds.find(name);
  if (it == kPreds.end()) return std::nullopt;
  return it->second;
}

std::optional<Type> type_from_name(std::string_view name) {
  if (name == "void") return Type::void_();
  if (name == "ptr") return Type::ptr();
  if (name == "f32") return Type::f32();
  if (name == "f64") return Type::f64();
  if (name.size() >= 2 && name[0] == 'i') {
    const int bits = std::atoi(std::string(name.substr(1)).c_str());
    if (bits >= 1 && bits <= 64) return Type::i(static_cast<unsigned>(bits));
  }
  return std::nullopt;
}

// The per-function parsing context.
struct FunctionParser {
  Function func;
  // constant (type kind<<8|bits, raw) -> pool index
  std::map<std::pair<uint64_t, uint64_t>, uint32_t> const_cache;
  // Parsed instructions, in textual order, with their declared result id
  // (~0u when the instruction has no result).
  struct Proto {
    Instruction inst;
    uint32_t result_id = ~0u;
    uint32_t block = 0;
  };
  std::vector<Proto> protos;

  Value intern_constant(Type type, uint64_t raw) {
    const auto key = std::make_pair(
        (static_cast<uint64_t>(type.kind) << 8) | type.bits, raw);
    auto [it, inserted] = const_cache.try_emplace(key, 0);
    if (inserted) it->second = func.add_constant(Constant{type, raw});
    return Value::constant(it->second);
  }
};

bool parse_uint(std::string_view s, uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string buf(s);
  out = std::strtoull(buf.c_str(), &end, 10);
  return end == buf.c_str() + buf.size();
}

// Parses one operand: "%N", "%argN", "@gN" or "<type> <literal>".
bool parse_operand(Cursor& cur, FunctionParser& fp, Value& out) {
  cur.skip_ws();
  const auto w = cur.word();
  if (w.empty()) return false;
  uint64_t n = 0;
  if (w.substr(0, 4) == "%arg") {
    if (!parse_uint(w.substr(4), n)) return false;
    out = Value::arg(static_cast<uint32_t>(n));
    return true;
  }
  if (w[0] == '%') {
    if (!parse_uint(w.substr(1), n)) return false;
    out = Value::inst(static_cast<uint32_t>(n));
    return true;
  }
  if (w.substr(0, 2) == "@g") {
    if (!parse_uint(w.substr(2), n)) return false;
    out = Value::global(static_cast<uint32_t>(n));
    return true;
  }
  // Typed constant.
  const auto type = type_from_name(w);
  if (!type || type->is_void()) return false;
  const auto lit = cur.word();
  if (lit.empty()) return false;
  const std::string buf(lit);
  if (type->is_float()) {
    char* end = nullptr;
    const double d = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size()) return false;
    out = fp.intern_constant(
        *type, type->width() == 32
                   ? support::f32_to_bits(static_cast<float>(d))
                   : support::f64_to_bits(d));
    return true;
  }
  char* end = nullptr;
  const auto v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return false;
  out = fp.intern_constant(
      *type, static_cast<uint64_t>(v) & support::low_mask(type->width()));
  return true;
}

bool parse_block_ref(Cursor& cur, uint32_t& out) {
  const auto w = cur.word();
  uint64_t n = 0;
  if (w.substr(0, 2) != "bb" || !parse_uint(w.substr(2), n)) return false;
  out = static_cast<uint32_t>(n);
  return true;
}

// Position of the "  ; " name marker, ignoring occurrences inside
// double quotes (global lines carry arbitrary quoted names, which may
// legitimately contain the marker). npos when there is none.
size_t find_name_marker(std::string_view line) {
  bool quoted = false;
  for (size_t i = 0; i + 4 <= line.size(); ++i) {
    if (line[i] == '"') {
      quoted = !quoted;
    } else if (!quoted && line.compare(i, 4, "  ; ") == 0) {
      return i;
    }
  }
  return std::string_view::npos;
}

}  // namespace

std::optional<Module> parse_module(std::string_view text, ParseError* error) {
  const auto fail = [&](uint32_t line, std::string message)
      -> std::optional<Module> {
    if (error != nullptr) *error = {line, std::move(message)};
    return std::nullopt;
  };

  // Split lines, separating trailing "  ; name" comments (the printer
  // renders instruction/block names that way; they are preserved so
  // printed text is a parse/print fixed point). Accepts inputs the
  // printer never emits: CRLF line endings (the \r is stripped BEFORE
  // the comment split, else it would stick to the name), a missing
  // final newline, and quoted global names containing the marker.
  std::vector<std::string> lines;
  std::vector<std::string> names;
  {
    size_t start = 0;
    while (start < text.size()) {
      size_t nl = text.find('\n', start);
      if (nl == std::string_view::npos) nl = text.size();
      std::string line(text.substr(start, nl - start));
      while (!line.empty() && (line.back() == ' ' || line.back() == '\r')) {
        line.pop_back();
      }
      std::string name;
      if (const auto c = find_name_marker(line); c != std::string::npos) {
        name = line.substr(c + 4);
        line.resize(c);
        while (!line.empty() && line.back() == ' ') line.pop_back();
      }
      lines.push_back(std::move(line));
      names.push_back(std::move(name));
      start = nl + 1;
    }
  }

  Module module;

  // Pass 1: globals and function signatures (so calls resolve by name).
  std::map<std::string, uint32_t> func_ids;
  for (uint32_t li = 0; li < lines.size(); ++li) {
    Cursor cur(lines[li]);
    if (cur.consume("@g")) {
      // @gN = global "name" size M
      cur.word();  // the index (positional; we trust file order)
      if (!cur.consume("= global")) return fail(li + 1, "bad global");
      cur.skip_ws();
      auto rest = std::string(cur.rest());
      const auto q1 = rest.find('"');
      const auto q2 = rest.find('"', q1 + 1);
      if (q1 == std::string::npos || q2 == std::string::npos) {
        return fail(li + 1, "bad global name");
      }
      Global g;
      g.name = rest.substr(q1 + 1, q2 - q1 - 1);
      Cursor tail(std::string_view(rest).substr(q2 + 1));
      if (!tail.consume("size")) return fail(li + 1, "bad global size");
      uint64_t size = 0;
      if (!parse_uint(tail.word(), size)) return fail(li + 1, "bad size");
      g.size = size;
      module.add_global(std::move(g));
      continue;
    }
    if (cur.consume("func @")) {
      const auto rest = std::string(lines[li]);
      const auto at = rest.find('@');
      const auto paren = rest.find('(', at);
      if (paren == std::string::npos) return fail(li + 1, "bad func header");
      Function f;
      f.name = rest.substr(at + 1, paren - at - 1);
      const auto close = rest.find(')', paren);
      if (close == std::string::npos) return fail(li + 1, "bad func header");
      // Parameters: "i32 %arg0, f64 %arg1"
      Cursor params(std::string_view(rest).substr(paren + 1,
                                                  close - paren - 1));
      while (!params.done()) {
        params.consume(",");
        if (params.done()) break;
        const auto t = type_from_name(params.word());
        if (!t) return fail(li + 1, "bad parameter type");
        params.word();  // %argN
        f.params.push_back(*t);
      }
      Cursor tail(std::string_view(rest).substr(close + 1));
      if (!tail.consume("->")) return fail(li + 1, "missing return type");
      const auto rt = type_from_name(tail.word());
      if (!rt) return fail(li + 1, "bad return type");
      f.ret = *rt;
      const std::string fname = f.name;  // add_function moves f out
      func_ids[fname] = module.add_function(std::move(f));
    }
  }

  // Pass 2: function bodies.
  uint32_t current = kNoFunc;
  uint32_t header_line = 0;  // 1-based line of the current "func @" header
  std::optional<FunctionParser> fp;
  const auto finalize = [&]() -> bool {
    if (!fp) return true;
    // Result instructions keep their printed ids; result-less ones fill
    // the gaps in textual order (references never name them).
    const auto total = static_cast<uint32_t>(fp->protos.size());
    std::vector<bool> used(total, false);
    for (const auto& proto : fp->protos) {
      if (proto.result_id != ~0u) {
        if (proto.result_id >= total || used[proto.result_id]) return false;
        used[proto.result_id] = true;
      }
    }
    uint32_t next_free = 0;
    fp->func.insts.assign(total, Instruction{});
    for (auto& proto : fp->protos) {
      uint32_t id = proto.result_id;
      if (id == ~0u) {
        while (next_free < total && used[next_free]) ++next_free;
        if (next_free >= total) return false;
        id = next_free;
        used[id] = true;
      }
      proto.inst.block = proto.block;
      fp->func.insts[id] = std::move(proto.inst);
      fp->func.blocks[proto.block].insts.push_back(id);
    }
    module.functions[current] = std::move(fp->func);
    fp.reset();
    return true;
  };

  uint32_t block = kNoBlock;
  for (uint32_t li = 0; li < lines.size(); ++li) {
    const auto& line = lines[li];
    if (line.empty()) continue;
    Cursor cur(line);
    if (cur.consume("@g")) continue;  // globals done in pass 1
    if (cur.consume("func @")) {
      // A finalize failure is a property of the function that just
      // ended, so it is reported at that function's header line, not at
      // the line of the next header (or past EOF, as it used to be for
      // the final function of the file).
      if (!finalize()) return fail(header_line, "duplicate instruction id");
      header_line = li + 1;
      const auto rest = line;
      const auto at = rest.find('@');
      const auto paren = rest.find('(', at);
      const auto name = rest.substr(at + 1, paren - at - 1);
      current = func_ids.at(name);
      fp.emplace();
      fp->func.name = name;
      fp->func.params = module.functions[current].params;
      fp->func.ret = module.functions[current].ret;
      block = kNoBlock;
      continue;
    }
    if (line == "}") continue;
    if (!fp) return fail(li + 1, "instruction outside a function");
    // Block label: "bbN:"
    if (line.substr(0, 2) == "bb" && line.back() == ':') {
      uint64_t n = 0;
      if (!parse_uint(std::string_view(line).substr(2, line.size() - 3), n)) {
        return fail(li + 1, "bad block label");
      }
      while (fp->func.blocks.size() <= n) fp->func.add_block("");
      block = static_cast<uint32_t>(n);
      fp->func.blocks[block].name = names[li];
      continue;
    }
    if (block == kNoBlock) return fail(li + 1, "instruction outside block");

    // Instruction: ["%N = "] opcode ...
    FunctionParser::Proto proto;
    proto.block = block;
    Cursor icur(line);
    icur.skip_ws();
    if (icur.consume("%")) {
      uint64_t id = 0;
      if (!parse_uint(icur.word(), id)) return fail(li + 1, "bad result id");
      proto.result_id = static_cast<uint32_t>(id);
      if (!icur.consume("=")) return fail(li + 1, "missing '='");
    }
    const auto opname = icur.word();
    const auto op = opcode_from_name(opname);
    if (!op) return fail(li + 1, "unknown opcode '" + std::string(opname) + "'");
    Instruction& inst = proto.inst;
    inst.op = *op;
    inst.type = Type::void_();

    if (inst.op == Opcode::ICmp || inst.op == Opcode::FCmp) {
      const auto pred = pred_from_name(icur.word());
      if (!pred) return fail(li + 1, "bad predicate");
      inst.pred = *pred;
    }

    // Result type (printed when non-void). Ret/store/print/br/detect
    // never have one; everything with a result id does.
    if (proto.result_id != ~0u) {
      const auto t = type_from_name(icur.word());
      if (!t) return fail(li + 1, "bad result type");
      inst.type = *t;
    }

    switch (inst.op) {
      case Opcode::Br: {
        uint32_t dest = 0;
        if (!parse_block_ref(icur, dest)) return fail(li + 1, "bad br");
        inst.succ[0] = dest;
        break;
      }
      case Opcode::CondBr: {
        Value cond;
        if (!parse_operand(icur, *fp, cond)) return fail(li + 1, "bad cond");
        inst.operands.push_back(cond);
        icur.consume(",");
        uint32_t t = 0, f = 0;
        if (!parse_block_ref(icur, t)) return fail(li + 1, "bad succ");
        icur.consume(",");
        if (!parse_block_ref(icur, f)) return fail(li + 1, "bad succ");
        inst.succ[0] = t;
        inst.succ[1] = f;
        break;
      }
      case Opcode::Alloca: {
        if (!icur.consume("size")) return fail(li + 1, "alloca needs size");
        uint64_t size = 0;
        if (!parse_uint(icur.word(), size)) return fail(li + 1, "bad size");
        inst.imm = size;
        break;
      }
      case Opcode::Phi: {
        // operands, then "[bbN]" per incoming.
        while (!icur.done() && icur.peek() != '[') {
          icur.consume(",");
          if (icur.done() || icur.peek() == '[') break;
          Value v;
          if (!parse_operand(icur, *fp, v)) return fail(li + 1, "bad phi");
          inst.operands.push_back(v);
        }
        while (icur.consume("[")) {
          uint32_t bb = 0;
          if (!parse_block_ref(icur, bb)) return fail(li + 1, "bad phi bb");
          if (!icur.consume("]")) return fail(li + 1, "bad phi bb");
          inst.incoming.push_back(bb);
        }
        if (inst.incoming.size() != inst.operands.size()) {
          return fail(li + 1, "phi operand/incoming mismatch");
        }
        break;
      }
      case Opcode::Print: {
        Value v;
        if (!parse_operand(icur, *fp, v)) return fail(li + 1, "bad print");
        inst.operands.push_back(v);
        PrintSpec spec;
        if (!icur.consume("fmt=")) return fail(li + 1, "print needs fmt");
        const auto kind = icur.word();
        spec.kind = kind == "int"     ? PrintSpec::Kind::Int
                    : kind == "uint"  ? PrintSpec::Kind::Uint
                    : kind == "float" ? PrintSpec::Kind::Float
                                      : PrintSpec::Kind::Char;
        if (!icur.consume("prec=")) return fail(li + 1, "print needs prec");
        uint64_t prec = 0;
        if (!parse_uint(icur.word(), prec)) return fail(li + 1, "bad prec");
        spec.precision = static_cast<uint8_t>(prec);
        spec.is_output = !icur.consume("(debug)");
        inst.imm = spec.pack();
        break;
      }
      default: {
        // Comma-separated operands, then opcode-specific suffixes.
        while (!icur.done()) {
          if (icur.consume("elem") || icur.consume("bytes")) {
            uint64_t imm = 0;
            if (!parse_uint(icur.word(), imm)) return fail(li + 1, "bad imm");
            inst.imm = imm;
            break;
          }
          if (icur.peek() == '@') {
            // "@gN" is a global operand; any other "@name" is a callee.
            const auto w = icur.word();
            uint64_t n = 0;
            if (w.substr(0, 2) == "@g" && parse_uint(w.substr(2), n)) {
              inst.operands.push_back(
                  Value::global(static_cast<uint32_t>(n)));
              continue;
            }
            const auto it = func_ids.find(std::string(w.substr(1)));
            if (it == func_ids.end()) return fail(li + 1, "unknown callee");
            inst.callee = it->second;
            break;
          }
          icur.consume(",");
          if (icur.done()) break;
          Value v;
          if (!parse_operand(icur, *fp, v)) {
            return fail(li + 1, "bad operand in '" + line + "'");
          }
          inst.operands.push_back(v);
        }
        if (inst.op == Opcode::Call && inst.callee == kNoFunc) {
          return fail(li + 1, "call without callee");
        }
        break;
      }
    }
    proto.inst.name = names[li];
    fp->protos.push_back(std::move(proto));
  }
  if (!finalize()) return fail(header_line, "duplicate instruction id");
  return module;
}

}  // namespace trident::ir
