// Module: the unit the model, profiler and injector operate on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/function.h"

namespace trident::ir {

/// A module-level global memory object. Globals are addressed via
/// Value::global(i), which evaluates to the base address assigned by the
/// interpreter's memory model. `init` (if shorter than `size`) is
/// zero-padded.
struct Global {
  std::string name;
  uint64_t size = 0;  // bytes
  std::vector<uint8_t> init;
};

struct Module {
  std::string name;
  std::vector<Function> functions;
  std::vector<Global> globals;

  uint32_t add_function(Function f);
  uint32_t add_global(Global g);

  const Function& function(uint32_t id) const { return functions[id]; }
  Function& function(uint32_t id) { return functions[id]; }

  /// Index of the function with the given name, if any.
  std::optional<uint32_t> find_function(const std::string& fname) const;

  /// Total static instruction count across all functions.
  size_t num_insts() const;
};

}  // namespace trident::ir
