#include "ir/verifier.h"

#include <algorithm>
#include <optional>

#include "analysis/cfg.h"
#include "analysis/dominators.h"
#include "support/str.h"

namespace trident::ir {

namespace {

using support::format;

class FunctionVerifier {
 public:
  FunctionVerifier(const Module& module, uint32_t func_id,
                   std::vector<VerifyError>& errors)
      : module_(module),
        func_(module.functions[func_id]),
        func_id_(func_id),
        errors_(errors) {}

  void run() {
    check_structure();
    if (structure_ok_) {
      build_positions();
      check_reachability();
      check_instructions();
    }
  }

 private:
  void error(uint32_t inst, std::string message) {
    errors_.push_back({func_id_, inst, std::move(message)});
  }
  void ferror(std::string message) {
    errors_.push_back({func_id_, kNoBlock, std::move(message)});
  }

  void check_structure() {
    if (func_.blocks.empty()) {
      ferror("function has no blocks");
      structure_ok_ = false;
      return;
    }
    for (uint32_t bb = 0; bb < func_.blocks.size(); ++bb) {
      const auto& block = func_.blocks[bb];
      if (block.insts.empty()) {
        ferror(format("block %u (%s) is empty", bb, block.name.c_str()));
        structure_ok_ = false;
        continue;
      }
      bool seen_non_phi = false;
      for (uint32_t i = 0; i < block.insts.size(); ++i) {
        const auto id = block.insts[i];
        if (id >= func_.insts.size()) {
          ferror(format("block %u references invalid instruction %u", bb, id));
          structure_ok_ = false;
          continue;
        }
        const auto& inst = func_.insts[id];
        if (inst.block != bb) {
          error(id, format("instruction's block field is %u, expected %u",
                           inst.block, bb));
        }
        const bool is_last = i + 1 == block.insts.size();
        if (inst.is_terminator() != is_last) {
          error(id, inst.is_terminator()
                        ? "terminator in the middle of a block"
                        : "block does not end with a terminator");
          structure_ok_ = false;
        }
        if (inst.op == Opcode::Phi) {
          if (seen_non_phi) error(id, "phi after non-phi instruction");
        } else {
          seen_non_phi = true;
        }
        for (int s = 0; s < 2; ++s) {
          if (inst.succ[s] != kNoBlock && inst.succ[s] >= func_.blocks.size()) {
            error(id, format("invalid successor block %u", inst.succ[s]));
            structure_ok_ = false;
          }
        }
      }
    }
  }

  void build_positions() {
    position_.assign(func_.insts.size(), 0);
    for (const auto& block : func_.blocks) {
      for (uint32_t i = 0; i < block.insts.size(); ++i) {
        position_[block.insts[i]] = i;
      }
    }
    cfg_.emplace(func_);
    dom_.emplace(analysis::DomTree::dominators(*cfg_));
  }

  // Every block must be reachable from the entry. Dead blocks are
  // always authoring bugs here (no pass legitimately produces them),
  // and downstream analyses (dominators, the dataflow solvers, the
  // profile) all assume reachability.
  void check_reachability() {
    for (uint32_t bb = 0; bb < func_.blocks.size(); ++bb) {
      if (!cfg_->reachable(bb)) {
        ferror(format("block %u (%s) is unreachable from entry", bb,
                      func_.blocks[bb].name.c_str()));
      }
    }
  }

  bool value_valid(const Value& v) const {
    switch (v.kind) {
      case Value::Kind::None:
        return false;
      case Value::Kind::Inst:
        return v.index < func_.insts.size() &&
               func_.insts[v.index].has_result();
      case Value::Kind::Arg:
        return v.index < func_.params.size();
      case Value::Kind::Const:
        return v.index < func_.constants.size();
      case Value::Kind::Global:
        return v.index < module_.globals.size();
    }
    return false;
  }

  // Def must dominate use. For phis the def must dominate the terminator
  // of the corresponding incoming block.
  void check_dominance(uint32_t user, const Value& v, uint32_t use_block,
                       bool at_block_end) {
    if (!v.is_inst()) return;
    const auto def = v.index;
    const auto def_block = func_.insts[def].block;
    if (!cfg_->reachable(use_block)) return;  // dead code: skip
    if (def_block == use_block) {
      if (!at_block_end && position_[def] >= position_[user] &&
          func_.insts[user].op != Opcode::Phi) {
        error(user, format("operand %%%u does not precede its use", def));
      }
      return;
    }
    if (!dom_->dominates(def_block, use_block)) {
      error(user, format("operand %%%u (block %u) does not dominate use "
                         "(block %u)",
                         def, def_block, use_block));
    }
  }

  void check_instructions() {
    for (uint32_t id = 0; id < func_.insts.size(); ++id) {
      const auto& inst = func_.insts[id];
      for (const auto& v : inst.operands) {
        if (!value_valid(v)) {
          error(id, "invalid operand reference");
        }
      }
      if (std::any_of(inst.operands.begin(), inst.operands.end(),
                      [&](const Value& v) { return !value_valid(v); })) {
        continue;  // typing checks below would read out of range
      }
      if (inst.op == Opcode::Phi) {
        check_phi(id, inst);
      } else {
        for (const auto& v : inst.operands) {
          check_dominance(id, v, inst.block, /*at_block_end=*/false);
        }
      }
      check_types(id, inst);
    }
  }

  void check_phi(uint32_t id, const Instruction& inst) {
    if (inst.operands.size() != inst.incoming.size()) {
      error(id, "phi operand/incoming count mismatch");
      return;
    }
    const auto& preds = cfg_->preds(inst.block);
    if (cfg_->reachable(inst.block) &&
        inst.incoming.size() != preds.size()) {
      error(id, format("phi has %zu incoming values but block has %zu "
                       "predecessors",
                       inst.incoming.size(), preds.size()));
    }
    for (uint32_t i = 0; i < inst.incoming.size(); ++i) {
      const auto from = inst.incoming[i];
      if (from >= func_.blocks.size()) {
        error(id, format("phi incoming block %u invalid", from));
        continue;
      }
      if (cfg_->reachable(inst.block) &&
          std::find(preds.begin(), preds.end(), from) == preds.end()) {
        error(id, format("phi incoming block %u is not a predecessor", from));
      }
      check_dominance(id, inst.operands[i], from, /*at_block_end=*/true);
      if (func_.value_type(inst.operands[i]) != inst.type) {
        error(id, "phi incoming value type mismatch");
      }
    }
  }

  Type ty(const Value& v) const { return func_.value_type(v); }

  void check_types(uint32_t id, const Instruction& inst) {
    const auto expect = [&](bool cond, const char* what) {
      if (!cond) error(id, what);
    };
    switch (inst.op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::SDiv:
      case Opcode::UDiv:
      case Opcode::SRem:
      case Opcode::URem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::LShr:
      case Opcode::AShr:
        expect(inst.operands.size() == 2, "binop needs two operands");
        if (inst.operands.size() == 2) {
          expect(inst.type.is_int(), "integer binop result must be int");
          expect(ty(inst.operands[0]) == inst.type &&
                     ty(inst.operands[1]) == inst.type,
                 "integer binop operand type mismatch");
        }
        break;
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:
        expect(inst.operands.size() == 2, "binop needs two operands");
        if (inst.operands.size() == 2) {
          expect(inst.type.is_float(), "float binop result must be float");
          expect(ty(inst.operands[0]) == inst.type &&
                     ty(inst.operands[1]) == inst.type,
                 "float binop operand type mismatch");
        }
        break;
      case Opcode::ICmp:
        expect(inst.operands.size() == 2 && inst.type == Type::i1(),
               "icmp must produce i1 from two operands");
        if (inst.operands.size() == 2) {
          const auto t = ty(inst.operands[0]);
          expect((t.is_int() || t.is_ptr()) && t == ty(inst.operands[1]),
                 "icmp operands must be matching int/ptr");
        }
        expect(inst.pred != CmpPred::None, "icmp needs a predicate");
        break;
      case Opcode::FCmp:
        expect(inst.operands.size() == 2 && inst.type == Type::i1(),
               "fcmp must produce i1 from two operands");
        if (inst.operands.size() == 2) {
          const auto t = ty(inst.operands[0]);
          expect(t.is_float() && t == ty(inst.operands[1]),
                 "fcmp operands must be matching floats");
        }
        expect(inst.pred >= CmpPred::Eq && inst.pred <= CmpPred::SGe,
               "fcmp predicate must be ordered (eq/ne/slt/sle/sgt/sge)");
        break;
      case Opcode::Trunc:
        expect(inst.operands.size() == 1 && inst.type.is_int() &&
                   ty(inst.operands[0]).is_int() &&
                   ty(inst.operands[0]).width() > inst.type.width(),
               "trunc must narrow an integer");
        break;
      case Opcode::ZExt:
      case Opcode::SExt:
        expect(inst.operands.size() == 1 && inst.type.is_int() &&
                   ty(inst.operands[0]).is_int() &&
                   ty(inst.operands[0]).width() < inst.type.width(),
               "ext must widen an integer");
        break;
      case Opcode::FPTrunc:
        expect(inst.operands.size() == 1 && inst.type == Type::f32() &&
                   ty(inst.operands[0]) == Type::f64(),
               "fptrunc must be f64 -> f32");
        break;
      case Opcode::FPExt:
        expect(inst.operands.size() == 1 && inst.type == Type::f64() &&
                   ty(inst.operands[0]) == Type::f32(),
               "fpext must be f32 -> f64");
        break;
      case Opcode::FPToSI:
        expect(inst.operands.size() == 1 && inst.type.is_int() &&
                   ty(inst.operands[0]).is_float(),
               "fptosi must be float -> int");
        break;
      case Opcode::SIToFP:
        expect(inst.operands.size() == 1 && inst.type.is_float() &&
                   ty(inst.operands[0]).is_int(),
               "sitofp must be int -> float");
        break;
      case Opcode::Bitcast:
        expect(inst.operands.size() == 1 &&
                   ty(inst.operands[0]).width() == inst.type.width() &&
                   !inst.type.is_void(),
               "bitcast must preserve width");
        break;
      case Opcode::Alloca:
        expect(inst.type.is_ptr() && inst.imm > 0,
               "alloca must produce ptr with positive size");
        break;
      case Opcode::Load:
        expect(inst.operands.size() == 1 && ty(inst.operands[0]).is_ptr() &&
                   !inst.type.is_void(),
               "load needs a ptr operand and non-void result");
        break;
      case Opcode::Store:
        expect(inst.operands.size() == 2 && ty(inst.operands[1]).is_ptr() &&
                   !ty(inst.operands[0]).is_void() && inst.type.is_void(),
               "store needs (value, ptr) and no result");
        break;
      case Opcode::Gep:
        expect(inst.operands.size() == 2 && ty(inst.operands[0]).is_ptr() &&
                   ty(inst.operands[1]).is_int() && inst.type.is_ptr() &&
                   inst.imm > 0,
               "gep needs (ptr, int) with positive element size");
        break;
      case Opcode::Br:
        expect(inst.operands.empty() && inst.succ[0] != kNoBlock,
               "br needs a successor and no operands");
        break;
      case Opcode::CondBr:
        expect(inst.operands.size() == 1 &&
                   ty(inst.operands[0]) == Type::i1() &&
                   inst.succ[0] != kNoBlock && inst.succ[1] != kNoBlock,
               "condbr needs an i1 operand and two successors");
        break;
      case Opcode::Ret:
        if (func_.ret.is_void()) {
          expect(inst.operands.empty(), "ret in void function has operand");
        } else {
          expect(inst.operands.size() == 1 &&
                     ty(inst.operands[0]) == func_.ret,
                 "ret value type mismatch");
        }
        break;
      case Opcode::Call: {
        if (inst.callee >= module_.functions.size()) {
          error(id, "call to invalid function");
          break;
        }
        const auto& callee = module_.functions[inst.callee];
        expect(inst.type == callee.ret, "call result type mismatch");
        if (inst.operands.size() != callee.params.size()) {
          error(id, "call argument count mismatch");
        } else {
          for (uint32_t i = 0; i < inst.operands.size(); ++i) {
            expect(ty(inst.operands[i]) == callee.params[i],
                   "call argument type mismatch");
          }
        }
        break;
      }
      case Opcode::Phi:
        expect(!inst.type.is_void(), "phi must produce a value");
        break;
      case Opcode::Select:
        expect(inst.operands.size() == 3 &&
                   ty(inst.operands[0]) == Type::i1() &&
                   ty(inst.operands[1]) == inst.type &&
                   ty(inst.operands[2]) == inst.type,
               "select needs (i1, T, T) -> T");
        break;
      case Opcode::Memcpy:
        expect(inst.operands.size() == 2 && ty(inst.operands[0]).is_ptr() &&
                   ty(inst.operands[1]).is_ptr() && inst.type.is_void() &&
                   inst.imm > 0,
               "memcpy needs (dst ptr, src ptr) and positive byte count");
        break;
      case Opcode::Print: {
        expect(inst.operands.size() == 1 && inst.type.is_void(),
               "print needs one operand, no result");
        if (inst.operands.size() == 1) {
          const auto spec = PrintSpec::unpack(inst.imm);
          const auto t = ty(inst.operands[0]);
          if (spec.kind == PrintSpec::Kind::Float) {
            expect(t.is_float(), "print float expects a float operand");
          } else {
            expect(t.is_int(), "print int/uint/char expects an int operand");
          }
        }
        break;
      }
      case Opcode::Detect:
        expect(inst.operands.size() == 1 &&
                   ty(inst.operands[0]) == Type::i1() && inst.type.is_void(),
               "detect needs an i1 operand and no result");
        break;
    }
  }

  const Module& module_;
  const Function& func_;
  uint32_t func_id_;
  std::vector<VerifyError>& errors_;
  bool structure_ok_ = true;
  std::vector<uint32_t> position_;
  std::optional<analysis::CFG> cfg_;
  std::optional<analysis::DomTree> dom_;
};

}  // namespace

std::vector<VerifyError> verify(const Module& module) {
  std::vector<VerifyError> errors;
  for (uint32_t f = 0; f < module.functions.size(); ++f) {
    FunctionVerifier(module, f, errors).run();
  }
  return errors;
}

std::string verify_to_string(const Module& module) {
  std::string out;
  for (const auto& e : verify(module)) {
    const auto& fname = e.func < module.functions.size()
                            ? module.functions[e.func].name
                            : std::string("?");
    if (e.inst == kNoBlock) {
      out += support::format("%s: %s\n", fname.c_str(), e.message.c_str());
    } else {
      out += support::format("%s:%%%u: %s\n", fname.c_str(), e.inst,
                             e.message.c_str());
    }
  }
  return out;
}

}  // namespace trident::ir
