#include "ir/builder.h"

#include <cassert>

#include "support/bits.h"

namespace trident::ir {

uint32_t IRBuilder::begin_function(std::string name, std::vector<Type> params,
                                   Type ret) {
  assert(func_ == kNoFunc && "previous function not ended");
  Function f;
  f.name = std::move(name);
  f.params = std::move(params);
  f.ret = ret;
  func_ = module_.add_function(std::move(f));
  bb_ = kNoBlock;
  const_cache_.clear();
  return func_;
}

void IRBuilder::end_function() {
  assert(func_ != kNoFunc);
  func_ = kNoFunc;
  bb_ = kNoBlock;
  const_cache_.clear();
}

Function& IRBuilder::func() {
  assert(func_ != kNoFunc);
  return module_.function(func_);
}

uint32_t IRBuilder::block(std::string name) {
  return func().add_block(std::move(name));
}

uint32_t IRBuilder::emit(Instruction inst) {
  assert(bb_ != kNoBlock && "no insertion block set");
  return func().append(bb_, std::move(inst));
}

Value IRBuilder::const_int(Type type, uint64_t raw) {
  assert(type.is_int() || type.is_ptr());
  raw &= support::low_mask(type.width());
  const auto key = std::make_pair(
      (static_cast<uint64_t>(type.kind) << 8) | type.bits, raw);
  auto [it, inserted] = const_cache_.try_emplace(key, 0);
  if (inserted) it->second = func().add_constant(Constant{type, raw});
  return Value::constant(it->second);
}

Value IRBuilder::f32(float v) {
  const uint64_t raw = support::f32_to_bits(v);
  const auto key = std::make_pair(
      (static_cast<uint64_t>(TypeKind::Float) << 8) | 32, raw);
  auto [it, inserted] = const_cache_.try_emplace(key, 0);
  if (inserted) it->second = func().add_constant(Constant{Type::f32(), raw});
  return Value::constant(it->second);
}

Value IRBuilder::f64(double v) {
  const uint64_t raw = support::f64_to_bits(v);
  const auto key = std::make_pair(
      (static_cast<uint64_t>(TypeKind::Float) << 8) | 64, raw);
  auto [it, inserted] = const_cache_.try_emplace(key, 0);
  if (inserted) it->second = func().add_constant(Constant{Type::f64(), raw});
  return Value::constant(it->second);
}

Value IRBuilder::binop(Opcode op, Value a, Value b, std::string name) {
  Instruction inst;
  inst.op = op;
  inst.type = func().value_type(a);
  inst.operands = {a, b};
  inst.name = std::move(name);
  return Value::inst(emit(std::move(inst)));
}

Value IRBuilder::icmp(CmpPred pred, Value a, Value b, std::string name) {
  Instruction inst;
  inst.op = Opcode::ICmp;
  inst.type = Type::i1();
  inst.pred = pred;
  inst.operands = {a, b};
  inst.name = std::move(name);
  return Value::inst(emit(std::move(inst)));
}

Value IRBuilder::fcmp(CmpPred pred, Value a, Value b, std::string name) {
  Instruction inst;
  inst.op = Opcode::FCmp;
  inst.type = Type::i1();
  inst.pred = pred;
  inst.operands = {a, b};
  inst.name = std::move(name);
  return Value::inst(emit(std::move(inst)));
}

Value IRBuilder::cast(Opcode op, Value v, Type to, std::string name) {
  Instruction inst;
  inst.op = op;
  inst.type = to;
  inst.operands = {v};
  inst.name = std::move(name);
  return Value::inst(emit(std::move(inst)));
}

Value IRBuilder::alloca_(uint64_t bytes, std::string name) {
  Instruction inst;
  inst.op = Opcode::Alloca;
  inst.type = Type::ptr();
  inst.imm = bytes;
  inst.name = std::move(name);
  return Value::inst(emit(std::move(inst)));
}

Value IRBuilder::load(Type type, Value ptr, std::string name) {
  Instruction inst;
  inst.op = Opcode::Load;
  inst.type = type;
  inst.operands = {ptr};
  inst.name = std::move(name);
  return Value::inst(emit(std::move(inst)));
}

void IRBuilder::store(Value value, Value ptr) {
  Instruction inst;
  inst.op = Opcode::Store;
  inst.type = Type::void_();
  inst.operands = {value, ptr};
  emit(std::move(inst));
}

Value IRBuilder::gep(Value base, Value index, uint64_t elem_size,
                     std::string name) {
  Instruction inst;
  inst.op = Opcode::Gep;
  inst.type = Type::ptr();
  inst.operands = {base, index};
  inst.imm = elem_size;
  inst.name = std::move(name);
  return Value::inst(emit(std::move(inst)));
}

void IRBuilder::memcpy_(Value dst, Value src, uint64_t bytes) {
  Instruction inst;
  inst.op = Opcode::Memcpy;
  inst.type = Type::void_();
  inst.operands = {dst, src};
  inst.imm = bytes;
  emit(std::move(inst));
}

void IRBuilder::br(uint32_t dest) {
  Instruction inst;
  inst.op = Opcode::Br;
  inst.type = Type::void_();
  inst.succ[0] = dest;
  emit(std::move(inst));
}

void IRBuilder::cond_br(Value cond, uint32_t if_true, uint32_t if_false) {
  Instruction inst;
  inst.op = Opcode::CondBr;
  inst.type = Type::void_();
  inst.operands = {cond};
  inst.succ[0] = if_true;
  inst.succ[1] = if_false;
  emit(std::move(inst));
}

void IRBuilder::ret() {
  Instruction inst;
  inst.op = Opcode::Ret;
  inst.type = Type::void_();
  emit(std::move(inst));
}

void IRBuilder::ret(Value v) {
  Instruction inst;
  inst.op = Opcode::Ret;
  inst.type = Type::void_();
  inst.operands = {v};
  emit(std::move(inst));
}

Value IRBuilder::call(uint32_t callee, std::vector<Value> args,
                      std::string name) {
  Instruction inst;
  inst.op = Opcode::Call;
  inst.type = module_.function(callee).ret;
  inst.callee = callee;
  inst.operands = std::move(args);
  inst.name = std::move(name);
  const auto id = emit(std::move(inst));
  return func().inst(id).has_result() ? Value::inst(id) : Value::none();
}

Value IRBuilder::phi(Type type, std::string name) {
  Instruction inst;
  inst.op = Opcode::Phi;
  inst.type = type;
  inst.name = std::move(name);
  return Value::inst(emit(std::move(inst)));
}

void IRBuilder::add_phi_incoming(Value phi_value, Value incoming,
                                 uint32_t from_block) {
  assert(phi_value.is_inst());
  auto& inst = func().inst(phi_value.index);
  assert(inst.op == Opcode::Phi);
  inst.operands.push_back(incoming);
  inst.incoming.push_back(from_block);
}

Value IRBuilder::select(Value cond, Value if_true, Value if_false,
                        std::string name) {
  Instruction inst;
  inst.op = Opcode::Select;
  inst.type = func().value_type(if_true);
  inst.operands = {cond, if_true, if_false};
  inst.name = std::move(name);
  return Value::inst(emit(std::move(inst)));
}

namespace {
Instruction make_print(Value v, PrintSpec spec) {
  Instruction inst;
  inst.op = Opcode::Print;
  inst.type = Type::void_();
  inst.operands = {v};
  inst.imm = spec.pack();
  return inst;
}
}  // namespace

void IRBuilder::print_int(Value v, bool is_output) {
  emit(make_print(v, {PrintSpec::Kind::Int, 0, is_output}));
}

void IRBuilder::print_uint(Value v, bool is_output) {
  emit(make_print(v, {PrintSpec::Kind::Uint, 0, is_output}));
}

void IRBuilder::print_float(Value v, unsigned precision, bool is_output) {
  emit(make_print(
      v, {PrintSpec::Kind::Float, static_cast<uint8_t>(precision), is_output}));
}

void IRBuilder::print_char(Value v, bool is_output) {
  emit(make_print(v, {PrintSpec::Kind::Char, 0, is_output}));
}

void IRBuilder::detect(Value cond) {
  Instruction inst;
  inst.op = Opcode::Detect;
  inst.type = Type::void_();
  inst.operands = {cond};
  emit(std::move(inst));
}

}  // namespace trident::ir
