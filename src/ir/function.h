// Functions and basic blocks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/instruction.h"

namespace trident::ir {

struct Module;

struct BasicBlock {
  std::string name;
  std::vector<uint32_t> insts;  // instruction ids, in program order
};

/// A function owns its instructions (indexed by id), basic blocks
/// (block 0 is the entry) and a constant pool. Instructions never move
/// once created, so ids are stable handles used throughout the analyses,
/// the profiler, the fault injector and the model.
struct Function {
  std::string name;
  std::vector<Type> params;
  Type ret = Type::void_();
  std::vector<BasicBlock> blocks;
  std::vector<Instruction> insts;
  std::vector<Constant> constants;

  uint32_t add_block(std::string block_name);

  /// Appends `inst` to block `bb` and returns its id.
  uint32_t append(uint32_t bb, Instruction inst);

  /// Adds a constant (no dedup; the builder deduplicates).
  uint32_t add_constant(Constant c);

  const Instruction& inst(uint32_t id) const { return insts[id]; }
  Instruction& inst(uint32_t id) { return insts[id]; }

  /// Terminator instruction id of a block (kNoBlock-safe: requires the
  /// block to be non-empty and well-formed).
  uint32_t terminator(uint32_t bb) const { return blocks[bb].insts.back(); }

  /// Resolves the type of an operand in the context of this function.
  /// Global operands are pointers; `module` supplies nothing today but is
  /// kept for symmetry and future global typing.
  Type value_type(const Value& v) const;

  size_t num_insts() const { return insts.size(); }
  size_t num_blocks() const { return blocks.size(); }
};

/// Identifies a static instruction across the whole module.
struct InstRef {
  uint32_t func = kNoFunc;
  uint32_t inst = 0;

  bool operator==(const InstRef&) const = default;
  bool valid() const { return func != kNoFunc; }
};

struct InstRefHash {
  size_t operator()(const InstRef& r) const {
    return (static_cast<size_t>(r.func) << 32) ^ r.inst;
  }
};

}  // namespace trident::ir
