// Textual IR parser: reads the format produced by ir/printer.h, so
// modules round-trip through text (print -> parse -> print is a fixed
// point). This is what lets workloads and regression cases live in .tir
// files and lets the CLI analyze programs without recompiling.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "ir/module.h"

namespace trident::ir {

struct ParseError {
  uint32_t line = 0;  // 1-based line number in the input
  std::string message;
};

/// Parses a whole module from text. On failure returns std::nullopt and
/// fills `error` (if non-null) with the first problem found. The result
/// is structurally parsed but NOT verified — run ir::verify() on it.
std::optional<Module> parse_module(std::string_view text,
                                   ParseError* error = nullptr);

}  // namespace trident::ir
