// IRBuilder: the authoring API for constructing modules.
//
// Usage pattern (see examples/quickstart.cpp and src/workloads/*):
//
//   ir::Module m;
//   ir::IRBuilder b(m);
//   b.begin_function("main", {}, ir::Type::void_());
//   auto entry = b.block("entry");
//   b.set_block(entry);
//   ...
//   b.ret();
//   b.end_function();
//
// The builder deduplicates constants per function and patches phi nodes
// after the fact (add_phi_incoming), since loop headers reference blocks
// that do not exist yet when the phi is created.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/module.h"

namespace trident::ir {

class IRBuilder {
 public:
  explicit IRBuilder(Module& module) : module_(module) {}

  // -- Function management ------------------------------------------------
  /// Starts a new function; returns its module index. The entry block is
  /// NOT created implicitly — create it with block() and set_block().
  uint32_t begin_function(std::string name, std::vector<Type> params,
                          Type ret);
  /// Finishes the current function (asserts one was begun).
  void end_function();
  /// Index of the function currently under construction.
  uint32_t current_function() const { return func_; }
  Function& func();

  // -- Blocks --------------------------------------------------------------
  uint32_t block(std::string name);
  void set_block(uint32_t bb) { bb_ = bb; }
  uint32_t current_block() const { return bb_; }

  // -- Constants (deduplicated per function) -------------------------------
  Value const_int(Type type, uint64_t raw);
  Value i1(bool v) { return const_int(Type::i1(), v ? 1 : 0); }
  Value i8(uint8_t v) { return const_int(Type::i8(), v); }
  Value i32(int32_t v) {
    return const_int(Type::i32(), static_cast<uint32_t>(v));
  }
  Value i64(int64_t v) {
    return const_int(Type::i64(), static_cast<uint64_t>(v));
  }
  Value f32(float v);
  Value f64(double v);
  Value arg(uint32_t index) { return Value::arg(index); }
  Value global(uint32_t index) { return Value::global(index); }

  // -- Arithmetic / bitwise -------------------------------------------------
  Value binop(Opcode op, Value a, Value b, std::string name = "");
  Value add(Value a, Value b, std::string n = "") { return binop(Opcode::Add, a, b, std::move(n)); }
  Value sub(Value a, Value b, std::string n = "") { return binop(Opcode::Sub, a, b, std::move(n)); }
  Value mul(Value a, Value b, std::string n = "") { return binop(Opcode::Mul, a, b, std::move(n)); }
  Value sdiv(Value a, Value b, std::string n = "") { return binop(Opcode::SDiv, a, b, std::move(n)); }
  Value udiv(Value a, Value b, std::string n = "") { return binop(Opcode::UDiv, a, b, std::move(n)); }
  Value srem(Value a, Value b, std::string n = "") { return binop(Opcode::SRem, a, b, std::move(n)); }
  Value urem(Value a, Value b, std::string n = "") { return binop(Opcode::URem, a, b, std::move(n)); }
  Value and_(Value a, Value b, std::string n = "") { return binop(Opcode::And, a, b, std::move(n)); }
  Value or_(Value a, Value b, std::string n = "") { return binop(Opcode::Or, a, b, std::move(n)); }
  Value xor_(Value a, Value b, std::string n = "") { return binop(Opcode::Xor, a, b, std::move(n)); }
  Value shl(Value a, Value b, std::string n = "") { return binop(Opcode::Shl, a, b, std::move(n)); }
  Value lshr(Value a, Value b, std::string n = "") { return binop(Opcode::LShr, a, b, std::move(n)); }
  Value ashr(Value a, Value b, std::string n = "") { return binop(Opcode::AShr, a, b, std::move(n)); }
  Value fadd(Value a, Value b, std::string n = "") { return binop(Opcode::FAdd, a, b, std::move(n)); }
  Value fsub(Value a, Value b, std::string n = "") { return binop(Opcode::FSub, a, b, std::move(n)); }
  Value fmul(Value a, Value b, std::string n = "") { return binop(Opcode::FMul, a, b, std::move(n)); }
  Value fdiv(Value a, Value b, std::string n = "") { return binop(Opcode::FDiv, a, b, std::move(n)); }

  // -- Comparisons ----------------------------------------------------------
  Value icmp(CmpPred pred, Value a, Value b, std::string name = "");
  Value fcmp(CmpPred pred, Value a, Value b, std::string name = "");

  // -- Casts ----------------------------------------------------------------
  Value cast(Opcode op, Value v, Type to, std::string name = "");
  Value trunc(Value v, Type to) { return cast(Opcode::Trunc, v, to); }
  Value zext(Value v, Type to) { return cast(Opcode::ZExt, v, to); }
  Value sext(Value v, Type to) { return cast(Opcode::SExt, v, to); }
  Value fptrunc(Value v) { return cast(Opcode::FPTrunc, v, Type::f32()); }
  Value fpext(Value v) { return cast(Opcode::FPExt, v, Type::f64()); }
  Value fptosi(Value v, Type to) { return cast(Opcode::FPToSI, v, to); }
  Value sitofp(Value v, Type to) { return cast(Opcode::SIToFP, v, to); }
  Value bitcast(Value v, Type to) { return cast(Opcode::Bitcast, v, to); }

  // -- Memory ---------------------------------------------------------------
  Value alloca_(uint64_t bytes, std::string name = "");
  Value load(Type type, Value ptr, std::string name = "");
  void store(Value value, Value ptr);
  Value gep(Value base, Value index, uint64_t elem_size,
            std::string name = "");
  void memcpy_(Value dst, Value src, uint64_t bytes);

  // -- Control flow -----------------------------------------------------------
  void br(uint32_t dest);
  void cond_br(Value cond, uint32_t if_true, uint32_t if_false);
  void ret();
  void ret(Value v);
  Value call(uint32_t callee, std::vector<Value> args, std::string name = "");
  /// Creates a phi; incoming edges are added later via add_phi_incoming.
  Value phi(Type type, std::string name = "");
  void add_phi_incoming(Value phi_value, Value incoming, uint32_t from_block);
  Value select(Value cond, Value if_true, Value if_false,
               std::string name = "");

  // -- Output / detection ------------------------------------------------------
  void print_int(Value v, bool is_output = true);
  void print_uint(Value v, bool is_output = true);
  void print_float(Value v, unsigned precision = 6, bool is_output = true);
  void print_char(Value v, bool is_output = true);
  void detect(Value cond);

 private:
  uint32_t emit(Instruction inst);

  Module& module_;
  uint32_t func_ = kNoFunc;
  uint32_t bb_ = kNoBlock;
  // Constant dedup for the current function.
  std::map<std::pair<uint64_t, uint64_t>, uint32_t> const_cache_;
};

}  // namespace trident::ir
