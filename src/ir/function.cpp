#include "ir/function.h"

#include <cassert>

namespace trident::ir {

uint32_t Function::add_block(std::string block_name) {
  blocks.push_back(BasicBlock{std::move(block_name), {}});
  return static_cast<uint32_t>(blocks.size() - 1);
}

uint32_t Function::append(uint32_t bb, Instruction inst) {
  assert(bb < blocks.size());
  inst.block = bb;
  const auto id = static_cast<uint32_t>(insts.size());
  insts.push_back(std::move(inst));
  blocks[bb].insts.push_back(id);
  return id;
}

uint32_t Function::add_constant(Constant c) {
  constants.push_back(c);
  return static_cast<uint32_t>(constants.size() - 1);
}

Type Function::value_type(const Value& v) const {
  switch (v.kind) {
    case Value::Kind::None:
      return Type::void_();
    case Value::Kind::Inst:
      return insts[v.index].type;
    case Value::Kind::Arg:
      return params[v.index];
    case Value::Kind::Const:
      return constants[v.index].type;
    case Value::Kind::Global:
      return Type::ptr();
  }
  return Type::void_();
}

}  // namespace trident::ir
