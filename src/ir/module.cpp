#include "ir/module.h"

namespace trident::ir {

uint32_t Module::add_function(Function f) {
  functions.push_back(std::move(f));
  return static_cast<uint32_t>(functions.size() - 1);
}

uint32_t Module::add_global(Global g) {
  globals.push_back(std::move(g));
  return static_cast<uint32_t>(globals.size() - 1);
}

std::optional<uint32_t> Module::find_function(const std::string& fname) const {
  for (uint32_t i = 0; i < functions.size(); ++i) {
    if (functions[i].name == fname) return i;
  }
  return std::nullopt;
}

size_t Module::num_insts() const {
  size_t n = 0;
  for (const auto& f : functions) n += f.insts.size();
  return n;
}

}  // namespace trident::ir
