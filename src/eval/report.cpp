#include "eval/report.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "stats/stats.h"
#include "support/json.h"
#include "support/str.h"

namespace trident::eval {

namespace {

namespace json = support::json;

// Per-(workload, model) accuracy derived from the assembled results.
struct ModelAccuracy {
  double overall_sdc = 0;
  double abs_err = 0;       // |overall_sdc - FI sdc_prob|
  double spearman = 0;      // rank corr on the hottest instructions
  double per_inst_mae = 0;  // MAE on the hottest instructions
};

ModelAccuracy accuracy(const WorkloadEval& we, size_t model_idx) {
  ModelAccuracy acc;
  acc.overall_sdc = we.model_sdc[model_idx];
  acc.abs_err = std::abs(acc.overall_sdc - we.fi.sdc_prob());
  std::vector<double> fi_sdc, model_sdc;
  for (const auto& row : we.insts) {
    fi_sdc.push_back(row.fi.sdc_prob());
    model_sdc.push_back(row.model_sdc[model_idx]);
  }
  acc.spearman = stats::spearman_rank_corr(fi_sdc, model_sdc);
  acc.per_inst_mae = stats::mean_absolute_error(fi_sdc, model_sdc);
  return acc;
}

std::string num(double v) { return support::format("%.6f", v); }

}  // namespace

std::string overall_csv(const EvalResults& results) {
  std::string out = "workload,fi_trials,fi_sdc,fi_sdc_ci95,fi_crash,"
                    "fi_crash_ci95";
  for (const auto& m : results.spec.models) {
    out += "," + m + "_sdc," + m + "_abs_err";
  }
  out += "\n";
  for (const auto& we : results.workloads) {
    out += we.name + "," + std::to_string(we.fi.trials) + "," +
           num(we.fi.sdc_prob()) + "," +
           num(stats::proportion_ci95(we.fi.sdc_prob(), we.fi.trials)) + "," +
           num(we.fi.crash_prob()) + "," +
           num(stats::proportion_ci95(we.fi.crash_prob(), we.fi.trials));
    for (size_t mi = 0; mi < results.spec.models.size(); ++mi) {
      const auto acc = accuracy(we, mi);
      out += "," + num(acc.overall_sdc) + "," + num(acc.abs_err);
    }
    out += "\n";
  }
  return out;
}

std::string per_instruction_csv(const EvalResults& results) {
  std::string out = "workload,func,inst,exec,fi_trials,fi_sdc";
  for (const auto& m : results.spec.models) out += "," + m + "_sdc";
  out += "\n";
  for (const auto& we : results.workloads) {
    for (const auto& row : we.insts) {
      out += we.name + "," + std::to_string(row.ref.func) + "," +
             std::to_string(row.ref.inst) + "," + std::to_string(row.exec) +
             "," + std::to_string(row.fi.trials) + "," +
             num(row.fi.sdc_prob());
      for (const double sdc : row.model_sdc) out += "," + num(sdc);
      out += "\n";
    }
  }
  return out;
}

std::string report_json(const EvalResults& results) {
  const auto& spec = results.spec;
  json::Value root = json::Value::object();
  root.set("schema", json::Value(std::string("trident-eval/1")));
  root.set("kind", json::Value(std::string("report")));

  json::ParseError perr;
  auto spec_doc = json::parse(spec.to_json(), &perr);
  root.set("spec", std::move(*spec_doc));

  // Only the spec-determined cell count belongs in the artifact;
  // computed/cached/trials-run vary with the store's starting state and
  // would break byte-equality between a fresh run and a warm re-run.
  // That accounting lives in the CLI summary and the --metrics-out
  // manifest instead.
  json::Value cells = json::Value::object();
  cells.set("total", json::Value(results.cells_total));
  root.set("cells", std::move(cells));

  std::vector<double> sum_abs_err(spec.models.size(), 0.0);
  std::vector<double> sum_spearman(spec.models.size(), 0.0);

  json::Value workloads = json::Value::array();
  for (const auto& we : results.workloads) {
    json::Value w = json::Value::object();
    w.set("name", json::Value(we.name));
    w.set("suite", json::Value(we.suite));
    w.set("input", json::Value(we.input));
    w.set("static_insts", json::Value(we.static_insts));
    w.set("dynamic_insts", json::Value(we.dynamic_insts));
    w.set("population", json::Value(we.population));

    json::Value fi = json::Value::object();
    fi.set("trials", json::Value(we.fi.trials));
    fi.set("sdc", json::Value(we.fi.sdc));
    fi.set("benign", json::Value(we.fi.benign));
    fi.set("crash", json::Value(we.fi.crash));
    fi.set("hang", json::Value(we.fi.hang));
    fi.set("detected", json::Value(we.fi.detected));
    fi.set("fuel_exhausted", json::Value(we.fi.fuel_exhausted));
    fi.set("sdc_prob", json::Value(we.fi.sdc_prob()));
    fi.set("sdc_ci95", json::Value(stats::proportion_ci95(we.fi.sdc_prob(),
                                                          we.fi.trials)));
    fi.set("crash_prob", json::Value(we.fi.crash_prob()));
    fi.set("crash_ci95", json::Value(stats::proportion_ci95(
                             we.fi.crash_prob(), we.fi.trials)));
    w.set("fi", std::move(fi));

    json::Value models = json::Value::array();
    for (size_t mi = 0; mi < spec.models.size(); ++mi) {
      const auto acc = accuracy(we, mi);
      sum_abs_err[mi] += acc.abs_err;
      sum_spearman[mi] += acc.spearman;
      json::Value m = json::Value::object();
      m.set("name", json::Value(spec.models[mi]));
      m.set("overall_sdc", json::Value(acc.overall_sdc));
      m.set("abs_err", json::Value(acc.abs_err));
      m.set("spearman", json::Value(acc.spearman));
      m.set("per_inst_mae", json::Value(acc.per_inst_mae));
      models.push_back(std::move(m));
    }
    w.set("models", std::move(models));

    json::Value insts = json::Value::array();
    for (const auto& row : we.insts) {
      json::Value r = json::Value::object();
      r.set("func", json::Value(static_cast<uint64_t>(row.ref.func)));
      r.set("inst", json::Value(static_cast<uint64_t>(row.ref.inst)));
      r.set("exec", json::Value(row.exec));
      r.set("fi_trials", json::Value(row.fi.trials));
      r.set("fi_sdc", json::Value(row.fi.sdc_prob()));
      json::Value per_model = json::Value::object();
      for (size_t mi = 0; mi < spec.models.size(); ++mi) {
        per_model.set(spec.models[mi], json::Value(row.model_sdc[mi]));
      }
      r.set("models", std::move(per_model));
      insts.push_back(std::move(r));
    }
    w.set("insts", std::move(insts));
    workloads.push_back(std::move(w));
  }
  root.set("workloads", std::move(workloads));

  json::Value summary = json::Value::object();
  json::Value summary_models = json::Value::array();
  const double n = results.workloads.empty()
                       ? 1.0
                       : static_cast<double>(results.workloads.size());
  for (size_t mi = 0; mi < spec.models.size(); ++mi) {
    json::Value m = json::Value::object();
    m.set("name", json::Value(spec.models[mi]));
    m.set("mean_abs_err", json::Value(sum_abs_err[mi] / n));
    m.set("mean_spearman", json::Value(sum_spearman[mi] / n));
    summary_models.push_back(std::move(m));
  }
  summary.set("models", std::move(summary_models));
  root.set("summary", std::move(summary));
  return root.write_pretty();
}

std::string report_markdown(const EvalResults& results) {
  const auto& spec = results.spec;
  std::string out;
  out += "# TRIDENT evaluation report — " + spec.name + "\n\n";
  out += support::format(
      "%zu workloads x %zu models x %zu seed(s); %llu overall FI trials "
      "per workload per seed, %u hottest instructions x %llu trials each.\n\n",
      results.workloads.size(), spec.models.size(), spec.seeds.size(),
      static_cast<unsigned long long>(spec.fi.trials), spec.per_inst.top_n,
      static_cast<unsigned long long>(spec.per_inst.trials));
  out += support::format(
      "Cells: %llu (cache accounting lives in the run manifest; this "
      "file is byte-stable across re-runs).\n\n",
      static_cast<unsigned long long>(results.cells_total));

  // ---- Fig. 5: overall SDC probability, FI vs every model --------------
  out += "## Overall SDC probability: FI vs models (paper Fig. 5";
  for (const auto& m : spec.models) {
    if (is_baseline_model(m)) {
      out += " & Fig. 9";
      break;
    }
  }
  out += ")\n\n";
  out += "FI is ground truth with 95% Wilson CIs; model columns are "
         "predicted overall SDC probability.\n\n";
  out += "| workload | FI SDC | FI 95% CI |";
  for (const auto& m : spec.models) out += " " + m + " |";
  out += "\n|---|---|---|";
  for (size_t mi = 0; mi < spec.models.size(); ++mi) out += "---|";
  out += "\n";
  for (const auto& we : results.workloads) {
    out += support::format(
        "| %s | %.2f%% | ±%.2f%% |", we.name.c_str(),
        we.fi.sdc_prob() * 100,
        stats::proportion_ci95(we.fi.sdc_prob(), we.fi.trials) * 100);
    for (const double sdc : we.model_sdc) {
      out += support::format(" %.2f%% |", sdc * 100);
    }
    out += "\n";
  }

  // ---- Ablation / baseline deltas --------------------------------------
  out += "\n## Model accuracy vs FI (ablations and baselines)\n\n";
  out += "Mean and maximum absolute error of the overall SDC prediction "
         "across workloads — the fs / fs+fc rows quantify what the "
         "control-flow and memory sub-models buy (paper §VI-B), the "
         "pvf / epvf rows reproduce the baseline gap (paper Fig. 9).\n\n";
  out += "| model | mean abs err | max abs err | mean signed err |\n";
  out += "|---|---|---|---|\n";
  for (size_t mi = 0; mi < spec.models.size(); ++mi) {
    double sum_abs = 0, max_abs = 0, sum_signed = 0;
    for (const auto& we : results.workloads) {
      const double err = we.model_sdc[mi] - we.fi.sdc_prob();
      sum_abs += std::abs(err);
      max_abs = std::max(max_abs, std::abs(err));
      sum_signed += err;
    }
    const double n = results.workloads.empty()
                         ? 1.0
                         : static_cast<double>(results.workloads.size());
    out += support::format("| %s | %.2f%% | %.2f%% | %+.2f%% |\n",
                           spec.models[mi].c_str(), sum_abs / n * 100,
                           max_abs * 100, sum_signed / n * 100);
  }

  // ---- Per-instruction rank accuracy -----------------------------------
  if (spec.per_inst.top_n > 0) {
    out += support::format(
        "\n## Per-instruction accuracy (paper Fig. 7 / Table 2)\n\n"
        "Spearman rank correlation between pooled FI SDC probability and "
        "each model's prediction over the %u hottest instructions of each "
        "workload (ties rank-averaged; 0 shown when a series is "
        "constant).\n\n",
        spec.per_inst.top_n);
    out += "| workload | insts |";
    for (const auto& m : spec.models) out += " " + m + " |";
    out += "\n|---|---|";
    for (size_t mi = 0; mi < spec.models.size(); ++mi) out += "---|";
    out += "\n";
    std::vector<double> sums(spec.models.size(), 0.0);
    for (const auto& we : results.workloads) {
      out += support::format("| %s | %zu |", we.name.c_str(),
                             we.insts.size());
      for (size_t mi = 0; mi < spec.models.size(); ++mi) {
        const auto acc = accuracy(we, mi);
        sums[mi] += acc.spearman;
        out += support::format(" %.3f |", acc.spearman);
      }
      out += "\n";
    }
    if (!results.workloads.empty()) {
      out += "| **mean** | |";
      for (const double s : sums) {
        out += support::format(
            " %.3f |", s / static_cast<double>(results.workloads.size()));
      }
      out += "\n";
    }
  }

  // ---- Workload scale / cost context -----------------------------------
  out += "\n## Workload scale (paper Table I context)\n\n";
  out += "| workload | suite | static insts | dynamic insts | FI "
         "population | FI trials |\n";
  out += "|---|---|---|---|---|---|\n";
  for (const auto& we : results.workloads) {
    out += support::format(
        "| %s | %s | %llu | %llu | %llu | %llu |\n", we.name.c_str(),
        we.suite.c_str(), static_cast<unsigned long long>(we.static_insts),
        static_cast<unsigned long long>(we.dynamic_insts),
        static_cast<unsigned long long>(we.population),
        static_cast<unsigned long long>(we.fi.trials));
  }
  out += "\nWall-clock and scalability figures for this invocation are in "
         "the run manifest (`--metrics-out`, schema trident-run-metrics/1: "
         "`phase.eval.*.seconds`, `fi.trials_per_sec`, `pool.*`). They are "
         "kept out of this report so its bytes are identical at any "
         "thread count.\n";
  return out;
}

ReportPaths write_reports(const EvalResults& results,
                          const std::string& out_dir) {
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    throw std::runtime_error("eval report: cannot create directory '" +
                             out_dir + "': " + ec.message());
  }
  const auto write = [&](const std::string& name, const std::string& text) {
    const std::string path = out_dir + "/" + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("eval report: cannot write '" + path + "'");
    }
    out << text;
    out.flush();
    if (!out) {
      throw std::runtime_error("eval report: short write to '" + path + "'");
    }
    return path;
  };
  ReportPaths paths;
  paths.report_csv = write("report.csv", overall_csv(results));
  paths.per_instruction_csv =
      write("per_instruction.csv", per_instruction_csv(results));
  paths.report_json = write("report.json", report_json(results));
  paths.report_md = write("report.md", report_markdown(results));
  return paths;
}

}  // namespace trident::eval
