#include "eval/spec.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "support/json.h"
#include "support/str.h"
#include "workloads/workloads.h"

namespace trident::eval {

namespace json = support::json;

const std::vector<std::string>& known_model_names() {
  static const std::vector<std::string> kNames = {
      "full", "fs_fc", "fs", "paper", "trident_bits", "pvf", "epvf"};
  return kNames;
}

bool is_baseline_model(const std::string& name) {
  return name == "pvf" || name == "epvf";
}

std::string ExperimentSpec::validate() const {
  if (name.empty()) return "spec: 'name' must not be empty";
  if (workloads.empty()) return "spec: 'workloads' must not be empty";
  for (const auto& w : workloads) {
    if (w == "*") continue;
    if (workloads::lookup_workload(w) == nullptr) {
      return "spec: unknown workload '" + w +
             "'; registered workloads: " + workloads::workload_names();
    }
  }
  if (models.empty()) return "spec: 'models' must not be empty";
  for (const auto& m : models) {
    const auto& known = known_model_names();
    if (std::find(known.begin(), known.end(), m) == known.end()) {
      return "spec: unknown model '" + m +
             "'; known models: " + support::join(known, ", ");
    }
  }
  for (size_t i = 0; i < models.size(); ++i) {
    for (size_t j = i + 1; j < models.size(); ++j) {
      if (models[i] == models[j]) {
        return "spec: duplicate model '" + models[i] + "'";
      }
    }
  }
  if (seeds.empty()) return "spec: 'seeds' must not be empty";
  for (size_t i = 0; i < seeds.size(); ++i) {
    for (size_t j = i + 1; j < seeds.size(); ++j) {
      if (seeds[i] == seeds[j]) {
        return "spec: duplicate seed " + std::to_string(seeds[i]);
      }
    }
  }
  if (fi.trials == 0) return "spec: 'fi.trials' must be positive";
  if (per_inst.top_n > 0 && per_inst.trials == 0) {
    return "spec: 'per_instruction.trials' must be positive when "
           "'per_instruction.top_n' is";
  }
  return {};
}

std::vector<std::string> ExperimentSpec::expanded_workloads() const {
  std::vector<std::string> out;
  for (const auto& w : workloads) {
    if (w != "*") {
      out.push_back(w);
      continue;
    }
    for (const auto& registered : workloads::all_workloads()) {
      if (std::find(out.begin(), out.end(), registered.name) == out.end()) {
        out.push_back(registered.name);
      }
    }
  }
  return out;
}

std::string ExperimentSpec::to_json() const {
  json::Value root = json::Value::object();
  root.set("schema", json::Value(std::string("trident-eval-spec/1")));
  root.set("name", json::Value(name));
  json::Value ws = json::Value::array();
  for (const auto& w : workloads) ws.push_back(json::Value(w));
  root.set("workloads", std::move(ws));
  json::Value ms = json::Value::array();
  for (const auto& m : models) ms.push_back(json::Value(m));
  root.set("models", std::move(ms));
  json::Value ss = json::Value::array();
  for (const auto s : seeds) ss.push_back(json::Value(s));
  root.set("seeds", std::move(ss));
  json::Value f = json::Value::object();
  f.set("trials", json::Value(fi.trials));
  f.set("fuel_multiplier", json::Value(fi.fuel_multiplier));
  f.set("hang_escalation", json::Value(fi.hang_escalation));
  f.set("num_bits", json::Value(static_cast<uint64_t>(fi.num_bits)));
  root.set("fi", std::move(f));
  json::Value p = json::Value::object();
  p.set("top_n", json::Value(static_cast<uint64_t>(per_inst.top_n)));
  p.set("trials", json::Value(per_inst.trials));
  root.set("per_instruction", std::move(p));
  if (!salt.empty()) root.set("salt", json::Value(salt));
  return root.write();
}

bool parse_spec(const std::string& json_text, ExperimentSpec* out,
                std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };

  json::ParseError perr;
  const auto doc = json::parse(json_text, &perr);
  if (!doc) {
    return fail("spec: JSON parse error at byte " +
                std::to_string(perr.offset) + ": " + perr.message);
  }
  if (!doc->is_object()) return fail("spec: top level must be an object");
  const std::string schema = doc->get_string("schema", "");
  if (schema != "trident-eval-spec/1") {
    return fail("spec: schema tag must be \"trident-eval-spec/1\" (got \"" +
                schema + "\")");
  }

  ExperimentSpec spec;
  spec.name = doc->get_string("name", spec.name);
  spec.salt = doc->get_string("salt", "");

  const auto string_list = [&](const char* key,
                               std::vector<std::string>* dst) -> bool {
    const json::Value* v = doc->find(key);
    if (v == nullptr) return true;  // keep default
    if (!v->is_array()) return fail(std::string("spec: '") + key +
                                    "' must be an array of strings");
    dst->clear();
    for (const auto& item : v->items()) {
      if (!item.is_string()) {
        return fail(std::string("spec: '") + key +
                    "' must be an array of strings");
      }
      dst->push_back(item.as_string());
    }
    return true;
  };
  if (!string_list("workloads", &spec.workloads)) return false;
  if (!string_list("models", &spec.models)) return false;

  if (const json::Value* v = doc->find("seeds"); v != nullptr) {
    if (!v->is_array()) return fail("spec: 'seeds' must be an array");
    spec.seeds.clear();
    for (const auto& item : v->items()) {
      if (!item.is_number()) {
        return fail("spec: 'seeds' must be an array of integers");
      }
      spec.seeds.push_back(item.as_uint());
    }
  }
  if (const json::Value* v = doc->find("fi"); v != nullptr) {
    if (!v->is_object()) return fail("spec: 'fi' must be an object");
    spec.fi.trials = v->get_uint("trials", spec.fi.trials);
    spec.fi.fuel_multiplier =
        v->get_uint("fuel_multiplier", spec.fi.fuel_multiplier);
    spec.fi.hang_escalation =
        v->get_uint("hang_escalation", spec.fi.hang_escalation);
    spec.fi.num_bits =
        static_cast<uint32_t>(v->get_uint("num_bits", spec.fi.num_bits));
  }
  if (const json::Value* v = doc->find("per_instruction"); v != nullptr) {
    if (!v->is_object()) {
      return fail("spec: 'per_instruction' must be an object");
    }
    spec.per_inst.top_n =
        static_cast<uint32_t>(v->get_uint("top_n", spec.per_inst.top_n));
    spec.per_inst.trials = v->get_uint("trials", spec.per_inst.trials);
  }

  if (const std::string msg = spec.validate(); !msg.empty()) {
    return fail(msg);
  }
  *out = std::move(spec);
  return true;
}

bool load_spec_file(const std::string& path, ExperimentSpec* out,
                    std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "spec: cannot read '" + path + "'";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_spec(buf.str(), out, error);
}

}  // namespace trident::eval
