// Figure-grade reports over assembled evaluation results.
//
// Four artifacts per run, all with deterministic bytes at any thread
// count (and across re-runs over an unchanged store):
//   report.csv          one row per workload: FI ground truth with
//                       Wilson CIs plus every model's overall SDC and
//                       absolute error (paper Fig. 5 / Fig. 9 data)
//   per_instruction.csv one row per hottest instruction: pooled FI
//                       SDC vs every model's prediction (Fig. 7 data)
//   report.json         everything, machine-readable, under schema
//                       "trident-eval/1" (kind "report") — the input
//                       tools/check_manifest.py validates
//   report.md           the human-readable reproduction of the paper's
//                       evaluation tables
// Wall-clock figures are deliberately absent here — they live in the
// run manifest (--metrics-out, schema trident-run-metrics/1), keeping
// these artifacts byte-comparable between runs.
#pragma once

#include <string>

#include "eval/runner.h"

namespace trident::eval {

// String builders (exposed for the determinism tests).
std::string overall_csv(const EvalResults& results);
std::string per_instruction_csv(const EvalResults& results);
std::string report_json(const EvalResults& results);
std::string report_markdown(const EvalResults& results);

struct ReportPaths {
  std::string report_csv;
  std::string per_instruction_csv;
  std::string report_json;
  std::string report_md;
};

/// Writes all four artifacts into `out_dir` (created if missing).
/// Throws std::runtime_error when a file cannot be written.
ReportPaths write_reports(const EvalResults& results,
                          const std::string& out_dir);

}  // namespace trident::eval
