// Planner/orchestrator: expands an ExperimentSpec into cells and runs
// them to completion, crash-safely, on the shared thread pool.
//
// A *cell* is the unit of caching and restart:
//   fi-<workload>-s<seed>            one overall FI campaign
//   fii-<workload>-f<f>i<i>-s<seed>  one per-instruction FI campaign
//   model-<workload>-<model>         one model evaluation (overall SDC
//                                    plus per-instruction predictions
//                                    for the hottest top_n instructions)
// Cells are independent, so the orchestrator simply parallel_for()s
// over them (grain 1); FI cells additionally parallelize their trial
// loops on the same pool — the pool supports nesting without deadlock,
// and every cell's value is bit-identical at any thread count, so the
// assembled results (and the reports derived from them) are too.
//
// Crash safety is layered: a finished cell is persisted to the
// content-addressed store before the orchestrator moves on, and an
// unfinished FI cell leaves a fi::campaign checkpoint log next to its
// future store slot, so a killed run resumes mid-campaign. Re-running
// a finished spec performs zero FI trials.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "eval/spec.h"
#include "eval/store.h"
#include "interp/engine.h"
#include "ir/module.h"
#include "obs/metrics.h"
#include "workloads/workloads.h"

namespace trident::eval {

/// How run_spec dispatches its independent cells. The default (null in
/// RunOptions) is a plain parallel_for over the shared pool; the serve
/// daemon substitutes a fair per-session scheduler so one giant spec
/// cannot starve the other connected clients. Implementations must run
/// `body(0..n-1)` each exactly once (any order, any concurrency) and
/// propagate the first body exception.
class CellScheduler {
 public:
  virtual ~CellScheduler() = default;
  virtual void run_cells(uint64_t n,
                         const std::function<void(uint64_t)>& body) = 0;
};

/// One in-flight cell computation, shared between the run that owns it
/// and every run waiting on it. Created and resolved by InflightTable.
struct InflightCell {
  enum class State { Pending, Done, Failed };
  std::string canonical;
  State state = State::Pending;
  std::string error;  // set when Failed
};

/// Cross-run de-duplication of identical cells (docs/SERVE.md).
///
/// Before computing anything, a run *claims* its whole cell list
/// atomically: each cell resolves to a store hit (already persisted),
/// an ownership (this run computes and publishes it), or a wait (some
/// other run is computing the identical cell right now). Because the
/// entire list is claimed under one lock, two runs submitting the same
/// spec split deterministically — whichever claims first owns every
/// not-yet-stored cell and the other waits for all of them, never an
/// arbitrary interleaving. Waiting is deadlock-free by construction:
/// owners compute every owned cell before waiting on anything, so
/// there is no circular wait, and a failed or abandoned owner fails its
/// entries (fail() is a no-op on resolved cells), waking waiters with
/// the error instead of hanging them.
///
/// run_spec uses a private table when RunOptions::inflight is null, so
/// offline runs exercise the exact same code path the daemon does.
class InflightTable {
 public:
  enum class Role { StoreHit, Owner, Waiter };
  struct Claim {
    Role role = Role::Owner;
    support::json::Value data;          // StoreHit only
    std::shared_ptr<InflightCell> cell; // Owner and Waiter
  };

  /// Claims every key atomically (one lock across the whole list, with
  /// the store probed in-lock). `force` skips the store probe so a
  /// forced run recomputes — but still de-duplicates against runs
  /// already computing the same cell.
  std::vector<Claim> claim_all(const ResultStore& store,
                               const std::vector<CellKey>& keys, bool force);

  /// Marks an owned cell computed-and-persisted and wakes its waiters.
  void publish(const std::shared_ptr<InflightCell>& cell);
  /// Marks an owned cell failed (no-op unless still Pending) and wakes
  /// its waiters; a later claim of the same key may retry as owner.
  void fail(const std::shared_ptr<InflightCell>& cell,
            const std::string& why);
  /// Blocks until the cell resolves; throws std::runtime_error with the
  /// owner's error when it failed.
  void wait(const std::shared_ptr<InflightCell>& cell);

  /// Cells claimed as Waiter since construction (the daemon reports
  /// this as serve.inflight_dedup_hits).
  uint64_t dedup_hits() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable resolved_;
  std::map<std::string, std::shared_ptr<InflightCell>> inflight_;
  uint64_t dedup_hits_ = 0;
};

struct RunOptions {
  /// Artifact directory; the store lives at <out_dir>/store unless
  /// store_dir overrides it.
  std::string out_dir = "eval-out";
  /// Result-store directory; empty = <out_dir>/store. The daemon points
  /// every session at one shared store.
  std::string store_dir;
  /// Store shard fan-out (eval::StoreOptions::shards: 0/1 flat, 16 or
  /// 256 hash-prefix subdirectories).
  uint32_t store_shards = 0;
  /// Optional read-only upstream store (eval::StoreOptions).
  std::string store_upstream;
  /// Worker cap for every parallel stage (0 = TRIDENT_THREADS env or
  /// hardware_concurrency). Results are identical for any value.
  uint32_t threads = 0;
  /// Execution backend for FI campaign cells (docs/ENGINE.md). Cell
  /// values are bit-identical across backends, so the engine is NOT
  /// part of any cache key: cells computed under one backend are valid
  /// cache hits under the other, and a checkpointed campaign may resume
  /// under either.
  interp::EngineKind engine = interp::EngineKind::Interp;
  /// Recompute every cell, overwriting cached results (and discarding
  /// any mid-campaign checkpoint logs).
  bool force = false;
  /// Live cell-level progress line on stderr.
  bool progress = false;
  /// Optional sink for eval.* counters, the aggregated fi.* campaign
  /// metrics of every computed cell, and phase timers.
  obs::Registry* metrics = nullptr;
  /// Cell dispatcher; null = parallel_for on the shared pool.
  CellScheduler* scheduler = nullptr;
  /// Shared in-flight table; null = a run-private one (identical code
  /// path, no cross-run dedup).
  InflightTable* inflight = nullptr;
  /// Called as cells resolve, with (cells done, cells total). May be
  /// invoked concurrently from worker threads.
  std::function<void(uint64_t, uint64_t)> on_progress;
};

/// Outcome tallies of one or more pooled FI campaigns.
struct FiCounts {
  uint64_t trials = 0;
  uint64_t sdc = 0, benign = 0, crash = 0, hang = 0, detected = 0;
  uint64_t fuel_exhausted = 0;

  double sdc_prob() const {
    return trials > 0 ? static_cast<double>(sdc) / trials : 0.0;
  }
  double crash_prob() const {
    return trials > 0 ? static_cast<double>(crash) / trials : 0.0;
  }
};

/// One hottest-instruction row: FI ground truth pooled across seeds and
/// each model's prediction, in the spec's model order.
struct InstRow {
  ir::InstRef ref;
  uint64_t exec = 0;
  FiCounts fi;
  std::vector<double> model_sdc;
};

struct WorkloadEval {
  std::string name, suite, input;
  uint64_t static_insts = 0;
  uint64_t dynamic_insts = 0;
  /// Dynamic result-producing instructions — the FI population.
  uint64_t population = 0;
  FiCounts fi;                    // overall campaigns pooled across seeds
  std::vector<double> model_sdc;  // overall prediction per spec model
  std::vector<InstRow> insts;     // hottest top_n, hottest first
};

struct EvalResults {
  ExperimentSpec spec;
  std::vector<WorkloadEval> workloads;  // spec order
  uint64_t cells_total = 0;
  uint64_t cells_computed = 0;
  uint64_t cells_cached = 0;
  /// Cells whose value arrived from another run computing the identical
  /// cell concurrently (InflightTable waiters; 0 without a shared
  /// table). Counted separately from cells_cached, which means "already
  /// in the store when this run claimed it".
  uint64_t cells_deduped = 0;
  /// FI trials actually executed by this invocation (excludes both
  /// cached cells and trials restored from mid-campaign checkpoints);
  /// 0 when every cell was a cache hit.
  uint64_t fi_trials_run = 0;
};

/// Runs the spec to completion. Throws std::runtime_error on an invalid
/// spec or an unwritable store, and obs::Interrupted when
/// SIGINT/SIGTERM preempted the run (everything finished by then is
/// persisted or checkpointed, so a re-run resumes).
EvalResults run_spec(const ExperimentSpec& spec, const RunOptions& options);

// ---- Cache keys (exposed for tests and tools) --------------------------
CellKey fi_overall_key(const ExperimentSpec& spec,
                       const workloads::Workload& workload, uint64_t seed);
CellKey fi_inst_key(const ExperimentSpec& spec,
                    const workloads::Workload& workload, ir::InstRef target,
                    uint64_t seed);
CellKey model_key(const ExperimentSpec& spec,
                  const workloads::Workload& workload,
                  const std::string& model);

}  // namespace trident::eval
