// Planner/orchestrator: expands an ExperimentSpec into cells and runs
// them to completion, crash-safely, on the shared thread pool.
//
// A *cell* is the unit of caching and restart:
//   fi-<workload>-s<seed>            one overall FI campaign
//   fii-<workload>-f<f>i<i>-s<seed>  one per-instruction FI campaign
//   model-<workload>-<model>         one model evaluation (overall SDC
//                                    plus per-instruction predictions
//                                    for the hottest top_n instructions)
// Cells are independent, so the orchestrator simply parallel_for()s
// over them (grain 1); FI cells additionally parallelize their trial
// loops on the same pool — the pool supports nesting without deadlock,
// and every cell's value is bit-identical at any thread count, so the
// assembled results (and the reports derived from them) are too.
//
// Crash safety is layered: a finished cell is persisted to the
// content-addressed store before the orchestrator moves on, and an
// unfinished FI cell leaves a fi::campaign checkpoint log next to its
// future store slot, so a killed run resumes mid-campaign. Re-running
// a finished spec performs zero FI trials.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eval/spec.h"
#include "eval/store.h"
#include "interp/engine.h"
#include "ir/module.h"
#include "obs/metrics.h"
#include "workloads/workloads.h"

namespace trident::eval {

struct RunOptions {
  /// Artifact directory; the store lives at <out_dir>/store.
  std::string out_dir = "eval-out";
  /// Worker cap for every parallel stage (0 = TRIDENT_THREADS env or
  /// hardware_concurrency). Results are identical for any value.
  uint32_t threads = 0;
  /// Execution backend for FI campaign cells (docs/ENGINE.md). Cell
  /// values are bit-identical across backends, so the engine is NOT
  /// part of any cache key: cells computed under one backend are valid
  /// cache hits under the other, and a checkpointed campaign may resume
  /// under either.
  interp::EngineKind engine = interp::EngineKind::Interp;
  /// Recompute every cell, overwriting cached results (and discarding
  /// any mid-campaign checkpoint logs).
  bool force = false;
  /// Live cell-level progress line on stderr.
  bool progress = false;
  /// Optional sink for eval.* counters, the aggregated fi.* campaign
  /// metrics of every computed cell, and phase timers.
  obs::Registry* metrics = nullptr;
};

/// Outcome tallies of one or more pooled FI campaigns.
struct FiCounts {
  uint64_t trials = 0;
  uint64_t sdc = 0, benign = 0, crash = 0, hang = 0, detected = 0;
  uint64_t fuel_exhausted = 0;

  double sdc_prob() const {
    return trials > 0 ? static_cast<double>(sdc) / trials : 0.0;
  }
  double crash_prob() const {
    return trials > 0 ? static_cast<double>(crash) / trials : 0.0;
  }
};

/// One hottest-instruction row: FI ground truth pooled across seeds and
/// each model's prediction, in the spec's model order.
struct InstRow {
  ir::InstRef ref;
  uint64_t exec = 0;
  FiCounts fi;
  std::vector<double> model_sdc;
};

struct WorkloadEval {
  std::string name, suite, input;
  uint64_t static_insts = 0;
  uint64_t dynamic_insts = 0;
  /// Dynamic result-producing instructions — the FI population.
  uint64_t population = 0;
  FiCounts fi;                    // overall campaigns pooled across seeds
  std::vector<double> model_sdc;  // overall prediction per spec model
  std::vector<InstRow> insts;     // hottest top_n, hottest first
};

struct EvalResults {
  ExperimentSpec spec;
  std::vector<WorkloadEval> workloads;  // spec order
  uint64_t cells_total = 0;
  uint64_t cells_computed = 0;
  uint64_t cells_cached = 0;
  /// FI trials actually executed by this invocation (excludes both
  /// cached cells and trials restored from mid-campaign checkpoints);
  /// 0 when every cell was a cache hit.
  uint64_t fi_trials_run = 0;
};

/// Runs the spec to completion. Throws std::runtime_error on an invalid
/// spec or an unwritable store.
EvalResults run_spec(const ExperimentSpec& spec, const RunOptions& options);

// ---- Cache keys (exposed for tests and tools) --------------------------
CellKey fi_overall_key(const ExperimentSpec& spec,
                       const workloads::Workload& workload, uint64_t seed);
CellKey fi_inst_key(const ExperimentSpec& spec,
                    const workloads::Workload& workload, ir::InstRef target,
                    uint64_t seed);
CellKey model_key(const ExperimentSpec& spec,
                  const workloads::Workload& workload,
                  const std::string& model);

}  // namespace trident::eval
