#include "eval/store.h"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "support/str.h"

namespace trident::eval {

namespace fs = std::filesystem;
namespace json = support::json;

namespace {

/// Hash-prefix shard name for a cell: the first 1 (16 shards) or 2
/// (256 shards) hex digits of the key hash. Empty for a flat store.
std::string shard_name(const std::string& hash16, uint32_t shards) {
  if (shards == 16) return hash16.substr(0, 1);
  if (shards == 256) return hash16.substr(0, 2);
  return {};
}

/// Loads and validates one candidate cell file against `key`. Shared by
/// the store's own slots and the upstream probes — validation is
/// identical everywhere: schema, kind, and the exact canonical string.
std::optional<json::Value> load_cell_file(const std::string& path,
                                          const CellKey& key) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  json::ParseError perr;
  auto doc = json::parse(buf.str(), &perr);
  if (!doc || !doc->is_object()) return std::nullopt;
  if (doc->get_string("schema", "") != "trident-eval/1") return std::nullopt;
  if (doc->get_string("kind", "") != "cell") return std::nullopt;
  // The canonical key inside the file must match exactly: a mismatch is
  // a hash collision or a stale/edited file, both of which must re-run.
  if (doc->get_string("key", "") != key.canonical) return std::nullopt;
  const json::Value* data = doc->find("data");
  if (data == nullptr || !data->is_object()) return std::nullopt;
  return *data;
}

}  // namespace

uint64_t fnv1a64(const std::string& s) { return support::fnv1a64(s); }

std::string CellKey::hash_hex() const {
  return support::fnv1a64_hex(canonical);
}

ResultStore::ResultStore(std::string dir, const StoreOptions& options)
    : dir_(std::move(dir)),
      shards_(options.shards),
      upstream_dir_(options.upstream_dir) {
  if (shards_ != 0 && shards_ != 1 && shards_ != 16 && shards_ != 256) {
    throw std::runtime_error(
        "eval store: shard count must be 0, 1, 16 or 256 (got " +
        std::to_string(shards_) + ")");
  }
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("eval store: cannot create directory '" + dir_ +
                             "': " + ec.message());
  }
  // Create every shard directory up front: concurrent writers then
  // never race mkdir, and a reader can enumerate the layout without
  // guessing which prefixes exist.
  if (shards_ == 16 || shards_ == 256) {
    static const char kHex[] = "0123456789abcdef";
    for (uint32_t i = 0; i < shards_; ++i) {
      std::string name;
      if (shards_ == 16) {
        name = {kHex[i]};
      } else {
        name = {kHex[i >> 4], kHex[i & 0xf]};
      }
      fs::create_directories(dir_ + "/" + name, ec);
      if (ec) {
        throw std::runtime_error("eval store: cannot create shard '" + dir_ +
                                 "/" + name + "': " + ec.message());
      }
    }
  }
}

std::string ResultStore::shard_dir(const CellKey& key) const {
  const std::string name = shard_name(key.hash_hex(), shards_);
  return name.empty() ? dir_ : dir_ + "/" + name;
}

std::string ResultStore::cell_path(const CellKey& key) const {
  return shard_dir(key) + "/" + key.slug + "-" + key.hash_hex() + ".json";
}

std::string ResultStore::checkpoint_path(const CellKey& key) const {
  return shard_dir(key) + "/" + key.slug + "-" + key.hash_hex() +
         ".ckpt.jsonl";
}

std::optional<json::Value> ResultStore::load(const CellKey& key) const {
  // Own slot first (flat or sharded per this store's layout).
  if (auto found = load_cell_file(cell_path(key), key)) return found;
  // A sharded store reads through to the flat legacy layout so a store
  // populated before sharding keeps serving hits in place.
  const std::string hash16 = key.hash_hex();
  const std::string file = key.slug + "-" + hash16 + ".json";
  if (shards_ == 16 || shards_ == 256) {
    if (auto found = load_cell_file(dir_ + "/" + file, key)) return found;
  }
  // Read-only upstream federation: probe every layout, since the
  // upstream's shard count is its own business.
  if (!upstream_dir_.empty()) {
    for (const uint32_t layout : {0u, 16u, 256u}) {
      const std::string name = shard_name(hash16, layout);
      const std::string base =
          name.empty() ? upstream_dir_ : upstream_dir_ + "/" + name;
      if (auto found = load_cell_file(base + "/" + file, key)) {
        upstream_hits_.fetch_add(1, std::memory_order_relaxed);
        return found;
      }
    }
  }
  return std::nullopt;
}

void ResultStore::save(const CellKey& key, json::Value data) const {
  json::Value cell = json::Value::object();
  cell.set("schema", json::Value(std::string("trident-eval/1")));
  cell.set("kind", json::Value(std::string("cell")));
  cell.set("slug", json::Value(key.slug));
  cell.set("key", json::Value(key.canonical));
  cell.set("data", std::move(data));
  const std::string text = cell.write_pretty();

  const std::string path = cell_path(key);
  // The temp name must be unique per writer: two threads — or two
  // processes, e.g. an offline run racing a daemon — sharing one ".tmp"
  // would interleave writes and could rename a torn file into place.
  // Per-process entropy (clock at first use) + a per-write counter.
  static const uint64_t tmp_epoch = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  static std::atomic<uint64_t> tmp_seq{0};
  const std::string tmp = path + ".tmp." +
                          support::fnv1a64_hex(std::to_string(tmp_epoch) +
                                               ":" +
                                               std::to_string(tmp_seq++));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("eval store: cannot write '" + tmp + "'");
    }
    out << text;
    out.flush();
    if (!out) {
      throw std::runtime_error("eval store: short write to '" + tmp + "'");
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("eval store: cannot rename '" + tmp + "' to '" +
                             path + "': " + ec.message());
  }
  fs::remove(checkpoint_path(key), ec);  // best-effort sidecar cleanup
}

}  // namespace trident::eval
