#include "eval/store.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace trident::eval {

namespace fs = std::filesystem;
namespace json = support::json;

uint64_t fnv1a64(const std::string& s) {
  uint64_t h = 14695981039346656037ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string CellKey::hash_hex() const {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a64(canonical)));
  return buf;
}

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("eval store: cannot create directory '" + dir_ +
                             "': " + ec.message());
  }
}

std::string ResultStore::cell_path(const CellKey& key) const {
  return dir_ + "/" + key.slug + "-" + key.hash_hex() + ".json";
}

std::string ResultStore::checkpoint_path(const CellKey& key) const {
  return dir_ + "/" + key.slug + "-" + key.hash_hex() + ".ckpt.jsonl";
}

std::optional<json::Value> ResultStore::load(const CellKey& key) const {
  std::ifstream in(cell_path(key), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  json::ParseError perr;
  auto doc = json::parse(buf.str(), &perr);
  if (!doc || !doc->is_object()) return std::nullopt;
  if (doc->get_string("schema", "") != "trident-eval/1") return std::nullopt;
  if (doc->get_string("kind", "") != "cell") return std::nullopt;
  // The canonical key inside the file must match exactly: a mismatch is
  // a hash collision or a stale/edited file, both of which must re-run.
  if (doc->get_string("key", "") != key.canonical) return std::nullopt;
  const json::Value* data = doc->find("data");
  if (data == nullptr || !data->is_object()) return std::nullopt;
  return *data;
}

void ResultStore::save(const CellKey& key, json::Value data) const {
  json::Value cell = json::Value::object();
  cell.set("schema", json::Value(std::string("trident-eval/1")));
  cell.set("kind", json::Value(std::string("cell")));
  cell.set("slug", json::Value(key.slug));
  cell.set("key", json::Value(key.canonical));
  cell.set("data", std::move(data));
  const std::string text = cell.write_pretty();

  const std::string path = cell_path(key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("eval store: cannot write '" + tmp + "'");
    }
    out << text;
    out.flush();
    if (!out) {
      throw std::runtime_error("eval store: short write to '" + tmp + "'");
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("eval store: cannot rename '" + tmp + "' to '" +
                             path + "': " + ec.message());
  }
  fs::remove(checkpoint_path(key), ec);  // best-effort sidecar cleanup
}

}  // namespace trident::eval
