// Content-addressed result store for evaluation cells (docs/EVAL.md).
//
// Every cell — one FI campaign or one model evaluation — is keyed by a
// canonical string naming everything its result depends on: the code-
// version salt, the workload and its input description, the model
// fingerprint or fault-model settings, the seed, and the target
// instruction for per-instruction campaigns. The key is FNV-1a-hashed
// into the file name `<slug>-<hash16>.json`; the canonical string is
// echoed inside the file and re-checked on load, so a hash collision or
// a hand-edited file degrades to a cache miss, never to silently wrong
// data. Writes go through a per-writer temp file + rename, so a crash
// mid-write (or two processes racing the same cell) leaves either a
// complete cell or none — the orchestrator's crash-safety rests on that
// plus the per-cell fi::campaign checkpoint logs that live alongside
// unfinished FI cells.
//
// Layouts (docs/SERVE.md, "Store sharding"):
//   flat     every cell directly in dir/ — the offline default, and the
//            layout every store produced before sharding existed
//   sharded  cells fan out into hash-prefix subdirectories (dir/<p>/,
//            where <p> is the first 1 or 2 hex digits of the key hash,
//            for 16 or 256 shards) so many concurrent writers — the
//            serve daemon's sessions — never contend on one directory
// A sharded store reads through to the flat layout (a pre-sharding
// store keeps serving hits) and, when StoreOptions::upstream_dir is
// set, to a read-only upstream store in any layout — the federation
// shape where a team shares one warm store and each daemon only writes
// locally. Writes always land in this store's own layout.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "support/json.h"

namespace trident::eval {

/// The code-version salt folded into every cache key. Bump the trailing
/// number whenever the semantics of the model, the fault injector, the
/// interpreter, or a workload kernel change in a way that can move a
/// result: every cell of every store then recomputes on next use.
inline constexpr const char* kCodeVersionSalt = "trident-eval-salt/2";

/// Identity of one cell. `canonical` is the full dependency string,
/// `slug` a short human-readable file-name prefix ("fi-pathfinder-s1").
struct CellKey {
  std::string slug;
  std::string canonical;

  /// FNV-1a 64-bit hash of `canonical`, as 16 lowercase hex digits.
  std::string hash_hex() const;
};

/// FNV-1a 64-bit (support::fnv1a64; re-exported because the store's
/// callers and tests historically reach it through this header).
uint64_t fnv1a64(const std::string& s);

struct StoreOptions {
  /// 0 or 1 = flat layout; 16 or 256 = hash-prefix sharding (1 or 2 hex
  /// digits). Any other value throws — a store's shard count is part of
  /// its on-disk contract, not a tuning knob to round silently.
  uint32_t shards = 0;
  /// Optional read-only upstream store directory, probed (in every
  /// layout) when a cell misses both this store's own slot and the flat
  /// legacy slot. Never written.
  std::string upstream_dir;
};

class ResultStore {
 public:
  /// Opens (and creates, recursively) the store directory — including
  /// every shard subdirectory, so concurrent writers never race mkdir.
  explicit ResultStore(std::string dir) : ResultStore(std::move(dir), {}) {}
  ResultStore(std::string dir, const StoreOptions& options);

  const std::string& dir() const { return dir_; }
  uint32_t shards() const { return shards_; }

  std::string cell_path(const CellKey& key) const;
  /// Sidecar fi::campaign checkpoint log for an in-progress FI cell;
  /// deleted once the cell itself is persisted. Lives in the cell's
  /// shard directory.
  std::string checkpoint_path(const CellKey& key) const;

  /// Loads a cell: present, parseable, schema-tagged "trident-eval/1",
  /// and carrying exactly `key.canonical` — anything else is a miss.
  /// Probes this store's own slot, then (when sharded) the flat legacy
  /// slot, then the upstream store in every layout.
  std::optional<support::json::Value> load(const CellKey& key) const;

  /// Persists `data` (the cell payload) under `key` atomically, wrapped
  /// in the cell envelope {schema, kind, slug, key, data}, and removes
  /// the cell's checkpoint sidecar. Throws std::runtime_error when the
  /// store directory is not writable.
  void save(const CellKey& key, support::json::Value data) const;

  /// Cells served by the upstream federation since construction.
  uint64_t upstream_hits() const {
    return upstream_hits_.load(std::memory_order_relaxed);
  }

 private:
  std::string shard_dir(const CellKey& key) const;

  std::string dir_;
  uint32_t shards_ = 0;
  std::string upstream_dir_;
  mutable std::atomic<uint64_t> upstream_hits_{0};
};

}  // namespace trident::eval
