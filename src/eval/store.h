// Content-addressed result store for evaluation cells (docs/EVAL.md).
//
// Every cell — one FI campaign or one model evaluation — is keyed by a
// canonical string naming everything its result depends on: the code-
// version salt, the workload and its input description, the model
// fingerprint or fault-model settings, the seed, and the target
// instruction for per-instruction campaigns. The key is FNV-1a-hashed
// into the file name `<slug>-<hash16>.json`; the canonical string is
// echoed inside the file and re-checked on load, so a hash collision or
// a hand-edited file degrades to a cache miss, never to silently wrong
// data. Writes go through a temp file + rename, so a crash mid-write
// leaves either the old cell or none — the orchestrator's crash-safety
// rests on that plus the per-cell fi::campaign checkpoint logs that
// live alongside unfinished FI cells.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "support/json.h"

namespace trident::eval {

/// The code-version salt folded into every cache key. Bump the trailing
/// number whenever the semantics of the model, the fault injector, the
/// interpreter, or a workload kernel change in a way that can move a
/// result: every cell of every store then recomputes on next use.
inline constexpr const char* kCodeVersionSalt = "trident-eval-salt/2";

/// Identity of one cell. `canonical` is the full dependency string,
/// `slug` a short human-readable file-name prefix ("fi-pathfinder-s1").
struct CellKey {
  std::string slug;
  std::string canonical;

  /// FNV-1a 64-bit hash of `canonical`, as 16 lowercase hex digits.
  std::string hash_hex() const;
};

/// FNV-1a 64-bit (the repo-standard cheap stable hash).
uint64_t fnv1a64(const std::string& s);

class ResultStore {
 public:
  /// Opens (and creates, recursively) the store directory.
  explicit ResultStore(std::string dir);

  const std::string& dir() const { return dir_; }

  std::string cell_path(const CellKey& key) const;
  /// Sidecar fi::campaign checkpoint log for an in-progress FI cell;
  /// deleted once the cell itself is persisted.
  std::string checkpoint_path(const CellKey& key) const;

  /// Loads a cell: present, parseable, schema-tagged "trident-eval/1",
  /// and carrying exactly `key.canonical` — anything else is a miss.
  std::optional<support::json::Value> load(const CellKey& key) const;

  /// Persists `data` (the cell payload) under `key` atomically, wrapped
  /// in the cell envelope {schema, kind, slug, key, data}, and removes
  /// the cell's checkpoint sidecar. Throws std::runtime_error when the
  /// store directory is not writable.
  void save(const CellKey& key, support::json::Value data) const;

 private:
  std::string dir_;
};

}  // namespace trident::eval
