// Declarative experiment specifications (docs/EVAL.md).
//
// An ExperimentSpec names the full evaluation grid the paper's Section
// VI walks: workloads × model configurations (TRIDENT and the fs/fs+fc
// ablations plus the PVF/ePVF baselines) × FI campaign settings ×
// seeds. Specs are plain JSON on disk (schema "trident-eval-spec/1")
// and plain structs in C++, so tests and tools can construct them
// either way. The planner (eval/runner.h) expands a spec into cells;
// each cell's identity — and therefore its slot in the
// content-addressed result store — is a pure function of the spec
// fields here plus the workload's registered input description.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace trident::eval {

/// Fault-model settings shared by every FI cell of a spec. The fields
/// mirror fi::CampaignOptions and all enter the cache key: changing any
/// of them re-runs exactly the FI cells, never the model cells.
struct FiSettings {
  uint64_t trials = 2000;       // overall-campaign trials per seed
  uint64_t fuel_multiplier = 50;
  uint64_t hang_escalation = 8;
  uint32_t num_bits = 1;        // 1 = the paper's single-bit model
};

/// Per-instruction accuracy settings (paper Fig. 7 / Table 2 shape):
/// the `top_n` hottest injectable instructions of each workload get a
/// dedicated FI campaign of `trials` injections per seed, compared
/// against each model's per-instruction prediction by Spearman rank
/// correlation and mean absolute error.
struct PerInstSettings {
  uint32_t top_n = 10;
  uint64_t trials = 100;
};

/// The names accepted in ExperimentSpec::models. "full", "fs_fc", "fs"
/// and "paper" are TRIDENT configurations (core::ModelConfig); "pvf"
/// and "epvf" are the baselines of §VII-C.
const std::vector<std::string>& known_model_names();
bool is_baseline_model(const std::string& name);

struct ExperimentSpec {
  std::string name = "experiment";
  /// Registry workload names; the single entry "*" expands to all.
  std::vector<std::string> workloads;
  std::vector<std::string> models = {"full", "fs_fc", "fs", "pvf", "epvf"};
  /// Campaign seeds; FI cells exist per (workload, seed) and their
  /// counts are pooled for reporting, so adding a seed refines the
  /// ground truth without invalidating earlier seeds' cells.
  std::vector<uint64_t> seeds = {1};
  FiSettings fi;
  PerInstSettings per_inst;
  /// Extra user salt folded into every cache key (e.g. to segregate
  /// results produced by a locally patched build).
  std::string salt;

  /// Empty when the spec is well-formed; otherwise a message naming the
  /// offending field, including the full list of registered workloads /
  /// known models for the unknown-name cases.
  std::string validate() const;

  /// Workloads with "*" expanded, in registry order.
  std::vector<std::string> expanded_workloads() const;

  /// Canonical JSON round-trip (echoed into report.json).
  std::string to_json() const;
};

/// Parses schema "trident-eval-spec/1" JSON. On failure returns an
/// empty optional-like flag via *error (non-empty message).
bool parse_spec(const std::string& json_text, ExperimentSpec* out,
                std::string* error);

/// Reads and parses a spec file.
bool load_spec_file(const std::string& path, ExperimentSpec* out,
                    std::string* error);

}  // namespace trident::eval
