#include "eval/runner.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <stdexcept>

#include "baselines/epvf.h"
#include "baselines/pvf.h"
#include "core/trident.h"
#include "fi/campaign.h"
#include "obs/interrupt.h"
#include "profiler/profiler.h"
#include "support/thread_pool.h"

namespace trident::eval {

std::vector<InflightTable::Claim> InflightTable::claim_all(
    const ResultStore& store, const std::vector<CellKey>& keys, bool force) {
  std::vector<Claim> claims(keys.size());
  // One lock across the whole list: a racing claim_all sees either none
  // or all of this run's ownerships, so overlapping specs split into
  // one owner and pure waiters — never an arbitrary interleaving. The
  // in-lock store probes are cheap (small JSON reads) next to the cells
  // themselves.
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < keys.size(); ++i) {
    Claim& claim = claims[i];
    if (const auto it = inflight_.find(keys[i].canonical);
        it != inflight_.end()) {
      claim.role = Role::Waiter;
      claim.cell = it->second;
      ++dedup_hits_;
      continue;
    }
    if (!force) {
      if (auto hit = store.load(keys[i])) {
        claim.role = Role::StoreHit;
        claim.data = std::move(*hit);
        continue;
      }
    }
    claim.role = Role::Owner;
    claim.cell = std::make_shared<InflightCell>();
    claim.cell->canonical = keys[i].canonical;
    inflight_.emplace(keys[i].canonical, claim.cell);
  }
  return claims;
}

void InflightTable::publish(const std::shared_ptr<InflightCell>& cell) {
  std::lock_guard<std::mutex> lock(mutex_);
  cell->state = InflightCell::State::Done;
  inflight_.erase(cell->canonical);
  resolved_.notify_all();
}

void InflightTable::fail(const std::shared_ptr<InflightCell>& cell,
                         const std::string& why) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (cell->state != InflightCell::State::Pending) return;
  cell->state = InflightCell::State::Failed;
  cell->error = why;
  inflight_.erase(cell->canonical);
  resolved_.notify_all();
}

void InflightTable::wait(const std::shared_ptr<InflightCell>& cell) {
  std::unique_lock<std::mutex> lock(mutex_);
  resolved_.wait(lock, [&] {
    return cell->state != InflightCell::State::Pending;
  });
  if (cell->state == InflightCell::State::Failed) {
    throw std::runtime_error(
        "eval: deduplicated cell failed in the owning run: " + cell->error);
  }
}

uint64_t InflightTable::dedup_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dedup_hits_;
}

namespace {

namespace json = support::json;

std::string salt_prefix(const ExperimentSpec& spec) {
  std::string s = std::string("salt=") + kCodeVersionSalt;
  if (!spec.salt.empty()) s += "+" + spec.salt;
  return s;
}

std::string workload_part(const workloads::Workload& workload) {
  return ";workload=" + workload.name + ";input=" + workload.input;
}

std::string fault_model_part(const FiSettings& fi, uint64_t trials,
                             uint64_t seed) {
  return ";trials=" + std::to_string(trials) +
         ";seed=" + std::to_string(seed) +
         ";fuel=" + std::to_string(fi.fuel_multiplier) +
         ";esc=" + std::to_string(fi.hang_escalation) +
         ";bits=" + std::to_string(fi.num_bits);
}

std::string inst_tag(ir::InstRef ref) {
  return "f" + std::to_string(ref.func) + "i" + std::to_string(ref.inst);
}

}  // namespace

CellKey fi_overall_key(const ExperimentSpec& spec,
                       const workloads::Workload& workload, uint64_t seed) {
  CellKey key;
  key.slug = "fi-" + workload.name + "-s" + std::to_string(seed);
  key.canonical = salt_prefix(spec) + ";cell=fi_overall" +
                  workload_part(workload) +
                  fault_model_part(spec.fi, spec.fi.trials, seed);
  return key;
}

CellKey fi_inst_key(const ExperimentSpec& spec,
                    const workloads::Workload& workload, ir::InstRef target,
                    uint64_t seed) {
  CellKey key;
  key.slug = "fii-" + workload.name + "-" + inst_tag(target) + "-s" +
             std::to_string(seed);
  key.canonical = salt_prefix(spec) + ";cell=fi_inst" +
                  workload_part(workload) + ";target=" + inst_tag(target) +
                  fault_model_part(spec.fi, spec.per_inst.trials, seed);
  return key;
}

CellKey model_key(const ExperimentSpec& spec,
                  const workloads::Workload& workload,
                  const std::string& model) {
  std::string fingerprint;
  if (is_baseline_model(model)) {
    fingerprint = model + "/1";
  } else {
    const auto config = core::model_config_from_name(model);
    fingerprint = config ? core::model_config_fingerprint(*config)
                         : "unknown";
  }
  CellKey key;
  key.slug = "model-" + workload.name + "-" + model;
  key.canonical = salt_prefix(spec) + ";cell=model" +
                  workload_part(workload) + ";model=" + model +
                  ";cfg=" + fingerprint +
                  ";top_n=" + std::to_string(spec.per_inst.top_n);
  return key;
}

namespace {

struct Cell {
  enum class Kind { FiOverall, FiInst, Model };
  Kind kind;
  size_t workload = 0;   // index into the expanded workload list
  size_t seed_idx = 0;   // FI cells
  size_t model_idx = 0;  // model cells
  ir::InstRef target;    // FiInst
  CellKey key;
  json::Value data;      // payload, computed or loaded
  bool cached = false;
};

json::Value fi_counts_to_json(const fi::CampaignResult& result) {
  json::Value d = json::Value::object();
  d.set("trials", json::Value(result.total()));
  d.set("sdc", json::Value(result.sdc));
  d.set("benign", json::Value(result.benign));
  d.set("crash", json::Value(result.crash));
  d.set("hang", json::Value(result.hang));
  d.set("detected", json::Value(result.detected));
  d.set("fuel_exhausted", json::Value(result.fuel_exhausted));
  return d;
}

FiCounts fi_counts_from_json(const json::Value& d, const std::string& what) {
  FiCounts c;
  c.trials = d.get_uint("trials", 0);
  c.sdc = d.get_uint("sdc", 0);
  c.benign = d.get_uint("benign", 0);
  c.crash = d.get_uint("crash", 0);
  c.hang = d.get_uint("hang", 0);
  c.detected = d.get_uint("detected", 0);
  c.fuel_exhausted = d.get_uint("fuel_exhausted", 0);
  if (c.sdc + c.benign + c.crash + c.hang + c.detected != c.trials) {
    throw std::runtime_error("eval: corrupt cell " + what +
                             ": outcome tallies do not sum to trials");
  }
  return c;
}

void accumulate(FiCounts& into, const FiCounts& c) {
  into.trials += c.trials;
  into.sdc += c.sdc;
  into.benign += c.benign;
  into.crash += c.crash;
  into.hang += c.hang;
  into.detected += c.detected;
  into.fuel_exhausted += c.fuel_exhausted;
}

/// The hottest `top_n` injectable instructions: executed result
/// producers ordered by execution count descending, ties broken by
/// (func, inst) ascending so the set is stable across runs.
std::vector<ir::InstRef> hottest_instructions(const ir::Module& module,
                                              const prof::Profile& profile,
                                              uint32_t top_n) {
  std::vector<ir::InstRef> refs;
  for (uint32_t f = 0; f < module.functions.size(); ++f) {
    const auto& func = module.functions[f];
    for (uint32_t i = 0; i < func.insts.size(); ++i) {
      if (func.insts[i].has_result() && profile.exec({f, i}) > 0) {
        refs.push_back({f, i});
      }
    }
  }
  std::sort(refs.begin(), refs.end(),
            [&](const ir::InstRef& a, const ir::InstRef& b) {
              const uint64_t ea = profile.exec(a), eb = profile.exec(b);
              if (ea != eb) return ea > eb;
              return std::tie(a.func, a.inst) < std::tie(b.func, b.inst);
            });
  if (refs.size() > top_n) refs.resize(top_n);
  return refs;
}

}  // namespace

EvalResults run_spec(const ExperimentSpec& spec, const RunOptions& options) {
  if (const std::string msg = spec.validate(); !msg.empty()) {
    throw std::runtime_error(msg);
  }
  obs::Registry scratch;  // sink when the caller passes no registry
  obs::Registry& registry =
      options.metrics != nullptr ? *options.metrics : scratch;
  obs::ScopedTimer timer(registry, "phase.eval.seconds");

  StoreOptions store_options;
  store_options.shards = options.store_shards;
  store_options.upstream_dir = options.store_upstream;
  const ResultStore store(
      options.store_dir.empty() ? options.out_dir + "/store"
                                : options.store_dir,
      store_options);
  const auto names = spec.expanded_workloads();

  // Profiling pass: build every workload module and collect its golden
  // profile (one fault-free run each). Cells only read these, so the
  // modules stay alive for the whole evaluation.
  std::vector<const workloads::Workload*> metas(names.size());
  std::vector<ir::Module> modules(names.size());
  std::vector<prof::Profile> profiles(names.size());
  {
    obs::ScopedTimer t(registry, "phase.eval.profile.seconds");
    support::ThreadPool::global().parallel_for(
        names.size(),
        [&](uint64_t i) {
          metas[i] = workloads::lookup_workload(names[i]);
          modules[i] = metas[i]->build();
          profiles[i] = prof::collect_profile(modules[i]);
        },
        options.threads, /*grain=*/1);
  }

  std::vector<std::vector<ir::InstRef>> hot(names.size());
  for (size_t w = 0; w < names.size(); ++w) {
    hot[w] = hottest_instructions(modules[w], profiles[w],
                                  spec.per_inst.top_n);
  }

  // Plan: one flat, deterministically ordered cell list.
  std::vector<Cell> cells;
  for (size_t w = 0; w < names.size(); ++w) {
    for (size_t s = 0; s < spec.seeds.size(); ++s) {
      Cell cell;
      cell.kind = Cell::Kind::FiOverall;
      cell.workload = w;
      cell.seed_idx = s;
      cell.key = fi_overall_key(spec, *metas[w], spec.seeds[s]);
      cells.push_back(std::move(cell));
      for (const auto ref : hot[w]) {
        Cell inst_cell;
        inst_cell.kind = Cell::Kind::FiInst;
        inst_cell.workload = w;
        inst_cell.seed_idx = s;
        inst_cell.target = ref;
        inst_cell.key = fi_inst_key(spec, *metas[w], ref, spec.seeds[s]);
        cells.push_back(std::move(inst_cell));
      }
    }
    for (size_t mi = 0; mi < spec.models.size(); ++mi) {
      Cell cell;
      cell.kind = Cell::Kind::Model;
      cell.workload = w;
      cell.model_idx = mi;
      cell.key = model_key(spec, *metas[w], spec.models[mi]);
      cells.push_back(std::move(cell));
    }
  }

  std::atomic<uint64_t> computed{0}, cached{0}, deduped{0}, trials_run{0},
      done{0};
  obs::ProgressLine progress(options.progress, "eval " + spec.name);
  const auto bump_progress = [&] {
    const uint64_t d = done.fetch_add(1, std::memory_order_relaxed) + 1;
    progress.update(d, cells.size());
    if (options.on_progress) options.on_progress(d, cells.size());
  };

  // Claim the whole cell list atomically: each cell is a store hit, an
  // ownership (this run computes it), or a wait on another run already
  // computing the identical cell. Offline runs use a run-private table,
  // so the daemon's dedup path is the only path.
  InflightTable local_table;
  InflightTable& table =
      options.inflight != nullptr ? *options.inflight : local_table;
  std::vector<CellKey> keys;
  keys.reserve(cells.size());
  for (const Cell& cell : cells) keys.push_back(cell.key);
  const auto claims = table.claim_all(store, keys, options.force);

  for (size_t i = 0; i < cells.size(); ++i) {
    if (claims[i].role == InflightTable::Role::StoreHit) {
      cells[i].data = claims[i].data;
      cells[i].cached = true;
      cached.fetch_add(1, std::memory_order_relaxed);
      bump_progress();
    }
  }
  std::vector<size_t> owned;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (claims[i].role == InflightTable::Role::Owner) owned.push_back(i);
  }

  const auto compute_cell = [&](Cell& cell) {
    if (options.force) {
      // A stale mid-campaign checkpoint must not feed a forced re-run.
      std::error_code ec;
      std::filesystem::remove(store.checkpoint_path(cell.key), ec);
    }
    const ir::Module& module = modules[cell.workload];
    const prof::Profile& profile = profiles[cell.workload];
    switch (cell.kind) {
      case Cell::Kind::FiOverall:
      case Cell::Kind::FiInst: {
        fi::CampaignOptions campaign;
        campaign.threads = options.threads;
        campaign.engine = options.engine;
        campaign.fuel_multiplier = spec.fi.fuel_multiplier;
        campaign.hang_escalation = spec.fi.hang_escalation;
        campaign.num_bits = spec.fi.num_bits;
        campaign.metrics = options.metrics;
        campaign.checkpoint_path = store.checkpoint_path(cell.key);
        fi::CampaignResult result;
        if (cell.kind == Cell::Kind::FiOverall) {
          campaign.trials = spec.fi.trials;
          campaign.seed = spec.seeds[cell.seed_idx];
          result = fi::run_overall_campaign(module, profile, campaign);
        } else {
          campaign.trials = spec.per_inst.trials;
          // Decorrelate the per-target campaigns: two targets sharing a
          // spec seed must not draw identical (occurrence, bit) streams.
          campaign.seed =
              spec.seeds[cell.seed_idx] ^
              fnv1a64("inst:" + names[cell.workload] + ":" +
                      inst_tag(cell.target));
          result = fi::run_instruction_campaign(module, profile, cell.target,
                                                campaign);
        }
        trials_run.fetch_add(result.total() - result.resumed,
                             std::memory_order_relaxed);
        // A preempted campaign already flushed every finished trial to
        // its checkpoint log; the partial tallies must not be persisted
        // as a finished cell.
        if (result.interrupted) throw obs::Interrupted();
        cell.data = fi_counts_to_json(result);
        break;
      }
      case Cell::Kind::Model: {
        const std::string& model = spec.models[cell.model_idx];
        json::Value d = json::Value::object();
        json::Value insts = json::Value::array();
        const auto add_inst = [&](ir::InstRef ref, double sdc) {
          json::Value row = json::Value::object();
          row.set("func", json::Value(static_cast<uint64_t>(ref.func)));
          row.set("inst", json::Value(static_cast<uint64_t>(ref.inst)));
          row.set("exec", json::Value(profile.exec(ref)));
          row.set("sdc", json::Value(sdc));
          insts.push_back(std::move(row));
        };
        if (model == "pvf") {
          const baselines::PvfModel pvf(module, profile);
          d.set("overall_sdc", json::Value(pvf.overall()));
          for (const auto ref : hot[cell.workload]) {
            add_inst(ref, pvf.pvf(ref));
          }
        } else if (model == "epvf") {
          const baselines::EpvfModel epvf(module, profile);
          d.set("overall_sdc", json::Value(epvf.overall()));
          for (const auto ref : hot[cell.workload]) {
            add_inst(ref, epvf.epvf(ref));
          }
        } else {
          const auto config = core::model_config_from_name(model);
          const core::Trident trident(module, profile, *config);
          d.set("overall_sdc", json::Value(trident.overall_sdc_exact()));
          const auto preds =
              trident.predict_all(hot[cell.workload], options.threads);
          for (size_t i = 0; i < hot[cell.workload].size(); ++i) {
            add_inst(hot[cell.workload][i], preds[i].sdc);
          }
          if (options.metrics != nullptr) {
            trident.export_metrics(*options.metrics);
          }
        }
        d.set("insts", std::move(insts));
        cell.data = std::move(d);
        break;
      }
    }
    store.save(cell.key, cell.data);
    computed.fetch_add(1, std::memory_order_relaxed);
  };

  const auto run_owned = [&](uint64_t oi) {
    Cell& cell = cells[owned[oi]];
    const auto& entry = claims[owned[oi]].cell;
    // Cooperative interrupt: stop starting cells. The failed entry
    // wakes any waiter with a clear error instead of hanging it.
    if (obs::interrupt_requested()) {
      table.fail(entry, "interrupted");
      return;
    }
    try {
      compute_cell(cell);
      table.publish(entry);
    } catch (const std::exception& e) {
      table.fail(entry, e.what());
      throw;
    } catch (...) {
      table.fail(entry, "unknown error");
      throw;
    }
    bump_progress();
  };

  {
    obs::ScopedTimer t(registry, "phase.eval.cells.seconds");
    std::exception_ptr first_error;
    try {
      if (options.scheduler != nullptr) {
        options.scheduler->run_cells(owned.size(), run_owned);
      } else {
        support::ThreadPool::global().parallel_for(owned.size(), run_owned,
                                                   options.threads,
                                                   /*grain=*/1);
      }
    } catch (...) {
      first_error = std::current_exception();
    }
    // parallel_for abandons remaining chunks after a body exception;
    // their entries are still Pending and would hang waiters in other
    // runs forever. fail() is a no-op on entries that resolved.
    for (const size_t i : owned) {
      table.fail(claims[i].cell, "abandoned: another cell in its run failed");
    }
    if (first_error) std::rethrow_exception(first_error);
  }

  if (obs::interrupt_requested()) throw obs::Interrupted();

  // Waiters resolve last, on this thread: every owned cell above is
  // done, so the owning runs make progress and the waits terminate.
  for (size_t i = 0; i < cells.size(); ++i) {
    if (claims[i].role != InflightTable::Role::Waiter) continue;
    table.wait(claims[i].cell);
    auto hit = store.load(cells[i].key);
    if (!hit) {
      throw std::runtime_error("eval: deduplicated cell " +
                               cells[i].key.slug +
                               " missing from the store after its owning "
                               "run published it");
    }
    cells[i].data = std::move(*hit);
    deduped.fetch_add(1, std::memory_order_relaxed);
    bump_progress();
  }
  progress.finish(done.load(), cells.size());

  // ---- Assembly: fold the cell payloads into per-workload results ----
  EvalResults results;
  results.spec = spec;
  results.cells_total = cells.size();
  results.cells_computed = computed.load();
  results.cells_cached = cached.load();
  results.cells_deduped = deduped.load();
  results.fi_trials_run = trials_run.load();
  results.workloads.resize(names.size());

  for (size_t w = 0; w < names.size(); ++w) {
    WorkloadEval& we = results.workloads[w];
    we.name = metas[w]->name;
    we.suite = metas[w]->suite;
    we.input = metas[w]->input;
    we.static_insts = modules[w].num_insts();
    we.dynamic_insts = profiles[w].total_dynamic;
    we.population = profiles[w].total_results;
    we.model_sdc.resize(spec.models.size(), 0.0);
    we.insts.resize(hot[w].size());
    for (size_t i = 0; i < hot[w].size(); ++i) {
      we.insts[i].ref = hot[w][i];
      we.insts[i].exec = profiles[w].exec(hot[w][i]);
      we.insts[i].model_sdc.resize(spec.models.size(), 0.0);
    }
  }

  for (const Cell& cell : cells) {
    WorkloadEval& we = results.workloads[cell.workload];
    switch (cell.kind) {
      case Cell::Kind::FiOverall:
        accumulate(we.fi, fi_counts_from_json(cell.data, cell.key.slug));
        break;
      case Cell::Kind::FiInst: {
        const auto counts = fi_counts_from_json(cell.data, cell.key.slug);
        for (auto& row : we.insts) {
          if (row.ref.func == cell.target.func &&
              row.ref.inst == cell.target.inst) {
            accumulate(row.fi, counts);
            break;
          }
        }
        break;
      }
      case Cell::Kind::Model: {
        we.model_sdc[cell.model_idx] = cell.data.get_double("overall_sdc", 0);
        const json::Value* insts = cell.data.find("insts");
        if (insts == nullptr || !insts->is_array() ||
            insts->items().size() != we.insts.size()) {
          throw std::runtime_error(
              "eval: cell " + cell.key.slug +
              " does not cover the current hottest-instruction set; the "
              "profile changed without a salt bump — re-run with --force "
              "or bump the code-version salt");
        }
        for (size_t i = 0; i < we.insts.size(); ++i) {
          const json::Value& row = insts->items()[i];
          if (row.get_uint("func", ~0ull) != we.insts[i].ref.func ||
              row.get_uint("inst", ~0ull) != we.insts[i].ref.inst) {
            throw std::runtime_error(
                "eval: cell " + cell.key.slug +
                " targets stale instructions; re-run with --force or bump "
                "the code-version salt");
          }
          we.insts[i].model_sdc[cell.model_idx] = row.get_double("sdc", 0);
        }
        break;
      }
    }
  }

  registry.add("eval.cells.total", results.cells_total);
  registry.add("eval.cells.computed", results.cells_computed);
  registry.add("eval.cells.cached", results.cells_cached);
  registry.add("eval.cells.deduped", results.cells_deduped);
  registry.add("eval.fi.trials_run", results.fi_trials_run);
  registry.add("eval.store.upstream_hits", store.upstream_hits());
  return results;
}

}  // namespace trident::eval
