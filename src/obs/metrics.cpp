#include "obs/metrics.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

#if defined(_WIN32)
#include <io.h>
#define TRIDENT_ISATTY _isatty
#define TRIDENT_FILENO _fileno
#else
#include <unistd.h>
#define TRIDENT_ISATTY isatty
#define TRIDENT_FILENO fileno
#endif

namespace trident::obs {

void Registry::add(const std::string& name, uint64_t delta) {
  std::lock_guard lock(mutex_);
  counters_[name] += delta;
}

void Registry::set_counter(const std::string& name, uint64_t value) {
  std::lock_guard lock(mutex_);
  counters_[name] = value;
}

void Registry::set(const std::string& name, double value) {
  std::lock_guard lock(mutex_);
  gauges_[name] = value;
}

uint64_t Registry::counter(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Registry::gauge(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

bool Registry::has_counter(const std::string& name) const {
  std::lock_guard lock(mutex_);
  return counters_.count(name) != 0;
}

bool Registry::has_gauge(const std::string& name) const {
  std::lock_guard lock(mutex_);
  return gauges_.count(name) != 0;
}

std::vector<std::pair<std::string, uint64_t>> Registry::counters() const {
  std::lock_guard lock(mutex_);
  return {counters_.begin(), counters_.end()};
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  std::lock_guard lock(mutex_);
  return {gauges_.begin(), gauges_.end()};
}

namespace {

// Names are dotted identifiers and info values are paths/command words;
// escape the JSON specials anyway so the manifest always parses.
void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

std::string Registry::to_json() const {
  std::lock_guard lock(mutex_);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ", ";
    first = false;
    append_json_string(out, name);
    out += ": ";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, value);
    out += buf;
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out += ", ";
    first = false;
    append_json_string(out, name);
    out += ": ";
    append_double(out, value);
  }
  out += "}}";
  return out;
}

std::string manifest_json(
    const Registry& registry,
    const std::vector<std::pair<std::string, std::string>>& info) {
  std::string out = "{\"schema\": \"trident-run-metrics/1\"";
  for (const auto& [key, value] : info) {
    out += ", ";
    append_json_string(out, key);
    out += ": ";
    append_json_string(out, value);
  }
  const std::string body = registry.to_json();
  // Splice the registry object's members into the manifest object.
  out += ", ";
  out.append(body, 1, body.size() - 2);
  out += "}\n";
  return out;
}

ScopedTimer::ScopedTimer(Registry& registry, std::string name)
    : registry_(registry), name_(std::move(name)), start_(now_seconds()) {}

ScopedTimer::~ScopedTimer() {
  registry_.set(name_, registry_.gauge(name_) + (now_seconds() - start_));
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool stderr_is_tty() { return TRIDENT_ISATTY(TRIDENT_FILENO(stderr)) != 0; }

ProgressLine::ProgressLine(bool enabled, std::string label)
    : enabled_(enabled), label_(std::move(label)), started_(now_seconds()) {}

void ProgressLine::draw(uint64_t done, uint64_t total, bool last) {
  const double elapsed = now_seconds() - started_;
  const double rate = elapsed > 0 ? static_cast<double>(done) / elapsed : 0;
  const double pct =
      total > 0 ? 100.0 * static_cast<double>(done) / total : 100.0;
  std::fprintf(stderr,
               "\r[%s] %" PRIu64 "/%" PRIu64 " trials (%.1f%%) %.1f trials/s%s",
               label_.c_str(), done, total, pct, rate, last ? "\n" : "");
  std::fflush(stderr);
}

void ProgressLine::update(uint64_t done, uint64_t total) {
  if (!enabled_) return;
  std::lock_guard lock(mutex_);
  const double now = now_seconds();
  if (now - last_draw_ < 0.1 && done != total) return;
  last_draw_ = now;
  draw(done, total, /*last=*/false);
}

void ProgressLine::finish(uint64_t done, uint64_t total) {
  if (!enabled_) return;
  std::lock_guard lock(mutex_);
  draw(done, total, /*last=*/true);
}

}  // namespace trident::obs
