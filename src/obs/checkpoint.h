// Crash-safe campaign checkpointing: an append-only JSONL log of
// completed trial slots.
//
// Line 1 is a versioned header capturing the campaign's full identity
// (kind, seed, trial count, fault model, fuel policy, population size);
// every later line is one completed trial. Workers append records as
// trials finish (each line flushed), so an interrupted campaign loses at
// most the in-flight trials. On resume the plan is re-derived from the
// (seed, i) counter-based RNG streams and only slots missing from the
// log run — the merged result is bit-identical to an uninterrupted run
// at any thread count.
//
// Robustness rules:
//   - header mismatch (stale seed, different trial count / fault model /
//     module population) or unknown version: open() fails with a clear
//     error — resuming under different parameters would silently mix
//     incompatible trials.
//   - a torn final line (no trailing newline, or unparseable) is the
//     signature of a crash mid-append: it is dropped and the slot re-run.
//   - an unparseable line in the middle of the log, or an out-of-range
//     slot index, means real corruption: open() fails.
//
// The record layer is deliberately flat (plain ints) so obs/ has no
// dependency on fi/; fi::campaign converts to/from its Trial type.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace trident::obs {

inline constexpr uint32_t kCheckpointVersion = 1;

/// One completed trial slot as persisted in the log.
struct TrialRecord {
  uint64_t index = 0;          // plan slot
  uint32_t outcome = 0;        // fi::FIOutcome as an integer
  uint32_t target_func = 0;    // static instruction the fault landed on
  uint32_t target_inst = 0;
  uint32_t bit = 0;            // flipped bit position
  bool fuel_exhausted = false; // hung at base fuel, completed escalated

  bool operator==(const TrialRecord&) const = default;
};

/// Campaign identity; every field must match for a resume to be valid.
struct CheckpointHeader {
  uint32_t version = kCheckpointVersion;
  std::string kind;  // "overall" | "instruction"
  uint64_t seed = 0;
  uint64_t trials = 0;
  uint64_t fuel_multiplier = 0;
  uint64_t hang_escalation = 0;
  uint64_t population = 0;  // total_results (overall) / occurrences (instr)
  uint32_t num_bits = 1;
  uint32_t entry = 0;
  // Target of an instruction campaign; the default InstRef sentinel
  // (func = kNoFunc) for overall campaigns.
  uint32_t target_func = 0;
  uint32_t target_inst = 0;

  bool operator==(const CheckpointHeader&) const = default;

  std::string to_json() const;
  static bool parse(const std::string& line, CheckpointHeader* out);
};

class CheckpointLog {
 public:
  /// Opens `path` for resume + append. A missing or empty file is
  /// created with `header`; an existing one must carry an identical
  /// header, and its trial records are loaded into resumed(). Returns
  /// nullptr and fills *error on version/header mismatch or corruption.
  static std::unique_ptr<CheckpointLog> open(const std::string& path,
                                             const CheckpointHeader& header,
                                             std::string* error);
  ~CheckpointLog();
  CheckpointLog(const CheckpointLog&) = delete;
  CheckpointLog& operator=(const CheckpointLog&) = delete;

  /// Slots already completed by a previous run, keyed by plan index.
  const std::unordered_map<uint64_t, TrialRecord>& resumed() const {
    return resumed_;
  }

  /// Appends one completed trial and flushes the line. Thread-safe.
  void append(const TrialRecord& record);

 private:
  CheckpointLog() = default;

  std::FILE* file_ = nullptr;
  std::mutex mutex_;
  std::unordered_map<uint64_t, TrialRecord> resumed_;
};

}  // namespace trident::obs
