// Cooperative process-wide interrupt flag (SIGINT/SIGTERM).
//
// Long-running stages — FI campaign trial loops, eval cell runs, the
// serve daemon's accept loop — poll interrupt_requested() between units
// of work and wind down cleanly when it is set: campaigns stop
// scheduling new trials (every finished trial is already flushed to the
// JSONL checkpoint log), the eval orchestrator stops starting cells and
// throws Interrupted, and the CLI writes the run manifest before
// exiting with status 130. A second signal restores the default
// disposition path and terminates immediately, so a wedged run can
// still be killed from the keyboard.
//
// The flag is process-wide by design: one Ctrl-C means "this process
// should stop", and every cooperating loop in the process observes the
// same signal without any plumbing.
#pragma once

#include <stdexcept>

namespace trident::obs {

/// Installs the SIGINT/SIGTERM handlers (idempotent; safe to call from
/// main() before any threads exist). Without this call the flag can
/// still be driven manually via request_interrupt().
void install_interrupt_handlers();

/// True once a signal arrived or request_interrupt() ran.
bool interrupt_requested();

/// Sets the flag programmatically (the serve daemon's shutdown path and
/// the tests use this; it is exactly what the signal handler does).
void request_interrupt();

/// Clears the flag (tests only — a real run never un-interrupts).
void clear_interrupt();

/// Thrown by orchestrators (eval::run_spec) when the flag preempted the
/// run. The CLI maps it to exit status 130 after flushing the manifest.
class Interrupted : public std::runtime_error {
 public:
  Interrupted() : std::runtime_error(
      "interrupted (SIGINT/SIGTERM); finished work is checkpointed") {}
};

}  // namespace trident::obs
