#include "obs/checkpoint.h"

#include <cinttypes>
#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>

namespace trident::obs {

namespace {

// Minimal field extraction for the flat, library-written JSON lines
// above. Tolerant of whitespace, intolerant of everything else.
bool find_u64(const std::string& line, const char* key, uint64_t* out) {
  const std::string needle = std::string("\"") + key + "\"";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos = line.find(':', pos + needle.size());
  if (pos == std::string::npos) return false;
  ++pos;
  while (pos < line.size() && std::isspace(static_cast<unsigned char>(line[pos]))) ++pos;
  if (pos >= line.size() || !std::isdigit(static_cast<unsigned char>(line[pos]))) {
    return false;
  }
  char* end = nullptr;
  *out = std::strtoull(line.c_str() + pos, &end, 10);
  return end != line.c_str() + pos;
}

bool find_string(const std::string& line, const char* key, std::string* out) {
  const std::string needle = std::string("\"") + key + "\"";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos = line.find(':', pos + needle.size());
  if (pos == std::string::npos) return false;
  pos = line.find('"', pos);
  if (pos == std::string::npos) return false;
  const size_t end = line.find('"', pos + 1);
  if (end == std::string::npos) return false;
  *out = line.substr(pos + 1, end - pos - 1);
  return true;
}

bool parse_record(const std::string& line, TrialRecord* out) {
  uint64_t i = 0, o = 0, f = 0, n = 0, b = 0, x = 0;
  if (!find_u64(line, "i", &i) || !find_u64(line, "o", &o) ||
      !find_u64(line, "f", &f) || !find_u64(line, "n", &n) ||
      !find_u64(line, "b", &b) || !find_u64(line, "x", &x)) {
    return false;
  }
  out->index = i;
  out->outcome = static_cast<uint32_t>(o);
  out->target_func = static_cast<uint32_t>(f);
  out->target_inst = static_cast<uint32_t>(n);
  out->bit = static_cast<uint32_t>(b);
  out->fuel_exhausted = x != 0;
  return true;
}

std::string format_record(const TrialRecord& r) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "{\"i\": %" PRIu64
                ", \"o\": %u, \"f\": %u, \"n\": %u, \"b\": %u, \"x\": %u}\n",
                r.index, r.outcome, r.target_func, r.target_inst, r.bit,
                r.fuel_exhausted ? 1u : 0u);
  return buf;
}

}  // namespace

std::string CheckpointHeader::to_json() const {
  std::ostringstream out;
  out << "{\"format\": \"trident-fi-checkpoint\", \"version\": " << version
      << ", \"kind\": \"" << kind << "\", \"seed\": " << seed
      << ", \"trials\": " << trials
      << ", \"fuel_multiplier\": " << fuel_multiplier
      << ", \"hang_escalation\": " << hang_escalation
      << ", \"population\": " << population << ", \"num_bits\": " << num_bits
      << ", \"entry\": " << entry << ", \"target_func\": " << target_func
      << ", \"target_inst\": " << target_inst << "}";
  return out.str();
}

bool CheckpointHeader::parse(const std::string& line, CheckpointHeader* out) {
  std::string format;
  if (!find_string(line, "format", &format) ||
      format != "trident-fi-checkpoint") {
    return false;
  }
  uint64_t version = 0, seed = 0, trials = 0, fuel = 0, esc = 0, pop = 0,
           num_bits = 0, entry = 0, tf = 0, ti = 0;
  if (!find_string(line, "kind", &out->kind) ||
      !find_u64(line, "version", &version) ||
      !find_u64(line, "seed", &seed) || !find_u64(line, "trials", &trials) ||
      !find_u64(line, "fuel_multiplier", &fuel) ||
      !find_u64(line, "hang_escalation", &esc) ||
      !find_u64(line, "population", &pop) ||
      !find_u64(line, "num_bits", &num_bits) ||
      !find_u64(line, "entry", &entry) ||
      !find_u64(line, "target_func", &tf) ||
      !find_u64(line, "target_inst", &ti)) {
    return false;
  }
  out->version = static_cast<uint32_t>(version);
  out->seed = seed;
  out->trials = trials;
  out->fuel_multiplier = fuel;
  out->hang_escalation = esc;
  out->population = pop;
  out->num_bits = static_cast<uint32_t>(num_bits);
  out->entry = static_cast<uint32_t>(entry);
  out->target_func = static_cast<uint32_t>(tf);
  out->target_inst = static_cast<uint32_t>(ti);
  return true;
}

std::unique_ptr<CheckpointLog> CheckpointLog::open(
    const std::string& path, const CheckpointHeader& header,
    std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error) *error = "checkpoint " + path + ": " + msg;
    return nullptr;
  };

  auto log = std::unique_ptr<CheckpointLog>(new CheckpointLog());
  std::string existing;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      existing = buf.str();
    }
  }

  size_t valid_end = existing.size();
  if (!existing.empty()) {
    // Split into lines; a final line without '\n' is a torn append and
    // is dropped (its slot simply re-runs).
    size_t pos = 0;
    size_t line_no = 0;
    bool header_seen = false;
    while (pos < existing.size()) {
      const size_t line_start = pos;
      const size_t nl = existing.find('\n', pos);
      const bool complete = nl != std::string::npos;
      std::string line =
          existing.substr(pos, complete ? nl - pos : std::string::npos);
      pos = complete ? nl + 1 : existing.size();
      ++line_no;
      if (!header_seen) {
        CheckpointHeader found;
        if (!complete || !CheckpointHeader::parse(line, &found)) {
          return fail("missing or unreadable header line");
        }
        if (found.version != header.version) {
          return fail("version " + std::to_string(found.version) +
                      " does not match expected " +
                      std::to_string(header.version));
        }
        if (!(found == header)) {
          return fail(
              "header does not match this campaign (stale seed, trial "
              "count, fault model, or target program?)\n  found:    " +
              found.to_json() + "\n  expected: " + header.to_json());
        }
        header_seen = true;
        continue;
      }
      if (!complete) {
        // Torn tail (crash mid-append): drop the partial line and re-run
        // its slot, whether or not the fragment happens to parse.
        valid_end = line_start;
        break;
      }
      TrialRecord record;
      if (!parse_record(line, &record)) {
        return fail("corrupt record at line " + std::to_string(line_no));
      }
      if (record.index >= header.trials) {
        return fail("record at line " + std::to_string(line_no) +
                    " has slot " + std::to_string(record.index) +
                    " outside the campaign's " +
                    std::to_string(header.trials) + " trials");
      }
      log->resumed_[record.index] = record;
    }
  }

  if (valid_end < existing.size()) {
    // Rewrite only the valid prefix: appending after the torn bytes
    // would glue the next record onto the fragment and corrupt the line
    // for every later resume.
    log->file_ = std::fopen(path.c_str(), "wb");
    if (log->file_ == nullptr) return fail("cannot open for writing");
    std::fwrite(existing.data(), 1, valid_end, log->file_);
    std::fflush(log->file_);
    return log;
  }

  // Reopen for appending; write the header when starting fresh.
  log->file_ = std::fopen(path.c_str(), existing.empty() ? "wb" : "ab");
  if (log->file_ == nullptr) return fail("cannot open for writing");
  if (existing.empty()) {
    const std::string head = header.to_json() + "\n";
    std::fwrite(head.data(), 1, head.size(), log->file_);
    std::fflush(log->file_);
  }
  return log;
}

CheckpointLog::~CheckpointLog() {
  if (file_ != nullptr) std::fclose(file_);
}

void CheckpointLog::append(const TrialRecord& record) {
  const std::string line = format_record(record);
  std::lock_guard lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
}

}  // namespace trident::obs
