#include "obs/interrupt.h"

#include <csignal>
#include <cstdlib>

namespace trident::obs {

namespace {

// sig_atomic_t, not std::atomic: the only writer that matters is the
// async signal handler, and sig_atomic_t is the type the standard
// guarantees is safe there. Readers poll, so torn reads are impossible
// (the value is 0 or 1) and ordering is irrelevant.
volatile std::sig_atomic_t g_interrupted = 0;

extern "C" void on_signal(int sig) {
  if (g_interrupted) {
    // Second signal: the cooperative path is stuck or too slow — die
    // now with the conventional 128+SIGINT status. _Exit is
    // async-signal-safe; nothing here may allocate or lock.
    std::_Exit(130);
  }
  g_interrupted = 1;
  (void)sig;
}

}  // namespace

void install_interrupt_handlers() {
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
}

bool interrupt_requested() { return g_interrupted != 0; }

void request_interrupt() { g_interrupted = 1; }

void clear_interrupt() { g_interrupted = 0; }

}  // namespace trident::obs
