// obs: run observability. Lightweight counters/gauges registered under
// stable dotted names, a scoped phase timer, a rate-limited progress
// line for interactive runs, and JSON emission of the whole registry as
// a run manifest (schema "trident-run-metrics/1").
//
// Every long-running stage (FI campaigns, model sweeps, benches) reports
// through a Registry so the trident CLI (--metrics-out) and the bench
// harness (TRIDENT_METRICS_OUT) can persist one manifest per run; later
// scaling work (sharded campaigns, multi-process fan-out) aggregates
// these manifests instead of scraping stdout.
//
// Manifest metric families: fi.* (campaign tallies, snapshot engine),
// engine.* (execution backend: engine.threaded, engine.lowered_functions,
// engine.lowered_insts, engine.superinstructions), interp.memcache.*
// (memory-cache hit rates), fm./fs./fc./trident.* (model solvers and
// memos), analysis.* (static lint), eval.* (cell accounting), phase.*
// (wall-time gauges), pool.* (thread-pool instrumentation).
// tools/check_manifest.py validates these families in CI.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace trident::obs {

/// Thread-safe name -> value store. Counters are monotone uint64 tallies
/// ("fi.outcome.sdc"); gauges are doubles for rates and durations
/// ("fi.trials_per_sec", "phase.campaign.seconds"). Ordered maps keep
/// the JSON key order stable across runs.
class Registry {
 public:
  void add(const std::string& name, uint64_t delta = 1);
  /// Idempotent counter write (for end-of-run snapshots of atomics).
  void set_counter(const std::string& name, uint64_t value);
  void set(const std::string& name, double value);

  uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  bool has_counter(const std::string& name) const;
  bool has_gauge(const std::string& name) const;

  std::vector<std::pair<std::string, uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;

  /// {"counters": {...}, "gauges": {...}} with sorted, quoted keys.
  std::string to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
};

/// Full run manifest: registry contents plus string metadata (command,
/// target, ...) under the versioned schema tag.
std::string manifest_json(
    const Registry& registry,
    const std::vector<std::pair<std::string, std::string>>& info);

/// Accumulates wall-clock seconds into gauge `name` on destruction, so
/// repeated phases (per-workload campaigns) sum into one figure.
class ScopedTimer {
 public:
  ScopedTimer(Registry& registry, std::string name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Registry& registry_;
  std::string name_;
  double start_;
};

/// Monotonic seconds since an arbitrary epoch (steady clock).
double now_seconds();

/// Whether stderr is an interactive terminal (progress lines default on
/// only there, so piped/CI logs stay clean).
bool stderr_is_tty();

/// One carriage-return progress line on stderr:
///   [label] 1234/3000 trials (41.1%) 356.2 trials/s
/// update() is thread-safe and rate-limited to ~10 redraws/sec; finish()
/// draws the final state and moves to a fresh line. Disabled instances
/// are free no-ops.
class ProgressLine {
 public:
  ProgressLine(bool enabled, std::string label);
  void update(uint64_t done, uint64_t total);
  void finish(uint64_t done, uint64_t total);

 private:
  void draw(uint64_t done, uint64_t total, bool last);

  bool enabled_;
  std::string label_;
  std::mutex mutex_;
  double started_;
  double last_draw_ = 0;
};

}  // namespace trident::obs
