#include "stats/ttest.h"

#include <cassert>
#include <cmath>
#include <vector>

#include "stats/stats.h"

namespace trident::stats {

namespace {

// Continued-fraction kernel for the incomplete beta (Numerical Recipes
// betacf, modified Lentz).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 200;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  assert(a > 0 && b > 0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  // Use the symmetry relation to keep the continued fraction convergent.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

double t_two_tailed_p(double t, double df) {
  assert(df > 0);
  const double x = df / (df + t * t);
  return incomplete_beta(df / 2.0, 0.5, x);
}

PairedTTest paired_ttest(std::span<const double> a,
                         std::span<const double> b) {
  assert(a.size() == b.size() && !a.empty());
  std::vector<double> diff(a.size());
  for (size_t i = 0; i < a.size(); ++i) diff[i] = a[i] - b[i];

  PairedTTest result;
  result.df = static_cast<double>(a.size() - 1);
  result.mean_diff = mean(diff);
  const double sd = stddev(diff);
  if (sd == 0.0) {
    // All differences identical. If they are all zero the series agree
    // perfectly (p = 1); otherwise the test is ill-posed but the shift is
    // systematic, so report p = 0 unless the shift itself is zero.
    result.degenerate = true;
    result.p = result.mean_diff == 0.0 ? 1.0 : 0.0;
    result.t = result.mean_diff == 0.0 ? 0.0 : INFINITY;
    return result;
  }
  result.t =
      result.mean_diff / (sd / std::sqrt(static_cast<double>(a.size())));
  if (result.df < 1) {
    result.p = 1.0;
    return result;
  }
  result.p = t_two_tailed_p(result.t, result.df);
  return result;
}

}  // namespace trident::stats
