#include "stats/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace trident::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (const auto x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0;
  for (const auto x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double mean_absolute_error(std::span<const double> a,
                           std::span<const double> b) {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0;
  double s = 0;
  for (size_t i = 0; i < a.size(); ++i) s += std::abs(a[i] - b[i]);
  return s / static_cast<double>(a.size());
}

namespace {

// Average (fractional) ranks, 1-based: tied values all receive the mean
// of the rank positions they span.
std::vector<double> average_ranks(std::span<const double> xs) {
  const size_t n = xs.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Positions i..j (0-based) share the average 1-based rank.
    const double rank = (static_cast<double>(i) + static_cast<double>(j)) / 2 + 1;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double spearman_rank_corr(std::span<const double> a,
                          std::span<const double> b) {
  assert(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  const auto ra = average_ranks(a);
  const auto rb = average_ranks(b);
  const double ma = mean(ra), mb = mean(rb);
  double saa = 0, sbb = 0, sab = 0;
  for (size_t i = 0; i < ra.size(); ++i) {
    const double da = ra[i] - ma, db = rb[i] - mb;
    saa += da * da;
    sbb += db * db;
    sab += da * db;
  }
  if (saa == 0 || sbb == 0) return 0.0;  // constant series: undefined
  return sab / std::sqrt(saa * sbb);
}

Interval proportion_wilson_ci95(double p, uint64_t n) {
  if (n == 0) return {0.0, 1.0};  // no data: the vacuous interval
  constexpr double z = 1.96;
  constexpr double z2 = z * z;
  p = std::min(1.0, std::max(0.0, p));
  const double nd = static_cast<double>(n);
  const double denom = 1.0 + z2 / nd;
  const double center = (p + z2 / (2.0 * nd)) / denom;
  const double hw =
      (z / denom) * std::sqrt(p * (1.0 - p) / nd + z2 / (4.0 * nd * nd));
  return {std::max(0.0, center - hw), std::min(1.0, center + hw)};
}

double proportion_ci95(double p, uint64_t n) {
  if (n == 0) return 0.0;
  return proportion_wilson_ci95(p, n).half_width();
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  LinearFit fit;
  const auto n = static_cast<double>(x.size());
  if (x.size() < 2) return fit;
  const double mx = mean(x), my = mean(y);
  double sxx = 0, sxy = 0, syy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  (void)n;
  if (sxx == 0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy == 0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace trident::stats
