// Descriptive statistics used across the evaluation harnesses.
#pragma once

#include <cstdint>
#include <span>

namespace trident::stats {

double mean(std::span<const double> xs);
/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double stddev(std::span<const double> xs);

/// Mean absolute error between paired series (asserts equal size).
double mean_absolute_error(std::span<const double> a,
                           std::span<const double> b);

/// Half-width of the 95% normal-approximation CI for a proportion p
/// estimated from n Bernoulli trials.
double proportion_ci95(double p, uint64_t n);

/// Ordinary least squares fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0;
  double intercept = 0;
  double r2 = 0;
};
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

}  // namespace trident::stats
