// Descriptive statistics used across the evaluation harnesses.
#pragma once

#include <cstdint>
#include <span>

namespace trident::stats {

double mean(std::span<const double> xs);
/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double stddev(std::span<const double> xs);

/// Mean absolute error between paired series (asserts equal size).
double mean_absolute_error(std::span<const double> a,
                           std::span<const double> b);

/// Spearman rank correlation between paired series (asserts equal
/// size): the Pearson correlation of average (fractional) ranks, which
/// handles ties exactly — the per-instruction accuracy report hits
/// ties constantly (many instructions share an SDC probability of 0 or
/// 1). Returns 0 for the undefined cases: fewer than 2 pairs, or
/// either series constant (zero rank variance).
double spearman_rank_corr(std::span<const double> a,
                          std::span<const double> b);

/// A two-sided confidence interval on a proportion.
struct Interval {
  double lo = 0;
  double hi = 0;
  double half_width() const { return (hi - lo) / 2; }
};

/// 95% Wilson score interval for a proportion p estimated from n
/// Bernoulli trials. Unlike the normal approximation, the interval stays
/// inside [0,1] and has nonzero width at p=0 and p=1 — the common case
/// for per-instruction campaigns that observe zero SDCs, where the
/// normal CI wrongly reports certainty.
Interval proportion_wilson_ci95(double p, uint64_t n);

/// Half-width of the 95% Wilson score interval (see above). Previously
/// the normal approximation, whose zero width at p=0/p=1 overstated
/// confidence exactly where sampling error dominates.
double proportion_ci95(double p, uint64_t n);

/// Ordinary least squares fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0;
  double intercept = 0;
  double r2 = 0;
};
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

}  // namespace trident::stats
