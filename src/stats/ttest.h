// Paired Student t-test, as used in the paper's accuracy evaluation
// (§V-B): the null hypothesis is that FI-measured and model-predicted SDC
// probabilities do not differ. p > 0.05 means the model is statistically
// indistinguishable from FI.
#pragma once

#include <span>

namespace trident::stats {

/// Regularized incomplete beta function I_x(a, b) via the Lentz continued
/// fraction (a, b > 0; x in [0,1]). Exposed for tests.
double incomplete_beta(double a, double b, double x);

/// Two-tailed p-value of a t statistic with `df` degrees of freedom.
double t_two_tailed_p(double t, double df);

struct PairedTTest {
  double t = 0;
  double df = 0;
  double p = 1.0;       // two-tailed
  double mean_diff = 0;
  /// True when every pair is identical (t undefined; reported as p = 1).
  bool degenerate = false;
};

/// Paired t-test of a vs b (asserts equal, nonzero sizes; df = n-1).
PairedTTest paired_ttest(std::span<const double> a, std::span<const double> b);

}  // namespace trident::stats
