#include "interp/threaded.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "ir/eval.h"
#include "support/bits.h"
#include "support/str.h"

// Computed-goto dispatch needs the GNU labels-as-values extension; the
// switch fallback below is semantically identical, just one indirect
// jump slower per instruction.
#if defined(__GNUC__) || defined(__clang__)
#define TRIDENT_COMPUTED_GOTO 1
#else
#define TRIDENT_COMPUTED_GOTO 0
#endif

namespace trident::interp {

using support::bits_to_f32;
using support::bits_to_f64;
using support::f32_to_bits;
using support::f64_to_bits;
using support::sign_extend;

namespace {

// Same values as support::low_mask for bits in [1,64], but inlinable in
// the dispatch loop (callers guard bits != 0 themselves).
inline uint64_t lmask(unsigned bits) {
  return bits >= 64 ? ~0ull : ((1ull << bits) - 1);
}

uint32_t encode_operand(const ir::Value& v, uint32_t zero_const) {
  using K = ir::Value::Kind;
  switch (v.kind) {
    case K::Inst:
      return (kTagReg << kOperandTagShift) | v.index;
    case K::Arg:
      return (kTagArg << kOperandTagShift) | v.index;
    case K::Const:
      return (kTagConst << kOperandTagShift) | v.index;
    case K::Global:
      return (kTagGlobal << kOperandTagShift) | v.index;
    case K::None:
      break;
  }
  // None evaluates to 0 in the interpreter; point it at the pool's
  // trailing zero so the fast path needs no extra tag.
  return (kTagConst << kOperandTagShift) | zero_const;
}

LIns lower_inst(const ir::Function& func, uint32_t inst_id,
                uint32_t zero_const, LoweredFunction& lf) {
  const auto& inst = func.insts[inst_id];
  LIns L;
  L.inst = inst_id;
  L.width = static_cast<uint8_t>(inst.type.width());
  const uint64_t mask = inst.type.width() ? lmask(inst.type.width()) : 0;
  const auto enc = [&](size_t i) {
    return encode_operand(inst.operands[i], zero_const);
  };
  const auto opw_of = [&](size_t i) {
    return static_cast<uint8_t>(func.value_type(inst.operands[i]).width());
  };

  switch (inst.op) {
    case ir::Opcode::Add: L.op = LOp::Add; break;
    case ir::Opcode::Sub: L.op = LOp::Sub; break;
    case ir::Opcode::Mul: L.op = LOp::Mul; break;
    case ir::Opcode::SDiv: L.op = LOp::SDiv; break;
    case ir::Opcode::SRem: L.op = LOp::SRem; break;
    case ir::Opcode::UDiv: L.op = LOp::UDiv; break;
    case ir::Opcode::URem: L.op = LOp::URem; break;
    case ir::Opcode::And: L.op = LOp::And; break;
    case ir::Opcode::Or: L.op = LOp::Or; break;
    case ir::Opcode::Xor: L.op = LOp::Xor; break;
    case ir::Opcode::Shl: L.op = LOp::Shl; break;
    case ir::Opcode::LShr: L.op = LOp::LShr; break;
    case ir::Opcode::AShr: L.op = LOp::AShr; break;
    case ir::Opcode::FAdd: L.op = LOp::FAdd; break;
    case ir::Opcode::FSub: L.op = LOp::FSub; break;
    case ir::Opcode::FMul: L.op = LOp::FMul; break;
    case ir::Opcode::FDiv: L.op = LOp::FDiv; break;
    case ir::Opcode::ICmp:
    case ir::Opcode::FCmp:
      L.op = LOp::Cmp;
      L.pred = inst.pred;
      L.opw = opw_of(0);
      L.c = inst.op == ir::Opcode::FCmp ? 1 : 0;
      break;
    case ir::Opcode::Trunc:
    case ir::Opcode::ZExt:
    case ir::Opcode::Bitcast:
      L.op = LOp::MaskCast;
      L.imm = mask;
      break;
    case ir::Opcode::SExt:
      L.op = LOp::SExt;
      L.opw = opw_of(0);
      L.imm = mask;
      break;
    case ir::Opcode::FPTrunc: L.op = LOp::FPTrunc; break;
    case ir::Opcode::FPExt: L.op = LOp::FPExt; break;
    case ir::Opcode::FPToSI:
      L.op = LOp::FPToSI;
      L.opw = opw_of(0);
      L.imm = mask;
      break;
    case ir::Opcode::SIToFP:
      L.op = LOp::SIToFP;
      L.opw = opw_of(0);
      break;
    case ir::Opcode::Alloca:
      L.op = LOp::Alloca;
      L.imm = inst.imm;
      break;
    case ir::Opcode::Load:
      L.op = LOp::Load;
      L.opw = static_cast<uint8_t>(inst.type.store_size());
      L.imm = mask;
      break;
    case ir::Opcode::Store:
      L.op = LOp::Store;
      L.opw = static_cast<uint8_t>(
          func.value_type(inst.operands[0]).store_size());
      break;
    case ir::Opcode::Gep:
      L.op = LOp::Gep;
      L.opw = opw_of(1);
      L.imm = inst.imm;
      break;
    case ir::Opcode::Memcpy:
      L.op = LOp::Memcpy;
      L.imm = inst.imm;
      break;
    case ir::Opcode::Br:
      L.op = LOp::Br;
      L.a = inst.succ[0];
      break;
    case ir::Opcode::CondBr:
      L.op = LOp::CondBr;
      L.a = inst.succ[0];
      L.b = inst.succ[1];
      L.c = enc(0);
      break;
    case ir::Opcode::Ret:
      L.op = LOp::Ret;
      L.b = inst.operands.empty() ? 0 : 1;
      L.a = inst.operands.empty() ? (kTagConst << kOperandTagShift) | zero_const
                                  : enc(0);
      break;
    case ir::Opcode::Call:
      L.op = LOp::Call;
      L.a = static_cast<uint32_t>(lf.extra.size());
      L.b = static_cast<uint32_t>(inst.operands.size());
      for (size_t i = 0; i < inst.operands.size(); ++i) {
        lf.extra.push_back(enc(i));
      }
      L.imm = inst.callee;
      break;
    case ir::Opcode::Phi:
      L.op = LOp::Phi;
      break;
    case ir::Opcode::Select: L.op = LOp::Select; break;
    case ir::Opcode::Print:
      L.op = LOp::Print;
      L.opw = opw_of(0);
      L.imm = inst.imm;
      break;
    case ir::Opcode::Detect: L.op = LOp::Detect; break;
  }

  // Default operand wiring for the uniform binary/unary/ternary shapes;
  // the control-flow and call cases above already claimed their fields.
  switch (inst.op) {
    case ir::Opcode::Add: case ir::Opcode::Sub: case ir::Opcode::Mul:
    case ir::Opcode::SDiv: case ir::Opcode::SRem:
    case ir::Opcode::UDiv: case ir::Opcode::URem:
    case ir::Opcode::Shl: case ir::Opcode::LShr: case ir::Opcode::AShr:
      L.a = enc(0);
      L.b = enc(1);
      L.imm = mask;
      break;
    case ir::Opcode::And: case ir::Opcode::Or: case ir::Opcode::Xor:
    case ir::Opcode::FAdd: case ir::Opcode::FSub:
    case ir::Opcode::FMul: case ir::Opcode::FDiv:
    case ir::Opcode::ICmp: case ir::Opcode::FCmp:
    case ir::Opcode::Store: case ir::Opcode::Memcpy:
    case ir::Opcode::Gep:
      L.a = enc(0);
      L.b = inst.operands.size() > 1 ? enc(1) : 0;
      break;
    case ir::Opcode::Select:
      L.a = enc(0);
      L.b = enc(1);
      L.c = enc(2);
      break;
    case ir::Opcode::Trunc: case ir::Opcode::ZExt: case ir::Opcode::SExt:
    case ir::Opcode::Bitcast: case ir::Opcode::FPTrunc:
    case ir::Opcode::FPExt: case ir::Opcode::FPToSI:
    case ir::Opcode::SIToFP: case ir::Opcode::Load:
    case ir::Opcode::Print: case ir::Opcode::Detect:
      L.a = enc(0);
      break;
    default:
      break;
  }
  return L;
}

bool fusable_cmp_br(const ir::Function& func, uint32_t first,
                    uint32_t second) {
  const auto& a = func.insts[first];
  const auto& b = func.insts[second];
  return a.is_cmp() && b.op == ir::Opcode::CondBr &&
         b.operands[0].kind == ir::Value::Kind::Inst &&
         b.operands[0].index == first;
}

bool fusable_load_cast(const ir::Function& func, uint32_t first,
                       uint32_t second) {
  const auto& a = func.insts[first];
  const auto& b = func.insts[second];
  const bool int_cast =
      b.op == ir::Opcode::Trunc || b.op == ir::Opcode::ZExt ||
      b.op == ir::Opcode::SExt || b.op == ir::Opcode::Bitcast;
  return a.op == ir::Opcode::Load && int_cast &&
         b.operands[0].kind == ir::Value::Kind::Inst &&
         b.operands[0].index == first;
}

LoweredFunction lower_function(const ir::Function& func,
                               uint64_t* superinstructions) {
  LoweredFunction lf;
  lf.num_insts = static_cast<uint32_t>(func.insts.size());
  lf.result_width.assign(func.insts.size(), -1);
  for (size_t i = 0; i < func.insts.size(); ++i) {
    if (func.insts[i].has_result()) {
      lf.result_width[i] = static_cast<int16_t>(func.insts[i].type.width());
    }
  }

  lf.consts.reserve(func.constants.size() + 1);
  for (const auto& c : func.constants) lf.consts.push_back(c.raw);
  const auto zero_const = static_cast<uint32_t>(lf.consts.size());
  lf.consts.push_back(0);

  // Slot assignment: blocks concatenated in order, one slot per
  // instruction, so stream offset == block start + cursor.
  lf.blocks.resize(func.blocks.size());
  uint32_t off = 0;
  for (size_t b = 0; b < func.blocks.size(); ++b) {
    lf.blocks[b].start = off;
    off += static_cast<uint32_t>(func.blocks[b].insts.size());
  }
  lf.code.reserve(off);
  for (const auto& bb : func.blocks) {
    for (const uint32_t inst_id : bb.insts) {
      lf.code.push_back(lower_inst(func, inst_id, zero_const, lf));
    }
  }

  // Phi bundles: the leading phis of each block, executed by the branch
  // handlers on block entry.
  for (size_t b = 0; b < func.blocks.size(); ++b) {
    const auto& insts = func.blocks[b].insts;
    LBlock& blk = lf.blocks[b];
    while (blk.n_phis < insts.size() &&
           func.insts[insts[blk.n_phis]].op == ir::Opcode::Phi) {
      const auto& phi = func.insts[insts[blk.n_phis]];
      LPhi lp;
      lp.inst = insts[blk.n_phis];
      lp.width = static_cast<uint8_t>(phi.type.width());
      lp.incoming.reserve(phi.incoming.size());
      for (size_t k = 0; k < phi.incoming.size(); ++k) {
        lp.incoming.emplace_back(phi.incoming[k],
                                 encode_operand(phi.operands[k], zero_const));
      }
      blk.phis.push_back(std::move(lp));
      ++blk.n_phis;
    }
    blk.entry_ip = blk.start + blk.n_phis;
  }

  // Superinstruction fusion over the copy. The pair head becomes the
  // fused op; the second slot keeps its standalone form so a snapshot
  // resume landing between the two executes it unfused.
  lf.fused = lf.code;
  for (size_t b = 0; b < func.blocks.size(); ++b) {
    const auto& insts = func.blocks[b].insts;
    if (insts.size() < 2) continue;
    for (uint32_t k = 0; k + 1 < insts.size(); ++k) {
      const uint32_t slot = lf.blocks[b].start + k;
      if (fusable_cmp_br(func, insts[k], insts[k + 1])) {
        lf.fused[slot].op = LOp::CmpBr;
      } else if (fusable_load_cast(func, insts[k], insts[k + 1])) {
        lf.fused[slot].op = LOp::LoadCast;
      } else {
        continue;
      }
      ++*superinstructions;
      ++k;  // the consumed slot cannot head another pair
    }
  }
  return lf;
}

}  // namespace

std::shared_ptr<const LoweredProgram> LoweredProgram::lower(
    const ir::Module& m) {
  auto p = std::make_shared<LoweredProgram>();
  p->funcs.reserve(m.functions.size());
  for (const auto& func : m.functions) {
    p->funcs.push_back(lower_function(func, &p->superinstructions));
    p->lowered_insts += p->funcs.back().code.size();
  }
  return p;
}

ThreadedEngine::ThreadedEngine(const ir::Module& module)
    : ThreadedEngine(module, LoweredProgram::lower(module)) {}

ThreadedEngine::ThreadedEngine(const ir::Module& module,
                               std::shared_ptr<const LoweredProgram> program)
    : module_(module), program_(std::move(program)) {
  assert(program_ != nullptr &&
         program_->funcs.size() == module_.functions.size());
  reset_globals();
}

void ThreadedEngine::reset_globals() {
  memory_.clear();
  global_bases_.clear();
  global_bases_.reserve(module_.globals.size());
  for (const auto& g : module_.globals) {
    const uint64_t base = memory_.allocate(g.size ? g.size : 1);
    for (size_t i = 0; i < g.init.size() && i < g.size; ++i) {
      memory_.store(base + i, 1, g.init[i]);
    }
    global_bases_.push_back(base);
  }
}

Frame ThreadedEngine::to_frame(const TFrame& fr) const {
  Frame out;
  out.func = fr.func;
  out.regs = fr.regs;
  out.args = fr.args;
  out.block = fr.block;
  out.prev_block = fr.prev_block;
  out.cursor = fr.ip - program_->funcs[fr.func].blocks[fr.block].start;
  out.allocas = fr.allocas;
  out.ret_to_inst = fr.ret_to_inst;
  return out;
}

ThreadedEngine::TFrame ThreadedEngine::from_frame(const Frame& fr) const {
  TFrame out;
  out.func = fr.func;
  out.regs = fr.regs;
  out.args = fr.args;
  out.block = fr.block;
  out.prev_block = fr.prev_block;
  out.ip = program_->funcs[fr.func].blocks[fr.block].start + fr.cursor;
  out.allocas = fr.allocas;
  out.ret_to_inst = fr.ret_to_inst;
  return out;
}

RunResult ThreadedEngine::run_main(const RunOptions& options) {
  const auto main_id = module_.find_function("main");
  assert(main_id && "module has no main function");
  return run(*main_id, {}, options);
}

Snapshot ThreadedEngine::snapshot() const {
  Snapshot s;
  if (live_result_ != nullptr) {
    s.dyn_insts = live_result_->dynamic_insts;
    s.dyn_results = live_result_->dynamic_results;
    s.output = live_result_->output;
    s.debug_output = live_result_->debug_output;
    s.stack.reserve(live_stack_->size());
    for (const auto& fr : *live_stack_) s.stack.push_back(to_frame(fr));
  }
  s.memory = memory_;
  s.global_bases = global_bases_;
  return s;
}

RunResult ThreadedEngine::run(uint32_t func_id, std::span<const uint64_t> args,
                              const RunOptions& options) {
  if (!pristine_) reset_globals();
  pristine_ = false;

  std::vector<TFrame> stack;
  TFrame fr;
  fr.func = func_id;
  fr.regs.assign(program_->funcs[func_id].num_insts, 0);
  fr.args.assign(args.begin(), args.end());
  fr.ip = program_->funcs[func_id].blocks[0].start;
  stack.push_back(std::move(fr));
  return run_loop(RunResult{}, std::move(stack), options);
}

RunResult ThreadedEngine::resume(const Snapshot& s, const RunOptions& options) {
  RunResult res;
  res.dynamic_insts = s.dyn_insts;
  res.dynamic_results = s.dyn_results;
  res.output = s.output;
  res.debug_output = s.debug_output;
  memory_ = s.memory;  // copy-assign keeps this object's cache stats
  global_bases_ = s.global_bases;
  pristine_ = false;
  std::vector<TFrame> stack;
  stack.reserve(s.stack.size());
  for (const auto& fr : s.stack) stack.push_back(from_frame(fr));
  return run_loop(std::move(res), std::move(stack), options);
}

RunResult ThreadedEngine::run_loop(RunResult res, std::vector<TFrame> stack,
                                   const RunOptions& options) {
  if (stack.empty()) return res;

  ExecHooks* const hooks = options.hooks;
  const uint32_t want = hooks != nullptr ? hooks->interest() : 0;
  const bool want_exec = (want & ExecHooks::kExec) != 0;
  const bool want_branch = (want & ExecHooks::kBranch) != 0;
  const bool want_load = (want & ExecHooks::kLoad) != 0;
  const bool want_store = (want & ExecHooks::kStore) != 0;
  const bool want_alloc = (want & ExecHooks::kAlloc) != 0;
  const bool want_memcpy = (want & ExecHooks::kMemcpy) != 0;

  live_result_ = &res;
  live_stack_ = &stack;
  struct LiveReset {
    ThreadedEngine* self;
    ~LiveReset() {
      self->live_result_ = nullptr;
      self->live_stack_ = nullptr;
    }
  } live_reset{this};

  // Snapshot-recording runs execute the unfused stream so capture
  // boundaries match the interpreter's one instruction at a time.
  const uint64_t snap_interval =
      options.snapshots != nullptr ? options.snapshot_interval : 0;
  uint64_t next_snapshot_at =
      snap_interval != 0
          ? (res.dynamic_results / snap_interval + 1) * snap_interval
          : 0;
  const bool recording = snap_interval != 0;

  TFrame* fr = nullptr;
  const LoweredFunction* lf = nullptr;
  const LIns* code = nullptr;
  const auto rebind = [&] {
    fr = &stack.back();
    lf = &program_->funcs[fr->func];
    code = (recording ? lf->code : lf->fused).data();
  };
  rebind();

  const auto value_of = [&](uint32_t e) -> uint64_t {
    const uint32_t i = e & kOperandIndexMask;
    switch (e >> kOperandTagShift) {
      case kTagReg: return fr->regs[i];
      case kTagArg: return fr->args[i];
      case kTagConst: return lf->consts[i];
      default: return global_bases_[i];
    }
  };

  const auto vm_crash = [&](std::string reason) {
    res.outcome = Outcome::Crash;
    res.crash_reason = std::move(reason);
  };

  // Identical to Interpreter's commit: on_result first (the FI point),
  // re-mask only when a hook object is installed, then count and write.
  const auto commit = [&](uint32_t inst_id, unsigned width, uint64_t bits) {
    if (hooks != nullptr) {
      hooks->on_result({fr->func, inst_id}, res.dynamic_results, bits);
      if (width != 0) bits &= lmask(width);
    }
    ++res.dynamic_results;
    fr->regs[inst_id] = bits;
  };

  // Block entry: parallel-assignment phi execution with the
  // interpreter's exact fuel/hook/commit behavior per phi. Returns
  // false on fuel exhaustion (the caller hangs).
  std::vector<uint64_t> phi_staged;
  const auto enter_block = [&](uint32_t dest) -> bool {
    const LBlock& blk = lf->blocks[dest];
    fr->prev_block = fr->block;
    fr->block = dest;
    fr->ip = blk.entry_ip;
    const uint32_t n = blk.n_phis;
    if (n == 0) return true;
    phi_staged.assign(n, 0);
    for (uint32_t i = 0; i < n; ++i) {
      for (const auto& [pred, enc] : blk.phis[i].incoming) {
        if (pred == fr->prev_block) {
          phi_staged[i] = value_of(enc);
          break;
        }
      }
    }
    for (uint32_t i = 0; i < n; ++i) {
      if (++res.dynamic_insts > options.fuel) return false;
      if (want_exec) {
        hooks->on_exec({fr->func, blk.phis[i].inst},
                       std::span<const uint64_t>(&phi_staged[i], 1));
      }
      commit(blk.phis[i].inst, blk.phis[i].width, phi_staged[i]);
    }
    return true;
  };

  const LIns* L = nullptr;
  uint64_t xb[3];  // scratch operand span for on_exec

#if TRIDENT_COMPUTED_GOTO
  static const void* const kDispatchTable[] = {
      &&vm_Add, &&vm_Sub, &&vm_Mul, &&vm_SDiv, &&vm_SRem, &&vm_UDiv,
      &&vm_URem, &&vm_And, &&vm_Or, &&vm_Xor, &&vm_Shl, &&vm_LShr,
      &&vm_AShr, &&vm_FAdd, &&vm_FSub, &&vm_FMul, &&vm_FDiv, &&vm_Cmp,
      &&vm_MaskCast, &&vm_SExt, &&vm_FPTrunc, &&vm_FPExt, &&vm_FPToSI,
      &&vm_SIToFP, &&vm_Alloca, &&vm_Load, &&vm_Store, &&vm_Gep,
      &&vm_Memcpy, &&vm_Br, &&vm_CondBr, &&vm_Ret, &&vm_Call, &&vm_Select,
      &&vm_Print, &&vm_Detect, &&vm_Phi, &&vm_CmpBr, &&vm_LoadCast,
  };
  static_assert(sizeof(kDispatchTable) / sizeof(kDispatchTable[0]) ==
                static_cast<size_t>(LOp::Count));
#define VM_CASE(name) vm_##name
#define VM_DISPATCH()                                                     \
  do {                                                                    \
    if (next_snapshot_at != 0 &&                                          \
        res.dynamic_results >= next_snapshot_at) {                        \
      options.snapshots->push_back(snapshot());                           \
      next_snapshot_at =                                                  \
          (res.dynamic_results / snap_interval + 1) * snap_interval;      \
    }                                                                     \
    L = &code[fr->ip];                                                    \
    if (++res.dynamic_insts > options.fuel) goto vm_hang;                 \
    goto* kDispatchTable[static_cast<size_t>(L->op)];                     \
  } while (0)
  VM_DISPATCH();
#else
#define VM_CASE(name) case LOp::name
#define VM_DISPATCH() continue
  for (;;) {
    if (next_snapshot_at != 0 && res.dynamic_results >= next_snapshot_at) {
      options.snapshots->push_back(snapshot());
      next_snapshot_at =
          (res.dynamic_results / snap_interval + 1) * snap_interval;
    }
    L = &code[fr->ip];
    if (++res.dynamic_insts > options.fuel) goto vm_hang;
    switch (L->op) {
#endif

  VM_CASE(Add) : {
    const uint64_t a = value_of(L->a), b = value_of(L->b);
    if (want_exec) {
      xb[0] = a, xb[1] = b;
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(xb, 2));
    }
    commit(L->inst, L->width, (a + b) & L->imm);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(Sub) : {
    const uint64_t a = value_of(L->a), b = value_of(L->b);
    if (want_exec) {
      xb[0] = a, xb[1] = b;
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(xb, 2));
    }
    commit(L->inst, L->width, (a - b) & L->imm);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(Mul) : {
    const uint64_t a = value_of(L->a), b = value_of(L->b);
    if (want_exec) {
      xb[0] = a, xb[1] = b;
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(xb, 2));
    }
    commit(L->inst, L->width, (a * b) & L->imm);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(SDiv) : {
    const uint64_t a0 = value_of(L->a), b0 = value_of(L->b);
    if (want_exec) {
      xb[0] = a0, xb[1] = b0;
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(xb, 2));
    }
    const int64_t a = sign_extend(a0, L->width);
    const int64_t b = sign_extend(b0, L->width);
    if (b == 0) {
      vm_crash("integer division by zero");
      return res;
    }
    if (a == std::numeric_limits<int64_t>::min() && b == -1) {
      vm_crash("signed division overflow");
      return res;
    }
    commit(L->inst, L->width, static_cast<uint64_t>(a / b) & L->imm);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(SRem) : {
    const uint64_t a0 = value_of(L->a), b0 = value_of(L->b);
    if (want_exec) {
      xb[0] = a0, xb[1] = b0;
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(xb, 2));
    }
    const int64_t a = sign_extend(a0, L->width);
    const int64_t b = sign_extend(b0, L->width);
    if (b == 0) {
      vm_crash("integer division by zero");
      return res;
    }
    if (a == std::numeric_limits<int64_t>::min() && b == -1) {
      vm_crash("signed division overflow");
      return res;
    }
    commit(L->inst, L->width, static_cast<uint64_t>(a % b) & L->imm);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(UDiv) : {
    const uint64_t a = value_of(L->a), b = value_of(L->b);
    if (want_exec) {
      xb[0] = a, xb[1] = b;
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(xb, 2));
    }
    if (b == 0) {
      vm_crash("integer division by zero");
      return res;
    }
    commit(L->inst, L->width, (a / b) & L->imm);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(URem) : {
    const uint64_t a = value_of(L->a), b = value_of(L->b);
    if (want_exec) {
      xb[0] = a, xb[1] = b;
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(xb, 2));
    }
    if (b == 0) {
      vm_crash("integer division by zero");
      return res;
    }
    commit(L->inst, L->width, (a % b) & L->imm);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(And) : {
    const uint64_t a = value_of(L->a), b = value_of(L->b);
    if (want_exec) {
      xb[0] = a, xb[1] = b;
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(xb, 2));
    }
    commit(L->inst, L->width, a & b);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(Or) : {
    const uint64_t a = value_of(L->a), b = value_of(L->b);
    if (want_exec) {
      xb[0] = a, xb[1] = b;
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(xb, 2));
    }
    commit(L->inst, L->width, a | b);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(Xor) : {
    const uint64_t a = value_of(L->a), b = value_of(L->b);
    if (want_exec) {
      xb[0] = a, xb[1] = b;
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(xb, 2));
    }
    commit(L->inst, L->width, a ^ b);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(Shl) : {
    const uint64_t a = value_of(L->a), b = value_of(L->b);
    if (want_exec) {
      xb[0] = a, xb[1] = b;
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(xb, 2));
    }
    commit(L->inst, L->width, (a << (b % L->width)) & L->imm);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(LShr) : {
    const uint64_t a = value_of(L->a), b = value_of(L->b);
    if (want_exec) {
      xb[0] = a, xb[1] = b;
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(xb, 2));
    }
    commit(L->inst, L->width, (a >> (b % L->width)) & L->imm);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(AShr) : {
    const uint64_t a = value_of(L->a), b = value_of(L->b);
    if (want_exec) {
      xb[0] = a, xb[1] = b;
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(xb, 2));
    }
    const int64_t sa = sign_extend(a, L->width);
    commit(L->inst, L->width,
           static_cast<uint64_t>(sa >> (b % L->width)) & L->imm);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(FAdd) : {
    const uint64_t a = value_of(L->a), b = value_of(L->b);
    if (want_exec) {
      xb[0] = a, xb[1] = b;
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(xb, 2));
    }
    const uint64_t bits =
        L->width == 32 ? f32_to_bits(bits_to_f32(a) + bits_to_f32(b))
                       : f64_to_bits(bits_to_f64(a) + bits_to_f64(b));
    commit(L->inst, L->width, bits);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(FSub) : {
    const uint64_t a = value_of(L->a), b = value_of(L->b);
    if (want_exec) {
      xb[0] = a, xb[1] = b;
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(xb, 2));
    }
    const uint64_t bits =
        L->width == 32 ? f32_to_bits(bits_to_f32(a) - bits_to_f32(b))
                       : f64_to_bits(bits_to_f64(a) - bits_to_f64(b));
    commit(L->inst, L->width, bits);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(FMul) : {
    const uint64_t a = value_of(L->a), b = value_of(L->b);
    if (want_exec) {
      xb[0] = a, xb[1] = b;
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(xb, 2));
    }
    const uint64_t bits =
        L->width == 32 ? f32_to_bits(bits_to_f32(a) * bits_to_f32(b))
                       : f64_to_bits(bits_to_f64(a) * bits_to_f64(b));
    commit(L->inst, L->width, bits);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(FDiv) : {
    const uint64_t a = value_of(L->a), b = value_of(L->b);
    if (want_exec) {
      xb[0] = a, xb[1] = b;
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(xb, 2));
    }
    const uint64_t bits =
        L->width == 32 ? f32_to_bits(bits_to_f32(a) / bits_to_f32(b))
                       : f64_to_bits(bits_to_f64(a) / bits_to_f64(b));
    commit(L->inst, L->width, bits);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(Cmp) : {
    const uint64_t a = value_of(L->a), b = value_of(L->b);
    if (want_exec) {
      xb[0] = a, xb[1] = b;
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(xb, 2));
    }
    const bool r = L->c != 0 ? ir::eval_fcmp(L->pred, L->opw, a, b)
                             : ir::eval_icmp(L->pred, L->opw, a, b);
    commit(L->inst, L->width, r ? 1 : 0);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(MaskCast) : {
    const uint64_t a = value_of(L->a);
    if (want_exec) {
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(&a, 1));
    }
    commit(L->inst, L->width, a & L->imm);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(SExt) : {
    const uint64_t a = value_of(L->a);
    if (want_exec) {
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(&a, 1));
    }
    commit(L->inst, L->width,
           static_cast<uint64_t>(sign_extend(a, L->opw)) & L->imm);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(FPTrunc) : {
    const uint64_t a = value_of(L->a);
    if (want_exec) {
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(&a, 1));
    }
    commit(L->inst, L->width,
           f32_to_bits(static_cast<float>(bits_to_f64(a))));
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(FPExt) : {
    const uint64_t a = value_of(L->a);
    if (want_exec) {
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(&a, 1));
    }
    commit(L->inst, L->width,
           f64_to_bits(static_cast<double>(bits_to_f32(a))));
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(FPToSI) : {
    const uint64_t a = value_of(L->a);
    if (want_exec) {
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(&a, 1));
    }
    const double v = L->opw == 32 ? bits_to_f32(a) : bits_to_f64(a);
    // NaN converts to 0 and out-of-range values saturate; a corrupted
    // float must not become host UB.
    int64_t r = 0;
    if (!std::isnan(v)) {
      const double lo = static_cast<double>(
          sign_extend(1ULL << (L->width - 1), L->width));
      const double hi =
          static_cast<double>(sign_extend(lmask(L->width) >> 1, L->width));
      r = v <= lo ? static_cast<int64_t>(lo)
          : v >= hi ? static_cast<int64_t>(hi)
                    : static_cast<int64_t>(v);
    }
    commit(L->inst, L->width, static_cast<uint64_t>(r) & L->imm);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(SIToFP) : {
    const uint64_t a = value_of(L->a);
    if (want_exec) {
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(&a, 1));
    }
    const auto v = static_cast<double>(sign_extend(a, L->opw));
    commit(L->inst, L->width,
           L->width == 32 ? f32_to_bits(static_cast<float>(v))
                          : f64_to_bits(v));
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(Alloca) : {
    if (want_exec) {
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>{});
    }
    const uint64_t base = memory_.allocate(L->imm);
    if (want_alloc) hooks->on_alloc(base, L->imm);
    fr->allocas.push_back(base);
    commit(L->inst, L->width, base);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(Load) : {
    const uint64_t addr = value_of(L->a);
    if (want_exec) {
      hooks->on_exec({fr->func, L->inst},
                     std::span<const uint64_t>(&addr, 1));
    }
    uint64_t v = 0;
    if (!memory_.load(addr, L->opw, v)) {
      vm_crash(support::format("out-of-bounds load at 0x%llx",
                               static_cast<unsigned long long>(addr)));
      return res;
    }
    if (want_load) hooks->on_load({fr->func, L->inst}, addr, L->opw);
    commit(L->inst, L->width, v & L->imm);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(Store) : {
    const uint64_t val = value_of(L->a);
    const uint64_t addr = value_of(L->b);
    if (want_exec) {
      xb[0] = val, xb[1] = addr;
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(xb, 2));
    }
    // The pre-store read only feeds on_store's `silent` flag; skip it
    // (and its memcache traffic) when the hook does not observe stores.
    uint64_t before = 0;
    const bool had_before =
        want_store && memory_.load(addr, L->opw, before);
    if (!memory_.store(addr, L->opw, val)) {
      vm_crash(support::format("out-of-bounds store at 0x%llx",
                               static_cast<unsigned long long>(addr)));
      return res;
    }
    if (want_store) {
      const uint64_t mask_bits = lmask(L->opw * 8u);
      hooks->on_store({fr->func, L->inst}, addr, L->opw,
                      had_before && (before & mask_bits) == (val & mask_bits));
    }
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(Gep) : {
    const uint64_t base = value_of(L->a), index = value_of(L->b);
    if (want_exec) {
      xb[0] = base, xb[1] = index;
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(xb, 2));
    }
    const int64_t idx = sign_extend(index, L->opw);
    commit(L->inst, L->width,
           base + static_cast<uint64_t>(idx) * L->imm);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(Memcpy) : {
    const uint64_t dst = value_of(L->a), src = value_of(L->b);
    if (want_exec) {
      xb[0] = dst, xb[1] = src;
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(xb, 2));
    }
    const uint64_t n = L->imm;
    const uint8_t* sp = nullptr;
    uint8_t* dp = nullptr;
    const uint64_t s_avail = memory_.span(src, &sp);
    const uint64_t d_avail = memory_.span(dst, &dp);
    const uint64_t ok = std::min({n, s_avail, d_avail});
    if (ok != 0) {
      const bool overlap = dst < src + ok && src < dst + ok;
      if (!overlap || dst <= src) {
        std::memmove(dp, sp, ok);
      } else {
        for (uint64_t i = 0; i < ok; ++i) dp[i] = sp[i];
      }
    }
    if (ok < n) {
      if (s_avail == ok) {
        vm_crash(support::format(
            "out-of-bounds memcpy read at 0x%llx",
            static_cast<unsigned long long>(src + ok)));
      } else {
        vm_crash(support::format(
            "out-of-bounds memcpy write at 0x%llx",
            static_cast<unsigned long long>(dst + ok)));
      }
      return res;
    }
    if (want_memcpy) hooks->on_memcpy({fr->func, L->inst}, dst, src, n);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(Br) : {
    if (want_exec) {
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>{});
    }
    if (!enter_block(L->a)) goto vm_hang;
    VM_DISPATCH();
  }
  VM_CASE(CondBr) : {
    const uint64_t cond = value_of(L->c);
    if (want_exec) {
      hooks->on_exec({fr->func, L->inst},
                     std::span<const uint64_t>(&cond, 1));
    }
    const bool taken = (cond & 1) != 0;
    if (want_branch) hooks->on_branch({fr->func, L->inst}, taken);
    if (!enter_block(taken ? L->a : L->b)) goto vm_hang;
    VM_DISPATCH();
  }
  VM_CASE(Ret) : {
    uint64_t rv = 0;
    if (L->b != 0) {
      rv = value_of(L->a);
      if (want_exec) {
        hooks->on_exec({fr->func, L->inst},
                       std::span<const uint64_t>(&rv, 1));
      }
    } else if (want_exec) {
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>{});
    }
    for (auto it = fr->allocas.rbegin(); it != fr->allocas.rend(); ++it) {
      memory_.free(*it);
    }
    const uint32_t ret_to = fr->ret_to_inst;
    stack.pop_back();
    if (stack.empty()) {
      res.ret_raw = rv;
      return res;
    }
    rebind();
    if (ret_to != ir::kNoBlock && lf->result_width[ret_to] >= 0) {
      commit(ret_to, static_cast<unsigned>(lf->result_width[ret_to]), rv);
    }
    VM_DISPATCH();
  }
  VM_CASE(Call) : {
    const uint32_t argc = L->b;
    std::vector<uint64_t> fargs;
    fargs.reserve(argc);
    for (uint32_t i = 0; i < argc; ++i) {
      fargs.push_back(value_of(lf->extra[L->a + i]));
    }
    if (want_exec) {
      hooks->on_exec({fr->func, L->inst},
                     std::span<const uint64_t>(fargs.data(), fargs.size()));
    }
    if (stack.size() >= options.max_call_depth) {
      vm_crash("call stack overflow");
      return res;
    }
    const auto callee = static_cast<uint32_t>(L->imm);
    const uint32_t call_inst = L->inst;
    ++fr->ip;  // resume after the call once the callee returns
    TFrame nf;
    nf.func = callee;
    nf.regs.assign(program_->funcs[callee].num_insts, 0);
    nf.args = std::move(fargs);
    nf.ret_to_inst = call_inst;
    stack.push_back(std::move(nf));
    rebind();
    if (!enter_block(0)) goto vm_hang;
    VM_DISPATCH();
  }
  VM_CASE(Select) : {
    const uint64_t cond = value_of(L->a);
    const uint64_t tv = value_of(L->b), fv = value_of(L->c);
    if (want_exec) {
      xb[0] = cond, xb[1] = tv, xb[2] = fv;
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(xb, 3));
    }
    commit(L->inst, L->width, (cond & 1) ? tv : fv);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(Print) : {
    const uint64_t v0 = value_of(L->a);
    if (want_exec) {
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(&v0, 1));
    }
    const auto spec = ir::PrintSpec::unpack(L->imm);
    std::string text;
    switch (spec.kind) {
      case ir::PrintSpec::Kind::Int:
        text = support::format(
            "%lld\n", static_cast<long long>(sign_extend(v0, L->opw)));
        break;
      case ir::PrintSpec::Kind::Uint:
        text = support::format("%llu\n",
                               static_cast<unsigned long long>(v0));
        break;
      case ir::PrintSpec::Kind::Char:
        text.push_back(static_cast<char>(v0 & 0xff));
        break;
      case ir::PrintSpec::Kind::Float: {
        const double v = L->opw == 32 ? bits_to_f32(v0) : bits_to_f64(v0);
        text = support::format("%.*g\n",
                               static_cast<int>(spec.precision), v);
        break;
      }
    }
    (spec.is_output ? res.output : res.debug_output) += text;
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(Detect) : {
    const uint64_t v0 = value_of(L->a);
    if (want_exec) {
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(&v0, 1));
    }
    if ((v0 & 1) != 0) {
      res.outcome = Outcome::Detected;
      return res;
    }
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(Phi) : {
    // Phis execute at block entry (enter_block); a dispatched phi slot
    // means the entry block starts with one, which the verifier rejects.
    commit(L->inst, L->width, 0);
    ++fr->ip;
    VM_DISPATCH();
  }
  VM_CASE(CmpBr) : {
    // Fused cmp+condbr. The cmp half commits through the hook exactly
    // like the standalone op, then the branch half re-reads the
    // committed register so a hook-injected fault steers the branch —
    // identical to the interpreter executing the two instructions.
    const uint64_t a = value_of(L->a), b = value_of(L->b);
    if (want_exec) {
      xb[0] = a, xb[1] = b;
      hooks->on_exec({fr->func, L->inst}, std::span<const uint64_t>(xb, 2));
    }
    const bool r = L->c != 0 ? ir::eval_fcmp(L->pred, L->opw, a, b)
                             : ir::eval_icmp(L->pred, L->opw, a, b);
    commit(L->inst, L->width, r ? 1 : 0);
    const LIns& B = code[fr->ip + 1];  // the standalone CondBr slot
    if (++res.dynamic_insts > options.fuel) goto vm_hang;
    const uint64_t cond = fr->regs[L->inst];
    if (want_exec) {
      hooks->on_exec({fr->func, B.inst},
                     std::span<const uint64_t>(&cond, 1));
    }
    const bool taken = (cond & 1) != 0;
    if (want_branch) hooks->on_branch({fr->func, B.inst}, taken);
    if (!enter_block(taken ? B.a : B.b)) goto vm_hang;
    VM_DISPATCH();
  }
  VM_CASE(LoadCast) : {
    // Fused load+cast; same re-read-after-commit discipline as CmpBr.
    const uint64_t addr = value_of(L->a);
    if (want_exec) {
      hooks->on_exec({fr->func, L->inst},
                     std::span<const uint64_t>(&addr, 1));
    }
    uint64_t v = 0;
    if (!memory_.load(addr, L->opw, v)) {
      vm_crash(support::format("out-of-bounds load at 0x%llx",
                               static_cast<unsigned long long>(addr)));
      return res;
    }
    if (want_load) hooks->on_load({fr->func, L->inst}, addr, L->opw);
    commit(L->inst, L->width, v & L->imm);
    const LIns& C = code[fr->ip + 1];  // the standalone cast slot
    if (++res.dynamic_insts > options.fuel) goto vm_hang;
    const uint64_t src = fr->regs[L->inst];
    if (want_exec) {
      hooks->on_exec({fr->func, C.inst},
                     std::span<const uint64_t>(&src, 1));
    }
    const uint64_t out =
        C.op == LOp::SExt
            ? static_cast<uint64_t>(sign_extend(src, C.opw)) & C.imm
            : src & C.imm;
    commit(C.inst, C.width, out);
    fr->ip += 2;
    VM_DISPATCH();
  }

#if !TRIDENT_COMPUTED_GOTO
      VM_CASE(Count) : {
        assert(false && "invalid lowered opcode");
        return res;
      }
    }
  }
#endif
#undef VM_CASE
#undef VM_DISPATCH

vm_hang:
  res.outcome = Outcome::Hang;
  return res;
}

}  // namespace trident::interp
