// Pre-lowered direct-threaded execution backend.
//
// The tree-walking Interpreter re-decodes every instruction on every
// dynamic execution: operand Values go through a kind switch, widths and
// masks are recomputed, block/cursor indirection fetches the next
// instruction. This backend lowers each ir::Function once into a flat
// dispatch stream of fixed-size LIns slots in which all of that is
// pre-resolved:
//
//   decode          operand Values become 2-bit-tagged u32 slots
//                   (register / argument / constant-pool / global-base)
//                   resolved with one shift and one indexed load;
//   slot assignment blocks are concatenated in program order, one slot
//                   per instruction, so a stream offset and a
//                   (block, cursor) position are interconvertible — the
//                   key to engine-agnostic Snapshots;
//   fusion          adjacent cmp+condbr and load+cast pairs are fused
//                   into superinstructions that skip one dispatch;
//   dispatch        computed-goto (labels-as-values) where the compiler
//                   supports it, a dense switch otherwise.
//
// The backend is bit-identical to the Interpreter — same RunResults,
// same ExecHooks call order and arguments, same fuel accounting, same
// crash messages, interchangeable Snapshots (docs/ENGINE.md spells out
// the contract; tests/engine_test.cpp enforces it). Two deliberate
// consequences of that contract:
//
//  * Snapshot-recording runs execute the *unfused* stream: the
//    interpreter may capture a snapshot between a cmp and its branch,
//    and a fused pair would skip that boundary. Trials (which never
//    record) run the fused stream; a resume that lands mid-pair simply
//    starts on the second slot, which always holds the standalone op.
//  * ExecHooks::interest() lets the engine skip materializing callback
//    arguments (operand spans, the pre-store read behind on_store's
//    `silent` flag) for hooks that do not observe them. fi::Injector is
//    kResult-only, which is where most of the trial-loop win comes from.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "interp/engine.h"
#include "interp/interpreter.h"
#include "ir/module.h"

namespace trident::interp {

/// Lowered opcodes. Mostly 1:1 with ir::Opcode; casts with identical
/// semantics collapse (Trunc/ZExt/Bitcast -> MaskCast), ICmp/FCmp share
/// one handler (float flag in `c`), and CmpBr/LoadCast are the fused
/// superinstructions (first slot of the pair in the fused stream; the
/// second slot always keeps its standalone form so a resume can land on
/// it).
enum class LOp : uint8_t {
  Add, Sub, Mul, SDiv, SRem, UDiv, URem,
  And, Or, Xor, Shl, LShr, AShr,
  FAdd, FSub, FMul, FDiv,
  Cmp, MaskCast, SExt, FPTrunc, FPExt, FPToSI, SIToFP,
  Alloca, Load, Store, Gep, Memcpy,
  Br, CondBr, Ret, Call,
  Select, Print, Detect,
  Phi,  // dead slot: phis execute at block entry, never via dispatch
  CmpBr, LoadCast,
  Count,
};

/// Operand encoding: 2-bit tag | 30-bit index. One shift + one indexed
/// load at runtime, no Value-kind switch.
inline constexpr uint32_t kOperandTagShift = 30;
inline constexpr uint32_t kOperandIndexMask = (1u << kOperandTagShift) - 1;
enum : uint32_t {
  kTagReg = 0,     // frame register (instruction result)
  kTagArg = 1,     // frame argument
  kTagConst = 2,   // function constant pool (LoweredFunction::consts)
  kTagGlobal = 3,  // global base address
};

/// One 32-byte dispatch-stream slot. Field meaning is per-op:
///   inst   original instruction id (register slot / ir::InstRef)
///   width  result width in bits (0 = void)
///   a,b,c  encoded operands, except: Br a=dest block; CondBr a/b=taken/
///          fallthrough blocks, c=cond; Ret b=has-operand flag; Call
///          a=offset into `extra`, b=arg count; Cmp/CmpBr c=is-float
///   opw    operand width (cmp/casts/gep index/print) or byte count
///          (load/store)
///   imm    result mask (arith/shifts/casts/load), alloca size, gep
///          element size, memcpy byte count, packed PrintSpec, or Call
///          callee id
struct LIns {
  LOp op = LOp::Ret;
  ir::CmpPred pred = ir::CmpPred::None;
  uint8_t width = 0;
  uint8_t opw = 0;
  uint32_t inst = 0;
  uint32_t a = 0;
  uint32_t b = 0;
  uint32_t c = 0;
  uint64_t imm = 0;
};

/// One lowered phi: executed at block entry with parallel-assignment
/// semantics by the branch handlers, exactly like the interpreter's
/// do_phis (same fuel, hook and commit behavior per phi).
struct LPhi {
  uint32_t inst = 0;
  uint8_t width = 0;
  /// (predecessor block, encoded operand), in ir order; first match
  /// against the edge's source block wins, default payload 0.
  std::vector<std::pair<uint32_t, uint32_t>> incoming;
};

struct LBlock {
  uint32_t start = 0;     // stream offset of the block's first slot
  uint32_t entry_ip = 0;  // start + n_phis: first slot after the phis
  uint32_t n_phis = 0;
  std::vector<LPhi> phis;
};

struct LoweredFunction {
  std::vector<LIns> code;   // unfused stream, one slot per instruction
  std::vector<LIns> fused;  // same slots with pair heads fused
  std::vector<LBlock> blocks;
  std::vector<uint64_t> consts;    // constant raws + trailing 0 for None
  std::vector<uint32_t> extra;     // call-argument operand encodings
  std::vector<int16_t> result_width;  // per inst: -1 = void, else width
  uint32_t num_insts = 0;
};

/// The whole module, lowered once. Immutable after lower(); a campaign
/// lowers one shared program and hands it to every worker's
/// ThreadedEngine so the work (and the engine.* metrics derived from
/// these counters) does not scale with the thread count.
struct LoweredProgram {
  std::vector<LoweredFunction> funcs;
  uint64_t lowered_insts = 0;      // total stream slots
  uint64_t superinstructions = 0;  // fused pair heads across all funcs

  static std::shared_ptr<const LoweredProgram> lower(const ir::Module& m);
};

class ThreadedEngine final : public ExecutionEngine {
 public:
  /// Lowers the module privately.
  explicit ThreadedEngine(const ir::Module& module);
  /// Shares a pre-lowered program (must be lowered from `module`).
  ThreadedEngine(const ir::Module& module,
                 std::shared_ptr<const LoweredProgram> program);

  RunResult run(uint32_t func_id, std::span<const uint64_t> args,
                const RunOptions& options) override;
  RunResult run_main(const RunOptions& options = {}) override;
  Snapshot snapshot() const override;
  RunResult resume(const Snapshot& s, const RunOptions& options) override;
  const Memory& memory() const override { return memory_; }
  EngineKind kind() const override { return EngineKind::Threaded; }

  const LoweredProgram& program() const { return *program_; }
  uint64_t global_base(uint32_t index) const { return global_bases_[index]; }

 private:
  /// Execution frame over the dispatch stream. `ip` is the stream offset
  /// of the next slot; `block` tracks the owning block so ip converts to
  /// the interpreter's (block, cursor) for Snapshot interchange.
  struct TFrame {
    uint32_t func = 0;
    std::vector<uint64_t> regs;
    std::vector<uint64_t> args;
    uint32_t block = 0;
    uint32_t prev_block = ir::kNoBlock;
    uint32_t ip = 0;
    std::vector<uint64_t> allocas;
    uint32_t ret_to_inst = ir::kNoBlock;
  };

  void reset_globals();
  RunResult run_loop(RunResult res, std::vector<TFrame> stack,
                     const RunOptions& options);
  Frame to_frame(const TFrame& fr) const;
  TFrame from_frame(const Frame& fr) const;

  const ir::Module& module_;
  std::shared_ptr<const LoweredProgram> program_;
  Memory memory_;
  std::vector<uint64_t> global_bases_;
  bool pristine_ = true;
  const RunResult* live_result_ = nullptr;
  const std::vector<TFrame>* live_stack_ = nullptr;
};

}  // namespace trident::interp
