#include "interp/engine.h"

#include <memory>

#include "interp/interpreter.h"
#include "interp/native.h"
#include "interp/threaded.h"

namespace trident::interp {

const char* engine_kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::Interp:
      return "interp";
    case EngineKind::Threaded:
      return "threaded";
    case EngineKind::Native:
      return "native";
  }
  return "?";
}

std::optional<EngineKind> engine_kind_from_name(std::string_view name) {
  if (name == "interp") return EngineKind::Interp;
  if (name == "threaded") return EngineKind::Threaded;
  if (name == "native") return EngineKind::Native;
  return std::nullopt;
}

std::span<const EngineKind> all_engine_kinds() {
  static constexpr EngineKind kKinds[] = {
      EngineKind::Interp, EngineKind::Threaded, EngineKind::Native};
  return kKinds;
}

std::string engine_kind_names() {
  std::string out;
  for (const EngineKind kind : all_engine_kinds()) {
    if (!out.empty()) out += ", ";
    out += engine_kind_name(kind);
  }
  return out;
}

std::unique_ptr<ExecutionEngine> make_engine(EngineKind kind,
                                             const ir::Module& module) {
  switch (kind) {
    case EngineKind::Threaded:
      return std::make_unique<ThreadedEngine>(module);
    case EngineKind::Native:
      return std::make_unique<NativeEngine>(module);
    case EngineKind::Interp:
      break;
  }
  return std::make_unique<Interpreter>(module);
}

}  // namespace trident::interp
