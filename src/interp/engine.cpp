#include "interp/engine.h"

#include <memory>

#include "interp/interpreter.h"
#include "interp/threaded.h"

namespace trident::interp {

const char* engine_kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::Interp:
      return "interp";
    case EngineKind::Threaded:
      return "threaded";
  }
  return "?";
}

std::optional<EngineKind> engine_kind_from_name(std::string_view name) {
  if (name == "interp") return EngineKind::Interp;
  if (name == "threaded") return EngineKind::Threaded;
  return std::nullopt;
}

std::string engine_kind_names() {
  std::string out;
  for (const EngineKind kind : {EngineKind::Interp, EngineKind::Threaded}) {
    if (!out.empty()) out += ", ";
    out += engine_kind_name(kind);
  }
  return out;
}

std::unique_ptr<ExecutionEngine> make_engine(EngineKind kind,
                                             const ir::Module& module) {
  switch (kind) {
    case EngineKind::Threaded:
      return std::make_unique<ThreadedEngine>(module);
    case EngineKind::Interp:
      break;
  }
  return std::make_unique<Interpreter>(module);
}

}  // namespace trident::interp
