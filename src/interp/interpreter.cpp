#include "interp/interpreter.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "ir/eval.h"
#include "support/bits.h"
#include "support/str.h"

namespace trident::interp {

using support::bits_to_f32;
using support::bits_to_f64;
using support::f32_to_bits;
using support::f64_to_bits;
using support::low_mask;
using support::sign_extend;

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::Ok: return "ok";
    case Outcome::Crash: return "crash";
    case Outcome::Hang: return "hang";
    case Outcome::Detected: return "detected";
  }
  return "?";
}

uint64_t Snapshot::bytes() const {
  uint64_t b = sizeof(Snapshot) + output.size() + debug_output.size() +
               global_bases.size() * sizeof(uint64_t);
  for (const auto& fr : stack) {
    b += sizeof(Frame) +
         (fr.regs.size() + fr.args.size() + fr.allocas.size()) *
             sizeof(uint64_t);
  }
  // Segment payloads plus a map-node estimate per segment.
  b += memory.bytes_live() + memory.segment_count() * 64;
  return b;
}

Interpreter::Interpreter(const ir::Module& module) : module_(module) {
  reset_globals();
}

void Interpreter::reset_globals() {
  memory_.clear();
  global_bases_.clear();
  global_bases_.reserve(module_.globals.size());
  for (const auto& g : module_.globals) {
    const uint64_t base = memory_.allocate(g.size ? g.size : 1);
    for (size_t i = 0; i < g.init.size() && i < g.size; ++i) {
      memory_.store(base + i, 1, g.init[i]);
    }
    global_bases_.push_back(base);
  }
}

uint64_t Interpreter::eval(const Frame& frame, const ir::Value& v) const {
  switch (v.kind) {
    case ir::Value::Kind::Inst:
      return frame.regs[v.index];
    case ir::Value::Kind::Arg:
      return frame.args[v.index];
    case ir::Value::Kind::Const:
      return module_.functions[frame.func].constants[v.index].raw;
    case ir::Value::Kind::Global:
      return global_bases_[v.index];
    case ir::Value::Kind::None:
      break;
  }
  return 0;
}

RunResult Interpreter::run_main(const RunOptions& options) {
  const auto main_id = module_.find_function("main");
  assert(main_id && "module has no main function");
  return run(*main_id, {}, options);
}

Snapshot Interpreter::snapshot() const {
  Snapshot s;
  if (live_result_ != nullptr) {
    s.dyn_insts = live_result_->dynamic_insts;
    s.dyn_results = live_result_->dynamic_results;
    s.output = live_result_->output;
    s.debug_output = live_result_->debug_output;
    s.stack = *live_stack_;
  }
  s.memory = memory_;
  s.global_bases = global_bases_;
  return s;
}

RunResult Interpreter::run(uint32_t func_id, std::span<const uint64_t> args,
                           const RunOptions& options) {
  // The constructor already materialized the globals; only a previous
  // run/resume makes the state dirty enough to need a rebuild.
  if (!pristine_) reset_globals();
  pristine_ = false;

  std::vector<Frame> stack;
  Frame fr;
  fr.func = func_id;
  fr.regs.assign(module_.functions[func_id].insts.size(), 0);
  fr.args.assign(args.begin(), args.end());
  stack.push_back(std::move(fr));
  return run_loop(RunResult{}, std::move(stack), options);
}

RunResult Interpreter::resume(const Snapshot& s, const RunOptions& options) {
  RunResult res;
  res.dynamic_insts = s.dyn_insts;
  res.dynamic_results = s.dyn_results;
  res.output = s.output;
  res.debug_output = s.debug_output;
  memory_ = s.memory;  // copy-assign keeps this object's cache stats
  global_bases_ = s.global_bases;
  pristine_ = false;
  return run_loop(std::move(res), s.stack, options);
}

RunResult Interpreter::run_loop(RunResult res, std::vector<Frame> stack,
                                const RunOptions& options) {
  auto* hooks = options.hooks;
  live_result_ = &res;
  live_stack_ = &stack;
  struct LiveReset {
    Interpreter* self;
    ~LiveReset() {
      self->live_result_ = nullptr;
      self->live_stack_ = nullptr;
    }
  } live_reset{this};

  const auto push_frame = [&](uint32_t f, std::vector<uint64_t> fargs,
                              uint32_t ret_to) {
    Frame fr;
    fr.func = f;
    fr.regs.assign(module_.functions[f].insts.size(), 0);
    fr.args = std::move(fargs);
    fr.ret_to_inst = ret_to;
    stack.push_back(std::move(fr));
  };

  const auto crash = [&](std::string reason) {
    res.outcome = Outcome::Crash;
    res.crash_reason = std::move(reason);
  };

  // Commits a computed result to the destination register, running the
  // on_result hook (the fault-injection point) first.
  const auto commit = [&](Frame& fr, uint32_t inst_id, uint64_t bits) {
    if (hooks != nullptr) {
      hooks->on_result({fr.func, inst_id}, res.dynamic_results, bits);
      const auto& t = module_.functions[fr.func].insts[inst_id].type;
      if (t.width() != 0) bits &= low_mask(t.width());
    }
    ++res.dynamic_results;
    fr.regs[inst_id] = bits;
  };

  // Executes the leading phi instructions of the current block with
  // parallel-assignment semantics. Returns false on fuel exhaustion.
  const auto do_phis = [&](Frame& fr) {
    const auto& func = module_.functions[fr.func];
    const auto& insts = func.blocks[fr.block].insts;
    uint32_t n_phis = 0;
    while (n_phis < insts.size() &&
           func.insts[insts[n_phis]].op == ir::Opcode::Phi) {
      ++n_phis;
    }
    if (n_phis == 0) return true;
    std::vector<uint64_t> staged(n_phis, 0);
    for (uint32_t i = 0; i < n_phis; ++i) {
      const auto& phi = func.insts[insts[i]];
      uint64_t v = 0;
      for (uint32_t k = 0; k < phi.incoming.size(); ++k) {
        if (phi.incoming[k] == fr.prev_block) {
          v = eval(fr, phi.operands[k]);
          break;
        }
      }
      staged[i] = v;
    }
    for (uint32_t i = 0; i < n_phis; ++i) {
      if (++res.dynamic_insts > options.fuel) return false;
      if (hooks != nullptr) {
        hooks->on_exec({fr.func, insts[i]},
                       std::span<const uint64_t>(&staged[i], 1));
      }
      commit(fr, insts[i], staged[i]);
    }
    fr.cursor = n_phis;
    return true;
  };

  const auto enter_block = [&](Frame& fr, uint32_t dest) {
    fr.prev_block = fr.block;
    fr.block = dest;
    fr.cursor = 0;
    return do_phis(fr);
  };

  // Snapshot schedule: capture at the first instruction boundary at or
  // after every multiple of the interval. Boundaries keep the captured
  // state trivially consistent (phis of the current block are done, the
  // cursor names the next instruction to execute).
  const uint64_t snap_interval =
      options.snapshots != nullptr ? options.snapshot_interval : 0;
  uint64_t next_snapshot_at =
      snap_interval != 0
          ? (res.dynamic_results / snap_interval + 1) * snap_interval
          : 0;

  std::vector<uint64_t> ops;
  while (!stack.empty()) {
    if (next_snapshot_at != 0 && res.dynamic_results >= next_snapshot_at) {
      options.snapshots->push_back(snapshot());
      next_snapshot_at =
          (res.dynamic_results / snap_interval + 1) * snap_interval;
    }

    Frame& fr = stack.back();
    const auto& func = module_.functions[fr.func];
    assert(fr.cursor < func.blocks[fr.block].insts.size());
    const uint32_t inst_id = func.blocks[fr.block].insts[fr.cursor];
    const auto& inst = func.insts[inst_id];
    const ir::InstRef ref{fr.func, inst_id};

    if (++res.dynamic_insts > options.fuel) {
      res.outcome = Outcome::Hang;
      return res;
    }

    ops.clear();
    for (const auto& v : inst.operands) ops.push_back(eval(fr, v));
    if (hooks != nullptr) hooks->on_exec(ref, ops);

    const unsigned w = inst.type.width();
    const uint64_t mask = w ? low_mask(w) : 0;
    bool advance = true;

    switch (inst.op) {
      case ir::Opcode::Add:
        commit(fr, inst_id, (ops[0] + ops[1]) & mask);
        break;
      case ir::Opcode::Sub:
        commit(fr, inst_id, (ops[0] - ops[1]) & mask);
        break;
      case ir::Opcode::Mul:
        commit(fr, inst_id, (ops[0] * ops[1]) & mask);
        break;
      case ir::Opcode::SDiv:
      case ir::Opcode::SRem: {
        const int64_t a = sign_extend(ops[0], w);
        const int64_t b = sign_extend(ops[1], w);
        if (b == 0) {
          crash("integer division by zero");
          return res;
        }
        if (a == std::numeric_limits<int64_t>::min() && b == -1) {
          crash("signed division overflow");
          return res;
        }
        const int64_t q = inst.op == ir::Opcode::SDiv ? a / b : a % b;
        commit(fr, inst_id, static_cast<uint64_t>(q) & mask);
        break;
      }
      case ir::Opcode::UDiv:
      case ir::Opcode::URem: {
        if (ops[1] == 0) {
          crash("integer division by zero");
          return res;
        }
        const uint64_t q =
            inst.op == ir::Opcode::UDiv ? ops[0] / ops[1] : ops[0] % ops[1];
        commit(fr, inst_id, q & mask);
        break;
      }
      case ir::Opcode::And:
        commit(fr, inst_id, ops[0] & ops[1]);
        break;
      case ir::Opcode::Or:
        commit(fr, inst_id, ops[0] | ops[1]);
        break;
      case ir::Opcode::Xor:
        commit(fr, inst_id, ops[0] ^ ops[1]);
        break;
      case ir::Opcode::Shl:
        commit(fr, inst_id, (ops[0] << (ops[1] % w)) & mask);
        break;
      case ir::Opcode::LShr:
        commit(fr, inst_id, (ops[0] >> (ops[1] % w)) & mask);
        break;
      case ir::Opcode::AShr: {
        const int64_t a = sign_extend(ops[0], w);
        commit(fr, inst_id,
               static_cast<uint64_t>(a >> (ops[1] % w)) & mask);
        break;
      }
      case ir::Opcode::FAdd:
      case ir::Opcode::FSub:
      case ir::Opcode::FMul:
      case ir::Opcode::FDiv: {
        uint64_t bits;
        if (w == 32) {
          const float a = bits_to_f32(ops[0]), b = bits_to_f32(ops[1]);
          float r = 0;
          switch (inst.op) {
            case ir::Opcode::FAdd: r = a + b; break;
            case ir::Opcode::FSub: r = a - b; break;
            case ir::Opcode::FMul: r = a * b; break;
            default: r = a / b; break;
          }
          bits = f32_to_bits(r);
        } else {
          const double a = bits_to_f64(ops[0]), b = bits_to_f64(ops[1]);
          double r = 0;
          switch (inst.op) {
            case ir::Opcode::FAdd: r = a + b; break;
            case ir::Opcode::FSub: r = a - b; break;
            case ir::Opcode::FMul: r = a * b; break;
            default: r = a / b; break;
          }
          bits = f64_to_bits(r);
        }
        commit(fr, inst_id, bits);
        break;
      }
      case ir::Opcode::ICmp: {
        const auto opw = func.value_type(inst.operands[0]).width();
        commit(fr, inst_id,
               ir::eval_icmp(inst.pred, opw, ops[0], ops[1]) ? 1 : 0);
        break;
      }
      case ir::Opcode::FCmp: {
        const auto opw = func.value_type(inst.operands[0]).width();
        commit(fr, inst_id,
               ir::eval_fcmp(inst.pred, opw, ops[0], ops[1]) ? 1 : 0);
        break;
      }
      case ir::Opcode::Trunc:
        commit(fr, inst_id, ops[0] & mask);
        break;
      case ir::Opcode::ZExt:
      case ir::Opcode::Bitcast:
        commit(fr, inst_id, ops[0] & mask);
        break;
      case ir::Opcode::SExt: {
        const auto opw = func.value_type(inst.operands[0]).width();
        commit(fr, inst_id,
               static_cast<uint64_t>(sign_extend(ops[0], opw)) & mask);
        break;
      }
      case ir::Opcode::FPTrunc:
        commit(fr, inst_id,
               f32_to_bits(static_cast<float>(bits_to_f64(ops[0]))));
        break;
      case ir::Opcode::FPExt:
        commit(fr, inst_id,
               f64_to_bits(static_cast<double>(bits_to_f32(ops[0]))));
        break;
      case ir::Opcode::FPToSI: {
        const auto opw = func.value_type(inst.operands[0]).width();
        const double v = opw == 32 ? bits_to_f32(ops[0]) : bits_to_f64(ops[0]);
        // NaN converts to 0 and out-of-range values saturate; a corrupted
        // float must not become host UB.
        int64_t r = 0;
        if (!std::isnan(v)) {
          const double lo =
              static_cast<double>(sign_extend(1ULL << (w - 1), w));
          const double hi = static_cast<double>(
              sign_extend(low_mask(w) >> 1, w));
          r = v <= lo ? static_cast<int64_t>(lo)
              : v >= hi ? static_cast<int64_t>(hi)
                        : static_cast<int64_t>(v);
        }
        commit(fr, inst_id, static_cast<uint64_t>(r) & mask);
        break;
      }
      case ir::Opcode::SIToFP: {
        const auto opw = func.value_type(inst.operands[0]).width();
        const auto v = static_cast<double>(sign_extend(ops[0], opw));
        commit(fr, inst_id,
               w == 32 ? f32_to_bits(static_cast<float>(v)) : f64_to_bits(v));
        break;
      }
      case ir::Opcode::Alloca: {
        const uint64_t base = memory_.allocate(inst.imm);
        if (hooks != nullptr) hooks->on_alloc(base, inst.imm);
        fr.allocas.push_back(base);
        commit(fr, inst_id, base);
        break;
      }
      case ir::Opcode::Load: {
        const unsigned bytes = inst.type.store_size();
        uint64_t v = 0;
        if (!memory_.load(ops[0], bytes, v)) {
          crash(support::format("out-of-bounds load at 0x%llx",
                                static_cast<unsigned long long>(ops[0])));
          return res;
        }
        if (hooks != nullptr) hooks->on_load(ref, ops[0], bytes);
        commit(fr, inst_id, v & mask);
        break;
      }
      case ir::Opcode::Store: {
        const unsigned bytes =
            func.value_type(inst.operands[0]).store_size();
        uint64_t before = 0;
        const bool had_before =
            hooks != nullptr && memory_.load(ops[1], bytes, before);
        if (!memory_.store(ops[1], bytes, ops[0])) {
          crash(support::format("out-of-bounds store at 0x%llx",
                                static_cast<unsigned long long>(ops[1])));
          return res;
        }
        if (hooks != nullptr) {
          const uint64_t mask_bits =
              support::low_mask(bytes * 8);
          hooks->on_store(ref, ops[1], bytes,
                          had_before &&
                              (before & mask_bits) == (ops[0] & mask_bits));
        }
        break;
      }
      case ir::Opcode::Memcpy: {
        // One range validation per side, then a bulk copy — the per-byte
        // semantics (each byte: read checked, then write checked; every
        // byte before the first invalid one is committed; forward copy
        // order, so an overlapping dst > src copy replicates the prefix)
        // are preserved exactly, including the crash reason and address
        // of the first out-of-bounds byte.
        const uint64_t dst = ops[0], src = ops[1];
        const uint64_t n = inst.imm;
        const uint8_t* sp = nullptr;
        uint8_t* dp = nullptr;
        const uint64_t s_avail = memory_.span(src, &sp);
        const uint64_t d_avail = memory_.span(dst, &dp);
        const uint64_t ok = std::min({n, s_avail, d_avail});
        if (ok != 0) {
          const bool overlap = dst < src + ok && src < dst + ok;
          if (!overlap || dst <= src) {
            std::memmove(dp, sp, ok);
          } else {
            for (uint64_t i = 0; i < ok; ++i) dp[i] = sp[i];
          }
        }
        if (ok < n) {
          if (s_avail == ok) {
            crash(support::format(
                "out-of-bounds memcpy read at 0x%llx",
                static_cast<unsigned long long>(src + ok)));
          } else {
            crash(support::format(
                "out-of-bounds memcpy write at 0x%llx",
                static_cast<unsigned long long>(dst + ok)));
          }
          return res;
        }
        if (hooks != nullptr) hooks->on_memcpy(ref, dst, src, n);
        break;
      }
      case ir::Opcode::Gep: {
        const auto idxw = func.value_type(inst.operands[1]).width();
        const int64_t idx = sign_extend(ops[1], idxw);
        commit(fr, inst_id,
               ops[0] + static_cast<uint64_t>(idx) * inst.imm);
        break;
      }
      case ir::Opcode::Br:
        if (!enter_block(fr, inst.succ[0])) {
          res.outcome = Outcome::Hang;
          return res;
        }
        advance = false;
        break;
      case ir::Opcode::CondBr: {
        const bool taken = (ops[0] & 1) != 0;
        if (hooks != nullptr) hooks->on_branch(ref, taken);
        if (!enter_block(fr, taken ? inst.succ[0] : inst.succ[1])) {
          res.outcome = Outcome::Hang;
          return res;
        }
        advance = false;
        break;
      }
      case ir::Opcode::Ret: {
        const uint64_t rv = inst.operands.empty() ? 0 : ops[0];
        for (auto it = fr.allocas.rbegin(); it != fr.allocas.rend(); ++it) {
          memory_.free(*it);
        }
        const uint32_t ret_to = fr.ret_to_inst;
        stack.pop_back();
        if (stack.empty()) {
          res.ret_raw = rv;
        } else if (ret_to != ir::kNoBlock) {
          Frame& caller = stack.back();
          const auto& cinst =
              module_.functions[caller.func].insts[ret_to];
          if (cinst.has_result()) {
            commit(caller, ret_to, rv);
          }
        }
        advance = false;
        break;
      }
      case ir::Opcode::Call: {
        if (stack.size() >= options.max_call_depth) {
          crash("call stack overflow");
          return res;
        }
        fr.cursor++;  // resume after the call once the callee returns
        push_frame(inst.callee, ops, inst_id);
        if (!enter_block(stack.back(), 0)) {
          res.outcome = Outcome::Hang;
          return res;
        }
        advance = false;
        break;
      }
      case ir::Opcode::Phi:
        // Handled at block entry (enter_block); reaching one here means
        // the entry block starts with a phi, which the verifier rejects.
        commit(fr, inst_id, 0);
        break;
      case ir::Opcode::Select:
        commit(fr, inst_id, (ops[0] & 1) ? ops[1] : ops[2]);
        break;
      case ir::Opcode::Print: {
        const auto spec = ir::PrintSpec::unpack(inst.imm);
        const auto t = func.value_type(inst.operands[0]);
        std::string text;
        switch (spec.kind) {
          case ir::PrintSpec::Kind::Int:
            text = support::format(
                "%lld\n", static_cast<long long>(
                              sign_extend(ops[0], t.width())));
            break;
          case ir::PrintSpec::Kind::Uint:
            text = support::format(
                "%llu\n", static_cast<unsigned long long>(ops[0]));
            break;
          case ir::PrintSpec::Kind::Char:
            text.push_back(static_cast<char>(ops[0] & 0xff));
            break;
          case ir::PrintSpec::Kind::Float: {
            const double v =
                t.width() == 32 ? bits_to_f32(ops[0]) : bits_to_f64(ops[0]);
            text = support::format("%.*g\n",
                                   static_cast<int>(spec.precision), v);
            break;
          }
        }
        (spec.is_output ? res.output : res.debug_output) += text;
        break;
      }
      case ir::Opcode::Detect:
        if ((ops[0] & 1) != 0) {
          res.outcome = Outcome::Detected;
          return res;
        }
        break;
    }

    if (advance) {
      Frame& cur = stack.back();
      ++cur.cursor;
    }
  }
  return res;
}

}  // namespace trident::interp
