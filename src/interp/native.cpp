#include "interp/native.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "ir/printer.h"
#include "support/bits.h"
#include "support/str.h"

// Runtime compilation needs POSIX process/dl facilities and a host whose
// byte order matches the interpreter's little-endian memory model (the
// generated code memcpys raw bytes where the interpreter assembles them).
#if (defined(__unix__) || defined(__APPLE__)) && defined(__BYTE_ORDER__) && \
    __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
#define TRIDENT_NATIVE_SUPPORTED 1
#include <dlfcn.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define TRIDENT_NATIVE_SUPPORTED 0
#endif

namespace trident::interp {

namespace {

using support::low_mask;
using support::sign_extend;

// Mirror of the `struct TnCtx` emitted at the top of every generated
// translation unit. Field order, types and padding must match the C
// definition in prelude() exactly — the generated code addresses this
// struct through the ABI, not through a shared header.
struct TnCtx {
  void* env = nullptr;
  uint64_t fuel = 0;
  uint64_t arm = 0;  // armed dyn_result_index (~0 = no hook installed)
  uint64_t di = 0;   // dynamic_insts (spilled at every exit/call)
  uint64_t dr = 0;   // dynamic_results
  uint64_t rv = 0;   // callee return payload
  uint64_t asp = 0;  // alloca-stack depth (shim-maintained)
  uint32_t depth = 0;
  uint32_t max_depth = 0;
  int32_t crash_code = 0;  // 1=div0 2=sdiv overflow 3=stack overflow
  uint32_t pad_ = 0;
  const uint64_t* gb = nullptr;  // global base addresses
  // One-segment memory window: [mb, mb+msz) maps to host bytes at mp.
  // Refreshed by the load/store shims, dropped whenever a segment dies.
  uint64_t mb = 0;
  uint64_t msz = 0;
  uint8_t* mp = nullptr;
  int (*mem_load)(void*, uint64_t, uint32_t, uint64_t*) = nullptr;
  int (*mem_store)(void*, uint64_t, uint32_t, uint64_t) = nullptr;
  int (*memcpy_fn)(void*, uint64_t, uint64_t, uint64_t) = nullptr;
  uint64_t (*alloca_fn)(void*, uint64_t) = nullptr;
  void (*ret_free)(void*, uint64_t) = nullptr;
  uint64_t (*hook_result)(void*, uint32_t, uint32_t, uint64_t,
                          uint64_t) = nullptr;
  void (*print_fn)(void*, uint32_t, uint32_t, uint64_t) = nullptr;
};

// Host-side state the shims operate on; TnCtx::env points here.
struct TnEnv {
  Memory& memory;
  std::vector<uint64_t>& allocas;
  std::string& pending_crash;
  const ir::Module& module;
  RunResult& res;
  const RunOptions& options;
  TnCtx* ctx = nullptr;
};

// Refreshes the generated code's inline memory window around `addr` so
// subsequent accesses to the same segment skip the shim entirely.
void refresh_window(TnEnv& e, uint64_t addr) {
  uint8_t* p = nullptr;
  const uint64_t avail = e.memory.span(addr, &p);
  e.ctx->mb = addr;
  e.ctx->msz = avail;
  e.ctx->mp = p;
}

int tn_mem_load(void* envp, uint64_t addr, uint32_t bytes, uint64_t* out) {
  auto& e = *static_cast<TnEnv*>(envp);
  uint64_t v = 0;
  if (!e.memory.load(addr, bytes, v)) {
    e.pending_crash = support::format(
        "out-of-bounds load at 0x%llx", static_cast<unsigned long long>(addr));
    return 0;
  }
  *out = v;
  refresh_window(e, addr);
  return 1;
}

int tn_mem_store(void* envp, uint64_t addr, uint32_t bytes, uint64_t value) {
  auto& e = *static_cast<TnEnv*>(envp);
  if (!e.memory.store(addr, bytes, value)) {
    e.pending_crash = support::format(
        "out-of-bounds store at 0x%llx", static_cast<unsigned long long>(addr));
    return 0;
  }
  refresh_window(e, addr);
  return 1;
}

// Bulk copy with the interpreter's exact per-byte semantics (see the
// Memcpy case in interpreter.cpp): every byte before the first invalid
// one commits, overlapping dst > src copies replicate the prefix, and
// the crash carries the reason and address of the first bad byte.
int tn_memcpy(void* envp, uint64_t dst, uint64_t src, uint64_t n) {
  auto& e = *static_cast<TnEnv*>(envp);
  const uint8_t* sp = nullptr;
  uint8_t* dp = nullptr;
  const uint64_t s_avail = e.memory.span(src, &sp);
  const uint64_t d_avail = e.memory.span(dst, &dp);
  const uint64_t ok = std::min({n, s_avail, d_avail});
  if (ok != 0) {
    const bool overlap = dst < src + ok && src < dst + ok;
    if (!overlap || dst <= src) {
      std::memmove(dp, sp, ok);
    } else {
      for (uint64_t i = 0; i < ok; ++i) dp[i] = sp[i];
    }
  }
  if (ok < n) {
    if (s_avail == ok) {
      e.pending_crash = support::format(
          "out-of-bounds memcpy read at 0x%llx",
          static_cast<unsigned long long>(src + ok));
    } else {
      e.pending_crash = support::format(
          "out-of-bounds memcpy write at 0x%llx",
          static_cast<unsigned long long>(dst + ok));
    }
    return 0;
  }
  return 1;
}

uint64_t tn_alloca(void* envp, uint64_t size) {
  auto& e = *static_cast<TnEnv*>(envp);
  const uint64_t base = e.memory.allocate(size);
  e.allocas.push_back(base);
  e.ctx->asp = e.allocas.size();
  // Memory::span pointers are documented as invalidated by allocate.
  e.ctx->mp = nullptr;
  return base;
}

void tn_ret_free(void* envp, uint64_t mark) {
  auto& e = *static_cast<TnEnv*>(envp);
  auto& al = e.allocas;
  if (al.size() > mark) {
    for (size_t i = al.size(); i-- > mark;) e.memory.free(al[i]);
    al.resize(mark);
    e.ctx->mp = nullptr;  // the window may cover a freed segment
  }
  e.ctx->asp = mark;
}

uint64_t tn_hook_result(void* envp, uint32_t func, uint32_t inst, uint64_t dr,
                        uint64_t bits) {
  auto& e = *static_cast<TnEnv*>(envp);
  e.options.hooks->on_result({func, inst}, dr, bits);
  return bits;  // the generated code re-masks to the result width
}

void tn_print(void* envp, uint32_t func, uint32_t inst_id, uint64_t v) {
  auto& e = *static_cast<TnEnv*>(envp);
  const auto& f = e.module.functions[func];
  const auto& inst = f.insts[inst_id];
  const auto spec = ir::PrintSpec::unpack(inst.imm);
  const auto t = f.value_type(inst.operands[0]);
  std::string text;
  switch (spec.kind) {
    case ir::PrintSpec::Kind::Int:
      text = support::format(
          "%lld\n", static_cast<long long>(sign_extend(v, t.width())));
      break;
    case ir::PrintSpec::Kind::Uint:
      text = support::format("%llu\n", static_cast<unsigned long long>(v));
      break;
    case ir::PrintSpec::Kind::Char:
      text.push_back(static_cast<char>(v & 0xff));
      break;
    case ir::PrintSpec::Kind::Float: {
      const double d =
          t.width() == 32 ? support::bits_to_f32(v) : support::bits_to_f64(v);
      text = support::format("%.*g\n", static_cast<int>(spec.precision), d);
      break;
    }
  }
  (spec.is_output ? e.res.output : e.res.debug_output) += text;
}

// ---------------------------------------------------------------------------
// C code generation
// ---------------------------------------------------------------------------

std::string hex64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llxULL",
                static_cast<unsigned long long>(v));
  return buf;
}

// `expr & low_mask(w)`, elided when the mask is a no-op.
std::string mask_expr(const std::string& e, unsigned w) {
  if (w == 0 || w >= 64) return e;
  return "(" + e + " & " + hex64(low_mask(w)) + ")";
}

// support::sign_extend(expr, w) as a C expression.
std::string sx_expr(const std::string& e, unsigned w) {
  if (w >= 64) return "(int64_t)(" + e + ")";
  const uint64_t m = 1ULL << (w - 1);
  return "((int64_t)((((" + e + ") & " + hex64(low_mask(w)) + ") ^ " +
         hex64(m) + ") - " + hex64(m) + "))";
}

std::string i64lit(int64_t v) {
  if (v == std::numeric_limits<int64_t>::min())
    return "(-9223372036854775807LL - 1)";
  return std::to_string(v) + "LL";
}

std::string operand_expr(const ir::Function& f, const ir::Value& v) {
  switch (v.kind) {
    case ir::Value::Kind::Inst:
      return "r" + std::to_string(v.index);
    case ir::Value::Kind::Arg:
      return "args[" + std::to_string(v.index) + "]";
    case ir::Value::Kind::Const:
      return hex64(f.constants[v.index].raw);
    case ir::Value::Kind::Global:
      return "g" + std::to_string(v.index);
    case ir::Value::Kind::None:
      break;
  }
  return "0ULL";
}

// Commit of a computed value: the single armed on_result check (the
// fault-injection point), the post-hook re-mask, the dynamic-result
// count and the register write, mirroring the interpreter's commit().
void emit_commit(std::string& o, uint32_t fidx, uint32_t inst_id, unsigned w,
                 const std::string& expr) {
  const uint64_t m = w == 0 || w >= 64 ? ~0ULL : low_mask(w);
  o += "    { uint64_t tv = " + expr + "; TN_COMMIT(" + std::to_string(fidx) +
       "u, " + std::to_string(inst_id) + "u, & " + hex64(m) + ", tv); r" +
       std::to_string(inst_id) + " = tv; }\n";
}

// CFG edge: stage the target block's phi inputs (parallel assignment,
// like the interpreter's do_phis), then burn fuel and commit each phi,
// then jump to the first non-phi slot.
void emit_edge(std::string& o, const ir::Function& f, uint32_t fidx,
               const LoweredFunction& lf, uint32_t from_block,
               uint32_t to_block) {
  const auto& tb = f.blocks[to_block];
  const uint32_t n_phis = lf.blocks[to_block].n_phis;
  if (n_phis != 0) {
    o += "    {\n";
    for (uint32_t i = 0; i < n_phis; ++i) {
      const auto& phi = f.insts[tb.insts[i]];
      std::string v = "0ULL";
      for (uint32_t k = 0; k < phi.incoming.size(); ++k) {
        if (phi.incoming[k] == from_block) {
          v = operand_expr(f, phi.operands[k]);
          break;
        }
      }
      o += "      uint64_t p" + std::to_string(i) + " = " + v + ";\n";
    }
    for (uint32_t i = 0; i < n_phis; ++i) {
      const uint32_t id = tb.insts[i];
      const unsigned w = f.insts[id].type.width();
      const uint64_t m = w == 0 || w >= 64 ? ~0ULL : low_mask(w);
      o += "      TN_FUEL; TN_COMMIT(" + std::to_string(fidx) + "u, " +
           std::to_string(id) + "u, & " + hex64(m) + ", p" +
           std::to_string(i) + "); r" + std::to_string(id) + " = p" +
           std::to_string(i) + ";\n";
    }
    o += "    }\n";
  }
  o += "    goto I" + std::to_string(lf.blocks[to_block].entry_ip) + ";\n";
}

// One instruction at its stream slot: label, fuel, exact interpreter
// semantics. `cur_block` is the owning block (edge stubs need the
// branch's source block for phi input selection).
void emit_inst(std::string& o, const ir::Function& f, uint32_t fidx,
               const LoweredFunction& lf, uint32_t inst_id,
               uint32_t cur_block) {
  const auto& inst = f.insts[inst_id];
  const unsigned w = inst.type.width();
  const auto op = [&](size_t i) { return operand_expr(f, inst.operands[i]); };
  const auto opw_of = [&](size_t i) {
    return f.value_type(inst.operands[i]).width();
  };
  const std::string F = std::to_string(fidx);
  const std::string I = std::to_string(inst_id);

  switch (inst.op) {
    case ir::Opcode::Add:
      emit_commit(o, fidx, inst_id, w, mask_expr("(" + op(0) + " + " + op(1) + ")", w));
      break;
    case ir::Opcode::Sub:
      emit_commit(o, fidx, inst_id, w, mask_expr("(" + op(0) + " - " + op(1) + ")", w));
      break;
    case ir::Opcode::Mul:
      emit_commit(o, fidx, inst_id, w, mask_expr("(" + op(0) + " * " + op(1) + ")", w));
      break;
    case ir::Opcode::SDiv:
    case ir::Opcode::SRem: {
      o += "    { int64_t a = " + sx_expr(op(0), w) + "; int64_t b = " +
           sx_expr(op(1), w) + ";\n";
      o += "      if (b == 0) TN_CRASH(1);\n";
      o += "      if (a == (-9223372036854775807LL - 1) && b == -1) "
           "TN_CRASH(2);\n";
      const char* d = inst.op == ir::Opcode::SDiv ? "/" : "%";
      emit_commit(o, fidx, inst_id, w,
                  mask_expr(std::string("(uint64_t)(a ") + d + " b)", w));
      o += "    }\n";
      break;
    }
    case ir::Opcode::UDiv:
    case ir::Opcode::URem: {
      o += "    if ((" + op(1) + ") == 0ULL) TN_CRASH(1);\n";
      const char* d = inst.op == ir::Opcode::UDiv ? "/" : "%";
      emit_commit(o, fidx, inst_id, w,
                  mask_expr("(" + op(0) + " " + d + " " + op(1) + ")", w));
      break;
    }
    case ir::Opcode::And:
      emit_commit(o, fidx, inst_id, w, "(" + op(0) + " & " + op(1) + ")");
      break;
    case ir::Opcode::Or:
      emit_commit(o, fidx, inst_id, w, "(" + op(0) + " | " + op(1) + ")");
      break;
    case ir::Opcode::Xor:
      emit_commit(o, fidx, inst_id, w, "(" + op(0) + " ^ " + op(1) + ")");
      break;
    case ir::Opcode::Shl:
      emit_commit(o, fidx, inst_id, w,
                  mask_expr("(" + op(0) + " << ((" + op(1) + ") % " +
                                std::to_string(w) + "ULL))",
                            w));
      break;
    case ir::Opcode::LShr:
      emit_commit(o, fidx, inst_id, w,
                  mask_expr("(" + op(0) + " >> ((" + op(1) + ") % " +
                                std::to_string(w) + "ULL))",
                            w));
      break;
    case ir::Opcode::AShr:
      emit_commit(o, fidx, inst_id, w,
                  mask_expr("((uint64_t)(" + sx_expr(op(0), w) + " >> ((" +
                                op(1) + ") % " + std::to_string(w) + "ULL)))",
                            w));
      break;
    case ir::Opcode::FAdd:
    case ir::Opcode::FSub:
    case ir::Opcode::FMul:
    case ir::Opcode::FDiv: {
      const char* d = inst.op == ir::Opcode::FAdd   ? "+"
                      : inst.op == ir::Opcode::FSub ? "-"
                      : inst.op == ir::Opcode::FMul ? "*"
                                                    : "/";
      if (w == 32) {
        emit_commit(o, fidx, inst_id, w,
                    std::string("tn_fb32(tn_bf32(") + op(0) + ") " + d +
                        " tn_bf32(" + op(1) + "))");
      } else {
        emit_commit(o, fidx, inst_id, w,
                    std::string("tn_fb64(tn_bf64(") + op(0) + ") " + d +
                        " tn_bf64(" + op(1) + "))");
      }
      break;
    }
    case ir::Opcode::ICmp: {
      const unsigned ow = opw_of(0);
      std::string cond;
      const std::string ma = mask_expr("(" + op(0) + ")", ow);
      const std::string mb = mask_expr("(" + op(1) + ")", ow);
      const std::string sa = sx_expr(op(0), ow);
      const std::string sb = sx_expr(op(1), ow);
      switch (inst.pred) {
        case ir::CmpPred::Eq:  cond = ma + " == " + mb; break;
        case ir::CmpPred::Ne:  cond = ma + " != " + mb; break;
        case ir::CmpPred::SLt: cond = sa + " < " + sb; break;
        case ir::CmpPred::SLe: cond = sa + " <= " + sb; break;
        case ir::CmpPred::SGt: cond = sa + " > " + sb; break;
        case ir::CmpPred::SGe: cond = sa + " >= " + sb; break;
        case ir::CmpPred::ULt: cond = ma + " < " + mb; break;
        case ir::CmpPred::ULe: cond = ma + " <= " + mb; break;
        case ir::CmpPred::UGt: cond = ma + " > " + mb; break;
        case ir::CmpPred::UGe: cond = ma + " >= " + mb; break;
        case ir::CmpPred::None: cond = "0"; break;
      }
      emit_commit(o, fidx, inst_id, w, "((" + cond + ") ? 1ULL : 0ULL)");
      break;
    }
    case ir::Opcode::FCmp: {
      const unsigned ow = opw_of(0);
      const std::string fa = ow == 32 ? "(double)tn_bf32(" + op(0) + ")"
                                      : "tn_bf64(" + op(0) + ")";
      const std::string fb = ow == 32 ? "(double)tn_bf32(" + op(1) + ")"
                                      : "tn_bf64(" + op(1) + ")";
      o += "    { double fa = " + fa + "; double fb = " + fb + ";\n";
      std::string cond;
      switch (inst.pred) {
        case ir::CmpPred::Eq:  cond = "fa == fb"; break;
        case ir::CmpPred::Ne:  cond = "fa < fb || fa > fb"; break;
        case ir::CmpPred::SLt: cond = "fa < fb"; break;
        case ir::CmpPred::SLe: cond = "fa <= fb"; break;
        case ir::CmpPred::SGt: cond = "fa > fb"; break;
        case ir::CmpPred::SGe: cond = "fa >= fb"; break;
        default: cond = "0"; break;  // unordered preds: always false
      }
      emit_commit(o, fidx, inst_id, w, "((" + cond + ") ? 1ULL : 0ULL)");
      o += "    }\n";
      break;
    }
    case ir::Opcode::Trunc:
    case ir::Opcode::ZExt:
    case ir::Opcode::Bitcast:
      emit_commit(o, fidx, inst_id, w, mask_expr("(" + op(0) + ")", w));
      break;
    case ir::Opcode::SExt:
      emit_commit(o, fidx, inst_id, w,
                  mask_expr("((uint64_t)" + sx_expr(op(0), opw_of(0)) + ")", w));
      break;
    case ir::Opcode::FPTrunc:
      emit_commit(o, fidx, inst_id, w, "tn_fb32((float)tn_bf64(" + op(0) + "))");
      break;
    case ir::Opcode::FPExt:
      emit_commit(o, fidx, inst_id, w, "tn_fb64((double)tn_bf32(" + op(0) + "))");
      break;
    case ir::Opcode::FPToSI: {
      const unsigned ow = opw_of(0);
      const int64_t lo64 = sign_extend(1ULL << (w - 1), w);
      const int64_t hi64 = sign_extend(low_mask(w) >> 1, w);
      o += "    { double v = " +
           (ow == 32 ? "(double)tn_bf32(" + op(0) + ")"
                     : "tn_bf64(" + op(0) + ")") +
           ";\n";
      o += "      int64_t q = 0;\n";
      // volatile blocks constant folding of the out-of-range boundary
      // casts so they convert at run time, exactly like the interpreter.
      o += "      if (!(v != v)) {\n";
      o += "        volatile double lo = (double)" + i64lit(lo64) + ";\n";
      o += "        volatile double hi = (double)" + i64lit(hi64) + ";\n";
      o += "        q = v <= lo ? (int64_t)lo : v >= hi ? (int64_t)hi : "
           "(int64_t)v;\n";
      o += "      }\n";
      emit_commit(o, fidx, inst_id, w, mask_expr("((uint64_t)q)", w));
      o += "    }\n";
      break;
    }
    case ir::Opcode::SIToFP: {
      const unsigned ow = opw_of(0);
      o += "    { double v = (double)" + sx_expr(op(0), ow) + ";\n";
      emit_commit(o, fidx, inst_id, w,
                  w == 32 ? "tn_fb32((float)v)" : "tn_fb64(v)");
      o += "    }\n";
      break;
    }
    case ir::Opcode::Alloca:
      emit_commit(o, fidx, inst_id, w,
                  "c->alloca_fn(c->env, " + hex64(inst.imm) + ")");
      break;
    case ir::Opcode::Load: {
      const unsigned bytes = inst.type.store_size();
      const std::string ub = "uint" + std::to_string(bytes * 8) + "_t";
      o += "    { uint64_t a = " + op(0) + "; uint64_t lv;\n";
      o += "      uint64_t off = a - c->mb;\n";
      o += "      if (c->mp && off < c->msz && " + std::to_string(bytes) +
           "ULL <= c->msz - off) {\n";
      o += "        " + ub + " t; memcpy(&t, c->mp + off, " +
           std::to_string(bytes) + "); lv = (uint64_t)t;\n";
      o += "      } else if (!c->mem_load(c->env, a, " +
           std::to_string(bytes) + "u, &lv)) { TN_SPILL; return 1; }\n";
      emit_commit(o, fidx, inst_id, w, mask_expr("lv", w));
      o += "    }\n";
      break;
    }
    case ir::Opcode::Store: {
      const unsigned bytes = f.value_type(inst.operands[0]).store_size();
      const std::string ub = "uint" + std::to_string(bytes * 8) + "_t";
      o += "    { uint64_t a = " + op(1) + "; uint64_t sv = " + op(0) + ";\n";
      o += "      uint64_t off = a - c->mb;\n";
      o += "      if (c->mp && off < c->msz && " + std::to_string(bytes) +
           "ULL <= c->msz - off) {\n";
      o += "        " + ub + " t = (" + ub + ")sv; memcpy(c->mp + off, &t, " +
           std::to_string(bytes) + ");\n";
      o += "      } else if (!c->mem_store(c->env, a, " +
           std::to_string(bytes) + "u, sv)) { TN_SPILL; return 1; }\n";
      o += "    }\n";
      break;
    }
    case ir::Opcode::Memcpy:
      o += "    if (!c->memcpy_fn(c->env, " + op(0) + ", " + op(1) + ", " +
           hex64(inst.imm) + ")) { TN_SPILL; return 1; }\n";
      break;
    case ir::Opcode::Gep: {
      const unsigned idxw = opw_of(1);
      emit_commit(o, fidx, inst_id, w,
                  "(" + op(0) + " + (uint64_t)" + sx_expr(op(1), idxw) +
                      " * " + hex64(inst.imm) + ")");
      break;
    }
    case ir::Opcode::Br:
      emit_edge(o, f, fidx, lf, cur_block, inst.succ[0]);
      break;
    case ir::Opcode::CondBr:
      o += "    if ((" + op(0) + ") & 1ULL) {\n";
      emit_edge(o, f, fidx, lf, cur_block, inst.succ[0]);
      o += "    } else {\n";
      emit_edge(o, f, fidx, lf, cur_block, inst.succ[1]);
      o += "    }\n";
      break;
    case ir::Opcode::Ret: {
      const bool has_allocas =
          std::any_of(f.insts.begin(), f.insts.end(), [](const auto& in) {
            return in.op == ir::Opcode::Alloca;
          });
      o += "    { uint64_t rv = " +
           (inst.operands.empty() ? std::string("0ULL") : op(0)) + ";\n";
      if (has_allocas) o += "      c->ret_free(c->env, amark);\n";
      o += "      c->rv = rv; TN_SPILL; return 0; }\n";
      break;
    }
    case ir::Opcode::Call: {
      o += "    if (c->depth >= c->max_depth) TN_CRASH(3);\n";
      o += "    {\n";
      const size_t n = inst.operands.size();
      if (n == 0) {
        o += "      const uint64_t* cargs = (const uint64_t*)0;\n";
      } else {
        o += "      uint64_t cargs[" + std::to_string(n) + "];\n";
        for (size_t i = 0; i < n; ++i) {
          o += "      cargs[" + std::to_string(i) + "] = " + op(i) + ";\n";
        }
      }
      o += "      TN_SPILL;\n";
      o += "      c->depth += 1u;\n";
      o += "      { int st = tn_f" + std::to_string(inst.callee) +
           "(c, cargs, 0u, (const uint64_t*)0, c->asp);\n";
      o += "        c->depth -= 1u;\n";
      o += "        if (st) return st; }\n";
      o += "      di = c->di; dr = c->dr;\n";
      if (inst.has_result()) emit_commit(o, fidx, inst_id, w, "c->rv");
      o += "    }\n";
      break;
    }
    case ir::Opcode::Phi:
      // Straight-line phi (entry block / degenerate placement): the
      // interpreter's main-loop case commits 0.
      emit_commit(o, fidx, inst_id, w, "0ULL");
      break;
    case ir::Opcode::Select:
      emit_commit(o, fidx, inst_id, w,
                  "(((" + op(0) + ") & 1ULL) ? " + op(1) + " : " + op(2) + ")");
      break;
    case ir::Opcode::Print:
      o += "    c->print_fn(c->env, " + F + "u, " + I + "u, " + op(0) + ");\n";
      break;
    case ir::Opcode::Detect:
      o += "    if (((" + op(0) + ") & 1ULL) != 0ULL) { TN_SPILL; return 3; "
           "}\n";
      break;
  }
}

const char* prelude() {
  return R"(#include <stdint.h>
#include <string.h>

struct TnCtx {
  void* env;
  uint64_t fuel; uint64_t arm; uint64_t di; uint64_t dr; uint64_t rv;
  uint64_t asp;
  uint32_t depth; uint32_t max_depth; int32_t crash_code; uint32_t pad_;
  const uint64_t* gb;
  uint64_t mb; uint64_t msz; uint8_t* mp;
  int (*mem_load)(void*, uint64_t, uint32_t, uint64_t*);
  int (*mem_store)(void*, uint64_t, uint32_t, uint64_t);
  int (*memcpy_fn)(void*, uint64_t, uint64_t, uint64_t);
  uint64_t (*alloca_fn)(void*, uint64_t);
  void (*ret_free)(void*, uint64_t);
  uint64_t (*hook_result)(void*, uint32_t, uint32_t, uint64_t, uint64_t);
  void (*print_fn)(void*, uint32_t, uint32_t, uint64_t);
};

static inline float tn_bf32(uint64_t x) {
  uint32_t u = (uint32_t)x; float f; memcpy(&f, &u, 4); return f;
}
static inline uint64_t tn_fb32(float f) {
  uint32_t u; memcpy(&u, &f, 4); return (uint64_t)u;
}
static inline double tn_bf64(uint64_t x) {
  double d; memcpy(&d, &x, 8); return d;
}
static inline uint64_t tn_fb64(double d) {
  uint64_t x; memcpy(&x, &d, 8); return x;
}

#define TN_SPILL do { c->di = di; c->dr = dr; } while (0)
#define TN_FUEL do { if (++di > fuel) { TN_SPILL; return 2; } } while (0)
#define TN_CRASH(code) do { c->crash_code = (code); TN_SPILL; return 1; } \
  while (0)
#define TN_COMMIT(F, I, M, tv) do { \
  if (dr == arm) { (tv) = c->hook_result(c->env, (F), (I), dr, (tv)) M; } \
  dr++; } while (0)

)";
}

// Emits the whole module as one C translation unit. Layout contract:
// instruction at (block b, cursor i) lives at linear ip
// lf.blocks[b].start + i — the same mapping LoweredProgram uses — so the
// resume driver can enter at any interpreter snapshot boundary via the
// `start` switch. Leading phis of non-entry blocks own slots but emit no
// code (edges commit them); the entry block's leading phis (degenerate,
// verifier-rejected, but the fuzzer may probe them) execute inline
// exactly like the interpreter's main-loop Phi case.
// Bump whenever the generated C's semantics or ABI change: the version
// is part of the persistent-cache key (file name and tn_key symbol), so
// objects compiled by an older codegen are never loaded by a newer one.
constexpr int kNativeCodegenVersion = 1;

// Full validation key baked into every generated object as `tn_key`.
// Derived from the printed IR's hash and length plus the codegen
// version — computable at cache-probe time without running codegen.
std::string native_cache_key(const std::string& ir_text) {
  return std::string("trident-native/") +
         std::to_string(kNativeCodegenVersion) + "/" +
         support::fnv1a64_hex(ir_text) + "/" +
         std::to_string(ir_text.size());
}

std::string generate_c(const ir::Module& m, const LoweredProgram& lp,
                       const std::string& cache_key) {
  std::string o = prelude();
  // Identity of this object, checked by a later process before trusting
  // a persistently cached .so (the key alphabet is [a-z0-9/-], so no C
  // string escaping is needed).
  o += "const char tn_key[] = \"" + cache_key + "\";\n\n";

  for (size_t fidx = 0; fidx < m.functions.size(); ++fidx) {
    o += "static int tn_f" + std::to_string(fidx) +
         "(struct TnCtx* c, const uint64_t* args, uint32_t start, "
         "const uint64_t* seed, uint64_t amark);\n";
  }
  o += "\n";

  for (uint32_t fidx = 0; fidx < m.functions.size(); ++fidx) {
    const auto& f = m.functions[fidx];
    const auto& lf = lp.funcs[fidx];
    o += "static int tn_f" + std::to_string(fidx) +
         "(struct TnCtx* c, const uint64_t* args, uint32_t start, "
         "const uint64_t* seed, uint64_t amark) {\n";
    o += "  const uint64_t fuel = c->fuel;\n";
    o += "  const uint64_t arm = c->arm;\n";
    o += "  uint64_t di = c->di;\n";
    o += "  uint64_t dr = c->dr;\n";
    o += "  (void)args; (void)seed; (void)amark;\n";

    // Globals referenced by this function, loaded once.
    std::vector<bool> used_global(m.globals.size(), false);
    for (const auto& inst : f.insts) {
      for (const auto& v : inst.operands) {
        if (v.is_global()) used_global[v.index] = true;
      }
    }
    for (size_t g = 0; g < used_global.size(); ++g) {
      if (used_global[g]) {
        o += "  const uint64_t g" + std::to_string(g) + " = c->gb[" +
             std::to_string(g) + "];\n";
      }
    }

    // One 64-bit local per result register, seeded on resume.
    std::vector<uint32_t> result_ids;
    for (uint32_t id = 0; id < f.insts.size(); ++id) {
      if (f.insts[id].has_result()) result_ids.push_back(id);
    }
    for (const uint32_t id : result_ids) {
      o += "  uint64_t r" + std::to_string(id) + " = 0;\n";
    }
    if (!result_ids.empty()) {
      o += "  if (seed) {\n";
      for (const uint32_t id : result_ids) {
        o += "    r" + std::to_string(id) + " = seed[" + std::to_string(id) +
             "];\n";
      }
      o += "  }\n";
    }

    // Entry dispatch over every executable slot.
    o += "  switch (start) {\n";
    for (uint32_t b = 0; b < f.blocks.size(); ++b) {
      const auto& lb = lf.blocks[b];
      const uint32_t first = b == 0 ? 0 : lb.n_phis;
      for (uint32_t i = first; i < f.blocks[b].insts.size(); ++i) {
        const uint32_t ip = lb.start + i;
        o += "    case " + std::to_string(ip) + "u: goto I" +
             std::to_string(ip) + ";\n";
      }
    }
    o += "    default: TN_SPILL; return 4;\n";
    o += "  }\n";

    for (uint32_t b = 0; b < f.blocks.size(); ++b) {
      const auto& lb = lf.blocks[b];
      const uint32_t first = b == 0 ? 0 : lb.n_phis;
      for (uint32_t i = first; i < f.blocks[b].insts.size(); ++i) {
        const uint32_t ip = lb.start + i;
        const uint32_t inst_id = f.blocks[b].insts[i];
        o += "  I" + std::to_string(ip) + ": ;\n";
        o += "    TN_FUEL;\n";
        emit_inst(o, f, fidx, lf, inst_id, b);
      }
    }
    o += "  TN_SPILL; return 4;\n";
    o += "}\n\n";
  }

  o += "typedef int (*TnFn)(struct TnCtx*, const uint64_t*, uint32_t, "
       "const uint64_t*, uint64_t);\n";
  o += "const TnFn tn_table[] = {";
  if (m.functions.empty()) {
    o += " 0";
  } else {
    for (size_t fidx = 0; fidx < m.functions.size(); ++fidx) {
      if (fidx) o += ",";
      o += " tn_f" + std::to_string(fidx);
    }
  }
  o += " };\n";
  return o;
}

void init_ctx(TnCtx& ctx, TnEnv& env, const RunOptions& options,
              const std::vector<uint64_t>& global_bases, uint32_t depth) {
  ctx.env = &env;
  ctx.fuel = options.fuel;
  // can_serve guarantees result_watch() >= 0 whenever hooks are set; no
  // hooks means no index ever matches.
  ctx.arm = options.hooks != nullptr
                ? static_cast<uint64_t>(options.hooks->result_watch())
                : ~0ULL;
  ctx.di = 0;
  ctx.dr = 0;
  ctx.rv = 0;
  ctx.asp = env.allocas.size();
  ctx.depth = depth;
  ctx.max_depth = options.max_call_depth;
  ctx.crash_code = 0;
  ctx.gb = global_bases.data();
  ctx.mb = 0;
  ctx.msz = 0;
  ctx.mp = nullptr;
  ctx.mem_load = tn_mem_load;
  ctx.mem_store = tn_mem_store;
  ctx.memcpy_fn = tn_memcpy;
  ctx.alloca_fn = tn_alloca;
  ctx.ret_free = tn_ret_free;
  ctx.hook_result = tn_hook_result;
  ctx.print_fn = tn_print;
}

void finish_result(RunResult& res, const TnCtx& ctx, int status, bool set_ret,
                   std::string& pending_crash) {
  res.dynamic_insts = ctx.di;
  res.dynamic_results = ctx.dr;
  switch (status) {
    case 0:
      res.outcome = Outcome::Ok;
      if (set_ret) res.ret_raw = ctx.rv;
      break;
    case 1:
      res.outcome = Outcome::Crash;
      switch (ctx.crash_code) {
        case 1: res.crash_reason = "integer division by zero"; break;
        case 2: res.crash_reason = "signed division overflow"; break;
        case 3: res.crash_reason = "call stack overflow"; break;
        default: res.crash_reason = std::move(pending_crash); break;
      }
      break;
    case 2:
      res.outcome = Outcome::Hang;
      break;
    case 3:
      res.outcome = Outcome::Detected;
      break;
    default:
      res.outcome = Outcome::Crash;
      res.crash_reason = "native engine internal error";
      break;
  }
}

// One loud notice per process and reason class; every fallback still
// counts in NativeEngine::fallback_runs() for the manifest.
void warn_fallback(const NativeProgram& p) {
  if (!p.available()) {
    static std::once_flag once;
    std::call_once(once, [&p] {
      std::fprintf(stderr,
                   "trident: --engine native: runtime compilation unavailable "
                   "(%s); falling back to the threaded engine (results "
                   "unchanged)\n",
                   p.error().c_str());
    });
  } else {
    static std::once_flag once;
    std::call_once(once, [] {
      std::fprintf(stderr,
                   "trident: --engine native: run needs dense hooks (tracing, "
                   "profiling or snapshot recording); falling back to the "
                   "threaded engine (results unchanged)\n");
    });
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// NativeProgram
// ---------------------------------------------------------------------------

std::shared_ptr<const NativeProgram> NativeProgram::build(
    const ir::Module& module) {
  static std::mutex mu;
  static std::map<std::string, std::weak_ptr<const NativeProgram>> cache;
  static std::deque<std::shared_ptr<const NativeProgram>> recent;

  const std::string key = ir::print_module(module);
  {
    std::lock_guard<std::mutex> lock(mu);
    if (const auto it = cache.find(key); it != cache.end()) {
      if (auto hit = it->second.lock()) return hit;
    }
  }

  // Compile outside the lock: the host compiler run dominates, and two
  // racing builders at worst duplicate work for distinct keys.
  std::shared_ptr<NativeProgram> prog(new NativeProgram());
  prog->compile(module, key);

  std::lock_guard<std::mutex> lock(mu);
  if (const auto it = cache.find(key); it != cache.end()) {
    if (auto hit = it->second.lock()) return hit;  // lost the race
  }
  cache[key] = prog;
  recent.push_back(prog);
  if (recent.size() > 32) recent.pop_front();
  if (cache.size() > 256) {
    for (auto it = cache.begin(); it != cache.end();) {
      it = it->second.expired() ? cache.erase(it) : std::next(it);
    }
  }
  return prog;
}

std::shared_ptr<const NativeProgram> NativeProgram::build_uncached(
    const ir::Module& module) {
  std::shared_ptr<NativeProgram> prog(new NativeProgram());
  prog->compile(module, ir::print_module(module));
  return prog;
}

NativeProgram::~NativeProgram() {
#if TRIDENT_NATIVE_SUPPORTED
  if (handle_ != nullptr) dlclose(handle_);
#endif
}

void NativeProgram::compile(const ir::Module& module,
                            const std::string& ir_text) {
  const auto t0 = std::chrono::steady_clock::now();
  // The lowered program is always produced: the fallback engine and the
  // resume ip mapping need it even when compilation is unavailable.
  lowered_ = LoweredProgram::lower(module);
  const auto done = [&] {
    stats_.compile_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
  };

#if !TRIDENT_NATIVE_SUPPORTED
  (void)ir_text;
  error_ = "runtime compilation is not supported on this platform";
  done();
#else
  const std::string cache_key = native_cache_key(ir_text);
  // Persistent object cache: when $TRIDENT_NATIVE_CACHE names a
  // directory, probe it for an object another process already compiled
  // for this exact IR and codegen version. The embedded tn_key is the
  // authority — file-name collisions or stale files fail the strcmp and
  // are deleted, then recompiled below.
  std::string cache_path;
  if (const char* e = std::getenv("TRIDENT_NATIVE_CACHE");
      e != nullptr && *e != '\0') {
    cache_path = std::string(e) + "/tn-" +
                 support::fnv1a64_hex(ir_text) + "-g" +
                 std::to_string(kNativeCodegenVersion) + ".so";
    if (void* h = dlopen(cache_path.c_str(), RTLD_NOW | RTLD_LOCAL)) {
      const char* stored_key =
          reinterpret_cast<const char*>(dlsym(h, "tn_key"));
      const auto* table =
          reinterpret_cast<const TrialFn*>(dlsym(h, "tn_table"));
      if (stored_key != nullptr && cache_key == stored_key &&
          table != nullptr) {
        handle_ = h;
        table_ = table;
        stats_.functions = module.functions.size();
        stats_.cache_hits = 1;
        struct stat st{};
        if (stat(cache_path.c_str(), &st) == 0) {
          stats_.code_bytes = static_cast<uint64_t>(st.st_size);
        }
        done();
        return;
      }
      dlclose(h);
      unlink(cache_path.c_str());
    }
  }

  const std::string src = generate_c(module, *lowered_, cache_key);

  const char* tmpdir = std::getenv("TMPDIR");
  std::string dir_templ = std::string(tmpdir && *tmpdir ? tmpdir : "/tmp") +
                          "/trident-native-XXXXXX";
  std::vector<char> dirbuf(dir_templ.begin(), dir_templ.end());
  dirbuf.push_back('\0');
  if (mkdtemp(dirbuf.data()) == nullptr) {
    error_ = "mkdtemp failed for native codegen scratch dir";
    done();
    return;
  }
  const std::string dir = dirbuf.data();
  const std::string c_path = dir + "/m.c";
  const std::string so_path = dir + "/m.so";
  const auto cleanup = [&] {
    unlink(c_path.c_str());
    unlink(so_path.c_str());
    rmdir(dir.c_str());
  };

  if (FILE* fp = std::fopen(c_path.c_str(), "w")) {
    const size_t written = std::fwrite(src.data(), 1, src.size(), fp);
    std::fclose(fp);
    if (written != src.size()) {
      error_ = "short write of generated C source";
      cleanup();
      done();
      return;
    }
  } else {
    error_ = "cannot write generated C source";
    cleanup();
    done();
    return;
  }

  std::vector<std::string> compilers;
  if (const char* e = std::getenv("TRIDENT_CC"); e != nullptr && *e != '\0') {
    compilers.push_back(e);
  }
  if (const char* e = std::getenv("CC"); e != nullptr && *e != '\0') {
    compilers.push_back(e);
  }
  compilers.push_back("cc");
  compilers.push_back("gcc");
  compilers.push_back("clang");

  bool compiled = false;
  for (const auto& cc : compilers) {
    const std::string cmd = cc + " -O2 -fPIC -shared -w -o '" + so_path +
                            "' '" + c_path + "' >/dev/null 2>&1";
    if (std::system(cmd.c_str()) != 0) continue;
    struct stat st{};
    if (stat(so_path.c_str(), &st) == 0 && st.st_size > 0) {
      stats_.code_bytes = static_cast<uint64_t>(st.st_size);
      compiled = true;
      break;
    }
  }
  if (!compiled) {
    error_ = "no usable host C compiler (tried $TRIDENT_CC, $CC, cc, gcc, "
             "clang)";
    cleanup();
    done();
    return;
  }

  handle_ = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle_ == nullptr) {
    const char* err = dlerror();
    error_ = std::string("dlopen failed: ") + (err != nullptr ? err : "?");
    cleanup();
    done();
    return;
  }
  table_ = reinterpret_cast<const TrialFn*>(dlsym(handle_, "tn_table"));
  if (table_ == nullptr) {
    error_ = "generated object has no tn_table symbol";
    dlclose(handle_);
    handle_ = nullptr;
    cleanup();
    done();
    return;
  }
  stats_.functions = module.functions.size();
  // Publish to the persistent cache (best effort — a read-only or
  // missing cache dir must never fail the compile that just succeeded).
  // Copy to a per-writer temp name in the cache dir, then rename: racing
  // publishers each rename a complete file, and a crash mid-copy leaves
  // only a temp that the next tn_key-mismatch probe path ignores.
  if (!cache_path.empty()) {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(fs::path(cache_path).parent_path(), ec);
    const std::string pub_tmp =
        cache_path + ".tmp." + std::to_string(getpid());
    fs::copy_file(so_path, pub_tmp, fs::copy_options::overwrite_existing,
                  ec);
    if (!ec) {
      fs::rename(pub_tmp, cache_path, ec);
      if (ec) fs::remove(pub_tmp, ec);
    }
  }
  cleanup();  // the mapping stays alive after unlink on POSIX
  done();
#endif
}

// ---------------------------------------------------------------------------
// NativeEngine
// ---------------------------------------------------------------------------

NativeEngine::NativeEngine(const ir::Module& module)
    : NativeEngine(module, NativeProgram::build(module)) {}

NativeEngine::NativeEngine(const ir::Module& module,
                           std::shared_ptr<const NativeProgram> program)
    : module_(module), program_(std::move(program)) {
  assert(program_ != nullptr);
  reset_globals();
}

NativeEngine::~NativeEngine() = default;

// Replica of Interpreter::reset_globals: identical allocation order, so
// bases, crash addresses and snapshot layouts agree bit for bit.
void NativeEngine::reset_globals() {
  memory_.clear();
  global_bases_.clear();
  global_bases_.reserve(module_.globals.size());
  for (const auto& g : module_.globals) {
    const uint64_t base = memory_.allocate(g.size ? g.size : 1);
    for (size_t i = 0; i < g.init.size() && i < g.size; ++i) {
      memory_.store(base + i, 1, g.init[i]);
    }
    global_bases_.push_back(base);
  }
}

bool NativeEngine::can_serve(const RunOptions& options) const {
  if (!program_->available()) return false;
  if (options.snapshots != nullptr) return false;
  if (options.hooks == nullptr) return true;
  return (options.hooks->interest() & ~uint32_t{ExecHooks::kResult}) == 0 &&
         options.hooks->result_watch() >= 0;
}

ThreadedEngine& NativeEngine::fallback() {
  if (fallback_ == nullptr) {
    fallback_ = std::make_unique<ThreadedEngine>(module_, program_->lowered());
  }
  return *fallback_;
}

RunResult NativeEngine::run(uint32_t func_id, std::span<const uint64_t> args,
                            const RunOptions& options) {
  if (!can_serve(options)) {
    warn_fallback(*program_);
    ++fallback_runs_;
    last_run_fallback_ = true;
    return fallback().run(func_id, args, options);
  }
  last_run_fallback_ = false;
  if (!pristine_) reset_globals();
  pristine_ = false;
  alloca_stack_.clear();
  pending_crash_.clear();

  RunResult res;
  TnCtx ctx;
  TnEnv env{memory_, alloca_stack_, pending_crash_, module_,
            res,     options,       &ctx};
  init_ctx(ctx, env, options, global_bases_, /*depth=*/1);

  std::vector<uint64_t> argv(args.begin(), args.end());
  const int status = program_->fn(func_id)(
      &ctx, argv.empty() ? nullptr : argv.data(), 0, nullptr, 0);
  finish_result(res, ctx, status, /*set_ret=*/true, pending_crash_);
  return res;
}

RunResult NativeEngine::run_main(const RunOptions& options) {
  const auto main_id = module_.find_function("main");
  assert(main_id && "module has no main function");
  return run(*main_id, {}, options);
}

Snapshot NativeEngine::snapshot() const {
  if (last_run_fallback_ && fallback_ != nullptr) return fallback_->snapshot();
  Snapshot s;
  s.memory = memory_;
  s.global_bases = global_bases_;
  return s;
}

const Memory& NativeEngine::memory() const {
  if (last_run_fallback_ && fallback_ != nullptr) return fallback_->memory();
  return memory_;
}

RunResult NativeEngine::resume(const Snapshot& s, const RunOptions& options) {
  if (!can_serve(options)) {
    warn_fallback(*program_);
    ++fallback_runs_;
    last_run_fallback_ = true;
    return fallback().resume(s, options);
  }
  last_run_fallback_ = false;

  RunResult res;
  res.dynamic_insts = s.dyn_insts;
  res.dynamic_results = s.dyn_results;
  res.output = s.output;
  res.debug_output = s.debug_output;
  memory_ = s.memory;  // copy-assign keeps this object's cache stats
  global_bases_ = s.global_bases;
  pristine_ = false;
  pending_crash_.clear();

  std::vector<Frame> stack = s.stack;
  if (stack.empty()) return res;

  // Rebuild the flat alloca stack (outermost frame first) and record
  // each frame's watermark: a frame's Ret frees back to its own mark.
  alloca_stack_.clear();
  std::vector<uint64_t> marks(stack.size(), 0);
  for (size_t i = 0; i < stack.size(); ++i) {
    marks[i] = alloca_stack_.size();
    alloca_stack_.insert(alloca_stack_.end(), stack[i].allocas.begin(),
                         stack[i].allocas.end());
  }

  TnCtx ctx;
  TnEnv env{memory_, alloca_stack_, pending_crash_, module_,
            res,     options,       &ctx};
  init_ctx(ctx, env, options, global_bases_,
           static_cast<uint32_t>(stack.size()));
  ctx.di = s.dyn_insts;
  ctx.dr = s.dyn_results;

  // Run the innermost frame to completion, then unwind: commit its
  // return value into the caller (replicating the interpreter's Ret
  // path) and continue the caller from its saved (block, cursor).
  const auto& lp = *program_->lowered();
  auto* hooks = options.hooks;
  for (size_t i = stack.size(); i-- > 0;) {
    Frame& fr = stack[i];
    ctx.depth = static_cast<uint32_t>(i + 1);
    const uint32_t ip = lp.funcs[fr.func].blocks[fr.block].start + fr.cursor;
    const int status = program_->fn(fr.func)(
        &ctx, fr.args.empty() ? nullptr : fr.args.data(), ip, fr.regs.data(),
        marks[i]);
    if (status != 0) {
      finish_result(res, ctx, status, /*set_ret=*/false, pending_crash_);
      return res;
    }
    if (i == 0) {
      finish_result(res, ctx, 0, /*set_ret=*/true, pending_crash_);
      return res;
    }
    Frame& caller = stack[i - 1];
    const uint32_t ret_to = fr.ret_to_inst;
    if (ret_to != ir::kNoBlock) {
      const auto& cinst = module_.functions[caller.func].insts[ret_to];
      if (cinst.has_result()) {
        uint64_t bits = ctx.rv;
        if (hooks != nullptr) {
          if (ctx.dr == ctx.arm) {
            hooks->on_result({caller.func, ret_to}, ctx.dr, bits);
          }
          const unsigned w = cinst.type.width();
          if (w != 0) bits &= low_mask(w);
        }
        ++ctx.dr;
        caller.regs[ret_to] = bits;
      }
    }
  }
  return res;  // unreachable: the loop exits through frame 0
}

}  // namespace trident::interp
