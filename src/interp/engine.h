// Execution-engine abstraction over the interpreter layer.
//
// An ExecutionEngine runs an ir::Module and classifies the outcome; the
// reference implementation is the tree-walking Interpreter
// (interp/interpreter.h) and the performance implementations are the
// pre-lowered direct-threaded backend (interp/threaded.h) and the
// host-compiled native backend (interp/native.h). Every backend honours
// the same contract (docs/ENGINE.md, "The bit-identity contract"):
// given the same module, entry, options and hooks, run(), run_main()
// and resume() return byte-identical RunResults, invoke the ExecHooks
// callbacks in the same order with the same arguments, and
// capture/resume interchangeable Snapshots. FI campaigns and the eval
// subsystem are therefore engine-agnostic: CampaignOptions::engine (CLI
// --engine={interp,threaded,native}) only moves wall-clock, never a
// result.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace trident::ir {
struct Module;
}  // namespace trident::ir

namespace trident::interp {

struct RunResult;
struct RunOptions;
struct Snapshot;
class Memory;
struct LoweredProgram;

enum class EngineKind : uint8_t {
  Interp,    // tree-walking reference interpreter
  Threaded,  // pre-lowered direct-threaded dispatch (interp/threaded.h)
  Native,    // host-compiled machine code (interp/native.h); falls back
             // to the threaded engine for dense-hook paths and on hosts
             // without runtime compilation
};

/// Canonical CLI/JSON name of an engine kind ("interp", "threaded",
/// "native").
const char* engine_kind_name(EngineKind kind);

/// Inverse of engine_kind_name; nullopt for unknown names (callers list
/// engine_kind_names() in their diagnostic, like find_workload does).
std::optional<EngineKind> engine_kind_from_name(std::string_view name);

/// Comma-separated valid engine names, in EngineKind order — the
/// standard suffix of every unknown-engine diagnostic.
std::string engine_kind_names();

/// Every EngineKind, in declaration order. Parity tests and the fuzzer's
/// engine oracle iterate this so a new backend is automatically held to
/// the bit-identity contract.
std::span<const EngineKind> all_engine_kinds();

/// Abstract execution substrate. One engine instance is single-threaded
/// and reusable across runs (construction materializes the module's
/// globals; a run over dirty state resets them first). See
/// interp/interpreter.h for the semantics of the individual operations —
/// the interpreter defines them and every other backend must match it
/// bit for bit.
class ExecutionEngine {
 public:
  virtual ~ExecutionEngine() = default;

  /// Runs `func_id` with the given raw argument payloads.
  virtual RunResult run(uint32_t func_id, std::span<const uint64_t> args,
                        const RunOptions& options) = 0;

  /// Convenience: runs the function named "main" with no arguments.
  virtual RunResult run_main(const RunOptions& options) = 0;

  /// Captures the current state (pristine before any run; mid-run state
  /// at instruction boundaries when recording). Snapshots are
  /// engine-agnostic value types: any backend can resume a snapshot
  /// captured by any other.
  virtual Snapshot snapshot() const = 0;

  /// Continues execution from `s` bit-identically to having run straight
  /// through. The snapshot is not consumed.
  virtual RunResult resume(const Snapshot& s, const RunOptions& options) = 0;

  virtual const Memory& memory() const = 0;

  virtual EngineKind kind() const = 0;

  const char* name() const { return engine_kind_name(kind()); }
};

/// Creates a fresh engine of the given kind. The threaded engine lowers
/// the whole module up front; to share that work across many engines of
/// one campaign, lower once (LoweredProgram::lower) and construct
/// ThreadedEngine instances with the shared program instead.
std::unique_ptr<ExecutionEngine> make_engine(EngineKind kind,
                                             const ir::Module& module);

}  // namespace trident::interp
