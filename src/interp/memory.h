// Segmented memory model for the interpreter.
//
// Every live allocation (module global or alloca) is a segment with a
// unique base address handed out by a bump allocator with guard gaps
// between segments. Loads/stores must fall entirely inside a live
// segment; anything else is an access violation, which the interpreter
// turns into a Crash outcome — the hardware-trap analogue the paper's
// fault model relies on ("read outside its memory segments").
//
// The segment map also backs the profiler's crash-probability estimate
// for corrupted addresses (paper §IV-C: "profiling memory size allocated
// for the program").
//
// Lookups go through a one-entry most-recently-hit segment cache:
// programs touch the same array for long stretches, so the cache turns
// the per-access std::map::upper_bound into two compares on the hot
// path. Hit statistics are exposed for the run-metrics manifest.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace trident::interp {

class Memory {
 public:
  Memory();
  // Copying is how interpreter snapshots capture and restore the
  // address space. Cache statistics describe the accesses made THROUGH
  // a Memory object, not its contents: a copy-constructed Memory starts
  // its tallies at zero, and copy-assignment replaces the contents but
  // keeps the assignee's accumulated tallies (so a per-worker
  // interpreter that restores a snapshot per trial still reports one
  // coherent hit rate across the whole campaign).
  Memory(const Memory& other);
  Memory(Memory&& other) noexcept;
  Memory& operator=(const Memory& other);
  Memory& operator=(Memory&& other) noexcept;

  /// Allocates a fresh zero-initialized segment; returns its base address.
  uint64_t allocate(uint64_t size);

  /// Frees the segment with the given base (asserts it exists).
  void free(uint64_t base);

  /// Drops every segment and rewinds the bump allocator to its initial
  /// state (cheaper than assigning a fresh Memory, and keeps the cache
  /// statistics, which belong to the object rather than its contents).
  void clear();

  /// Little-endian load/store of 1/2/4/8 bytes. Returns false on an
  /// access violation (address range not inside one live segment).
  bool load(uint64_t addr, unsigned bytes, uint64_t& out) const;
  bool store(uint64_t addr, unsigned bytes, uint64_t value);

  /// Whether [addr, addr+bytes) lies inside one live segment.
  bool valid(uint64_t addr, unsigned bytes) const;

  /// Contiguous bytes addressable from `addr` to the end of its segment
  /// (0 when addr is outside every live segment). On success *ptr points
  /// at addr's byte; the pointer is invalidated by allocate/free/clear/
  /// assignment. Backs bulk operations (memcpy): one range validation
  /// per side instead of a map lookup per byte.
  uint64_t span(uint64_t addr, const uint8_t** ptr) const;
  uint64_t span(uint64_t addr, uint8_t** ptr);

  /// Live segments as (base, size) pairs, ascending by base.
  std::vector<std::pair<uint64_t, uint64_t>> segments() const;

  /// Total bytes currently allocated.
  uint64_t bytes_live() const { return bytes_live_; }

  /// Number of live segments.
  uint64_t segment_count() const { return segments_.size(); }

  /// One-entry lookup-cache statistics (every load/store/valid/span is
  /// one lookup). Reported as interp.memcache.* in campaign manifests.
  uint64_t cache_lookups() const { return cache_lookups_; }
  uint64_t cache_hits() const { return cache_hits_; }

 private:
  struct Segment {
    uint64_t size = 0;
    std::vector<uint8_t> data;
  };

  // Locates the segment containing addr; nullptr if none. `offset`
  // receives addr - base. Consults and refills the one-entry cache.
  const Segment* find(uint64_t addr, uint64_t& offset) const;

  std::map<uint64_t, Segment> segments_;  // base -> segment
  uint64_t next_ = 0x10000000;
  uint64_t bytes_live_ = 0;

  // Last segment hit (map nodes are pointer-stable; invalidated on
  // free/clear/assignment). `cache_base_` only has meaning while
  // `cache_seg_` is non-null.
  mutable uint64_t cache_base_ = 0;
  mutable const Segment* cache_seg_ = nullptr;
  mutable uint64_t cache_lookups_ = 0;
  mutable uint64_t cache_hits_ = 0;
};

}  // namespace trident::interp
