// Segmented memory model for the interpreter.
//
// Every live allocation (module global or alloca) is a segment with a
// unique base address handed out by a bump allocator with guard gaps
// between segments. Loads/stores must fall entirely inside a live
// segment; anything else is an access violation, which the interpreter
// turns into a Crash outcome — the hardware-trap analogue the paper's
// fault model relies on ("read outside its memory segments").
//
// The segment map also backs the profiler's crash-probability estimate
// for corrupted addresses (paper §IV-C: "profiling memory size allocated
// for the program").
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace trident::interp {

class Memory {
 public:
  Memory();

  /// Allocates a fresh zero-initialized segment; returns its base address.
  uint64_t allocate(uint64_t size);

  /// Frees the segment with the given base (asserts it exists).
  void free(uint64_t base);

  /// Little-endian load/store of 1/2/4/8 bytes. Returns false on an
  /// access violation (address range not inside one live segment).
  bool load(uint64_t addr, unsigned bytes, uint64_t& out) const;
  bool store(uint64_t addr, unsigned bytes, uint64_t value);

  /// Whether [addr, addr+bytes) lies inside one live segment.
  bool valid(uint64_t addr, unsigned bytes) const;

  /// Live segments as (base, size) pairs, ascending by base.
  std::vector<std::pair<uint64_t, uint64_t>> segments() const;

  /// Total bytes currently allocated.
  uint64_t bytes_live() const { return bytes_live_; }

 private:
  struct Segment {
    uint64_t size = 0;
    std::vector<uint8_t> data;
  };

  // Locates the segment containing addr; nullptr if none. `offset`
  // receives addr - base.
  const Segment* find(uint64_t addr, uint64_t& offset) const;

  std::map<uint64_t, Segment> segments_;  // base -> segment
  uint64_t next_ = 0x10000000;
  uint64_t bytes_live_ = 0;
};

}  // namespace trident::interp
