#include "interp/memory.h"

#include <cassert>
#include <utility>

namespace trident::interp {

namespace {
constexpr uint64_t kGuardGap = 64;     // bytes of dead space between segments
constexpr uint64_t kAlignment = 16;
constexpr uint64_t kFirstBase = 0x10000000;
}  // namespace

Memory::Memory() = default;

Memory::Memory(const Memory& other)
    : segments_(other.segments_),
      next_(other.next_),
      bytes_live_(other.bytes_live_) {}

Memory::Memory(Memory&& other) noexcept
    : segments_(std::move(other.segments_)),
      next_(other.next_),
      bytes_live_(other.bytes_live_),
      cache_lookups_(other.cache_lookups_),
      cache_hits_(other.cache_hits_) {
  other.cache_seg_ = nullptr;
}

Memory& Memory::operator=(const Memory& other) {
  if (this != &other) {
    segments_ = other.segments_;
    next_ = other.next_;
    bytes_live_ = other.bytes_live_;
    cache_seg_ = nullptr;  // would point into `other`'s map
  }
  return *this;
}

Memory& Memory::operator=(Memory&& other) noexcept {
  if (this != &other) {
    segments_ = std::move(other.segments_);
    next_ = other.next_;
    bytes_live_ = other.bytes_live_;
    cache_seg_ = nullptr;
    other.cache_seg_ = nullptr;
  }
  return *this;
}

uint64_t Memory::allocate(uint64_t size) {
  assert(size > 0);
  const uint64_t base = next_;
  next_ += (size + kGuardGap + kAlignment - 1) & ~(kAlignment - 1);
  auto& seg = segments_[base];
  seg.size = size;
  seg.data.assign(size, 0);
  bytes_live_ += size;
  return base;
}

void Memory::free(uint64_t base) {
  const auto it = segments_.find(base);
  assert(it != segments_.end() && "freeing unknown segment");
  bytes_live_ -= it->second.size;
  if (cache_seg_ == &it->second) cache_seg_ = nullptr;
  segments_.erase(it);
}

void Memory::clear() {
  segments_.clear();
  next_ = kFirstBase;
  bytes_live_ = 0;
  cache_seg_ = nullptr;
}

const Memory::Segment* Memory::find(uint64_t addr, uint64_t& offset) const {
  ++cache_lookups_;
  if (cache_seg_ != nullptr && addr - cache_base_ < cache_seg_->size) {
    ++cache_hits_;
    offset = addr - cache_base_;
    return cache_seg_;
  }
  auto it = segments_.upper_bound(addr);
  if (it == segments_.begin()) return nullptr;
  --it;
  if (addr - it->first >= it->second.size) return nullptr;
  offset = addr - it->first;
  cache_base_ = it->first;
  cache_seg_ = &it->second;
  return &it->second;
}

bool Memory::valid(uint64_t addr, unsigned bytes) const {
  uint64_t offset = 0;
  const auto* seg = find(addr, offset);
  return seg != nullptr && offset + bytes <= seg->size;
}

bool Memory::load(uint64_t addr, unsigned bytes, uint64_t& out) const {
  uint64_t offset = 0;
  const auto* seg = find(addr, offset);
  if (seg == nullptr || offset + bytes > seg->size) return false;
  uint64_t v = 0;
  for (unsigned i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(seg->data[offset + i]) << (8 * i);
  }
  out = v;
  return true;
}

bool Memory::store(uint64_t addr, unsigned bytes, uint64_t value) {
  uint64_t offset = 0;
  auto* seg = const_cast<Segment*>(find(addr, offset));
  if (seg == nullptr || offset + bytes > seg->size) return false;
  for (unsigned i = 0; i < bytes; ++i) {
    seg->data[offset + i] = static_cast<uint8_t>(value >> (8 * i));
  }
  return true;
}

uint64_t Memory::span(uint64_t addr, const uint8_t** ptr) const {
  uint64_t offset = 0;
  const auto* seg = find(addr, offset);
  if (seg == nullptr) return 0;
  *ptr = seg->data.data() + offset;
  return seg->size - offset;
}

uint64_t Memory::span(uint64_t addr, uint8_t** ptr) {
  uint64_t offset = 0;
  auto* seg = const_cast<Segment*>(find(addr, offset));
  if (seg == nullptr) return 0;
  *ptr = seg->data.data() + offset;
  return seg->size - offset;
}

std::vector<std::pair<uint64_t, uint64_t>> Memory::segments() const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(segments_.size());
  for (const auto& [base, seg] : segments_) out.emplace_back(base, seg.size);
  return out;
}

}  // namespace trident::interp
