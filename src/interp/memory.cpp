#include "interp/memory.h"

#include <cassert>

namespace trident::interp {

namespace {
constexpr uint64_t kGuardGap = 64;     // bytes of dead space between segments
constexpr uint64_t kAlignment = 16;
}  // namespace

Memory::Memory() = default;

uint64_t Memory::allocate(uint64_t size) {
  assert(size > 0);
  const uint64_t base = next_;
  next_ += (size + kGuardGap + kAlignment - 1) & ~(kAlignment - 1);
  auto& seg = segments_[base];
  seg.size = size;
  seg.data.assign(size, 0);
  bytes_live_ += size;
  return base;
}

void Memory::free(uint64_t base) {
  const auto it = segments_.find(base);
  assert(it != segments_.end() && "freeing unknown segment");
  bytes_live_ -= it->second.size;
  segments_.erase(it);
}

const Memory::Segment* Memory::find(uint64_t addr, uint64_t& offset) const {
  auto it = segments_.upper_bound(addr);
  if (it == segments_.begin()) return nullptr;
  --it;
  if (addr - it->first >= it->second.size) return nullptr;
  offset = addr - it->first;
  return &it->second;
}

bool Memory::valid(uint64_t addr, unsigned bytes) const {
  uint64_t offset = 0;
  const auto* seg = find(addr, offset);
  return seg != nullptr && offset + bytes <= seg->size;
}

bool Memory::load(uint64_t addr, unsigned bytes, uint64_t& out) const {
  uint64_t offset = 0;
  const auto* seg = find(addr, offset);
  if (seg == nullptr || offset + bytes > seg->size) return false;
  uint64_t v = 0;
  for (unsigned i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(seg->data[offset + i]) << (8 * i);
  }
  out = v;
  return true;
}

bool Memory::store(uint64_t addr, unsigned bytes, uint64_t value) {
  uint64_t offset = 0;
  auto* seg = const_cast<Segment*>(find(addr, offset));
  if (seg == nullptr || offset + bytes > seg->size) return false;
  for (unsigned i = 0; i < bytes; ++i) {
    seg->data[offset + i] = static_cast<uint8_t>(value >> (8 * i));
  }
  return true;
}

std::vector<std::pair<uint64_t, uint64_t>> Memory::segments() const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(segments_.size());
  for (const auto& [base, seg] : segments_) out.emplace_back(base, seg.size);
  return out;
}

}  // namespace trident::interp
