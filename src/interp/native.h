// Native-code execution backend: host-compiled FI trials.
//
// The direct-threaded engine (interp/threaded.h) removed the per-
// instruction decode cost but still pays one dispatch per dynamic
// instruction. This backend removes the dispatch too: each ir::Function
// is translated once into plain C (registers become C locals, operands
// and widths become compile-time constants, blocks become labels), the
// whole module is compiled by the host C compiler into a shared object,
// and trials call the resulting machine code directly.
//
//   codegen   one C translation unit per module; every result register
//             is a 64-bit local, constants/widths/masks are literals,
//             phi edges become staged-assignment stubs on each CFG edge;
//   compile   $TRIDENT_CC / $CC / cc / gcc / clang, -O2 -fPIC -shared,
//             into a temp dir that is removed after dlopen;
//   link      dlopen(RTLD_NOW|RTLD_LOCAL) + one dlsym of the emitted
//             per-function entry table;
//   cache     compiled programs are cached process-wide by printed IR,
//             so campaigns, tests and the fuzzer compile each module
//             once no matter how many engines they construct; and, when
//             $TRIDENT_NATIVE_CACHE names a directory, across processes
//             too — the shared object is published there as
//             tn-<irhash16>-g<codegen version>.so with the full cache
//             key baked in as the `tn_key` symbol, and a later process
//             (a restarted serve daemon, a re-run CLI) dlopens it after
//             verifying tn_key instead of re-running the host compiler.
//             A stale or foreign file fails the tn_key check and is
//             replaced; cache hits surface as engine.native.cache_hits.
//
// The bit-identity contract (docs/ENGINE.md) holds exactly: per-
// instruction fuel accounting, crash strings with faulting addresses,
// Outcome classification, dynamic counters and output streams match the
// reference interpreter byte for byte. The compiled code counts every
// dynamic result and arms a single injection check per trial: an
// ExecHooks whose interest() is kResult and whose result_watch() names
// one dynamic-result index (fi::Injector in DynIndex mode) runs at full
// native speed; everything denser — per-inst tracing, snapshot
// recording, profiling, occurrence-mode injectors — transparently falls
// back to an embedded ThreadedEngine sharing this module's lowered
// program (one loud stderr notice per process; results are unchanged,
// and the manifest counts the fallback runs). Hosts without runtime
// compilation (no usable compiler, non-POSIX, big-endian) make the
// whole program unavailable and every run falls back, which is what
// lets --engine native stay green on minimal images.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "interp/engine.h"
#include "interp/interpreter.h"
#include "interp/threaded.h"

namespace trident::interp {

/// Codegen/compile observability, reported as engine.native.* manifest
/// counters by FI campaigns.
struct NativeStats {
  double compile_ms = 0;    // codegen + host compile + dlopen wall time
  uint64_t functions = 0;   // compiled ir::Functions (0 when unavailable)
  uint64_t code_bytes = 0;  // size of the produced shared object
  uint64_t cache_hits = 0;  // 1 when the object came from the persistent
                            // $TRIDENT_NATIVE_CACHE dir (no compiler run)
};

/// One module compiled to host machine code, plus the shared lowered
/// program the fallback engine and the snapshot ip mapping reuse.
/// Immutable after build(); safe to share across worker threads (the
/// generated code keeps all run state in a per-call context).
class NativeProgram {
 public:
  using TrialFn = int (*)(void* ctx, const uint64_t* args, uint32_t start,
                          const uint64_t* seed, uint64_t alloca_mark);

  /// Compiles `module`, hitting the process-wide cache keyed by printed
  /// IR. Never fails hard: when the host cannot runtime-compile, the
  /// returned program reports available() == false and error() says why.
  static std::shared_ptr<const NativeProgram> build(const ir::Module& module);

  /// build() without the process-wide memoization — every call runs the
  /// full compile path (still honouring $TRIDENT_NATIVE_CACHE). The
  /// persistent-cache tests use this to exercise a "fresh process"
  /// without forking one.
  static std::shared_ptr<const NativeProgram> build_uncached(
      const ir::Module& module);

  ~NativeProgram();
  NativeProgram(const NativeProgram&) = delete;
  NativeProgram& operator=(const NativeProgram&) = delete;

  bool available() const { return handle_ != nullptr; }
  const std::string& error() const { return error_; }
  const NativeStats& stats() const { return stats_; }
  TrialFn fn(uint32_t func_id) const { return table_[func_id]; }

  /// The module's lowered program: the fallback ThreadedEngine shares
  /// it, and its per-block stream offsets define the (block, cursor) ->
  /// linear-ip mapping the generated entry switches use for resume.
  const std::shared_ptr<const LoweredProgram>& lowered() const {
    return lowered_;
  }

 private:
  NativeProgram() = default;

  /// Codegen + host compile + dlopen (or a persistent-cache dlopen);
  /// `ir_text` is the module's printed IR, the content the cache key is
  /// derived from. On any failure leaves the program unavailable with
  /// error_ set (and lowered_ still usable).
  void compile(const ir::Module& module, const std::string& ir_text);

  std::shared_ptr<const LoweredProgram> lowered_;
  void* handle_ = nullptr;        // dlopen handle, closed in the dtor
  const TrialFn* table_ = nullptr;  // dlsym'd per-function entry table
  std::string error_;
  NativeStats stats_;
};

/// ExecutionEngine over a NativeProgram. Single-threaded and reusable
/// across runs like every backend; construction materializes globals
/// with the interpreter's exact allocation order so crash addresses and
/// snapshot layouts agree bit for bit.
class NativeEngine final : public ExecutionEngine {
 public:
  explicit NativeEngine(const ir::Module& module);
  NativeEngine(const ir::Module& module,
               std::shared_ptr<const NativeProgram> program);
  ~NativeEngine() override;

  RunResult run(uint32_t func_id, std::span<const uint64_t> args,
                const RunOptions& options) override;
  RunResult run_main(const RunOptions& options = {}) override;
  Snapshot snapshot() const override;
  RunResult resume(const Snapshot& s, const RunOptions& options) override;
  const Memory& memory() const override;
  EngineKind kind() const override { return EngineKind::Native; }

  const NativeProgram& program() const { return *program_; }
  /// Runs/resumes this engine delegated to the embedded threaded engine
  /// (dense hooks, snapshot recording, or an unavailable program).
  uint64_t fallback_runs() const { return fallback_runs_; }

 private:
  /// Whether the compiled fast path can serve these options: no
  /// snapshot recording, and hooks absent or kResult-only with a
  /// result_watch() promise (see ExecHooks::result_watch).
  bool can_serve(const RunOptions& options) const;
  ThreadedEngine& fallback();
  void reset_globals();

  const ir::Module& module_;
  std::shared_ptr<const NativeProgram> program_;
  Memory memory_;
  std::vector<uint64_t> global_bases_;
  std::vector<uint64_t> alloca_stack_;
  bool pristine_ = true;
  bool last_run_fallback_ = false;
  uint64_t fallback_runs_ = 0;
  std::unique_ptr<ThreadedEngine> fallback_;
  std::string pending_crash_;  // set by memory shims (address-bearing)
};

}  // namespace trident::interp
