// The IR interpreter: execution substrate for profiling, golden runs and
// fault-injection runs.
//
// Register values are raw 64-bit payloads masked to the instruction's
// declared width; floats are stored as their IEEE encodings. This uniform
// representation is what makes single-bit-flip injection (fi/) and
// bit-level propagation reasoning (core/tuples) exact.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "interp/memory.h"
#include "ir/module.h"

namespace trident::interp {

enum class Outcome : uint8_t {
  Ok,        // ran to completion
  Crash,     // hardware-trap analogue (OOB access, div-by-zero, overflow)
  Hang,      // exceeded the dynamic-instruction budget
  Detected,  // a Detect instruction fired (duplication-pass detector)
};

const char* outcome_name(Outcome o);

struct RunResult {
  Outcome outcome = Outcome::Ok;
  std::string output;        // program-output stream (SDC comparison basis)
  std::string debug_output;  // prints marked is_output=false
  uint64_t dynamic_insts = 0;    // all executed instructions
  uint64_t dynamic_results = 0;  // executed instructions with a result
                                 // (the fault-injection site space)
  uint64_t ret_raw = 0;          // entry function's return payload
  std::string crash_reason;
};

/// Observation & perturbation interface. All callbacks are invoked only
/// when a hook object is installed, so plain runs stay on the fast path.
class ExecHooks {
 public:
  virtual ~ExecHooks() = default;

  /// After an instruction computes its result and before it is committed
  /// to the destination register. `dyn_result_index` counts executed
  /// result-producing instructions from 0; mutating `bits` emulates a
  /// soft error in the destination register (the paper's fault model).
  virtual void on_result(ir::InstRef ref, uint64_t dyn_result_index,
                         uint64_t& bits) {
    (void)ref, (void)dyn_result_index, (void)bits;
  }

  /// Before executing any instruction, with its evaluated operands.
  virtual void on_exec(ir::InstRef ref, std::span<const uint64_t> operands) {
    (void)ref, (void)operands;
  }

  /// After a conditional branch decides its direction.
  virtual void on_branch(ir::InstRef ref, bool taken) {
    (void)ref, (void)taken;
  }

  virtual void on_load(ir::InstRef ref, uint64_t addr, unsigned bytes) {
    (void)ref, (void)addr, (void)bytes;
  }
  /// After a store commits. `silent` reports whether the stored value
  /// equals what the location already held (the paper's §VII-A
  /// "coincidentally correct" stores: skipping or re-executing a silent
  /// store cannot corrupt memory).
  virtual void on_store(ir::InstRef ref, uint64_t addr, unsigned bytes,
                        bool silent) {
    (void)ref, (void)addr, (void)bytes, (void)silent;
  }

  /// Segment lifecycle (allocas; globals are visible via
  /// Interpreter::memory() before the run starts).
  virtual void on_alloc(uint64_t base, uint64_t size) {
    (void)base, (void)size;
  }

  /// Bulk copy. The profiler uses this to propagate byte writers so the
  /// memory-dependence graph sees through memcpy.
  virtual void on_memcpy(ir::InstRef ref, uint64_t dst, uint64_t src,
                         uint64_t bytes) {
    (void)ref, (void)dst, (void)src, (void)bytes;
  }
};

struct RunOptions {
  uint64_t fuel = 500'000'000;   // dynamic-instruction budget before Hang
  uint32_t max_call_depth = 4096;
  ExecHooks* hooks = nullptr;
};

class Interpreter {
 public:
  explicit Interpreter(const ir::Module& module);

  /// Runs `func_id` with the given raw argument payloads.
  RunResult run(uint32_t func_id, std::span<const uint64_t> args,
                const RunOptions& options);

  /// Convenience: runs the function named "main" with no arguments.
  RunResult run_main(const RunOptions& options = {});

  /// Base address of global `index` (valid after construction; globals
  /// are materialized once and reset on every run()).
  uint64_t global_base(uint32_t index) const { return global_bases_[index]; }

  const Memory& memory() const { return memory_; }

 private:
  struct Frame;

  void reset_globals();
  uint64_t eval(const Frame& frame, const ir::Value& v) const;

  const ir::Module& module_;
  Memory memory_;
  std::vector<uint64_t> global_bases_;
};

}  // namespace trident::interp
