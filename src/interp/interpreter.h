// The IR interpreter: execution substrate for profiling, golden runs and
// fault-injection runs.
//
// Register values are raw 64-bit payloads masked to the instruction's
// declared width; floats are stored as their IEEE encodings. This uniform
// representation is what makes single-bit-flip injection (fi/) and
// bit-level propagation reasoning (core/tuples) exact.
//
// Execution state is explicitly serializable: a Snapshot captures the
// complete mid-run state (frame stack, memory, global bases, output
// streams, dynamic counters) at an instruction boundary, and resume()
// continues from it bit-identically to having run straight through. FI
// campaigns use this to skip the fault-free prefix of every trial
// (fi/trial_runner); the invariants that make resume exact are that the
// interpreter is fully deterministic and that RunResult carries no host
// state (see docs/MODEL.md, "Trial execution engine").
//
// The Interpreter is the *reference* ExecutionEngine (interp/engine.h):
// it defines the semantics — hook order, fuel accounting, crash
// messages, snapshot boundaries — that every other backend (the
// direct-threaded engine in interp/threaded.h) must reproduce bit for
// bit. See docs/ENGINE.md for the contract.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "interp/engine.h"
#include "interp/memory.h"
#include "ir/module.h"

namespace trident::interp {

enum class Outcome : uint8_t {
  Ok,        // ran to completion
  Crash,     // hardware-trap analogue (OOB access, div-by-zero, overflow)
  Hang,      // exceeded the dynamic-instruction budget
  Detected,  // a Detect instruction fired (duplication-pass detector)
};

const char* outcome_name(Outcome o);

struct RunResult {
  Outcome outcome = Outcome::Ok;
  std::string output;        // program-output stream (SDC comparison basis)
  std::string debug_output;  // prints marked is_output=false
  uint64_t dynamic_insts = 0;    // all executed instructions
  uint64_t dynamic_results = 0;  // executed instructions with a result
                                 // (the fault-injection site space)
  uint64_t ret_raw = 0;          // entry function's return payload
  std::string crash_reason;
};

/// Observation & perturbation interface. All callbacks are invoked only
/// when a hook object is installed, so plain runs stay on the fast path.
class ExecHooks {
 public:
  /// Interest mask for the optimizing backends (interp/threaded.h): a
  /// hook advertises which callbacks it actually observes so the engine
  /// can skip materializing their arguments (operand spans for on_exec,
  /// the pre-store read that computes on_store's `silent` flag). The
  /// reference interpreter ignores the mask and always calls everything;
  /// skipping is sound because an unobserved callback has no effect on
  /// execution. Committed results are re-masked whenever a hook object
  /// is installed, regardless of the mask, so RunResults stay identical.
  enum : uint32_t {
    kResult = 1u << 0,
    kExec = 1u << 1,
    kBranch = 1u << 2,
    kLoad = 1u << 3,
    kStore = 1u << 4,
    kAlloc = 1u << 5,
    kMemcpy = 1u << 6,
    kAll = (1u << 7) - 1,
  };

  virtual ~ExecHooks() = default;

  /// Which callbacks this hook observes; defaults to all of them.
  /// Override to a narrower mask (fi::Injector is kResult-only) to let
  /// the threaded engine skip the bookkeeping the others need.
  virtual uint32_t interest() const { return kAll; }

  /// Sparse-result promise for the native backend (interp/native.h).
  /// A non-negative value declares that on_result is a no-op at every
  /// dyn_result_index other than the returned one, so compiled code may
  /// skip the callback everywhere else (it still re-masks committed
  /// results). The default -1 makes no promise: a kResult hook without a
  /// watch index (tracers, recorders) forces the native engine to fall
  /// back to the threaded backend. fi::Injector overrides this with its
  /// armed dynamic index.
  virtual int64_t result_watch() const { return -1; }

  /// After an instruction computes its result and before it is committed
  /// to the destination register. `dyn_result_index` counts executed
  /// result-producing instructions from 0; mutating `bits` emulates a
  /// soft error in the destination register (the paper's fault model).
  virtual void on_result(ir::InstRef ref, uint64_t dyn_result_index,
                         uint64_t& bits) {
    (void)ref, (void)dyn_result_index, (void)bits;
  }

  /// Before executing any instruction, with its evaluated operands.
  virtual void on_exec(ir::InstRef ref, std::span<const uint64_t> operands) {
    (void)ref, (void)operands;
  }

  /// After a conditional branch decides its direction.
  virtual void on_branch(ir::InstRef ref, bool taken) {
    (void)ref, (void)taken;
  }

  virtual void on_load(ir::InstRef ref, uint64_t addr, unsigned bytes) {
    (void)ref, (void)addr, (void)bytes;
  }
  /// After a store commits. `silent` reports whether the stored value
  /// equals what the location already held (the paper's §VII-A
  /// "coincidentally correct" stores: skipping or re-executing a silent
  /// store cannot corrupt memory).
  virtual void on_store(ir::InstRef ref, uint64_t addr, unsigned bytes,
                        bool silent) {
    (void)ref, (void)addr, (void)bytes, (void)silent;
  }

  /// Segment lifecycle (allocas; globals are visible via
  /// Interpreter::memory() before the run starts).
  virtual void on_alloc(uint64_t base, uint64_t size) {
    (void)base, (void)size;
  }

  /// Bulk copy. The profiler uses this to propagate byte writers so the
  /// memory-dependence graph sees through memcpy.
  virtual void on_memcpy(ir::InstRef ref, uint64_t dst, uint64_t src,
                         uint64_t bytes) {
    (void)ref, (void)dst, (void)src, (void)bytes;
  }
};

class Interpreter;

struct RunOptions {
  uint64_t fuel = 500'000'000;   // dynamic-instruction budget before Hang
  uint32_t max_call_depth = 4096;
  ExecHooks* hooks = nullptr;
  /// Snapshot recording: when both fields are set, the run appends a
  /// Snapshot to *snapshots at the first instruction boundary at or
  /// after every multiple of snapshot_interval dynamic results. The
  /// recorded snapshots resume bit-identically (same outcome, output,
  /// counters, crash addresses) to having run straight through.
  uint64_t snapshot_interval = 0;
  std::vector<struct Snapshot>* snapshots = nullptr;
};

/// One call frame of the interpreter, exposed so Snapshot can carry the
/// whole stack. Plain data; nothing here references host memory.
struct Frame {
  uint32_t func = 0;
  std::vector<uint64_t> regs;
  std::vector<uint64_t> args;
  uint32_t block = 0;
  uint32_t prev_block = ir::kNoBlock;
  uint32_t cursor = 0;
  std::vector<uint64_t> allocas;
  uint32_t ret_to_inst = ir::kNoBlock;  // call inst id in the caller
};

/// Complete interpreter state at an instruction boundary. Everything a
/// run can observe is here: the frame stack, the full address space
/// (including the bump-allocator cursor, so later allocas get identical
/// bases), the global bases, both output streams and the dynamic
/// counters. Snapshots are value types — immutable once captured and
/// safe to share read-only across worker threads.
struct Snapshot {
  uint64_t dyn_insts = 0;
  uint64_t dyn_results = 0;  // next on_result index when resumed
  std::vector<Frame> stack;
  Memory memory;
  std::vector<uint64_t> global_bases;
  std::string output;
  std::string debug_output;

  /// Approximate heap footprint, for snapshot-set memory budgeting.
  uint64_t bytes() const;
};

class Interpreter final : public ExecutionEngine {
 public:
  explicit Interpreter(const ir::Module& module);

  /// Runs `func_id` with the given raw argument payloads.
  RunResult run(uint32_t func_id, std::span<const uint64_t> args,
                const RunOptions& options) override;

  /// Convenience: runs the function named "main" with no arguments.
  RunResult run_main(const RunOptions& options = {}) override;

  /// Captures the current state. Before any run this is the pristine
  /// module state (globals materialized, empty stack); the snapshot
  /// machinery of RunOptions uses it at instruction boundaries mid-run.
  Snapshot snapshot() const override;

  /// Continues execution from `s` as if the original run had never
  /// stopped: the returned RunResult (outcome, full output, counters,
  /// crash reason) is bit-identical to a straight-through run with the
  /// same options. The snapshot is not consumed — many trials can
  /// resume from one shared snapshot.
  RunResult resume(const Snapshot& s, const RunOptions& options) override;

  /// Base address of global `index` (valid after construction; globals
  /// are materialized once and reset before a run only when a previous
  /// run or resume dirtied them).
  uint64_t global_base(uint32_t index) const { return global_bases_[index]; }

  const Memory& memory() const override { return memory_; }

  EngineKind kind() const override { return EngineKind::Interp; }

 private:
  void reset_globals();
  RunResult run_loop(RunResult res, std::vector<Frame> stack,
                     const RunOptions& options);
  uint64_t eval(const Frame& frame, const ir::Value& v) const;

  const ir::Module& module_;
  Memory memory_;
  std::vector<uint64_t> global_bases_;
  // Whether memory/globals still hold the untouched post-construction
  // state; lets the first run() skip the redundant re-materialization.
  bool pristine_ = true;
  // Live run state, set for the duration of run_loop so snapshot() can
  // capture mid-run state at boundaries.
  const RunResult* live_result_ = nullptr;
  const std::vector<Frame>* live_stack_ = nullptr;
};

}  // namespace trident::interp
