#include "baselines/epvf.h"

#include <algorithm>

namespace trident::baselines {

EpvfModel::EpvfModel(const ir::Module& module, const prof::Profile& profile)
    : module_(module),
      profile_(profile),
      pvf_(module, profile),
      tracer_(module, profile) {}

double EpvfModel::epvf(ir::InstRef ref) const {
  const double p = pvf_.pvf(ref);
  if (p == 0.0) return 0.0;
  const double crash = std::min(1.0, tracer_.trace(ref).crash);
  return std::max(0.0, p - crash);
}

double EpvfModel::overall() const {
  double weighted = 0, total = 0;
  for (uint32_t f = 0; f < module_.functions.size(); ++f) {
    const auto& func = module_.functions[f];
    for (uint32_t i = 0; i < func.insts.size(); ++i) {
      if (!func.insts[i].has_result()) continue;
      const auto w = static_cast<double>(profile_.exec({f, i}));
      if (w == 0) continue;
      weighted += w * epvf({f, i});
      total += w;
    }
  }
  return total == 0 ? 0.0 : weighted / total;
}

double EpvfModel::overall_with_measured_crashes(double fi_crash_prob) const {
  return std::max(0.0, pvf_.overall() - fi_crash_prob);
}

double EpvfModel::ddg_crash(const ddg::Ddg& graph, ir::InstRef ref,
                            uint32_t max_samples,
                            uint32_t max_visited) const {
  const auto instances = graph.nodes_of(ref);
  if (instances.empty()) return 0.0;
  const auto& users = graph.users();
  const size_t stride =
      std::max<size_t>(1, instances.size() / max_samples);

  // Returns which operand position of `user` consumes producer node `p`
  // (the first match); memory producers appended past the static operand
  // list count as value flow (~0u).
  const auto operand_position = [&](uint64_t user, uint64_t p) -> uint32_t {
    const auto producers = graph.producers(user);
    const auto& inst = module_.functions[graph.nodes()[user].inst.func]
                           .insts[graph.nodes()[user].inst.inst];
    for (uint32_t k = 0; k < producers.size(); ++k) {
      if (producers[k] == p) {
        return k < inst.operands.size() ? k : ~0u;
      }
    }
    return ~0u;
  };

  double total = 0;
  uint32_t sampled = 0;
  std::vector<uint64_t> stack;
  std::vector<bool> seen;
  for (size_t i = 0; i < instances.size() && sampled < max_samples;
       i += stride, ++sampled) {
    // Forward BFS over the dynamic graph, the expensive ePVF step.
    stack.assign(1, instances[i]);
    seen.assign(graph.nodes().size(), false);
    uint32_t visited = 0;
    double survive = 1.0;  // probability no reached access traps
    while (!stack.empty() && visited < max_visited) {
      const uint64_t n = stack.back();
      stack.pop_back();
      if (seen[n]) continue;
      seen[n] = true;
      ++visited;
      for (const uint64_t u : users[n]) {
        const auto uref = graph.nodes()[u].inst;
        const auto& uinst = module_.functions[uref.func].insts[uref.inst];
        const uint32_t pos = operand_position(u, n);
        const bool addr_pos =
            (uinst.op == ir::Opcode::Load && pos == 0) ||
            (uinst.op == ir::Opcode::Store && pos == 1) ||
            (uinst.op == ir::Opcode::Memcpy && pos != ~0u);
        if (addr_pos) {
          survive *= 1.0 - tracer_.tuples().address_crash_prob(
                               uref, pos);
        }
        stack.push_back(u);
      }
    }
    total += 1.0 - survive;
  }
  return sampled == 0 ? 0.0 : total / sampled;
}

double EpvfModel::overall_with_ddg_crashes(const ddg::Ddg& graph) const {
  double weighted = 0, total = 0;
  for (uint32_t f = 0; f < module_.functions.size(); ++f) {
    const auto& func = module_.functions[f];
    for (uint32_t i = 0; i < func.insts.size(); ++i) {
      if (!func.insts[i].has_result()) continue;
      const auto w = static_cast<double>(profile_.exec({f, i}));
      if (w == 0) continue;
      const double p = pvf_.pvf({f, i});
      const double crash =
          p > 0 ? ddg_crash(graph, {f, i}) : 0.0;
      weighted += w * std::max(0.0, p - crash);
      total += w;
    }
  }
  return total == 0 ? 0.0 : weighted / total;
}

}  // namespace trident::baselines
