// PVF baseline (Sridharan & Kaeli, HPCA 2009), reimplemented on our IR
// as the paper's comparison point (§VII-C).
//
// PVF performs ACE analysis: a register fault is vulnerable iff the value
// is (transitively) consumed by architectural state — it does not
// distinguish crashes from SDCs and models no logical masking, so it
// grossly over-predicts SDC probability (paper: 90.62% vs 13.59% FI).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "analysis/def_use.h"
#include "ir/module.h"
#include "profiler/profile.h"

namespace trident::baselines {

class PvfModel {
 public:
  PvfModel(const ir::Module& module, const prof::Profile& profile);

  /// 1.0 if a fault in the destination register of `ref` is ACE
  /// (architecturally consumed), else 0.0.
  double pvf(ir::InstRef ref) const;

  /// Execution-count-weighted overall PVF (= predicted SDC probability).
  double overall() const;

 private:
  bool ace(ir::InstRef ref) const;

  const ir::Module& module_;
  const prof::Profile& profile_;
  std::vector<analysis::DefUse> def_use_;
  mutable std::unordered_map<uint64_t, int> memo_;  // -1 in-progress, 0/1
};

}  // namespace trident::baselines
