#include "baselines/pvf.h"

namespace trident::baselines {

PvfModel::PvfModel(const ir::Module& module, const prof::Profile& profile)
    : module_(module), profile_(profile) {
  def_use_.reserve(module.functions.size());
  for (const auto& f : module.functions) def_use_.emplace_back(f);
}

bool PvfModel::ace(ir::InstRef ref) const {
  const uint64_t k = prof::pack(ref);
  if (const auto it = memo_.find(k); it != memo_.end()) {
    return it->second == 1;
  }
  memo_[k] = -1;  // in-progress: cycles resolve to not-ACE once

  bool result = false;
  const auto& func = module_.functions[ref.func];
  for (const auto& use : def_use_[ref.func].users_of_inst(ref.inst)) {
    if (profile_.exec({ref.func, use.user}) == 0) continue;
    const auto& user = func.insts[use.user];
    switch (user.op) {
      case ir::Opcode::Store:
      case ir::Opcode::CondBr:
      case ir::Opcode::Ret:
      case ir::Opcode::Call:
        // Reaches memory, control flow or another function: ACE.
        result = true;
        break;
      case ir::Opcode::Print:
        result = ir::PrintSpec::unpack(user.imm).is_output;
        break;
      case ir::Opcode::Detect:
        break;
      default:
        // In-progress nodes read as not-ACE, cutting def-use cycles.
        if (user.has_result()) result = ace({ref.func, use.user});
        break;
    }
    if (result) break;
  }
  memo_[k] = result ? 1 : 0;
  return result;
}

double PvfModel::pvf(ir::InstRef ref) const {
  const auto& inst = module_.functions[ref.func].insts[ref.inst];
  if (!inst.has_result() || profile_.exec(ref) == 0) return 0.0;
  return ace(ref) ? 1.0 : 0.0;
}

double PvfModel::overall() const {
  double weighted = 0, total = 0;
  for (uint32_t f = 0; f < module_.functions.size(); ++f) {
    const auto& func = module_.functions[f];
    for (uint32_t i = 0; i < func.insts.size(); ++i) {
      if (!func.insts[i].has_result()) continue;
      const auto w = static_cast<double>(profile_.exec({f, i}));
      if (w == 0) continue;
      weighted += w * pvf({f, i});
      total += w;
    }
  }
  return total == 0 ? 0.0 : weighted / total;
}

}  // namespace trident::baselines
