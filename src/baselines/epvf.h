// ePVF baseline (Fang et al., DSN 2016), reimplemented per §VII-C.
//
// ePVF refines PVF by excluding crash-causing faults from the SDC
// prediction (crashes and SDCs are mutually exclusive) but still cannot
// separate benign faults from SDCs. The paper substitutes FI-measured
// crash rates for ePVF's expensive crash-propagation model ("we assume
// ePVF identifies 100% of the crashes accurately"); `overall_with_
// measured_crashes` reproduces exactly that conservative setup, and the
// instruction-level variant uses our fs crash estimates instead.
#pragma once

#include "baselines/pvf.h"
#include "core/sequence.h"
#include "ddg/ddg.h"

namespace trident::baselines {

class EpvfModel {
 public:
  EpvfModel(const ir::Module& module, const prof::Profile& profile);

  /// Per-instruction ePVF: PVF minus the modeled crash probability.
  double epvf(ir::InstRef ref) const;

  /// Execution-weighted overall ePVF using modeled crash probabilities.
  double overall() const;

  /// The paper's conservative setup: overall PVF minus the FI-measured
  /// crash probability of the program (clamped at 0).
  double overall_with_measured_crashes(double fi_crash_prob) const;

  /// The REAL ePVF crash model (Fang et al.): walk the full dynamic DDG
  /// forward from sampled dynamic instances of `ref`; a fault crashes if
  /// it reaches the address operand of a memory access and leaves the
  /// valid segments. This is the expensive component the paper replaced
  /// with FI-measured crash rates (§VII-C); bench/epvf_ddg measures why.
  double ddg_crash(const ddg::Ddg& graph, ir::InstRef ref,
                   uint32_t max_samples = 6,
                   uint32_t max_visited = 20000) const;

  /// Execution-weighted overall ePVF with the DDG crash model.
  double overall_with_ddg_crashes(const ddg::Ddg& graph) const;

  const PvfModel& pvf() const { return pvf_; }

 private:
  const ir::Module& module_;
  const prof::Profile& profile_;
  PvfModel pvf_;
  core::SequenceTracer tracer_;
};

}  // namespace trident::baselines
