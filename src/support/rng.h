// Deterministic pseudo-random number generation for reproducible
// experiments. All randomized components (fault-site sampling, bit
// selection, workload data generation, reservoir sampling) take an
// explicit Rng so that every campaign is replayable from a seed.
#pragma once

#include <cstdint>

namespace trident::support {

/// SplitMix64: used to seed and to derive independent streams.
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next();

 private:
  uint64_t state_;
};

/// Xoshiro256**: the workhorse generator. Small, fast, and good enough
/// statistical quality for Monte-Carlo fault sampling.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform over all 64-bit values.
  uint64_t next_u64();

  /// Uniform over [0, bound). bound must be nonzero. Uses rejection
  /// sampling (Lemire) to avoid modulo bias.
  uint64_t next_below(uint64_t bound);

  /// Uniform over [lo, hi] inclusive. Requires lo <= hi.
  int64_t next_range(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Derive an independent child stream; deterministic in (this, tag).
  Rng fork(uint64_t tag);

  /// Counter-based stream derivation: a generator whose state is a pure
  /// function of (seed, index), with no sequential dependence between
  /// indices. Parallel stages give work item i the stream (seed, i), so
  /// the values it draws are identical for any thread count, schedule,
  /// or work partitioning.
  static Rng stream(uint64_t seed, uint64_t index);

 private:
  uint64_t s_[4];
};

}  // namespace trident::support
