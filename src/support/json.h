// Minimal JSON: a recursive Value type, a strict parser, and a
// deterministic writer.
//
// The eval subsystem reads experiment specs and result-store cells and
// must emit byte-identical artifacts at any thread count, so the writer
// preserves object-member insertion order, prints doubles with %.17g
// (round-trip exact), and never emits locale-dependent formatting. The
// parser is strict UTF-8-agnostic RFC-ish JSON: it rejects trailing
// garbage, unterminated strings, and bad escapes, and reports the byte
// offset of the first error. No dependencies beyond the standard
// library — this repo builds against a bare toolchain.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace trident::support::json {

class Value;
using Member = std::pair<std::string, Value>;

/// A parsed JSON document node. Objects keep members in insertion
/// order (writer determinism) and are looked up linearly — specs and
/// cells have a handful of keys, so O(n) is the simple right choice.
class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() : kind_(Kind::Null) {}
  explicit Value(bool b) : kind_(Kind::Bool), bool_(b) {}
  explicit Value(double n) : kind_(Kind::Number), num_(n) {}
  explicit Value(uint64_t n)
      : kind_(Kind::Number), num_(static_cast<double>(n)), uint_(n),
        has_uint_(true) {}
  explicit Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

  static Value array() {
    Value v;
    v.kind_ = Kind::Array;
    return v;
  }
  static Value object() {
    Value v;
    v.kind_ = Kind::Object;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  bool as_bool() const { return bool_; }
  double as_double() const { return num_; }
  /// Exact unsigned value when the literal was a plain integer (no
  /// sign, fraction, or exponent); otherwise a truncation of the
  /// double. Counters (trial tallies, seeds) round-trip exactly.
  uint64_t as_uint() const {
    if (has_uint_) return uint_;
    return num_ > 0 ? static_cast<uint64_t>(num_) : 0;
  }
  /// True when the literal was a plain unsigned integer.
  bool is_exact_uint() const { return has_uint_; }
  const std::string& as_string() const { return str_; }
  const std::vector<Value>& items() const { return items_; }
  const std::vector<Member>& members() const { return members_; }

  /// Object member by key; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;

  // ---- Mutation (document construction) ------------------------------
  void push_back(Value v) { items_.push_back(std::move(v)); }
  void set(const std::string& key, Value v);

  // Typed convenience getters: member `key` coerced, or `fallback`.
  uint64_t get_uint(const std::string& key, uint64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;

  /// Compact single-line serialization (deterministic bytes).
  std::string write() const;
  /// Pretty serialization with two-space indentation (deterministic
  /// bytes); report artifacts use this so diffs stay readable.
  std::string write_pretty() const;

 private:
  void write_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0;
  uint64_t uint_ = 0;
  bool has_uint_ = false;
  std::string str_;
  std::vector<Value> items_;
  std::vector<Member> members_;
};

struct ParseError {
  size_t offset = 0;
  std::string message;
};

/// Parses one JSON document; trailing non-whitespace is an error.
std::optional<Value> parse(const std::string& text, ParseError* error);

/// Appends `s` as a quoted JSON string with the mandatory escapes.
void append_quoted(std::string& out, const std::string& s);

}  // namespace trident::support::json
