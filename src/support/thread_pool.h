// Work-stealing thread pool shared by every parallel stage (FI
// campaigns, the per-instruction TRIDENT sweep, scalability benches).
//
// Design constraints, in order:
//   1. Determinism is the caller's job and the pool must not get in the
//      way: parallel_for hands out index ranges from an atomic counter
//      and callers write results to their own slot, so the outcome of a
//      parallel stage never depends on the schedule.
//   2. Nested use must not deadlock: a task running on a pool worker may
//      itself call submit() or parallel_for(). Workers push nested tasks
//      onto their own deque (LIFO), idle workers steal from the other
//      end, and a thread waiting inside parallel_for() keeps executing
//      queued tasks instead of blocking.
//   3. Exceptions propagate: submit() returns a future that rethrows;
//      parallel_for() rethrows the first body exception on the calling
//      thread after the loop quiesces.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace trident::support {

class ThreadPool {
 public:
  /// 0 = one worker per hardware thread.
  explicit ThreadPool(uint32_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t size() const { return static_cast<uint32_t>(workers_.size()); }

  /// Runs `fn` on a worker; the future rethrows anything `fn` throws.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Calls body(i) for every i in [0, n) exactly once. The calling
  /// thread participates, so `max_workers` is the total concurrency cap
  /// (0 = pool size + 1). Indices are handed out in chunks of `grain`
  /// (0 = auto). Blocks until every index ran; rethrows the first body
  /// exception (remaining chunks are then abandoned, but every chunk
  /// already started still completes).
  void parallel_for(uint64_t n, const std::function<void(uint64_t)>& body,
                    uint32_t max_workers = 0, uint64_t grain = 0);

  /// Process-wide pool, created on first use with default_threads()
  /// workers. All library-level parallelism (campaigns, sweeps) runs
  /// here so thread creation is paid once per process.
  static ThreadPool& global();

  /// Default worker count: TRIDENT_THREADS env var if set and nonzero,
  /// else hardware_concurrency (at least 1).
  static uint32_t default_threads();

  /// Lifetime instrumentation for the obs run manifest: tasks executed
  /// through run_one, and how many of those were stolen from another
  /// worker's deque (a load-balance signal for the scaling benches).
  uint64_t tasks_run() const {
    return tasks_run_.load(std::memory_order_relaxed);
  }
  uint64_t tasks_stolen() const {
    return tasks_stolen_.load(std::memory_order_relaxed);
  }

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void enqueue(std::function<void()> task);
  /// Runs one queued task if any is available (own deque LIFO first,
  /// then steals FIFO from the others). Returns false when idle.
  bool run_one(uint32_t home);
  void worker_loop(uint32_t id);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex sleep_mutex_;
  std::condition_variable wake_;
  std::atomic<uint64_t> pending_{0};
  std::atomic<uint64_t> next_queue_{0};
  std::atomic<uint64_t> tasks_run_{0};
  std::atomic<uint64_t> tasks_stolen_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace trident::support
