#include "support/rng.h"

#include <bit>

namespace trident::support {

uint64_t SplitMix64::next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // Avoid the all-zero state, which is a fixed point of xoshiro.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::next_u64() {
  const uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

uint64_t Rng::next_below(uint64_t bound) {
  // Lemire's nearly-divisionless method.
  uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    const uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::next_range(int64_t lo, int64_t hi) {
  const auto span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::stream(uint64_t seed, uint64_t index) {
  // Two SplitMix rounds over (seed, index): the first decorrelates the
  // seed, the second folds in the counter scaled by an odd constant so
  // adjacent indices land in unrelated states. The Rng constructor runs
  // a further SplitMix expansion to fill the 256-bit state.
  SplitMix64 outer(seed);
  SplitMix64 inner(outer.next() ^
                   (index * 0xd1342543de82ef95ULL + 0x9e3779b97f4a7c15ULL));
  return Rng(inner.next());
}

Rng Rng::fork(uint64_t tag) {
  // Mix the stream state with the tag through SplitMix to decorrelate.
  SplitMix64 sm(next_u64() ^ (tag * 0x9e3779b97f4a7c15ULL));
  return Rng(sm.next());
}

}  // namespace trident::support
