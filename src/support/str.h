// Small string/formatting helpers used by the IR printer and the
// benchmark harnesses (fixed-width tables, percentage formatting).
#pragma once

#include <string>
#include <vector>

namespace trident::support {

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Format a probability as a percentage with two decimals, e.g. "13.59%".
std::string pct(double p);

/// Left-pad/right-pad to a column width (truncates if longer).
std::string pad_right(const std::string& s, size_t width);
std::string pad_left(const std::string& s, size_t width);

/// Join strings with a separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

}  // namespace trident::support
