// Small string/formatting helpers used by the IR printer and the
// benchmark harnesses (fixed-width tables, percentage formatting), plus
// the repo-standard cheap stable hash.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace trident::support {

/// FNV-1a 64-bit. The stable content hash behind the eval result
/// store's file names and the native backend's compiled-object cache —
/// stable across platforms and processes, never used where collision
/// resistance matters (both callers re-validate the full key).
uint64_t fnv1a64(std::string_view s);

/// fnv1a64 rendered as 16 lowercase hex digits (the on-disk spelling).
std::string fnv1a64_hex(std::string_view s);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Format a probability as a percentage with two decimals, e.g. "13.59%".
std::string pct(double p);

/// Left-pad/right-pad to a column width (truncates if longer).
std::string pad_right(const std::string& s, size_t width);
std::string pad_left(const std::string& s, size_t width);

/// Join strings with a separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

}  // namespace trident::support
