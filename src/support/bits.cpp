#include "support/bits.h"

#include <bit>
#include <cstring>

namespace trident::support {

uint64_t low_mask(unsigned bits) {
  return bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
}

uint64_t flip_bit(uint64_t value, unsigned bit, unsigned bits) {
  return (value ^ (1ULL << bit)) & low_mask(bits);
}

int64_t sign_extend(uint64_t value, unsigned bits) {
  if (bits >= 64) return static_cast<int64_t>(value);
  const uint64_t m = 1ULL << (bits - 1);
  value &= low_mask(bits);
  return static_cast<int64_t>((value ^ m) - m);
}

uint64_t truncate(uint64_t value, unsigned bits) {
  return value & low_mask(bits);
}

unsigned popcount_low(uint64_t value, unsigned bits) {
  return static_cast<unsigned>(std::popcount(value & low_mask(bits)));
}

double bits_to_f64(uint64_t raw) {
  double v;
  std::memcpy(&v, &raw, sizeof v);
  return v;
}

uint64_t f64_to_bits(double v) {
  uint64_t raw;
  std::memcpy(&raw, &v, sizeof v);
  return raw;
}

float bits_to_f32(uint64_t raw) {
  const auto r32 = static_cast<uint32_t>(raw);
  float v;
  std::memcpy(&v, &r32, sizeof v);
  return v;
}

uint64_t f32_to_bits(float v) {
  uint32_t raw;
  std::memcpy(&raw, &v, sizeof v);
  return raw;
}

}  // namespace trident::support
