// Bit-level helpers shared by the fault injector and the fs sub-model.
// All register values in the interpreter are stored as raw 64-bit
// payloads; these utilities manipulate them at a declared bit width.
#pragma once

#include <cstdint>

namespace trident::support {

/// Mask covering the low `bits` bits (bits in [1,64]).
uint64_t low_mask(unsigned bits);

/// Flip bit `bit` of `value`, keeping only `bits` significant bits.
uint64_t flip_bit(uint64_t value, unsigned bit, unsigned bits);

/// Sign-extend the low `bits` bits of `value` to 64 bits.
int64_t sign_extend(uint64_t value, unsigned bits);

/// Truncate to `bits` bits (zero high bits).
uint64_t truncate(uint64_t value, unsigned bits);

/// Number of set bits among the low `bits` bits.
unsigned popcount_low(uint64_t value, unsigned bits);

/// Reinterpret helpers between raw payloads and IEEE floats.
double bits_to_f64(uint64_t raw);
uint64_t f64_to_bits(double v);
float bits_to_f32(uint64_t raw);
uint64_t f32_to_bits(float v);

}  // namespace trident::support
