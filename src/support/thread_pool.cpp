#include "support/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace trident::support {

namespace {

// Identifies the pool (and home queue) of the current thread so nested
// submits land on the submitting worker's own deque.
thread_local ThreadPool* tl_pool = nullptr;
thread_local uint32_t tl_home = 0;

}  // namespace

uint32_t ThreadPool::default_threads() {
  if (const char* env = std::getenv("TRIDENT_THREADS")) {
    const auto v = std::strtoul(env, nullptr, 10);
    if (v > 0) return static_cast<uint32_t>(v);
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_threads());
  return pool;
}

ThreadPool::ThreadPool(uint32_t threads) {
  const uint32_t n =
      threads > 0 ? threads : std::max(1u, std::thread::hardware_concurrency());
  queues_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(sleep_mutex_);
    stop_.store(true);
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  Queue* queue;
  if (tl_pool == this) {
    queue = queues_[tl_home].get();
  } else {
    queue = queues_[next_queue_.fetch_add(1, std::memory_order_relaxed) %
                    queues_.size()]
                .get();
  }
  {
    std::lock_guard lock(queue->mutex);
    queue->tasks.push_back(std::move(task));
  }
  {
    // The increment is fenced by sleep_mutex_ so a worker that just saw
    // pending_ == 0 under the same mutex cannot miss the notify.
    std::lock_guard lock(sleep_mutex_);
    pending_.fetch_add(1, std::memory_order_relaxed);
  }
  wake_.notify_one();
}

bool ThreadPool::run_one(uint32_t home) {
  std::function<void()> task;
  {
    Queue& queue = *queues_[home];
    std::lock_guard lock(queue.mutex);
    if (!queue.tasks.empty()) {
      task = std::move(queue.tasks.back());
      queue.tasks.pop_back();
    }
  }
  for (uint32_t i = 1; !task && i < queues_.size(); ++i) {
    Queue& victim = *queues_[(home + i) % queues_.size()];
    std::lock_guard lock(victim.mutex);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (!task) return false;
  pending_.fetch_sub(1, std::memory_order_relaxed);
  tasks_run_.fetch_add(1, std::memory_order_relaxed);
  task();
  return true;
}

void ThreadPool::worker_loop(uint32_t id) {
  tl_pool = this;
  tl_home = id;
  while (true) {
    if (run_one(id)) continue;
    std::unique_lock lock(sleep_mutex_);
    wake_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             pending_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_.load(std::memory_order_relaxed) &&
        pending_.load(std::memory_order_relaxed) == 0) {
      return;
    }
  }
}

void ThreadPool::parallel_for(uint64_t n,
                              const std::function<void(uint64_t)>& body,
                              uint32_t max_workers, uint64_t grain) {
  if (n == 0) return;
  const uint32_t cap = max_workers == 0 ? size() + 1 : max_workers;
  if (cap <= 1 || n == 1) {
    for (uint64_t i = 0; i < n; ++i) body(i);
    return;
  }
  if (grain == 0) {
    grain = std::max<uint64_t>(1, n / (static_cast<uint64_t>(cap) * 8));
  }

  struct State {
    std::atomic<uint64_t> next{0};
    std::atomic<uint32_t> helpers{0};
    std::atomic<bool> failed{false};
    std::mutex mutex;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  const auto work = [state, n, grain, body_ptr = &body] {
    while (!state->failed.load(std::memory_order_relaxed)) {
      const uint64_t begin = state->next.fetch_add(grain);
      if (begin >= n) break;
      const uint64_t end = std::min(n, begin + grain);
      try {
        for (uint64_t i = begin; i < end; ++i) (*body_ptr)(i);
      } catch (...) {
        std::lock_guard lock(state->mutex);
        if (!state->error) state->error = std::current_exception();
        state->failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  const uint64_t chunks = (n + grain - 1) / grain;
  const uint32_t spawn = static_cast<uint32_t>(std::min<uint64_t>(
      {static_cast<uint64_t>(cap) - 1, size(), chunks - 1}));
  for (uint32_t i = 0; i < spawn; ++i) {
    state->helpers.fetch_add(1, std::memory_order_relaxed);
    enqueue([state, work] {
      work();
      state->helpers.fetch_sub(1, std::memory_order_release);
    });
  }
  work();  // the calling thread takes chunks too
  // Helpers still running hold pointers into this frame: wait for them,
  // but keep draining the pool meanwhile so nested parallel_for calls
  // (a task spawning its own loop) cannot deadlock.
  const uint32_t home = tl_pool == this ? tl_home : 0;
  while (state->helpers.load(std::memory_order_acquire) != 0) {
    if (!run_one(home)) std::this_thread::yield();
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace trident::support
