#include "support/str.h"

#include <cstdarg>
#include <cstdio>

namespace trident::support {

uint64_t fnv1a64(std::string_view s) {
  uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string fnv1a64_hex(std::string_view s) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a64(s)));
  return buf;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string pct(double p) { return format("%.2f%%", p * 100.0); }

std::string pad_right(const std::string& s, size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return s + std::string(width - s.size(), ' ');
}

std::string pad_left(const std::string& s, size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return std::string(width - s.size(), ' ') + s;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace trident::support
