#include "support/json.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace trident::support::json {

const Value* Value::find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Value::set(const std::string& key, Value v) {
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

uint64_t Value::get_uint(const std::string& key, uint64_t fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_number() ? v->as_uint() : fallback;
}

double Value::get_double(const std::string& key, double fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_number() ? v->as_double() : fallback;
}

bool Value::get_bool(const std::string& key, bool fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

std::string Value::get_string(const std::string& key,
                              const std::string& fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

namespace {

void append_number(std::string& out, const Value& v) {
  // Integers are written as integers so counters survive round-trips
  // without a ".0" suffix; everything else uses %.17g (round-trip
  // exact for doubles).
  const double d = v.as_double();
  const bool integral =
      d >= 0 && d < 18446744073709551616.0 && std::floor(d) == d;
  if (v.is_exact_uint() || integral) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v.as_uint());
    out += buf;
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

void append_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::write_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Number: append_number(out, *this); break;
    case Kind::String: append_quoted(out, str_); break;
    case Kind::Array: {
      out += '[';
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += indent > 0 ? "," : ", ";
        append_indent(out, indent, depth + 1);
        items_[i].write_to(out, indent, depth + 1);
      }
      if (!items_.empty()) append_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::Object: {
      out += '{';
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += indent > 0 ? "," : ", ";
        append_indent(out, indent, depth + 1);
        append_quoted(out, members_[i].first);
        out += ": ";
        members_[i].second.write_to(out, indent, depth + 1);
      }
      if (!members_.empty()) append_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Value::write() const {
  std::string out;
  write_to(out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string Value::write_pretty() const {
  std::string out;
  write_to(out, /*indent=*/2, /*depth=*/0);
  out += '\n';
  return out;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, ParseError* error)
      : text_(text), error_(error) {}

  std::optional<Value> run() {
    skip_ws();
    Value v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after JSON document");
    }
    return v;
  }

 private:
  std::nullopt_t fail(const std::string& message) {
    if (error_ != nullptr && error_->message.empty()) {
      error_->offset = pos_;
      error_->message = message;
    }
    return std::nullopt;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool parse_value(Value& out) {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Value(std::move(s));
        return true;
      }
      case 't':
        if (!literal("true")) { fail("bad literal"); return false; }
        out = Value(true);
        return true;
      case 'f':
        if (!literal("false")) { fail("bad literal"); return false; }
        out = Value(false);
        return true;
      case 'n':
        if (!literal("null")) { fail("bad literal"); return false; }
        out = Value();
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_number(Value& out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool plain_uint = start == pos_;  // no sign so far
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      fail("invalid number");
      return false;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      plain_uint = false;
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digit required after decimal point");
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      plain_uint = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digit required in exponent");
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (plain_uint) {
      errno = 0;
      char* end = nullptr;
      const uint64_t u = std::strtoull(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        out = Value(u);
        return true;
      }
    }
    out = Value(std::strtod(token.c_str(), nullptr));
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return false;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + i];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("bad hex digit in \\u escape");
                return false;
              }
            }
            pos_ += 4;
            // UTF-8 encode the BMP code point (manifests only carry
            // control characters here; surrogate pairs unsupported).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("unknown escape");
            return false;
        }
        continue;
      }
      out += c;
      ++pos_;
    }
    fail("unterminated string");
    return false;
  }

  bool parse_array(Value& out) {
    out = Value::array();
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Value item;
      skip_ws();
      if (!parse_value(item)) return false;
      out.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) {
        fail("unterminated array");
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      fail("expected ',' or ']' in array");
      return false;
    }
  }

  bool parse_object(Value& out) {
    out = Value::object();
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected string key in object");
        return false;
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        fail("expected ':' after object key");
        return false;
      }
      ++pos_;
      skip_ws();
      Value item;
      if (!parse_value(item)) return false;
      out.set(key, std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) {
        fail("unterminated object");
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      fail("expected ',' or '}' in object");
      return false;
    }
  }

  const std::string& text_;
  ParseError* error_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<Value> parse(const std::string& text, ParseError* error) {
  return Parser(text, error).run();
}

}  // namespace trident::support::json
