#include "fuzz/generator.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <string>
#include <vector>

#include "ir/builder.h"
#include "support/bits.h"
#include "support/rng.h"

namespace trident::fuzz {

namespace {

using ir::CmpPred;
using ir::Opcode;
using ir::Type;
using ir::Value;

// Integer widths the generator mixes; index into the per-width pools.
constexpr unsigned kIntWidths[4] = {8, 16, 32, 64};

struct ArrayInfo {
  Value ptr;
  Type elem;
  uint32_t elems = 0;  // power of two, so `and` masks indices in-bounds
};

class Gen {
 public:
  Gen(ir::Module& module, uint64_t seed, const GenOptions& opt)
      : b_(module), rng_(support::Rng::stream(seed, 0)), opt_(opt) {}

  void run() {
    if (opt_.with_helper && rng_.next_bool(0.7)) emit_helper();
    emit_main();
  }

 private:
  // ---- Random pick helpers ----------------------------------------------

  unsigned pick_width_index() {
    const uint64_t k = rng_.next_below(100);
    return k < 15 ? 0 : k < 35 ? 1 : k < 75 ? 2 : 3;
  }

  // An "interesting" constant: boundary values dominate because they are
  // where shift/division/carry transfer bugs live.
  Value const_of(unsigned wi) {
    const unsigned w = kIntWidths[wi];
    const Type t = Type::i(w);
    switch (rng_.next_below(8)) {
      case 0: return b_.const_int(t, 0);
      case 1: return b_.const_int(t, 1);
      case 2: return b_.const_int(t, support::low_mask(w));        // -1
      case 3: return b_.const_int(t, 1ULL << (w - 1));             // min
      case 4: return b_.const_int(t, (1ULL << (w - 1)) - 1);       // max
      case 5: return b_.const_int(t, rng_.next_below(w + 3));      // shiftish
      default: return b_.const_int(t, rng_.next_u64());            // masked by
    }                                                              // low bits
  }

  Value pick_int(unsigned wi) {
    auto& pool = ints_[wi];
    if (!pool.empty() && rng_.next_below(100) < 80) {
      return pool[rng_.next_below(pool.size())];
    }
    return const_of(wi);
  }

  Value pick_float(unsigned fi) {
    auto& pool = floats_[fi];
    if (!pool.empty() && rng_.next_below(100) < 75) {
      return pool[rng_.next_below(pool.size())];
    }
    const double v = (static_cast<double>(rng_.next_range(-1000, 1000)) +
                      static_cast<double>(rng_.next_below(16)) / 16.0);
    return fi == 0 ? b_.f32(static_cast<float>(v)) : b_.f64(v);
  }

  Value pick_bool() {
    if (!bools_.empty() && rng_.next_below(100) < 80) {
      return bools_[rng_.next_below(bools_.size())];
    }
    return b_.i1(rng_.next_bool(0.5));
  }

  void push_int(unsigned wi, Value v) { ints_[wi].push_back(v); }

  CmpPred pick_icmp_pred() {
    static constexpr CmpPred kPreds[] = {
        CmpPred::Eq,  CmpPred::Ne,  CmpPred::SLt, CmpPred::SLe,
        CmpPred::SGt, CmpPred::SGe, CmpPred::ULt, CmpPred::ULe,
        CmpPred::UGt, CmpPred::UGe};
    return kPreds[rng_.next_below(10)];
  }

  CmpPred pick_fcmp_pred() {
    static constexpr CmpPred kPreds[] = {CmpPred::Eq,  CmpPred::Ne,
                                         CmpPred::SLt, CmpPred::SLe,
                                         CmpPred::SGt, CmpPred::SGe};
    return kPreds[rng_.next_below(6)];
  }

  // A divisor that cannot trap: nonzero for unsigned, and additionally
  // positive for signed (ruling out both /0 and INT_MIN / -1).
  Value safe_divisor(unsigned wi, bool is_signed) {
    const unsigned w = kIntWidths[wi];
    Value d = pick_int(wi);
    if (is_signed) {
      d = b_.and_(d, b_.const_int(Type::i(w), (1ULL << (w - 1)) - 1));
    }
    return b_.or_(d, b_.const_int(Type::i(w), 1));
  }

  // ---- Expression statements --------------------------------------------

  void expr_int_arith() {
    const unsigned wi = pick_width_index();
    static constexpr Opcode kOps[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                                      Opcode::And, Opcode::Or,  Opcode::Xor};
    push_int(wi, b_.binop(kOps[rng_.next_below(6)], pick_int(wi),
                          pick_int(wi)));
  }

  void expr_shift() {
    const unsigned wi = pick_width_index();
    const unsigned w = kIntWidths[wi];
    static constexpr Opcode kOps[] = {Opcode::Shl, Opcode::LShr,
                                      Opcode::AShr};
    // Half the amounts are boundary constants (0, w-1, w, w+1, 63): the
    // mod-width semantics is exactly where engines and the known-bits
    // transfers can disagree.
    Value amount;
    if (rng_.next_bool(0.5)) {
      const uint64_t picks[] = {0, 1, w - 1, w, w + 1, 63};
      amount = b_.const_int(Type::i(w), picks[rng_.next_below(6)]);
    } else {
      amount = pick_int(wi);
    }
    push_int(wi, b_.binop(kOps[rng_.next_below(3)], pick_int(wi), amount));
  }

  void expr_division() {
    const unsigned wi = pick_width_index();
    static constexpr Opcode kOps[] = {Opcode::UDiv, Opcode::URem,
                                      Opcode::SDiv, Opcode::SRem};
    const unsigned k = static_cast<unsigned>(rng_.next_below(4));
    push_int(wi, b_.binop(kOps[k], pick_int(wi), safe_divisor(wi, k >= 2)));
  }

  void expr_cmp() {
    if (rng_.next_bool(0.75)) {
      const unsigned wi = pick_width_index();
      bools_.push_back(
          b_.icmp(pick_icmp_pred(), pick_int(wi), pick_int(wi)));
    } else {
      const unsigned fi = static_cast<unsigned>(rng_.next_below(2));
      bools_.push_back(
          b_.fcmp(pick_fcmp_pred(), pick_float(fi), pick_float(fi)));
    }
  }

  void expr_select() {
    const unsigned wi = pick_width_index();
    push_int(wi, b_.select(pick_bool(), pick_int(wi), pick_int(wi)));
  }

  void expr_cast() {
    switch (rng_.next_below(6)) {
      case 0: {  // int -> wider int
        const unsigned from = static_cast<unsigned>(rng_.next_below(3));
        const unsigned to =
            from + 1 + static_cast<unsigned>(rng_.next_below(3 - from));
        const Value v = pick_int(from);
        const Type t = Type::i(kIntWidths[to]);
        push_int(to, rng_.next_bool(0.5) ? b_.zext(v, t) : b_.sext(v, t));
        break;
      }
      case 1: {  // int -> narrower int
        const unsigned from =
            1 + static_cast<unsigned>(rng_.next_below(3));
        const unsigned to = static_cast<unsigned>(rng_.next_below(from));
        push_int(to, b_.trunc(pick_int(from), Type::i(kIntWidths[to])));
        break;
      }
      case 2: {  // same-width int <-> float reinterpret
        if (rng_.next_bool(0.5)) {
          const unsigned fi = static_cast<unsigned>(rng_.next_below(2));
          const unsigned wi = fi == 0 ? 2 : 3;
          floats_[fi].push_back(b_.bitcast(
              pick_int(wi), fi == 0 ? Type::f32() : Type::f64()));
        } else {
          const unsigned fi = static_cast<unsigned>(rng_.next_below(2));
          const unsigned wi = fi == 0 ? 2 : 3;
          push_int(wi, b_.bitcast(pick_float(fi), Type::i(kIntWidths[wi])));
        }
        break;
      }
      case 3: {  // float -> signed int (saturating, cannot trap)
        const unsigned wi = 2 + static_cast<unsigned>(rng_.next_below(2));
        push_int(wi, b_.fptosi(pick_float(rng_.next_below(2) != 0),
                               Type::i(kIntWidths[wi])));
        break;
      }
      case 4: {  // signed int -> float
        const unsigned wi = pick_width_index();
        const unsigned fi = static_cast<unsigned>(rng_.next_below(2));
        floats_[fi].push_back(b_.sitofp(
            pick_int(wi), fi == 0 ? Type::f32() : Type::f64()));
        break;
      }
      default: {  // f32 <-> f64
        if (rng_.next_bool(0.5)) {
          floats_[1].push_back(b_.fpext(pick_float(0)));
        } else {
          floats_[0].push_back(b_.fptrunc(pick_float(1)));
        }
        break;
      }
    }
  }

  void expr_float_arith() {
    const unsigned fi = static_cast<unsigned>(rng_.next_below(2));
    static constexpr Opcode kOps[] = {Opcode::FAdd, Opcode::FSub,
                                      Opcode::FMul, Opcode::FDiv};
    floats_[fi].push_back(b_.binop(kOps[rng_.next_below(4)], pick_float(fi),
                                   pick_float(fi)));
  }

  // In-bounds element pointer of a random array: index is masked with
  // elems-1 (elems is a power of two).
  Value array_elem_ptr(const ArrayInfo& arr) {
    const Value idx =
        b_.and_(pick_int(2), b_.i32(static_cast<int32_t>(arr.elems - 1)));
    return b_.gep(arr.ptr, idx, arr.elem.store_size());
  }

  void expr_memory() {
    if (arrays_.empty()) return expr_int_arith();
    const auto& arr = arrays_[rng_.next_below(arrays_.size())];
    const Value ptr = array_elem_ptr(arr);
    if (rng_.next_bool(0.45)) {  // load
      const Value v = b_.load(arr.elem, ptr);
      if (arr.elem.is_float()) {
        floats_[arr.elem.width() == 32 ? 0 : 1].push_back(v);
      } else {
        push_int(width_index(arr.elem.width()), v);
      }
    } else {  // store
      b_.store(value_of_type(arr.elem), ptr);
    }
  }

  void expr_memcpy() {
    if (arrays_.empty()) return expr_int_arith();
    const auto& dst = arrays_[rng_.next_below(arrays_.size())];
    const auto& src = arrays_[rng_.next_below(arrays_.size())];
    const uint64_t bytes =
        std::min<uint64_t>(dst.elems * dst.elem.store_size(),
                           src.elems * src.elem.store_size());
    b_.memcpy_(dst.ptr, src.ptr, bytes);
  }

  void expr_call() {
    if (!helper_) return expr_int_arith();
    push_int(2, b_.call(*helper_, {pick_int(2), pick_int(2)}));
  }

  void expr_print() {
    if (rng_.next_bool(0.6)) {
      const unsigned wi = pick_width_index();
      if (rng_.next_bool(0.5)) {
        b_.print_int(pick_int(wi));
      } else {
        b_.print_uint(pick_int(wi));
      }
    } else {
      const unsigned precs[] = {3, 6, 9};
      b_.print_float(pick_float(rng_.next_below(2) != 0),
                     precs[rng_.next_below(3)]);
    }
  }

  void expr() {
    const uint64_t k = rng_.next_below(100);
    if (k < 10) expr_memory();
    else if (k < 13) expr_memcpy();
    else if (k < 21) expr_cmp();
    else if (k < 31) expr_cast();
    else if (k < 42) expr_shift();
    else if (k < 52) expr_division();
    else if (k < 58) expr_select();
    else if (k < 62) expr_call();
    else if (k < 67) expr_print();
    else if (k < 80) expr_float_arith();
    else expr_int_arith();
  }

  // ---- Regions -----------------------------------------------------------

  struct PoolSnapshot {
    size_t ints[4];
    size_t floats[2];
    size_t bools;
  };

  PoolSnapshot snapshot() const {
    PoolSnapshot s{};
    for (int i = 0; i < 4; ++i) s.ints[i] = ints_[i].size();
    for (int i = 0; i < 2; ++i) s.floats[i] = floats_[i].size();
    s.bools = bools_.size();
    return s;
  }

  // Drops every value defined since `s`: they live in blocks that do not
  // dominate the code that follows the region.
  void restore(const PoolSnapshot& s) {
    for (int i = 0; i < 4; ++i) ints_[i].resize(s.ints[i]);
    for (int i = 0; i < 2; ++i) floats_[i].resize(s.floats[i]);
    bools_.resize(s.bools);
  }

  void region_straightline() {
    for (uint32_t i = 0; i < opt_.exprs_per_region; ++i) expr();
  }

  void region_diamond() {
    const Value cond = pick_bool();
    const uint32_t bt = b_.block("then");
    const uint32_t be = b_.block("else");
    const uint32_t bm = b_.block("merge");
    b_.cond_br(cond, bt, be);
    const auto before = snapshot();
    const unsigned wi = pick_width_index();

    b_.set_block(bt);
    for (uint32_t i = 0; i < opt_.exprs_per_region / 2; ++i) expr();
    const Value vt = pick_int(wi);
    b_.br(bm);
    restore(before);

    b_.set_block(be);
    for (uint32_t i = 0; i < opt_.exprs_per_region / 2; ++i) expr();
    const Value ve = pick_int(wi);
    b_.br(bm);
    restore(before);

    b_.set_block(bm);
    const Value merged = b_.phi(Type::i(kIntWidths[wi]), "merge");
    b_.add_phi_incoming(merged, vt, bt);
    b_.add_phi_incoming(merged, ve, be);
    push_int(wi, merged);
  }

  // Self-loop: one header block that branches back to itself. Everything
  // defined in the header dominates the exit, so the pools keep it all.
  void region_loop_selfshape() {
    const int64_t trip = rng_.next_range(2, opt_.max_loop_trip);
    const unsigned wi = pick_width_index();
    const Value init = pick_int(wi);
    const uint32_t pre = b_.current_block();
    const uint32_t header = b_.block("loop");
    const uint32_t exit = b_.block("exit");
    b_.br(header);

    b_.set_block(header);
    const Value iphi = b_.phi(Type::i32(), "i");
    const Value acc = b_.phi(Type::i(kIntWidths[wi]), "acc");
    push_int(2, iphi);
    push_int(wi, acc);
    for (uint32_t i = 0; i < opt_.exprs_per_region; ++i) expr();
    const Value acc_next = pick_int(wi);
    const Value i_next = b_.add(iphi, b_.i32(1));
    const Value cont = b_.icmp(CmpPred::SLt, i_next,
                               b_.i32(static_cast<int32_t>(trip)));
    b_.cond_br(cont, header, exit);
    b_.add_phi_incoming(iphi, b_.i32(0), pre);
    b_.add_phi_incoming(iphi, i_next, header);
    b_.add_phi_incoming(acc, init, pre);
    b_.add_phi_incoming(acc, acc_next, header);

    b_.set_block(exit);
    push_int(wi, acc);
  }

  // While-shape: header tests first, a separate body branches back. Body
  // definitions do NOT dominate the exit, so the pools are restored.
  void region_loop_whileshape() {
    const int64_t trip = rng_.next_range(1, opt_.max_loop_trip);
    const uint32_t pre = b_.current_block();
    const uint32_t header = b_.block("while");
    const uint32_t body = b_.block("body");
    const uint32_t exit = b_.block("endwhile");
    b_.br(header);

    b_.set_block(header);
    const Value iphi = b_.phi(Type::i32(), "i");
    const Value cont = b_.icmp(CmpPred::SLt, iphi,
                               b_.i32(static_cast<int32_t>(trip)));
    b_.cond_br(cont, body, exit);

    const auto before = snapshot();
    b_.set_block(body);
    push_int(2, iphi);
    for (uint32_t i = 0; i < opt_.exprs_per_region; ++i) expr();
    const Value i_next = b_.add(iphi, b_.i32(1));
    b_.br(header);
    restore(before);
    b_.add_phi_incoming(iphi, b_.i32(0), pre);
    b_.add_phi_incoming(iphi, i_next, body);

    b_.set_block(exit);
  }

  // ---- Functions ---------------------------------------------------------

  void emit_helper() {
    helper_ = b_.begin_function("helper", {Type::i32(), Type::i32()},
                                Type::i32());
    b_.set_block(b_.block("entry"));
    Value v = b_.xor_(b_.arg(0), b_.arg(1));
    for (uint32_t i = 0, n = 2 + static_cast<uint32_t>(rng_.next_below(4));
         i < n; ++i) {
      static constexpr Opcode kOps[] = {Opcode::Add, Opcode::Mul,
                                        Opcode::And, Opcode::Xor,
                                        Opcode::Shl, Opcode::LShr};
      const Value rhs = rng_.next_bool(0.5)
                            ? b_.arg(rng_.next_below(2) ? 1 : 0)
                            : b_.i32(static_cast<int32_t>(rng_.next_u64()));
      v = b_.binop(kOps[rng_.next_below(6)], v, rhs);
    }
    if (rng_.next_bool(0.5)) {
      v = b_.udiv(v, b_.or_(b_.arg(1), b_.i32(1)));
    }
    b_.ret(v);
    b_.end_function();
  }

  unsigned width_index(unsigned w) const {
    return w == 8 ? 0 : w == 16 ? 1 : w == 32 ? 2 : 3;
  }

  Value value_of_type(Type t) {
    if (t.is_float()) return pick_float(t.width() == 32 ? 0 : 1);
    return pick_int(width_index(t.width()));
  }

  void emit_main() {
    b_.begin_function("main", {}, Type::void_());
    b_.set_block(b_.block("entry"));

    // Memory arena: a few small arrays, partially initialized. Allocas
    // live only in the entry block so loops do not grow the heap.
    const uint32_t n_arrays =
        1 + static_cast<uint32_t>(rng_.next_below(opt_.max_arrays));
    for (uint32_t i = 0; i < n_arrays; ++i) {
      const Type kElems[] = {Type::i8(),  Type::i16(), Type::i32(),
                             Type::i64(), Type::f32(), Type::f64()};
      ArrayInfo arr;
      arr.elem = kElems[rng_.next_below(6)];
      arr.elems = 4u << rng_.next_below(3);  // 4, 8 or 16 elements
      arr.ptr = b_.alloca_(arr.elems * arr.elem.store_size(), "arr");
      arrays_.push_back(arr);
      for (uint32_t k = 0, n = 1 + static_cast<uint32_t>(rng_.next_below(3));
           k < n; ++k) {
        const Value ptr =
            b_.gep(arr.ptr, b_.i32(static_cast<int32_t>(
                                rng_.next_below(arr.elems))),
                   arr.elem.store_size());
        b_.store(value_of_type(arr.elem), ptr);
      }
    }
    for (uint32_t i = 0; i < opt_.exprs_per_region; ++i) expr();

    for (uint32_t r = 0; r < opt_.regions; ++r) {
      switch (rng_.next_below(4)) {
        case 0: region_straightline(); break;
        case 1: region_diamond(); break;
        case 2: region_loop_selfshape(); break;
        default: region_loop_whileshape(); break;
      }
    }

    // Epilogue: print live values of every flavour — the output roots
    // SDC classification and the demanded-bits analysis key off.
    for (unsigned wi = 0; wi < 4; ++wi) {
      if (!ints_[wi].empty()) b_.print_int(ints_[wi].back());
    }
    for (unsigned fi = 0; fi < 2; ++fi) {
      if (!floats_[fi].empty()) b_.print_float(floats_[fi].back());
    }
    if (!arrays_.empty()) {
      const auto& arr = arrays_.back();
      const Value v = b_.load(arr.elem, array_elem_ptr(arr));
      if (arr.elem.is_float()) {
        b_.print_float(v);
      } else {
        b_.print_uint(v);
      }
    }
    // Unconditional checksum print: the output stream is never empty.
    b_.print_int(pick_int(2));
    b_.ret();
    b_.end_function();
  }

  ir::IRBuilder b_;
  support::Rng rng_;
  GenOptions opt_;
  std::vector<Value> ints_[4];
  std::vector<Value> floats_[2];
  std::vector<Value> bools_;
  std::vector<ArrayInfo> arrays_;
  std::optional<uint32_t> helper_;
};

}  // namespace

ir::Module generate_program(uint64_t seed, const GenOptions& options) {
  ir::Module module;
  module.name = "fuzz_" + std::to_string(seed);
  Gen(module, seed, options).run();
  return module;
}

}  // namespace trident::fuzz
