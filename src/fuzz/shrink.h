// Delta-debugging-style module reduction for fuzzer divergences.
//
// Given a failing module and a predicate ("does this module still
// exhibit the divergence?"), shrink_module greedily tries instruction-
// level reductions — deleting dead instructions, replacing a result
// with a zero constant and deleting its definition — and keeps every
// candidate that (1) still verifies and (2) still fails. The result is
// the smallest module the pass set reaches, suitable for committing to
// tests/fuzz_corpus/. Deterministic: candidates are tried in a fixed
// order, so the same input and predicate always shrink to the same
// module.
#pragma once

#include <cstdint>
#include <functional>

#include "ir/module.h"

namespace trident::fuzz {

struct ShrinkOptions {
  uint32_t max_rounds = 6;      // full passes over the module
  uint64_t max_attempts = 4000; // predicate evaluations (they run FI)
};

using ShrinkPredicate = std::function<bool(const ir::Module&)>;

/// Returns the reduced module (== input when nothing could be removed).
/// `still_fails` must be true for `module` itself; it is only invoked on
/// verifier-clean candidates.
ir::Module shrink_module(const ir::Module& module,
                         const ShrinkPredicate& still_fails,
                         const ShrinkOptions& options = {});

}  // namespace trident::fuzz
