#include "fuzz/oracles.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/bit_facts.h"
#include "core/trident.h"
#include "fi/campaign.h"
#include "interp/engine.h"
#include "interp/interpreter.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "profiler/profiler.h"
#include "support/bits.h"
#include "support/rng.h"

namespace trident::fuzz {

namespace {

using interp::Outcome;
using interp::RunOptions;
using interp::RunResult;
using support::low_mask;

// Fuel for the oracle runs: generated programs execute a few thousand
// instructions, so this is effectively unlimited while still bounding
// adversarial corpus files.
constexpr uint64_t kGoldenFuel = 50'000'000;

std::string fmt(const char* format, ...) {
  va_list args;
  va_start(args, format);
  char buf[512];
  vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

/// First field on which two RunResults differ, or nullptr if identical.
const char* run_result_diff(const RunResult& a, const RunResult& b) {
  if (a.outcome != b.outcome) return "outcome";
  if (a.output != b.output) return "output";
  if (a.debug_output != b.debug_output) return "debug_output";
  if (a.dynamic_insts != b.dynamic_insts) return "dynamic_insts";
  if (a.dynamic_results != b.dynamic_results) return "dynamic_results";
  if (a.ret_raw != b.ret_raw) return "ret_raw";
  if (a.crash_reason != b.crash_reason) return "crash_reason";
  return nullptr;
}

struct Probe {
  ir::InstRef ref;
  uint64_t dyn_index = 0;
  uint64_t candidate_no = 0;  // ordinal among candidates (for bit choice)
};

/// Golden-run hook: checks every committed value against the static
/// known-bits facts and reservoir-samples dont-care flip probes.
class GoldenRecorder final : public interp::ExecHooks {
 public:
  GoldenRecorder(const ir::Module& module, const analysis::BitFacts& facts,
                 uint64_t seed, uint64_t max_probes)
      : module_(module),
        facts_(facts),
        rng_(support::Rng::stream(seed, /*index=*/0xb175)),
        max_probes_(max_probes) {}

  uint32_t interest() const override { return kResult; }

  void on_result(ir::InstRef ref, uint64_t dyn_index,
                 uint64_t& bits) override {
    const auto& kb = facts_.known(ref);
    if (kb.width != 0) {
      // `bits` is the raw pre-commit payload; compare within the width.
      const uint64_t v = bits & low_mask(kb.width);
      checked_ += support::popcount_low(kb.known(), kb.width);
      if (((kb.zeros & v) | (kb.ones & ~v)) & low_mask(kb.width)) {
        if (violations.size() < 4) {
          const auto& func = module_.function(ref.func);
          violations.push_back(fmt(
              "known-bits mismatch at %s:%s (dyn %llu): value=0x%llx "
              "zeros=0x%llx ones=0x%llx",
              func.name.c_str(),
              ir::print_inst(module_, func, ref.inst).c_str(),
              (unsigned long long)dyn_index, (unsigned long long)v,
              (unsigned long long)kb.zeros, (unsigned long long)kb.ones));
        }
      }
      const uint64_t dont_care = ~facts_.demanded(ref) & low_mask(kb.width);
      if (dont_care != 0 && max_probes_ > 0) {
        // Uniform reservoir over all dont-care dynamic sites.
        if (probes.size() < max_probes_) {
          probes.push_back({ref, dyn_index, candidates_});
        } else {
          const uint64_t j = rng_.next_below(candidates_ + 1);
          if (j < max_probes_) {
            probes[j] = {ref, dyn_index, candidates_};
          }
        }
        ++candidates_;
      }
    }
    (void)bits;
  }

  uint64_t bits_checked() const { return checked_; }

  std::vector<std::string> violations;
  std::vector<Probe> probes;

 private:
  const ir::Module& module_;
  const analysis::BitFacts& facts_;
  support::Rng rng_;
  uint64_t max_probes_ = 0;
  uint64_t candidates_ = 0;
  uint64_t checked_ = 0;
};

/// Flips one chosen bit of one chosen dynamic result — the oracle-b
/// perturbation (unlike fi::Injector it takes the bit directly).
class FlipHook final : public interp::ExecHooks {
 public:
  FlipHook(uint64_t dyn_index, unsigned bit)
      : dyn_index_(dyn_index), bit_(bit) {}

  uint32_t interest() const override { return kResult; }

  void on_result(ir::InstRef ref, uint64_t dyn_index,
                 uint64_t& bits) override {
    if (dyn_index == dyn_index_) {
      bits ^= 1ULL << bit_;
      fired_ = true;
      ref_ = ref;
    }
  }

  bool fired() const { return fired_; }
  ir::InstRef ref() const { return ref_; }

 private:
  uint64_t dyn_index_ = 0;
  unsigned bit_ = 0;
  bool fired_ = false;
  ir::InstRef ref_;
};

/// `index`-th set bit of `mask` (index < popcount(mask)).
unsigned nth_set_bit(uint64_t mask, unsigned index) {
  for (unsigned b = 0; b < 64; ++b) {
    if ((mask >> b) & 1) {
      if (index == 0) return b;
      --index;
    }
  }
  return 0;  // unreachable under the precondition
}

void compare_campaigns(const fi::CampaignResult& interp_result,
                       const fi::CampaignResult& other_result,
                       const char* other_name, CheckResult& out) {
  if (interp_result.trials.size() != other_result.trials.size()) {
    out.divergences.push_back(
        {"engine", fmt("FI campaign size differs across engines: "
                       "interp=%zu %s=%zu",
                       interp_result.trials.size(), other_name,
                       other_result.trials.size())});
    return;
  }
  for (size_t i = 0; i < interp_result.trials.size(); ++i) {
    const auto& a = interp_result.trials[i];
    const auto& b = other_result.trials[i];
    if (a.outcome != b.outcome || !(a.target == b.target) ||
        a.bit != b.bit || a.fuel_exhausted != b.fuel_exhausted) {
      out.divergences.push_back(
          {"engine",
           fmt("FI trial %zu differs across engines: interp={%s f%u:i%u "
               "bit %u} %s={%s f%u:i%u bit %u}",
               i, fi::fi_outcome_name(a.outcome), a.target.func,
               a.target.inst, a.bit, other_name,
               fi::fi_outcome_name(b.outcome), b.target.func,
               b.target.inst, b.bit)});
      return;  // one detailed mismatch per campaign is enough to act on
    }
  }
}

}  // namespace

CheckResult check_module(const ir::Module& module, uint64_t seed,
                         const OracleOptions& options) {
  CheckResult out;

  // -- Contract: the module must verify and its golden run must be Ok.
  if (std::string errors = ir::verify_to_string(module); !errors.empty()) {
    if (auto nl = errors.find('\n'); nl != std::string::npos) {
      errors.resize(nl);
    }
    out.divergences.push_back(
        {"contract", "module fails verification: " + errors});
    return out;
  }

  analysis::BitFacts facts(module, options.threads);

  // -- Golden run on the reference engine, with the oracle-b recorder
  //    checking every known-bits claim against the executed values.
  interp::Interpreter interp_engine(module);
  GoldenRecorder recorder(module, facts, seed, options.demanded_probes);
  RunOptions golden_options;
  golden_options.fuel = kGoldenFuel;
  golden_options.hooks = &recorder;
  const RunResult golden = interp_engine.run_main(golden_options);
  out.golden_dynamic_insts = golden.dynamic_insts;
  out.known_bits_checked = recorder.bits_checked();
  if (golden.outcome != Outcome::Ok) {
    out.divergences.push_back(
        {"contract", fmt("golden run is %s, not Ok%s%s",
                         interp::outcome_name(golden.outcome),
                         golden.crash_reason.empty() ? "" : ": ",
                         golden.crash_reason.c_str())});
    return out;
  }
  for (const auto& v : recorder.violations) {
    out.divergences.push_back({"bits", v});
  }

  // -- Oracle (a), golden half: every non-reference engine must
  //    reproduce the reference run bit for bit (all pairs reduce to
  //    interp-vs-each, since bit-identity is transitive).
  {
    RunOptions plain;
    plain.fuel = kGoldenFuel;
    interp::Interpreter plain_interp(module);
    const RunResult interp_golden = plain_interp.run_main(plain);
    for (const auto kind : interp::all_engine_kinds()) {
      if (kind == interp::EngineKind::Interp) continue;
      const RunResult other_golden =
          interp::make_engine(kind, module)->run_main(plain);
      if (const char* field = run_result_diff(interp_golden, other_golden)) {
        out.divergences.push_back(
            {"engine", fmt("golden run differs interp vs %s in %s",
                           interp::engine_kind_name(kind), field)});
      }
    }
  }

  // -- Oracle (c): print -> parse -> print fixed point.
  {
    const std::string text1 = ir::print_module(module);
    ir::ParseError error;
    auto reparsed = ir::parse_module(text1, &error);
    if (!reparsed) {
      out.divergences.push_back(
          {"roundtrip", fmt("printed module fails to reparse at line %u: %s",
                            error.line, error.message.c_str())});
    } else if (std::string errors = ir::verify_to_string(*reparsed);
               !errors.empty()) {
      if (auto nl = errors.find('\n'); nl != std::string::npos) {
        errors.resize(nl);
      }
      out.divergences.push_back(
          {"roundtrip", "reparsed module fails verification: " + errors});
    } else if (const std::string text2 = ir::print_module(*reparsed);
               text1 != text2) {
      size_t line = 1, at = 0;
      const size_t n = std::min(text1.size(), text2.size());
      while (at < n && text1[at] == text2[at]) {
        if (text1[at] == '\n') ++line;
        ++at;
      }
      out.divergences.push_back(
          {"roundtrip",
           fmt("print->parse->print is not a fixed point (first "
               "difference on line %zu)",
               line)});
    }
  }

  // -- Oracle (b), dont-care half: flipping a statically non-demanded
  //    bit must leave the entire run unchanged.
  {
    support::Rng bit_rng = support::Rng::stream(seed, /*index=*/0xdc);
    for (const Probe& probe : recorder.probes) {
      const auto& kb = facts.known(probe.ref);
      const uint64_t dont_care =
          ~facts.demanded(probe.ref) & low_mask(kb.width);
      if (dont_care == 0) continue;
      const unsigned n_bits = support::popcount_low(dont_care, kb.width);
      const unsigned bit = nth_set_bit(
          dont_care, static_cast<unsigned>(bit_rng.next_below(n_bits)));
      FlipHook flip(probe.dyn_index, bit);
      RunOptions flip_options;
      flip_options.fuel = kGoldenFuel;
      flip_options.hooks = &flip;
      const RunResult flipped = interp_engine.run_main(flip_options);
      ++out.demanded_probes_run;
      if (const char* field = run_result_diff(golden, flipped)) {
        const auto& func = module.function(probe.ref.func);
        out.divergences.push_back(
            {"bits",
             fmt("flip of non-demanded bit %u at %s:%s (dyn %llu) "
                 "changed the run (%s)",
                 bit, func.name.c_str(),
                 ir::print_inst(module, func, probe.ref.inst).c_str(),
                 (unsigned long long)probe.dyn_index, field)});
        if (out.divergences.size() > 8) break;
      }
    }
  }

  // -- Oracles (a) FI half and (d): one profile, two campaigns, three
  //    model variants.
  const prof::Profile profile = prof::collect_profile(module);
  fi::CampaignOptions campaign_options;
  campaign_options.seed = seed;
  campaign_options.trials = options.fi_trials;
  campaign_options.threads = options.threads;
  campaign_options.engine = interp::EngineKind::Interp;
  const fi::CampaignResult fi_interp =
      fi::run_overall_campaign(module, profile, campaign_options);
  for (const auto kind : interp::all_engine_kinds()) {
    if (kind == interp::EngineKind::Interp) continue;
    campaign_options.engine = kind;
    const fi::CampaignResult fi_other =
        fi::run_overall_campaign(module, profile, campaign_options);
    compare_campaigns(fi_interp, fi_other, interp::engine_kind_name(kind),
                      out);
  }

  out.fi_trials = fi_interp.total();
  out.fi_sdc = fi_interp.sdc_prob();
  out.fi_sdc_ci95 = fi_interp.sdc_ci95();

  out.sdc_full =
      core::Trident(module, profile, core::ModelConfig::full())
          .overall_sdc_exact();
  out.sdc_bits =
      core::Trident(module, profile, core::ModelConfig::bits())
          .overall_sdc_exact();
  out.sdc_fs =
      core::Trident(module, profile, core::ModelConfig::fs_only())
          .overall_sdc_exact();

  // Hard invariant: the bit-level refinement only lowers predictions.
  if (out.sdc_bits > out.sdc_full + 1e-9) {
    out.divergences.push_back(
        {"model", fmt("trident_bits prediction %.4f exceeds trident %.4f "
                      "(bit_refine must only lower)",
                      out.sdc_bits, out.sdc_full)});
  }
  // Soft thresholds: model vs FI ground truth, beyond the campaign CI.
  const double slack = out.fi_sdc_ci95 + options.model_tolerance;
  if (std::fabs(out.sdc_full - out.fi_sdc) > slack) {
    out.divergences.push_back(
        {"model", fmt("trident %.4f vs FI %.4f +/- %.4f exceeds "
                      "tolerance %.2f",
                      out.sdc_full, out.fi_sdc, out.fi_sdc_ci95,
                      options.model_tolerance)});
  }
  if (std::fabs(out.sdc_bits - out.fi_sdc) > slack) {
    out.divergences.push_back(
        {"model", fmt("trident_bits %.4f vs FI %.4f +/- %.4f exceeds "
                      "tolerance %.2f",
                      out.sdc_bits, out.fi_sdc, out.fi_sdc_ci95,
                      options.model_tolerance)});
  }
  // fs-only deliberately overestimates (every reached store counts as
  // SDC); give it double slack and only flag gross breakage.
  if (std::fabs(out.sdc_fs - out.fi_sdc) >
      out.fi_sdc_ci95 + 2 * options.model_tolerance) {
    out.divergences.push_back(
        {"model", fmt("fs-only %.4f vs FI %.4f +/- %.4f exceeds double "
                      "tolerance %.2f",
                      out.sdc_fs, out.fi_sdc, out.fi_sdc_ci95,
                      2 * options.model_tolerance)});
  }

  return out;
}

}  // namespace trident::fuzz
