// Seed-reproducible random IR program generator, the input half of the
// differential fuzzer (docs/FUZZING.md).
//
// generate_program(seed) is a pure function of (seed, options) built on
// the same counter-based RNG discipline as fi/ (Rng::stream), so a seed
// in a bug report reproduces the exact module on any machine, any thread
// count, forever. Emitted modules hold a generator contract the oracles
// rely on:
//   - verifier-clean (ir::verify returns no errors);
//   - the golden run terminates with Outcome::Ok (loops have small
//     constant trip counts, divisors are forced nonzero and positive,
//     loads/stores are masked in-bounds, casts cannot trap);
//   - at least one value is printed, so FI campaigns have an
//     SDC-observable output stream.
// Within that envelope the programs deliberately span the shapes the 11
// built-in workloads do not: mixed bit widths (i8..i64, f32/f64), phi
// diamonds, self- and while-shaped loops, shift amounts at and beyond
// the width, division/remainder chains, gep/load/store/memcpy over
// small arrays, and cross-function calls.
#pragma once

#include <cstdint>

#include "ir/module.h"

namespace trident::fuzz {

struct GenOptions {
  uint32_t regions = 5;          // control-flow regions in main
  uint32_t exprs_per_region = 7; // expression statements per region
  uint32_t max_loop_trip = 12;   // constant loop trip count bound
  uint32_t max_arrays = 3;       // allocas in main's entry block
  bool with_helper = true;       // emit (and call) a helper function
};

/// Deterministic: the module depends only on (seed, options).
ir::Module generate_program(uint64_t seed, const GenOptions& options = {});

}  // namespace trident::fuzz
