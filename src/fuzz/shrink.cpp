#include "fuzz/shrink.h"

#include <cstdint>
#include <vector>

#include "ir/verifier.h"

namespace trident::fuzz {

namespace {

using ir::Function;
using ir::Instruction;
using ir::Module;
using ir::Opcode;
using ir::Value;

bool has_uses(const Function& func, uint32_t id) {
  for (const Instruction& inst : func.insts) {
    for (const Value& v : inst.operands) {
      if (v.is_inst() && v.index == id) return true;
    }
  }
  return false;
}

/// Removes instruction `id` (which must have no uses) and renumbers every
/// id above it, keeping the function's id-indexed invariants intact.
void erase_inst(Function& func, uint32_t id) {
  auto& block_insts = func.blocks[func.insts[id].block].insts;
  for (auto it = block_insts.begin(); it != block_insts.end(); ++it) {
    if (*it == id) {
      block_insts.erase(it);
      break;
    }
  }
  func.insts.erase(func.insts.begin() + id);
  for (Instruction& inst : func.insts) {
    for (Value& v : inst.operands) {
      if (v.is_inst() && v.index > id) --v.index;
    }
  }
  for (auto& block : func.blocks) {
    for (uint32_t& i : block.insts) {
      if (i > id) --i;
    }
  }
}

}  // namespace

ir::Module shrink_module(const ir::Module& module,
                         const ShrinkPredicate& still_fails,
                         const ShrinkOptions& options) {
  Module best = module;
  uint64_t attempts = 0;

  auto accept = [&](const Module& candidate) {
    if (attempts >= options.max_attempts) return false;
    ++attempts;
    return ir::verify(candidate).empty() && still_fails(candidate);
  };

  for (uint32_t round = 0; round < options.max_rounds; ++round) {
    bool progressed = false;
    for (uint32_t f = 0; f < best.functions.size(); ++f) {
      // High ids first: epilogue instructions depend on earlier ones, so
      // deleting back-to-front cascades dead code in a single pass.
      for (uint32_t id = static_cast<uint32_t>(
               best.functions[f].insts.size());
           id-- > 0;) {
        if (attempts >= options.max_attempts) return best;
        const Instruction& inst = best.functions[f].insts[id];
        if (inst.is_terminator()) continue;

        if (!has_uses(best.functions[f], id)) {
          Module candidate = best;
          erase_inst(candidate.functions[f], id);
          if (accept(candidate)) {
            best = std::move(candidate);
            progressed = true;
          }
          continue;
        }

        // Used result: try collapsing it to a zero constant of its type
        // (pointers excluded — a null base would just trade the original
        // divergence for an out-of-bounds crash).
        if (inst.has_result() && !inst.type.is_ptr()) {
          Module candidate = best;
          Function& func = candidate.functions[f];
          const uint32_t cid =
              func.add_constant(ir::Constant{inst.type, 0});
          for (Instruction& other : func.insts) {
            for (Value& v : other.operands) {
              if (v.is_inst() && v.index == id) {
                v = Value::constant(cid);
              }
            }
          }
          erase_inst(func, id);
          if (accept(candidate)) {
            best = std::move(candidate);
            progressed = true;
          }
        }
      }
    }
    if (!progressed) break;
  }
  return best;
}

}  // namespace trident::fuzz
