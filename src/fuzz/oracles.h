// The four differential oracles of the fuzzer (docs/FUZZING.md).
//
// Each generated module is cross-checked along every axis on which this
// repository makes a hard claim:
//   (a) engine    — bit-identity of every registered backend
//                   (all_engine_kinds(): threaded, native, ...) against
//                   the reference interpreter on the golden run and on a
//                   small FI campaign (docs/ENGINE.md contract);
//   (b) bits      — known-bits facts must agree with every executed
//                   value, and flipping a statically non-demanded bit
//                   must not change the run at all (docs/ANALYSIS.md
//                   soundness claims);
//   (c) roundtrip — print -> parse -> print is a fixed point and the
//                   reparsed module verifies (parser contract);
//   (d) model     — trident / trident_bits / fs-only overall SDC vs a
//                   small FI campaign, within divergence thresholds,
//                   plus the hard invariant bits <= full (bit_refine
//                   "can only lower predictions").
// All checks are deterministic in (module, seed, options) at any thread
// count, so a report line in CI is byte-reproducible from its seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/module.h"

namespace trident::fuzz {

struct OracleOptions {
  uint64_t fi_trials = 150;      // FI campaign size (oracles a and d)
  uint64_t demanded_probes = 24; // dont-care bit flips tried (oracle b)
  uint32_t threads = 0;          // campaign/analysis concurrency
  // Allowed |model - FI| beyond the campaign's 95% CI half-width
  // (oracle d). Random programs sit far outside the paper's benchmark
  // envelope, so this is a drift tripwire, not an accuracy claim.
  double model_tolerance = 0.45;
};

struct Divergence {
  std::string oracle;  // "engine" | "bits" | "roundtrip" | "model"
  std::string detail;  // one line, stable wording (reports are diffed)
};

struct CheckResult {
  std::vector<Divergence> divergences;
  // Report fodder (all deterministic).
  uint64_t golden_dynamic_insts = 0;
  uint64_t fi_trials = 0;
  double fi_sdc = 0, fi_sdc_ci95 = 0;
  double sdc_full = 0, sdc_bits = 0, sdc_fs = 0;
  uint64_t known_bits_checked = 0;   // (value, known-bit) comparisons
  uint64_t demanded_probes_run = 0;  // dont-care flips executed

  bool ok() const { return divergences.empty(); }
};

/// Runs all four oracles on `module`. `seed` drives the FI campaign and
/// the probe sampling; it is usually the generator seed so one number
/// reproduces the whole line. The module must satisfy the generator
/// contract (verifier-clean, golden run Ok) — check_module re-validates
/// both and reports violations as divergences instead of crashing, so it
/// is safe to call on shrunken candidates and hand-written corpus files.
CheckResult check_module(const ir::Module& module, uint64_t seed,
                         const OracleOptions& options = {});

}  // namespace trident::fuzz
