#include <gtest/gtest.h>

#include "baselines/epvf.h"
#include "baselines/pvf.h"
#include "core/trident.h"
#include "ir/builder.h"
#include "profiler/profiler.h"
#include "workloads/workloads.h"

namespace trident::baselines {
namespace {

using ir::IRBuilder;
using ir::Module;
using ir::Type;
using ir::Value;

TEST(Pvf, ConsumedValueIsAce) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value x = b.add(b.i32(1), b.i32(2));
  b.print_int(x);
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const PvfModel pvf(m, profile);
  EXPECT_DOUBLE_EQ(pvf.pvf({0, x.index}), 1.0);
}

TEST(Pvf, DeadValueIsUnAce) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value x = b.add(b.i32(1), b.i32(2));  // unused
  b.print_int(b.i32(0));
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const PvfModel pvf(m, profile);
  EXPECT_DOUBLE_EQ(pvf.pvf({0, x.index}), 0.0);
}

TEST(Pvf, DebugPrintOnlyValueIsUnAce) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value x = b.add(b.i32(1), b.i32(2));
  b.print_int(x, /*is_output=*/false);
  b.print_int(b.i32(0));
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const PvfModel pvf(m, profile);
  EXPECT_DOUBLE_EQ(pvf.pvf({0, x.index}), 0.0);
}

TEST(Pvf, TransitiveChainIsAce) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  Value x = b.add(b.i32(1), b.i32(2));
  for (int i = 0; i < 5; ++i) x = b.mul(x, b.i32(3));
  const Value p = b.alloca_(4);
  b.store(x, p);
  b.print_int(b.i32(0));
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  const PvfModel pvf(m, profile);
  // The first add reaches memory through the muls: ACE, even though the
  // stored value is never reloaded (PVF does not track that).
  EXPECT_DOUBLE_EQ(pvf.pvf({0, 0}), 1.0);
}

TEST(Pvf, NoMaskingNoCrashDiscrimination) {
  // PVF counts crash-causing faults as vulnerabilities too: it is an
  // upper bound on the other models by construction on ACE values.
  const auto m = workloads::find_workload("pathfinder").build();
  const auto profile = prof::collect_profile(m);
  const PvfModel pvf(m, profile);
  const core::Trident trident(m, profile);
  EXPECT_GT(pvf.overall(), trident.overall_sdc_exact());
}

TEST(Epvf, SubtractsCrashes) {
  const auto m = workloads::find_workload("bfs_parboil").build();
  const auto profile = prof::collect_profile(m);
  const EpvfModel epvf(m, profile);
  EXPECT_LE(epvf.overall(), epvf.pvf().overall());
  EXPECT_GE(epvf.overall(), 0.0);
}

TEST(Epvf, MeasuredCrashVariantClamps) {
  const auto m = workloads::find_workload("nw").build();
  const auto profile = prof::collect_profile(m);
  const EpvfModel epvf(m, profile);
  const double pvf_total = epvf.pvf().overall();
  EXPECT_DOUBLE_EQ(epvf.overall_with_measured_crashes(0.0), pvf_total);
  EXPECT_NEAR(epvf.overall_with_measured_crashes(0.1), pvf_total - 0.1,
              1e-12);
  EXPECT_DOUBLE_EQ(epvf.overall_with_measured_crashes(1.0), 0.0);
}

TEST(Epvf, PerInstructionBounds) {
  const auto m = workloads::find_workload("hotspot").build();
  const auto profile = prof::collect_profile(m);
  const EpvfModel epvf(m, profile);
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    if (!m.functions[0].insts[i].has_result()) continue;
    const double e = epvf.epvf({0, i});
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
    EXPECT_LE(e, epvf.pvf().pvf({0, i}) + 1e-12);
  }
}

// The paper's Fig. 9 ordering: PVF >= ePVF >= TRIDENT on every workload
// (PVF cannot discriminate benign faults or crashes; ePVF only crashes).
class BaselineOrdering
    : public ::testing::TestWithParam<workloads::Workload> {};

TEST_P(BaselineOrdering, PvfDominatesEpvfDominatesNothingNegative) {
  const auto m = GetParam().build();
  const auto profile = prof::collect_profile(m);
  const EpvfModel epvf(m, profile);
  const double pvf_overall = epvf.pvf().overall();
  const double epvf_overall = epvf.overall();
  EXPECT_GE(pvf_overall, epvf_overall);
  EXPECT_GE(epvf_overall, 0.0);
  EXPECT_LE(pvf_overall, 1.0);
  // PVF is very high on real kernels (the paper reports ~90%).
  EXPECT_GT(pvf_overall, 0.4) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, BaselineOrdering,
    ::testing::ValuesIn(workloads::all_workloads()),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace trident::baselines
