#include <gtest/gtest.h>

#include "baselines/epvf.h"
#include "ddg/ddg.h"
#include "ir/builder.h"
#include "profiler/profiler.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace trident::ddg {
namespace {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Module;
using ir::Type;
using ir::Value;

TEST(Ddg, StraightLineProducers) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value x = b.add(b.i32(1), b.i32(2));  // node 0 (no producers)
  const Value y = b.mul(x, x);                // node 1 <- node 0 (x2)
  b.print_int(y);                             // node 2 <- node 1
  b.ret();                                    // node 3
  b.end_function();
  (void)x;
  (void)y;

  const auto graph = Ddg::capture(m);
  ASSERT_EQ(graph.nodes().size(), 4u);
  EXPECT_TRUE(graph.producers(0).empty());  // constants have no producers
  EXPECT_EQ(graph.producers(1), (std::vector<uint64_t>{0, 0}));
  EXPECT_EQ(graph.producers(2), (std::vector<uint64_t>{1}));
}

TEST(Ddg, MemoryDependenceThroughStoreLoad) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value p = b.alloca_(4);   // node 0
  const Value x = b.add(b.i32(5), b.i32(6));  // node 1
  b.store(x, p);                  // node 2 <- {1, 0}
  const Value v = b.load(Type::i32(), p);  // node 3 <- {0, 2 (mem)}
  b.print_int(v);                 // node 4 <- 3
  b.ret();
  b.end_function();
  (void)v;

  const auto graph = Ddg::capture(m);
  // The load's producers: its address (alloca node 0) and, through
  // memory, the store event (node 2).
  const auto load_producers = graph.producers(3);
  EXPECT_NE(std::find(load_producers.begin(), load_producers.end(), 2ull),
            load_producers.end());
}

TEST(Ddg, PhiTakesOnlyTheChosenIncoming) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value sink = b.alloca_(4);
  workloads::counted_loop(b, 0, 3, 1,
                          [&](Value i) { b.store(i, sink); });
  b.print_int(b.load(Type::i32(), sink));
  b.ret();
  b.end_function();

  const auto graph = Ddg::capture(m);
  // Every phi node has at most one producer (the chosen incoming).
  for (uint64_t n = 0; n < graph.nodes().size(); ++n) {
    const auto ref = graph.nodes()[n].inst;
    if (m.functions[ref.func].insts[ref.inst].op == ir::Opcode::Phi) {
      EXPECT_LE(graph.producers(n).size(), 1u);
    }
  }
}

TEST(Ddg, CallsThreadThroughRet) {
  Module m;
  IRBuilder b(m);
  const auto sq = b.begin_function("sq", {Type::i32()}, Type::i32());
  b.set_block(b.block("entry"));
  b.ret(b.mul(b.arg(0), b.arg(0)));
  b.end_function();
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value x = b.add(b.i32(2), b.i32(3));
  const Value r = b.call(sq, {x});
  b.print_int(r);
  b.ret();
  b.end_function();
  (void)r;

  const auto graph = Ddg::capture(m);
  // Node order: add(main)=0, call=1, mul(sq)=2, ret(sq)=3, print=4, ret=5.
  ASSERT_GE(graph.nodes().size(), 6u);
  EXPECT_EQ(graph.producers(2), (std::vector<uint64_t>{0, 0}));  // arg = x
  // The print consumes the call result, whose chain runs through the
  // callee's ret.
  EXPECT_EQ(graph.producers(4), (std::vector<uint64_t>{3}));
}

TEST(Ddg, MemcpyPropagatesWriters) {
  Module m;
  const auto ga = m.add_global({"a", 8, {}});
  const auto gb = m.add_global({"b", 8, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value x = b.add(b.i32(9), b.i32(1));          // node 0
  b.store(x, b.global(ga));                           // node 1
  b.memcpy_(b.global(gb), b.global(ga), 4);           // node 2
  const Value v = b.load(Type::i32(), b.global(gb));  // node 3
  b.print_int(v);
  b.ret();
  b.end_function();
  (void)v;

  const auto graph = Ddg::capture(m);
  const auto load_producers = graph.producers(3);
  // The load of the COPY still depends on the ORIGINAL store (node 1).
  EXPECT_NE(std::find(load_producers.begin(), load_producers.end(), 1ull),
            load_producers.end());
}

TEST(Ddg, NodeCountEqualsDynamicInstructions) {
  const auto m = workloads::find_workload("pathfinder").build();
  const auto profile = prof::collect_profile(m);
  const auto graph = Ddg::capture(m);
  EXPECT_EQ(graph.nodes().size(), profile.total_dynamic);
  EXPECT_GT(graph.num_edges(), graph.nodes().size() / 2);
  EXPECT_GT(graph.memory_bytes(), 100'000u);  // the §VII-C cost, visible
}

TEST(Ddg, UsersAreInverseOfProducers) {
  const auto m = workloads::find_workload("nw").build();
  const auto graph = Ddg::capture(m);
  const auto& users = graph.users();
  uint64_t checked = 0;
  for (uint64_t n = 0; n < graph.nodes().size() && checked < 2000; ++n) {
    for (const auto p : graph.producers(n)) {
      EXPECT_NE(std::find(users[p].begin(), users[p].end(), n),
                users[p].end());
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(EpvfDdg, CrashModelFindsAddressConsumers) {
  // A value that feeds a gep/store address chain must have a nonzero DDG
  // crash probability; a value that only reaches the output through data
  // must have a smaller one.
  Module m;
  const auto g = m.add_global({"arr", 64, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value arr = b.global(g);
  workloads::counted_loop(b, 0, 16, 1, [&](Value i) {
    b.store(i, b.gep(arr, i, 4));
  });
  b.print_int(b.load(Type::i32(), b.gep(arr, b.i32(3), 4)));
  b.ret();
  b.end_function();

  const auto profile = prof::collect_profile(m);
  const baselines::EpvfModel epvf(m, profile);
  const auto graph = Ddg::capture(m);
  // The loop induction phi feeds the gep: address-consuming.
  uint32_t phi_id = ~0u;
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    if (m.functions[0].insts[i].op == ir::Opcode::Phi) phi_id = i;
  }
  ASSERT_NE(phi_id, ~0u);
  EXPECT_GT(epvf.ddg_crash(graph, {0, phi_id}), 0.2);
}

TEST(EpvfDdg, OverallStaysBetweenZeroAndPvf) {
  const auto m = workloads::find_workload("pathfinder").build();
  const auto profile = prof::collect_profile(m);
  const baselines::EpvfModel epvf(m, profile);
  const auto graph = Ddg::capture(m);
  const double with_ddg = epvf.overall_with_ddg_crashes(graph);
  EXPECT_GE(with_ddg, 0.0);
  EXPECT_LE(with_ddg, epvf.pvf().overall());
}

}  // namespace
}  // namespace trident::ddg
