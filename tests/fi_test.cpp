#include <gtest/gtest.h>

#include <cmath>

#include "fi/accelerated.h"
#include "fi/campaign.h"
#include "ir/builder.h"
#include "profiler/profiler.h"
#include "workloads/common.h"

namespace trident::fi {
namespace {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Module;
using ir::Type;
using ir::Value;

// Straight-line program whose single output depends on every value:
// almost any flipped bit is an SDC.
Module make_fragile() {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  Value acc = b.i64(1);
  for (int i = 0; i < 8; ++i) acc = b.add(acc, acc);
  b.print_uint(acc);
  b.ret();
  b.end_function();
  return m;
}

// Program whose computed values never reach the output: all faults in
// them are benign.
Module make_masked() {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  Value acc = b.i64(1);
  for (int i = 0; i < 8; ++i) acc = b.add(acc, acc);
  b.and_(acc, b.i64(0));  // discarded
  b.print_uint(b.i64(7));
  b.ret();
  b.end_function();
  return m;
}

TEST(Injector, FlipsExactlyOneBitAtSite) {
  const auto m = make_fragile();
  InjectionSite site;
  site.mode = InjectionSite::Mode::DynIndex;
  site.dyn_index = 3;
  site.bit_entropy = 0;  // lowest bit
  interp::Interpreter interp(m);
  Injector injector(m, site);
  interp::RunOptions options;
  options.hooks = &injector;
  interp.run_main(options);
  EXPECT_TRUE(injector.fired());
  EXPECT_EQ(injector.bit(), 0u);
  EXPECT_TRUE(injector.target().valid());
}

TEST(Injector, OccurrenceModeTargetsNthExecution) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value cell = b.alloca_(8, "acc");
  b.store(b.i64(0), cell);
  workloads::counted_loop(b, 0, 10, 1, [&](Value) {
    const Value v = b.load(Type::i64(), cell);
    b.store(b.add(v, b.i64(1)), cell);
  });
  b.print_uint(b.load(Type::i64(), cell));
  b.ret();
  b.end_function();

  // Find the inner add.
  uint32_t add_id = ~0u;
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    const auto& inst = m.functions[0].insts[i];
    if (inst.op == ir::Opcode::Add && inst.type == Type::i64()) add_id = i;
  }
  ASSERT_NE(add_id, ~0u);

  // Flip bit 1 (value +2 or -2) of occurrence 4: final count differs.
  InjectionSite site;
  site.mode = InjectionSite::Mode::Occurrence;
  site.inst = {0, add_id};
  site.occurrence = 4;
  site.bit_entropy = (1ull << 63) / 32;  // maps to bit 1 of 64
  interp::Interpreter interp(m);
  Injector injector(m, site);
  interp::RunOptions options;
  options.hooks = &injector;
  const auto res = interp.run_main(options);
  EXPECT_TRUE(injector.fired());
  EXPECT_EQ(injector.target().inst, add_id);
  EXPECT_NE(res.output, "10\n");
}

TEST(Injector, DoesNotFireBeyondExecution) {
  const auto m = make_fragile();
  InjectionSite site;
  site.dyn_index = 1'000'000;  // beyond the run's dynamic count
  interp::Interpreter interp(m);
  Injector injector(m, site);
  interp::RunOptions options;
  options.hooks = &injector;
  const auto res = interp.run_main(options);
  EXPECT_FALSE(injector.fired());
  EXPECT_EQ(res.outcome, interp::Outcome::Ok);
}

TEST(Campaign, FragileProgramIsMostlySdc) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  CampaignOptions options;
  options.trials = 300;
  const auto result = run_overall_campaign(m, profile, options);
  EXPECT_EQ(result.total(), 300u);
  EXPECT_GT(result.sdc_prob(), 0.9);
  EXPECT_EQ(result.sdc + result.benign + result.crash + result.hang +
                result.detected,
            result.total());
}

TEST(Campaign, MaskedProgramIsMostlyBenign) {
  const auto m = make_masked();
  const auto profile = prof::collect_profile(m);
  CampaignOptions options;
  options.trials = 300;
  const auto result = run_overall_campaign(m, profile, options);
  // The print of a constant is the only SDC-visible value.
  EXPECT_LT(result.sdc_prob(), 0.25);
  EXPECT_GT(static_cast<double>(result.benign) / result.total(), 0.7);
}

TEST(Campaign, DeterministicForFixedSeed) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  CampaignOptions options;
  options.trials = 100;
  options.seed = 77;
  const auto a = run_overall_campaign(m, profile, options);
  const auto b = run_overall_campaign(m, profile, options);
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.crash, b.crash);
  for (size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].target, b.trials[i].target);
    EXPECT_EQ(a.trials[i].bit, b.trials[i].bit);
    EXPECT_EQ(a.trials[i].outcome, b.trials[i].outcome);
  }
}

TEST(Campaign, SeedChangesSamples) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  CampaignOptions a_opt;
  a_opt.trials = 50;
  a_opt.seed = 1;
  CampaignOptions b_opt = a_opt;
  b_opt.seed = 2;
  const auto a = run_overall_campaign(m, profile, a_opt);
  const auto b = run_overall_campaign(m, profile, b_opt);
  int same = 0;
  for (size_t i = 0; i < a.trials.size(); ++i) {
    same += a.trials[i].target == b.trials[i].target &&
            a.trials[i].bit == b.trials[i].bit;
  }
  EXPECT_LT(same, 25);
}

TEST(Campaign, Ci95ShrinksWithTrials) {
  const auto m = make_masked();
  const auto profile = prof::collect_profile(m);
  CampaignOptions small;
  small.trials = 50;
  CampaignOptions large;
  large.trials = 800;
  const auto s = run_overall_campaign(m, profile, small);
  const auto l = run_overall_campaign(m, profile, large);
  if (s.sdc > 0 && l.sdc > 0) {
    EXPECT_LT(l.sdc_ci95(), s.sdc_ci95());
  }
  EXPECT_LE(l.sdc_ci95(), 1.96 * 0.5 / std::sqrt(800.0) + 1e-9);
}

TEST(Campaign, PerInstructionTargetsOnlyThatInstruction) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  // Instruction 2 is one of the adds.
  const ir::InstRef target{0, 2};
  ASSERT_GT(profile.exec(target), 0u);
  CampaignOptions options;
  options.trials = 60;
  const auto result = run_instruction_campaign(m, profile, target, options);
  for (const auto& trial : result.trials) {
    EXPECT_EQ(trial.target, target);
  }
  EXPECT_GT(result.sdc_prob(), 0.9);  // every add feeds the output
}

TEST(Campaign, CrashDetectedOnAddressCorruption) {
  // Store through a pointer derived from a loaded index: address bit
  // flips produce out-of-bounds accesses.
  Module m;
  const auto g = m.add_global({"arr", 64, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value arr = b.global(g);
  workloads::counted_loop(b, 0, 16, 1, [&](Value i) {
    const Value p = b.gep(arr, i, 4);
    b.store(i, p);
  });
  b.print_int(b.load(Type::i32(), b.gep(arr, b.i32(7), 4)));
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  CampaignOptions options;
  options.trials = 400;
  const auto result = run_overall_campaign(m, profile, options);
  EXPECT_GT(result.crash, 0u);  // gep faults must trap sometimes
}

TEST(Injector, MultiBitBurstFlipsAdjacentBits) {
  const auto m = make_fragile();
  InjectionSite site;
  site.mode = InjectionSite::Mode::DynIndex;
  site.dyn_index = 2;
  site.bit_entropy = 0;  // start at bit 0
  site.num_bits = 3;
  interp::Interpreter interp(m);
  Injector injector(m, site);
  interp::RunOptions options;
  options.hooks = &injector;
  interp.run_main(options);
  ASSERT_TRUE(injector.fired());
  // The add at dyn index 2 computes 8; flipping bits 0..2 gives 8^7 = 15.
  EXPECT_EQ(injector.original_bits(), 8u);
}

TEST(Campaign, MultiBitOptionChangesOutcomes) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  CampaignOptions one;
  one.trials = 200;
  CampaignOptions burst = one;
  burst.num_bits = 4;
  const auto r1 = run_overall_campaign(m, profile, one);
  const auto r4 = run_overall_campaign(m, profile, burst);
  // Same seeds, same sites; the classification stays exhaustive and the
  // campaigns remain deterministic under the burst model.
  EXPECT_EQ(r1.total(), r4.total());
  EXPECT_EQ(r4.sdc + r4.benign + r4.crash + r4.hang + r4.detected,
            r4.total());
}

TEST(Campaign, ThreadCountDoesNotChangeResults) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  CampaignOptions serial;
  serial.trials = 150;
  serial.seed = 31;
  CampaignOptions parallel = serial;
  parallel.threads = 4;
  const auto a = run_overall_campaign(m, profile, serial);
  const auto b = run_overall_campaign(m, profile, parallel);
  ASSERT_EQ(a.total(), b.total());
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.crash, b.crash);
  for (size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].target, b.trials[i].target);
    EXPECT_EQ(a.trials[i].outcome, b.trials[i].outcome);
  }
}

TEST(Stratified, CoversEveryExecutedSite) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  StratifiedOptions options;
  options.trials_per_site = 3;
  const auto result = run_stratified_campaign(m, profile, options);
  // 8 adds, each executed once: 8 strata, 3 trials each.
  EXPECT_EQ(result.sites.size(), 8u);
  EXPECT_EQ(result.total_trials, 24u);
  for (const auto& site : result.sites) {
    EXPECT_EQ(site.trials, 3u);
    EXPECT_GT(site.exec, 0u);
  }
}

TEST(Stratified, MatchesPlainCampaignOnFragileKernel) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  StratifiedOptions options;
  options.trials_per_site = 8;
  const auto strat = run_stratified_campaign(m, profile, options);
  CampaignOptions plain_options;
  plain_options.trials = 400;
  const auto plain = run_overall_campaign(m, profile, plain_options);
  EXPECT_NEAR(strat.sdc_prob(), plain.sdc_prob(), 0.12);
  EXPECT_GE(strat.sdc_prob(), 0.0);
  EXPECT_LE(strat.sdc_prob(), 1.0);
}

TEST(Stratified, DeterministicPerSeed) {
  const auto m = make_masked();
  const auto profile = prof::collect_profile(m);
  StratifiedOptions options;
  options.seed = 5;
  const auto a = run_stratified_campaign(m, profile, options);
  const auto b = run_stratified_campaign(m, profile, options);
  EXPECT_DOUBLE_EQ(a.sdc_prob(), b.sdc_prob());
  EXPECT_EQ(a.total_trials, b.total_trials);
}

TEST(Stratified, CiShrinksWithMoreTrialsPerSite) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  StratifiedOptions small;
  small.trials_per_site = 2;
  StratifiedOptions large;
  large.trials_per_site = 16;
  const auto a = run_stratified_campaign(m, profile, small);
  const auto b = run_stratified_campaign(m, profile, large);
  EXPECT_LT(b.sdc_ci95(), a.sdc_ci95());
}

TEST(Injector, BurstClampedToNarrowResult) {
  // Two-bit burst into an i1 comparison result. Before clamping, both
  // flips wrapped onto bit 0 and cancelled — a silent no-op that
  // undercounted corruption on narrow values. Clamped, exactly one bit
  // flips and the branch inverts.
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  const auto entry = b.block("entry");
  const auto then_bb = b.block("then");
  const auto else_bb = b.block("else");
  b.set_block(entry);
  const Value c = b.icmp(CmpPred::SLt, b.i64(3), b.i64(5));  // true
  b.cond_br(c, then_bb, else_bb);
  b.set_block(then_bb);
  b.print_uint(b.i64(1));
  b.ret();
  b.set_block(else_bb);
  b.print_uint(b.i64(2));
  b.ret();
  b.end_function();

  uint32_t icmp_id = ~0u;
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    if (m.functions[0].insts[i].op == ir::Opcode::ICmp) icmp_id = i;
  }
  ASSERT_NE(icmp_id, ~0u);

  InjectionSite site;
  site.mode = InjectionSite::Mode::Occurrence;
  site.inst = {0, icmp_id};
  site.occurrence = 0;
  site.bit_entropy = 0;
  site.num_bits = 2;
  interp::Interpreter interp(m);
  Injector injector(m, site);
  interp::RunOptions options;
  options.hooks = &injector;
  const auto res = interp.run_main(options);
  ASSERT_TRUE(injector.fired());
  EXPECT_EQ(injector.bits_flipped(), 1u);  // clamped to the i1 width
  EXPECT_EQ(injector.original_bits(), 1u);
  EXPECT_EQ(res.output, "2\n");  // condition inverted, not cancelled
}

TEST(Injector, WidthlessResultFallsBackToFullRegister) {
  // No IR op produces a typed width-0 result, so force one: the fallback
  // must treat it as a full 64-bit register, not divide by zero or mask
  // the flip away.
  auto m = make_fragile();
  m.functions[0].insts[1].type = Type::void_();
  InjectionSite site;
  site.mode = InjectionSite::Mode::DynIndex;
  site.dyn_index = 0;
  site.bit_entropy = UINT64_MAX;  // maps to the top bit of 64
  Injector injector(m, site);
  uint64_t bits = 0;
  injector.on_result({0, 1}, 0, bits);
  ASSERT_TRUE(injector.fired());
  EXPECT_EQ(injector.bit(), 63u);
  EXPECT_EQ(injector.bits_flipped(), 1u);
  EXPECT_EQ(bits, 1ull << 63);
}

TEST(Campaign, FuelSaturatesInsteadOfWrapping) {
  prof::Profile profile;
  profile.total_dynamic = 100;
  EXPECT_EQ(campaign_fuel(profile, 50), 100u * 50 + 10000);
  EXPECT_EQ(campaign_fuel(profile, 0), 10000u);
  // An overflowing product must saturate: the old wrap truncated the
  // budget and misclassified long-running trials as hangs.
  profile.total_dynamic = UINT64_MAX / 2;
  EXPECT_EQ(campaign_fuel(profile, 50), UINT64_MAX);
  profile.total_dynamic = UINT64_MAX - 5;
  EXPECT_EQ(campaign_fuel(profile, 1), UINT64_MAX);  // the +10000 would wrap
}

// Count-down loop whose trip count is the value loaded each iteration:
// flipping bit b of the load restarts the countdown near 2^b, so low
// bits stay benign, mid bits exceed the base budget but terminate, and
// high bits spin effectively forever.
Module make_countdown() {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  const auto entry = b.block("entry");
  const auto header = b.block("header");
  const auto body = b.block("body");
  const auto exit = b.block("exit");
  b.set_block(entry);
  const Value cell = b.alloca_(8, "cell");
  b.store(b.i64(12), cell);
  b.br(header);
  b.set_block(header);
  const Value i = b.load(Type::i64(), cell);
  const Value more = b.icmp(CmpPred::SGt, i, b.i64(0));
  b.cond_br(more, body, exit);
  b.set_block(body);
  b.store(b.sub(i, b.i64(1)), cell);
  b.br(header);
  b.set_block(exit);
  b.print_uint(b.i64(7));
  b.ret();
  b.end_function();
  return m;
}

TEST(Campaign, HangEscalationSeparatesFuelExhaustionFromHangs) {
  const auto m = make_countdown();
  const auto profile = prof::collect_profile(m);
  uint32_t load_id = ~0u;
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    if (m.functions[0].insts[i].op == ir::Opcode::Load) load_id = i;
  }
  ASSERT_NE(load_id, ~0u);
  const ir::InstRef target{0, load_id};
  ASSERT_GT(profile.exec(target), 0u);

  CampaignOptions no_retry;
  no_retry.trials = 300;
  no_retry.seed = 9;
  no_retry.hang_escalation = 0;
  CampaignOptions escalated = no_retry;
  escalated.hang_escalation = 8;
  const auto r0 = run_instruction_campaign(m, profile, target, no_retry);
  const auto r8 = run_instruction_campaign(m, profile, target, escalated);

  // Without escalation every budget overrun reads as Hang; with it the
  // slow-but-terminating runs complete and carry the fuel_exhausted
  // marker instead. Nothing else about the campaign changes.
  EXPECT_EQ(r0.fuel_exhausted, 0u);
  EXPECT_GT(r8.fuel_exhausted, 0u);
  EXPECT_GT(r8.hang, 0u);  // genuinely unbounded runs stay Hang
  EXPECT_EQ(r0.hang, r8.hang + r8.fuel_exhausted);
  EXPECT_EQ(r0.crash, r8.crash);
  EXPECT_EQ(r8.sdc + r8.benign + r8.crash + r8.hang + r8.detected,
            r8.total());
  uint64_t marked = 0;
  for (const auto& trial : r8.trials) {
    if (trial.fuel_exhausted) {
      ++marked;
      EXPECT_NE(trial.outcome, FIOutcome::Hang);  // it did terminate
    }
  }
  EXPECT_EQ(marked, r8.fuel_exhausted);
}

TEST(Campaign, OutcomeNamesStable) {
  EXPECT_STREQ(fi_outcome_name(FIOutcome::SDC), "sdc");
  EXPECT_STREQ(fi_outcome_name(FIOutcome::Benign), "benign");
  EXPECT_STREQ(fi_outcome_name(FIOutcome::Crash), "crash");
  EXPECT_STREQ(fi_outcome_name(FIOutcome::Hang), "hang");
  EXPECT_STREQ(fi_outcome_name(FIOutcome::Detected), "detected");
}

}  // namespace
}  // namespace trident::fi
