#include <gtest/gtest.h>

#include <cmath>

#include "fi/accelerated.h"
#include "fi/campaign.h"
#include "ir/builder.h"
#include "profiler/profiler.h"
#include "workloads/common.h"

namespace trident::fi {
namespace {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Module;
using ir::Type;
using ir::Value;

// Straight-line program whose single output depends on every value:
// almost any flipped bit is an SDC.
Module make_fragile() {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  Value acc = b.i64(1);
  for (int i = 0; i < 8; ++i) acc = b.add(acc, acc);
  b.print_uint(acc);
  b.ret();
  b.end_function();
  return m;
}

// Program whose computed values never reach the output: all faults in
// them are benign.
Module make_masked() {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  Value acc = b.i64(1);
  for (int i = 0; i < 8; ++i) acc = b.add(acc, acc);
  b.and_(acc, b.i64(0));  // discarded
  b.print_uint(b.i64(7));
  b.ret();
  b.end_function();
  return m;
}

TEST(Injector, FlipsExactlyOneBitAtSite) {
  const auto m = make_fragile();
  InjectionSite site;
  site.mode = InjectionSite::Mode::DynIndex;
  site.dyn_index = 3;
  site.bit_entropy = 0;  // lowest bit
  interp::Interpreter interp(m);
  Injector injector(m, site);
  interp::RunOptions options;
  options.hooks = &injector;
  interp.run_main(options);
  EXPECT_TRUE(injector.fired());
  EXPECT_EQ(injector.bit(), 0u);
  EXPECT_TRUE(injector.target().valid());
}

TEST(Injector, OccurrenceModeTargetsNthExecution) {
  Module m;
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value cell = b.alloca_(8, "acc");
  b.store(b.i64(0), cell);
  workloads::counted_loop(b, 0, 10, 1, [&](Value) {
    const Value v = b.load(Type::i64(), cell);
    b.store(b.add(v, b.i64(1)), cell);
  });
  b.print_uint(b.load(Type::i64(), cell));
  b.ret();
  b.end_function();

  // Find the inner add.
  uint32_t add_id = ~0u;
  for (uint32_t i = 0; i < m.functions[0].insts.size(); ++i) {
    const auto& inst = m.functions[0].insts[i];
    if (inst.op == ir::Opcode::Add && inst.type == Type::i64()) add_id = i;
  }
  ASSERT_NE(add_id, ~0u);

  // Flip bit 1 (value +2 or -2) of occurrence 4: final count differs.
  InjectionSite site;
  site.mode = InjectionSite::Mode::Occurrence;
  site.inst = {0, add_id};
  site.occurrence = 4;
  site.bit_entropy = (1ull << 63) / 32;  // maps to bit 1 of 64
  interp::Interpreter interp(m);
  Injector injector(m, site);
  interp::RunOptions options;
  options.hooks = &injector;
  const auto res = interp.run_main(options);
  EXPECT_TRUE(injector.fired());
  EXPECT_EQ(injector.target().inst, add_id);
  EXPECT_NE(res.output, "10\n");
}

TEST(Injector, DoesNotFireBeyondExecution) {
  const auto m = make_fragile();
  InjectionSite site;
  site.dyn_index = 1'000'000;  // beyond the run's dynamic count
  interp::Interpreter interp(m);
  Injector injector(m, site);
  interp::RunOptions options;
  options.hooks = &injector;
  const auto res = interp.run_main(options);
  EXPECT_FALSE(injector.fired());
  EXPECT_EQ(res.outcome, interp::Outcome::Ok);
}

TEST(Campaign, FragileProgramIsMostlySdc) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  CampaignOptions options;
  options.trials = 300;
  const auto result = run_overall_campaign(m, profile, options);
  EXPECT_EQ(result.total(), 300u);
  EXPECT_GT(result.sdc_prob(), 0.9);
  EXPECT_EQ(result.sdc + result.benign + result.crash + result.hang +
                result.detected,
            result.total());
}

TEST(Campaign, MaskedProgramIsMostlyBenign) {
  const auto m = make_masked();
  const auto profile = prof::collect_profile(m);
  CampaignOptions options;
  options.trials = 300;
  const auto result = run_overall_campaign(m, profile, options);
  // The print of a constant is the only SDC-visible value.
  EXPECT_LT(result.sdc_prob(), 0.25);
  EXPECT_GT(static_cast<double>(result.benign) / result.total(), 0.7);
}

TEST(Campaign, DeterministicForFixedSeed) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  CampaignOptions options;
  options.trials = 100;
  options.seed = 77;
  const auto a = run_overall_campaign(m, profile, options);
  const auto b = run_overall_campaign(m, profile, options);
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.crash, b.crash);
  for (size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].target, b.trials[i].target);
    EXPECT_EQ(a.trials[i].bit, b.trials[i].bit);
    EXPECT_EQ(a.trials[i].outcome, b.trials[i].outcome);
  }
}

TEST(Campaign, SeedChangesSamples) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  CampaignOptions a_opt;
  a_opt.trials = 50;
  a_opt.seed = 1;
  CampaignOptions b_opt = a_opt;
  b_opt.seed = 2;
  const auto a = run_overall_campaign(m, profile, a_opt);
  const auto b = run_overall_campaign(m, profile, b_opt);
  int same = 0;
  for (size_t i = 0; i < a.trials.size(); ++i) {
    same += a.trials[i].target == b.trials[i].target &&
            a.trials[i].bit == b.trials[i].bit;
  }
  EXPECT_LT(same, 25);
}

TEST(Campaign, Ci95ShrinksWithTrials) {
  const auto m = make_masked();
  const auto profile = prof::collect_profile(m);
  CampaignOptions small;
  small.trials = 50;
  CampaignOptions large;
  large.trials = 800;
  const auto s = run_overall_campaign(m, profile, small);
  const auto l = run_overall_campaign(m, profile, large);
  if (s.sdc > 0 && l.sdc > 0) {
    EXPECT_LT(l.sdc_ci95(), s.sdc_ci95());
  }
  EXPECT_LE(l.sdc_ci95(), 1.96 * 0.5 / std::sqrt(800.0) + 1e-9);
}

TEST(Campaign, PerInstructionTargetsOnlyThatInstruction) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  // Instruction 2 is one of the adds.
  const ir::InstRef target{0, 2};
  ASSERT_GT(profile.exec(target), 0u);
  CampaignOptions options;
  options.trials = 60;
  const auto result = run_instruction_campaign(m, profile, target, options);
  for (const auto& trial : result.trials) {
    EXPECT_EQ(trial.target, target);
  }
  EXPECT_GT(result.sdc_prob(), 0.9);  // every add feeds the output
}

TEST(Campaign, CrashDetectedOnAddressCorruption) {
  // Store through a pointer derived from a loaded index: address bit
  // flips produce out-of-bounds accesses.
  Module m;
  const auto g = m.add_global({"arr", 64, {}});
  IRBuilder b(m);
  b.begin_function("main", {}, Type::void_());
  b.set_block(b.block("entry"));
  const Value arr = b.global(g);
  workloads::counted_loop(b, 0, 16, 1, [&](Value i) {
    const Value p = b.gep(arr, i, 4);
    b.store(i, p);
  });
  b.print_int(b.load(Type::i32(), b.gep(arr, b.i32(7), 4)));
  b.ret();
  b.end_function();
  const auto profile = prof::collect_profile(m);
  CampaignOptions options;
  options.trials = 400;
  const auto result = run_overall_campaign(m, profile, options);
  EXPECT_GT(result.crash, 0u);  // gep faults must trap sometimes
}

TEST(Injector, MultiBitBurstFlipsAdjacentBits) {
  const auto m = make_fragile();
  InjectionSite site;
  site.mode = InjectionSite::Mode::DynIndex;
  site.dyn_index = 2;
  site.bit_entropy = 0;  // start at bit 0
  site.num_bits = 3;
  interp::Interpreter interp(m);
  Injector injector(m, site);
  interp::RunOptions options;
  options.hooks = &injector;
  interp.run_main(options);
  ASSERT_TRUE(injector.fired());
  // The add at dyn index 2 computes 8; flipping bits 0..2 gives 8^7 = 15.
  EXPECT_EQ(injector.original_bits(), 8u);
}

TEST(Campaign, MultiBitOptionChangesOutcomes) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  CampaignOptions one;
  one.trials = 200;
  CampaignOptions burst = one;
  burst.num_bits = 4;
  const auto r1 = run_overall_campaign(m, profile, one);
  const auto r4 = run_overall_campaign(m, profile, burst);
  // Same seeds, same sites; the classification stays exhaustive and the
  // campaigns remain deterministic under the burst model.
  EXPECT_EQ(r1.total(), r4.total());
  EXPECT_EQ(r4.sdc + r4.benign + r4.crash + r4.hang + r4.detected,
            r4.total());
}

TEST(Campaign, ThreadCountDoesNotChangeResults) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  CampaignOptions serial;
  serial.trials = 150;
  serial.seed = 31;
  CampaignOptions parallel = serial;
  parallel.threads = 4;
  const auto a = run_overall_campaign(m, profile, serial);
  const auto b = run_overall_campaign(m, profile, parallel);
  ASSERT_EQ(a.total(), b.total());
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.crash, b.crash);
  for (size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].target, b.trials[i].target);
    EXPECT_EQ(a.trials[i].outcome, b.trials[i].outcome);
  }
}

TEST(Stratified, CoversEveryExecutedSite) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  StratifiedOptions options;
  options.trials_per_site = 3;
  const auto result = run_stratified_campaign(m, profile, options);
  // 8 adds, each executed once: 8 strata, 3 trials each.
  EXPECT_EQ(result.sites.size(), 8u);
  EXPECT_EQ(result.total_trials, 24u);
  for (const auto& site : result.sites) {
    EXPECT_EQ(site.trials, 3u);
    EXPECT_GT(site.exec, 0u);
  }
}

TEST(Stratified, MatchesPlainCampaignOnFragileKernel) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  StratifiedOptions options;
  options.trials_per_site = 8;
  const auto strat = run_stratified_campaign(m, profile, options);
  CampaignOptions plain_options;
  plain_options.trials = 400;
  const auto plain = run_overall_campaign(m, profile, plain_options);
  EXPECT_NEAR(strat.sdc_prob(), plain.sdc_prob(), 0.12);
  EXPECT_GE(strat.sdc_prob(), 0.0);
  EXPECT_LE(strat.sdc_prob(), 1.0);
}

TEST(Stratified, DeterministicPerSeed) {
  const auto m = make_masked();
  const auto profile = prof::collect_profile(m);
  StratifiedOptions options;
  options.seed = 5;
  const auto a = run_stratified_campaign(m, profile, options);
  const auto b = run_stratified_campaign(m, profile, options);
  EXPECT_DOUBLE_EQ(a.sdc_prob(), b.sdc_prob());
  EXPECT_EQ(a.total_trials, b.total_trials);
}

TEST(Stratified, CiShrinksWithMoreTrialsPerSite) {
  const auto m = make_fragile();
  const auto profile = prof::collect_profile(m);
  StratifiedOptions small;
  small.trials_per_site = 2;
  StratifiedOptions large;
  large.trials_per_site = 16;
  const auto a = run_stratified_campaign(m, profile, small);
  const auto b = run_stratified_campaign(m, profile, large);
  EXPECT_LT(b.sdc_ci95(), a.sdc_ci95());
}

TEST(Campaign, OutcomeNamesStable) {
  EXPECT_STREQ(fi_outcome_name(FIOutcome::SDC), "sdc");
  EXPECT_STREQ(fi_outcome_name(FIOutcome::Benign), "benign");
  EXPECT_STREQ(fi_outcome_name(FIOutcome::Crash), "crash");
  EXPECT_STREQ(fi_outcome_name(FIOutcome::Hang), "hang");
  EXPECT_STREQ(fi_outcome_name(FIOutcome::Detected), "detected");
}

}  // namespace
}  // namespace trident::fi
